// §6 future work, implemented and measured — asynchronous mutex commits.
//
// The paper's closing discussion: programs with fine-grained locking and
// short chunks suffer because "each lock and unlock will be totally ordered
// and will require a global commit operation", and an LRC system could do the
// commit work in parallel for distinct locks. The paper asks for the same
// scalability *without* giving up TSO. This bench implements the obvious
// candidate mechanism — the token is held only for the commit's phase one
// (version + per-page merge-order reservation); phase two's page merging and
// installation proceed token-free and per-page-parallel, with lock-carried
// scalar version knowledge bounding how far acquirers must update — and
// measures whether it helps.
#include <cstdio>
#include <iostream>

#include "src/harness/harness.h"
#include "src/util/stats.h"
#include "src/util/rng.h"

using namespace csq;           // NOLINT
using namespace csq::harness;  // NOLINT

namespace {

// Fine-grained locking over page-disjoint state: N accounts, each on its own
// page with its own lock; workers make random ordered transfers. This is the
// §6 scenario in its purest form (distinct locks, distinct pages, short
// critical sections) — the case where commit work can genuinely overlap.
// `record_pages` controls how much memory each critical section dirties: the
// commit's page work scales with it, and with it the benefit of moving that
// work off the token.
rt::WorkloadFn BankTransfers(u32 workers, u32 record_pages) {
  return [workers, record_pages](rt::ThreadApi& api) {
    constexpr u32 kAccounts = 64;
    const u64 stride = 4096ULL * record_pages;
    const u64 base = api.SharedAlloc(kAccounts * stride, 4096);
    std::vector<rt::MutexId> locks;
    for (u32 a = 0; a < kAccounts; ++a) {
      api.Store<u64>(base + stride * a, 1000);
      locks.push_back(api.CreateMutex());
    }
    std::vector<rt::ThreadHandle> hs;
    for (u32 w = 0; w < workers; ++w) {
      hs.push_back(api.SpawnThread([=](rt::ThreadApi& t) {
        DetRng rng(0xba7c0 + t.Tid());
        for (int i = 0; i < 60; ++i) {
          u32 from = static_cast<u32>(rng.Below(kAccounts));
          u32 to = static_cast<u32>(rng.Below(kAccounts - 1));
          to += (to >= from) ? 1 : 0;
          const u32 lo = std::min(from, to);
          const u32 hi = std::max(from, to);
          t.Work(800);  // validate the transfer
          t.Lock(locks[lo]);
          t.Lock(locks[hi]);
          const u64 amount = 1 + rng.Below(50);
          t.Store<u64>(base + stride * from, t.Load<u64>(base + stride * from) - amount);
          t.Store<u64>(base + stride * to, t.Load<u64>(base + stride * to) + amount);
          // Append to both accounts' (multi-page) audit records.
          for (u32 p = 1; p < record_pages; ++p) {
            t.Store<u64>(base + stride * from + 4096 * p + 8 * (i % 500), amount);
            t.Store<u64>(base + stride * to + 4096 * p + 8 * (i % 500), amount);
          }
          t.Unlock(locks[hi]);
          t.Unlock(locks[lo]);
        }
      }));
    }
    for (auto h : hs) {
      api.JoinThread(h);
    }
    u64 total = 0;
    for (u32 a = 0; a < kAccounts; ++a) {
      total += api.Load<u64>(base + stride * a);
    }
    return total;  // conservation: always kAccounts * 1000
  };
}

}  // namespace

int main() {
  const char* benches[] = {"water_nsquared", "reverse_index", "dedup", "ferret", "word_count"};
  const std::vector<u32> threads = ThreadCounts();
  std::printf("Async mutex commits (§6 future work): virtual Mcycles vs thread count\n\n");
  std::vector<std::string> headers = {"benchmark", "mode"};
  for (u32 t : threads) {
    headers.push_back(std::to_string(t) + "thr");
  }
  headers.push_back("wall(ms)");
  TablePrinter tp(headers);
  for (const char* name : benches) {
    const wl::WorkloadInfo* w = wl::FindWorkload(name);
    for (const bool async_mode : {false, true}) {
      std::vector<std::string> row = {std::string(name), async_mode ? "async" : "sync"};
      WallTimer row_wall;
      u64 sync_checksum = 0;
      for (u32 t : threads) {
        rt::RuntimeConfig cfg = DefaultConfig(t);
        cfg.async_lock_commit = async_mode;
        const rt::RunResult r = RunOne(*w, rt::Backend::kConsequenceIC, t, &cfg);
        row.push_back(TablePrinter::Fmt(static_cast<double>(r.vtime) / 1e6));
        if (t == threads.front()) {
          sync_checksum = r.checksum;
        }
        (void)sync_checksum;
      }
      row.push_back(TablePrinter::Fmt(row_wall.ElapsedNs() / 1e6, 1));
      tp.AddRow(std::move(row));
    }
  }
  // The pure §6 scenario: distinct locks over page-disjoint accounts,
  // coarsening disabled to isolate the commit mechanism. record_pages scales
  // the per-commit page work (thin = 1 page, fat = 6 pages per account).
  for (const u32 record_pages : {1u, 6u}) {
    for (const bool async_mode : {false, true}) {
      std::vector<std::string> row = {
          std::string("bank_rp") + std::to_string(record_pages) + "*",
          async_mode ? "async" : "sync"};
      WallTimer row_wall;
      for (u32 t : threads) {
        rt::RuntimeConfig cfg = DefaultConfig(t);
        cfg.segment.size_bytes = 16 << 20;
        cfg.async_lock_commit = async_mode;
        cfg.adaptive_coarsening = false;
        const rt::RunResult r = rt::MakeRuntime(rt::Backend::kConsequenceIC, cfg)
                                    ->Run(BankTransfers(t, record_pages));
        row.push_back(TablePrinter::Fmt(static_cast<double>(r.vtime) / 1e6));
      }
      row.push_back(TablePrinter::Fmt(row_wall.ElapsedNs() / 1e6, 1));
      tp.AddRow(std::move(row));
    }
  }
  tp.Print(std::cout);
  std::printf("(* bank_transfers runs with coarsening disabled to isolate the mechanism)\n");
  std::printf(
      "\nResult (a negative one, and the paper's own point): holding the token only\n"
      "for phase one does NOT recover scalability, because TSO's prefix visibility\n"
      "still couples every lock acquisition to the global commit chain — the\n"
      "acquirer's update must wait for all earlier in-flight commits, related or\n"
      "not. This empirically confirms Section 6's claim that fine-grained locking\n"
      "with short chunks is where relaxed consistency (per-lock point-to-point\n"
      "commits) genuinely helps and TSO fundamentally cannot: \"even if the total\n"
      "amount of memory that must be propagated ... is roughly the same, the LRC\n"
      "system may exhibit better scalability.\" Determinism and TSO are preserved\n"
      "in both modes (the test suite asserts identical checksums).\n");
  return 0;
}
