// §4.1 ablation — blocking vs Kendo-style polling deterministic locks.
//
// The paper claims the first *blocking* implementation of a deterministic
// mutex_lock(), against Kendo's polling design, criticizing polling on two
// counts: (1) the clock increment to add while polling needs program-specific
// tuning, and (2) the repeated GMIC re-checks add needless latency. This
// bench quantifies both: a contended-lock program under the blocking lock and
// under polling locks across a sweep of poll increments.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/harness/harness.h"
#include "src/util/stats.h"

using namespace csq;           // NOLINT
using namespace csq::harness;  // NOLINT

namespace {

rt::WorkloadFn ContendedProgram(u32 workers, u64 cs_work, u64 local_work) {
  return [=](rt::ThreadApi& api) {
    const rt::MutexId m = api.CreateMutex();
    const u64 c = api.SharedAlloc(8);
    std::vector<rt::ThreadHandle> hs;
    for (u32 w = 0; w < workers; ++w) {
      hs.push_back(api.SpawnThread([=](rt::ThreadApi& t) {
        for (int i = 0; i < 40; ++i) {
          t.Work(local_work);
          t.Lock(m);
          t.Work(cs_work);
          t.Store<u64>(c, t.Load<u64>(c) + 1);
          t.Unlock(m);
        }
      }));
    }
    for (auto h : hs) {
      api.JoinThread(h);
    }
    return api.Load<u64>(c);
  };
}

u64 Run(const rt::RuntimeConfig& cfg, const rt::WorkloadFn& fn) {
  const rt::RunResult r = rt::MakeRuntime(rt::Backend::kConsequenceIC, cfg)->Run(fn);
  return r.vtime;
}

}  // namespace

int main() {
  constexpr u32 kThreads = 8;
  std::printf("Blocking vs polling deterministic locks (virtual kcycles, %u threads)\n\n",
              kThreads);
  struct Scenario {
    const char* name;
    u64 cs_work;
    u64 local_work;
  };
  const Scenario scenarios[] = {
      {"short-cs/short-local", 50, 500},
      {"long-cs/short-local", 8000, 500},
      {"short-cs/long-local", 50, 20000},
  };
  const u64 increments[] = {100, 1000, 5000, 20000, 100000};
  std::vector<std::string> headers = {"scenario", "blocking"};
  for (u64 inc : increments) {
    headers.push_back("poll+" + std::to_string(inc));
  }
  headers.push_back("wall(ms)");
  TablePrinter tp(headers);
  for (const Scenario& s : scenarios) {
    const rt::WorkloadFn fn = ContendedProgram(kThreads, s.cs_work, s.local_work);
    rt::RuntimeConfig cfg = DefaultConfig(kThreads);
    cfg.adaptive_coarsening = false;  // isolate the lock mechanism
    std::vector<std::string> row = {s.name};
    WallTimer row_wall;
    row.push_back(TablePrinter::Fmt(static_cast<double>(Run(cfg, fn)) / 1000.0));
    for (u64 inc : increments) {
      cfg.kendo_polling_locks = true;
      cfg.kendo_poll_increment = inc;
      row.push_back(TablePrinter::Fmt(static_cast<double>(Run(cfg, fn)) / 1000.0));
    }
    row.push_back(TablePrinter::Fmt(row_wall.ElapsedNs() / 1e6, 1));
    tp.AddRow(std::move(row));
  }
  tp.Print(std::cout);
  std::printf(
      "\nExpected shape (§4.1): the blocking lock is competitive everywhere with no\n"
      "tuning, while the best polling increment varies per scenario (too small =\n"
      "many wasted polls; too large = the poller overshoots and waits out its own\n"
      "inflated clock) — the \"program-specific tuning\" the paper eliminates.\n");
  return 0;
}
