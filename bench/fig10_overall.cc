// Figure 10 — the paper's main result.
//
// For each of the 19 benchmarks and each library (DThreads, DWC,
// Consequence-RR, Consequence-IC), run with 2..32 threads, keep the best
// runtime, and report it normalized to the best pthreads runtime.
//
// Paper headline numbers to compare against:
//   * Consequence-IC worst-case slowdown 3.9x vs pthreads;
//   * 14 of 19 programs at or below 2.5x;
//   * 2.8x / 2.2x average improvement over DThreads / DWC on the five most
//     challenging programs.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench/report.h"
#include "src/harness/harness.h"
#include "src/util/stats.h"

using namespace csq;            // NOLINT
using namespace csq::harness;   // NOLINT

namespace {

struct Headline {
  double worst_ic = 0.0;
  u32 at_or_below_25 = 0;
  double vs_dthreads = 0.0;
  double vs_dwc = 0.0;
};

// Runs the whole Fig 10 sweep over `threads` on an engine with `host_workers`
// host threads; prints the per-benchmark table when `print_table` is set, and
// returns the headline aggregates. When `rows_json` is non-null, each
// benchmark's normalized runtimes are appended to it as a rendered JSON
// object (for the BENCH_fig10_overall.json perf-trajectory report).
// When `floor_sum` is non-null, each best run's floor-handoff stats and
// per-domain occupancy are accumulated into it (parallel-engine sweeps only;
// serial sweeps contribute zeros).
Headline Sweep(const std::vector<u32>& threads, bool print_table, u32 host_workers,
               std::vector<std::string>* rows_json = nullptr,
               rt::RunResult* floor_sum = nullptr) {
  TablePrinter tp(
      {"benchmark", "suite", "dthreads", "dwc", "cons-rr", "cons-ic", "best@thr", "wall(ms)"});
  rt::RuntimeConfig base = DefaultConfig(0);
  base.host_workers = host_workers;
  Headline h;
  // "Five most challenging" = the five programs with the largest max slowdown
  // across all libraries (matches the paper's framing).
  struct Challenge {
    double max_slowdown;
    double dthreads, dwc, ic;
  };
  std::vector<Challenge> challenges;

  for (const wl::WorkloadInfo& w : wl::AllWorkloads()) {
    WallTimer row_wall;
    const BestResult pt = BestOverThreads(w, rt::Backend::kPthreads, threads, &base);
    const BestResult dt = BestOverThreads(w, rt::Backend::kDThreads, threads, &base);
    const BestResult dwc = BestOverThreads(w, rt::Backend::kDwc, threads, &base);
    const BestResult rr = BestOverThreads(w, rt::Backend::kConsequenceRR, threads, &base);
    const BestResult ic = BestOverThreads(w, rt::Backend::kConsequenceIC, threads, &base);
    const double wall_ms = row_wall.ElapsedNs() / 1e6;
    if (floor_sum != nullptr) {
      for (const BestResult* br : {&dt, &dwc, &rr, &ic}) {
        const sim::EngineFloorStats& f = br->result.floor;
        floor_sum->floor.floor_grants += f.floor_grants;
        floor_sum->floor.lease_hits += f.lease_hits;
        floor_sum->floor.lazy_retains += f.lazy_retains;
        floor_sum->floor.lease_revocations += f.lease_revocations;
        floor_sum->floor.wakeup_free_handoffs += f.wakeup_free_handoffs;
        floor_sum->floor.condvar_handoffs += f.condvar_handoffs;
        floor_sum->floor.gate_reevals += f.gate_reevals;
        const sim::EngineSchedStats& sc = br->result.sched;
        floor_sum->sched.slot_acquires += sc.slot_acquires;
        floor_sum->sched.affinity_hits += sc.affinity_hits;
        floor_sum->sched.hint_grants += sc.hint_grants;
        floor_sum->sched.steals += sc.steals;
        floor_sum->sched.cold_starts += sc.cold_starts;
        floor_sum->sched.host_slots = std::max(floor_sum->sched.host_slots, sc.host_slots);
        floor_sum->simd_level = br->result.simd_level;
        for (const sim::EngineDomainFloorStat& d : br->result.domain_floors) {
          bool merged = false;
          for (sim::EngineDomainFloorStat& acc : floor_sum->domain_floors) {
            if (acc.label == d.label) {
              acc.grants += d.grants;
              acc.lease_hits += d.lease_hits;
              acc.floor_held_ns += d.floor_held_ns;
              merged = true;
              break;
            }
          }
          if (!merged) {
            floor_sum->domain_floors.push_back(d);
          }
        }
      }
    }
    const double s_dt = Slowdown(dt.vtime, pt.vtime);
    const double s_dwc = Slowdown(dwc.vtime, pt.vtime);
    const double s_rr = Slowdown(rr.vtime, pt.vtime);
    const double s_ic = Slowdown(ic.vtime, pt.vtime);
    h.worst_ic = std::max(h.worst_ic, s_ic);
    h.at_or_below_25 += (s_ic <= 2.5) ? 1 : 0;
    challenges.push_back({std::max({s_dt, s_dwc, s_rr, s_ic}), s_dt, s_dwc, s_ic});
    tp.AddRow({std::string(w.name), std::string(w.suite), TablePrinter::Fmt(s_dt),
               TablePrinter::Fmt(s_dwc), TablePrinter::Fmt(s_rr), TablePrinter::Fmt(s_ic),
               std::to_string(ic.at_threads), TablePrinter::Fmt(wall_ms, 1)});
    if (rows_json != nullptr) {
      bench::JsonObj row;
      row.Str("benchmark", w.name)
          .Num("dthreads", s_dt)
          .Num("dwc", s_dwc)
          .Num("cons_rr", s_rr)
          .Num("cons_ic", s_ic)
          .Int("best_threads", ic.at_threads)
          .Num("wall_ms", wall_ms, 1);
      rows_json->push_back(row.Render());
    }
  }
  if (print_table) {
    tp.Print(std::cout);
  }
  std::sort(challenges.begin(), challenges.end(),
            [](const Challenge& a, const Challenge& b) { return a.max_slowdown > b.max_slowdown; });
  std::vector<double> vs_dt, vs_dwc;
  for (usize i = 0; i < 5 && i < challenges.size(); ++i) {
    vs_dt.push_back(challenges[i].dthreads / challenges[i].ic);
    vs_dwc.push_back(challenges[i].dwc / challenges[i].ic);
  }
  h.vs_dthreads = GeoMean(vs_dt);
  h.vs_dwc = GeoMean(vs_dwc);
  return h;
}

void PrintHeadline(const char* label, const Headline& h) {
  std::printf("\nHeadline comparisons %s (paper values in brackets):\n", label);
  std::printf("  Consequence-IC worst-case slowdown vs pthreads: %.2fx  [paper: 3.9x]\n",
              h.worst_ic);
  std::printf("  programs at or below 2.5x: %u / 19                [paper: 14 / 19]\n",
              h.at_or_below_25);
  std::printf("  improvement over DThreads on 5 hardest: %.2fx     [paper: 2.8x]\n",
              h.vs_dthreads);
  std::printf("  improvement over DWC on 5 hardest: %.2fx          [paper: 2.2x]\n",
              h.vs_dwc);
}

}  // namespace

int main() {
  const std::vector<u32> threads = ThreadCounts();
  std::printf("Fig 10: best-over-{2..%u}-thread runtime normalized to pthreads\n\n",
              threads.back());
  std::vector<std::string> rows_json;
  WallTimer serial_wall;
  const Headline full = Sweep(threads, /*print_table=*/true, /*host_workers=*/1, &rows_json);
  const double serial_ns = serial_wall.ElapsedNs();
  PrintHeadline("(full thread sweep)", full);
  if (threads.back() > 8) {
    // Our simulated pthreads baseline has no cache-coherence or memory-system
    // friction, so it keeps scaling linearly at 16-32 threads where the real
    // testbed's baseline saturates; the <=8-thread sweep is the closer
    // apples-to-apples comparison with the paper (see EXPERIMENTS.md).
    const Headline le8 = Sweep({2, 4, 8}, /*print_table=*/false, /*host_workers=*/1);
    PrintHeadline("(sweep capped at 8 threads — paper-comparable)", le8);
  }

  // Host-parallel engine comparison: rerun the identical sweep with four
  // host workers and report honest end-to-end wall-clock for both engines.
  // The simulated results are bit-identical (the equivalence suite asserts
  // this exhaustively); the headline check below is a cheap smoke test that
  // this binary's own parallel run reproduced the serial aggregates.
  constexpr u32 kParWorkers = 4;
  WallTimer par_wall;
  rt::RunResult floor_sum;
  const Headline par = Sweep(threads, /*print_table=*/false, kParWorkers, nullptr, &floor_sum);
  const double par_ns = par_wall.ElapsedNs();
  const bool par_matches = par.worst_ic == full.worst_ic &&
                           par.at_or_below_25 == full.at_or_below_25 &&
                           par.vs_dthreads == full.vs_dthreads && par.vs_dwc == full.vs_dwc;
  const double speedup = serial_ns / par_ns;
  const u32 host_cores = bench::HostCores();
  const bool meets_target = speedup >= 1.5;
  std::printf(
      "\nHost engine wall-clock (full sweep): serial %.2fs, %u workers %.2fs -> %.2fx speedup"
      " (parallel results %s serial)\n",
      serial_ns / 1e9, kParWorkers, par_ns / 1e9, speedup,
      par_matches ? "identical to" : "DIVERGED from");
  if (host_cores < 2) {
    std::printf("host cores: %u — single-core host, wall-clock speedup target not applicable\n",
                host_cores);
  } else {
    std::printf("host cores: %u — 1.5x-at-%u-workers target %s\n", host_cores, kParWorkers,
                meets_target ? "MET" : "not met");
  }
  harness::PrintFloorStats(std::cout, floor_sum);

  bench::JsonObj report;
  report.Str("bench", "fig10_overall")
      .Int("max_threads", threads.back())
      .Int("serial_wall_ns", static_cast<u64>(serial_ns))
      .Int("parallel_wall_ns", static_cast<u64>(par_ns))
      .Int("parallel_host_workers", kParWorkers)
      .Num("speedup", speedup)
      .Bool("meets_1p5x_target", meets_target)
      .Bool("parallel_matches_serial", par_matches)
      .Int("floor_grants", floor_sum.floor.floor_grants)
      .Int("lease_hits", floor_sum.floor.lease_hits)
      .Int("lazy_retains", floor_sum.floor.lazy_retains)
      .Int("lease_revocations", floor_sum.floor.lease_revocations)
      .Int("wakeup_free_handoffs", floor_sum.floor.wakeup_free_handoffs)
      .Int("condvar_handoffs", floor_sum.floor.condvar_handoffs)
      .Int("gate_reevals", floor_sum.floor.gate_reevals)
      .Int("sched_host_slots", floor_sum.sched.host_slots)
      .Int("sched_slot_acquires", floor_sum.sched.slot_acquires)
      .Int("sched_affinity_hits", floor_sum.sched.affinity_hits)
      .Int("sched_hint_grants", floor_sum.sched.hint_grants)
      .Int("sched_steals", floor_sum.sched.steals)
      .Int("sched_cold_starts", floor_sum.sched.cold_starts)
      .Str("simd_level", floor_sum.simd_level)
      .Num("affinity_hit_rate",
           floor_sum.sched.slot_acquires > 0
               ? static_cast<double>(floor_sum.sched.affinity_hits) /
                     static_cast<double>(floor_sum.sched.slot_acquires)
               : 0.0)
      .Num("worst_ic_slowdown", full.worst_ic)
      .Int("at_or_below_2_5x", full.at_or_below_25)
      .Num("vs_dthreads_5_hardest", full.vs_dthreads)
      .Num("vs_dwc_5_hardest", full.vs_dwc)
      .Raw("normalized_runtimes", bench::JsonArr(rows_json));
  bench::WriteReport("fig10_overall", report);
  return par_matches ? 0 : 1;
}
