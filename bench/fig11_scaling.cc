// Figure 11 — runtime when varying the number of threads.
//
// The paper highlights six benchmarks where DThreads and DWC exhibit severe
// scalability problems (ocean_cp, lu_ncb, ferret, kmeans, water_nsquared,
// canneal) while Consequence degrades far less. It also documents the
// water_nsquared @ 32-thread regression caused by coarsened token holds.
#include <cstdio>
#include <iostream>

#include "src/harness/harness.h"
#include "src/util/stats.h"

using namespace csq;           // NOLINT
using namespace csq::harness;  // NOLINT

int main() {
  const std::vector<u32> threads = ThreadCounts();
  const char* benches[] = {"ocean_cp", "lu_ncb", "ferret", "kmeans", "water_nsquared", "canneal"};
  std::printf("Fig 11: runtime (virtual Mcycles) vs thread count\n\n");
  std::vector<std::string> headers = {"benchmark", "library"};
  for (u32 t : threads) {
    headers.push_back(std::to_string(t) + "thr");
  }
  headers.push_back("wall(ms)");
  TablePrinter tp(headers);
  for (const char* name : benches) {
    const wl::WorkloadInfo* w = wl::FindWorkload(name);
    for (rt::Backend b : FigureBackends()) {
      std::vector<std::string> row = {std::string(name), std::string(rt::BackendName(b))};
      WallTimer row_wall;
      for (u32 t : threads) {
        const rt::RunResult r = RunOne(*w, b, t);
        row.push_back(TablePrinter::Fmt(static_cast<double>(r.vtime) / 1e6));
      }
      row.push_back(TablePrinter::Fmt(row_wall.ElapsedNs() / 1e6, 1));
      tp.AddRow(std::move(row));
    }
  }
  tp.Print(std::cout);
  std::printf(
      "\nExpected shapes (paper): DThreads/DWC runtimes grow with thread count on all six\n"
      "(serial commits + round-robin waiting); Consequence stays near-flat, except\n"
      "water_nsquared at 32 threads, where coarsened token holds block other threads.\n");
  return 0;
}
