// Figure 12 — peak memory usage vs thread count.
//
// Consequence and DThreads are roughly matched except canneal and lu_ncb at
// high thread counts, where page allocation/freeing outpaces the single-
// threaded Conversion garbage collector. The paper proposes a multi-threaded
// collector as the fix; the `gc=mt` rows reproduce that proposal (our
// ablation of the design choice).
#include <cstdio>
#include <iostream>

#include "src/harness/harness.h"
#include "src/util/stats.h"

using namespace csq;           // NOLINT
using namespace csq::harness;  // NOLINT

int main() {
  const std::vector<u32> threads = ThreadCounts();
  const char* benches[] = {"canneal", "lu_ncb", "ocean_cp", "kmeans", "histogram"};
  std::printf("Fig 12: peak memory (MiB of page frames) vs thread count\n\n");
  std::vector<std::string> headers = {"benchmark", "library"};
  for (u32 t : threads) {
    headers.push_back(std::to_string(t) + "thr");
  }
  headers.push_back("wall(ms)");
  TablePrinter tp(headers);
  for (const char* name : benches) {
    const wl::WorkloadInfo* w = wl::FindWorkload(name);
    struct Variant {
      const char* label;
      rt::Backend backend;
      bool mt_gc;
    };
    const Variant variants[] = {
        {"dthreads", rt::Backend::kDThreads, false},
        {"cons-ic", rt::Backend::kConsequenceIC, false},
        {"cons-ic gc=mt", rt::Backend::kConsequenceIC, true},
    };
    for (const Variant& v : variants) {
      std::vector<std::string> row = {std::string(name), v.label};
      WallTimer row_wall;
      for (u32 t : threads) {
        rt::RuntimeConfig cfg = DefaultConfig(t);
        cfg.segment.multithreaded_gc = v.mt_gc;
        const rt::RunResult r = RunOne(*w, v.backend, t, &cfg);
        row.push_back(TablePrinter::Fmt(static_cast<double>(r.peak_mem_bytes) / (1024.0 * 1024.0)));
      }
      row.push_back(TablePrinter::Fmt(row_wall.ElapsedNs() / 1e6, 1));
      tp.AddRow(std::move(row));
    }
  }
  tp.Print(std::cout);
  std::printf(
      "\nExpected shapes (paper): canneal and lu_ncb grow with thread count under the\n"
      "budgeted single-threaded collector; the multi-threaded collector (gc=mt) flattens\n"
      "them; the other benchmarks stay roughly constant.\n");
  return 0;
}
