// Figure 13 — sources of performance improvement.
//
// Speedup contributed by each of the five §3 optimizations (adaptive
// coarsening, adaptive counter overflow, thread reuse, user-space counter
// reads, fast-forward) plus the parallel barrier commit, measured as
// Consequence-IC runtime without the optimization divided by the runtime with
// it, on the eight most challenging benchmarks.
//
// Paper shapes: every optimization helps somewhere; user-space counter reads
// contribute very little; ferret gains most from coarsening and fast-forward;
// the barrier-heavy programs (ocean_cp, lu_cb, lu_ncb, canneal) gain most
// from the parallel barrier.
#include <cstdio>
#include <iostream>

#include "src/harness/harness.h"
#include "src/util/stats.h"

using namespace csq;           // NOLINT
using namespace csq::harness;  // NOLINT

namespace {

constexpr u32 kThreads = 8;

enum class Opt { kCoarsening, kOverflow, kReuse, kUserRead, kFastForward, kParallelBarrier };

const char* OptName(Opt o) {
  switch (o) {
    case Opt::kCoarsening:
      return "coarsening";
    case Opt::kOverflow:
      return "adapt-ovf";
    case Opt::kReuse:
      return "thr-reuse";
    case Opt::kUserRead:
      return "user-read";
    case Opt::kFastForward:
      return "fast-fwd";
    case Opt::kParallelBarrier:
      return "par-barrier";
  }
  return "?";
}

rt::RuntimeConfig Without(Opt o) {
  rt::RuntimeConfig cfg = DefaultConfig(kThreads);
  switch (o) {
    case Opt::kCoarsening:
      cfg.adaptive_coarsening = false;
      cfg.static_coarsen_level = 0;
      break;
    case Opt::kOverflow:
      cfg.adaptive_overflow = false;
      break;
    case Opt::kReuse:
      cfg.thread_reuse = false;
      break;
    case Opt::kUserRead:
      cfg.user_space_reads = false;
      break;
    case Opt::kFastForward:
      cfg.fast_forward = false;
      break;
    case Opt::kParallelBarrier:
      cfg.parallel_barrier_commit = false;
      break;
  }
  return cfg;
}

}  // namespace

int main() {
  const char* benches[] = {"ferret",   "dedup",  "reverse_index", "kmeans",        "canneal",
                           "ocean_cp", "lu_cb",  "lu_ncb",        "water_nsquared"};
  const Opt opts[] = {Opt::kCoarsening, Opt::kOverflow,    Opt::kReuse,
                      Opt::kUserRead,   Opt::kFastForward, Opt::kParallelBarrier};
  std::printf("Fig 13: speedup from each optimization (runtime without / with, %u threads)\n\n",
              kThreads);
  std::vector<std::string> headers = {"benchmark"};
  for (Opt o : opts) {
    headers.push_back(OptName(o));
  }
  headers.push_back("wall(ms)");
  TablePrinter tp(headers);
  for (const char* name : benches) {
    const wl::WorkloadInfo* w = wl::FindWorkload(name);
    WallTimer row_wall;
    const rt::RunResult base = RunOne(*w, rt::Backend::kConsequenceIC, kThreads);
    std::vector<std::string> row = {std::string(name)};
    for (Opt o : opts) {
      const rt::RuntimeConfig cfg = Without(o);
      const rt::RunResult r = RunOne(*w, rt::Backend::kConsequenceIC, kThreads, &cfg);
      row.push_back(TablePrinter::Fmt(static_cast<double>(r.vtime) /
                                      static_cast<double>(base.vtime)));
    }
    row.push_back(TablePrinter::Fmt(row_wall.ElapsedNs() / 1e6, 1));
    tp.AddRow(std::move(row));
  }
  tp.Print(std::cout);
  std::printf(
      "\nValues are \"runtime without the optimization / runtime with it\" — higher is a\n"
      "bigger contribution, 1.00 means no effect. Checksums are identical across all\n"
      "configurations (determinism is preserved by every optimization).\n");
  return 0;
}
