// Figure 14 — adaptive vs static coarsening.
//
// Runtime of reverse_index and ferret as a function of a statically chosen
// coarsening level (how many synchronization operations are folded into one
// global coordination phase), compared against the adaptive policy. The paper
// shows the level matters a lot even statically, and that the adaptive policy
// beats the best static choice.
#include <cstdio>
#include <iostream>

#include "src/harness/harness.h"
#include "src/util/stats.h"

using namespace csq;           // NOLINT
using namespace csq::harness;  // NOLINT

int main() {
  constexpr u32 kThreads = 8;
  const u32 levels[] = {0, 1, 2, 4, 8, 16, 32, 64};
  std::printf("Fig 14: static coarsening level vs adaptive (virtual Mcycles, %u threads)\n\n",
              kThreads);
  std::vector<std::string> headers = {"benchmark"};
  for (u32 l : levels) {
    headers.push_back("lvl" + std::to_string(l));
  }
  headers.push_back("adaptive");
  headers.push_back("wall(ms)");
  TablePrinter tp(headers);
  for (const char* name : {"reverse_index", "ferret"}) {
    const wl::WorkloadInfo* w = wl::FindWorkload(name);
    std::vector<std::string> row = {std::string(name)};
    WallTimer row_wall;
    for (u32 l : levels) {
      rt::RuntimeConfig cfg = DefaultConfig(kThreads);
      cfg.adaptive_coarsening = false;
      cfg.static_coarsen_level = l;
      const rt::RunResult r = RunOne(*w, rt::Backend::kConsequenceIC, kThreads, &cfg);
      row.push_back(TablePrinter::Fmt(static_cast<double>(r.vtime) / 1e6));
    }
    const rt::RunResult adaptive = RunOne(*w, rt::Backend::kConsequenceIC, kThreads);
    row.push_back(TablePrinter::Fmt(static_cast<double>(adaptive.vtime) / 1e6));
    row.push_back(TablePrinter::Fmt(row_wall.ElapsedNs() / 1e6, 1));
    tp.AddRow(std::move(row));
  }
  tp.Print(std::cout);
  std::printf(
      "\nExpected shapes (paper): runtime falls steeply from level 0, bottoms out at a\n"
      "benchmark-specific level, and rises again when chunks get too long; the adaptive\n"
      "policy (each thread choosing its own level) matches or beats the best static one.\n");
  return 0;
}
