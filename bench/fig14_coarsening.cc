// Figure 14 — adaptive vs static coarsening.
//
// Runtime of reverse_index and ferret as a function of a statically chosen
// coarsening level (how many synchronization operations are folded into one
// global coordination phase), compared against the adaptive policy. The paper
// shows the level matters a lot even statically, and that the adaptive policy
// beats the best static choice.
//
// When CSQ_HOST_WORKERS>1 the runs execute on the host-parallel engine and
// the table gains §16 locality columns: the affinity-hit rate of the slot
// scheduler (how often a simulated thread re-acquired the host-worker slot it
// last ran on) and the steal count. Coarsened chunks are exactly the case the
// affinity map targets — long runs between sync points with warm per-slot
// state — so the hit rate should be high (>=80% at 4 workers).
#include <cstdio>
#include <iostream>

#include "src/harness/harness.h"
#include "src/util/stats.h"

using namespace csq;           // NOLINT
using namespace csq::harness;  // NOLINT

int main() {
  constexpr u32 kThreads = 8;
  const u32 levels[] = {0, 1, 2, 4, 8, 16, 32, 64};
  std::printf("Fig 14: static coarsening level vs adaptive (virtual Mcycles, %u threads)\n\n",
              kThreads);
  const u32 host_workers = DefaultConfig(kThreads).host_workers;
  const bool parallel = host_workers > 1;
  std::vector<std::string> headers = {"benchmark"};
  for (u32 l : levels) {
    headers.push_back("lvl" + std::to_string(l));
  }
  headers.push_back("adaptive");
  if (parallel) {
    headers.push_back("aff%");
    headers.push_back("steals");
  }
  headers.push_back("wall(ms)");
  TablePrinter tp(headers);
  u64 total_acquires = 0;
  u64 total_hits = 0;
  for (const char* name : {"reverse_index", "ferret"}) {
    const wl::WorkloadInfo* w = wl::FindWorkload(name);
    std::vector<std::string> row = {std::string(name)};
    WallTimer row_wall;
    sim::EngineSchedStats sched;
    for (u32 l : levels) {
      rt::RuntimeConfig cfg = DefaultConfig(kThreads);
      cfg.adaptive_coarsening = false;
      cfg.static_coarsen_level = l;
      const rt::RunResult r = RunOne(*w, rt::Backend::kConsequenceIC, kThreads, &cfg);
      row.push_back(TablePrinter::Fmt(static_cast<double>(r.vtime) / 1e6));
      sched.slot_acquires += r.sched.slot_acquires;
      sched.affinity_hits += r.sched.affinity_hits;
      sched.steals += r.sched.steals;
    }
    const rt::RunResult adaptive = RunOne(*w, rt::Backend::kConsequenceIC, kThreads);
    row.push_back(TablePrinter::Fmt(static_cast<double>(adaptive.vtime) / 1e6));
    sched.slot_acquires += adaptive.sched.slot_acquires;
    sched.affinity_hits += adaptive.sched.affinity_hits;
    sched.steals += adaptive.sched.steals;
    if (parallel) {
      const double rate = sched.slot_acquires > 0
                              ? 100.0 * static_cast<double>(sched.affinity_hits) /
                                    static_cast<double>(sched.slot_acquires)
                              : 0.0;
      row.push_back(TablePrinter::Fmt(rate, 1));
      row.push_back(std::to_string(sched.steals));
    }
    total_acquires += sched.slot_acquires;
    total_hits += sched.affinity_hits;
    row.push_back(TablePrinter::Fmt(row_wall.ElapsedNs() / 1e6, 1));
    tp.AddRow(std::move(row));
  }
  tp.Print(std::cout);
  if (parallel && total_acquires > 0) {
    const double rate =
        100.0 * static_cast<double>(total_hits) / static_cast<double>(total_acquires);
    std::printf("\nslot locality (%u host workers): %.1f%% affinity-hit rate over %llu acquires"
                " — target >=80%% %s\n",
                host_workers, rate, static_cast<unsigned long long>(total_acquires),
                rate >= 80.0 ? "MET" : "not met");
  }
  std::printf(
      "\nExpected shapes (paper): runtime falls steeply from level 0, bottoms out at a\n"
      "benchmark-specific level, and rises again when chunks get too long; the adaptive\n"
      "policy (each thread choosing its own level) matches or beats the best static one.\n");
  return 0;
}
