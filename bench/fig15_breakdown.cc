// Figure 15 — where does the time go?
//
// Per-benchmark breakdown of virtual time into the paper's categories
// (chunks / determ wait / barrier wait / conversion commit / page faults /
// library overhead / gc) for pthreads, DWC and Consequence-IC at 8 threads.
// ferret's first pipeline stage (ferret_1) is reported separately from the
// remaining threads (ferret_n), as in the paper.
// The commit column is further split by where the host work ran: "ordered"
// is host time spent in the floor-held phases of commit (version order,
// placeholder installs, per-page charges) and "overlapped" is host time in
// the off-floor work phase (diffing, merging, page installs) that ran
// concurrently with other threads' chunks. On the serial reference engine
// the overlapped column is zero by construction; run with CSQ_HOST_WORKERS>1
// to see the split (the virtual-time columns are bit-identical either way).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/report.h"
#include "src/harness/harness.h"

using namespace csq;           // NOLINT
using namespace csq::harness;  // NOLINT

namespace {

constexpr u32 kThreads = 8;

const char* kBenches[] = {"string_match", "ocean_cp", "lu_cb",   "lu_ncb",
                          "canneal",      "water_nsquared", "water_spatial",
                          "kmeans",       "ferret",   "dedup",   "reverse_index"};

struct Row {
  std::string label;
  std::array<u64, sim::kNumTimeCats> cats{};
};

// Sums categories over a thread range [from, to).
Row SumThreads(const rt::RunResult& r, const std::string& label, usize from, usize to) {
  Row row;
  row.label = label;
  for (usize t = from; t < to && t < r.cat_by_thread.size(); ++t) {
    for (usize c = 0; c < sim::kNumTimeCats; ++c) {
      row.cats[c] += r.cat_by_thread[t][c];
    }
  }
  return row;
}

void PrintRows(TablePrinter& tp, const std::string& bench, rt::Backend b,
               const rt::RunResult& r, bool split_ferret,
               std::vector<std::string>& rows_json) {
  const double ord_ms = static_cast<double>(r.floor_held_commit_ns) / 1e6;
  const double ovl_ms = static_cast<double>(r.offfloor_commit_ns) / 1e6;
  const double commit_share =
      r.host_wall_ns > 0
          ? 100.0 * static_cast<double>(r.floor_held_commit_ns + r.offfloor_commit_ns) /
                static_cast<double>(r.host_wall_ns)
          : 0.0;
  std::vector<Row> rows;
  if (split_ferret) {
    // Thread 0 = main, thread 1 = the ferret loader stage (ferret_1).
    rows.push_back(SumThreads(r, bench + "_1", 1, 2));
    rows.push_back(SumThreads(r, bench + "_n", 2, r.cat_by_thread.size()));
  } else {
    rows.push_back(SumThreads(r, bench, 1, r.cat_by_thread.size()));
  }
  for (const Row& row : rows) {
    u64 total = 0;
    for (u64 v : row.cats) {
      total += v;
    }
    if (total == 0) {
      total = 1;
    }
    std::vector<std::string> cells = {row.label, std::string(rt::BackendName(b))};
    for (usize c = 0; c < sim::kNumTimeCats; ++c) {
      cells.push_back(TablePrinter::Fmt(100.0 * static_cast<double>(row.cats[c]) /
                                        static_cast<double>(total), 1));
    }
    cells.push_back(std::to_string(total / 1000));
    cells.push_back(TablePrinter::Fmt(static_cast<double>(r.host_wall_ns) / 1e6, 1));
    cells.push_back(TablePrinter::Fmt(ord_ms, 2));
    cells.push_back(TablePrinter::Fmt(ovl_ms, 2));
    cells.push_back(TablePrinter::Fmt(commit_share, 1));
    tp.AddRow(std::move(cells));

    bench::JsonObj jrow;
    jrow.Str("label", row.label).Str("library", rt::BackendName(b));
    for (usize c = 0; c < sim::kNumTimeCats; ++c) {
      jrow.Num(std::string(sim::TimeCatName(static_cast<sim::TimeCat>(c))) + "_pct",
               100.0 * static_cast<double>(row.cats[c]) / static_cast<double>(total), 1);
    }
    jrow.Num("wall_ms", static_cast<double>(r.host_wall_ns) / 1e6, 2)
        .Num("ordered_commit_ms", ord_ms, 3)
        .Num("overlapped_commit_ms", ovl_ms, 3)
        .Num("commit_wall_share_pct", commit_share, 1);
    rows_json.push_back(jrow.Render());
  }
}

}  // namespace

int main() {
  std::printf("Fig 15: per-category virtual-time breakdown (%% of thread time, %u threads)\n\n",
              kThreads);
  std::vector<std::string> headers = {"benchmark", "library"};
  for (usize c = 0; c < sim::kNumTimeCats; ++c) {
    headers.push_back(std::string(sim::TimeCatName(static_cast<sim::TimeCat>(c))) + "%");
  }
  headers.push_back("total(k)");
  headers.push_back("wall(ms)");
  headers.push_back("ord-commit(ms)");   // commit host-time, floor-held (ordered)
  headers.push_back("ovl-commit(ms)");   // commit host-time, off-floor (overlapped)
  headers.push_back("commit-wall%");
  TablePrinter tp(headers);
  std::vector<std::string> rows_json;
  for (const char* name : kBenches) {
    const wl::WorkloadInfo* w = wl::FindWorkload(name);
    const bool split = std::string(name) == "ferret";
    for (rt::Backend b :
         {rt::Backend::kPthreads, rt::Backend::kDwc, rt::Backend::kConsequenceIC}) {
      const rt::RunResult r = RunOne(*w, b, kThreads);
      PrintRows(tp, name, b, r, split, rows_json);
    }
  }
  tp.Print(std::cout);
  std::printf(
      "\nExpected shapes (paper): barrier-heavy programs (ocean_cp, lu_*, canneal, water_*)\n"
      "spend most DWC time waiting, which Consequence-IC's parallel barrier commit removes;\n"
      "ferret_1 is lock-dominated library overhead; string_match is pure chunk time.\n"
      "ord-commit is floor-held commit host-time; ovl-commit ran off-floor, overlapped with\n"
      "other threads' chunk execution (zero on the serial engine; set CSQ_HOST_WORKERS>1).\n");

  bench::JsonObj report;
  report.Str("bench", "fig15_breakdown")
      .Int("threads", kThreads)
      .Raw("rows", bench::JsonArr(rows_json));
  bench::WriteReport("fig15_breakdown", report);
  return 0;
}
