// Figure 16 — memory propagation under TSO vs an LRC-based model.
//
// Runs each qualifying benchmark (>= 10K page updates in the paper) under
// Consequence-IC with the happens-before tracker attached and reports the
// pages actually propagated under TSO next to the pages an LRC system would
// have shipped along happens-before edges. The paper finds LRC saves only
// ~21% on average, because deterministic synchronization still requires
// global coordination and barrier-heavy programs propagate globally anyway.
#include <cstdio>
#include <iostream>

#include "src/harness/harness.h"
#include "src/lrc/lrc_model.h"

using namespace csq;           // NOLINT
using namespace csq::harness;  // NOLINT

int main() {
  constexpr u32 kThreads = 8;
  std::printf("Fig 16: pages propagated, TSO (Consequence) vs LRC estimate (%u threads)\n\n",
              kThreads);
  TablePrinter tp({"benchmark", "tso_pages", "lrc_pages", "lrc/tso", "wall(ms)"});
  std::vector<double> ratios;
  for (const wl::WorkloadInfo& w : wl::AllWorkloads()) {
    if (!w.fig16) {
      continue;
    }
    lrc::LrcModel model;
    rt::RuntimeConfig cfg = DefaultConfig(kThreads);
    cfg.observer = &model;
    const rt::RunResult r = RunOne(w, rt::Backend::kConsequenceIC, kThreads, &cfg);
    const double tso = static_cast<double>(r.pages_propagated);
    const double lrcp = static_cast<double>(model.PagesPropagated());
    const double ratio = tso > 0 ? lrcp / tso : 0.0;
    if (tso > 0) {
      ratios.push_back(ratio);
    }
    tp.AddRow({std::string(w.name), TablePrinter::Fmt(r.pages_propagated),
               TablePrinter::Fmt(model.PagesPropagated()), TablePrinter::Fmt(ratio),
               TablePrinter::Fmt(static_cast<double>(r.host_wall_ns) / 1e6, 1)});
  }
  tp.Print(std::cout);
  double mean = 0.0;
  for (double r : ratios) {
    mean += r;
  }
  mean /= ratios.empty() ? 1.0 : static_cast<double>(ratios.size());
  std::printf(
      "\nLRC/TSO propagation ratio: mean %.2f, geomean %.2f"
      "  [paper: ~0.79, i.e. a 21%% reduction]\n"
      "Expected shape: LRC saves little on barrier-heavy programs (~1.0: barriers\n"
      "propagate globally under any model) and much more on lock-partitioned sharing\n"
      "(water_nsquared, dedup, ferret) — our suite skews further toward the latter,\n"
      "so the aggregate saving is larger than the paper's (see EXPERIMENTS.md).\n",
      mean, GeoMean(ratios));
  return 0;
}
