// Wall-clock microbenchmark for the off-floor commit pipeline (DESIGN.md §12):
// Prepare/Finish commit throughput at 1/8/64/512 dirty pages per commit and
// 1–8 concurrent committers, with the pipeline disabled (floor-held: the
// reference FinishCommit does all page copies under the floor) vs enabled
// (off-floor: the floor is held only for the order phase; the page copies run
// on the committer's host thread, overlapped with other committers).
//
// Each committer writes a disjoint page range, commits, updates, and releases
// the floor before its next round of local stores — the same discipline the
// runtime layer follows. Both modes run the identical simulated schedule; the
// bench asserts the final virtual times match (bit-identity) and reports the
// wall-clock ratio. Writes BENCH_micro_commit.json.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/report.h"
#include "src/conv/segment.h"
#include "src/conv/workspace.h"
#include "src/sim/engine.h"
#include "src/util/stats.h"

namespace csq {
namespace {

struct ModeResult {
  double wall_ns = 0.0;
  std::vector<u64> final_vtimes;
  u64 commits = 0;
  u64 pages_committed = 0;
  u64 offfloor_pages = 0;
  u64 gc_reclaimed = 0;
  sim::EngineFloorStats floor;
  sim::EngineSchedStats sched;
};

ModeResult RunMode(u32 committers, u32 dirty_pages, u32 reps, bool offfloor) {
  sim::SimConfig sc;
  sc.host_workers = committers;
  sc.force_threaded = true;  // 1-committer case still exercises the threaded substrate
  sim::Engine eng(sc);
  conv::SegmentConfig cfg;
  cfg.size_bytes = 32 * 1024 * 1024;  // 8192 pages: up to 8 x 512 disjoint + headroom
  cfg.multithreaded_gc = true;
  cfg.offfloor_commit = offfloor;
  conv::Segment seg(eng, cfg);

  ModeResult r;
  r.final_vtimes.resize(committers);
  // Workspaces are constructed before Run() and destroyed after it: the
  // registry feeds the floor-held GC watermark scan, so registration changes
  // must not race the simulation (conv-layer contract; the runtime layer
  // registers at floor-held spawn points for the same reason).
  std::vector<std::unique_ptr<conv::Workspace>> wss;
  wss.reserve(committers);
  for (u32 t = 0; t < committers; ++t) {
    wss.push_back(std::make_unique<conv::Workspace>(seg, t));
  }
  for (u32 t = 0; t < committers; ++t) {
    eng.Spawn([&, t] {
      conv::Workspace& w = *wss[t];
      const u64 base_page = static_cast<u64>(t) * dirty_pages;
      for (u32 rep = 0; rep < reps; ++rep) {
        for (u32 p = 0; p < dirty_pages; ++p) {
          w.Store<u64>((base_page + p) * seg.PageSize(), (static_cast<u64>(rep) << 32) | p);
        }
        w.CommitAndUpdate();
        // GC keeps the chains short across thousands of reps; the off-floor
        // mode also exercises the deferred-erase drain under contention.
        if ((rep & 15) == 15) {
          seg.Gc(committers);
        }
        // Commit/Update return floor-held (conv contract); release before the
        // next round of purely local stores, as the runtime layer does.
        eng.EndShared();
      }
      r.final_vtimes[t] = eng.Now();
    });
  }
  WallTimer timer;
  eng.Run();
  r.wall_ns = timer.ElapsedNs();
  r.floor = eng.FloorStats();
  r.sched = eng.SchedStats();
  r.commits = seg.Stats().commits;
  r.pages_committed = seg.Stats().pages_committed;
  r.offfloor_pages = seg.Stats().offfloor_pages_installed;
  r.gc_reclaimed = seg.Stats().gc_reclaimed_pages;
  wss.clear();
  return r;
}

// Two-segment sharded-domain configuration (DESIGN.md §16): committers split
// across two segments, each with its own floor domain, so the per-domain
// leases and the sharded floors exercise each other — the config the
// composed machinery exists for. Returns per-domain floor stats (lease
// engagement) plus the slot-locality counters.
struct ShardedResult {
  std::vector<u64> final_vtimes;
  std::vector<sim::EngineDomainFloorStat> domains;
  sim::EngineSchedStats sched;
};

ShardedResult RunSharded(u32 committers, u32 dirty_pages, u32 reps) {
  sim::SimConfig sc;
  sc.host_workers = committers;
  sc.force_threaded = true;
  sim::Engine eng(sc);
  const u32 dom_a = eng.CreateFloorDomain("segA");
  const u32 dom_b = eng.CreateFloorDomain("segB");
  conv::SegmentConfig cfg;
  cfg.size_bytes = 16 * 1024 * 1024;
  cfg.multithreaded_gc = true;
  cfg.offfloor_commit = true;
  conv::SegmentConfig cfg_a = cfg;
  cfg_a.floor_domain = dom_a;
  conv::SegmentConfig cfg_b = cfg;
  cfg_b.floor_domain = dom_b;
  conv::Segment seg_a(eng, cfg_a);
  conv::Segment seg_b(eng, cfg_b);

  ShardedResult r;
  r.final_vtimes.resize(committers);
  std::vector<std::unique_ptr<conv::Workspace>> wss;
  wss.reserve(committers);
  for (u32 t = 0; t < committers; ++t) {
    conv::Segment& seg = (t % 2 == 0) ? seg_a : seg_b;
    wss.push_back(std::make_unique<conv::Workspace>(seg, t));
  }
  for (u32 t = 0; t < committers; ++t) {
    conv::Segment* seg = (t % 2 == 0) ? &seg_a : &seg_b;
    const sim::ThreadId tid = eng.Spawn([&, t, seg] {
      conv::Workspace& w = *wss[t];
      const u64 base_page = static_cast<u64>(t / 2) * dirty_pages;
      for (u32 rep = 0; rep < reps; ++rep) {
        for (u32 p = 0; p < dirty_pages; ++p) {
          w.Store<u64>((base_page + p) * seg->PageSize(), (static_cast<u64>(rep) << 32) | p);
        }
        w.CommitAndUpdate();
        eng.EndShared();
      }
      r.final_vtimes[t] = eng.Now();
    });
    eng.SetDomainAffinity(tid, 1ULL << ((t % 2 == 0) ? dom_a : dom_b));
  }
  eng.Run();
  r.domains = eng.DomainFloorStats();
  r.sched = eng.SchedStats();
  wss.clear();
  return r;
}

}  // namespace
}  // namespace csq

int main() {
  using namespace csq;  // NOLINT
  const bool quick = std::getenv("CSQ_QUICK") != nullptr;
  // Scale reps so every configuration installs about the same number of page
  // revisions (stable timing for small-footprint configs, bounded wall time
  // for large ones).
  const u64 target_pages = quick ? 2048 : 16384;

  std::printf("%-10s %-6s %-6s %14s %14s %9s\n", "committers", "pages", "reps",
              "floor-held(ms)", "off-floor(ms)", "speedup");
  std::vector<std::string> rows;
  double best_speedup_4p = 0.0;   // best at >= 4 committers, >= 64 dirty pages
  bool vtimes_ok = true;
  sim::EngineFloorStats floor_total;  // off-floor modes, summed over the sweep
  sim::EngineSchedStats sched_total;  // slot-locality counters, same scope
  for (u32 committers : {1u, 2u, 4u, 8u}) {
    for (u32 dirty : {1u, 8u, 64u, 512u}) {
      if (const char* only = std::getenv("CSQ_ONLY")) {
        u32 oc = 0, od = 0;
        if (std::sscanf(only, "%u,%u", &oc, &od) == 2 && (oc != committers || od != dirty)) {
          continue;
        }
      }
      const u32 reps = static_cast<u32>(
          std::max<u64>(4, target_pages / (static_cast<u64>(committers) * dirty)));
      // Median-of-3 wall time per mode. The schedule is bit-identical across
      // iterations (asserted below); the median keeps the floor-held mode's
      // typical convoying behavior in the measurement (min-of-N would cherry-
      // pick its rare convoy-free runs) while still shedding one-off outliers.
      ModeResult floor_held = RunMode(committers, dirty, reps, /*offfloor=*/false);
      ModeResult off_floor = RunMode(committers, dirty, reps, /*offfloor=*/true);
      std::vector<double> fh_walls{floor_held.wall_ns};
      std::vector<double> of_walls{off_floor.wall_ns};
      for (int iter = 1; iter < 3; ++iter) {
        const ModeResult fh = RunMode(committers, dirty, reps, /*offfloor=*/false);
        const ModeResult of = RunMode(committers, dirty, reps, /*offfloor=*/true);
        if (fh.final_vtimes != floor_held.final_vtimes ||
            of.final_vtimes != off_floor.final_vtimes) {
          std::fprintf(stderr, "FAIL: committers=%u dirty=%u: nondeterministic across reruns\n",
                       committers, dirty);
          vtimes_ok = false;
        }
        fh_walls.push_back(fh.wall_ns);
        of_walls.push_back(of.wall_ns);
      }
      std::sort(fh_walls.begin(), fh_walls.end());
      std::sort(of_walls.begin(), of_walls.end());
      floor_held.wall_ns = fh_walls[fh_walls.size() / 2];
      off_floor.wall_ns = of_walls[of_walls.size() / 2];
      if (off_floor.final_vtimes != floor_held.final_vtimes) {
        std::fprintf(stderr,
                     "FAIL: committers=%u dirty=%u: off-floor changed the simulated schedule\n",
                     committers, dirty);
        for (u32 t = 0; t < committers; ++t) {
          std::fprintf(stderr, "  tid=%u floor_held_vtime=%llu offfloor_vtime=%llu\n", t,
                       static_cast<unsigned long long>(floor_held.final_vtimes[t]),
                       static_cast<unsigned long long>(off_floor.final_vtimes[t]));
        }
        std::fprintf(stderr,
                     "  floor_held: commits=%llu pages=%llu gc=%llu | offfloor: commits=%llu "
                     "pages=%llu gc=%llu\n",
                     static_cast<unsigned long long>(floor_held.commits),
                     static_cast<unsigned long long>(floor_held.pages_committed),
                     static_cast<unsigned long long>(floor_held.gc_reclaimed),
                     static_cast<unsigned long long>(off_floor.commits),
                     static_cast<unsigned long long>(off_floor.pages_committed),
                     static_cast<unsigned long long>(off_floor.gc_reclaimed));
        vtimes_ok = false;
      }
      const double speedup = off_floor.wall_ns > 0 ? floor_held.wall_ns / off_floor.wall_ns : 0.0;
      if (committers >= 4 && dirty >= 64 && speedup > best_speedup_4p) {
        best_speedup_4p = speedup;
      }
      std::printf("%-10u %-6u %-6u %14.2f %14.2f %8.2fx\n", committers, dirty, reps,
                  floor_held.wall_ns / 1e6, off_floor.wall_ns / 1e6, speedup);
      const double secs_fh = floor_held.wall_ns / 1e9;
      const double secs_of = off_floor.wall_ns / 1e9;
      bench::JsonObj row;
      row.Int("committers", committers)
          .Int("dirty_pages", dirty)
          .Int("reps", reps)
          .Num("floorheld_ms", floor_held.wall_ns / 1e6, 3)
          .Num("offfloor_ms", off_floor.wall_ns / 1e6, 3)
          .Num("floorheld_commits_per_s",
               secs_fh > 0 ? static_cast<double>(floor_held.commits) / secs_fh : 0.0, 0)
          .Num("offfloor_commits_per_s",
               secs_of > 0 ? static_cast<double>(off_floor.commits) / secs_of : 0.0, 0)
          .Int("pages_committed", off_floor.pages_committed)
          .Int("offfloor_pages_installed", off_floor.offfloor_pages)
          .Int("floor_grants", off_floor.floor.floor_grants)
          .Int("lease_hits", off_floor.floor.lease_hits)
          .Int("lazy_retains", off_floor.floor.lazy_retains)
          .Int("wakeup_free_handoffs", off_floor.floor.wakeup_free_handoffs)
          .Int("condvar_handoffs", off_floor.floor.condvar_handoffs)
          .Int("gate_reevals", off_floor.floor.gate_reevals)
          .Int("sched_slot_acquires", off_floor.sched.slot_acquires)
          .Int("sched_affinity_hits", off_floor.sched.affinity_hits)
          .Int("sched_steals", off_floor.sched.steals)
          .Num("speedup", speedup, 3);
      rows.push_back(row.Render());
      floor_total.floor_grants += off_floor.floor.floor_grants;
      floor_total.lease_hits += off_floor.floor.lease_hits;
      floor_total.lazy_retains += off_floor.floor.lazy_retains;
      floor_total.lease_revocations += off_floor.floor.lease_revocations;
      floor_total.wakeup_free_handoffs += off_floor.floor.wakeup_free_handoffs;
      floor_total.condvar_handoffs += off_floor.floor.condvar_handoffs;
      floor_total.gate_reevals += off_floor.floor.gate_reevals;
      sched_total.slot_acquires += off_floor.sched.slot_acquires;
      sched_total.affinity_hits += off_floor.sched.affinity_hits;
      sched_total.hint_grants += off_floor.sched.hint_grants;
      sched_total.steals += off_floor.sched.steals;
      sched_total.cold_starts += off_floor.sched.cold_starts;
      sched_total.host_slots = std::max(sched_total.host_slots, off_floor.sched.host_slots);
    }
  }
  std::printf("best commit-throughput speedup at >=4 committers, >=64 dirty pages: %.2fx\n",
              best_speedup_4p);

  std::printf(
      "floor (off-floor modes): %llu grants, %llu lease hits, %llu lazy retains, "
      "%llu revocations, %llu wakeup-free + %llu condvar handoffs, %llu re-evals\n",
      static_cast<unsigned long long>(floor_total.floor_grants),
      static_cast<unsigned long long>(floor_total.lease_hits),
      static_cast<unsigned long long>(floor_total.lazy_retains),
      static_cast<unsigned long long>(floor_total.lease_revocations),
      static_cast<unsigned long long>(floor_total.wakeup_free_handoffs),
      static_cast<unsigned long long>(floor_total.condvar_handoffs),
      static_cast<unsigned long long>(floor_total.gate_reevals));

  std::printf(
      "sched (off-floor modes): %u slots, %llu acquires, %llu affinity hits, "
      "%llu hint grants, %llu steals, %llu cold starts\n",
      sched_total.host_slots, static_cast<unsigned long long>(sched_total.slot_acquires),
      static_cast<unsigned long long>(sched_total.affinity_hits),
      static_cast<unsigned long long>(sched_total.hint_grants),
      static_cast<unsigned long long>(sched_total.steals),
      static_cast<unsigned long long>(sched_total.cold_starts));

  // Two-segment sharded-domain config: per-domain leases must engage under
  // sharded floors (DESIGN.md §16) and the schedule must stay deterministic.
  const u32 sharded_reps = quick ? 128 : 512;
  const ShardedResult sharded = RunSharded(/*committers=*/4, /*dirty_pages=*/8, sharded_reps);
  const ShardedResult sharded2 = RunSharded(/*committers=*/4, /*dirty_pages=*/8, sharded_reps);
  if (sharded.final_vtimes != sharded2.final_vtimes) {
    std::fprintf(stderr, "FAIL: sharded two-segment config nondeterministic across reruns\n");
    vtimes_ok = false;
  }
  bool sharded_leases_engaged = true;
  std::vector<std::string> sharded_rows;
  for (const sim::EngineDomainFloorStat& d : sharded.domains) {
    if (d.label != "global" && (d.grants == 0 || d.lease_hits == 0)) {
      sharded_leases_engaged = false;
    }
    std::printf("sharded domain '%s': %llu grants, %llu lease hits\n", d.label.c_str(),
                static_cast<unsigned long long>(d.grants),
                static_cast<unsigned long long>(d.lease_hits));
    bench::JsonObj dom_row;
    dom_row.Str("label", d.label).Int("grants", d.grants).Int("lease_hits", d.lease_hits);
    sharded_rows.push_back(dom_row.Render());
  }
  std::printf("sharded per-domain leases engaged: %s\n",
              sharded_leases_engaged ? "yes" : "NO");

  // Overlap needs host parallelism: on a single-core host the pipeline can
  // only remove floor convoying, so the speedup target is unreachable there.
  const unsigned host_cores = bench::HostCores();
  std::printf("host cores: %u%s\n", host_cores,
              host_cores < 2 ? " (single core: no physical overlap possible)" : "");

  bench::JsonObj report;
  report.Str("bench", "micro_commit")
      .Bool("quick", quick)
      .Raw("rows", bench::JsonArr(rows))
      .Int("floor_grants", floor_total.floor_grants)
      .Int("lease_hits", floor_total.lease_hits)
      .Int("lazy_retains", floor_total.lazy_retains)
      .Int("lease_revocations", floor_total.lease_revocations)
      .Int("wakeup_free_handoffs", floor_total.wakeup_free_handoffs)
      .Int("condvar_handoffs", floor_total.condvar_handoffs)
      .Int("gate_reevals", floor_total.gate_reevals)
      .Int("sched_host_slots", sched_total.host_slots)
      .Int("sched_slot_acquires", sched_total.slot_acquires)
      .Int("sched_affinity_hits", sched_total.affinity_hits)
      .Int("sched_hint_grants", sched_total.hint_grants)
      .Int("sched_steals", sched_total.steals)
      .Int("sched_cold_starts", sched_total.cold_starts)
      .Num("affinity_hit_rate",
           sched_total.slot_acquires > 0
               ? static_cast<double>(sched_total.affinity_hits) /
                     static_cast<double>(sched_total.slot_acquires)
               : 0.0)
      .Raw("sharded_domains", bench::JsonArr(sharded_rows))
      .Bool("sharded_leases_engaged", sharded_leases_engaged)
      .Num("best_speedup_4plus_committers_large_footprint", best_speedup_4p, 3)
      .Bool("meets_1p5x_target", best_speedup_4p >= 1.5)
      .Bool("vtimes_identical", vtimes_ok);
  bench::WriteReport("micro_commit", report);
  // Nonzero exit only on a correctness failure (schedule divergence), never on
  // a perf number — CI boxes are noisy.
  return vtimes_ok ? 0 : 1;
}
