// Mechanism microbenchmarks — the paper's illustrative figures as numbers.
//
//   Fig 1  — mismatched synchronization rates: round-robin vs instruction-
//            count ordering when one thread syncs 10x more often.
//   Fig 3  — synchronous (DThreads) vs asynchronous (Conversion) commits when
//            threads do not want to commit simultaneously.
//   Fig 5  — critical sections under different locks run concurrently; only
//            the lock/unlock coordination serializes.
//   Fig 6  — effect of coarsening on a hot lock (coordination folded away).
#include <cstdio>
#include <vector>

#include "src/rt/api.h"

using namespace csq;      // NOLINT
using namespace csq::rt;  // NOLINT

namespace {

RuntimeConfig Cfg(u32 n) {
  RuntimeConfig cfg;
  cfg.nthreads = n;
  cfg.segment.size_bytes = 4 << 20;
  return cfg;
}

u64 Run(Backend b, const RuntimeConfig& cfg, const WorkloadFn& fn) {
  return MakeRuntime(b, cfg)->Run(fn).vtime;
}

// Fig 1: thread A syncs every 2k work units, thread B every 20k.
u64 MismatchedRates(ThreadApi& api) {
  const MutexId ma = api.CreateMutex();
  const MutexId mb = api.CreateMutex();
  std::vector<ThreadHandle> hs;
  hs.push_back(api.SpawnThread([=](ThreadApi& t) {
    for (int i = 0; i < 100; ++i) {
      t.Work(2000);
      t.Lock(ma);
      t.Work(50);
      t.Unlock(ma);
    }
  }));
  hs.push_back(api.SpawnThread([=](ThreadApi& t) {
    for (int i = 0; i < 10; ++i) {
      t.Work(20000);
      t.Lock(mb);
      t.Work(50);
      t.Unlock(mb);
    }
  }));
  for (auto h : hs) {
    api.JoinThread(h);
  }
  return 1;
}

// Fig 3: four threads commit at staggered times (no natural rendezvous).
u64 StaggeredCommits(ThreadApi& api) {
  const MutexId m = api.CreateMutex();
  const u64 data = api.SharedAlloc(64 * 4096, 4096);
  std::vector<ThreadHandle> hs;
  for (u32 w = 0; w < 4; ++w) {
    hs.push_back(api.SpawnThread([=](ThreadApi& t) {
      for (int i = 0; i < 20; ++i) {
        t.Work(3000 + 2500 * t.Tid());  // staggered chunk lengths
        for (u64 p = 0; p < 4; ++p) {
          const u64 a = data + 4096 * ((t.Tid() * 7 + p) % 64);
          t.Store<u64>(a, t.Load<u64>(a) + 1);
        }
        t.Lock(m);
        t.Unlock(m);
      }
    }));
  }
  for (auto h : hs) {
    api.JoinThread(h);
  }
  return 1;
}

// Fig 5: critical sections under distinct locks (local work) vs one lock.
u64 DistinctLocks(ThreadApi& api, bool single_lock) {
  std::vector<MutexId> ms;
  for (int i = 0; i < 4; ++i) {
    ms.push_back(api.CreateMutex());
  }
  std::vector<ThreadHandle> hs;
  for (u32 w = 0; w < 4; ++w) {
    hs.push_back(api.SpawnThread([=, &ms](ThreadApi& t) {
      const MutexId m = single_lock ? ms[0] : ms[(t.Tid() - 1) % 4];
      for (int i = 0; i < 25; ++i) {
        t.Lock(m);
        t.Work(8000);  // long critical section
        t.Unlock(m);
        t.Work(500);
      }
    }));
  }
  for (auto h : hs) {
    api.JoinThread(h);
  }
  return 1;
}

}  // namespace

int main() {
  std::printf("Mechanism microbenchmarks (virtual kcycles, lower is better)\n\n");

  // Fig 1: RR vs IC under mismatched sync rates.
  {
    const u64 rr = Run(Backend::kConsequenceRR, Cfg(2), MismatchedRates);
    const u64 ic = Run(Backend::kConsequenceIC, Cfg(2), MismatchedRates);
    std::printf("Fig 1  mismatched sync rates:   cons-rr=%lluk  cons-ic=%lluk  (IC should win:\n"
                "       the frequent synchronizer no longer waits for the rare one's turn)\n\n",
                (unsigned long long)rr / 1000, (unsigned long long)ic / 1000);
  }

  // Fig 3: synchronous vs asynchronous commits.
  {
    const u64 sync = Run(Backend::kDThreads, Cfg(4), StaggeredCommits);
    const u64 async = Run(Backend::kDwc, Cfg(4), StaggeredCommits);
    std::printf("Fig 3  staggered commits:       dthreads(sync)=%lluk  dwc(async)=%lluk\n"
                "       (asynchronous Conversion commits avoid the rendezvous)\n\n",
                (unsigned long long)sync / 1000, (unsigned long long)async / 1000);
  }

  // Fig 5: distinct locks vs one global lock under Consequence.
  {
    const u64 distinct = Run(Backend::kConsequenceIC, Cfg(4),
                             [](ThreadApi& a) { return DistinctLocks(a, false); });
    const u64 single = Run(Backend::kConsequenceIC, Cfg(4),
                           [](ThreadApi& a) { return DistinctLocks(a, true); });
    std::printf("Fig 5  4 locks vs 1 lock:       distinct=%lluk  single=%lluk\n"
                "       (critical sections under different locks overlap under Consequence)\n\n",
                (unsigned long long)distinct / 1000, (unsigned long long)single / 1000);
  }

  // Fig 6: coarsening on a hot lock.
  {
    RuntimeConfig on = Cfg(4);
    RuntimeConfig off = Cfg(4);
    off.adaptive_coarsening = false;
    const WorkloadFn hot = [](ThreadApi& api) {
      const MutexId m = api.CreateMutex();
      const u64 c = api.SharedAlloc(8);
      std::vector<ThreadHandle> hs;
      for (u32 w = 0; w < 4; ++w) {
        hs.push_back(api.SpawnThread([=](ThreadApi& t) {
          for (int i = 0; i < 200; ++i) {
            t.Work(300);
            t.Lock(m);
            t.Store<u64>(c, t.Load<u64>(c) + 1);
            t.Unlock(m);
          }
        }));
      }
      for (auto h : hs) {
        api.JoinThread(h);
      }
      return api.Load<u64>(c);
    };
    const u64 with = Run(Backend::kConsequenceIC, on, hot);
    const u64 without = Run(Backend::kConsequenceIC, off, hot);
    std::printf("Fig 6  hot fine-grained lock:   coarsening=%lluk  no-coarsening=%lluk\n"
                "       (coarsening folds coordination phases: %0.1fx)\n",
                (unsigned long long)with / 1000, (unsigned long long)without / 1000,
                (double)without / (double)with);
  }
  return 0;
}
