// Wall-clock microbenchmark for the fast-path memory substrate (host CPU
// time, not simulated virtual time). Three phases exercise the hot paths the
// fast-path work targets:
//
//   * loadstore — a mostly-sequential sweep of 8-byte loads/stores through a
//     multi-page window: the Workspace::LoadBytes/StoreBytes path, dominated
//     by page translation (TLB vs hash-map lookup).
//   * merge — two workspaces committing overlapping sparse writes to the same
//     pages every round: the ResolvePage conflict path, dominated by the
//     dirty-word diff/merge (vs the reference whole-page byte loop).
//   * update — a reader with a large cached working set pulling in a small
//     writer's commits every round: the UpdateTo path, dominated by the
//     changed-page enumeration (index vs full cached-set scan).
//   * kernels — raw diff/merge/copy throughput of every simd dispatch level
//     the host can execute (scalar/SSE2/AVX2, DESIGN.md §17), with a
//     cross-level count-identity check.
//
// Prints one JSON line with ns/op per phase plus the fast-path cache
// counters, so successive PRs have a perf trajectory to compare against. The
// workload is deterministic; only the wall-clock timings vary run to run.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/report.h"
#include "src/conv/segment.h"
#include "src/conv/workspace.h"
#include "src/sim/engine.h"
#include "src/simd/kernels.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace csq {
namespace {

struct PhaseResult {
  double ns_per_op = 0.0;
  conv::WorkspaceStats stats;
};

// Phase 1: load/store-heavy. A mostly-sequential walk (with a random far
// access every 32nd op) over a cache-resident window of the segment.
PhaseResult RunLoadStore() {
  PhaseResult out;
  sim::Engine eng;
  conv::Segment seg(eng, {});
  eng.Spawn([&] {
    conv::Workspace ws(seg, 0);
    DetRng rng(11);
    // Working set sized to stay cache-resident: the phase measures the
    // software page-translation path, not DRAM latency (which would be an
    // identical floor under any substrate).
    constexpr u64 kWindow = 1u << 19;   // sequential sweep window (128 pages)
    constexpr u64 kFarSpan = 4u << 20;  // occasional far accesses (1024 pages)
    constexpr u64 kOps = 2'000'000;
    u64 sink = 0;
    WallTimer timer;
    for (u64 i = 0; i < kOps; ++i) {
      u64 addr;
      if ((i & 31) == 31) {
        addr = rng.Below(kFarSpan - 8) & ~7ULL;  // far access (page-cache miss)
      } else {
        addr = (i * 8) & (kWindow - 1);  // sequential sweep
      }
      ws.Store<u64>(addr, sink + i);
      sink += ws.Load<u64>(addr);
    }
    out.ns_per_op = timer.ElapsedNs() / static_cast<double>(2 * kOps);
    out.stats = ws.Stats();
    if (sink == 0xdeadbeef) {
      std::printf("unlikely\n");  // keep `sink` observable
    }
  });
  eng.Run();
  return out;
}

// Phase 2: merge-heavy. Two workspaces write sparse disjoint words into the
// same 64 pages every round, then both commit (the second committer of each
// page must word-merge onto the first) and update.
PhaseResult RunMerge() {
  PhaseResult out;
  sim::Engine eng;
  conv::Segment seg(eng, {});
  eng.Spawn([&] {
    conv::Workspace a(seg, 0);
    conv::Workspace b(seg, 1);
    DetRng rng(22);
    constexpr u32 kPages = 64;
    constexpr u32 kRounds = 300;
    constexpr u32 kWordsPerPage = 6;
    const u32 ps = seg.PageSize();
    u64 pages_merged = 0;
    WallTimer timer;
    for (u32 round = 0; round < kRounds; ++round) {
      for (u32 p = 0; p < kPages; ++p) {
        const u64 base = static_cast<u64>(p) * ps;
        for (u32 k = 0; k < kWordsPerPage; ++k) {
          // Disjoint halves of each page so the merge is conflict-free at
          // byte level but both commits touch every page.
          a.Store<u64>(base + (rng.Below(ps / 2) & ~7ULL), rng.Next() | 1);
          b.Store<u64>(base + ps / 2 + (rng.Below(ps / 2) & ~7ULL), rng.Next() | 1);
        }
      }
      a.Commit();
      b.Commit();  // b's pages all merge onto a's fresh revisions
      a.Update();
      b.Update();
    }
    pages_merged = a.Stats().pages_merged + b.Stats().pages_merged;
    out.ns_per_op = timer.ElapsedNs() / static_cast<double>(pages_merged ? pages_merged : 1);
    out.stats = b.Stats();
  });
  eng.Run();
  return out;
}

// Phase 3: update-heavy. The reader caches a 1024-page working set; the
// writer commits 16 pages per round; each reader update must propagate just
// those 16.
PhaseResult RunUpdate() {
  PhaseResult out;
  sim::Engine eng;
  conv::SegmentConfig cfg;
  cfg.size_bytes = 16 * 1024 * 1024;
  conv::Segment seg(eng, cfg);
  eng.Spawn([&] {
    conv::Workspace writer(seg, 0);
    conv::Workspace reader(seg, 1);
    constexpr u32 kCached = 1024;
    constexpr u32 kPagesPerRound = 16;
    constexpr u32 kRounds = 600;
    const u32 ps = seg.PageSize();
    u64 sink = 0;
    // Populate the reader's cached working set.
    for (u32 p = 0; p < kCached; ++p) {
      sink += reader.Load<u64>(static_cast<u64>(p) * ps);
    }
    DetRng rng(33);
    WallTimer timer;
    for (u32 round = 0; round < kRounds; ++round) {
      for (u32 k = 0; k < kPagesPerRound; ++k) {
        const u64 page = rng.Below(kCached);
        writer.Store<u64>(page * ps + ((round & 63) * 8), rng.Next());
      }
      writer.CommitAndUpdate();
      reader.Update();
    }
    out.ns_per_op = timer.ElapsedNs() / static_cast<double>(kRounds);
    out.stats = reader.Stats();
    if (sink == 0xdeadbeef) {
      std::printf("unlikely\n");
    }
  });
  eng.Run();
  return out;
}

// Phase 4: raw commit-kernel throughput, per dispatch level the host can
// execute (DESIGN.md §17). Measures the three byte-movers of the commit path
// in isolation — twin diff, run-coalesced merge, pooled-buffer copy — over an
// L2-resident working set, so the numbers are kernel speed, not DRAM
// bandwidth. Every level must report identical diff/merge counts (the
// determinism claim in microcosm); `counts_identical` gates that in CI.
struct KernelLevelResult {
  simd::Level level;
  double diff_mbps = 0.0;
  double merge_mbps = 0.0;
  double copy_mbps = 0.0;
  usize diff_set_words = 0;
  usize merge_bytes = 0;
  usize merge_words = 0;
};

std::vector<KernelLevelResult> RunKernelPhase() {
  constexpr usize kPage = 4096;
  constexpr usize kPages = 16;  // 3 buffers x 64 KiB: L2-resident
  constexpr usize kBytes = kPage * kPages;
  constexpr u32 kDiffReps = 4000;
  constexpr u32 kMergeReps = 2000;
  constexpr u32 kCopyReps = 4000;
  const usize blocks = simd::BitmapBlocks(kBytes);

  // mine/twin: a commit-shaped diff — most words clean, 6 dirty words per
  // page (matches the merge phase's write density) so the twin diff is
  // compare-bound. The dense pair (dmine) differs in ~half its bytes in
  // every word, so the merge blend path does real byte work per vector.
  std::vector<u8> twin(kBytes);
  std::vector<u8> mine(kBytes);
  std::vector<u8> dmine(kBytes);
  std::vector<u8> base(kBytes);
  DetRng rng(44);
  for (usize i = 0; i < kBytes; ++i) {
    twin[i] = static_cast<u8>(rng.Next());
    mine[i] = twin[i];
    dmine[i] = (rng.Below(2) == 0) ? static_cast<u8>(twin[i] ^ (1 + rng.Below(255))) : twin[i];
    base[i] = static_cast<u8>(rng.Next());
  }
  for (usize p = 0; p < kPages; ++p) {
    for (u32 k = 0; k < 6; ++k) {
      mine[p * kPage + (rng.Below(kPage) & ~7ULL)] ^= static_cast<u8>(1 + rng.Below(255));
    }
  }
  std::vector<u64> all_dirty(blocks, ~0ULL);
  const usize tail_words = ((kBytes + 7) / 8) & 63;
  if (tail_words != 0) {
    all_dirty.back() = ~0ULL >> (64 - tail_words);
  }
  std::vector<u64> diff_bits(blocks);
  std::vector<u8> copy_dst(kBytes);

  std::vector<KernelLevelResult> out;
  for (simd::Level l : {simd::Level::kScalar, simd::Level::kSse2, simd::Level::kAvx2}) {
    if (l > simd::DetectedLevel()) {
      continue;
    }
    const simd::PageKernels& k = simd::KernelsFor(l);
    KernelLevelResult r;
    r.level = l;

    usize sink = 0;
    WallTimer diff_timer;
    for (u32 rep = 0; rep < kDiffReps; ++rep) {
      sink += k.diff_words(mine.data(), twin.data(), kBytes, nullptr, diff_bits.data());
    }
    r.diff_mbps = static_cast<double>(kBytes) * kDiffReps / (diff_timer.ElapsedNs() / 1e9) / 1e6;
    r.diff_set_words = sink / kDiffReps;

    // Merge is idempotent after the first rep (the same bytes re-apply), so
    // every rep does identical load/blend/store work without a reset copy in
    // the timed loop.
    std::vector<u8> merge_base = base;
    simd::DiffMergeCounts mc;
    WallTimer merge_timer;
    for (u32 rep = 0; rep < kMergeReps; ++rep) {
      mc = k.merge_runs(merge_base.data(), dmine.data(), twin.data(), kBytes, all_dirty.data());
    }
    r.merge_mbps =
        static_cast<double>(kBytes) * kMergeReps / (merge_timer.ElapsedNs() / 1e9) / 1e6;
    r.merge_bytes = mc.bytes;
    r.merge_words = mc.words;

    WallTimer copy_timer;
    for (u32 rep = 0; rep < kCopyReps; ++rep) {
      k.copy_bytes(copy_dst.data(), (rep & 1) ? twin.data() : dmine.data(), kBytes);
    }
    r.copy_mbps = static_cast<double>(kBytes) * kCopyReps / (copy_timer.ElapsedNs() / 1e9) / 1e6;
    if (copy_dst[0] == 0 && sink == 0xdeadbeef) {
      std::printf("unlikely\n");  // keep the timed loops observable
    }
    out.push_back(r);
  }
  return out;
}

}  // namespace
}  // namespace csq

int main() {
  using namespace csq;  // NOLINT
  const PhaseResult ls = RunLoadStore();
  const PhaseResult mg = RunMerge();
  const PhaseResult up = RunUpdate();
  const std::vector<KernelLevelResult> kr = RunKernelPhase();
  const conv::WorkspaceStats& s = ls.stats;

  // Per-kernel columns: every usable dispatch level, scalar first. Counts
  // must be identical at every level — the kernels change how bytes move,
  // never which.
  bool counts_identical = true;
  for (const KernelLevelResult& r : kr) {
    counts_identical = counts_identical && r.diff_set_words == kr.front().diff_set_words &&
                       r.merge_bytes == kr.front().merge_bytes &&
                       r.merge_words == kr.front().merge_words;
  }
  const char* active = simd::LevelName(simd::ActiveLevel());
  std::printf("kernel   diff MB/s  merge MB/s   copy MB/s\n");
  for (const KernelLevelResult& r : kr) {
    std::printf("%-6s %11.0f %11.0f %11.0f%s\n", simd::LevelName(r.level), r.diff_mbps,
                r.merge_mbps, r.copy_mbps,
                r.level == simd::ActiveLevel() ? "   <- active" : "");
  }
  double diff_speedup = 1.0;
  double merge_speedup = 1.0;
  for (const KernelLevelResult& r : kr) {
    if (r.level == simd::ActiveLevel() && kr.front().diff_mbps > 0 &&
        kr.front().merge_mbps > 0) {
      diff_speedup = r.diff_mbps / kr.front().diff_mbps;
      merge_speedup = r.merge_mbps / kr.front().merge_mbps;
    }
  }
  std::printf("simd: active %s (detected %s), diff %.2fx / merge %.2fx vs scalar, counts %s\n",
              active, simd::LevelName(simd::DetectedLevel()), diff_speedup, merge_speedup,
              counts_identical ? "identical" : "DIVERGED");
  std::printf(
      "{\"bench\":\"micro_pagepath\","
      "\"loadstore_ns_per_op\":%.2f,"
      "\"merge_ns_per_page\":%.2f,"
      "\"update_ns_per_round\":%.2f,"
      "\"tlb_hit_rate\":%.4f,"
      "\"tlb_hits\":%llu,\"tlb_misses\":%llu,"
      "\"merge_words_merged\":%llu,"
      "\"merge_pool_reuses\":%llu,"
      "\"update_pool_reuses\":%llu}\n",
      ls.ns_per_op, mg.ns_per_op, up.ns_per_op, HitRate(s.tlb_hits, s.tlb_misses),
      static_cast<unsigned long long>(s.tlb_hits), static_cast<unsigned long long>(s.tlb_misses),
      static_cast<unsigned long long>(mg.stats.words_merged),
      static_cast<unsigned long long>(mg.stats.pool_reuses),
      static_cast<unsigned long long>(up.stats.pool_reuses));
  bench::JsonObj report;
  report.Str("bench", "micro_pagepath")
      .Int("host_workers", 1)  // single-fiber phases; the engine stays serial
      .Num("loadstore_ns_per_op", ls.ns_per_op, 2)
      .Num("merge_ns_per_page", mg.ns_per_op, 2)
      .Num("update_ns_per_round", up.ns_per_op, 2)
      .Num("tlb_hit_rate", HitRate(s.tlb_hits, s.tlb_misses), 4)
      .Int("tlb_hits", s.tlb_hits)
      .Int("tlb_misses", s.tlb_misses)
      .Int("merge_words_merged", mg.stats.words_merged)
      .Int("merge_pool_reuses", mg.stats.pool_reuses)
      .Int("update_pool_reuses", up.stats.pool_reuses)
      .Str("simd_level", active)
      .Str("simd_detected", simd::LevelName(simd::DetectedLevel()))
      .Num("diff_speedup_vs_scalar", diff_speedup, 3)
      .Num("merge_speedup_vs_scalar", merge_speedup, 3)
      .Bool("simd_counts_identical", counts_identical);
  for (const KernelLevelResult& r : kr) {
    const std::string suffix = simd::LevelName(r.level);
    report.Num("diff_mbps_" + suffix, r.diff_mbps, 1)
        .Num("merge_mbps_" + suffix, r.merge_mbps, 1)
        .Num("copy_mbps_" + suffix, r.copy_mbps, 1);
  }
  bench::WriteReport("micro_pagepath", report);
  return 0;
}
