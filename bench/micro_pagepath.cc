// Wall-clock microbenchmark for the fast-path memory substrate (host CPU
// time, not simulated virtual time). Three phases exercise the hot paths the
// fast-path work targets:
//
//   * loadstore — a mostly-sequential sweep of 8-byte loads/stores through a
//     multi-page window: the Workspace::LoadBytes/StoreBytes path, dominated
//     by page translation (TLB vs hash-map lookup).
//   * merge — two workspaces committing overlapping sparse writes to the same
//     pages every round: the ResolvePage conflict path, dominated by the
//     dirty-word diff/merge (vs the reference whole-page byte loop).
//   * update — a reader with a large cached working set pulling in a small
//     writer's commits every round: the UpdateTo path, dominated by the
//     changed-page enumeration (index vs full cached-set scan).
//
// Prints one JSON line with ns/op per phase plus the fast-path cache
// counters, so successive PRs have a perf trajectory to compare against. The
// workload is deterministic; only the wall-clock timings vary run to run.
#include <cstdio>

#include "bench/report.h"
#include "src/conv/segment.h"
#include "src/conv/workspace.h"
#include "src/sim/engine.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace csq {
namespace {

struct PhaseResult {
  double ns_per_op = 0.0;
  conv::WorkspaceStats stats;
};

// Phase 1: load/store-heavy. A mostly-sequential walk (with a random far
// access every 32nd op) over a cache-resident window of the segment.
PhaseResult RunLoadStore() {
  PhaseResult out;
  sim::Engine eng;
  conv::Segment seg(eng, {});
  eng.Spawn([&] {
    conv::Workspace ws(seg, 0);
    DetRng rng(11);
    // Working set sized to stay cache-resident: the phase measures the
    // software page-translation path, not DRAM latency (which would be an
    // identical floor under any substrate).
    constexpr u64 kWindow = 1u << 19;   // sequential sweep window (128 pages)
    constexpr u64 kFarSpan = 4u << 20;  // occasional far accesses (1024 pages)
    constexpr u64 kOps = 2'000'000;
    u64 sink = 0;
    WallTimer timer;
    for (u64 i = 0; i < kOps; ++i) {
      u64 addr;
      if ((i & 31) == 31) {
        addr = rng.Below(kFarSpan - 8) & ~7ULL;  // far access (page-cache miss)
      } else {
        addr = (i * 8) & (kWindow - 1);  // sequential sweep
      }
      ws.Store<u64>(addr, sink + i);
      sink += ws.Load<u64>(addr);
    }
    out.ns_per_op = timer.ElapsedNs() / static_cast<double>(2 * kOps);
    out.stats = ws.Stats();
    if (sink == 0xdeadbeef) {
      std::printf("unlikely\n");  // keep `sink` observable
    }
  });
  eng.Run();
  return out;
}

// Phase 2: merge-heavy. Two workspaces write sparse disjoint words into the
// same 64 pages every round, then both commit (the second committer of each
// page must word-merge onto the first) and update.
PhaseResult RunMerge() {
  PhaseResult out;
  sim::Engine eng;
  conv::Segment seg(eng, {});
  eng.Spawn([&] {
    conv::Workspace a(seg, 0);
    conv::Workspace b(seg, 1);
    DetRng rng(22);
    constexpr u32 kPages = 64;
    constexpr u32 kRounds = 300;
    constexpr u32 kWordsPerPage = 6;
    const u32 ps = seg.PageSize();
    u64 pages_merged = 0;
    WallTimer timer;
    for (u32 round = 0; round < kRounds; ++round) {
      for (u32 p = 0; p < kPages; ++p) {
        const u64 base = static_cast<u64>(p) * ps;
        for (u32 k = 0; k < kWordsPerPage; ++k) {
          // Disjoint halves of each page so the merge is conflict-free at
          // byte level but both commits touch every page.
          a.Store<u64>(base + (rng.Below(ps / 2) & ~7ULL), rng.Next() | 1);
          b.Store<u64>(base + ps / 2 + (rng.Below(ps / 2) & ~7ULL), rng.Next() | 1);
        }
      }
      a.Commit();
      b.Commit();  // b's pages all merge onto a's fresh revisions
      a.Update();
      b.Update();
    }
    pages_merged = a.Stats().pages_merged + b.Stats().pages_merged;
    out.ns_per_op = timer.ElapsedNs() / static_cast<double>(pages_merged ? pages_merged : 1);
    out.stats = b.Stats();
  });
  eng.Run();
  return out;
}

// Phase 3: update-heavy. The reader caches a 1024-page working set; the
// writer commits 16 pages per round; each reader update must propagate just
// those 16.
PhaseResult RunUpdate() {
  PhaseResult out;
  sim::Engine eng;
  conv::SegmentConfig cfg;
  cfg.size_bytes = 16 * 1024 * 1024;
  conv::Segment seg(eng, cfg);
  eng.Spawn([&] {
    conv::Workspace writer(seg, 0);
    conv::Workspace reader(seg, 1);
    constexpr u32 kCached = 1024;
    constexpr u32 kPagesPerRound = 16;
    constexpr u32 kRounds = 600;
    const u32 ps = seg.PageSize();
    u64 sink = 0;
    // Populate the reader's cached working set.
    for (u32 p = 0; p < kCached; ++p) {
      sink += reader.Load<u64>(static_cast<u64>(p) * ps);
    }
    DetRng rng(33);
    WallTimer timer;
    for (u32 round = 0; round < kRounds; ++round) {
      for (u32 k = 0; k < kPagesPerRound; ++k) {
        const u64 page = rng.Below(kCached);
        writer.Store<u64>(page * ps + ((round & 63) * 8), rng.Next());
      }
      writer.CommitAndUpdate();
      reader.Update();
    }
    out.ns_per_op = timer.ElapsedNs() / static_cast<double>(kRounds);
    out.stats = reader.Stats();
    if (sink == 0xdeadbeef) {
      std::printf("unlikely\n");
    }
  });
  eng.Run();
  return out;
}

}  // namespace
}  // namespace csq

int main() {
  using namespace csq;  // NOLINT
  const PhaseResult ls = RunLoadStore();
  const PhaseResult mg = RunMerge();
  const PhaseResult up = RunUpdate();
  const conv::WorkspaceStats& s = ls.stats;
  std::printf(
      "{\"bench\":\"micro_pagepath\","
      "\"loadstore_ns_per_op\":%.2f,"
      "\"merge_ns_per_page\":%.2f,"
      "\"update_ns_per_round\":%.2f,"
      "\"tlb_hit_rate\":%.4f,"
      "\"tlb_hits\":%llu,\"tlb_misses\":%llu,"
      "\"merge_words_merged\":%llu,"
      "\"merge_pool_reuses\":%llu,"
      "\"update_pool_reuses\":%llu}\n",
      ls.ns_per_op, mg.ns_per_op, up.ns_per_op, HitRate(s.tlb_hits, s.tlb_misses),
      static_cast<unsigned long long>(s.tlb_hits), static_cast<unsigned long long>(s.tlb_misses),
      static_cast<unsigned long long>(mg.stats.words_merged),
      static_cast<unsigned long long>(mg.stats.pool_reuses),
      static_cast<unsigned long long>(up.stats.pool_reuses));
  bench::JsonObj report;
  report.Str("bench", "micro_pagepath")
      .Int("host_workers", 1)  // single-fiber phases; the engine stays serial
      .Num("loadstore_ns_per_op", ls.ns_per_op, 2)
      .Num("merge_ns_per_page", mg.ns_per_op, 2)
      .Num("update_ns_per_round", up.ns_per_op, 2)
      .Num("tlb_hit_rate", HitRate(s.tlb_hits, s.tlb_misses), 4)
      .Int("tlb_hits", s.tlb_hits)
      .Int("tlb_misses", s.tlb_misses)
      .Int("merge_words_merged", mg.stats.words_merged)
      .Int("merge_pool_reuses", mg.stats.pool_reuses)
      .Int("update_pool_reuses", up.stats.pool_reuses);
  bench::WriteReport("micro_pagepath", report);
  return 0;
}
