// Wall-clock microbenchmarks (google-benchmark) for the substrate hot paths:
// page diff/merge, workspace load/store, commit/update, token handoff, and
// whole-simulation throughput. These measure the reproduction's own
// implementation speed (host CPU time), unlike the fig* binaries which report
// simulated virtual time.
#include <benchmark/benchmark.h>

#include "src/clock/det_clock.h"
#include "src/conv/segment.h"
#include "src/conv/workspace.h"
#include "src/rt/api.h"
#include "src/sim/engine.h"
#include "src/util/rng.h"

namespace csq {
namespace {

void BM_PageMerge(benchmark::State& state) {
  conv::PageBuf base(4096), mine(4096), twin(4096);
  DetRng rng(1);
  for (usize i = 0; i < 4096; ++i) {
    twin[i] = static_cast<u8>(rng.Next());
    mine[i] = (i % 16 == 0) ? static_cast<u8>(rng.Next()) : twin[i];
    base[i] = static_cast<u8>(rng.Next());
  }
  for (auto _ : state) {
    conv::PageBuf b = base;
    benchmark::DoNotOptimize(conv::MergeInto(b, mine, twin));
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 4096);
}
BENCHMARK(BM_PageMerge);

void BM_WorkspaceStoreLoad(benchmark::State& state) {
  sim::Engine eng;
  conv::Segment seg(eng, {});
  u64 total = 0;
  eng.Spawn([&] {
    conv::Workspace ws(seg, 0);
    DetRng rng(2);
    // Run the benchmark loop inside the simulation (single fiber, no yields).
    for (auto _ : state) {
      const u64 addr = rng.Below(1 << 20) & ~7ULL;
      ws.Store<u64>(addr, total);
      total += ws.Load<u64>(addr);
    }
  });
  eng.Run();
  benchmark::DoNotOptimize(total);
}
BENCHMARK(BM_WorkspaceStoreLoad);

void BM_CommitUpdateCycle(benchmark::State& state) {
  const i64 pages = state.range(0);
  sim::Engine eng;
  conv::Segment seg(eng, {});
  eng.Spawn([&] {
    conv::Workspace ws(seg, 0);
    for (auto _ : state) {
      for (i64 p = 0; p < pages; ++p) {
        ws.Store<u64>(static_cast<u64>(p) * 4096, static_cast<u64>(p));
      }
      ws.CommitAndUpdate();
    }
  });
  eng.Run();
  state.SetItemsProcessed(state.iterations() * pages);
}
BENCHMARK(BM_CommitUpdateCycle)->Arg(1)->Arg(8)->Arg(64);

void BM_TokenHandoff(benchmark::State& state) {
  // Two simulated threads ping-ponging the deterministic token.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine eng;
    clk::DetClock clock(eng, clk::ClockConfig{});
    state.ResumeTiming();
    for (u32 tid : {0u, 1u}) {
      eng.Spawn([&, tid] {
        if (tid == 0) {
          clock.RegisterThread(0, 0);
          clock.RegisterThread(1, 0);
        }
        for (int i = 0; i < 500; ++i) {
          clock.AdvanceWork(tid, 100);
          clock.WaitToken(tid);
          clock.ReleaseToken(tid);
        }
        clock.FinishThread(tid);
      });
    }
    eng.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TokenHandoff);

void BM_FiberSwitch(benchmark::State& state) {
  // Round-trip context switches through the scheduler.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine eng;
    state.ResumeTiming();
    for (int t = 0; t < 2; ++t) {
      eng.Spawn([&] {
        for (int i = 0; i < 1000; ++i) {
          eng.AdvanceRaw(1, sim::TimeCat::kChunk);
          eng.YieldRunnable();
        }
      });
    }
    eng.Run();
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_FiberSwitch);

void BM_EndToEndLockedCounter(benchmark::State& state) {
  // Whole-stack throughput: a locked-counter program on Consequence-IC.
  for (auto _ : state) {
    rt::RuntimeConfig cfg;
    cfg.nthreads = 4;
    cfg.segment.size_bytes = 1 << 20;
    auto runtime = rt::MakeRuntime(rt::Backend::kConsequenceIC, cfg);
    const rt::RunResult r = runtime->Run([](rt::ThreadApi& api) {
      const u64 c = api.SharedAlloc(8);
      const rt::MutexId m = api.CreateMutex();
      std::vector<rt::ThreadHandle> hs;
      for (u32 w = 0; w < 4; ++w) {
        hs.push_back(api.SpawnThread([=](rt::ThreadApi& t) {
          for (int i = 0; i < 50; ++i) {
            t.Work(500);
            t.Lock(m);
            t.Store<u64>(c, t.Load<u64>(c) + 1);
            t.Unlock(m);
          }
        }));
      }
      for (auto h : hs) {
        api.JoinThread(h);
      }
      return api.Load<u64>(c);
    });
    benchmark::DoNotOptimize(r.checksum);
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_EndToEndLockedCounter);

}  // namespace
}  // namespace csq

BENCHMARK_MAIN();
