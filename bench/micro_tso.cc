// Wall-clock microbenchmark for the TSO conformance subsystem (host CPU
// time, not simulated virtual time). Two phases:
//
//   * explore — exhaustive schedule exploration of the SB and MP+fences
//     shapes on cons-ic: runs/second through the replay arbiter, plus the
//     pruning ratio. This is the cost that bounds how large a litmus the
//     explorer can exhaust, so it needs a perf trajectory across PRs.
//   * oracle — trace-recording runs of MP+fences: the overhead the
//     TraceRecorder observer adds over a bare run, measured as ns/run both
//     ways. The recorder must stay cheap enough to leave on in every CI run.
//
// Prints one JSON line. The workload is deterministic; only the wall-clock
// timings vary run to run.
#include <cstdio>

#include "bench/report.h"
#include "src/tso/explorer.h"
#include "src/tso/litmus.h"
#include "src/tso/runner.h"
#include "src/tso/trace.h"
#include "src/util/stats.h"

namespace csq {
namespace {

rt::RuntimeConfig BaseCfg() {
  rt::RuntimeConfig cfg;
  cfg.segment.size_bytes = 1 << 20;
  return cfg;
}

struct ExplorePhase {
  u64 runs = 0;
  u64 pruned = 0;
  double runs_per_sec = 0.0;
};

ExplorePhase RunExplore() {
  ExplorePhase out;
  WallTimer timer;
  for (const char* name : {"SB", "MP+fences"}) {
    const tso::LitmusShape& shape = tso::ShapeByName(name);
    const tso::ExploreResult r =
        tso::Explore(rt::Backend::kConsequenceIC, shape.litmus, BaseCfg());
    out.runs += r.runs;
    out.pruned += r.pruned_branches;
  }
  out.runs_per_sec = out.runs / (timer.ElapsedNs() / 1e9);
  return out;
}

struct OraclePhase {
  double bare_ns_per_run = 0.0;
  double traced_ns_per_run = 0.0;
  u64 trace_events = 0;
};

OraclePhase RunOracle() {
  constexpr u64 kRuns = 200;
  OraclePhase out;
  const tso::LitmusShape& shape = tso::ShapeByName("MP+fences");
  {
    WallTimer timer;
    for (u64 i = 0; i < kRuns; ++i) {
      tso::RunLitmus(rt::Backend::kConsequenceIC, shape.litmus, BaseCfg());
    }
    out.bare_ns_per_run = timer.ElapsedNs() / static_cast<double>(kRuns);
  }
  {
    WallTimer timer;
    for (u64 i = 0; i < kRuns; ++i) {
      tso::TraceRecorder rec;
      rt::RuntimeConfig cfg = BaseCfg();
      cfg.observer = &rec;
      tso::RunLitmus(rt::Backend::kConsequenceIC, shape.litmus, cfg);
      out.trace_events = rec.Trace().EventCount();
    }
    out.traced_ns_per_run = timer.ElapsedNs() / static_cast<double>(kRuns);
  }
  return out;
}

}  // namespace
}  // namespace csq

int main() {
  using namespace csq;  // NOLINT
  const ExplorePhase ex = RunExplore();
  const OraclePhase orc = RunOracle();
  std::printf(
      "{\"bench\":\"micro_tso\","
      "\"explore_runs\":%llu,"
      "\"explore_pruned\":%llu,"
      "\"explore_runs_per_sec\":%.0f,"
      "\"oracle_bare_ns_per_run\":%.0f,"
      "\"oracle_traced_ns_per_run\":%.0f,"
      "\"oracle_trace_overhead\":%.3f,"
      "\"oracle_trace_events\":%llu}\n",
      static_cast<unsigned long long>(ex.runs), static_cast<unsigned long long>(ex.pruned),
      ex.runs_per_sec, orc.bare_ns_per_run, orc.traced_ns_per_run,
      orc.traced_ns_per_run / (orc.bare_ns_per_run > 0 ? orc.bare_ns_per_run : 1.0),
      static_cast<unsigned long long>(orc.trace_events));
  bench::JsonObj report;
  report.Str("bench", "micro_tso")
      .Int("host_workers", BaseCfg().host_workers)
      .Int("explore_runs", ex.runs)
      .Int("explore_pruned", ex.pruned)
      .Num("explore_runs_per_sec", ex.runs_per_sec, 0)
      .Num("oracle_bare_ns_per_run", orc.bare_ns_per_run, 0)
      .Num("oracle_traced_ns_per_run", orc.traced_ns_per_run, 0)
      .Num("oracle_trace_overhead",
           orc.traced_ns_per_run / (orc.bare_ns_per_run > 0 ? orc.bare_ns_per_run : 1.0), 3)
      .Int("oracle_trace_events", orc.trace_events);
  bench::WriteReport("micro_tso", report);
  return 0;
}
