// Race-analyzer bench (DESIGN.md §13, §18): determinism identity + overhead.
//
// Runs canneal — the intentionally racy PARSEC workload whose lock-free swaps
// the byte-granularity merge silently resolves — with the commit-time race
// analyzer attached, and
//
//   1. asserts the canonical classified race report is byte-identical across
//      the serial and host-parallel engines (1/2/4 workers), off-floor commit
//      on/off — exits nonzero on any divergence, so CI catches
//      nondeterminism;
//   2. measures analyzer overhead: median-of-3 wall clock for analyzer off,
//      WW-only, and WW+RW (track_reads) on the same configuration;
//   3. writes BENCH_race_analyzer.json and the RACE_race_analyzer.json
//      artifact, and prints the report table + per-site heatmap (the README
//      quickstart). `--gen-suppressions` additionally prints a ready-to-paste
//      suppression block per surviving record.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/report.h"
#include "src/harness/harness.h"
#include "src/race/report.h"
#include "src/race/suppress.h"
#include "src/rt/api.h"
#include "src/wl/workloads.h"

namespace csq {
namespace {

rt::RuntimeConfig Cfg(u32 nthreads, u32 host_workers, bool offfloor, bool enabled,
                      bool track_reads) {
  rt::RuntimeConfig cfg = harness::DefaultConfig(nthreads);
  cfg.host_workers = host_workers;
  cfg.segment.offfloor_commit = offfloor;
  cfg.race.enabled = enabled;
  cfg.race.track_reads = track_reads;
  return cfg;
}

rt::RunResult RunCanneal(const rt::RuntimeConfig& cfg) {
  const wl::WorkloadInfo* w = wl::FindWorkload("canneal");
  return harness::RunOne(*w, rt::Backend::kConsequenceIC, cfg.nthreads, &cfg);
}

double MedianOf3Ms(const rt::RuntimeConfig& cfg) {
  std::vector<double> ms;
  for (int i = 0; i < 3; ++i) {
    ms.push_back(static_cast<double>(RunCanneal(cfg).host_wall_ns) / 1e6);
  }
  std::sort(ms.begin(), ms.end());
  return ms[1];
}

int Main(int argc, char** argv) {
  const u32 nthreads = 8;
  bool gen_suppressions = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gen-suppressions") == 0) {
      gen_suppressions = true;
    }
  }

  // 1. Identity across engines / worker counts / off-floor commit.
  const rt::RunResult ref = RunCanneal(Cfg(nthreads, 1, true, true, true));
  const std::string canon = race::CanonicalLines(ref.races);
  if (ref.races.empty()) {
    std::fprintf(stderr, "race_analyzer: canneal produced no races — kernel regressed?\n");
    return 1;
  }
  int divergences = 0;
  for (u32 workers : {1u, 2u, 4u}) {
    for (bool offfloor : {true, false}) {
      const rt::RunResult r = RunCanneal(Cfg(nthreads, workers, offfloor, true, true));
      if (race::CanonicalLines(r.races) != canon || r.race_ww != ref.race_ww ||
          r.race_rw != ref.race_rw || r.race_racy != ref.race_racy ||
          r.race_ordered != ref.race_ordered) {
        std::fprintf(stderr,
                     "race_analyzer: DIVERGED at host_workers=%u offfloor=%d "
                     "(records %zu vs %zu, ww %llu vs %llu, rw %llu vs %llu, "
                     "racy %llu vs %llu)\n",
                     workers, offfloor ? 1 : 0, r.races.size(), ref.races.size(),
                     static_cast<unsigned long long>(r.race_ww),
                     static_cast<unsigned long long>(ref.race_ww),
                     static_cast<unsigned long long>(r.race_rw),
                     static_cast<unsigned long long>(ref.race_rw),
                     static_cast<unsigned long long>(r.race_racy),
                     static_cast<unsigned long long>(ref.race_racy));
        ++divergences;
      }
    }
  }

  // 2. Overhead: analyzer off vs WW-only vs WW+RW, serial engine (stable
  //    wall clock on small CI hosts).
  const double off_ms = MedianOf3Ms(Cfg(nthreads, 1, true, false, false));
  const double ww_ms = MedianOf3Ms(Cfg(nthreads, 1, true, true, false));
  const double rw_ms = MedianOf3Ms(Cfg(nthreads, 1, true, true, true));

  // 3. Artifacts + quickstart table.
  std::printf("canneal, %u threads: %zu deduped race records, %llu racy / %llu "
              "lock-ordered (%llu WW / %llu RW dynamic occurrences)\n",
              nthreads, ref.races.size(), static_cast<unsigned long long>(ref.race_racy),
              static_cast<unsigned long long>(ref.race_ordered),
              static_cast<unsigned long long>(ref.race_ww),
              static_cast<unsigned long long>(ref.race_rw));
  // Show a digestible slice; RACE_race_analyzer.json carries the full set.
  constexpr usize kShown = 24;
  if (ref.races.size() > kShown) {
    std::printf("(first %zu records; full set in RACE_race_analyzer.json)\n", kShown);
    race::RenderTable(std::cout,
                      {ref.races.begin(), ref.races.begin() + static_cast<std::ptrdiff_t>(kShown)});
  } else {
    race::RenderTable(std::cout, ref.races);
  }
  std::printf("site heatmap:\n");
  race::RenderHeatmap(std::cout, race::BuildHeatmap(ref.races));
  std::printf("analyzer off %.2f ms | WW-only %.2f ms (%.3fx) | WW+RW %.2f ms (%.3fx)\n",
              off_ms, ww_ms, ww_ms / off_ms, rw_ms, rw_ms / off_ms);
  if (gen_suppressions) {
    // Ready-to-paste blocks (the README flow: save as canneal.supp, point
    // CSQ_RACE_SUPPRESSIONS at it, and the next run reports zero records).
    std::printf("# --gen-suppressions output: one block per surviving record\n%s",
                race::GenSuppressions(ref.races).c_str());
  }

  race::Report rep;
  rep.records = ref.races;
  rep.ww = ref.race_ww;
  rep.rw = ref.race_rw;
  rep.dropped = ref.race_dropped;
  rep.racy_records = ref.race_racy;
  rep.ordered_records = ref.race_ordered;
  rep.suppressed_records = ref.race_suppressed;
  race::WriteRaceReport("race_analyzer", rep);

  bench::JsonObj obj;
  obj.Str("bench", "race_analyzer")
      .Str("workload", "canneal")
      .Int("nthreads", nthreads)
      .Bool("identity_ok", divergences == 0)
      .Int("records", ref.races.size())
      .Int("racy_records", ref.race_racy)
      .Int("ordered_records", ref.race_ordered)
      .Int("ww_occurrences", ref.race_ww)
      .Int("rw_occurrences", ref.race_rw)
      .Int("dropped", ref.race_dropped)
      .Num("analyzer_off_ms", off_ms, 3)
      .Num("ww_only_ms", ww_ms, 3)
      .Num("ww_rw_ms", rw_ms, 3)
      .Num("ww_overhead_x", ww_ms / off_ms, 4)
      .Num("ww_rw_overhead_x", rw_ms / off_ms, 4)
      // Higher-is-better ratios for the bench_diff.py gate: baseline / with-
      // analyzer wall time, so analyzer slowdowns regress the gated metric.
      .Num("ww_efficiency", off_ms / ww_ms, 4)
      .Num("ww_rw_efficiency", off_ms / rw_ms, 4);
  bench::WriteReport("race_analyzer", obj);
  return divergences == 0 ? 0 : 1;
}

}  // namespace
}  // namespace csq

int main(int argc, char** argv) { return csq::Main(argc, argv); }
