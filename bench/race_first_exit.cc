// First-exit CI fixture (DESIGN.md §18): proves the DRD-style
// CSQ_RACE_FIRST_EXIT mode does what CI relies on, in both directions.
//
//   --inject   runs a deliberately racy kernel; the analyzer's first-exit
//              default handler must terminate the process with
//              race::kFirstExitCode (66) and one canonical record on stderr.
//              Reaching main's epilogue means the mode is broken: exit 1.
//   (default)  runs a lock-disciplined kernel with disjoint per-worker
//              writes; the run must complete cleanly (exit 0) with zero racy
//              records even with CSQ_RACE_FIRST_EXIT=1 exported.
//
// The config comes from harness::DefaultConfig so the env plumbing
// (CSQ_RACE_FIRST_EXIT, CSQ_RACE_SUPPRESSIONS) is exercised end to end; when
// the env var is absent (manual runs) the fixture arms the mode itself.
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/harness/harness.h"
#include "src/race/race.h"
#include "src/rt/api.h"

namespace csq {
namespace {

u64 RacyKernel(rt::ThreadApi& api) {
  const u64 shared = api.SharedAlloc(256, 4096, "fixture.shared");
  std::vector<rt::ThreadHandle> hs;
  for (u32 w = 0; w < 2; ++w) {
    hs.push_back(api.SpawnThread([shared, w](rt::ThreadApi& t) {
      u8 buf[64];
      std::memset(buf, 0x40 + static_cast<int>(w), sizeof(buf));
      for (int i = 0; i < 8; ++i) {
        t.StoreBytes(shared, buf, sizeof(buf));
        t.Fence();
        t.Work(500);
      }
    }));
  }
  for (const rt::ThreadHandle h : hs) {
    api.JoinThread(h);
  }
  return api.Load<u64>(shared);
}

u64 CleanKernel(rt::ThreadApi& api) {
  const u64 slots = api.SharedAlloc(4096, 4096, "fixture.slots");
  const u64 counter = api.SharedAlloc(8, 4096, "fixture.counter");
  const rt::MutexId m = api.CreateMutex();
  std::vector<rt::ThreadHandle> hs;
  for (u32 w = 0; w < 2; ++w) {
    hs.push_back(api.SpawnThread([slots, counter, m, w](rt::ThreadApi& t) {
      for (int i = 0; i < 8; ++i) {
        t.Lock(m);
        t.Store<u64>(counter, t.Load<u64>(counter) + 1);
        t.Unlock(m);
        t.Store<u64>(slots + w * 2048, static_cast<u64>(i));
        t.Fence();
        t.Work(500);
      }
    }));
  }
  for (const rt::ThreadHandle h : hs) {
    api.JoinThread(h);
  }
  return api.Load<u64>(counter);
}

int Main(int argc, char** argv) {
  const bool inject = argc > 1 && std::strcmp(argv[1], "--inject") == 0;
  rt::RuntimeConfig cfg = harness::DefaultConfig(4);
  if (!cfg.race.first_exit) {
    std::fprintf(stderr,
                 "race_first_exit: CSQ_RACE_FIRST_EXIT not set; arming first-exit directly\n");
    cfg.race.enabled = true;
    cfg.race.track_reads = true;
    cfg.race.first_exit = true;
  }
  const rt::RunResult r =
      rt::MakeRuntime(rt::Backend::kConsequenceIC, cfg)->Run(inject ? RacyKernel : CleanKernel);
  if (inject) {
    // The injected race seals mid-run; the default handler should have
    // _Exit(kFirstExitCode)ed long before this line.
    std::fprintf(stderr, "race_first_exit: injected race did not trigger first-exit\n");
    return 1;
  }
  std::printf("race_first_exit: clean run ok, checksum=%llu, %zu records (%llu racy)\n",
              static_cast<unsigned long long>(r.checksum), r.races.size(),
              static_cast<unsigned long long>(r.race_racy));
  return r.race_racy == 0 ? 0 : 1;
}

}  // namespace
}  // namespace csq

int main(int argc, char** argv) { return csq::Main(argc, argv); }
