// Shared JSON report emitter for the bench binaries — the perf trajectory.
//
// Each bench writes BENCH_<name>.json into the working directory so
// successive PRs have machine-readable wall-clock + simulated numbers to
// diff (speedup claims in PR descriptions point at these files). The format
// is a flat, ordered key/value object; nested rows are pre-rendered with
// JsonObj::Render() and attached via Raw()/JsonArr(). No dependencies
// beyond the standard library.
#pragma once

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "src/util/json.h"
#include "src/util/types.h"

namespace csq::bench {

// Honest host-parallelism reporting: every BENCH_*.json records how many
// hardware threads the machine that produced it actually had. Wall-clock
// speedup claims (parallel vs serial) are meaningless on a single-core host —
// single_core_caveat flags those runs so downstream comparisons (CI's
// bench_diff gate, PR descriptions) can skip or annotate them instead of
// reporting a fake regression.
inline u32 HostCores() {
  return std::max(1u, std::thread::hardware_concurrency());
}

// Quotes + escapes a string for JSON. Delegates to util::JsonQuote, which
// escapes ALL control characters below 0x20 (the old local escaper missed
// everything except \n and \t, producing invalid JSON for, e.g., workload
// names containing \r or \x1b).
inline std::string JsonStr(std::string_view s) {
  return util::JsonQuote(s);
}

// Ordered key/value JSON object builder. Values are rendered on insert, so
// insertion order is emission order and the builder is just a string list.
class JsonObj {
 public:
  JsonObj& Int(std::string_view key, u64 v) { return Put(key, std::to_string(v)); }

  JsonObj& Num(std::string_view key, double v, int precision = 3) {
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return Put(key, oss.str());
  }

  JsonObj& Str(std::string_view key, std::string_view v) { return Put(key, JsonStr(v)); }

  JsonObj& Bool(std::string_view key, bool v) { return Put(key, v ? "true" : "false"); }

  // Attaches a pre-rendered JSON value (object or array) verbatim.
  JsonObj& Raw(std::string_view key, std::string v) { return Put(key, std::move(v)); }

  std::string Render() const {
    std::string out = "{";
    for (usize i = 0; i < fields_.size(); ++i) {
      if (i > 0) {
        out += ",";
      }
      out += JsonStr(fields_[i].first);
      out += ":";
      out += fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  JsonObj& Put(std::string_view key, std::string v) {
    fields_.emplace_back(std::string(key), std::move(v));
    return *this;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

// Renders a JSON array from pre-rendered element strings.
inline std::string JsonArr(const std::vector<std::string>& items) {
  std::string out = "[";
  for (usize i = 0; i < items.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += items[i];
  }
  out += "]";
  return out;
}

// Writes the report to BENCH_<name>.json. The path echo goes to stderr so
// benches whose stdout is a machine-parsed JSON line stay parseable. Every
// report is stamped with host_cores / single_core_caveat (by value: the
// caller's object is not mutated); benches must not add those keys
// themselves.
inline bool WriteReport(std::string_view name, JsonObj obj) {
  const std::string path = "BENCH_" + std::string(name) + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "report: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const u32 cores = HostCores();
  obj.Int("host_cores", cores);
  obj.Bool("single_core_caveat", cores < 2);
  const std::string body = obj.Render();
  std::fwrite(body.data(), 1, body.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "report: wrote %s\n", path.c_str());
  return true;
}

}  // namespace csq::bench
