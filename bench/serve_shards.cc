// serve_shards — serving-layer throughput/latency sweep (DESIGN.md §15).
//
// Drives a Zipf-skewed multi-tenant request log (millions of logical users,
// hot-tenant popularity skew, connection churn through the thread-reuse pool)
// through the sharded deterministic serving runtime, sweeping shard count ×
// front-end host worker count, and reports per-configuration throughput plus
// p50/p95/p99 per-request latency (virtual time, so the tail includes
// deterministic lock-wait/queueing delay inside each universe).
//
// Built-in correctness gate: for a fixed shard count, the combined
// response+state digest must be identical across every host worker count —
// host parallelism is a throughput knob, never a semantic one. The binary
// exits nonzero on a digest mismatch, and BENCH_serve_shards.json carries
// `digest_stable` for the CI bench-diff gate plus `multi_shard_scaling`
// (peak throughput over the 1-shard/1-worker floor) as the perf trajectory.
//
// CSQ_QUICK=1 shrinks the log and the sweep for smoke runs.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench/report.h"
#include "src/harness/harness.h"
#include "src/serve/loadgen.h"
#include "src/serve/serve.h"
#include "src/util/stats.h"
#include "src/util/table.h"

using namespace csq;  // NOLINT

namespace {

serve::LoadSpec BenchLoad(bool quick) {
  serve::LoadSpec spec;
  spec.tenants = 96;
  spec.tenant_zipf_s = 1.1;
  spec.users = 2 << 20;  // logical user population the session ids draw from
  spec.sessions = quick ? 240 : 1200;
  spec.min_requests = 4;
  spec.max_requests = 28;
  spec.keys_per_tenant = 512;
  spec.put_pct = 25;
  spec.scan_pct = 5;
  spec.churn_window = 48;
  spec.seed = 2026;
  return spec;
}

serve::ServeConfig BenchConfig(u32 shards, u32 serve_threads) {
  serve::ServeConfig cfg;
  cfg.shards = shards;
  cfg.serve_threads = serve_threads;
  cfg.max_live_sessions = 8;
  cfg.kv_buckets = 512;
  cfg.record_trace = false;  // throughput configuration: no recording overhead
  return cfg;
}

}  // namespace

int main() {
  const bool quick = harness::QuickMode();
  const serve::LoadSpec spec = BenchLoad(quick);
  const std::vector<serve::Request> log = serve::GenerateLoad(spec);

  const std::vector<u32> shard_counts =
      quick ? std::vector<u32>{1, 4} : std::vector<u32>{1, 2, 4, 8};
  std::vector<u32> worker_counts = quick ? std::vector<u32>{1, 2} : std::vector<u32>{1, 2, 4};
  worker_counts.erase(
      std::remove_if(worker_counts.begin(), worker_counts.end(),
                     [](u32 w) { return w > 1 && w > bench::HostCores(); }),
      worker_counts.end());

  TablePrinter tp({"shards", "workers", "requests", "wall(ms)", "krps", "p50(vt)", "p95(vt)",
                   "p99(vt)"});
  std::vector<std::string> rows;
  bool digest_stable = true;
  double base_rps = 0.0;  // 1 shard × 1 worker floor
  double peak_rps = 0.0;

  for (const u32 shards : shard_counts) {
    u64 shard_digest = 0;
    bool have_digest = false;
    for (const u32 workers : worker_counts) {
      const serve::ServeResult r =
          serve::ShardServer(BenchConfig(shards, workers)).Serve(log);

      if (have_digest && r.response_digest != shard_digest) {
        std::cerr << "DIGEST MISMATCH: shards=" << shards << " workers=" << workers
                  << " changed the response+state digest — host workers must be "
                     "semantically invisible\n";
        digest_stable = false;
      }
      shard_digest = r.response_digest;
      have_digest = true;

      std::vector<u64> lat;
      lat.reserve(r.requests);
      for (const serve::ShardResult& s : r.shards) {
        lat.insert(lat.end(), s.latencies.begin(), s.latencies.end());
      }
      const double wall_ms = static_cast<double>(r.wall_ns) / 1e6;
      const double rps =
          wall_ms > 0.0 ? static_cast<double>(r.requests) / (wall_ms / 1e3) : 0.0;
      const u64 p50 = Percentile(lat, 50.0);
      const u64 p95 = Percentile(lat, 95.0);
      const u64 p99 = Percentile(lat, 99.0);
      if (shards == 1 && workers == 1) {
        base_rps = rps;
      }
      peak_rps = std::max(peak_rps, rps);

      tp.AddRow({std::to_string(shards), std::to_string(workers), std::to_string(r.requests),
                 TablePrinter::Fmt(wall_ms), TablePrinter::Fmt(rps / 1e3),
                 std::to_string(p50), std::to_string(p95), std::to_string(p99)});
      bench::JsonObj row;
      row.Int("shards", shards)
          .Int("serve_threads", workers)
          .Int("requests", r.requests)
          .Num("wall_ms", wall_ms)
          .Num("rps", rps)
          .Int("latency_p50_vt", p50)
          .Int("latency_p95_vt", p95)
          .Int("latency_p99_vt", p99);
      rows.push_back(row.Render());
    }
  }

  tp.Print(std::cout);
  std::cout << (digest_stable ? "digests stable across host worker counts\n"
                              : "DIGESTS UNSTABLE — see above\n");

  bench::JsonObj report;
  report.Int("requests", log.size())
      .Int("sessions", spec.sessions)
      .Int("tenants", spec.tenants)
      .Bool("quick", quick)
      .Bool("digest_stable", digest_stable)
      .Num("base_rps", base_rps)
      .Num("peak_rps", peak_rps)
      .Num("multi_shard_scaling", base_rps > 0.0 ? peak_rps / base_rps : 0.0)
      .Raw("rows", bench::JsonArr(rows));
  bench::WriteReport("serve_shards", std::move(report));

  return digest_stable ? 0 : 1;
}
