file(REMOVE_RECURSE
  "../bench/ablation_future"
  "../bench/ablation_future.pdb"
  "CMakeFiles/ablation_future.dir/ablation_future.cc.o"
  "CMakeFiles/ablation_future.dir/ablation_future.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_future.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
