# Empty compiler generated dependencies file for ablation_future.
# This may be replaced when dependencies are built.
