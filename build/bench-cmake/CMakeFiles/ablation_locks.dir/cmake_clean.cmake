file(REMOVE_RECURSE
  "../bench/ablation_locks"
  "../bench/ablation_locks.pdb"
  "CMakeFiles/ablation_locks.dir/ablation_locks.cc.o"
  "CMakeFiles/ablation_locks.dir/ablation_locks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
