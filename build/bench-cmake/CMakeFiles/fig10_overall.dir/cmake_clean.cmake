file(REMOVE_RECURSE
  "../bench/fig10_overall"
  "../bench/fig10_overall.pdb"
  "CMakeFiles/fig10_overall.dir/fig10_overall.cc.o"
  "CMakeFiles/fig10_overall.dir/fig10_overall.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
