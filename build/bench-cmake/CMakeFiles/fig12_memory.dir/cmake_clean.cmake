file(REMOVE_RECURSE
  "../bench/fig12_memory"
  "../bench/fig12_memory.pdb"
  "CMakeFiles/fig12_memory.dir/fig12_memory.cc.o"
  "CMakeFiles/fig12_memory.dir/fig12_memory.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
