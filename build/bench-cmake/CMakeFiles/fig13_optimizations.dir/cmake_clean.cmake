file(REMOVE_RECURSE
  "../bench/fig13_optimizations"
  "../bench/fig13_optimizations.pdb"
  "CMakeFiles/fig13_optimizations.dir/fig13_optimizations.cc.o"
  "CMakeFiles/fig13_optimizations.dir/fig13_optimizations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
