# Empty compiler generated dependencies file for fig13_optimizations.
# This may be replaced when dependencies are built.
