file(REMOVE_RECURSE
  "../bench/fig14_coarsening"
  "../bench/fig14_coarsening.pdb"
  "CMakeFiles/fig14_coarsening.dir/fig14_coarsening.cc.o"
  "CMakeFiles/fig14_coarsening.dir/fig14_coarsening.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_coarsening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
