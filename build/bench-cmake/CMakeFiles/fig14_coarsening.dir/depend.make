# Empty dependencies file for fig14_coarsening.
# This may be replaced when dependencies are built.
