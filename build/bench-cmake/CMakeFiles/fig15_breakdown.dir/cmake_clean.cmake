file(REMOVE_RECURSE
  "../bench/fig15_breakdown"
  "../bench/fig15_breakdown.pdb"
  "CMakeFiles/fig15_breakdown.dir/fig15_breakdown.cc.o"
  "CMakeFiles/fig15_breakdown.dir/fig15_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
