file(REMOVE_RECURSE
  "../bench/fig16_lrc"
  "../bench/fig16_lrc.pdb"
  "CMakeFiles/fig16_lrc.dir/fig16_lrc.cc.o"
  "CMakeFiles/fig16_lrc.dir/fig16_lrc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_lrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
