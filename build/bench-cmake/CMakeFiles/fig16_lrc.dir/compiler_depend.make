# Empty compiler generated dependencies file for fig16_lrc.
# This may be replaced when dependencies are built.
