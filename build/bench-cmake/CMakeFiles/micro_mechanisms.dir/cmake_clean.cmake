file(REMOVE_RECURSE
  "../bench/micro_mechanisms"
  "../bench/micro_mechanisms.pdb"
  "CMakeFiles/micro_mechanisms.dir/micro_mechanisms.cc.o"
  "CMakeFiles/micro_mechanisms.dir/micro_mechanisms.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
