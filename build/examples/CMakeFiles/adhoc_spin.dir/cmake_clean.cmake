file(REMOVE_RECURSE
  "CMakeFiles/adhoc_spin.dir/adhoc_spin.cpp.o"
  "CMakeFiles/adhoc_spin.dir/adhoc_spin.cpp.o.d"
  "adhoc_spin"
  "adhoc_spin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adhoc_spin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
