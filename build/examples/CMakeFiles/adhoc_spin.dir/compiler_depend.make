# Empty compiler generated dependencies file for adhoc_spin.
# This may be replaced when dependencies are built.
