file(REMOVE_RECURSE
  "CMakeFiles/benchmark_runner.dir/benchmark_runner.cpp.o"
  "CMakeFiles/benchmark_runner.dir/benchmark_runner.cpp.o.d"
  "benchmark_runner"
  "benchmark_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
