file(REMOVE_RECURSE
  "CMakeFiles/csq_clock.dir/det_clock.cc.o"
  "CMakeFiles/csq_clock.dir/det_clock.cc.o.d"
  "libcsq_clock.a"
  "libcsq_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csq_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
