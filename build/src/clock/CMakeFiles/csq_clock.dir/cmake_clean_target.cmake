file(REMOVE_RECURSE
  "libcsq_clock.a"
)
