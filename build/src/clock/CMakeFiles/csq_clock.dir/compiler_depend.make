# Empty compiler generated dependencies file for csq_clock.
# This may be replaced when dependencies are built.
