# Empty dependencies file for csq_clock.
# This may be replaced when dependencies are built.
