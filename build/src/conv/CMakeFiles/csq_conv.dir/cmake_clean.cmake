file(REMOVE_RECURSE
  "CMakeFiles/csq_conv.dir/segment.cc.o"
  "CMakeFiles/csq_conv.dir/segment.cc.o.d"
  "CMakeFiles/csq_conv.dir/workspace.cc.o"
  "CMakeFiles/csq_conv.dir/workspace.cc.o.d"
  "libcsq_conv.a"
  "libcsq_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csq_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
