file(REMOVE_RECURSE
  "libcsq_conv.a"
)
