# Empty compiler generated dependencies file for csq_conv.
# This may be replaced when dependencies are built.
