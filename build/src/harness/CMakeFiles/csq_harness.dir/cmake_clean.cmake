file(REMOVE_RECURSE
  "CMakeFiles/csq_harness.dir/harness.cc.o"
  "CMakeFiles/csq_harness.dir/harness.cc.o.d"
  "libcsq_harness.a"
  "libcsq_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csq_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
