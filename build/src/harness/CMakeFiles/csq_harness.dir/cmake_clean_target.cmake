file(REMOVE_RECURSE
  "libcsq_harness.a"
)
