# Empty compiler generated dependencies file for csq_harness.
# This may be replaced when dependencies are built.
