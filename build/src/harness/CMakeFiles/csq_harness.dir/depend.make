# Empty dependencies file for csq_harness.
# This may be replaced when dependencies are built.
