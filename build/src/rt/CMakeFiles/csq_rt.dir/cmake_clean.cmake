file(REMOVE_RECURSE
  "CMakeFiles/csq_rt.dir/api.cc.o"
  "CMakeFiles/csq_rt.dir/api.cc.o.d"
  "CMakeFiles/csq_rt.dir/det_runtime.cc.o"
  "CMakeFiles/csq_rt.dir/det_runtime.cc.o.d"
  "CMakeFiles/csq_rt.dir/pthreads_rt.cc.o"
  "CMakeFiles/csq_rt.dir/pthreads_rt.cc.o.d"
  "libcsq_rt.a"
  "libcsq_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csq_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
