file(REMOVE_RECURSE
  "libcsq_rt.a"
)
