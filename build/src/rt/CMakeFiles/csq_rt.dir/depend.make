# Empty dependencies file for csq_rt.
# This may be replaced when dependencies are built.
