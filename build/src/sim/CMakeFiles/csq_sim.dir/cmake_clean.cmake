file(REMOVE_RECURSE
  "CMakeFiles/csq_sim.dir/engine.cc.o"
  "CMakeFiles/csq_sim.dir/engine.cc.o.d"
  "CMakeFiles/csq_sim.dir/fiber.cc.o"
  "CMakeFiles/csq_sim.dir/fiber.cc.o.d"
  "libcsq_sim.a"
  "libcsq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
