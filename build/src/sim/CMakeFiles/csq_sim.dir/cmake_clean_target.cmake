file(REMOVE_RECURSE
  "libcsq_sim.a"
)
