# Empty dependencies file for csq_sim.
# This may be replaced when dependencies are built.
