file(REMOVE_RECURSE
  "CMakeFiles/csq_wl.dir/parsec.cc.o"
  "CMakeFiles/csq_wl.dir/parsec.cc.o.d"
  "CMakeFiles/csq_wl.dir/phoenix.cc.o"
  "CMakeFiles/csq_wl.dir/phoenix.cc.o.d"
  "CMakeFiles/csq_wl.dir/registry.cc.o"
  "CMakeFiles/csq_wl.dir/registry.cc.o.d"
  "CMakeFiles/csq_wl.dir/splash.cc.o"
  "CMakeFiles/csq_wl.dir/splash.cc.o.d"
  "libcsq_wl.a"
  "libcsq_wl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csq_wl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
