file(REMOVE_RECURSE
  "libcsq_wl.a"
)
