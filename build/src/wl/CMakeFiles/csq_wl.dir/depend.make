# Empty dependencies file for csq_wl.
# This may be replaced when dependencies are built.
