file(REMOVE_RECURSE
  "CMakeFiles/clock_property_test.dir/clock_property_test.cc.o"
  "CMakeFiles/clock_property_test.dir/clock_property_test.cc.o.d"
  "clock_property_test"
  "clock_property_test.pdb"
  "clock_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
