# Empty dependencies file for clock_property_test.
# This may be replaced when dependencies are built.
