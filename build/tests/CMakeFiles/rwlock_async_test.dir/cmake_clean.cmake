file(REMOVE_RECURSE
  "CMakeFiles/rwlock_async_test.dir/rwlock_async_test.cc.o"
  "CMakeFiles/rwlock_async_test.dir/rwlock_async_test.cc.o.d"
  "rwlock_async_test"
  "rwlock_async_test.pdb"
  "rwlock_async_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rwlock_async_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
