# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/conv_test[1]_include.cmake")
include("/root/repo/build/tests/clock_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/lrc_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/conv_property_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/clock_property_test[1]_include.cmake")
include("/root/repo/build/tests/rwlock_async_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
