// Ad-hoc synchronization under determinism (paper §2.7).
//
//   $ ./adhoc_spin
//
// A thread spins on a flag that another thread sets without any explicit
// synchronization. Under commit-at-sync-op determinism the spinner's isolated
// view never refreshes, so the program cannot terminate — unless a per-chunk
// instruction limit forces periodic commit+update. This example shows the
// limit working, and the latency/overhead trade-off of choosing it.
#include <cstdio>
#include <vector>

#include "src/rt/api.h"

using namespace csq;      // NOLINT
using namespace csq::rt;  // NOLINT

namespace {

u64 SpinFlagProgram(ThreadApi& api) {
  const u64 flag = api.SharedAlloc(8);
  const u64 data = api.SharedAlloc(8);
  const u64 spins = api.SharedAlloc(8);
  const ThreadHandle setter = api.SpawnThread([=](ThreadApi& t) {
    t.Work(80000);  // long computation before the ad-hoc "release"
    t.Store<u64>(data, 4242);
    t.Store<u64>(flag, 1);  // ad-hoc release: a plain store, no sync op
    t.Work(40000);
  });
  const ThreadHandle spinner = api.SpawnThread([=](ThreadApi& t) {
    u64 n = 0;
    while (t.Load<u64>(flag) == 0) {  // ad-hoc acquire: spin on the flag
      t.Work(1000);
      ++n;
    }
    t.Store<u64>(spins, n);
  });
  api.JoinThread(setter);
  api.JoinThread(spinner);
  return api.Load<u64>(data) + (api.Load<u64>(spins) << 32);
}

}  // namespace

int main() {
  std::printf("Spin-flag program under Consequence-IC with varying chunk limits.\n");
  std::printf("(With no limit the spinner would never see the flag — we don't try that.)\n\n");
  std::printf("%-12s %-14s %-10s %-8s\n", "chunk_limit", "vtime", "data", "spin-iters");
  for (u64 limit : {5000ULL, 20000ULL, 100000ULL, 1000000ULL}) {
    RuntimeConfig cfg;
    cfg.nthreads = 2;
    cfg.segment.size_bytes = 1 << 20;
    cfg.chunk_limit = limit;
    const RunResult r = MakeRuntime(Backend::kConsequenceIC, cfg)->Run(SpinFlagProgram);
    std::printf("%-12llu %-14llu %-10llu %-8llu\n", (unsigned long long)limit,
                (unsigned long long)r.vtime, (unsigned long long)(r.checksum & 0xffffffff),
                (unsigned long long)(r.checksum >> 32));
  }
  std::printf(
      "\nSmaller limits see the flag sooner (fewer wasted spin iterations) but commit\n"
      "more often; the paper reports some programs need limits of ~1e9 instructions to\n"
      "avoid slowdowns, which is why its evaluation leaves the mechanism disabled and\n"
      "leaves efficient ad-hoc synchronization as future work (Section 2.7).\n");
  return 0;
}
