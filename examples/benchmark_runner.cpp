// benchmark_runner — run any of the 19 evaluation workloads on any backend.
//
//   $ ./benchmark_runner                          # list workloads/backends
//   $ ./benchmark_runner ferret cons-ic 8         # one run, full stats
//   $ ./benchmark_runner ocean_cp all 4           # compare all backends
//
// The domain-specific example: a downstream user's entry point for exploring
// how a particular synchronization pattern behaves under each runtime.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "src/harness/harness.h"

using namespace csq;           // NOLINT
using namespace csq::harness;  // NOLINT

namespace {

std::optional<rt::Backend> ParseBackend(const char* s) {
  for (rt::Backend b : FigureBackends()) {
    if (rt::BackendName(b) == s) {
      return b;
    }
  }
  return std::nullopt;
}

void PrintOne(const wl::WorkloadInfo& w, rt::Backend b, u32 threads) {
  const rt::RunResult r = RunOne(w, b, threads);
  std::printf("%-10s vtime=%-12llu checksum=%016llx commits=%-7llu tokens=%-7llu "
              "propagated=%-7llu peakMem=%.2fMiB\n",
              rt::BackendName(b).data(), (unsigned long long)r.vtime,
              (unsigned long long)r.checksum, (unsigned long long)r.commits,
              (unsigned long long)r.token_acquires, (unsigned long long)r.pages_propagated,
              static_cast<double>(r.peak_mem_bytes) / (1024.0 * 1024.0));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::printf("usage: %s <workload|all> <backend|all> [threads=8]\n\nworkloads:\n", argv[0]);
    for (const auto& w : wl::AllWorkloads()) {
      std::printf("  %-18s (%s)%s%s\n", w.name.data(), w.suite.data(),
                  w.racy ? " [racy]" : "", w.hard ? " [hard]" : "");
    }
    std::printf("backends: pthreads dthreads dwc cons-rr cons-ic all\n");
    return argc == 1 ? 0 : 1;
  }
  const u32 threads = argc > 3 ? static_cast<u32>(std::atoi(argv[3])) : 8;
  if (threads == 0 || threads > 64) {
    std::fprintf(stderr, "bad thread count\n");
    return 1;
  }

  std::vector<const wl::WorkloadInfo*> workloads;
  if (std::strcmp(argv[1], "all") == 0) {
    for (const auto& w : wl::AllWorkloads()) {
      workloads.push_back(&w);
    }
  } else if (const wl::WorkloadInfo* w = wl::FindWorkload(argv[1])) {
    workloads.push_back(w);
  } else {
    std::fprintf(stderr, "unknown workload '%s' (run with no args for the list)\n", argv[1]);
    return 1;
  }

  std::vector<rt::Backend> backends;
  if (std::strcmp(argv[2], "all") == 0) {
    backends = FigureBackends();
  } else if (auto b = ParseBackend(argv[2])) {
    backends.push_back(*b);
  } else {
    std::fprintf(stderr, "unknown backend '%s'\n", argv[2]);
    return 1;
  }

  for (const wl::WorkloadInfo* w : workloads) {
    std::printf("== %s @ %u threads ==\n", w->name.data(), threads);
    for (rt::Backend b : backends) {
      PrintOne(*w, b, threads);
    }
  }
  return 0;
}
