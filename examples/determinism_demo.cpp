// Determinism under timing perturbation — the paper's core property, live.
//
//   $ ./determinism_demo
//
// Runs an order-dependent program (workers append their ids to a shared log
// under a mutex) under five different timing-jitter seeds (±20% on every cost)
// on the nondeterministic pthreads baseline and on every deterministic
// backend. pthreads produces different outputs across seeds; DThreads, DWC
// and both Consequence variants produce bit-identical outputs and schedules.
#include <cstdio>
#include <vector>

#include "src/rt/api.h"

using namespace csq;      // NOLINT
using namespace csq::rt;  // NOLINT

namespace {

u64 OrderLog(ThreadApi& api) {
  const u32 workers = 4;
  const u32 iters = 16;
  const u64 log_len = api.SharedAlloc(8);
  const u64 log = api.SharedAlloc(8 * workers * iters);
  const MutexId m = api.CreateMutex();
  std::vector<ThreadHandle> hs;
  for (u32 w = 0; w < workers; ++w) {
    hs.push_back(api.SpawnThread([=](ThreadApi& t) {
      for (u32 i = 0; i < iters; ++i) {
        t.Work(200 + 37 * t.Tid());
        t.Lock(m);
        const u64 len = t.Load<u64>(log_len);
        t.Store<u64>(log + 8 * len, t.Tid());
        t.Store<u64>(log_len, len + 1);
        t.Unlock(m);
      }
    }));
  }
  for (ThreadHandle h : hs) {
    api.JoinThread(h);
  }
  // Order-sensitive digest of the log.
  u64 d = 1469598103934665603ULL;
  const u64 n = api.Load<u64>(log_len);
  for (u64 i = 0; i < n; ++i) {
    d = (d ^ api.Load<u64>(log + 8 * i)) * 1099511628211ULL;
  }
  return d;
}

}  // namespace

int main() {
  const u64 seeds[] = {1, 2, 3, 4, 5};
  std::printf("Order-dependent program, +-20%% timing jitter, 5 seeds per backend.\n");
  std::printf("Each cell is the output digest — identical cells = deterministic.\n\n");
  std::printf("%-10s", "backend");
  for (u64 s : seeds) {
    std::printf("  seed%llu           ", (unsigned long long)s);
  }
  std::printf("\n");
  for (Backend b : {Backend::kPthreads, Backend::kDThreads, Backend::kDwc,
                    Backend::kConsequenceRR, Backend::kConsequenceIC}) {
    std::printf("%-10s", BackendName(b).data());
    u64 first = 0;
    bool all_same = true;
    for (u64 s : seeds) {
      RuntimeConfig cfg;
      cfg.nthreads = 4;
      cfg.segment.size_bytes = 1 << 20;
      cfg.costs.jitter_bp = 2000;  // +-20%
      cfg.costs.jitter_seed = s;
      const RunResult r = MakeRuntime(b, cfg)->Run(OrderLog);
      std::printf("  %016llx", (unsigned long long)r.checksum);
      if (s == seeds[0]) {
        first = r.checksum;
      } else {
        all_same &= (r.checksum == first);
      }
    }
    std::printf("   %s\n", b == Backend::kPthreads
                               ? (all_same ? "(happened to agree)" : "<- varies with timing")
                               : (all_same ? "deterministic" : "!! BUG"));
  }
  std::printf(
      "\nThe deterministic runtimes produce the same log order under any timing —\n"
      "the schedule is a function of the program alone, which is what makes\n"
      "debugging, testing and record/replay tractable (paper, Section 1).\n");
  return 0;
}
