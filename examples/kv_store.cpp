// A deterministic in-memory key-value store — the "downstream adoption" demo.
//
//   $ ./kv_store
//
// Combines the library's building blocks the way an application would:
//   * SharedHeap   — deterministic dynamic allocation of value buffers,
//   * RwLock       — many concurrent readers, exclusive writers,
//   * ScheduleRecorder — capture the schedule; diff two runs to prove they
//     were identical (or find the first divergence if not).
//
// Eight threads hammer the store with a mixed get/put workload; the final
// store contents, the allocation addresses, and the entire synchronization
// schedule are bit-identical on every run.
#include <cstdio>
#include <vector>

#include "src/rt/api.h"
#include "src/rt/rw_lock.h"
#include "src/rt/schedule_recorder.h"
#include "src/rt/shared_heap.h"
#include "src/util/hash.h"
#include "src/util/rng.h"

using namespace csq;      // NOLINT
using namespace csq::rt;  // NOLINT

namespace {

constexpr u32 kBuckets = 64;
constexpr u32 kWorkers = 8;
constexpr u32 kOpsPerWorker = 60;

// An open-addressing-free, bucket-chained map in shared memory.
// Entry layout (heap-allocated): [key u64][value u64][next u64].
struct KvStore {
  KvStore(ThreadApi& api, SharedHeap* h)
      : heap(h), buckets(api.SharedAlloc(kBuckets * 8, 4096)), lock(api) {}

  void Put(ThreadApi& t, u64 key, u64 value) {
    lock.WriteLock(t);
    const u64 head = buckets + 8 * (key % kBuckets);
    // Update in place if present.
    for (u64 e = t.Load<u64>(head); e != 0; e = t.Load<u64>(e + 16)) {
      if (t.Load<u64>(e) == key) {
        t.Store<u64>(e + 8, value);
        lock.WriteUnlock(t);
        return;
      }
    }
    const u64 e = heap->Malloc(t, 24);
    t.Store<u64>(e, key);
    t.Store<u64>(e + 8, value);
    t.Store<u64>(e + 16, t.Load<u64>(head));
    t.Store<u64>(head, e);
    lock.WriteUnlock(t);
  }

  u64 Get(ThreadApi& t, u64 key) {
    lock.ReadLock(t);
    u64 result = 0;
    for (u64 e = t.Load<u64>(buckets + 8 * (key % kBuckets)); e != 0; e = t.Load<u64>(e + 16)) {
      if (t.Load<u64>(e) == key) {
        result = t.Load<u64>(e + 8);
        break;
      }
    }
    lock.ReadUnlock(t);
    return result;
  }

  SharedHeap* heap;
  u64 buckets;
  RwLock lock;
};

u64 KvWorkload(ThreadApi& api) {
  SharedHeap heap(api, 2 << 20);
  KvStore kv(api, &heap);
  std::vector<ThreadHandle> hs;
  for (u32 w = 0; w < kWorkers; ++w) {
    hs.push_back(api.SpawnThread([&](ThreadApi& t) {
      DetRng rng(0x4b5 + t.Tid());
      u64 acc = 0;
      for (u32 i = 0; i < kOpsPerWorker; ++i) {
        t.Work(400);  // request parsing / hashing
        const u64 key = rng.Below(200);
        if (rng.Below(100) < 30) {
          kv.Put(t, key, t.Tid() * 100000 + i);
        } else {
          acc += kv.Get(t, key);
        }
      }
      (void)acc;
    }));
  }
  for (auto h : hs) {
    api.JoinThread(h);
  }
  // Digest the full store contents.
  Fnv1a digest;
  for (u32 b = 0; b < kBuckets; ++b) {
    for (u64 e = api.Load<u64>(kv.buckets + 8 * b); e != 0; e = api.Load<u64>(e + 16)) {
      digest.Mix(api.Load<u64>(e));
      digest.Mix(api.Load<u64>(e + 8));
    }
  }
  return digest.Digest();
}

}  // namespace

int main() {
  std::printf("Deterministic KV store: %u workers x %u mixed get/put ops.\n\n", kWorkers,
              kOpsPerWorker);
  ScheduleRecorder rec1, rec2;
  RuntimeConfig cfg;
  cfg.nthreads = kWorkers;
  cfg.segment.size_bytes = 8 << 20;

  cfg.observer = &rec1;
  cfg.costs.jitter_seed = 1;
  cfg.costs.jitter_bp = 1500;
  const RunResult r1 = MakeRuntime(Backend::kConsequenceIC, cfg)->Run(KvWorkload);

  cfg.observer = &rec2;
  cfg.costs.jitter_seed = 999;  // completely different timing
  const RunResult r2 = MakeRuntime(Backend::kConsequenceIC, cfg)->Run(KvWorkload);

  std::printf("run 1: store digest=%016llx  sync events=%zu\n",
              (unsigned long long)r1.checksum, rec1.Events().size());
  std::printf("run 2: store digest=%016llx  sync events=%zu  (timing jittered +-15%%)\n",
              (unsigned long long)r2.checksum, rec2.Events().size());

  const auto div = FirstDivergence(rec1.Events(), rec2.Events());
  if (!div && r1.checksum == r2.checksum) {
    std::printf("\nSchedules and contents are bit-identical: every Malloc address, every\n"
                "rwlock grant, every commit happened in the same order despite the jitter.\n");
    return 0;
  }
  if (div) {
    std::printf("\n!! schedules diverge at event %zu:\n  run1: %s\n  run2: %s\n", div->index,
                div->left.c_str(), div->right.c_str());
  }
  return 1;
}
