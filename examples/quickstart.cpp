// Quickstart: run a small multithreaded program deterministically.
//
//   $ ./quickstart
//
// Builds a 4-thread locked-counter program against the backend-neutral
// ThreadApi, runs it under Consequence-IC (the paper's main system), and shows
// that repeated runs are bit-identical — output checksum, schedule fingerprint
// and even the virtual completion time.
#include <cstdio>
#include <vector>

#include "src/rt/api.h"

using namespace csq;      // NOLINT
using namespace csq::rt;  // NOLINT

namespace {

// An ordinary pthreads-style program: 4 workers increment a shared counter
// 100 times each under a mutex, then main reads the total.
u64 CounterProgram(ThreadApi& api) {
  const u64 counter = api.SharedAlloc(8);
  const MutexId mu = api.CreateMutex();
  std::vector<ThreadHandle> workers;
  for (int w = 0; w < 4; ++w) {
    workers.push_back(api.SpawnThread([=](ThreadApi& t) {
      for (int i = 0; i < 100; ++i) {
        t.Work(500);  // some local computation
        t.Lock(mu);
        t.Store<u64>(counter, t.Load<u64>(counter) + 1);
        t.Unlock(mu);
      }
    }));
  }
  for (ThreadHandle h : workers) {
    api.JoinThread(h);
  }
  return api.Load<u64>(counter);
}

}  // namespace

int main() {
  RuntimeConfig cfg;
  cfg.nthreads = 4;
  cfg.segment.size_bytes = 1 << 20;

  std::printf("Running a 4-thread locked counter under Consequence-IC, 3 times:\n\n");
  u64 first_checksum = 0;
  u64 first_trace = 0;
  for (int run = 1; run <= 3; ++run) {
    auto runtime = MakeRuntime(Backend::kConsequenceIC, cfg);
    const RunResult r = runtime->Run(CounterProgram);
    std::printf("  run %d: counter=%llu  vtime=%llu  schedule=%016llx\n", run,
                (unsigned long long)r.checksum, (unsigned long long)r.vtime,
                (unsigned long long)r.trace_digest);
    if (run == 1) {
      first_checksum = r.checksum;
      first_trace = r.trace_digest;
    } else if (r.checksum != first_checksum || r.trace_digest != first_trace) {
      std::printf("  !! nondeterminism detected — this should never happen\n");
      return 1;
    }
  }
  std::printf(
      "\nEvery run executed the same deterministic schedule. The same program under\n"
      "the pthreads baseline would still compute 400, but its lock-acquisition\n"
      "order — and therefore any order-dependent output — would vary with timing\n"
      "(see determinism_demo for exactly that experiment).\n");
  return 0;
}
