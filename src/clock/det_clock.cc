#include "src/clock/det_clock.h"

#include <algorithm>

namespace csq::clk {

using sim::TimeCat;

namespace {
// Trace tags mixed into the engine's schedule digest.
constexpr u64 kTraceTokenGrant = 0x10;
constexpr u64 kTraceTokenRelease = 0x11;
}  // namespace

DetClock::DetClock(sim::Engine& eng, ClockConfig cfg) : eng_(eng), cfg_(cfg) {}

void DetClock::RegisterThread(u32 tid, u64 initial_count) {
  while (threads_.size() <= tid) {
    threads_.EmplaceBack();
  }
  ThreadClock& tc = threads_[tid];
  CSQ_CHECK(!tc.registered);
  tc.registered = true;
  tc.participating = true;
  tc.count = initial_count;
  tc.published = initial_count;
  tc.overflow_period = cfg_.adaptive_overflow ? cfg_.base_overflow_period
                                              : cfg_.fixed_overflow_period;
  tc.next_overflow = initial_count + tc.overflow_period;
  if (rr_turn_ == sim::kInvalidThread) {
    rr_turn_ = tid;
  }
}

void DetClock::FinishThread(u32 tid) {
  ThreadClock& tc = Tc(tid);
  CSQ_CHECK_MSG(holder_ != tid, "thread finished while holding the token");
  // Leaving GMIC consideration changes what every waiter observes — a shared
  // operation (the round-robin turn and the notify below touch global state).
  eng_.GateShared();
  tc.participating = false;
  tc.finished = true;
  if (rr_turn_ == tid) {
    AdvanceRrTurn();
  }
  NotifyTokenWaiters();
}

void DetClock::NotifyTokenWaiters() {
  if (cfg_.arbiter != nullptr) {
    // The arbiter's Pick is stateful (exploration replay): every waiter must
    // re-poll it on every event, so keep the broadcast.
    for (u32 u = 0; u < threads_.size(); ++u) {
      if (threads_[u].waiting_for_token) {
        eng_.NotifyOne(threads_[u].token_ch);
      }
    }
    return;
  }
  if (holder_ != sim::kInvalidThread) {
    return;  // nobody can take the token until the holder releases
  }
  for (u32 u = 0; u < threads_.size(); ++u) {
    ThreadClock& o = threads_[u];
    if (o.waiting_for_token && Eligible(u)) {
      // At most one thread is eligible (unique GMIC minimum / round-robin
      // turn). If it is mid-wake (awake but not yet re-parked) the channel is
      // empty and NotifyOne is a no-op — it re-checks eligibility itself.
      eng_.NotifyOne(o.token_ch);
      return;
    }
  }
}

void DetClock::AdvanceWork(u32 tid, u64 n) {
  ThreadClock& tc = Tc(tid);
  CSQ_CHECK_MSG(!tc.paused, "AdvanceWork while clock paused");
  const u64 unit = eng_.Costs().work_unit;
  while (n > 0) {
    u64 step = n;
    if (tc.next_overflow > tc.count) {
      step = std::min(step, tc.next_overflow - tc.count);
    }
    eng_.Charge(step * unit, TimeCat::kChunk);
    tc.count += step;
    n -= step;
    if (tc.count >= tc.next_overflow) {
      // Counter overflow "interrupt".
      Publish(tid, /*interrupt=*/true);
      AdaptOverflow(tid);
      eng_.EndShared();  // back to local counting
    }
  }
}

void DetClock::Tick(u32 tid, u64 n) {
  ThreadClock& tc = Tc(tid);
  if (tc.paused) {
    return;  // library-internal memory ops are not user instructions
  }
  tc.count += n;
  if (tc.count >= tc.next_overflow) {
    Publish(tid, /*interrupt=*/true);
    AdaptOverflow(tid);
    eng_.EndShared();  // back to local counting
  }
}

void DetClock::ForceAdvance(u32 tid, u64 n) {
  ThreadClock& tc = Tc(tid);
  eng_.GateShared();
  tc.count += n;
  tc.published = tc.count;
  tc.next_overflow = tc.count + tc.overflow_period;
  NotifyTokenWaiters();
}

void DetClock::Pause(u32 tid) {
  ThreadClock& tc = Tc(tid);
  CSQ_CHECK(!tc.paused);
  tc.paused = true;
  Publish(tid, /*interrupt=*/false);  // reads its own counter, no interrupt
}

void DetClock::Resume(u32 tid) {
  ThreadClock& tc = Tc(tid);
  CSQ_CHECK(tc.paused);
  tc.paused = false;
}

void DetClock::ChunkBegin(u32 tid) {
  ThreadClock& tc = Tc(tid);
  tc.overflow_period = cfg_.adaptive_overflow ? cfg_.base_overflow_period
                                              : cfg_.fixed_overflow_period;
  tc.next_overflow = tc.count + tc.overflow_period;
  if (cfg_.adaptive_overflow) {
    // §3.2 rule 2 also applies at chunk begin; its scan reads other threads'
    // clocks and wait flags, so it runs under the gate. The caller (ExitLib)
    // ends the shared section.
    eng_.GateShared();
    AdaptOverflow(tid);
  }
}

void DetClock::Publish(u32 tid, bool interrupt) {
  ThreadClock& tc = Tc(tid);
  if (interrupt) {
    // The interrupt handler runs whether or not anyone is waiting — exactly
    // why the paper's adaptive policy (§3.2) doubles the period when there is
    // nobody to notify. The charge is local (own clock), so it precedes the
    // gate.
    eng_.Charge(eng_.Costs().overflow_interrupt, TimeCat::kLibrary);
  }
  // Publication is a shared operation: `published` is what every other
  // thread's GMIC check reads, and waiters may need waking. Gating it (in both
  // engines, waiters or not) keeps the serial reference and the host-parallel
  // engine bit-identical — checking for waiters outside the gate would read a
  // host-order-dependent snapshot of the channel.
  eng_.GateShared();
  if (interrupt) {
    ++stats_.overflows;
  }
  tc.published = tc.count;
  NotifyTokenWaiters();
}

void DetClock::AdaptOverflow(u32 tid) {
  ThreadClock& tc = Tc(tid);
  if (!cfg_.adaptive_overflow) {
    tc.next_overflow = tc.count + cfg_.fixed_overflow_period;
    return;
  }
  // Rule 2: if we are the GMIC and the next-lowest clock is waiting to become
  // the GMIC, overflow exactly when our clock passes theirs.
  if (IsGmicByPublished(tid)) {
    u64 next_waiter = std::numeric_limits<u64>::max();
    bool found = false;
    for (u32 u = 0; u < threads_.size(); ++u) {
      const ThreadClock& o = threads_[u];
      if (u == tid || !o.participating || !o.waiting_for_token) {
        continue;
      }
      if (o.count >= tc.count && o.count < next_waiter) {
        next_waiter = o.count;
        found = true;
      }
    }
    if (found) {
      tc.next_overflow = next_waiter + 1;
      return;
    }
  }
  // Rule 3: nobody to notify — double the period.
  tc.overflow_period *= 2;
  tc.next_overflow = tc.count + tc.overflow_period;
}

bool DetClock::IsGmicByPublished(u32 tid) const {
  const ThreadClock& me = threads_[tid];
  for (u32 u = 0; u < threads_.size(); ++u) {
    const ThreadClock& o = threads_[u];
    if (u == tid || !o.participating) {
      continue;
    }
    if (o.published < me.count || (o.published == me.count && u < tid)) {
      return false;
    }
  }
  return true;
}

bool DetClock::Eligible(u32 tid) const {
  switch (cfg_.policy) {
    case OrderPolicy::kRoundRobin:
      return rr_turn_ == tid;
    case OrderPolicy::kInstructionCount:
      return IsGmicByPublished(tid);
  }
  return false;
}

bool DetClock::ArbiterGrants(u32 tid) {
  std::vector<u32> waiting;
  u32 busy = 0;
  for (u32 u = 0; u < threads_.size(); ++u) {
    const ThreadClock& o = threads_[u];
    if (!o.registered || !o.participating || o.finished) {
      continue;
    }
    if (o.waiting_for_token) {
      waiting.push_back(u);
    } else {
      ++busy;
    }
  }
  return cfg_.arbiter->Pick(waiting, busy) == tid;
}

void DetClock::WaitToken(u32 tid) {
  ThreadClock& tc = Tc(tid);
  CSQ_CHECK_MSG(tc.participating, "WaitToken by a departed thread");
  eng_.GateShared();
  tc.published = tc.count;  // arriving at a sync op publishes the exact count
  NotifyTokenWaiters();     // a higher published count can make others GMIC
  tc.waiting_for_token = true;
  while (holder_ != sim::kInvalidThread ||
         (cfg_.arbiter ? !ArbiterGrants(tid) : !Eligible(tid))) {
    eng_.Wait(tc.token_ch, TimeCat::kDetermWait);
    eng_.GateShared();
  }
  tc.waiting_for_token = false;
  holder_ = tid;
  ++stats_.token_acquires;
  if (cfg_.arbiter) {
    cfg_.arbiter->OnGrant(tid);
  }
  eng_.Charge(eng_.Costs().token_acquire, TimeCat::kLibrary);
  eng_.Trace(kTraceTokenGrant, tid, tc.count, grant_seq_);
  if (cfg_.on_grant) {
    cfg_.on_grant(tid, tc.count, grant_seq_);
  }
  ++grant_seq_;
}

void DetClock::ReleaseToken(u32 tid) {
  CSQ_CHECK_MSG(holder_ == tid, "release of a token not held");
  eng_.GateShared();
  holder_ = sim::kInvalidThread;
  last_release_count_ = Tc(tid).count;
  if (cfg_.policy == OrderPolicy::kRoundRobin && rr_turn_ == tid) {
    AdvanceRrTurn();
  }
  eng_.Charge(eng_.Costs().token_release, TimeCat::kLibrary);
  eng_.Trace(kTraceTokenRelease, tid, last_release_count_, grant_seq_);
  if (cfg_.on_release) {
    cfg_.on_release(tid, last_release_count_, grant_seq_);
  }
  NotifyTokenWaiters();
}

void DetClock::Depart(u32 tid) {
  ThreadClock& tc = Tc(tid);
  CSQ_CHECK(tc.participating);
  eng_.GateShared();
  tc.participating = false;
  ++stats_.departs;
  if (rr_turn_ == tid) {
    AdvanceRrTurn();
  }
  NotifyTokenWaiters();
}

void DetClock::ArriveAt(u32 tid, u64 ff_count) {
  ThreadClock& tc = Tc(tid);
  CSQ_CHECK(!tc.participating && !tc.finished);
  eng_.GateShared();
  tc.participating = true;
  if (cfg_.fast_forward && ff_count > tc.count) {
    tc.count = ff_count;
    tc.published = tc.count;
    tc.next_overflow = tc.count + tc.overflow_period;
    ++stats_.fast_forwards;
  } else {
    tc.published = tc.count;
  }
  if (rr_turn_ == sim::kInvalidThread) {
    rr_turn_ = tid;
  }
}

void DetClock::AdvanceRrTurn() {
  const u32 n = static_cast<u32>(threads_.size());
  if (n == 0) {
    rr_turn_ = sim::kInvalidThread;
    return;
  }
  const u32 start = (rr_turn_ == sim::kInvalidThread) ? 0 : rr_turn_;
  for (u32 step = 1; step <= n; ++step) {
    const u32 cand = (start + step) % n;
    if (threads_[cand].registered && threads_[cand].participating) {
      rr_turn_ = cand;
      return;
    }
  }
  rr_turn_ = sim::kInvalidThread;
}

}  // namespace csq::clk
