// Deterministic logical clock and global-token manager (§2.1, §3.2, §3.5).
//
// Each participating thread has a logical clock counting the user instructions
// it has retired (here: workload work units + workspace memory operations; the
// paper's hardware counters are replaced by deterministic software counting,
// which the paper notes is an equally sound clock source).
//
// A single *global token* serializes all deterministic events. Two ordering
// policies are provided:
//
//   * kInstructionCount (Kendo/GMIC, used by Consequence-IC): the token may be
//     acquired only by the thread with the global minimum (count, tid) among
//     participating threads.
//   * kRoundRobin (used by DThreads, DWC and Consequence-RR): the token rotates
//     over participating threads in tid order, one sync operation per turn.
//
// Clock skew machinery:
//   * Pause/Resume — runtime-library code is not counted (§2.1).
//   * Depart/Arrive — a thread blocking on a lock or condition variable leaves
//     GMIC consideration so it cannot stall others (§4.1's clockDepart()).
//   * Fast-forward — a woken thread's clock jumps to the last token releaser's
//     clock if larger (§3.5).
//
// Counter overflow model (§3.2): other threads observe a thread's clock only
// at *publication points* (the moments a real perf counter overflows and
// interrupts). Publication frequency affects only how quickly waiters notice
// they have become the GMIC — never the deterministic order, because a
// published count never exceeds the true count. The adaptive policy is the
// paper's: reset to a 5,000-instruction base each chunk; if we are the GMIC
// and the next-lowest clock is waiting, overflow exactly when our clock passes
// theirs; otherwise double the period.
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "src/sim/engine.h"
#include "src/util/stable_vec.h"
#include "src/util/types.h"

namespace csq::clk {

enum class OrderPolicy : u8 {
  kRoundRobin,
  kInstructionCount,
};

// Schedule-exploration hook: when set, it REPLACES the deterministic grant
// policy (GMIC / round-robin) — the arbiter decides which waiting thread gets
// the free token. The TSO conformance explorer uses this to drive a litmus
// program through every token-acquisition interleaving; each interleaving is
// one legal ordering of the commit/update events whose fixed order the
// deterministic policies pick, so every outcome the arbiter can produce must
// be TSO-allowed.
class TokenArbiter {
 public:
  // Return value of Pick meaning "grant nobody yet; wait for more arrivals".
  static constexpr u32 kNoPick = sim::kInvalidThread;

  virtual ~TokenArbiter() = default;

  // Called (under the simulation's shared gate) each time a waiting thread
  // finds the token free. `waiting` lists the participating threads currently
  // blocked in WaitToken, ascending by tid; `busy` counts participating
  // threads that are NOT waiting (still executing their chunks). Return the
  // tid to grant next (must be in `waiting`) or kNoPick to defer. Deferring
  // is safe: every arrival, departure, release and finish re-polls the
  // arbiter. Returning kNoPick forever when busy == 0 deadlocks the run —
  // with nobody left to arrive, someone in `waiting` must be granted.
  virtual u32 Pick(const std::vector<u32>& waiting, u32 busy) = 0;

  // Called immediately after the token is granted to `tid` (the thread
  // Pick selected). Lets replay-based explorers advance their decision index.
  virtual void OnGrant(u32 tid) {}
};

struct ClockConfig {
  OrderPolicy policy = OrderPolicy::kInstructionCount;
  bool adaptive_overflow = true;
  u64 base_overflow_period = 5000;
  // Fixed period used when adaptive_overflow is off.
  u64 fixed_overflow_period = 5000;
  bool fast_forward = true;
  // Optional exploration override of the grant policy (not owned).
  TokenArbiter* arbiter = nullptr;
  // Optional trace hooks, fired at every grant/release with the holder's
  // instruction count and the global grant sequence number. Both values are
  // deterministic (jitter-invariant), so the determinism oracle records them.
  std::function<void(u32 tid, u64 count, u64 seq)> on_grant;
  std::function<void(u32 tid, u64 count, u64 seq)> on_release;
};

struct ClockStats {
  u64 token_acquires = 0;
  u64 overflows = 0;
  u64 fast_forwards = 0;
  u64 departs = 0;
};

class DetClock {
 public:
  DetClock(sim::Engine& eng, ClockConfig cfg);

  // ---- Thread lifecycle (call under deterministic order) -------------------
  // Registers simulated thread `tid`; its clock starts at `initial_count`
  // (spawners pass their own count so children do not instantly become GMIC).
  void RegisterThread(u32 tid, u64 initial_count);
  void FinishThread(u32 tid);

  // ---- Instruction counting -------------------------------------------------
  // Advances the clock by `n` user instructions AND charges n * work_unit of
  // virtual time, splitting at publication boundaries so waiters are woken at
  // accurate virtual times.
  void AdvanceWork(u32 tid, u64 n);

  // Advances the clock by `n` without charging time (callers that charge
  // elsewhere, e.g. workspace memory ops). Publication boundaries still fire.
  void Tick(u32 tid, u64 n);

  void Pause(u32 tid);
  void Resume(u32 tid);

  // Kendo-style deterministic clock bump (§4.1's polling-lock discussion): a
  // GMIC thread that failed to acquire a lock adds `n` to its clock so it
  // stops being the global minimum, then retries. Works while paused; the new
  // count is published immediately (the polling thread must stop gating
  // everyone else).
  void ForceAdvance(u32 tid, u64 n);
  bool Paused(u32 tid) const { return threads_[tid].paused; }

  // Marks the start of a new chunk (resets the adaptive overflow period).
  void ChunkBegin(u32 tid);

  u64 Count(u32 tid) const { return threads_[tid].count; }

  // ---- GMIC / token ---------------------------------------------------------
  // Blocks until `tid` may deterministically acquire the token, then acquires.
  void WaitToken(u32 tid);
  void ReleaseToken(u32 tid);
  bool TokenHeldBy(u32 tid) const { return holder_ == tid; }
  bool TokenHeld() const { return holder_ != sim::kInvalidThread; }

  // Removes `tid` from GMIC consideration (about to block on a lock/cv).
  void Depart(u32 tid);

  // Rejoins `tid` (typically called by the waker while it holds the token, so
  // rejoin order is deterministic — the paper's footnote-4 token handoff).
  // Fast-forwards the thread's clock to `ff_count` if enabled and larger
  // (§3.5); pass a deterministic value such as the waker's own count.
  void ArriveAt(u32 tid, u64 ff_count);

  // Convenience: ArriveAt with the last token-release count.
  void Arrive(u32 tid) { ArriveAt(tid, last_release_count_); }

  // The count the most recent ReleaseToken() happened at (fast-forward base).
  u64 LastReleaseCount() const { return last_release_count_; }

  const ClockStats& Stats() const { return stats_; }

 private:
  struct ThreadClock {
    bool registered = false;
    bool participating = false;  // in GMIC consideration
    bool finished = false;
    bool paused = false;
    bool waiting_for_token = false;
    u64 count = 0;
    u64 published = 0;
    u64 next_overflow = 0;
    u64 overflow_period = 5000;
    // Per-thread token wait channel (wakeup-free handoff, DESIGN.md §14):
    // eligibility events wake exactly the unique next-eligible waiter instead
    // of broadcasting to every parked thread. affinity_hint opts the channel
    // into slot-locality seeding (DESIGN.md §16): a token handoff is exactly
    // the notifier-blocks-next pattern where the woken thread profits from
    // inheriting the notifier's warm execution slot.
    sim::WaitChannel token_ch{{}, "clock.token", /*affinity_hint=*/true};
  };

  bool Eligible(u32 tid) const;
  bool ArbiterGrants(u32 tid);
  bool IsGmicByPublished(u32 tid) const;
  // Wakes the unique waiter that can now take the token, if any (gate-held).
  // Both deterministic policies have at most one eligible thread — the GMIC
  // (published, tid) minimum or the round-robin turn — so every other parked
  // thread would only wake to re-park. Arbiter runs still broadcast: Pick is
  // stateful and every arrival must re-poll it.
  void NotifyTokenWaiters();
  void Publish(u32 tid, bool interrupt);
  void AdaptOverflow(u32 tid);
  void AdvanceRrTurn();
  ThreadClock& Tc(u32 tid) { return threads_[tid]; }

  sim::Engine& eng_;
  ClockConfig cfg_;
  // StableVec: threads register mid-run (gate-held) while others hold
  // ThreadClock references across yields and, on the host-parallel engine,
  // tick their own clocks concurrently — element addresses must be stable and
  // indexed reads safe under growth.
  StableVec<ThreadClock> threads_;
  u32 holder_ = sim::kInvalidThread;
  u32 rr_turn_ = sim::kInvalidThread;
  u64 last_release_count_ = 0;
  u64 grant_seq_ = 0;
  ClockStats stats_;
};

}  // namespace csq::clk
