// Deterministic bump allocator for laying out shared data in a flat address
// space (a Conversion segment, or the pthreads baseline's flat array).
//
// Workloads allocate their shared structures through this before spawning
// workers, so every backend sees an identical memory layout — a precondition
// for comparing page-propagation counts across runtimes.
//
// Allocations may carry a site tag (e.g. "canneal.elements"). Tags are kept in
// an ascending range list so the race analyzer can map a racy byte offset back
// to the allocation it landed in; untagged allocations cost nothing beyond the
// existing bump arithmetic.
#pragma once

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/check.h"
#include "src/util/types.h"

namespace csq::conv {

class BumpAllocator {
 public:
  explicit BumpAllocator(usize capacity, u64 base = 0) : base_(base), capacity_(capacity) {}

  // Returns the address of `n` zero-initialized bytes aligned to `align`.
  // A non-empty `tag` records [addr, addr+n) as a named allocation site.
  u64 Alloc(usize n, usize align = 8, std::string_view tag = {}) {
    CSQ_CHECK_MSG((align & (align - 1)) == 0, "alignment must be a power of 2");
    u64 p = next_;
    p = (p + align - 1) & ~(static_cast<u64>(align) - 1);
    CSQ_CHECK_MSG(p + n <= base_ + capacity_,
                  "segment allocator out of space: want " << n << " at " << p << ", capacity "
                                                          << capacity_);
    next_ = p + n;
    if (!tag.empty()) {
      // Bump allocation is monotonic, so sites_ stays sorted by construction.
      sites_.push_back(Site{p, p + n, std::string(tag)});
    }
    return p;
  }

  // Aligns the next allocation to a page boundary — used to give per-thread
  // data structures private pages (false-sharing control, as real benchmarks
  // do with padding).
  u64 AllocPageAligned(usize n, usize page_size, std::string_view tag = {}) {
    return Alloc(n, page_size, tag);
  }

  // Returns the tag of the allocation containing `addr`, or "" if the address
  // falls outside every tagged site.
  std::string_view TagAt(u64 addr) const {
    auto it = std::upper_bound(sites_.begin(), sites_.end(), addr,
                               [](u64 a, const Site& s) { return a < s.begin; });
    if (it == sites_.begin()) {
      return {};
    }
    --it;
    return addr < it->end ? std::string_view(it->tag) : std::string_view{};
  }

  void Reset() {
    next_ = base_;
    sites_.clear();
  }
  u64 Used() const { return next_ - base_; }

 private:
  struct Site {
    u64 begin;
    u64 end;
    std::string tag;
  };

  u64 base_;
  usize capacity_;
  u64 next_ = base_;
  std::vector<Site> sites_;
};

}  // namespace csq::conv
