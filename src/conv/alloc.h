// Deterministic bump allocator for laying out shared data in a flat address
// space (a Conversion segment, or the pthreads baseline's flat array).
//
// Workloads allocate their shared structures through this before spawning
// workers, so every backend sees an identical memory layout — a precondition
// for comparing page-propagation counts across runtimes.
#pragma once

#include "src/util/check.h"
#include "src/util/types.h"

namespace csq::conv {

class BumpAllocator {
 public:
  explicit BumpAllocator(usize capacity, u64 base = 0) : base_(base), capacity_(capacity) {}

  // Returns the address of `n` zero-initialized bytes aligned to `align`.
  u64 Alloc(usize n, usize align = 8) {
    CSQ_CHECK_MSG((align & (align - 1)) == 0, "alignment must be a power of 2");
    u64 p = next_;
    p = (p + align - 1) & ~(static_cast<u64>(align) - 1);
    CSQ_CHECK_MSG(p + n <= base_ + capacity_,
                  "segment allocator out of space: want " << n << " at " << p << ", capacity "
                                                          << capacity_);
    next_ = p + n;
    return p;
  }

  // Aligns the next allocation to a page boundary — used to give per-thread
  // data structures private pages (false-sharing control, as real benchmarks
  // do with padding).
  u64 AllocPageAligned(usize n, usize page_size) { return Alloc(n, page_size); }

  void Reset() { next_ = base_; }
  u64 Used() const { return next_ - base_; }

 private:
  u64 base_;
  usize capacity_;
  u64 next_ = base_;
};

}  // namespace csq::conv
