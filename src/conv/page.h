// Pages and byte-granularity merging.
//
// Conversion versions memory at page granularity and resolves page-level
// conflicts by byte-granularity, last-writer-wins merging (§2.4/§2.5 of the
// paper). A page's bytes are immutable once published as a committed revision
// (shared_ptr<const PageBuf>); workspaces hold private writable copies.
//
// Fast path: workspaces additionally track, per writable copy, which 8-byte
// words their stores touched (DirtyWords). The merge paths then diff only the
// touched words instead of scanning the whole page byte-by-byte. Because a
// byte can differ from the twin only if it was stored to, and every store
// marks the words it covers, skipping unmarked words is byte-exact — the
// word-granularity merge applies exactly the bytes (and reports exactly the
// counts) the reference byte loop does. Only host wall-clock time changes;
// merged bytes and virtual-time charges are identical.
#pragma once

#include <algorithm>
#include <bit>
#include <cstring>
#include <memory>
#include <vector>

#include "src/util/check.h"
#include "src/util/types.h"

namespace csq::conv {

using PageBuf = std::vector<u8>;
using PageRef = std::shared_ptr<const PageBuf>;

// Diff/merge granularity of the word fast path (bytes).
inline constexpr usize kMergeWordBytes = 8;

// Copies `src` into a fresh writable page buffer.
inline std::unique_ptr<PageBuf> CopyPage(const PageBuf& src) {
  return std::make_unique<PageBuf>(src);
}

// Applies the byte-granularity diff (mine vs twin) onto `base`, in place:
// every byte the committer changed relative to its twin wins over `base`
// (last-writer-wins). Returns the number of bytes applied.
//
// This is the reference merge; the hot paths use MergeIntoWords below, and a
// property test (tests/conv_property_test.cc) pins the two to byte-identical
// behaviour.
inline usize MergeInto(PageBuf& base, const PageBuf& mine, const PageBuf& twin) {
  CSQ_CHECK(base.size() == mine.size() && mine.size() == twin.size());
  usize applied = 0;
  for (usize i = 0; i < mine.size(); ++i) {
    if (mine[i] != twin[i]) {
      base[i] = mine[i];
      ++applied;
    }
  }
  return applied;
}

// Bitmap over the 8-byte words of one page: bit w covers bytes
// [8w, 8w+8) (the final word may be short if the page size is not a multiple
// of 8). Workspaces mark the words their stores cover; merge paths visit only
// marked words.
class DirtyWords {
 public:
  // Sizes the bitmap for a page of `page_bytes` bytes and clears it.
  void Reset(usize page_bytes) {
    const usize words = (page_bytes + kMergeWordBytes - 1) / kMergeWordBytes;
    bits_.assign((words + 63) / 64, 0);
  }

  void Clear() { std::fill(bits_.begin(), bits_.end(), 0); }

  // Marks every word overlapping byte range [off, off + len).
  void MarkRange(usize off, usize len) {
    if (len == 0) {
      return;
    }
    const usize w0 = off / kMergeWordBytes;
    const usize w1 = (off + len - 1) / kMergeWordBytes;
    const usize i0 = w0 >> 6;
    const usize i1 = w1 >> 6;
    const u64 first = ~0ULL << (w0 & 63);
    const u64 last = ~0ULL >> (63 - (w1 & 63));
    if (i0 == i1) {
      bits_[i0] |= first & last;
      return;
    }
    bits_[i0] |= first;
    for (usize i = i0 + 1; i < i1; ++i) {
      bits_[i] = ~0ULL;
    }
    bits_[i1] |= last;
  }

  // Returns whether word `w` is marked. Out-of-range words read as unmarked.
  bool Test(usize w) const {
    const usize i = w >> 6;
    return i < bits_.size() && ((bits_[i] >> (w & 63)) & 1) != 0;
  }

  bool Empty() const {
    for (u64 b : bits_) {
      if (b) {
        return false;
      }
    }
    return true;
  }

  // Calls fn(word_index) for every marked word, in ascending order.
  template <typename Fn>
  void ForEachSetWord(Fn&& fn) const {
    for (usize i = 0; i < bits_.size(); ++i) {
      u64 b = bits_[i];
      while (b) {
        fn((i << 6) + static_cast<usize>(std::countr_zero(b)));
        b &= b - 1;
      }
    }
  }

 private:
  std::vector<u64> bits_;
};

struct MergeResult {
  usize bytes = 0;  // bytes applied (mine[i] != twin[i])
  usize words = 0;  // 8-byte words containing at least one applied byte
};

// Word-granularity fast path of MergeInto. Precondition (maintained by
// Workspace): every byte where `mine` differs from `twin` lies in a word
// marked in `dirty`. Under that precondition this applies exactly the same
// bytes as MergeInto and returns the same applied-byte count.
inline MergeResult MergeIntoWords(PageBuf& base, const PageBuf& mine, const PageBuf& twin,
                                  const DirtyWords& dirty) {
  CSQ_CHECK(base.size() == mine.size() && mine.size() == twin.size());
  MergeResult r;
  const usize n = mine.size();
  dirty.ForEachSetWord([&](usize w) {
    const usize off = w * kMergeWordBytes;
    if (off >= n) {
      return;
    }
    const usize span = std::min(kMergeWordBytes, n - off);
    // memcmp over 8 aligned bytes compiles to one u64 compare.
    if (std::memcmp(mine.data() + off, twin.data() + off, span) == 0) {
      return;
    }
    ++r.words;
    for (usize i = off; i < off + span; ++i) {
      if (mine[i] != twin[i]) {
        base[i] = mine[i];
        ++r.bytes;
      }
    }
  });
  return r;
}

// Returns true if any byte differs.
inline bool PagesDiffer(const PageBuf& a, const PageBuf& b) {
  CSQ_CHECK(a.size() == b.size());
  return a != b;
}

}  // namespace csq::conv
