// Pages and byte-granularity merging.
//
// Conversion versions memory at page granularity and resolves page-level
// conflicts by byte-granularity, last-writer-wins merging (§2.4/§2.5 of the
// paper). A page's bytes are immutable once published as a committed revision
// (shared_ptr<const PageBuf>); workspaces hold private writable copies.
//
// Fast path: workspaces additionally track, per writable copy, which 8-byte
// words their stores touched (DirtyWords). The merge paths then diff only the
// touched words instead of scanning the whole page byte-by-byte. Because a
// byte can differ from the twin only if it was stored to, and every store
// marks the words it covers, skipping unmarked words is byte-exact — the
// word-granularity merge applies exactly the bytes (and reports exactly the
// counts) the reference byte loop does. Only host wall-clock time changes;
// merged bytes and virtual-time charges are identical.
#pragma once

#include <algorithm>
#include <bit>
#include <cstring>
#include <memory>
#include <vector>

#include "src/simd/kernels.h"
#include "src/util/check.h"
#include "src/util/types.h"

namespace csq::conv {

using PageBuf = std::vector<u8>;
using PageRef = std::shared_ptr<const PageBuf>;

// Diff/merge granularity of the word fast path (bytes). The simd kernel
// layer hardcodes the same 8-byte word (bit w of a bitmap covers bytes
// [8w, 8w+8)); the two must agree for DirtyWords bitmaps to be passable to
// the kernels directly.
inline constexpr usize kMergeWordBytes = 8;

// Copies `src` into a fresh writable page buffer.
inline std::unique_ptr<PageBuf> CopyPage(const PageBuf& src) {
  return std::make_unique<PageBuf>(src);
}

// Applies the byte-granularity diff (mine vs twin) onto `base`, in place:
// every byte the committer changed relative to its twin wins over `base`
// (last-writer-wins). Returns the number of bytes applied.
//
// This is the reference merge; the hot paths use MergeIntoWords below, and a
// property test (tests/conv_property_test.cc) pins the two to byte-identical
// behaviour.
inline usize MergeInto(PageBuf& base, const PageBuf& mine, const PageBuf& twin) {
  CSQ_CHECK(base.size() == mine.size() && mine.size() == twin.size());
  usize applied = 0;
  for (usize i = 0; i < mine.size(); ++i) {
    if (mine[i] != twin[i]) {
      base[i] = mine[i];
      ++applied;
    }
  }
  return applied;
}

// Bitmap over the 8-byte words of one page: bit w covers bytes
// [8w, 8w+8) (the final word may be short if the page size is not a multiple
// of 8). Workspaces mark the words their stores cover; merge paths visit only
// marked words.
class DirtyWords {
 public:
  // Sizes the bitmap for a page of `page_bytes` bytes and clears it.
  void Reset(usize page_bytes) {
    bits_.assign(simd::BitmapBlocks(page_bytes), 0);
    set_count_ = 0;
  }

  void Clear() {
    if (set_count_ == 0) {
      return;
    }
    std::fill(bits_.begin(), bits_.end(), 0);
    set_count_ = 0;
  }

  // Marks every word overlapping byte range [off, off + len). Maintains the
  // set-word count so Empty()/SetWordCount() are O(1).
  void MarkRange(usize off, usize len) {
    if (len == 0) {
      return;
    }
    const usize w0 = off / kMergeWordBytes;
    const usize w1 = (off + len - 1) / kMergeWordBytes;
    const usize i0 = w0 >> 6;
    const usize i1 = w1 >> 6;
    const u64 first = ~0ULL << (w0 & 63);
    const u64 last = ~0ULL >> (63 - (w1 & 63));
    if (i0 == i1) {
      Or(i0, first & last);
      return;
    }
    Or(i0, first);
    for (usize i = i0 + 1; i < i1; ++i) {
      Or(i, ~0ULL);
    }
    Or(i1, last);
  }

  // Returns whether word `w` is marked. Out-of-range words read as unmarked.
  bool Test(usize w) const {
    const usize i = w >> 6;
    return i < bits_.size() && ((bits_[i] >> (w & 63)) & 1) != 0;
  }

  // O(1): the set-word count is maintained by MarkRange()/Clear()/Reset()
  // instead of scanning the bitmap.
  bool Empty() const { return set_count_ == 0; }
  usize SetWordCount() const { return set_count_; }

  // Raw bitmap blocks (u64 little-endian, bit (w & 63) of block (w >> 6)),
  // in the exact layout the simd kernels consume.
  const u64* BitsData() const { return bits_.data(); }
  usize BlockCount() const { return bits_.size(); }

  // Calls fn(word_index) for every marked word, in ascending order.
  template <typename Fn>
  void ForEachSetWord(Fn&& fn) const {
    if (set_count_ == 0) {
      return;
    }
    for (usize i = 0; i < bits_.size(); ++i) {
      u64 b = bits_[i];
      while (b) {
        fn((i << 6) + static_cast<usize>(std::countr_zero(b)));
        b &= b - 1;
      }
    }
  }

  // Calls fn(first_word, run_len) for every maximal run of marked words, in
  // ascending order — the run-coalesced form of ForEachSetWord for consumers
  // that can process contiguous word spans in one step.
  template <typename Fn>
  void ForEachSetRun(Fn&& fn) const {
    if (set_count_ == 0) {
      return;
    }
    usize run_start = 0;
    usize run_len = 0;
    for (usize i = 0; i < bits_.size(); ++i) {
      u64 b = bits_[i];
      while (b) {
        const unsigned tz = static_cast<unsigned>(std::countr_zero(b));
        const unsigned ones = static_cast<unsigned>(std::countr_one(b >> tz));
        const usize w0 = (i << 6) + tz;
        if (run_len != 0 && run_start + run_len == w0) {
          run_len += ones;
        } else {
          if (run_len != 0) {
            fn(run_start, run_len);
          }
          run_start = w0;
          run_len = ones;
        }
        b = (tz + ones >= 64) ? 0 : (b & ~(((1ULL << ones) - 1) << tz));
      }
    }
    if (run_len != 0) {
      fn(run_start, run_len);
    }
  }

 private:
  void Or(usize i, u64 mask) {
    const u64 added = mask & ~bits_[i];
    bits_[i] |= mask;
    set_count_ += static_cast<usize>(std::popcount(added));
  }

  std::vector<u64> bits_;
  usize set_count_ = 0;
};

struct MergeResult {
  usize bytes = 0;  // bytes applied (mine[i] != twin[i])
  usize words = 0;  // 8-byte words containing at least one applied byte
};

// Word-granularity fast path of MergeInto, on the simd kernel layer.
// Precondition (maintained by Workspace): every byte where `mine` differs
// from `twin` lies in a word marked in `dirty`. Under that precondition this
// applies exactly the same bytes as MergeInto and returns the same
// applied-byte count — the kernels are pure byte functions pinned against
// MergeInto by tests/simd_kernels_test.cc at every dispatch level.
//
// Two stages: (a) vectorized twin-diff narrows the dirty mask to words that
// actually differ (so the merge touches no clean word even when stores wrote
// back unchanged values), then (b) run-coalesced merge applies maximal runs
// of differing words as masked vector stores.
inline MergeResult MergeIntoWords(PageBuf& base, const PageBuf& mine, const PageBuf& twin,
                                  const DirtyWords& dirty) {
  CSQ_CHECK(base.size() == mine.size() && mine.size() == twin.size());
  MergeResult r;
  if (dirty.Empty()) {
    return r;
  }
  const usize n = mine.size();
  const usize blocks = simd::BitmapBlocks(n);
  CSQ_CHECK(dirty.BlockCount() == blocks);
  const simd::PageKernels& k = simd::Kernels();
  thread_local std::vector<u64> diff_bits;
  diff_bits.resize(blocks);
  if (k.diff_words(mine.data(), twin.data(), n, dirty.BitsData(), diff_bits.data()) == 0) {
    return r;
  }
  const simd::DiffMergeCounts c = k.merge_runs(base.data(), mine.data(), twin.data(), n,
                                               diff_bits.data());
  r.bytes = c.bytes;
  r.words = c.words;
  return r;
}

// Returns true if any byte differs.
inline bool PagesDiffer(const PageBuf& a, const PageBuf& b) {
  CSQ_CHECK(a.size() == b.size());
  return !a.empty() && !simd::Kernels().bytes_equal(a.data(), b.data(), a.size());
}

}  // namespace csq::conv
