// Pages and byte-granularity merging.
//
// Conversion versions memory at page granularity and resolves page-level
// conflicts by byte-granularity, last-writer-wins merging (§2.4/§2.5 of the
// paper). A page's bytes are immutable once published as a committed revision
// (shared_ptr<const PageBuf>); workspaces hold private writable copies.
#pragma once

#include <memory>
#include <vector>

#include "src/util/check.h"
#include "src/util/types.h"

namespace csq::conv {

using PageBuf = std::vector<u8>;
using PageRef = std::shared_ptr<const PageBuf>;

// Copies `src` into a fresh writable page buffer.
inline std::unique_ptr<PageBuf> CopyPage(const PageBuf& src) {
  return std::make_unique<PageBuf>(src);
}

// Applies the byte-granularity diff (mine vs twin) onto `base`, in place:
// every byte the committer changed relative to its twin wins over `base`
// (last-writer-wins). Returns the number of bytes applied.
inline usize MergeInto(PageBuf& base, const PageBuf& mine, const PageBuf& twin) {
  CSQ_CHECK(base.size() == mine.size() && mine.size() == twin.size());
  usize applied = 0;
  for (usize i = 0; i < mine.size(); ++i) {
    if (mine[i] != twin[i]) {
      base[i] = mine[i];
      ++applied;
    }
  }
  return applied;
}

// Returns true if any byte differs.
inline bool PagesDiffer(const PageBuf& a, const PageBuf& b) {
  CSQ_CHECK(a.size() == b.size());
  return a != b;
}

}  // namespace csq::conv
