// Conflict-observation interface between the Conversion substrate and the
// deterministic race analyzer (src/race, DESIGN.md §13).
//
// The Conversion layer already computes everything a commit-time race
// detector needs: phase one records every version's per-page predecessor
// (the concurrent chain suffix), and the merge paths diff the committer's
// dirty words against its twin — the committer's exact byte-level write set.
// This interface hands those observations to a sink without adding any
// dependency from csq_conv to the analyzer: the sink is an abstract class
// over types page.h already defines.
//
// Threading contract:
//   * OnVersionReserved fires floor-held from PrepareCommit.
//   * OnCommitPageResolved fires from ResolveCommitPage, which the off-floor
//     commit pipeline runs on the committer's own host thread — concurrently
//     with other threads' resolves. Implementations synchronize internally.
//     Ordering guarantee (what makes detection deterministic): same-page
//     resolves run in version order (FinishCommit's chain-tail wait), and a
//     version's sink call completes before its bytes publish, so when version
//     v resolves page p, every version < v of p has already been reported.
//   * OnRebase fires token-held from the update-time rebase path.
//   * OnReadsValidated fires floor-held from read-window validation; callers
//     fetch the page at the target version first, so the publish barrier
//     extends the ordering guarantee above to every version <= to_version.
//
// No method may touch the engine (charge, wait, notify): the analyzer must
// not perturb virtual time, so runs with the sink attached produce bit-equal
// vtimes, checksums and traces to runs without it.
#pragma once

#include "src/conv/page.h"
#include "src/util/types.h"

namespace csq::conv {

class RaceSink {
 public:
  virtual ~RaceSink() = default;

  // Phase one reserved `version` for thread `tid` at virtual time `vtime`
  // (the only jitter-dependent value the sink ever sees).
  virtual void OnVersionReserved(u64 version, u32 tid, u64 vtime) = 0;

  // Thread `tid` resolved `page` for commit `version`: its write set is the
  // byte diff of `mine` vs `twin` restricted to `dirty` words, and the
  // concurrent chain suffix for this page is versions in
  // (base_version, prev_version].
  virtual void OnCommitPageResolved(u32 page, u64 version, u32 tid, u64 base_version,
                                    u64 prev_version, const PageBuf& mine, const PageBuf& twin,
                                    const DirtyWords& dirty) = 0;

  // Thread `tid` rebased its pending stores of `page` (diff of `mine` vs
  // `twin` in `dirty` words) onto committed version `onto_version`; the
  // concurrent suffix is versions in (base_version, onto_version].
  virtual void OnRebase(u32 page, u32 tid, u64 base_version, u64 onto_version,
                        const PageBuf& mine, const PageBuf& twin, const DirtyWords& dirty) = 0;

  // Thread `tid` reached a synchronization point: the words of `page` it read
  // since the previous one (`reads`, sized for `page_bytes`) were performed
  // against content as of `from_version` and are concurrent with any commit
  // in (from_version, to_version].
  virtual void OnReadsValidated(u32 page, u32 tid, u64 from_version, u64 to_version,
                                const DirtyWords& reads, u32 page_bytes) = 0;

  // `version` sealed: fires floor-held from both FinishCommit completion
  // blocks, after the watermark advance — every one of the version's page
  // resolves (and their OnCommitPageResolved calls) has completed. This is
  // the earliest floor-ordered point at which the analyzer's record set for
  // the version is final, so it anchors the first-exit mode (DESIGN.md §18).
  virtual void OnCommitSealed(u64 version, u32 tid) {}
};

}  // namespace csq::conv
