#include "src/conv/segment.h"

#include <algorithm>

#include "src/conv/race_sink.h"
#include "src/conv/workspace.h"
#include "src/simd/kernels.h"
#include "src/util/stats.h"

namespace csq::conv {

namespace {

struct CountedDeleter {
  Segment* seg;
  void operator()(const PageBuf* p) const {
    seg->NotePageFree();
    seg->RecyclePageBuf(p);
  }
};

}  // namespace

Segment::Segment(sim::Engine& eng, SegmentConfig cfg)
    : eng_(eng),
      cfg_(cfg),
      page_count_(static_cast<u32>(cfg.size_bytes / cfg.page_size)),
      pool_parts_(eng.HostWorkerSlots()),
      pool_part_cap_(std::max<usize>(1, kMaxPooledBufs / eng.HostWorkerSlots())) {
  CSQ_CHECK_MSG((cfg.page_size & (cfg.page_size - 1)) == 0, "page size must be a power of 2");
  CSQ_CHECK(cfg.size_bytes % cfg.page_size == 0);
  chains_.resize(page_count_);
  page_reserved_tail_.resize(page_count_, 0);
  by_version_.emplace_back();  // version 0: the all-zero baseline, no pages
  NotePageAlloc();
  zero_page_ = PageRef(new PageBuf(cfg_.page_size, 0), CountedDeleter{this});
}

Segment::~Segment() = default;

PageRef Segment::Fetch(u32 page, u64 version) const {
  return FetchRev(page, version).data;
}

PageRev Segment::FetchRev(u32 page, u64 version) const {
  CSQ_CHECK_MSG(page < page_count_, "page " << page << " out of range");
  for (;;) {
    u64 epoch;
    {
      std::shared_lock<std::shared_mutex> lk(chains_mu_);
      const auto& chain = chains_[page];
      auto it = std::upper_bound(chain.begin(), chain.end(), version,
                                 [](u64 v, const PageRev& r) { return v < r.version; });
      if (it == chain.begin()) {
        return PageRev{0, nullptr};
      }
      const PageRev& rev = *std::prev(it);
      if (rev.data != nullptr) {
        return rev;
      }
      // Placeholder: the revision is pinned in the total order but its bytes
      // are still in some committer's off-floor work phase. Snapshot the
      // publish epoch while the placeholder is provably unpublished (we hold
      // the chain lock, publishes take it exclusive) so the epoch wait below
      // cannot miss the wakeup.
      epoch = pub_epoch_.load(std::memory_order_relaxed);
    }
    WaitPublishEpoch(epoch);
  }
}

void Segment::WaitPublishEpoch(u64 seen) const {
  const bool lent = eng_.BeginHostWait();
  {
    std::unique_lock<std::mutex> lk(pub_mu_);
    pub_cv_.wait(lk, [&] { return pub_epoch_.load(std::memory_order_relaxed) != seen; });
  }
  eng_.EndHostWait(lent);
}

u64 Segment::LatestVersionOf(u32 page) const {
  std::shared_lock<std::shared_mutex> lk(chains_mu_);
  const auto& chain = chains_[page];
  return chain.empty() ? 0 : chain.back().version;
}

PreparedCommit Segment::PrepareCommit(u32 tid, std::vector<u32> pages) {
  eng_.GateShared(cfg_.floor_domain);
  PreparedCommit pc;
  pc.version = ++next_reserved_version_;
  pc.tid = tid;
  pc.pages = std::move(pages);
  if (cfg_.test_vtime_dependent_commit_order && pc.pages.size() > 1 && (eng_.Now() & 1) != 0) {
    // Injected nondeterminism (see SegmentConfig): page order becomes a
    // function of jittered virtual time. Checksums are unaffected.
    std::reverse(pc.pages.begin(), pc.pages.end());
  }
  pc.prev_versions.reserve(pc.pages.size());
  for (u32 page : pc.pages) {
    pc.prev_versions.push_back(page_reserved_tail_[page]);
    page_reserved_tail_[page] = pc.version;
  }
  // Append this version to the changed-page index. Versions are reserved
  // sequentially under the token, so the index grows by exactly one entry.
  CSQ_CHECK(by_version_.size() == pc.version);
  VersionInfo vi;
  vi.pages = pc.pages;
  vi.sorted_prevs = pc.prev_versions;
  std::sort(vi.sorted_prevs.begin(), vi.sorted_prevs.end());
  vi.cum_revs = by_version_.back().cum_revs + pc.pages.size();
  by_version_.push_back(std::move(vi));
  if (race_ != nullptr) {
    // Floor-held, token-ordered: the analyzer learns (version -> tid, vtime)
    // before any resolve of this version can run. Pure observation, no charge.
    race_->OnVersionReserved(pc.version, tid, eng_.Now());
  }
  return pc;
}

void Segment::FinishCommit(const PreparedCommit& pc, const CommitOps& ops) {
  // Phase two (parallel in virtual time): per page, wait for the predecessor
  // recorded in phase one to install, merge onto it, install. Commits to
  // disjoint pages proceed completely independently — only same-page merges
  // serialize, exactly the Conversion paper's parallel commit.
  if (!OffFloorActive()) {
    // Reference path (serial engine / pipeline disabled): charge, resolve and
    // install run back-to-back under the gate at each page's protocol point.
    WallTimer held;
    for (usize i = 0; i < pc.pages.size(); ++i) {
      const u32 page = pc.pages[i];
      const u64 prev = pc.prev_versions[i];
      eng_.GateShared(cfg_.floor_domain);
      while (LatestVersionOf(page) != prev) {
        eng_.Wait(install_order_, sim::TimeCat::kCommit);
        eng_.GateShared(cfg_.floor_domain);
      }
      ops.charge(page, prev);
      auto buf = ops.resolve(page, Fetch(page, prev), prev);
      InstallRev(page, pc.version, PageRef(buf.release(), CountedDeleter{this}));
      eng_.NotifyAll(install_order_);
    }
    // Mark this version complete and advance the contiguous-prefix watermark.
    eng_.GateShared(cfg_.floor_domain);
    installed_ahead_.insert(pc.version);
    while (!installed_ahead_.empty() && *installed_ahead_.begin() == installed_upto_ + 1) {
      ++installed_upto_;
      installed_ahead_.erase(installed_ahead_.begin());
    }
    ++stats_.commits;
    stats_.pages_committed += pc.pages.size();
    eng_.NotifyAll(install_order_);
    if (race_ != nullptr) {
      race_->OnCommitSealed(pc.version, pc.tid);
    }
    if (ops.fence) {
      ops.fence();
    }
    stats_.floor_held_commit_ns += static_cast<u64>(held.ElapsedNs());
    if (observer_) {
      CommitRecord rec;
      rec.version = pc.version;
      rec.tid = pc.tid;
      rec.pages = pc.pages;
      observer_(rec);
    }
    return;
  }
  // Off-floor pipeline (DESIGN.md §12). Each page commits in two steps: a
  // floor-held ORDER step — event-for-event identical to the reference path
  // (same gate, wait, charge, chain splice and notify at the same virtual
  // time) except the spliced revision is a placeholder (data == null) — and
  // an off-floor WORK step that runs the expensive byte work (word-bitmap
  // diff, MergeIntoWords, page copies) on the committer's own host thread,
  // overlapped with other threads' chunk execution, then publishes the bytes
  // into the placeholder.
  //
  // The work step for page i runs BEFORE the order step for page i+1. That
  // staging is what keeps placeholder waits acyclic: a page's bytes need
  // only its predecessor's bytes (published at the same point of the
  // predecessor owner's pipeline, before any later-ordered floor work) plus
  // host CPU — never a future floor grant. Deferring all byte work past the
  // whole order loop instead can deadlock: a reader host-blocked on one of
  // our unpublished pages keeps its (lower) virtual time frozen, the
  // engine's conservative grant rule then withholds the floor our order loop
  // still needs, and our publish is exactly what the reader is waiting for.
  WallTimer commit_wall;
  u64 work_ns = 0;
  for (usize i = 0; i < pc.pages.size(); ++i) {
    const u32 page = pc.pages[i];
    const u64 prev = pc.prev_versions[i];
    eng_.GateShared(cfg_.floor_domain);
    while (LatestVersionOf(page) != prev) {
      eng_.Wait(install_order_, sim::TimeCat::kCommit);
      eng_.GateShared(cfg_.floor_domain);
    }
    ops.charge(page, prev);
    InstallRev(page, pc.version, nullptr);
    eng_.NotifyAll(install_order_);
    eng_.EndShared();
    WallTimer work;
    auto buf = ops.resolve(page, Fetch(page, prev), prev);
    PublishRev(page, pc.version, PageRef(buf.release(), CountedDeleter{this}));
    work_ns += static_cast<u64>(work.ElapsedNs());
  }
  // Completion: re-gate to advance the contiguous-prefix watermark, update
  // stats and flush the buffered per-thread observer emissions, serialized
  // with every other floor holder. The closing gate performs no engine
  // mutation beyond the reference path's own closing block, and FinishCommit
  // keeps its returns-floor-held contract.
  eng_.GateShared(cfg_.floor_domain);
  installed_ahead_.insert(pc.version);
  while (!installed_ahead_.empty() && *installed_ahead_.begin() == installed_upto_ + 1) {
    ++installed_upto_;
    installed_ahead_.erase(installed_ahead_.begin());
  }
  ++stats_.commits;
  stats_.pages_committed += pc.pages.size();
  stats_.offfloor_pages_installed += pc.pages.size();
  stats_.offfloor_commit_ns += work_ns;
  const u64 total_ns = static_cast<u64>(commit_wall.ElapsedNs());
  stats_.floor_held_commit_ns += total_ns > work_ns ? total_ns - work_ns : 0;
  eng_.NotifyAll(install_order_);
  if (race_ != nullptr) {
    race_->OnCommitSealed(pc.version, pc.tid);
  }
  if (ops.fence) {
    ops.fence();
  }
  if (observer_) {
    CommitRecord rec;
    rec.version = pc.version;
    rec.tid = pc.tid;
    rec.pages = pc.pages;
    observer_(rec);
  }
}

void Segment::InstallRev(u32 page, u64 version, PageRef data) {
  // Callers are gate-serialized; the exclusive lock only shields concurrent
  // snapshot readers from the vector reallocation.
  std::unique_lock<std::shared_mutex> lk(chains_mu_);
  auto& chain = chains_[page];
  CSQ_CHECK(chain.empty() || chain.back().version < version);
  if (chain.empty()) {
    ++populated_pages_;
  }
  chain.push_back(PageRev{version, std::move(data)});
  stats_.live_page_bytes += cfg_.page_size;
}

void Segment::PublishRev(u32 page, u64 version, PageRef data) {
  CSQ_CHECK(data != nullptr);
  {
    std::unique_lock<std::shared_mutex> lk(chains_mu_);
    auto& chain = chains_[page];
    auto it = std::lower_bound(chain.begin(), chain.end(), version,
                               [](const PageRev& r, u64 v) { return r.version < v; });
    CSQ_CHECK_MSG(it != chain.end() && it->version == version,
                  "publish of an uninstalled revision v" << version << " page " << page);
    CSQ_CHECK_MSG(it->data == nullptr, "double publish v" << version << " page " << page);
    it->data = std::move(data);
  }
  std::lock_guard<std::mutex> lk(pub_mu_);
  pub_epoch_.fetch_add(1, std::memory_order_relaxed);
  pub_cv_.notify_all();
}

usize Segment::DistinctPagesChanged(u64 from, u64 to) const {
  // A page is counted once, at its first touch in (from, to]: version v
  // touching page p is p's first touch iff p's predecessor version is <= from.
  // Callers only query fully installed prefixes, for which every version in
  // range has an index entry (appended in phase one).
  usize count = 0;
  const u64 hi = std::min<u64>(to, by_version_.size() - 1);
  for (u64 v = from + 1; v <= hi; ++v) {
    const std::vector<u64>& prevs = by_version_[v].sorted_prevs;
    count += static_cast<usize>(
        std::upper_bound(prevs.begin(), prevs.end(), from) - prevs.begin());
  }
  return count;
}

u64 Segment::RevisionsInRange(u64 from, u64 to) const {
  const u64 last = by_version_.size() - 1;
  const u64 hi = std::min(to, last);
  const u64 lo = std::min(from, last);
  if (hi <= lo) {
    return 0;
  }
  return by_version_[hi].cum_revs - by_version_[lo].cum_revs;
}

const std::vector<u32>& Segment::PagesOfVersion(u64 version) const {
  static const std::vector<u32> kEmpty;
  if (version >= by_version_.size()) {
    return kEmpty;
  }
  return by_version_[version].pages;
}

void Segment::WaitInstalled(u64 version) {
  eng_.GateShared(cfg_.floor_domain);
  while (installed_upto_ < version) {
    eng_.Wait(install_order_, sim::TimeCat::kCommit);
    eng_.GateShared(cfg_.floor_domain);
  }
}

void Segment::WaitGcQuiesced() {
  // Floor-held host wait: the eraser needs no floor (only gc_mu_/chains_mu_),
  // so it always drains. No slot lending — the caller keeps the floor.
  std::unique_lock<std::mutex> lk(gc_mu_);
  gc_cv_.wait(lk, [&] { return !gc_inflight_; });
}

usize Segment::Gc(u32 nthreads_for_amortization) {
  if (cfg_.gc_budget_per_call == 0 && !cfg_.multithreaded_gc) {
    return 0;
  }
  eng_.GateShared(cfg_.floor_domain);
  const bool offfloor = OffFloorActive();
  if (offfloor) {
    // A previous caller's deferred erase may still be running; the decision
    // scan below must never observe a half-erased chain.
    WaitGcQuiesced();
  }
  // Deferred (off-floor) reclaim list: page index + number of leading
  // revisions to drop. Chain prefixes are stable against the concurrent
  // phase-one installs (which only append) and there is a single eraser.
  std::vector<std::pair<u32, usize>> pending;
  const u64 watermark = MinSnapshotVersion();
  const usize budget =
      cfg_.multithreaded_gc ? static_cast<usize>(-1) : cfg_.gc_budget_per_call;
  usize reclaimed = 0;
  const u32 n = page_count_;
  // Advance the cursor past every fully scanned page so the next budgeted
  // call resumes where this one stopped instead of rescanning the same
  // prefix. A page whose garbage was only partially dropped (budget ran out
  // mid-chain) is where the next call must resume. Note the per-call
  // reclaimed count is min(budget, total garbage) no matter where the scan
  // starts — the scan wraps the whole range — so GC charges (and hence
  // virtual time) are independent of the cursor.
  u32 advance = 0;
  for (u32 i = 0; i < n && reclaimed < budget; ++i) {
    const u32 page = (gc_cursor_ + i) % n;
    advance = i + 1;
    auto& chain = chains_[page];
    if (chain.size() < 2) {
      continue;
    }
    // Keep the newest revision with version <= watermark (it is somebody's
    // base) and everything newer; drop older revisions.
    usize keep_from = 0;
    for (usize k = 0; k + 1 < chain.size(); ++k) {
      if (chain[k + 1].version <= watermark) {
        keep_from = k + 1;
      }
    }
    if (keep_from > 0) {
      const usize drop = std::min(keep_from, budget - reclaimed);
      if (offfloor) {
        // Decision (and every simulated effect: reclaim count, byte
        // accounting, the charge below) stays floor-held and bit-identical
        // to the reference path; only the host-side erase is deferred.
        pending.emplace_back(page, drop);
      } else {
        // Exclusive vs concurrent snapshot readers; reclaimed revisions are
        // below every live snapshot, so no reader can be *using* them.
        std::unique_lock<std::shared_mutex> lk(chains_mu_);
        chain.erase(chain.begin(), chain.begin() + static_cast<i64>(drop));
      }
      reclaimed += drop;
      stats_.live_page_bytes -= drop * cfg_.page_size;
      if (drop < keep_from) {
        advance = i;  // leftover garbage here: resume on this page
      }
    }
  }
  gc_cursor_ = (gc_cursor_ + advance) % n;
  stats_.gc_reclaimed_pages += reclaimed;
  if (reclaimed > 0) {
    const u64 cost = eng_.Costs().gc_per_page * reclaimed /
                     std::max<u32>(1, cfg_.multithreaded_gc ? nthreads_for_amortization : 1);
    eng_.Charge(cost, sim::TimeCat::kGc);
  }
  if (pending.empty()) {
    return reclaimed;
  }
  // Off-floor reclaim: release the floor, erase (buffer deleters recycle into
  // the pool), then re-gate so Gc keeps its returns-floor-held contract. The
  // dropped revisions sit below every non-exempt snapshot, and an unpublished
  // version's committer pins the watermark below it (its workspace is
  // non-exempt until FinishCommit returns), so every dropped revision is
  // published and unreachable.
  {
    std::lock_guard<std::mutex> lk(gc_mu_);
    gc_inflight_ = true;
  }
  eng_.EndShared();
  for (const auto& [page, drop] : pending) {
    std::unique_lock<std::shared_mutex> lk(chains_mu_);
    auto& chain = chains_[page];
    for (usize k = 0; k < drop; ++k) {
      CSQ_DCHECK(chain[k].data != nullptr);
    }
    chain.erase(chain.begin(), chain.begin() + static_cast<i64>(drop));
  }
  {
    std::lock_guard<std::mutex> lk(gc_mu_);
    gc_inflight_ = false;
  }
  // Notify before re-gating: a floor-held WaitGcQuiesced() caller would
  // otherwise hold the floor we are about to wait for.
  gc_cv_.notify_all();
  eng_.GateShared(cfg_.floor_domain);
  return reclaimed;
}

void Segment::RegisterWorkspace(Workspace* ws) { workspaces_.push_back(ws); }

void Segment::UnregisterWorkspace(Workspace* ws) {
  workspaces_.erase(std::remove(workspaces_.begin(), workspaces_.end(), ws), workspaces_.end());
}

u64 Segment::MinSnapshotVersion() const {
  u64 min_v = installed_upto_;
  for (const Workspace* ws : workspaces_) {
    if (!ws->GcExempt()) {
      min_v = std::min(min_v, ws->SnapshotVersion());
    }
  }
  return min_v;
}

void Segment::NotePageAlloc() {
  std::lock_guard<std::mutex> lk(pool_mu_);
  stats_.cur_total_page_bytes += cfg_.page_size;
  stats_.peak_page_bytes = std::max(stats_.peak_page_bytes, stats_.cur_total_page_bytes);
}

void Segment::NotePageFree() {
  std::lock_guard<std::mutex> lk(pool_mu_);
  CSQ_CHECK(stats_.cur_total_page_bytes >= cfg_.page_size);
  stats_.cur_total_page_bytes -= cfg_.page_size;
}

std::unique_ptr<PageBuf> Segment::AcquireCopyOf(const PageBuf& src, bool* from_pool) {
  // Worker-local partition first (same slot = warm, recently touched
  // buffers); steal round-robin from the neighbours only when it is dry, so
  // buffers stay slot-resident under steady load.
  const usize home = eng_.HostWorkerHint() % pool_parts_.size();
  std::unique_ptr<PageBuf> buf;
  for (usize i = 0; i < pool_parts_.size() && !buf; ++i) {
    PoolPart& part = pool_parts_[(home + i) % pool_parts_.size()];
    std::lock_guard<std::mutex> lk(part.mu);
    if (!part.bufs.empty()) {
      buf = std::move(part.bufs.back());
      part.bufs.pop_back();
    }
  }
  if (buf) {
    // Pooled buffers were Reset() to page size at birth and never resized, so
    // this is a pure byte copy at the active kernel's vector width.
    CSQ_CHECK(buf->size() == src.size());
    simd::Kernels().copy_bytes(buf->data(), src.data(), src.size());
    if (from_pool) {
      *from_pool = true;
    }
    return buf;
  }
  if (from_pool) {
    *from_pool = false;
  }
  return std::make_unique<PageBuf>(src);
}

void Segment::ReleasePageBuf(std::unique_ptr<PageBuf> buf) {
  if (!buf) {
    return;
  }
  PoolPart& part = pool_parts_[eng_.HostWorkerHint() % pool_parts_.size()];
  std::lock_guard<std::mutex> lk(part.mu);
  if (part.bufs.size() >= pool_part_cap_) {
    return;  // partition full: let the host allocator take it
  }
  part.bufs.push_back(std::move(buf));
}

void Segment::RecyclePageBuf(const PageBuf* buf) {
  ReleasePageBuf(std::unique_ptr<PageBuf>(const_cast<PageBuf*>(buf)));
}

}  // namespace csq::conv
