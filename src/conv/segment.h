// Conversion: multi-version concurrency control for a main-memory segment.
//
// This is a user-space reimplementation of the authors' EuroSys'13 kernel
// system [23], which Consequence uses for thread isolation (§2.5):
//
//   * The segment's committed state is a version log: per page, an append-only
//     chain of (version, immutable page buffer) revisions.
//   * Threads operate on private Workspaces (see workspace.h): snapshot version
//     + copy-on-write local pages.
//   * Commits install new revisions in a global total order (callers hold the
//     deterministic token, so version numbers are deterministic).
//   * Two-phase parallel commit (§4.2): phase one (serial) reserves a version
//     and the per-page merge order; phase two (parallel in virtual time)
//     performs the page merges and installs them in version order.
//   * A budget-limited garbage collector reclaims revisions no workspace can
//     reach. The budget models the paper's single-threaded collector that
//     "cannot keep up" on canneal/lu_ncb (Fig 12); an unlimited budget models
//     the proposed multi-threaded collector.
//
// All operations that mutate or scan shared chains gate on the simulation's
// virtual-time order; read-only fetches at a workspace's snapshot never gate
// (append-only chains make them interference-free).
//
// Host-parallel engine (sim::SimConfig::host_workers > 1): workspaces execute
// their local segments on concurrent host threads, so the snapshot read path
// (Fetch / FetchRev / LatestVersionOf) takes `chains_mu_` shared while the
// gate-serialized mutators (InstallRev, Gc's erase) take it exclusive — the
// lock protects the chain *vectors* (push_back may reallocate under a reader);
// the page buffers themselves are immutable once installed and the values read
// are deterministic because a snapshot never exceeds the reader's gate-ordered
// update point. The page-byte accounting takes `pool_mu_` and the buffer pool
// is partitioned per engine execution slot (DESIGN.md §16) with a mutex per
// partition: CoW faults and workspace page drops hit them from local
// (un-gated) code, so `peak_page_bytes` depends on host scheduling when
// host_workers > 1 — it is excluded from cross-engine equivalence
// comparisons.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <memory>
#include <vector>

#include "src/conv/page.h"
#include "src/sim/engine.h"
#include "src/util/types.h"

namespace csq::conv {

class Workspace;
class RaceSink;  // race_sink.h — optional commit-time conflict analyzer

struct SegmentConfig {
  usize size_bytes = 16 * 1024 * 1024;
  u32 page_size = 4096;
  // Max page revisions reclaimed per Gc() call (the single-threaded collector's
  // per-opportunity budget). 0 disables collection entirely.
  u32 gc_budget_per_call = 8;
  // Models the paper's proposed multi-threaded collector: unlimited budget and
  // the reclamation cost amortized across threads.
  bool multithreaded_gc = false;
  // Off-floor commit pipeline (DESIGN.md §12): on the host-parallel engine,
  // FinishCommit holds the floor only for the order phase (charges + placeholder
  // installs at the exact serial protocol points) and runs the byte work —
  // diffs, merges, page copies — on the committer's own host thread, overlapped
  // with other threads' chunk execution; Gc likewise defers its chain erases
  // off the floor. Simulated results are bit-identical either way; the flag
  // only moves host work off the critical path. No effect on the serial engine.
  bool offfloor_commit = true;
  // Floor domain that orders this segment's shared operations (DESIGN.md
  // §14). Default 0 = the engine's global domain. A multi-segment setup may
  // give each segment its own Engine::CreateFloorDomain id so threads
  // touching disjoint segments hold disjoint floors concurrently; the
  // lexicographic (vtime, domain, tid) rule merges the per-domain commit
  // streams back into the single deterministic total order.
  u32 floor_domain = sim::kGlobalFloorDomain;
  // TEST ONLY — deliberately breaks cross-run determinism so the TSO trace
  // oracle's divergence reporting can be exercised: when set, a multi-page
  // commit prepared at an odd virtual time reverses its page install order.
  // Virtual time depends on the jitter seed, so two jittered runs install the
  // same commit's pages in different orders while every checksum stays equal
  // (install order within one version never changes final page contents).
  bool test_vtime_dependent_commit_order = false;
};

// One committed revision of one page.
struct PageRev {
  u64 version = 0;
  PageRef data;
};

// A commit that has completed phase one of the two-phase protocol but not yet
// installed its pages. Phase one records, per page, the predecessor version
// this commit must merge onto — the per-page merge order of the Conversion
// paper's parallel commit: pages of different commits install independently;
// only same-page merges serialize.
struct PreparedCommit {
  u64 version = 0;
  u32 tid = 0;
  std::vector<u32> pages;
  std::vector<u64> prev_versions;  // per page: version to merge onto
};

// Everything the LRC what-if tracker (and stats) needs to know about a commit.
struct CommitRecord {
  u64 version = 0;
  u32 tid = 0;
  std::vector<u32> pages;
};

struct SegmentStats {
  u64 commits = 0;
  u64 pages_committed = 0;
  u64 pages_merged = 0;       // page-level conflicts resolved by byte merge
  u64 bytes_merged = 0;
  u64 gc_reclaimed_pages = 0;
  u64 live_page_bytes = 0;    // committed revisions currently alive
  u64 peak_page_bytes = 0;    // including workspace-local copies (see NotePageAlloc)
  u64 cur_total_page_bytes = 0;
  // Off-floor commit pipeline observability. The ns counters are host
  // wall-clock (like peak_page_bytes they are host-dependent and excluded
  // from determinism/equivalence comparisons); the page counter is 0 on the
  // serial engine and pages_committed when the pipeline is active.
  u64 offfloor_pages_installed = 0;  // pages published via the off-floor work phase
  u64 floor_held_commit_ns = 0;      // FinishCommit wall time spent holding the floor
  u64 offfloor_commit_ns = 0;        // FinishCommit byte work overlapped off the floor
  // Distinct deduped race records found by the attached RaceSink (0 when no
  // analyzer is attached). Filled by the runtime at finalize time.
  u64 race_ww_records = 0;
  u64 race_rw_records = 0;
};

class Segment {
 public:
  Segment(sim::Engine& eng, SegmentConfig cfg = {});
  ~Segment();

  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  sim::Engine& Eng() { return eng_; }
  const SegmentConfig& Config() const { return cfg_; }
  // The floor domain all of this segment's shared ops gate on.
  u32 FloorDomain() const { return cfg_.floor_domain; }
  u32 PageSize() const { return cfg_.page_size; }
  u32 PageCount() const { return page_count_; }
  usize SizeBytes() const { return cfg_.size_bytes; }

  // The fully installed committed version (all versions <= this are visible).
  u64 CommittedVersion() const { return installed_upto_; }

  // The highest version reserved by phase one so far. At any token-held
  // point this is deterministic (all phase ones run under the token), which
  // makes it the correct deterministic target for updates.
  u64 ReservedVersion() const { return next_reserved_version_; }

  // Blocks until every version <= `version` has installed.
  void WaitInstalled(u64 version);

  // Number of DISTINCT pages with at least one new revision in versions
  // (from, to] — what an update propagates into a thread's view (Fig 16).
  //
  // Answered from the incremental changed-page index: phase one records, per
  // version, the sorted list of predecessor versions of its pages. A page's
  // FIRST touch inside (from, to] is exactly a (version, page) pair whose
  // predecessor is <= from, so the distinct count is one binary search per
  // version in the range — no hash-set rebuild.
  usize DistinctPagesChanged(u64 from, u64 to) const;

  // Total page-revisions committed in versions (from, to] (with multiplicity).
  // O(1) from the per-version cumulative revision counts.
  u64 RevisionsInRange(u64 from, u64 to) const;

  // Pages of one reserved version (empty for version 0 / never-reserved).
  const std::vector<u32>& PagesOfVersion(u64 version) const;

  // Number of pages that have at least one committed revision (the child
  // page-table population that makes fork expensive, §3.3).
  u32 PopulatedPageCount() const { return populated_pages_; }

  // Latest revision of `page` visible at `version` (nullptr = all-zero page).
  // Safe without gating: chains are append-only and `version` is a snapshot.
  PageRef Fetch(u32 page, u64 version) const;

  // Like Fetch but also reports which version the returned revision was
  // committed at ({0, nullptr} for a never-written page).
  PageRev FetchRev(u32 page, u64 version) const;

  // Latest committed version that touched `page`, or 0 if never written.
  u64 LatestVersionOf(u32 page) const;

  // --- Two-phase commit (§4.2) ----------------------------------------------
  //
  // Every commit goes through the two-phase protocol; the ordinary sync-op
  // path simply performs both phases back-to-back while holding the token,
  // whereas the deterministic barrier releases the token between the phases
  // so other threads' phase ones can proceed (the "parallel barrier commit"
  // optimization).
  PreparedCommit PrepareCommit(u32 tid, std::vector<u32> pages);

  // Phase-two callbacks, split so the floor-held order phase and the byte
  // work phase can be separated on the host-parallel engine (DESIGN.md §12).
  struct CommitOps {
    // Floor-held, at the page's version-ordered protocol point: apply the
    // deterministic virtual-time charges (and any deterministic counters) for
    // resolving `page` onto `prev_version`. Exactly one call per page, in
    // pc.pages order.
    std::function<void(u32 page, u64 prev_version)> charge;
    // Produces the page's final bytes given the immediately preceding
    // revision. Pure byte work: MUST NOT touch the engine (no charges, waits
    // or notifies) — on the off-floor path it runs outside the floor,
    // concurrently with other threads' chunk execution.
    std::function<std::unique_ptr<PageBuf>(u32 page, const PageRef& prev, u64 prev_version)>
        resolve;
    // Floor-held completion fence, after every page of this commit is
    // published: emit observer/trace events buffered by `resolve` so observer
    // streams stay floor-ordered. May be null.
    std::function<void()> fence;
  };

  // Performs the (virtually parallel) merge+install of a prepared commit.
  // Blocks until all earlier prepared versions of each page have installed
  // (installation is version-ordered; the expensive merge work overlaps).
  // Serial engine (or offfloor_commit = false): charge + resolve + install run
  // back-to-back under the gate per page — the reference behavior. Off-floor
  // (threaded engine): the floor-held order phase installs placeholder
  // revisions at the exact same protocol points, then the floor is released
  // and `resolve` runs on the committer's host thread; readers that hit a
  // placeholder block on its per-revision publish flag (PageRev.data == null
  // until published). Returns floor-held in both modes.
  void FinishCommit(const PreparedCommit& pc, const CommitOps& ops);

  // True when FinishCommit/Gc run their work phases off the floor (threaded
  // engine with offfloor_commit enabled).
  bool OffFloorActive() const { return eng_.Threaded() && cfg_.offfloor_commit; }

  // --- Garbage collection ---------------------------------------------------
  // Reclaims revisions older than the minimum workspace snapshot. Returns
  // pages reclaimed. Charged to the caller under TimeCat::kGc.
  usize Gc(u32 nthreads_for_amortization = 1);

  // --- Workspace registry (GC watermark) ------------------------------------
  void RegisterWorkspace(Workspace* ws);
  void UnregisterWorkspace(Workspace* ws);
  u64 MinSnapshotVersion() const;

  // --- Observers / stats -----------------------------------------------------
  using CommitObserver = std::function<void(const CommitRecord&)>;
  void SetCommitObserver(CommitObserver obs) { observer_ = std::move(obs); }

  // Canonical-trace hooks for the TSO determinism oracle. Fired by workspaces
  // (which know the acting thread) at update and merge-decision points; the
  // segment carries them so every workspace of a run shares one sink.
  struct TraceHooks {
    // Workspace `tid` advanced its snapshot from `from` to `to`, propagating
    // `pages_changed` distinct changed pages into its view.
    std::function<void(u32 tid, u64 from, u64 to, u64 pages_changed)> on_update;
    // Workspace `tid` byte-merged its dirty bytes of `page` onto committed
    // base `base_version`; `bytes` won by this thread. `rebase` = update-time
    // rebase (pending stores replayed on a newer twin) vs commit-time resolve;
    // `version` = the commit version being built or updated to.
    std::function<void(u32 tid, u32 page, u64 version, u64 base_version, u64 bytes, bool rebase)>
        on_merge;
  };
  void SetTraceHooks(TraceHooks hooks) { trace_hooks_ = std::move(hooks); }
  const TraceHooks& Hooks() const { return trace_hooks_; }

  // Optional commit-time race analyzer (race_sink.h). Not owned; must outlive
  // the segment's commits. Null (the default) keeps every analyzer call site
  // a single predictable-branch pointer test — the no-analyzer fast paths are
  // unchanged. The sink observes but never charges the engine, so vtimes,
  // checksums and traces are bit-identical with or without it.
  void SetRaceSink(RaceSink* sink) { race_ = sink; }
  RaceSink* Race() const { return race_; }
  void NoteRaceRecords(u64 ww, u64 rw) {
    stats_.race_ww_records = ww;
    stats_.race_rw_records = rw;
  }

  const SegmentStats& Stats() const { return stats_; }

  // Memory accounting hooks (also called by workspaces for their local pages).
  void NotePageAlloc();
  void NotePageFree();

  // --- Page-buffer pool ------------------------------------------------------
  // CoW faults, rebases, merges and commits all need a fresh page_size buffer;
  // the pool recycles retired buffers (dropped workspace copies, GC'd
  // revisions) so the hot paths stop round-tripping the host allocator. The
  // pool is invisible to the simulation: NotePageAlloc/NotePageFree call sites
  // are unchanged, so the virtual-time and memory figures are identical.

  // Returns a writable buffer holding a copy of `src`. Sets *from_pool to
  // whether the buffer was recycled (for the workspace's pool_reuses counter).
  std::unique_ptr<PageBuf> AcquireCopyOf(const PageBuf& src, bool* from_pool = nullptr);
  // Returns a retired buffer to the pool (or frees it if the pool is full).
  void ReleasePageBuf(std::unique_ptr<PageBuf> buf);
  // Deleter-path variant: takes ownership of a raw committed-revision buffer.
  void RecyclePageBuf(const PageBuf* buf);

  // Conflict-merge accounting (called by workspaces when they byte-merge).
  // Split so the off-floor commit path can count the page at its floor-held
  // protocol point (deterministic) and apply the byte count at the fence.
  void NoteMergePage() { ++stats_.pages_merged; }
  void NoteMergeBytes(usize bytes) { stats_.bytes_merged += bytes; }
  void NoteMerge(usize bytes) {
    NoteMergePage();
    NoteMergeBytes(bytes);
  }

  // Zero page shared by all never-written pages.
  const PageRef& ZeroPage() const { return zero_page_; }

 private:
  // Per-version entry of the changed-page index, appended by phase one
  // (PrepareCommit), so the index is maintained incrementally under the token.
  struct VersionInfo {
    std::vector<u32> pages;        // pages reserved by this version (sorted)
    std::vector<u64> sorted_prevs; // per page: predecessor version, sorted
    u64 cum_revs = 0;              // total page-revisions in versions <= this
  };

  // Upper bound on pooled buffers (4 MiB of 4 KiB pages) across all
  // partitions; beyond each partition's share, retired buffers go back to
  // the host allocator.
  static constexpr usize kMaxPooledBufs = 1024;

  // Worker-local buffer-pool partition (DESIGN.md §16): one per engine
  // execution slot, keyed by sim::Engine::HostWorkerHint(), so a thread's
  // consecutive chunks on the same slot recycle the same warm buffers
  // without contending on a global pool lock. Buffer identity never feeds
  // simulated metrics, so partitioning is invisible to the simulation.
  struct PoolPart {
    std::mutex mu;
    std::vector<std::unique_ptr<PageBuf>> bufs;
  };

  // Splices a revision into the page chain at the gate-ordered protocol
  // point. `data` may be null: a placeholder whose bytes the off-floor work
  // phase publishes later (PublishRev).
  void InstallRev(u32 page, u64 version, PageRef data);
  // Fills a placeholder revision's bytes and wakes host-blocked readers.
  // Needs no floor — only the publish epoch and an exclusive chain lock.
  void PublishRev(u32 page, u64 version, PageRef data);
  // Host-blocks until a publish lands (re-check the chain afterwards). `seen`
  // is the publish epoch read while the unpublished revision was observed.
  void WaitPublishEpoch(u64 seen) const;
  // Floor-held: host-blocks until a previous caller's deferred GC erase has
  // drained, so the decision scan never observes a half-erased chain.
  void WaitGcQuiesced();

  sim::Engine& eng_;
  SegmentConfig cfg_;
  u32 page_count_;
  u64 next_reserved_version_ = 0;   // grows in phase one
  u64 installed_upto_ = 0;          // all versions <= this are fully installed
  std::set<u64> installed_ahead_;   // out-of-order completions > installed_upto_
  u32 gc_cursor_ = 0;
  u32 populated_pages_ = 0;
  // stats_ and pool_parts_ are declared before chains_/zero_page_ so they
  // outlive the committed revisions, whose deleters recycle buffers into the
  // pool. pool_parts_ is sized once at construction (PoolPart is immovable).
  SegmentStats stats_;
  std::vector<PoolPart> pool_parts_;  // retired page buffers, per slot
  usize pool_part_cap_ = kMaxPooledBufs;  // per-partition share of the cap
  std::vector<u64> page_reserved_tail_;  // per page: last reserved version
  std::vector<std::vector<PageRev>> chains_;
  std::vector<VersionInfo> by_version_;  // index: version number (0 = baseline)
  std::vector<Workspace*> workspaces_;
  PageRef zero_page_;
  CommitObserver observer_;
  TraceHooks trace_hooks_;
  RaceSink* race_ = nullptr;
  sim::WaitChannel install_order_{{}, "segment.install"};  // FinishCommit version-ordering
  // Chain-vector storage lock: shared for snapshot reads (concurrent local
  // execution), exclusive for the gate-serialized install/GC mutations.
  mutable std::shared_mutex chains_mu_;
  // Buffer pool + page-byte accounting (reached from un-gated local code via
  // CoW faults and the CountedDeleter path).
  std::mutex pool_mu_;
  // Per-revision publish protocol (off-floor commit pipeline): a reader that
  // finds a placeholder revision (data == null) under chains_mu_ records the
  // epoch, re-checks, and waits for the epoch to move. Publishers bump the
  // epoch under pub_mu_ after filling the bytes, so a missed notify is
  // impossible. The members are mutable: Fetch/FetchRev are const.
  mutable std::mutex pub_mu_;
  mutable std::condition_variable pub_cv_;
  mutable std::atomic<u64> pub_epoch_{0};
  // Deferred GC reclaim drain (one eraser at a time; see Gc).
  std::mutex gc_mu_;
  std::condition_variable gc_cv_;
  bool gc_inflight_ = false;
};

}  // namespace csq::conv
