#include "src/conv/workspace.h"

#include <algorithm>
#include <bit>

#include "src/conv/race_sink.h"

namespace csq::conv {

using sim::TimeCat;

Workspace::Workspace(Segment& seg, u32 tid)
    : seg_(seg),
      eng_(seg.Eng()),
      tid_(tid),
      page_shift_(static_cast<u32>(std::countr_zero(seg.PageSize()))),
      page_mask_(seg.PageSize() - 1),
      size_bytes_(seg.SizeBytes()),
      snapshot_(seg.CommittedVersion()) {
  seg_.RegisterWorkspace(this);
}

Workspace::~Workspace() {
  Discard();
  seg_.UnregisterWorkspace(this);
}

Workspace::LocalPage& Workspace::TouchPage(u32 page) {
  TlbEntry& e = tlb_[page & (kTlbSize - 1)];
  if (e.lp != nullptr && e.page == page) {
    ++stats_.tlb_hits;
    return *e.lp;
  }
  ++stats_.tlb_misses;
  auto it = pages_.find(page);
  if (it == pages_.end()) {
    LocalPage lp;
    const PageRev rev = seg_.FetchRev(page, snapshot_);
    if (rev.data) {
      lp.twin = rev.data;
      lp.base_version = rev.version;
    } else {
      lp.twin = seg_.ZeroPage();
      lp.base_version = 0;
    }
    eng_.Charge(eng_.Costs().page_fetch, TimeCat::kFault);
    ++stats_.pages_fetched;
    if (track_reads_) {
      lp.read_words.Reset(seg_.PageSize());
    }
    it = pages_.emplace(page, std::move(lp)).first;
    cached_sorted_.insert(
        std::lower_bound(cached_sorted_.begin(), cached_sorted_.end(), page), page);
  }
  e.page = page;
  e.lp = &it->second;
  return it->second;
}

Workspace::LocalPage& Workspace::WritableLocal(u32 page) {
  LocalPage& lp = TouchPage(page);
  if (!lp.local) {
    seg_.NotePageAlloc();
    bool pooled = false;
    lp.local = seg_.AcquireCopyOf(*lp.twin, &pooled);
    stats_.pool_reuses += pooled ? 1 : 0;
    lp.dirty_words.Reset(lp.local->size());
    eng_.Charge(eng_.Costs().page_fault, TimeCat::kFault);
    ++stats_.cow_faults;
    dirty_.push_back(page);
  }
  return lp;
}

void Workspace::LoadBytesSlow(u64 addr, void* out, usize n) {
  eng_.Charge(std::max<u64>(1, n / 8) * eng_.Costs().mem_op, TimeCat::kChunk);
  auto* dst = static_cast<u8*>(out);
  while (n > 0) {
    const u32 page = static_cast<u32>(addr >> page_shift_);
    const u32 off = static_cast<u32>(addr) & page_mask_;
    const usize chunk = std::min<usize>(n, static_cast<usize>(page_mask_) + 1 - off);
    LocalPage& lp = TouchPage(page);
    if (track_reads_) {
      lp.read_words.MarkRange(off, chunk);
    }
    const PageBuf& src = lp.local ? *lp.local : *lp.twin;
    std::copy_n(src.data() + off, chunk, dst);
    dst += chunk;
    addr += chunk;
    n -= chunk;
  }
  ++stats_.loads;
}

void Workspace::StoreBytesSlow(u64 addr, const void* in, usize n) {
  eng_.Charge(std::max<u64>(1, n / 8) * eng_.Costs().mem_op, TimeCat::kChunk);
  const auto* src = static_cast<const u8*>(in);
  while (n > 0) {
    const u32 page = static_cast<u32>(addr >> page_shift_);
    const u32 off = static_cast<u32>(addr) & page_mask_;
    const usize chunk = std::min<usize>(n, static_cast<usize>(page_mask_) + 1 - off);
    LocalPage& lp = WritableLocal(page);
    lp.dirty_words.MarkRange(off, chunk);
    std::copy_n(src, chunk, lp.local->data() + off);
    src += chunk;
    addr += chunk;
    n -= chunk;
  }
  ++stats_.stores;
}

void Workspace::ChargeCommitPage(u32 page, u64 prev_version) {
  // Floor-held at the page's protocol point: exactly the one jittered charge
  // the fused reference path drew, plus the deterministic conflict counters.
  const LocalPage& lp = pages_.at(page);
  CSQ_CHECK_MSG(lp.local != nullptr, "committing a non-dirty page");
  if (prev_version == lp.base_version) {
    eng_.Charge(eng_.Costs().commit_per_page, TimeCat::kCommit);
    return;
  }
  eng_.Charge(eng_.Costs().page_diff + eng_.Costs().page_merge + eng_.Costs().commit_per_page,
              TimeCat::kCommit);
  ++stats_.pages_merged;
  seg_.NoteMergePage();
}

std::unique_ptr<PageBuf> Workspace::ResolveCommitPage(u32 page, const PageRef& prev,
                                                      u64 prev_version, u64 version,
                                                      bool defer_events) {
  // Pure byte work — no engine calls; on the off-floor path this runs
  // concurrently with other threads' chunk execution.
  const LocalPage& lp = pages_.at(page);
  CSQ_CHECK_MSG(lp.local != nullptr, "resolving a non-dirty page");
  if (RaceSink* rs = seg_.Race()) {
    // Same-page resolves serialize in version order (FinishCommit waits for
    // the recorded predecessor), so by the time this runs every write set in
    // our conflict window (base_version, prev_version] has been recorded —
    // deterministic even on the off-floor pipeline. No engine charges here.
    rs->OnCommitPageResolved(page, version, tid_, lp.base_version, prev_version, *lp.local,
                             *lp.twin, lp.dirty_words);
  }
  seg_.NotePageAlloc();
  bool pooled = false;
  if (prev_version == lp.base_version) {
    // Fast path: nobody committed this page since our twin; publish our copy.
    auto out = seg_.AcquireCopyOf(*lp.local, &pooled);
    stats_.pool_reuses += pooled ? 1 : 0;
    return out;
  }
  // Conflict: merge our changed words (vs. twin) onto the previous revision.
  auto merged = seg_.AcquireCopyOf(prev ? *prev : *seg_.ZeroPage(), &pooled);
  stats_.pool_reuses += pooled ? 1 : 0;
  const MergeResult mr = MergeIntoWords(*merged, *lp.local, *lp.twin, lp.dirty_words);
  stats_.words_merged += mr.words;
  if (defer_events) {
    commit_merges_.push_back({page, prev_version, mr.bytes});
  } else {
    seg_.NoteMergeBytes(mr.bytes);
    if (seg_.Hooks().on_merge) {
      // FinishCommit resolves only once the page's chain tail equals the
      // recorded predecessor, so prev_version IS the base we merged onto.
      seg_.Hooks().on_merge(tid_, page, version, prev_version, mr.bytes, /*rebase=*/false);
    }
  }
  return merged;
}

void Workspace::FlushCommitEvents(u64 version) {
  // Floor-held fence: emit the buffered merge records in resolve order — the
  // same per-thread event sequence the reference path emits inline.
  for (const PendingMerge& m : commit_merges_) {
    seg_.NoteMergeBytes(m.bytes);
    if (seg_.Hooks().on_merge) {
      seg_.Hooks().on_merge(tid_, m.page, version, m.base_version, m.bytes, /*rebase=*/false);
    }
  }
  commit_merges_.clear();
}

PreparedCommit Workspace::PrepareTwoPhase() {
  eng_.Charge(eng_.Costs().commit_fixed, TimeCat::kCommit);
  if (dirty_.empty()) {
    // Nothing to publish: elide the version entirely (a read-only critical
    // section creates no memory-log churn). version == 0 marks the no-op.
    return PreparedCommit{};
  }
  std::sort(dirty_.begin(), dirty_.end());
  dirty_.erase(std::unique(dirty_.begin(), dirty_.end()), dirty_.end());
  return seg_.PrepareCommit(tid_, dirty_);
}

void Workspace::FinishTwoPhase(const PreparedCommit& pc) {
  if (pc.version == 0) {
    last_commit_pages_.clear();
    return;
  }
  Segment::CommitOps ops;
  const bool defer = seg_.OffFloorActive();
  ops.charge = [this](u32 page, u64 prev_version) { ChargeCommitPage(page, prev_version); };
  ops.resolve = [this, v = pc.version, defer](u32 page, const PageRef& prev, u64 prev_version) {
    return ResolveCommitPage(page, prev, prev_version, v, defer);
  };
  ops.fence = [this, v = pc.version] { FlushCommitEvents(v); };
  seg_.FinishCommit(pc, ops);
  AfterCommitRefresh(pc);
  ++stats_.commits;
  stats_.pages_committed += pc.pages.size();
  last_commit_pages_ = pc.pages;
  dirty_.clear();
}

void Workspace::ReleaseLocal(LocalPage& lp) {
  seg_.NotePageFree();
  seg_.ReleasePageBuf(std::move(lp.local));
  lp.dirty_words.Clear();
}

void Workspace::AfterCommitRefresh(const PreparedCommit& pc) {
  for (u32 page : pc.pages) {
    LocalPage& lp = pages_.at(page);
    if (lp.local) {
      ReleaseLocal(lp);
    }
    const PageRev rev = seg_.FetchRev(page, pc.version);
    CSQ_CHECK(rev.data != nullptr && rev.version == pc.version);
    lp.twin = rev.data;
    lp.base_version = rev.version;
  }
}

u64 Workspace::Commit() {
  const PreparedCommit pc = PrepareTwoPhase();
  FinishTwoPhase(pc);
  return pc.version;
}

u64 Workspace::Update() {
  eng_.GateShared(seg_.FloorDomain());
  return UpdateTo(seg_.ReservedVersion());
}

void Workspace::RefreshPage(u32 page, LocalPage& lp, u64 target) {
  const PageRev rev = seg_.FetchRev(page, target);
  if (rev.version <= lp.base_version) {
    return;
  }
  CSQ_CHECK(rev.data != nullptr);
  if (lp.local) {
    if (RaceSink* rs = seg_.Race()) {
      // Update-time rebase: our uncommitted stores meet the commits in
      // (base_version, rev.version]. Must fire before the merge below swaps
      // the twin — the write spans are defined against the OLD twin.
      rs->OnRebase(page, tid_, lp.base_version, rev.version, *lp.local, *lp.twin, lp.dirty_words);
    }
    // Rebase: remote bytes come in underneath, our pending stores stay on
    // top (TSO store-buffer semantics). Only our dirty words can differ from
    // the twin, so the bitmap merge rewrites exactly the bytes the reference
    // byte loop would.
    seg_.NotePageAlloc();
    bool pooled = false;
    auto rebased = seg_.AcquireCopyOf(*rev.data, &pooled);
    stats_.pool_reuses += pooled ? 1 : 0;
    const MergeResult mr = MergeIntoWords(*rebased, *lp.local, *lp.twin, lp.dirty_words);
    stats_.words_merged += mr.words;
    seg_.NotePageFree();
    seg_.ReleasePageBuf(std::move(lp.local));
    lp.local = std::move(rebased);
    eng_.Charge(eng_.Costs().page_fetch + eng_.Costs().page_diff + eng_.Costs().page_merge,
                TimeCat::kCommit);
    ++stats_.pages_merged;
    if (seg_.Hooks().on_merge) {
      seg_.Hooks().on_merge(tid_, page, target, rev.version, mr.bytes, /*rebase=*/true);
    }
  } else {
    eng_.Charge(eng_.Costs().page_fetch, TimeCat::kCommit);
  }
  lp.twin = rev.data;
  lp.base_version = rev.version;
}

u64 Workspace::UpdateTo(u64 target) {
  seg_.WaitInstalled(target);
  eng_.Charge(eng_.Costs().update_fixed, TimeCat::kCommit);
  const u64 from = snapshot_;
  u64 changed = 0;
  if (target > snapshot_) {
    // Conversion updates the thread's whole mapping: every page with a newer
    // revision than the snapshot is propagated into this thread's view.
    changed = seg_.DistinctPagesChanged(snapshot_, target);
    stats_.pages_propagated += changed;
  }
  if (seg_.Hooks().on_update) {
    seg_.Hooks().on_update(tid_, from, target, changed);
  }
  // Race analyzer read validation runs BEFORE any refresh: RefreshPage
  // overwrites base_version, which would shrink the read-vs-commit windows.
  ValidateReads(target);
  if (discard_on_update_) {
    // mprotect-style fence: drop the whole cached working set (refetch lazily).
    CSQ_CHECK_MSG(dirty_.empty(), "DThreads update with uncommitted dirty pages");
    Discard();
    snapshot_ = target;
    ++stats_.updates;
    return target;
  }
  if (target > snapshot_ && !pages_.empty()) {
    // A cached page needs a refresh iff it changed in (snapshot, target]
    // (TouchPage and previous updates keep base_version current as of the
    // snapshot). Enumerate whichever is smaller: the changed pages (via the
    // changed-page index) or the cached set. Both paths visit the refreshed
    // pages in ascending page order, so the Charge() sequence — and with it
    // every jittered virtual-time draw — is identical to the reference scan.
    if (seg_.RevisionsInRange(snapshot_, target) < pages_.size()) {
      update_scratch_.clear();
      for (u64 v = snapshot_ + 1; v <= target; ++v) {
        for (u32 page : seg_.PagesOfVersion(v)) {
          if (pages_.find(page) != pages_.end()) {
            update_scratch_.push_back(page);
          }
        }
      }
      std::sort(update_scratch_.begin(), update_scratch_.end());
      update_scratch_.erase(std::unique(update_scratch_.begin(), update_scratch_.end()),
                            update_scratch_.end());
      for (u32 page : update_scratch_) {
        RefreshPage(page, pages_.at(page), target);
      }
    } else {
      for (u32 page : cached_sorted_) {
        RefreshPage(page, pages_.at(page), target);
      }
    }
  }
  snapshot_ = target;
  ++stats_.updates;
  return target;
}

void Workspace::SetTrackReads(bool v) {
  track_reads_ = v;
  if (v) {
    for (auto& [page, lp] : pages_) {
      (void)page;
      lp.read_words.Reset(seg_.PageSize());
    }
  }
}

void Workspace::ValidateReads(u64 target) {
  RaceSink* rs = seg_.Race();
  if (!track_reads_ || rs == nullptr) {
    return;
  }
  for (u32 page : cached_sorted_) {
    LocalPage& lp = pages_.at(page);
    if (lp.read_words.Empty()) {
      continue;
    }
    // FetchRev doubles as a publish barrier: it blocks until every revision
    // of `page` up to `target` has published, so the analyzer has recorded
    // all write sets in the window before we check reads against them.
    const PageRev rev = seg_.FetchRev(page, target);
    if (rev.version > lp.base_version) {
      rs->OnReadsValidated(page, tid_, lp.base_version, target, lp.read_words,
                           static_cast<u32>(seg_.PageSize()));
    }
    lp.read_words.Clear();
  }
}

u64 Workspace::CommitAndUpdate() {
  Commit();
  return Update();
}

void Workspace::Discard() {
  for (auto& [page, lp] : pages_) {
    if (lp.local) {
      ReleaseLocal(lp);
    }
  }
  pages_.clear();
  dirty_.clear();
  cached_sorted_.clear();
  last_commit_pages_.clear();
  tlb_.fill(TlbEntry{});
}

}  // namespace csq::conv
