#include "src/conv/workspace.h"

#include <algorithm>

namespace csq::conv {

using sim::TimeCat;

Workspace::Workspace(Segment& seg, u32 tid)
    : seg_(seg), eng_(seg.Eng()), tid_(tid), snapshot_(seg.CommittedVersion()) {
  seg_.RegisterWorkspace(this);
}

Workspace::~Workspace() {
  Discard();
  seg_.UnregisterWorkspace(this);
}

Workspace::LocalPage& Workspace::TouchPage(u32 page) {
  auto it = pages_.find(page);
  if (it != pages_.end()) {
    return it->second;
  }
  LocalPage lp;
  const PageRev rev = seg_.FetchRev(page, snapshot_);
  if (rev.data) {
    lp.twin = rev.data;
    lp.base_version = rev.version;
  } else {
    lp.twin = seg_.ZeroPage();
    lp.base_version = 0;
  }
  eng_.Charge(eng_.Costs().page_fetch, TimeCat::kFault);
  ++stats_.pages_fetched;
  return pages_.emplace(page, std::move(lp)).first->second;
}

PageBuf& Workspace::WritablePage(u32 page) {
  LocalPage& lp = TouchPage(page);
  if (!lp.local) {
    seg_.NotePageAlloc();
    lp.local = CopyPage(*lp.twin);
    eng_.Charge(eng_.Costs().page_fault, TimeCat::kFault);
    ++stats_.cow_faults;
    dirty_.push_back(page);
  }
  return *lp.local;
}

void Workspace::LoadBytes(u64 addr, void* out, usize n) {
  CSQ_CHECK_MSG(addr + n <= seg_.SizeBytes(), "load out of segment bounds");
  const u32 ps = seg_.PageSize();
  eng_.Charge(std::max<u64>(1, n / 8) * eng_.Costs().mem_op, TimeCat::kChunk);
  auto* dst = static_cast<u8*>(out);
  while (n > 0) {
    const u32 page = static_cast<u32>(addr / ps);
    const u32 off = static_cast<u32>(addr % ps);
    const usize chunk = std::min<usize>(n, ps - off);
    const LocalPage& lp = TouchPage(page);
    const PageBuf& src = lp.local ? *lp.local : *lp.twin;
    std::copy_n(src.data() + off, chunk, dst);
    dst += chunk;
    addr += chunk;
    n -= chunk;
  }
  ++stats_.loads;
}

void Workspace::StoreBytes(u64 addr, const void* in, usize n) {
  CSQ_CHECK_MSG(addr + n <= seg_.SizeBytes(), "store out of segment bounds");
  const u32 ps = seg_.PageSize();
  eng_.Charge(std::max<u64>(1, n / 8) * eng_.Costs().mem_op, TimeCat::kChunk);
  const auto* src = static_cast<const u8*>(in);
  while (n > 0) {
    const u32 page = static_cast<u32>(addr / ps);
    const u32 off = static_cast<u32>(addr % ps);
    const usize chunk = std::min<usize>(n, ps - off);
    PageBuf& dst = WritablePage(page);
    std::copy_n(src, chunk, dst.data() + off);
    src += chunk;
    addr += chunk;
    n -= chunk;
  }
  ++stats_.stores;
}

std::unique_ptr<PageBuf> Workspace::ResolvePage(u32 page, const PageRef& prev) {
  const LocalPage& lp = pages_.at(page);
  CSQ_CHECK_MSG(lp.local != nullptr, "resolving a non-dirty page");
  seg_.NotePageAlloc();
  if ((prev == nullptr && lp.base_version == 0) ||
      (prev != nullptr && prev.get() == lp.twin.get())) {
    // Fast path: nobody committed this page since our twin; publish our copy.
    eng_.Charge(eng_.Costs().commit_per_page, TimeCat::kCommit);
    return CopyPage(*lp.local);
  }
  // Conflict: byte-merge our changes (vs. twin) onto the previous revision.
  auto merged = CopyPage(prev ? *prev : *seg_.ZeroPage());
  const usize bytes = MergeInto(*merged, *lp.local, *lp.twin);
  eng_.Charge(eng_.Costs().page_diff + eng_.Costs().page_merge + eng_.Costs().commit_per_page,
              TimeCat::kCommit);
  ++stats_.pages_merged;
  seg_.NoteMerge(bytes);
  return merged;
}

PreparedCommit Workspace::PrepareTwoPhase() {
  eng_.Charge(eng_.Costs().commit_fixed, TimeCat::kCommit);
  if (dirty_.empty()) {
    // Nothing to publish: elide the version entirely (a read-only critical
    // section creates no memory-log churn). version == 0 marks the no-op.
    return PreparedCommit{};
  }
  std::sort(dirty_.begin(), dirty_.end());
  dirty_.erase(std::unique(dirty_.begin(), dirty_.end()), dirty_.end());
  return seg_.PrepareCommit(tid_, dirty_);
}

void Workspace::FinishTwoPhase(const PreparedCommit& pc) {
  if (pc.version == 0) {
    last_commit_pages_.clear();
    return;
  }
  seg_.FinishCommit(pc, [this](u32 page, const PageRef& prev) { return ResolvePage(page, prev); });
  AfterCommitRefresh(pc);
  ++stats_.commits;
  stats_.pages_committed += pc.pages.size();
  last_commit_pages_ = pc.pages;
  dirty_.clear();
}

void Workspace::AfterCommitRefresh(const PreparedCommit& pc) {
  for (u32 page : pc.pages) {
    LocalPage& lp = pages_.at(page);
    if (lp.local) {
      seg_.NotePageFree();
      lp.local.reset();
    }
    const PageRev rev = seg_.FetchRev(page, pc.version);
    CSQ_CHECK(rev.data != nullptr && rev.version == pc.version);
    lp.twin = rev.data;
    lp.base_version = rev.version;
  }
}

u64 Workspace::Commit() {
  const PreparedCommit pc = PrepareTwoPhase();
  FinishTwoPhase(pc);
  return pc.version;
}

u64 Workspace::Update() {
  eng_.GateShared();
  return UpdateTo(seg_.ReservedVersion());
}

u64 Workspace::UpdateTo(u64 target) {
  seg_.WaitInstalled(target);
  eng_.Charge(eng_.Costs().update_fixed, TimeCat::kCommit);
  if (target > snapshot_) {
    // Conversion updates the thread's whole mapping: every page with a newer
    // revision than the snapshot is propagated into this thread's view.
    stats_.pages_propagated += seg_.DistinctPagesChanged(snapshot_, target);
  }
  if (discard_on_update_) {
    // mprotect-style fence: drop the whole cached working set (refetch lazily).
    CSQ_CHECK_MSG(dirty_.empty(), "DThreads update with uncommitted dirty pages");
    Discard();
    snapshot_ = target;
    ++stats_.updates;
    return target;
  }
  for (u32 page : SortedCachedPages()) {
    LocalPage& lp = pages_.at(page);
    const PageRev rev = seg_.FetchRev(page, target);
    if (rev.version <= lp.base_version) {
      continue;
    }
    CSQ_CHECK(rev.data != nullptr);
    if (lp.local) {
      // Rebase: remote bytes come in underneath, our pending stores stay on
      // top (TSO store-buffer semantics).
      seg_.NotePageAlloc();
      auto rebased = CopyPage(*rev.data);
      MergeInto(*rebased, *lp.local, *lp.twin);
      seg_.NotePageFree();
      lp.local = std::move(rebased);
      eng_.Charge(eng_.Costs().page_fetch + eng_.Costs().page_diff + eng_.Costs().page_merge,
                  TimeCat::kCommit);
      ++stats_.pages_merged;
    } else {
      eng_.Charge(eng_.Costs().page_fetch, TimeCat::kCommit);
    }
    lp.twin = rev.data;
    lp.base_version = rev.version;
  }
  snapshot_ = target;
  ++stats_.updates;
  return target;
}

u64 Workspace::CommitAndUpdate() {
  Commit();
  return Update();
}

void Workspace::Discard() {
  for (auto& [page, lp] : pages_) {
    if (lp.local) {
      seg_.NotePageFree();
    }
  }
  pages_.clear();
  dirty_.clear();
}

std::vector<u32> Workspace::SortedCachedPages() const {
  std::vector<u32> keys;
  keys.reserve(pages_.size());
  for (const auto& [page, lp] : pages_) {
    keys.push_back(page);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace csq::conv
