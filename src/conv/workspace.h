// A thread's isolated view of a Conversion segment (§2.5).
//
// A workspace holds a snapshot version plus a cache of local pages. Reads hit
// the local cache (fetching the committed revision at the snapshot on first
// touch); the first write to a page takes a copy-on-write "fault" that clones
// the page. Commit publishes the dirty pages as one new version (byte-merging
// against any concurrently committed revisions, last-writer-wins); update
// advances the snapshot to the latest committed version, rebasing dirty pages
// so the thread's own pending stores stay visible (TSO store-buffer
// semantics).
//
// Cost charging: every access charges mem_op; first-touch fetches, CoW faults,
// diffs, merges and commit/update work charge their cost-model entries, so the
// virtual-time figures reflect Conversion overheads the way the paper's
// Figure 15 breakdown does.
#pragma once

#include <unordered_map>
#include <vector>

#include "src/conv/page.h"
#include "src/conv/segment.h"
#include "src/util/types.h"

namespace csq::conv {

struct WorkspaceStats {
  u64 loads = 0;
  u64 stores = 0;
  u64 cow_faults = 0;
  u64 pages_fetched = 0;     // first-touch fetches at the snapshot
  u64 pages_propagated = 0;  // pages refreshed/rebased by Update (TSO propagation, Fig 16)
  u64 commits = 0;
  u64 updates = 0;
  u64 pages_committed = 0;
  u64 pages_merged = 0;      // conflicts this workspace had to byte-merge
};

class Workspace {
 public:
  Workspace(Segment& seg, u32 tid);
  ~Workspace();

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  u32 Tid() const { return tid_; }
  u64 SnapshotVersion() const { return snapshot_; }

  // A workspace whose thread is blocked and guaranteed to Update() before its
  // next shared-memory access does not pin the GC watermark: its cached twins
  // are kept alive by their own references, and trimmed chain prefixes can
  // only be observed through fetches at the (soon-refreshed) snapshot.
  bool GcExempt() const { return gc_exempt_; }
  void SetGcExempt(bool v) { gc_exempt_ = v; }
  usize DirtyPageCount() const { return dirty_.size(); }
  usize CachedPageCount() const { return pages_.size(); }
  const WorkspaceStats& Stats() const { return stats_; }

  // Pages published by the most recent commit (for happens-before observers).
  const std::vector<u32>& LastCommitPages() const { return last_commit_pages_; }

  // ---- Typed access --------------------------------------------------------
  template <typename T>
  T Load(u64 addr) {
    static_assert(std::is_trivially_copyable_v<T>);
    T out;
    LoadBytes(addr, &out, sizeof(T));
    return out;
  }

  template <typename T>
  void Store(u64 addr, T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    StoreBytes(addr, &v, sizeof(T));
  }

  void LoadBytes(u64 addr, void* out, usize n);
  void StoreBytes(u64 addr, const void* in, usize n);

  // ---- Consistency operations ---------------------------------------------
  // All three must be called while the caller holds the deterministic token
  // (the runtime layer's responsibility).

  // Publishes dirty pages as one new version. Returns the version (or the
  // current committed version if nothing was dirty).
  u64 Commit();

  // Advances the snapshot to the deterministic latest version (the highest
  // reserved version — deterministic at any token-held point), waiting for any
  // in-flight installs.
  u64 Update();

  // Advances the snapshot to exactly `target` (used after barriers, where the
  // deterministic target is recorded during phase one).
  u64 UpdateTo(u64 target);

  u64 CommitAndUpdate();

  // DThreads mode: its mprotect-based isolation resets page protections on
  // every fence, so an update invalidates the whole cached working set and
  // every page refaults on next touch — the key inefficiency Conversion (DWC)
  // removes. When set, UpdateTo discards all cached pages instead of
  // incrementally refreshing changed ones.
  void SetDiscardOnUpdate(bool v) { discard_on_update_ = v; }

  // Two-phase variant for the deterministic barrier: phase one (serial, token
  // held) reserves the version; phase two (token released) merges + installs.
  PreparedCommit PrepareTwoPhase();
  void FinishTwoPhase(const PreparedCommit& pc);

  // Drops all local pages (thread exit / pool reuse).
  void Discard();

 private:
  struct LocalPage {
    PageRef twin;                    // content this thread based its copy on
    std::unique_ptr<PageBuf> local;  // writable copy; null until first store
    u64 base_version = 0;            // committed version the twin came from
  };

  LocalPage& TouchPage(u32 page);
  PageBuf& WritablePage(u32 page);
  std::unique_ptr<PageBuf> ResolvePage(u32 page, const PageRef& prev);
  void AfterCommitRefresh(const PreparedCommit& pc);
  std::vector<u32> SortedCachedPages() const;

  Segment& seg_;
  sim::Engine& eng_;
  u32 tid_;
  bool discard_on_update_ = false;
  bool gc_exempt_ = false;
  u64 snapshot_ = 0;
  std::unordered_map<u32, LocalPage> pages_;
  std::vector<u32> dirty_;  // unsorted; sorted & deduped at commit
  std::vector<u32> last_commit_pages_;
  WorkspaceStats stats_;
};

}  // namespace csq::conv
