// A thread's isolated view of a Conversion segment (§2.5).
//
// A workspace holds a snapshot version plus a cache of local pages. Reads hit
// the local cache (fetching the committed revision at the snapshot on first
// touch); the first write to a page takes a copy-on-write "fault" that clones
// the page. Commit publishes the dirty pages as one new version (byte-merging
// against any concurrently committed revisions, last-writer-wins); update
// advances the snapshot to the latest committed version, rebasing dirty pages
// so the thread's own pending stores stay visible (TSO store-buffer
// semantics).
//
// Cost charging: every access charges mem_op; first-touch fetches, CoW faults,
// diffs, merges and commit/update work charge their cost-model entries, so the
// virtual-time figures reflect Conversion overheads the way the paper's
// Figure 15 breakdown does.
//
// Fast-path substrate (host-time only; see DESIGN.md "Fast-path memory
// substrate"): a direct-mapped page-translation cache (TLB) resolves repeat
// page touches without hashing; stores mark per-page dirty-word bitmaps so
// merges diff only touched 8-byte words; page buffers come from the segment's
// pool; updates enumerate only the pages that actually changed via the
// segment's changed-page index. None of these change any Charge() call — the
// virtual-time metrics and committed bytes are bit-identical to the reference
// paths.
#pragma once

#include <array>
#include <unordered_map>
#include <vector>

#include "src/conv/page.h"
#include "src/conv/segment.h"
#include "src/util/types.h"

namespace csq::conv {

struct WorkspaceStats {
  u64 loads = 0;
  u64 stores = 0;
  u64 cow_faults = 0;
  u64 pages_fetched = 0;     // first-touch fetches at the snapshot
  u64 pages_propagated = 0;  // pages refreshed/rebased by Update (TSO propagation, Fig 16)
  u64 commits = 0;
  u64 updates = 0;
  u64 pages_committed = 0;
  u64 pages_merged = 0;      // conflicts this workspace had to byte-merge
  // Fast-path observability (host-time optimizations; no virtual-time effect).
  u64 tlb_hits = 0;          // page touches resolved by the translation cache
  u64 tlb_misses = 0;        // page touches that fell back to the hash map
  u64 words_merged = 0;      // 8-byte words applied by the bitmap merge paths
  u64 pool_reuses = 0;       // page buffers served from the segment pool
};

class Workspace {
 public:
  // Construction/destruction (un)registers the workspace with the segment's
  // snapshot registry, which floor-held GC scans read for the reclamation
  // watermark. Construct and destroy workspaces outside the simulation, or at
  // floor-held points (the runtime layer registers inside the gated spawn
  // path) — never on a sim thread that has released the floor.
  Workspace(Segment& seg, u32 tid);
  ~Workspace();

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  u32 Tid() const { return tid_; }
  u64 SnapshotVersion() const { return snapshot_; }

  // A workspace whose thread is blocked and guaranteed to Update() before its
  // next shared-memory access does not pin the GC watermark: its cached twins
  // are kept alive by their own references, and trimmed chain prefixes can
  // only be observed through fetches at the (soon-refreshed) snapshot.
  bool GcExempt() const { return gc_exempt_; }
  void SetGcExempt(bool v) { gc_exempt_ = v; }
  usize DirtyPageCount() const { return dirty_.size(); }
  usize CachedPageCount() const { return pages_.size(); }
  const WorkspaceStats& Stats() const { return stats_; }

  // Pages published by the most recent commit (for happens-before observers).
  const std::vector<u32>& LastCommitPages() const { return last_commit_pages_; }

  // ---- Typed access --------------------------------------------------------
  template <typename T>
  T Load(u64 addr) {
    static_assert(std::is_trivially_copyable_v<T>);
    T out;
    LoadBytes(addr, &out, sizeof(T));
    return out;
  }

  template <typename T>
  void Store(u64 addr, T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    StoreBytes(addr, &v, sizeof(T));
  }

  // The single-page TLB-hit cases are inlined here — they are the hottest
  // operations in any workload. The slow paths (cold page, CoW fault, page
  // straddle) carry the full logic; charges are identical either way.
  void LoadBytes(u64 addr, void* out, usize n) {
    CSQ_CHECK_MSG(addr + n <= size_bytes_, "load out of segment bounds");
    const u32 page = static_cast<u32>(addr >> page_shift_);
    const u32 off = static_cast<u32>(addr) & page_mask_;
    const TlbEntry& e = tlb_[page & (kTlbSize - 1)];
    if (e.lp != nullptr && e.page == page && off + n <= static_cast<usize>(page_mask_) + 1) {
      ++stats_.tlb_hits;
      eng_.Charge(std::max<u64>(1, n / 8) * eng_.Costs().mem_op, sim::TimeCat::kChunk);
      const PageBuf& src = e.lp->local ? *e.lp->local : *e.lp->twin;
      std::memcpy(out, src.data() + off, n);
      if (track_reads_) {
        e.lp->read_words.MarkRange(off, n);
      }
      ++stats_.loads;
      return;
    }
    LoadBytesSlow(addr, out, n);
  }

  void StoreBytes(u64 addr, const void* in, usize n) {
    CSQ_CHECK_MSG(addr + n <= size_bytes_, "store out of segment bounds");
    const u32 page = static_cast<u32>(addr >> page_shift_);
    const u32 off = static_cast<u32>(addr) & page_mask_;
    const TlbEntry& e = tlb_[page & (kTlbSize - 1)];
    if (e.lp != nullptr && e.page == page && e.lp->local != nullptr &&
        off + n <= static_cast<usize>(page_mask_) + 1) {
      ++stats_.tlb_hits;
      eng_.Charge(std::max<u64>(1, n / 8) * eng_.Costs().mem_op, sim::TimeCat::kChunk);
      e.lp->dirty_words.MarkRange(off, n);
      std::memcpy(e.lp->local->data() + off, in, n);
      ++stats_.stores;
      return;
    }
    StoreBytesSlow(addr, in, n);
  }

  // ---- Consistency operations ---------------------------------------------
  // All three must be called while the caller holds the deterministic token
  // (the runtime layer's responsibility).

  // Publishes dirty pages as one new version. Returns the version (or the
  // current committed version if nothing was dirty).
  u64 Commit();

  // Advances the snapshot to the deterministic latest version (the highest
  // reserved version — deterministic at any token-held point), waiting for any
  // in-flight installs.
  u64 Update();

  // Advances the snapshot to exactly `target` (used after barriers, where the
  // deterministic target is recorded during phase one).
  u64 UpdateTo(u64 target);

  u64 CommitAndUpdate();

  // DThreads mode: its mprotect-based isolation resets page protections on
  // every fence, so an update invalidates the whole cached working set and
  // every page refaults on next touch — the key inefficiency Conversion (DWC)
  // removes. When set, UpdateTo discards all cached pages instead of
  // incrementally refreshing changed ones.
  void SetDiscardOnUpdate(bool v) { discard_on_update_ = v; }

  // Opt-in read tracking for the race analyzer (RaceConfig::track_reads):
  // loads additionally mark per-page read-word bitmaps, and every UpdateTo
  // validates the recorded reads against the commit window being propagated
  // in (RaceSink::OnReadsValidated) before the bitmaps are cleared. Off (the
  // default) the load paths carry only the `track_reads_` branch.
  void SetTrackReads(bool v);

  // Reports read/write races between this workspace's recorded reads and the
  // commits in (base_version, target] of each read page, then clears the read
  // bitmaps. Called by UpdateTo; also called directly by the runtime's exit
  // protocol (floor-held) so reads after a thread's last sync op are checked.
  void ValidateReads(u64 target);

  // Two-phase variant for the deterministic barrier: phase one (serial, token
  // held) reserves the version; phase two (token released) merges + installs.
  PreparedCommit PrepareTwoPhase();
  void FinishTwoPhase(const PreparedCommit& pc);

  // Drops all local pages (thread exit / pool reuse).
  void Discard();

 private:
  struct LocalPage {
    PageRef twin;                    // content this thread based its copy on
    std::unique_ptr<PageBuf> local;  // writable copy; null until first store
    u64 base_version = 0;            // committed version the twin came from
    // Words our stores touched since `local` was based on `twin`. Invariant:
    // every byte where *local differs from *twin lies in a marked word (the
    // bitmap survives rebases: a rebase only rewrites bytes inside marked
    // words, onto a new twin).
    DirtyWords dirty_words;
    // Words our loads touched since the last ValidateReads (race analyzer's
    // read tracking; sized only when track_reads_ is on).
    DirtyWords read_words;
  };

  // Direct-mapped page-translation cache in front of pages_: the common
  // sequential access pattern resolves a repeat page touch with one compare
  // instead of a hash-map lookup. Entries point at pages_ values
  // (std::unordered_map node storage — stable across inserts); Discard()
  // resets the cache when the map is cleared.
  static constexpr u32 kTlbSize = 64;  // power of two
  struct TlbEntry {
    u32 page = 0;
    LocalPage* lp = nullptr;  // nullptr = invalid entry
  };

  // A commit-time merge whose observer/accounting emission is deferred to the
  // commit's floor-held completion fence (off-floor pipeline): the byte count
  // only exists after the off-floor MergeIntoWords, but trace streams must
  // stay floor-ordered.
  struct PendingMerge {
    u32 page = 0;
    u64 base_version = 0;
    u64 bytes = 0;
  };

  void LoadBytesSlow(u64 addr, void* out, usize n);
  void StoreBytesSlow(u64 addr, const void* in, usize n);
  LocalPage& TouchPage(u32 page);
  LocalPage& WritableLocal(u32 page);
  // Commit phase-two callbacks (Segment::CommitOps): the floor-held
  // deterministic charges, the pure byte work, and the fence flush. A page
  // conflicts iff phase one recorded a predecessor newer than our twin
  // (prev_version != base_version — equivalent to the old pointer test, since
  // a page's chain tail is never collected).
  void ChargeCommitPage(u32 page, u64 prev_version);
  std::unique_ptr<PageBuf> ResolveCommitPage(u32 page, const PageRef& prev, u64 prev_version,
                                             u64 version, bool defer_events);
  void FlushCommitEvents(u64 version);
  void AfterCommitRefresh(const PreparedCommit& pc);
  void ReleaseLocal(LocalPage& lp);
  void RefreshPage(u32 page, LocalPage& lp, u64 target);

  Segment& seg_;
  sim::Engine& eng_;
  u32 tid_;
  u32 page_shift_;  // log2(page size): hot paths use shift/mask, not division
  u32 page_mask_;   // page size - 1
  u64 size_bytes_;  // segment size (cached: bounds check without pointer chase)
  bool discard_on_update_ = false;
  bool gc_exempt_ = false;
  bool track_reads_ = false;
  u64 snapshot_ = 0;
  std::unordered_map<u32, LocalPage> pages_;
  std::array<TlbEntry, kTlbSize> tlb_{};
  std::vector<u32> dirty_;          // unsorted; sorted & deduped at commit
  std::vector<u32> cached_sorted_;  // cached page ids, ascending (incremental)
  std::vector<u32> update_scratch_; // reusable buffer for UpdateTo
  std::vector<u32> last_commit_pages_;
  std::vector<PendingMerge> commit_merges_;  // deferred fence emissions
  WorkspaceStats stats_;
};

}  // namespace csq::conv
