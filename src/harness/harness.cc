#include "src/harness/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <ostream>

#include "src/race/report.h"
#include "src/util/check.h"

namespace csq::harness {

bool QuickMode() {
  const char* quick = std::getenv("CSQ_QUICK");
  return quick != nullptr && quick[0] == '1';
}

std::vector<u32> ThreadCounts() {
  if (QuickMode()) {
    return {2, 4, 8};
  }
  return {2, 4, 8, 16, 32};
}

rt::RuntimeConfig DefaultConfig(u32 nthreads) {
  rt::RuntimeConfig cfg;
  cfg.nthreads = nthreads;
  cfg.segment.size_bytes = 16 << 20;
  // CSQ_HOST_WORKERS=N runs every bench on the N-worker host-parallel engine
  // (results are bit-identical to serial; only wall-clock changes). Benches
  // that pin host_workers explicitly — fig10's timed serial-vs-parallel
  // comparison — override this after calling DefaultConfig.
  const char* hw = std::getenv("CSQ_HOST_WORKERS");
  if (hw != nullptr && hw[0] != '\0') {
    cfg.host_workers = static_cast<u32>(std::max(1, std::atoi(hw)));
  }
  // CSQ_RACE_FIRST_EXIT=1 arms the DRD-style CI mode (DESIGN.md §18): the
  // analyzer runs with read tracking, and the first unsuppressed racy
  // conflict prints its canonical record and exits race::kFirstExitCode.
  const char* fe = std::getenv("CSQ_RACE_FIRST_EXIT");
  if (fe != nullptr && fe[0] == '1') {
    cfg.race.enabled = true;
    cfg.race.track_reads = true;
    cfg.race.first_exit = true;
  }
  // CSQ_RACE_SUPPRESSIONS=<path> loads a suppression file for any run with
  // the analyzer enabled.
  const char* sup = std::getenv("CSQ_RACE_SUPPRESSIONS");
  if (sup != nullptr && sup[0] != '\0') {
    cfg.race.suppressions_path = sup;
  }
  return cfg;
}

rt::RunResult RunOne(const wl::WorkloadInfo& w, rt::Backend b, u32 nthreads,
                     const rt::RuntimeConfig* base) {
  rt::RuntimeConfig cfg = base != nullptr ? *base : DefaultConfig(nthreads);
  cfg.nthreads = nthreads;
  wl::WlParams p;
  p.workers = nthreads;
  return rt::MakeRuntime(b, cfg)->Run(wl::Bind(w, p));
}

BestResult BestOverThreads(const wl::WorkloadInfo& w, rt::Backend b,
                           const std::vector<u32>& threads, const rt::RuntimeConfig* base) {
  BestResult best;
  for (u32 t : threads) {
    const rt::RunResult r = RunOne(w, b, t, base);
    if (r.vtime < best.vtime) {
      best.vtime = r.vtime;
      best.at_threads = t;
      best.result = r;
    }
  }
  CSQ_CHECK(best.at_threads != 0);
  return best;
}

double Slowdown(u64 v, u64 base_v) {
  CSQ_CHECK(base_v > 0);
  return static_cast<double>(v) / static_cast<double>(base_v);
}

const std::vector<rt::Backend>& FigureBackends() {
  static const std::vector<rt::Backend> kBackends = {
      rt::Backend::kPthreads, rt::Backend::kDThreads, rt::Backend::kDwc,
      rt::Backend::kConsequenceRR, rt::Backend::kConsequenceIC,
  };
  return kBackends;
}

double GeoMean(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double acc = 0.0;
  for (double x : xs) {
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

void PrintRaceReport(std::ostream& os, const rt::RunResult& r) {
  if (r.races.empty() && r.race_ww == 0 && r.race_rw == 0 && r.race_suppressed == 0) {
    os << "races: none detected (or analyzer disabled)\n";
    return;
  }
  race::RenderTable(os, r.races);
  os << "races: " << r.races.size() << " distinct (" << r.race_racy << " racy + "
     << r.race_ordered << " lock-ordered; " << r.race_ww << " WW + " << r.race_rw
     << " RW dynamic occurrences";
  if (r.race_suppressed > 0) {
    os << ", " << r.race_suppressed << " records suppressed";
  }
  if (r.race_dropped > 0) {
    os << ", " << r.race_dropped << " records dropped — report is partial";
  }
  os << ")\n";
  const std::vector<race::SiteHeat> heat = race::BuildHeatmap(r.races);
  if (!heat.empty()) {
    os << "site heatmap:\n";
    race::RenderHeatmap(os, heat);
  }
}

void PrintFloorStats(std::ostream& os, const rt::RunResult& r) {
  const sim::EngineFloorStats& f = r.floor;
  if (f.floor_grants == 0 && f.lease_hits == 0 && f.gate_reevals == 0) {
    os << "floor: serial engine (no handoff machinery engaged)\n";
    return;
  }
  os << "floor: " << f.floor_grants << " grants, " << f.lease_hits << " lease hits, "
     << f.lazy_retains << " lazy retains, " << f.lease_revocations << " revocations, "
     << f.wakeup_free_handoffs << " wakeup-free + " << f.condvar_handoffs
     << " condvar handoffs, " << f.gate_reevals << " re-evals\n";
  for (const sim::EngineDomainFloorStat& d : r.domain_floors) {
    os << "  domain '" << d.label << "': " << d.grants << " grants, " << d.lease_hits
       << " lease hits, floor held " << (static_cast<double>(d.floor_held_ns) / 1e6)
       << " ms\n";
  }
  const sim::EngineSchedStats& s = r.sched;
  if (s.slot_acquires > 0) {
    os << "sched: " << s.host_slots << " slots, " << s.slot_acquires << " acquires: "
       << s.affinity_hits << " affinity hits ("
       << (100.0 * static_cast<double>(s.affinity_hits) /
           static_cast<double>(s.slot_acquires))
       << "%), " << s.hint_grants << " hint grants, " << s.steals << " steals, "
       << s.cold_starts << " cold starts\n";
  }
  if (!r.simd_level.empty()) {
    os << "simd: " << r.simd_level
       << " commit kernels (host fact; merged bytes identical at every level)\n";
  }
}

}  // namespace csq::harness
