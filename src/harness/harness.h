// Experiment harness shared by the bench/ figure reproductions.
//
// Conventions mirror the paper's §5 methodology:
//   * every (workload, backend) pair is run over a set of thread counts and
//     the best (lowest virtual-time) result is kept — Fig 10's
//     "best library runtime / best pthreads runtime";
//   * runtimes are reported normalized to pthreads;
//   * the thread-count sweep is {2,4,8,16,32} by default and can be shrunk
//     with the CSQ_QUICK=1 environment variable for smoke runs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/rt/api.h"
#include "src/util/table.h"
#include "src/wl/workloads.h"

namespace csq::harness {

// True when CSQ_QUICK=1 asks for a smoke-sized run (shared by every bench
// that scales its sweep down for CI).
bool QuickMode();

// Thread counts to sweep (honours CSQ_QUICK).
std::vector<u32> ThreadCounts();

// Default runtime config for experiments (larger segment than unit tests).
rt::RuntimeConfig DefaultConfig(u32 nthreads);

// One workload run on one backend at one thread count.
rt::RunResult RunOne(const wl::WorkloadInfo& w, rt::Backend b, u32 nthreads,
                     const rt::RuntimeConfig* base = nullptr);

// Best-over-thread-counts virtual runtime (Fig 10 methodology).
struct BestResult {
  u64 vtime = ~0ULL;
  u32 at_threads = 0;
  rt::RunResult result;
};
BestResult BestOverThreads(const wl::WorkloadInfo& w, rt::Backend b,
                           const std::vector<u32>& threads,
                           const rt::RuntimeConfig* base = nullptr);

// Normalization helper: slowdown of `v` relative to baseline `base_v`.
double Slowdown(u64 v, u64 base_v);

// The backends in the paper's figure legends.
const std::vector<rt::Backend>& FigureBackends();  // pthreads..cons-ic

// Geometric mean of a vector of ratios.
double GeoMean(const std::vector<double>& xs);

// Renders a run's race-analyzer output (src/race) as a table plus dynamic
// totals. Prints a one-line "analyzer disabled / no races" note when empty.
void PrintRaceReport(std::ostream& os, const rt::RunResult& r);

// Renders a run's floor-handoff statistics (DESIGN.md §14): grant/lease/
// handoff counters plus per-domain floor occupancy (including per-domain
// lease hits) and the §16 slot-locality line (affinity hits / hint grants /
// steals). Prints a one-line note for serial-engine runs (all counters zero
// there).
void PrintFloorStats(std::ostream& os, const rt::RunResult& r);

}  // namespace csq::harness
