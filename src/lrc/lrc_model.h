// Lazy-release-consistency what-if model (§5.3, Figure 16).
//
// The paper asks: how much less memory would an LRC-based deterministic system
// (like RFDet [19]) propagate between threads than Consequence's TSO? To answer
// it without building RFDet, Consequence was instrumented with vector clocks on
// threads, synchronization objects and committed pages; at each acquire
// operation, the pages that would have to travel along happens-before edges
// were counted. This class is that instrumentation.
//
// The vector-clock type itself (race::VClock) is shared with the race
// analyzer's happens-before classifier (src/race/hb.h), which grew out of this
// model's representation.
//
// Implementation: the vector-clock component for thread T counts T's commits.
//   * OnCommit(T, pages):   T's clock ticks; the commit (and its page set) is
//                           appended to T's commit log.
//   * OnRelease(T, O):      O.vc = join(O.vc, T.vc).
//   * OnAcquire(T, O):      T.vc' = join(T.vc, O.vc); every commit that just
//                           became happens-before-visible contributes its pages
//                           (deduplicated within the acquire — LRC ships one
//                           copy of a page per acquire, like TreadMarks).
//
// The resulting total is compared against the TSO system's actual page
// propagation count (RunResult::pages_propagated).
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/race/vclock.h"
#include "src/rt/api.h"
#include "src/util/types.h"

namespace csq::lrc {

class LrcModel : public rt::SyncObserver {
 public:
  LrcModel() = default;

  void OnCommit(u32 tid, const std::vector<u32>& pages) override {
    Grow(tid);
    commit_log_[tid].push_back(pages);
    threads_[tid].Set(tid, commit_log_[tid].size());
  }

  void OnRelease(u32 tid, u64 object) override {
    Grow(tid);
    objects_[object].Join(threads_[tid]);
  }

  void OnAcquire(u32 tid, u64 object) override {
    Grow(tid);
    auto it = objects_.find(object);
    if (it == objects_.end()) {
      return;  // nothing was ever released through this object
    }
    race::VClock& mine = threads_[tid];
    const bool is_thread_obj =
        (object >> 32) == static_cast<u64>(rt::SyncObjKind::kThread);
    if (is_thread_obj && mine.Empty() && commit_log_[tid].empty()) {
      // A brand-new thread's first acquire is its birth edge: fork copies the
      // parent's mapping wholesale, so nothing travels as page propagation
      // under either consistency model. Inherit visibility without counting.
      mine.Join(it->second);
      ++acquires_;
      return;
    }
    const race::VClock& ovc = it->second;
    // Pages from commits that just became visible, deduplicated per acquire.
    std::unordered_set<u32> fresh;
    for (usize t = 0; t < ovc.Size(); ++t) {
      const u64 upto = ovc.Get(t);
      const u64 from = mine.Get(t);
      if (t == tid || upto <= from) {
        continue;
      }
      const auto& log = commit_log_[static_cast<u32>(t)];
      for (u64 i = from; i < upto && i < log.size(); ++i) {
        fresh.insert(log[i].begin(), log[i].end());
      }
    }
    pages_propagated_ += fresh.size();
    ++acquires_;
    mine.Join(ovc);
  }

  // Total pages an LRC system would have shipped along happens-before edges.
  u64 PagesPropagated() const { return pages_propagated_; }
  u64 Acquires() const { return acquires_; }

 private:
  void Grow(u32 tid) {
    if (threads_.size() <= tid) {
      threads_.resize(tid + 1);
      commit_log_.resize(tid + 1);
    }
  }

  std::vector<race::VClock> threads_;                     // per-thread vector clocks
  std::vector<std::vector<std::vector<u32>>> commit_log_; // per-thread commit page sets
  std::unordered_map<u64, race::VClock> objects_;         // per-sync-object vector clocks
  u64 pages_propagated_ = 0;
  u64 acquires_ = 0;
};

}  // namespace csq::lrc
