#include "src/race/hb.h"

#include <algorithm>

namespace csq::race {

void HbTracker::OnAcquire(u32 tid, u64 object) {
  Grow(tid);
  const auto it = objects_.find(object);
  if (it == objects_.end()) {
    return;  // nothing was ever released through this object
  }
  threads_[tid].Join(it->second);
}

void HbTracker::OnRelease(u32 tid, u64 object, bool deferred) {
  Grow(tid);
  objects_[object].Join(threads_[tid]);
  if (deferred) {
    // The covering commit has not reserved yet; re-join at FlushDeferred so
    // the release clock includes the chunk's own version. Joining the current
    // (pre-commit) clock above is already sound — it only under-approximates.
    std::vector<u64>& d = deferred_[tid];
    if (std::find(d.begin(), d.end(), object) == d.end()) {
      d.push_back(object);
    }
  }
}

void HbTracker::FlushDeferred(u32 tid) {
  if (deferred_.size() <= tid || deferred_[tid].empty()) {
    return;
  }
  for (const u64 object : deferred_[tid]) {
    objects_[object].Join(threads_[tid]);
  }
  deferred_[tid].clear();
}

void HbTracker::OnReserve(u64 version, u32 tid) {
  Grow(tid);
  const u64 index = ++counts_[tid];
  threads_[tid].Set(tid, index);
  labels_[version] = VLabel{tid, index};
  snapshots_[version] = threads_[tid];  // post-tick: the snapshot covers itself
}

bool HbTracker::OrderedBeforeVersion(u64 va, u64 vb) const {
  const auto lit = labels_.find(va);
  const auto sit = snapshots_.find(vb);
  if (lit == labels_.end() || sit == snapshots_.end()) {
    return false;  // unknown versions classify racy, never ordered
  }
  return sit->second.Covers(lit->second.tid, lit->second.index);
}

bool HbTracker::OrderedBeforeCurrent(u64 va, u32 tid_b) const {
  const auto lit = labels_.find(va);
  if (lit == labels_.end() || threads_.size() <= tid_b) {
    return false;
  }
  return threads_[tid_b].Covers(lit->second.tid, lit->second.index);
}

}  // namespace csq::race
