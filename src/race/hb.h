// Happens-before tracker for the race analyzer (DESIGN.md §18).
//
// Consumes the runtime's sync-edge stream — lock acquire/release, condvar
// release/reacquire, barrier commit/release, spawn/join — plus the commit
// reserve stream, and answers the one question the classifier asks: is
// committed version `va` happens-before-ordered before a given access by
// another thread? Token grants are deliberately NOT edges: the global token
// serializes *everything*, so treating grants as synchronization would order
// every conflict and demote every genuine race.
//
// Representation (DRD lineage): one VClock per thread and per sync object.
//   * reserve(v, tid): thread tid's component ticks (its per-thread commit
//     index), version v is labeled (tid, index), and the thread's post-tick
//     clock is snapshotted under v — so "va ordered before vb" is a pure
//     lookup against an immutable snapshot, safe from concurrent resolve
//     threads and independent of host scheduling.
//   * acquire(tid, o): threads[tid] |= objects[o].
//   * release(tid, o): objects[o] |= threads[tid]. A release emitted inside a
//     coarsened chunk precedes the chunk's covering commit; it is recorded as
//     deferred and FlushDeferred(tid) re-joins the post-commit clock once that
//     version exists. Sound because the releasing thread holds the token for
//     the whole chunk: no foreign acquire can observe the object in between.
//
// Determinism: every mutation happens at a floor- or token-ordered point of
// the mutating thread, and a thread's clock is only ever mutated by its own
// events — so each query sees a host-schedule-independent state. Not
// internally locked; the Analyzer calls everything under its own mutex.
#pragma once

#include <unordered_map>
#include <vector>

#include "src/race/vclock.h"
#include "src/util/types.h"

namespace csq::race {

class HbTracker {
 public:
  void OnAcquire(u32 tid, u64 object);
  void OnRelease(u32 tid, u64 object, bool deferred);
  // Re-joins tid's current clock into every object it released deferred
  // (coarsened chunks): called after the chunk's covering commit reserves.
  void FlushDeferred(u32 tid);
  void OnReserve(u64 version, u32 tid);

  // va happens-before vb's reserve point (queried at vb's resolve, possibly
  // off-floor: reads only vb's immutable reserve-time snapshot).
  bool OrderedBeforeVersion(u64 va, u64 vb) const;
  // va happens-before tid_b's current point (queried during one of tid_b's
  // own token/floor-held operations: rebases and read validations).
  bool OrderedBeforeCurrent(u64 va, u32 tid_b) const;

 private:
  struct VLabel {
    u32 tid = 0;
    u64 index = 0;  // 1-based per-thread reserve count
  };

  void Grow(u32 tid) {
    if (threads_.size() <= tid) {
      threads_.resize(tid + 1);
      counts_.resize(tid + 1, 0);
      deferred_.resize(tid + 1);
    }
  }

  std::vector<VClock> threads_;
  std::vector<u64> counts_;
  std::vector<std::vector<u64>> deferred_;  // per-tid objects awaiting re-join
  std::unordered_map<u64, VClock> objects_;
  std::unordered_map<u64, VLabel> labels_;     // version -> (tid, index)
  std::unordered_map<u64, VClock> snapshots_;  // version -> reserver's clock
};

}  // namespace csq::race
