#include "src/race/race.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/race/report.h"
#include "src/race/suppress.h"
#include "src/util/check.h"

namespace csq::race {

namespace {

using conv::DirtyWords;
using conv::kMergeWordBytes;
using conv::PageBuf;

u64 Fnv1a(const u8* p, usize n) {
  u64 h = 14695981039346656037ULL;
  for (usize i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::string_view KindName(AccessKind k) {
  return k == AccessKind::kWriteWrite ? "WW" : "RW";
}

Analyzer::Analyzer(RaceConfig cfg) : cfg_(std::move(cfg)) {}

Analyzer::~Analyzer() = default;

bool Analyzer::LoadSuppressions(const std::string& path, std::string* err) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!sups_) {
    sups_ = std::make_unique<SuppressionSet>();
  }
  return sups_->LoadFile(path, err);
}

bool Analyzer::ParseSuppressions(std::string_view text, std::string* err) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!sups_) {
    sups_ = std::make_unique<SuppressionSet>();
  }
  return sups_->Parse(text, err);
}

std::vector<Analyzer::Span> Analyzer::CollectWriteSpans(const PageBuf& mine, const PageBuf& twin,
                                                        const DirtyWords& dirty) {
  std::vector<Analyzer::Span> spans;
  const usize n = mine.size();
  // Walk maximal runs of dirty words instead of one callback per word; the
  // byte scan inside a run is unchanged, so the spans stay byte-exact.
  dirty.ForEachSetRun([&](usize w0, usize wlen) {
    const usize off = w0 * kMergeWordBytes;
    if (off >= n) {
      return;
    }
    const usize end = std::min(off + wlen * kMergeWordBytes, n);
    for (usize i = off; i < end; ++i) {
      if (mine[i] == twin[i]) {
        continue;
      }
      if (!spans.empty() &&
          static_cast<usize>(spans.back().off) + spans.back().len == i) {
        ++spans.back().len;  // runs arrive ascending: adjacent spans coalesce
      } else {
        spans.push_back({static_cast<u32>(i), 1});
      }
    }
  });
  return spans;
}

void Analyzer::OnSyncAcquire(u32 tid, u64 object) {
  std::lock_guard<std::mutex> lk(mu_);
  hb_.OnAcquire(tid, object);
}

void Analyzer::OnSyncRelease(u32 tid, u64 object, bool deferred) {
  std::lock_guard<std::mutex> lk(mu_);
  hb_.OnRelease(tid, object, deferred);
}

void Analyzer::FlushDeferredReleases(u32 tid) {
  std::lock_guard<std::mutex> lk(mu_);
  hb_.FlushDeferred(tid);
}

void Analyzer::OnVersionReserved(u64 version, u32 tid, u64 vtime) {
  std::lock_guard<std::mutex> lk(mu_);
  vmeta_[version] = VersionMeta{tid, vtime};
  hb_.OnReserve(version, tid);
  if (cfg_.first_exit) {
    // Rebase/RW conflicts this thread emitted since its last commit become
    // final when this version seals: migrate them to the version bucket.
    const auto tit = tid_pending_.find(tid);
    if (tit != tid_pending_.end() && !tit->second.empty()) {
      pending_by_version_[version].insert(tit->second.begin(), tit->second.end());
      tit->second.clear();
    }
  }
}

u64 Analyzer::VtimeOfLocked(u64 version) const {
  const auto it = vmeta_.find(version);
  return it == vmeta_.end() ? 0 : it->second.vtime;
}

std::string Analyzer::ResolveSiteLocked(u64 offset) const {
  if (site_resolver_) {
    std::string s = site_resolver_(offset);
    if (!s.empty()) {
      return s;
    }
  }
  return "<untagged>";  // canonical bucket: heatmap totals always reconcile
}

void Analyzer::PendFirstExitLocked(const Key& k, u64 version_b) {
  // WW commit records become final at version_b's seal. Rebase records
  // (version_b == 0) and RW records (version_b is another thread's committed
  // version, possibly already sealed) become final at the emitting thread's
  // next reserve — they pend per-thread until then.
  if (k.kind == static_cast<u8>(AccessKind::kWriteWrite) && k.rebase == 0) {
    pending_by_version_[version_b].insert(k);
  } else {
    tid_pending_[k.tid_b].insert(k);
  }
}

void Analyzer::FireFirstExitLocked(const Key& k) {
  if (fired_) {
    return;
  }
  fired_ = true;
  const auto it = records_.find(k);
  CSQ_DCHECK(it != records_.end());  // pended keys are always kept records
  if (it == records_.end()) {
    return;
  }
  const RaceRecord& r = it->second;
  if (cfg_.first_exit_handler) {
    cfg_.first_exit_handler(r);
    return;
  }
  std::fprintf(stderr, "csq-race: first unsuppressed racy conflict: %s\n",
               CanonicalLine(r).c_str());
  std::fflush(stderr);
  std::_Exit(kFirstExitCode);
}

void Analyzer::OnCommitSealed(u64 version, u32 tid) {
  (void)tid;
  if (!cfg_.first_exit) {
    return;
  }
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = pending_by_version_.find(version);
  if (it == pending_by_version_.end()) {
    return;
  }
  if (!fired_ && !it->second.empty()) {
    // Seals are floor-held and the bucket's min key is fold-order
    // independent, so the fired record is deterministic across engines,
    // workers and jitter.
    FireFirstExitLocked(*it->second.begin());
  }
  pending_by_version_.erase(it);
}

void Analyzer::EndOfRunFlush() {
  std::lock_guard<std::mutex> lk(mu_);
  if (!cfg_.first_exit || fired_) {
    return;
  }
  std::set<Key> all;
  for (const auto& [version, keys] : pending_by_version_) {
    all.insert(keys.begin(), keys.end());
  }
  for (const auto& [tid, keys] : tid_pending_) {
    all.insert(keys.begin(), keys.end());
  }
  if (!all.empty()) {
    FireFirstExitLocked(*all.begin());
  }
}

void Analyzer::EmitLocked(const Key& k, u64 version_a, u64 version_b, u64 winner_hash) {
  if (suppressed_keys_.count(k) != 0) {
    ++suppressed_occurrences_;
    return;
  }
  auto it = records_.find(k);
  if (it == records_.end()) {
    // New distinct record: build it (sites resolve at emission so suppression
    // patterns can match them) and consult the suppression set once — the
    // verdict is memoized per key.
    RaceRecord r;
    r.kind = static_cast<AccessKind>(k.kind);
    r.rebase = k.rebase != 0;
    r.page = k.page;
    r.offset = static_cast<u64>(k.page) * page_size_ + k.off;
    r.len = k.len;
    r.tid_a = k.tid_a;
    r.tid_b = k.tid_b;
    r.version_a = version_a;
    r.version_b = version_b;
    r.vtime_a = VtimeOfLocked(version_a);
    r.vtime_b = version_b == 0 ? 0 : VtimeOfLocked(version_b);
    r.winner_hash = winner_hash;
    r.count = 1;
    r.hb_ordered = k.ordered != 0;
    r.site = ResolveSiteLocked(r.offset);
    if (sups_ && sups_->Matches(r)) {
      suppressed_keys_.insert(k);
      ++suppressed_occurrences_;
      return;
    }
    (k.kind == static_cast<u8>(AccessKind::kWriteWrite) ? ww_ : rw_) += 1;
    if (cfg_.max_records != 0 && records_.size() >= cfg_.max_records) {
      ++dropped_;
      return;
    }
    records_.emplace(k, std::move(r));
    if (cfg_.first_exit && k.ordered == 0) {
      PendFirstExitLocked(k, version_b);
    }
    return;
  }
  (k.kind == static_cast<u8>(AccessKind::kWriteWrite) ? ww_ : rw_) += 1;
  RaceRecord& r = it->second;
  ++r.count;
  r.winner_hash += winner_hash;  // wrapping sum: order-independent fold
  if (version_a < r.version_a) {
    r.version_a = version_a;
    r.vtime_a = VtimeOfLocked(version_a);
  }
  if (version_b != 0 && (r.version_b == 0 || version_b < r.version_b)) {
    r.version_b = version_b;
    r.vtime_b = VtimeOfLocked(version_b);
  }
  if (cfg_.first_exit && k.ordered == 0) {
    PendFirstExitLocked(k, version_b);
  }
}

void Analyzer::CheckWriteWindowLocked(u32 page, u32 tid, u64 base_version, u64 upto, u64 version,
                                      bool rebase, const std::vector<Span>& spans,
                                      const PageBuf& mine) {
  if (upto <= base_version || spans.empty()) {
    return;
  }
  const auto pit = writes_.find(page);
  if (pit == writes_.end()) {
    return;
  }
  const std::vector<VersionWrites>& vec = pit->second;
  auto lo = std::upper_bound(vec.begin(), vec.end(), base_version,
                             [](u64 v, const VersionWrites& w) { return v < w.version; });
  for (auto wit = lo; wit != vec.end() && wit->version <= upto; ++wit) {
    if (wit->tid == tid) {
      continue;  // a thread never races with its own committed writes
    }
    // Happens-before classification (DESIGN.md §18). Commits query the
    // committing version's immutable reserve-time snapshot; rebases query the
    // rebasing thread's current clock (this is one of its own token-held
    // events, so the clock is stable and deterministic here).
    const bool ordered = rebase ? hb_.OrderedBeforeCurrent(wit->version, tid)
                                : hb_.OrderedBeforeVersion(wit->version, version);
    // Two-pointer intersection of the sorted, disjoint span lists.
    auto a = wit->spans.begin();
    auto b = spans.begin();
    while (a != wit->spans.end() && b != spans.end()) {
      const u32 lo_off = std::max(a->off, b->off);
      const u32 hi_off = std::min(a->off + a->len, b->off + b->len);
      if (lo_off < hi_off) {
        Key k;
        k.kind = static_cast<u8>(AccessKind::kWriteWrite);
        k.rebase = rebase ? 1 : 0;
        k.page = page;
        k.off = lo_off;
        k.len = hi_off - lo_off;
        k.tid_a = wit->tid;
        k.tid_b = tid;
        k.ordered = ordered ? 1 : 0;
        EmitLocked(k, wit->version, rebase ? 0 : version,
                   Fnv1a(mine.data() + lo_off, hi_off - lo_off));
      }
      if (a->off + a->len <= b->off + b->len) {
        ++a;
      } else {
        ++b;
      }
    }
  }
}

void Analyzer::OnCommitPageResolved(u32 page, u64 version, u32 tid, u64 base_version,
                                    u64 prev_version, const PageBuf& mine, const PageBuf& twin,
                                    const DirtyWords& dirty) {
  std::vector<Span> spans = CollectWriteSpans(mine, twin, dirty);
  std::lock_guard<std::mutex> lk(mu_);
  CheckWriteWindowLocked(page, tid, base_version, prev_version, version, /*rebase=*/false, spans,
                         mine);
  std::vector<VersionWrites>& vec = writes_[page];
  CSQ_DCHECK(vec.empty() || vec.back().version < version);
  vec.push_back(VersionWrites{version, tid, std::move(spans)});
}

void Analyzer::OnRebase(u32 page, u32 tid, u64 base_version, u64 onto_version,
                        const PageBuf& mine, const PageBuf& twin, const DirtyWords& dirty) {
  const std::vector<Span> spans = CollectWriteSpans(mine, twin, dirty);
  std::lock_guard<std::mutex> lk(mu_);
  CheckWriteWindowLocked(page, tid, base_version, onto_version, /*version=*/0, /*rebase=*/true,
                         spans, mine);
}

void Analyzer::OnReadsValidated(u32 page, u32 tid, u64 from_version, u64 to_version,
                                const DirtyWords& reads, u32 page_bytes) {
  if (to_version <= from_version) {
    return;
  }
  std::lock_guard<std::mutex> lk(mu_);
  const auto pit = writes_.find(page);
  if (pit == writes_.end()) {
    return;
  }
  const std::vector<VersionWrites>& vec = pit->second;
  auto lo = std::upper_bound(vec.begin(), vec.end(), from_version,
                             [](u64 v, const VersionWrites& w) { return v < w.version; });
  for (auto wit = lo; wit != vec.end() && wit->version <= to_version; ++wit) {
    if (wit->tid == tid) {
      continue;
    }
    // Read validation is one of the reader's own floor-held events: its
    // current clock already holds every edge that could order wit->version
    // before these reads.
    const bool ordered = hb_.OrderedBeforeCurrent(wit->version, tid);
    for (const Span& s : wit->spans) {
      // Clip the writer's span to the words the reader touched. Reads are
      // word-granular (the load path marks whole words), so the reported
      // range can cover up to a word more than the precise read bytes.
      const u32 end = std::min<u32>(s.off + s.len, page_bytes);
      u32 run_start = 0;
      u32 run_len = 0;
      for (u32 i = s.off; i < end; ++i) {
        if (reads.Test(i / kMergeWordBytes)) {
          if (run_len == 0) {
            run_start = i;
          }
          ++run_len;
          continue;
        }
        if (run_len != 0) {
          Key k;
          k.kind = static_cast<u8>(AccessKind::kReadWrite);
          k.page = page;
          k.off = run_start;
          k.len = run_len;
          k.tid_a = wit->tid;
          k.tid_b = tid;
          k.ordered = ordered ? 1 : 0;
          EmitLocked(k, wit->version, to_version, 0);
          run_len = 0;
        }
      }
      if (run_len != 0) {
        Key k;
        k.kind = static_cast<u8>(AccessKind::kReadWrite);
        k.page = page;
        k.off = run_start;
        k.len = run_len;
        k.tid_a = wit->tid;
        k.tid_b = tid;
        k.ordered = ordered ? 1 : 0;
        EmitLocked(k, wit->version, to_version, 0);
      }
    }
  }
}

Report Analyzer::Finalize() const {
  std::lock_guard<std::mutex> lk(mu_);
  Report rep;
  rep.ww = ww_;
  rep.rw = rw_;
  rep.dropped = dropped_;
  rep.suppressed_records = suppressed_keys_.size();
  rep.suppressed_occurrences = suppressed_occurrences_;
  rep.records.reserve(records_.size());
  for (const auto& [key, rec] : records_) {
    rep.records.push_back(rec);
    (rec.hb_ordered ? rep.ordered_records : rep.racy_records) += 1;
  }
  return rep;
}

}  // namespace csq::race
