// Deterministic commit-time race analyzer (DESIGN.md §13).
//
// Consequence's byte-granularity last-writer-wins merge makes racy programs
// deterministic but *silently* resolves every data race. This subsystem turns
// the commit path into a detector: it piggybacks on the conflict information
// the Conversion layer already computes (per-version page predecessors, dirty
// word bitmaps, merge diffs) and reports
//
//   * write-write races: a committing (or rebasing) thread's byte-level write
//     set intersects the write set of a version in its concurrent chain
//     suffix — exactly the bytes MergeInto/MergeIntoWords overwrote;
//   * read-write races (opt-in, RaceConfig::track_reads): a thread read words
//     that a commit concurrent with the read's snapshot interval wrote.
//
// Because the runtime is deterministic, every reported race is perfectly
// reproducible — unlike TSan on native pthreads — and the report itself is
// deterministic: records are deduped under an order-independent fold keyed by
// (kind, rebase, segment offset, length, tid pair), so serial and
// host-parallel engines, any worker count, and off-floor commit on/off all
// produce byte-identical record sets. Commit vtimes are carried per record
// but excluded from the canonical form: they are the one jitter-dependent
// field (versions, tids, offsets and winning bytes are jitter-invariant
// because token grant order uses unjittered instruction counts).
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/conv/race_sink.h"
#include "src/util/types.h"

namespace csq::race {

struct RaceConfig {
  // Master switch: when false, the runtime attaches no sink and the commit
  // paths are untouched.
  bool enabled = false;
  // Read-write detection: mark per-page read-word bitmaps in the workspace
  // load paths and validate them at synchronization points. Off by default so
  // the inline load hot path stays branch-predictable-cheap.
  bool track_reads = false;
  // Safety valve on distinct deduped records (dynamic occurrences keep
  // folding into existing records). 0 = unlimited. When the cap is hit the
  // set of *kept* records can depend on host scheduling (off-floor resolves
  // race to insert) — Report::dropped says the report is partial.
  usize max_records = usize{1} << 16;
};

enum class AccessKind : u8 { kWriteWrite = 0, kReadWrite = 1 };

std::string_view KindName(AccessKind k);

// One deduped conflict. `a` is the earlier access (always a committed
// version); `b` is the later one: the committing/rebasing writer for WW, the
// reader for RW. Dynamic duplicates fold in order-independently: versions
// keep the minimum observed, `count` sums, `winner_hash` wrapping-adds.
struct RaceRecord {
  AccessKind kind = AccessKind::kWriteWrite;
  bool rebase = false;  // WW caught at update-time rebase (b not yet committed)
  u32 page = 0;
  u64 offset = 0;  // segment byte offset of the overlapping range
  u32 len = 0;     // bytes (RW ranges are read-word granular, see DESIGN.md §13)
  u32 tid_a = 0;
  u32 tid_b = 0;
  u64 version_a = 0;  // min committed version of `a` observed at this range
  u64 version_b = 0;  // min commit (WW) / validation-target (RW) version of `b`; 0 for rebase
  u64 vtime_a = 0;    // reserve-time vtime of version_a — jitter-dependent,
  u64 vtime_b = 0;    // excluded from the canonical form
  u64 winner_hash = 0;  // wrapping sum of FNV-1a over the winning bytes (WW only)
  u64 count = 0;        // dynamic occurrences folded into this record
  std::string site;     // allocation-site tag covering `offset` ("" = untagged)
};

struct Report {
  std::vector<RaceRecord> records;  // sorted by the canonical dedupe key
  u64 ww = 0;       // dynamic WW occurrences (sum of counts)
  u64 rw = 0;       // dynamic RW occurrences
  u64 dropped = 0;  // distinct records not kept (RaceConfig::max_records hit)
};

// The conv::RaceSink implementation. One instance per run; all hooks
// synchronize on an internal mutex (OnCommitPageResolved runs concurrently on
// committers' host threads under the off-floor pipeline). Determinism does
// not depend on hook arrival order: the fold is commutative.
class Analyzer final : public conv::RaceSink {
 public:
  explicit Analyzer(RaceConfig cfg = {});

  const RaceConfig& Config() const { return cfg_; }

  // Segment page size, for page-relative -> segment offsets. Set at wiring
  // time, before the run.
  void SetPageSize(u32 bytes) { page_size_ = bytes; }

  // Maps a segment offset to an allocation-site tag (conv::BumpAllocator
  // tags). Consulted once per distinct record, at Finalize.
  void SetSiteResolver(std::function<std::string(u64 offset)> fn) {
    site_resolver_ = std::move(fn);
  }

  // conv::RaceSink
  void OnVersionReserved(u64 version, u32 tid, u64 vtime) override;
  void OnCommitPageResolved(u32 page, u64 version, u32 tid, u64 base_version, u64 prev_version,
                            const conv::PageBuf& mine, const conv::PageBuf& twin,
                            const conv::DirtyWords& dirty) override;
  void OnRebase(u32 page, u32 tid, u64 base_version, u64 onto_version, const conv::PageBuf& mine,
                const conv::PageBuf& twin, const conv::DirtyWords& dirty) override;
  void OnReadsValidated(u32 page, u32 tid, u64 from_version, u64 to_version,
                        const conv::DirtyWords& reads, u32 page_bytes) override;

  // Deterministic snapshot of the deduped records, sorted by key, with
  // allocation sites resolved. Callable any time (takes the mutex).
  Report Finalize() const;

 private:
  // A maximal run of bytes the access wrote (page-relative).
  struct Span {
    u32 off = 0;
    u32 len = 0;
  };
  // One committed version's write set on one page. Per page these are
  // version-ascending: same-page resolves serialize in version order.
  struct VersionWrites {
    u64 version = 0;
    u32 tid = 0;
    std::vector<Span> spans;
  };
  struct VersionMeta {
    u32 tid = 0;
    u64 vtime = 0;
  };
  struct Key {
    u8 kind = 0;
    u8 rebase = 0;
    u32 page = 0;
    u32 off = 0;
    u32 len = 0;
    u32 tid_a = 0;
    u32 tid_b = 0;
    bool operator<(const Key& o) const {
      return std::tie(kind, rebase, page, off, len, tid_a, tid_b) <
             std::tie(o.kind, o.rebase, o.page, o.off, o.len, o.tid_a, o.tid_b);
    }
  };

  // The access's byte-exact write set: bytes where `mine` differs from `twin`
  // restricted to `dirty` words (the workspace invariant makes the
  // restriction lossless), as maximal runs — exactly the bytes the access
  // wins in a last-writer-wins merge.
  static std::vector<Span> CollectWriteSpans(const conv::PageBuf& mine,
                                             const conv::PageBuf& twin,
                                             const conv::DirtyWords& dirty);

  u64 VtimeOfLocked(u64 version) const;
  void EmitLocked(const Key& k, u64 version_a, u64 version_b, u64 winner_hash);
  // WW check of `spans` (belonging to `tid`, committing `version` or rebasing
  // with version 0) against the recorded write sets of versions in
  // (base_version, upto] on `page`.
  void CheckWriteWindowLocked(u32 page, u32 tid, u64 base_version, u64 upto, u64 version,
                              bool rebase, const std::vector<Span>& spans,
                              const conv::PageBuf& mine);

  mutable std::mutex mu_;
  RaceConfig cfg_;
  u32 page_size_ = 4096;
  std::function<std::string(u64)> site_resolver_;
  std::unordered_map<u64, VersionMeta> vmeta_;                // version -> reserve metadata
  std::unordered_map<u32, std::vector<VersionWrites>> writes_;  // page -> committed write sets
  std::map<Key, RaceRecord> records_;
  u64 ww_ = 0;
  u64 rw_ = 0;
  u64 dropped_ = 0;
};

}  // namespace csq::race
