// Deterministic commit-time race analyzer (DESIGN.md §13, §18).
//
// Consequence's byte-granularity last-writer-wins merge makes racy programs
// deterministic but *silently* resolves every data race. This subsystem turns
// the commit path into a detector: it piggybacks on the conflict information
// the Conversion layer already computes (per-version page predecessors, dirty
// word bitmaps, merge diffs) and reports
//
//   * write-write races: a committing (or rebasing) thread's byte-level write
//     set intersects the write set of a version in its concurrent chain
//     suffix — exactly the bytes MergeInto/MergeIntoWords overwrote;
//   * read-write races (opt-in, RaceConfig::track_reads): a thread read words
//     that a commit concurrent with the read's snapshot interval wrote.
//
// Each record is further classified by happens-before (DESIGN.md §18): a
// conflict whose two accesses are separated by a chain of sync edges (lock
// release/acquire, condvar signal/wait, barrier, spawn/join — never token
// grants, which order everything) is **ordered** and demoted to an
// informational bucket; the rest are **racy**. Suppression files
// (RaceConfig::suppressions_path, src/race/suppress.h) silence known records,
// and first-exit mode (RaceConfig::first_exit) stops the run with exit code
// kFirstExitCode at the first unsuppressed racy conflict's commit seal.
//
// Because the runtime is deterministic, every reported race is perfectly
// reproducible — unlike TSan on native pthreads — and the report itself is
// deterministic: records are deduped under an order-independent fold keyed by
// (kind, rebase, segment offset, length, tid pair, classification), so serial
// and host-parallel engines, any worker count, and off-floor commit on/off
// all produce byte-identical record sets. Commit vtimes are carried per
// record but excluded from the canonical form: they are the one
// jitter-dependent field (versions, tids, offsets, winning bytes and the
// happens-before classification are jitter-invariant because token grant
// order uses unjittered instruction counts).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/conv/race_sink.h"
#include "src/race/hb.h"
#include "src/util/types.h"

namespace csq::race {

struct RaceRecord;
class SuppressionSet;

// Process exit status of first-exit mode's default handler (DRD exits 1; we
// pick a distinctive code so CI can tell "race found" from ordinary failure).
inline constexpr int kFirstExitCode = 66;

struct RaceConfig {
  // Master switch: when false, the runtime attaches no sink and the commit
  // paths are untouched.
  bool enabled = false;
  // Read-write detection: mark per-page read-word bitmaps in the workspace
  // load paths and validate them at synchronization points. Off by default so
  // the inline load hot path stays branch-predictable-cheap.
  bool track_reads = false;
  // Safety valve on distinct deduped records (dynamic occurrences keep
  // folding into existing records). 0 = unlimited. When the cap is hit the
  // set of *kept* records can depend on host scheduling (off-floor resolves
  // race to insert) — Report::dropped says the report is partial.
  usize max_records = usize{1} << 16;
  // When nonempty, a DRD-style suppression file (src/race/suppress.h) loaded
  // at wiring time; matching records are counted but not kept.
  std::string suppressions_path;
  // First-exit mode: when the first unsuppressed racy record's commit seals,
  // invoke first_exit_handler with the canonical record — or, when no handler
  // is set, print the canonical line to stderr and _Exit(kFirstExitCode).
  bool first_exit = false;
  std::function<void(const RaceRecord&)> first_exit_handler;
};

enum class AccessKind : u8 { kWriteWrite = 0, kReadWrite = 1 };

std::string_view KindName(AccessKind k);

// One deduped conflict. `a` is the earlier access (always a committed
// version); `b` is the later one: the committing/rebasing writer for WW, the
// reader for RW. Dynamic duplicates fold in order-independently: versions
// keep the minimum observed, `count` sums, `winner_hash` wrapping-adds.
struct RaceRecord {
  AccessKind kind = AccessKind::kWriteWrite;
  bool rebase = false;  // WW caught at update-time rebase (b not yet committed)
  u32 page = 0;
  u64 offset = 0;  // segment byte offset of the overlapping range
  u32 len = 0;     // bytes (RW ranges are read-word granular, see DESIGN.md §13)
  u32 tid_a = 0;
  u32 tid_b = 0;
  u64 version_a = 0;  // min committed version of `a` observed at this range
  u64 version_b = 0;  // min commit (WW) / validation-target (RW) version of `b`; 0 for rebase
  u64 vtime_a = 0;    // reserve-time vtime of version_a — jitter-dependent,
  u64 vtime_b = 0;    // excluded from the canonical form
  u64 winner_hash = 0;  // wrapping sum of FNV-1a over the winning bytes (WW only)
  u64 count = 0;        // dynamic occurrences folded into this record
  // Happens-before classification: true = a sync-edge chain orders access a
  // before access b (lock-ordered conflict, informational); false = racy.
  bool hb_ordered = false;
  std::string site;  // allocation-site tag covering `offset` ("<untagged>" if none)
};

struct Report {
  std::vector<RaceRecord> records;  // sorted by the canonical dedupe key
  u64 ww = 0;       // dynamic WW occurrences (sum of counts, unsuppressed)
  u64 rw = 0;       // dynamic RW occurrences (unsuppressed)
  u64 dropped = 0;  // distinct records not kept (RaceConfig::max_records hit)
  u64 racy_records = 0;             // records with hb_ordered == false
  u64 ordered_records = 0;          // records demoted by happens-before
  u64 suppressed_records = 0;       // distinct records silenced by suppressions
  u64 suppressed_occurrences = 0;   // dynamic occurrences folded into those
};

// The conv::RaceSink implementation. One instance per run; all hooks
// synchronize on an internal mutex (OnCommitPageResolved runs concurrently on
// committers' host threads under the off-floor pipeline). Determinism does
// not depend on hook arrival order: the fold is commutative, and the
// happens-before queries read only state that is immutable (per-version
// snapshots) or owned by the querying thread's own floor/token-ordered event.
class Analyzer final : public conv::RaceSink {
 public:
  explicit Analyzer(RaceConfig cfg = {});
  ~Analyzer() override;

  const RaceConfig& Config() const { return cfg_; }

  // Segment page size, for page-relative -> segment offsets. Set at wiring
  // time, before the run.
  void SetPageSize(u32 bytes) { page_size_ = bytes; }

  // Maps a segment offset to an allocation-site tag (conv::BumpAllocator
  // tags). Consulted once per distinct record, at emission time; must be
  // thread-safe (off-floor resolves emit concurrently). Unset, or returning
  // "", yields the canonical "<untagged>" bucket.
  void SetSiteResolver(std::function<std::string(u64 offset)> fn) {
    site_resolver_ = std::move(fn);
  }

  // Suppression wiring (before the run). Load failures report via *err.
  bool LoadSuppressions(const std::string& path, std::string* err);
  bool ParseSuppressions(std::string_view text, std::string* err);

  // Sync-edge stream feeding the happens-before classifier. Fired from the
  // runtime's SyncObserver fanout at the emitting thread's own token/floor
  // -ordered points. `deferred` marks a release emitted inside a coarsened
  // chunk, before its covering commit reserves; FlushDeferredReleases(tid)
  // fires once that commit exists (see HbTracker).
  void OnSyncAcquire(u32 tid, u64 object);
  void OnSyncRelease(u32 tid, u64 object, bool deferred);
  void FlushDeferredReleases(u32 tid);

  // conv::RaceSink
  void OnVersionReserved(u64 version, u32 tid, u64 vtime) override;
  void OnCommitPageResolved(u32 page, u64 version, u32 tid, u64 base_version, u64 prev_version,
                            const conv::PageBuf& mine, const conv::PageBuf& twin,
                            const conv::DirtyWords& dirty) override;
  void OnRebase(u32 page, u32 tid, u64 base_version, u64 onto_version, const conv::PageBuf& mine,
                const conv::PageBuf& twin, const conv::DirtyWords& dirty) override;
  void OnReadsValidated(u32 page, u32 tid, u64 from_version, u64 to_version,
                        const conv::DirtyWords& reads, u32 page_bytes) override;
  void OnCommitSealed(u64 version, u32 tid) override;

  // First-exit epilogue: fires the handler for the canonically-first pending
  // racy record that never reached a seal (rebase/RW conflicts of threads
  // that exited without committing again). Called once, after the engine
  // drains; a no-op unless first_exit is set and nothing fired yet.
  void EndOfRunFlush();

  // Deterministic snapshot of the deduped records, sorted by key. Callable
  // any time (takes the mutex).
  Report Finalize() const;

 private:
  // A maximal run of bytes the access wrote (page-relative).
  struct Span {
    u32 off = 0;
    u32 len = 0;
  };
  // One committed version's write set on one page. Per page these are
  // version-ascending: same-page resolves serialize in version order.
  struct VersionWrites {
    u64 version = 0;
    u32 tid = 0;
    std::vector<Span> spans;
  };
  struct VersionMeta {
    u32 tid = 0;
    u64 vtime = 0;
  };
  struct Key {
    u8 kind = 0;
    u8 rebase = 0;
    u32 page = 0;
    u32 off = 0;
    u32 len = 0;
    u32 tid_a = 0;
    u32 tid_b = 0;
    u8 ordered = 0;  // last in the tie: racy sorts before ordered
    bool operator<(const Key& o) const {
      return std::tie(kind, rebase, page, off, len, tid_a, tid_b, ordered) <
             std::tie(o.kind, o.rebase, o.page, o.off, o.len, o.tid_a, o.tid_b, o.ordered);
    }
  };

  // The access's byte-exact write set: bytes where `mine` differs from `twin`
  // restricted to `dirty` words (the workspace invariant makes the
  // restriction lossless), as maximal runs — exactly the bytes the access
  // wins in a last-writer-wins merge.
  static std::vector<Span> CollectWriteSpans(const conv::PageBuf& mine,
                                             const conv::PageBuf& twin,
                                             const conv::DirtyWords& dirty);

  u64 VtimeOfLocked(u64 version) const;
  std::string ResolveSiteLocked(u64 offset) const;
  void EmitLocked(const Key& k, u64 version_a, u64 version_b, u64 winner_hash);
  void PendFirstExitLocked(const Key& k, u64 version_b);
  void FireFirstExitLocked(const Key& k);
  // WW check of `spans` (belonging to `tid`, committing `version` or rebasing
  // with version 0) against the recorded write sets of versions in
  // (base_version, upto] on `page`.
  void CheckWriteWindowLocked(u32 page, u32 tid, u64 base_version, u64 upto, u64 version,
                              bool rebase, const std::vector<Span>& spans,
                              const conv::PageBuf& mine);

  mutable std::mutex mu_;
  RaceConfig cfg_;
  u32 page_size_ = 4096;
  std::function<std::string(u64)> site_resolver_;
  HbTracker hb_;
  std::unique_ptr<SuppressionSet> sups_;
  std::unordered_map<u64, VersionMeta> vmeta_;                // version -> reserve metadata
  std::unordered_map<u32, std::vector<VersionWrites>> writes_;  // page -> committed write sets
  std::map<Key, RaceRecord> records_;
  std::set<Key> suppressed_keys_;  // memoized suppression verdicts
  u64 ww_ = 0;
  u64 rw_ = 0;
  u64 dropped_ = 0;
  u64 suppressed_occurrences_ = 0;
  // First-exit plumbing: racy unsuppressed keys pend under the version whose
  // seal makes them final. WW commit records pend under version_b directly;
  // rebase and RW records (emitted by tid_b before its covering commit
  // exists) pend per-thread and migrate at tid_b's next reserve.
  std::map<u64, std::set<Key>> pending_by_version_;
  std::unordered_map<u32, std::set<Key>> tid_pending_;
  bool fired_ = false;
};

}  // namespace csq::race
