#include "src/race/report.h"

#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>

#include "src/util/json.h"
#include "src/util/table.h"

namespace csq::race {

namespace {

std::string HexU64(u64 v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string_view SiteOf(const RaceRecord& r) {
  return r.site.empty() ? std::string_view("<untagged>") : std::string_view(r.site);
}

std::string_view ClassOf(const RaceRecord& r) { return r.hb_ordered ? "ordered" : "racy"; }

}  // namespace

std::string CanonicalLine(const RaceRecord& r, bool include_vtimes) {
  std::ostringstream oss;
  oss << KindName(r.kind) << (r.rebase ? "/rebase" : "") << " page=" << r.page
      << " off=" << r.offset << " len=" << r.len << " tids=" << r.tid_a << "->" << r.tid_b
      << " versions=" << r.version_a << "->" << r.version_b << " class=" << ClassOf(r)
      << " winner=" << HexU64(r.winner_hash) << " count=" << r.count << " site=" << SiteOf(r);
  if (include_vtimes) {
    oss << " vtimes=" << r.vtime_a << "->" << r.vtime_b;
  }
  return oss.str();
}

std::string CanonicalLines(const std::vector<RaceRecord>& records, bool include_vtimes) {
  std::string out;
  for (const RaceRecord& r : records) {
    out += CanonicalLine(r, include_vtimes);
    out += "\n";
  }
  return out;
}

void RenderTable(std::ostream& os, const std::vector<RaceRecord>& records) {
  if (records.empty()) {
    os << "no races detected\n";
    return;
  }
  TablePrinter t({"kind", "offset", "len", "tid a->b", "versions a->b", "class", "count", "site"});
  for (const RaceRecord& r : records) {
    std::string kind(KindName(r.kind));
    if (r.rebase) {
      kind += "/rebase";
    }
    t.AddRow({kind, std::to_string(r.offset), std::to_string(r.len),
              std::to_string(r.tid_a) + "->" + std::to_string(r.tid_b),
              std::to_string(r.version_a) + "->" + std::to_string(r.version_b),
              std::string(ClassOf(r)), std::to_string(r.count), std::string(SiteOf(r))});
  }
  t.Print(os);
}

std::vector<SiteHeat> BuildHeatmap(const std::vector<RaceRecord>& records) {
  std::map<std::string, SiteHeat> by_site;  // ordered: deterministic row order
  for (const RaceRecord& r : records) {
    SiteHeat& h = by_site[std::string(SiteOf(r))];
    h.records += 1;
    (r.hb_ordered ? h.ordered : h.racy) += 1;
    h.occurrences += r.count;
    h.bytes += r.len;
  }
  std::vector<SiteHeat> out;
  out.reserve(by_site.size());
  for (auto& [site, heat] : by_site) {
    heat.site = site;
    out.push_back(std::move(heat));
  }
  return out;
}

void RenderHeatmap(std::ostream& os, const std::vector<SiteHeat>& heat) {
  if (heat.empty()) {
    return;
  }
  TablePrinter t({"site", "records", "racy", "ordered", "occurrences", "bytes"});
  for (const SiteHeat& h : heat) {
    t.AddRow({h.site, std::to_string(h.records), std::to_string(h.racy),
              std::to_string(h.ordered), std::to_string(h.occurrences),
              std::to_string(h.bytes)});
  }
  t.Print(os);
}

std::string ReportJson(std::string_view name, const Report& rep) {
  std::string out = "{";
  out += util::JsonQuote("name");
  out += ":";
  out += util::JsonQuote(name);
  out += ",";
  out += util::JsonQuote("ww");
  out += ":" + std::to_string(rep.ww) + ",";
  out += util::JsonQuote("rw");
  out += ":" + std::to_string(rep.rw) + ",";
  out += util::JsonQuote("dropped");
  out += ":" + std::to_string(rep.dropped) + ",";
  out += util::JsonQuote("racy_records");
  out += ":" + std::to_string(rep.racy_records) + ",";
  out += util::JsonQuote("ordered_records");
  out += ":" + std::to_string(rep.ordered_records) + ",";
  out += util::JsonQuote("suppressed_records");
  out += ":" + std::to_string(rep.suppressed_records) + ",";
  out += util::JsonQuote("suppressed_occurrences");
  out += ":" + std::to_string(rep.suppressed_occurrences) + ",";
  out += util::JsonQuote("records");
  out += ":[";
  for (usize i = 0; i < rep.records.size(); ++i) {
    const RaceRecord& r = rep.records[i];
    if (i > 0) {
      out += ",";
    }
    out += "{";
    out += util::JsonQuote("kind");
    out += ":";
    out += util::JsonQuote(KindName(r.kind));
    out += ",";
    out += util::JsonQuote("rebase");
    out += r.rebase ? ":true," : ":false,";
    out += util::JsonQuote("page");
    out += ":" + std::to_string(r.page) + ",";
    out += util::JsonQuote("offset");
    out += ":" + std::to_string(r.offset) + ",";
    out += util::JsonQuote("len");
    out += ":" + std::to_string(r.len) + ",";
    out += util::JsonQuote("tid_a");
    out += ":" + std::to_string(r.tid_a) + ",";
    out += util::JsonQuote("tid_b");
    out += ":" + std::to_string(r.tid_b) + ",";
    out += util::JsonQuote("version_a");
    out += ":" + std::to_string(r.version_a) + ",";
    out += util::JsonQuote("version_b");
    out += ":" + std::to_string(r.version_b) + ",";
    out += util::JsonQuote("vtime_a");
    out += ":" + std::to_string(r.vtime_a) + ",";
    out += util::JsonQuote("vtime_b");
    out += ":" + std::to_string(r.vtime_b) + ",";
    out += util::JsonQuote("winner_hash");
    out += ":";
    out += util::JsonQuote(HexU64(r.winner_hash));
    out += ",";
    out += util::JsonQuote("count");
    out += ":" + std::to_string(r.count) + ",";
    out += util::JsonQuote("class");
    out += ":";
    out += util::JsonQuote(ClassOf(r));
    out += ",";
    out += util::JsonQuote("site");
    out += ":";
    out += util::JsonQuote(SiteOf(r));
    out += "}";
  }
  out += "],";
  out += util::JsonQuote("heatmap");
  out += ":[";
  const std::vector<SiteHeat> heat = BuildHeatmap(rep.records);
  for (usize i = 0; i < heat.size(); ++i) {
    const SiteHeat& h = heat[i];
    if (i > 0) {
      out += ",";
    }
    out += "{";
    out += util::JsonQuote("site");
    out += ":";
    out += util::JsonQuote(h.site);
    out += ",";
    out += util::JsonQuote("records");
    out += ":" + std::to_string(h.records) + ",";
    out += util::JsonQuote("racy");
    out += ":" + std::to_string(h.racy) + ",";
    out += util::JsonQuote("ordered");
    out += ":" + std::to_string(h.ordered) + ",";
    out += util::JsonQuote("occurrences");
    out += ":" + std::to_string(h.occurrences) + ",";
    out += util::JsonQuote("bytes");
    out += ":" + std::to_string(h.bytes);
    out += "}";
  }
  out += "]}";
  return out;
}

bool WriteRaceReport(std::string_view name, const Report& rep) {
  const std::string path = "RACE_" + std::string(name) + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "race report: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string body = ReportJson(name, rep);
  std::fwrite(body.data(), 1, body.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "race report: wrote %s\n", path.c_str());
  return true;
}

}  // namespace csq::race
