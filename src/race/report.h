// Race-report rendering: canonical text form, harness-style table, and the
// RACE_<name>.json artifact (the BENCH_*.json convention applied to race
// reports, so CI uploads them side by side).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/race/race.h"

namespace csq::race {

// One line per record, sorted (records come sorted from Analyzer::Finalize).
// Deliberately EXCLUDES vtimes: every field in the canonical form is
// jitter-invariant and engine-invariant, so two runs of the same program
// either produce byte-identical canonical strings or genuinely diverged.
// `include_vtimes` appends them for human consumption.
std::string CanonicalLines(const std::vector<RaceRecord>& records, bool include_vtimes = false);

// Harness-style table of the deduped records.
void RenderTable(std::ostream& os, const std::vector<RaceRecord>& records);

// Full report as a JSON object string (includes vtimes and totals).
std::string ReportJson(std::string_view name, const Report& rep);

// Writes ReportJson to RACE_<name>.json in the working directory.
bool WriteRaceReport(std::string_view name, const Report& rep);

}  // namespace csq::race
