// Race-report rendering: canonical text form, harness-style table, per-site
// conflict heatmaps, and the RACE_<name>.json artifact (the BENCH_*.json
// convention applied to race reports, so CI uploads them side by side).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/race/race.h"

namespace csq::race {

// The canonical single-record line. Deliberately EXCLUDES vtimes: every field
// is jitter-invariant and engine-invariant, so two runs of the same program
// either produce byte-identical canonical strings or genuinely diverged.
// `include_vtimes` appends them for human consumption.
std::string CanonicalLine(const RaceRecord& r, bool include_vtimes = false);

// One line per record, sorted (records come sorted from Analyzer::Finalize).
std::string CanonicalLines(const std::vector<RaceRecord>& records, bool include_vtimes = false);

// Harness-style table of the deduped records.
void RenderTable(std::ostream& os, const std::vector<RaceRecord>& records);

// Per-allocation-site conflict aggregate (DESIGN.md §18). Untagged records
// land in the canonical "<untagged>" site, so summing `records` over the
// heatmap always reconciles with Report::records.size().
struct SiteHeat {
  std::string site;
  u64 records = 0;      // distinct records at this site
  u64 racy = 0;         // of which classified racy
  u64 ordered = 0;      // of which demoted by happens-before
  u64 occurrences = 0;  // dynamic occurrences (sum of counts)
  u64 bytes = 0;        // sum of record byte spans (len)
};

// Aggregates by site tag; rows sorted by site name (deterministic).
std::vector<SiteHeat> BuildHeatmap(const std::vector<RaceRecord>& records);

// Harness-style table of the heatmap.
void RenderHeatmap(std::ostream& os, const std::vector<SiteHeat>& heat);

// Full report as a JSON object string (includes vtimes, totals and heatmap).
std::string ReportJson(std::string_view name, const Report& rep);

// Writes ReportJson to RACE_<name>.json in the working directory.
bool WriteRaceReport(std::string_view name, const Report& rep);

}  // namespace csq::race
