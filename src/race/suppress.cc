#include "src/race/suppress.h"

#include <fstream>
#include <sstream>

namespace csq::race {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool ParseError(std::string* err, usize lineno, std::string_view what) {
  if (err != nullptr) {
    std::ostringstream os;
    os << "suppressions: line " << lineno << ": " << what;
    *err = os.str();
  }
  return false;
}

bool ValidKind(std::string_view v) {
  return v == "*" || v == "WW" || v == "RW" || v == "WW/rebase" || v == "RW/rebase";
}

bool ValidClass(std::string_view v) { return v == "*" || v == "racy" || v == "ordered"; }

bool TidSideValid(std::string_view side) {
  if (side == "*") {
    return true;
  }
  if (side.empty()) {
    return false;
  }
  for (const char c : side) {
    if (c < '0' || c > '9') {
      return false;
    }
  }
  return true;
}

bool ValidTids(std::string_view v) {
  if (v == "*") {
    return true;
  }
  const usize arrow = v.find("->");
  if (arrow == std::string_view::npos) {
    return false;
  }
  return TidSideValid(v.substr(0, arrow)) && TidSideValid(v.substr(arrow + 2));
}

bool TidSideMatches(std::string_view side, u32 tid) {
  if (side == "*") {
    return true;
  }
  u64 v = 0;
  for (const char c : side) {
    v = v * 10 + static_cast<u64>(c - '0');
  }
  return v == tid;
}

bool KindMatches(const std::string& pat, const RaceRecord& r) {
  if (pat == "*") {
    return true;
  }
  std::string_view p = pat;
  const usize slash = p.find('/');
  if (slash != std::string_view::npos) {
    if (!r.rebase) {
      return false;  // `/rebase` suffix pins rebase records only
    }
    p = p.substr(0, slash);
  }
  return p == KindName(r.kind);
}

bool TidsMatches(const std::string& pat, const RaceRecord& r) {
  if (pat == "*") {
    return true;
  }
  const std::string_view v = pat;
  const usize arrow = v.find("->");
  return TidSideMatches(v.substr(0, arrow), r.tid_a) &&
         TidSideMatches(v.substr(arrow + 2), r.tid_b);
}

}  // namespace

bool SuppressionSet::GlobMatch(std::string_view pat, std::string_view s) {
  usize p = 0;
  usize i = 0;
  usize star = std::string_view::npos;
  usize mark = 0;
  while (i < s.size()) {
    if (p < pat.size() && (pat[p] == '?' || pat[p] == s[i])) {
      ++p;
      ++i;
    } else if (p < pat.size() && pat[p] == '*') {
      star = p++;
      mark = i;
    } else if (star != std::string_view::npos) {
      p = star + 1;  // backtrack: let the last `*` absorb one more byte
      i = ++mark;
    } else {
      return false;
    }
  }
  while (p < pat.size() && pat[p] == '*') {
    ++p;
  }
  return p == pat.size();
}

bool SuppressionSet::Parse(std::string_view text, std::string* err) {
  std::vector<Suppression> parsed;
  Suppression cur;
  bool in_block = false;
  bool have_name = false;
  usize lineno = 0;
  usize pos = 0;
  while (pos <= text.size()) {
    const usize nl = text.find('\n', pos);
    const std::string_view raw =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++lineno;
    const std::string_view line = Trim(raw);
    if (line.empty() || line.front() == '#') {
      continue;
    }
    if (!in_block) {
      if (line != "{") {
        return ParseError(err, lineno, "expected '{'");
      }
      in_block = true;
      have_name = false;
      cur = Suppression{};
      continue;
    }
    if (line == "}") {
      if (!have_name) {
        return ParseError(err, lineno, "block is missing a name line");
      }
      parsed.push_back(cur);
      in_block = false;
      continue;
    }
    if (!have_name) {
      cur.name = std::string(line);
      have_name = true;
      continue;
    }
    const usize colon = line.find(':');
    if (colon == std::string_view::npos) {
      return ParseError(err, lineno, "expected 'key:value'");
    }
    const std::string_view key = Trim(line.substr(0, colon));
    const std::string_view val = Trim(line.substr(colon + 1));
    if (key == "race") {
      if (!ValidKind(val)) {
        return ParseError(err, lineno, "race: must be WW|RW[/rebase]|*");
      }
      cur.kind = std::string(val);
    } else if (key == "site") {
      cur.site = std::string(val);
    } else if (key == "tids") {
      if (!ValidTids(val)) {
        return ParseError(err, lineno, "tids: must be A->B (decimal or *) or *");
      }
      cur.tids = std::string(val);
    } else if (key == "class") {
      if (!ValidClass(val)) {
        return ParseError(err, lineno, "class: must be racy|ordered|*");
      }
      cur.cls = std::string(val);
    } else {
      // A typo'd key that silently matched nothing would un-suppress a CI
      // gate; reject the file instead, like DRD does.
      return ParseError(err, lineno, "unknown key (want race|site|tids|class)");
    }
  }
  if (in_block) {
    return ParseError(err, lineno, "unterminated '{' block");
  }
  sups_.insert(sups_.end(), parsed.begin(), parsed.end());
  return true;
}

bool SuppressionSet::LoadFile(const std::string& path, std::string* err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (err != nullptr) {
      *err = "suppressions: cannot read " + path;
    }
    return false;
  }
  std::ostringstream os;
  os << in.rdbuf();
  return Parse(os.str(), err);
}

bool SuppressionSet::Matches(const RaceRecord& r) const {
  const std::string_view site = r.site.empty() ? std::string_view("<untagged>") : r.site;
  const std::string_view cls = r.hb_ordered ? "ordered" : "racy";
  for (const Suppression& s : sups_) {
    if (!KindMatches(s.kind, r)) {
      continue;
    }
    if (s.cls != "*" && s.cls != cls) {
      continue;
    }
    if (!TidsMatches(s.tids, r)) {
      continue;
    }
    if (s.site != "*" && !GlobMatch(s.site, site)) {
      continue;
    }
    return true;
  }
  return false;
}

std::string GenSuppressions(const std::vector<RaceRecord>& records) {
  std::ostringstream os;
  usize n = 0;
  for (const RaceRecord& r : records) {
    const std::string_view site = r.site.empty() ? std::string_view("<untagged>") : r.site;
    const std::string_view cls = r.hb_ordered ? "ordered" : "racy";
    os << "{\n";
    os << "  race-" << ++n << "-" << cls << "-" << site << "\n";
    os << "  race:" << KindName(r.kind) << (r.rebase ? "/rebase" : "") << "\n";
    os << "  site:" << site << "\n";
    os << "  tids:" << r.tid_a << "->" << r.tid_b << "\n";
    os << "  class:" << cls << "\n";
    os << "}\n";
  }
  return os.str();
}

}  // namespace csq::race
