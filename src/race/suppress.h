// DRD-style suppression files for the race analyzer (DESIGN.md §18).
//
// A suppression file is a sequence of brace blocks, in the lineage of
// Valgrind/DRD suppressions but matched against this analyzer's canonical
// record fields instead of stack traces (the runtime has no native stacks —
// allocation-site tags are the stable, deterministic identity here):
//
//   # comment
//   {
//     canneal-accepted-flag
//     race:WW
//     site:canneal.accepted*
//     tids:1->*
//     class:racy
//   }
//
// Block grammar: the first non-comment line names the suppression (free
// form); the remaining lines are `key:value` with keys
//   race:  WW | RW | * — optionally suffixed `/rebase` to match only
//          update-time rebase records (bare kinds match both).
//   site:  glob over the allocation-site tag (`*` and `?`); untagged records
//          match as the canonical `<untagged>` bucket.
//   tids:  `A->B` where each side is a decimal tid or `*`.
//   class: racy | ordered | * — which classification bucket to match.
// Every key is optional and defaults to `*`. Unknown keys are parse errors:
// a typo'd suppression that silently matches nothing would un-suppress a CI
// gate, the same reason DRD rejects malformed blocks.
//
// Matching is pure (no state), so suppression cannot perturb the analyzer's
// determinism: the same canonical record set yields the same suppressed set
// on every engine, worker count, and jitter seed.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/race/race.h"
#include "src/util/types.h"

namespace csq::race {

struct Suppression {
  std::string name;
  std::string kind = "*";  // "WW", "RW", "WW/rebase", "RW/rebase", or "*"
  std::string site = "*";  // glob over the site tag
  std::string tids = "*";  // "A->B" with numeric-or-* sides, or "*"
  std::string cls = "*";   // "racy", "ordered", or "*"
};

class SuppressionSet {
 public:
  // Parses suppression-file text, appending to the set. Returns false and
  // fills *err (with a line number) on malformed input.
  bool Parse(std::string_view text, std::string* err);
  // Reads and parses `path`. Unreadable file => false.
  bool LoadFile(const std::string& path, std::string* err);

  bool Matches(const RaceRecord& r) const;

  usize Size() const { return sups_.size(); }

  // `*` matches any run (including empty), `?` any single byte.
  static bool GlobMatch(std::string_view pat, std::string_view s);

 private:
  std::vector<Suppression> sups_;
};

// Renders one ready-to-paste suppression block per record, exact-valued so a
// generated file suppresses precisely the records it was generated from
// (the --gen-suppressions flow; see README).
std::string GenSuppressions(const std::vector<RaceRecord>& records);

}  // namespace csq::race
