// Vector clocks for happens-before reasoning (DESIGN.md §18).
//
// Extracted from the LRC what-if model (src/lrc/lrc_model.h), which pioneered
// the representation in this tree: one u64 component per thread, grown on
// demand, joined by elementwise max. Both the LRC page-propagation model and
// the race analyzer's happens-before classifier build on this type; keeping it
// in src/race (the lower layer of the two) lets csq_lrc reuse it without a
// dependency cycle.
//
// Components are indexed by thread id and count that thread's events (commits
// for the LRC model, reserved commit versions for the classifier). A clock
// covers (tid, n) when it has seen at least thread tid's n-th event.
#pragma once

#include <algorithm>
#include <vector>

#include "src/util/types.h"

namespace csq::race {

class VClock {
 public:
  u64 Get(usize i) const { return i < c_.size() ? c_[i] : 0; }

  void Set(usize i, u64 v) {
    if (c_.size() <= i) {
      c_.resize(i + 1, 0);
    }
    c_[i] = v;
  }

  // this := join(this, o), elementwise max.
  void Join(const VClock& o) {
    if (c_.size() < o.c_.size()) {
      c_.resize(o.c_.size(), 0);
    }
    for (usize i = 0; i < o.c_.size(); ++i) {
      c_[i] = std::max(c_[i], o.c_[i]);
    }
  }

  // Has this clock seen thread `tid`'s `n`-th event?
  bool Covers(usize tid, u64 n) const { return Get(tid) >= n; }

  bool Empty() const { return c_.empty(); }
  usize Size() const { return c_.size(); }

 private:
  std::vector<u64> c_;
};

}  // namespace csq::race
