#include "src/rt/api.h"

#include "src/rt/det_runtime.h"
#include "src/rt/pthreads_rt.h"
#include "src/util/check.h"

namespace csq::rt {

std::string_view BackendName(Backend b) {
  switch (b) {
    case Backend::kPthreads:
      return "pthreads";
    case Backend::kDThreads:
      return "dthreads";
    case Backend::kDwc:
      return "dwc";
    case Backend::kConsequenceRR:
      return "cons-rr";
    case Backend::kConsequenceIC:
      return "cons-ic";
  }
  return "?";
}

std::unique_ptr<Runtime> MakeRuntime(Backend b, const RuntimeConfig& cfg) {
  if (b == Backend::kPthreads) {
    return std::make_unique<PthreadsRuntime>(cfg);
  }
  return std::make_unique<DetRuntime>(b, cfg);
}

}  // namespace csq::rt
