// The public threading API every runtime implements and every workload uses.
//
// A workload is written once against ThreadApi (the pthreads-shaped surface:
// shared memory, mutexes, condition variables, barriers, thread create/join)
// and can then be executed by any backend:
//
//   kPthreads      — nondeterministic baseline (direct shared memory, plain
//                    lock semantics); the normalization denominator.
//   kDThreads      — DThreads [21]: round-robin ordering, commits at sync ops,
//                    mprotect-style discard-everything fences, one global lock.
//   kDwc           — DThreads-with-Conversion [23]: round-robin ordering +
//                    Conversion's asynchronous, incremental commits.
//   kConsequenceRR — Consequence with round-robin ordering (§5's CONS-RR).
//   kConsequenceIC — the paper's main system: GMIC ordering + all §3
//                    optimizations (adaptive coarsening, adaptive overflow,
//                    thread reuse, user-space counter reads, fast-forward,
//                    parallel barrier commit).
//
// Run() executes the workload on a fresh deterministic simulation and returns
// virtual runtime, the workload's result checksum, the schedule fingerprint,
// memory peaks and per-category time breakdowns.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/clock/det_clock.h"
#include "src/conv/segment.h"
#include "src/race/race.h"
#include "src/sim/cost_model.h"
#include "src/sim/time_category.h"
#include "src/util/types.h"

namespace csq::rt {

using MutexId = u32;
using CondId = u32;
using BarrierId = u32;
using ThreadHandle = u32;

enum class RmwOp : u8 {
  kAdd,       // returns old value, stores old + operand
  kExchange,  // returns old value, stores operand
  kMax,       // returns old value, stores max(old, operand)
};

class ThreadApi {
 public:
  virtual ~ThreadApi() = default;

  // Logical thread id (0 = the workload's main thread).
  virtual u32 Tid() const = 0;

  // The configured worker-count hint (RuntimeConfig::nthreads).
  virtual u32 NumThreads() const = 0;

  // The calling thread's current virtual time — a zero-cost probe of its own
  // simulated clock (the serving layer's latency instrumentation; think
  // CLOCK_THREAD_CPUTIME_ID). Deterministic across engines and worker counts
  // for a fixed config, but jitter-seed-DEPENDENT: values move with the cost
  // model's timing perturbation. Workloads that fold Now() into program
  // *output* therefore trade away cross-seed bit-identity; record it into
  // side channels (latency samples) instead.
  virtual u64 Now() const = 0;

  // Performs `units` of pure computation (advances the logical clock and
  // virtual time; models the program's own instructions).
  virtual void Work(u64 units) = 0;

  // ---- Shared memory --------------------------------------------------------
  virtual void LoadBytes(u64 addr, void* out, usize n) = 0;
  virtual void StoreBytes(u64 addr, const void* in, usize n) = 0;

  template <typename T>
  T Load(u64 addr) {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    LoadBytes(addr, &v, sizeof(T));
    return v;
  }

  template <typename T>
  void Store(u64 addr, T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    StoreBytes(addr, &v, sizeof(T));
  }

  // Deterministic atomic read-modify-write (§2.7's proposed token+op+commit
  // treatment of atomic instructions). Returns the old value.
  virtual u64 AtomicRmw(u64 addr, RmwOp op, u64 operand) = 0;

  // Full memory fence (x86 MFENCE under the TSO reading of this system): the
  // thread's store buffer — its workspace — is drained via a token-ordered
  // commit, and all remotely committed writes become visible via an update.
  // Synchronous even when async_lock_commit is on: a fence is a full barrier.
  // On the nondeterministic pthreads backend this is a plain hardware fence
  // (memory is shared directly), modeled as a small time charge.
  virtual void Fence() = 0;

  // Allocates zeroed shared memory; deterministic layout across backends.
  // A non-empty `tag` names the allocation site so race reports can attribute
  // conflicting byte ranges (e.g. "canneal.elements").
  virtual u64 SharedAlloc(usize n, usize align = 8, std::string_view tag = {}) = 0;

  // ---- Synchronization ------------------------------------------------------
  virtual MutexId CreateMutex() = 0;
  virtual CondId CreateCond() = 0;
  virtual BarrierId CreateBarrier(u32 parties) = 0;

  virtual void Lock(MutexId m) = 0;
  virtual void Unlock(MutexId m) = 0;
  virtual void CondWait(CondId c, MutexId m) = 0;
  virtual void CondSignal(CondId c) = 0;
  virtual void CondBroadcast(CondId c) = 0;
  virtual void BarrierWait(BarrierId b) = 0;

  // ---- Threads --------------------------------------------------------------
  virtual ThreadHandle SpawnThread(std::function<void(ThreadApi&)> fn) = 0;
  virtual void JoinThread(ThreadHandle h) = 0;
};

// Observer for deterministic synchronization events, used by the LRC what-if
// model (§5.3). Object ids are namespaced: mutex / condvar / barrier / thread.
enum class SyncObjKind : u8 { kMutex, kCond, kBarrier, kThread };

inline u64 SyncObjId(SyncObjKind k, u64 id) {
  return (static_cast<u64>(k) << 32) | id;
}

class SyncObserver {
 public:
  virtual ~SyncObserver() = default;
  // Acquire/release edges in happens-before order (called at token-held,
  // deterministic points, program-ordered per thread).
  virtual void OnAcquire(u32 tid, u64 object) = 0;
  virtual void OnRelease(u32 tid, u64 object) = 0;
  // A commit by `tid` covering `pages` (called before the matching release).
  virtual void OnCommit(u32 tid, const std::vector<u32>& pages) = 0;

  // ---- Canonical-trace hooks (determinism oracle) ---------------------------
  // Default-no-op so existing observers are unaffected. All values passed here
  // are deterministic given the config — the TSO oracle records them across
  // jittered runs and diffs for the first divergence.
  //
  // Global-token grant/release: `count` is the holder's instruction count,
  // `seq` the global grant sequence number.
  virtual void OnTokenGrant(u32 tid, u64 count, u64 seq) {}
  virtual void OnTokenRelease(u32 tid, u64 count, u64 seq) {}
  // A committed segment version: `version` is the global commit version the
  // commit installed, `pages` the distinct page indices in install order.
  virtual void OnCommitVersion(u32 tid, u64 version,
                               const std::vector<u32>& pages) {}
  // An update of `tid`'s workspace from version `from` to `to`, refreshing
  // `pages_refreshed` locally cached pages.
  virtual void OnUpdate(u32 tid, u64 from, u64 to, u64 pages_refreshed) {}
  // A byte-level last-writer-wins merge decision: thread `tid` merged its
  // dirty bytes of `page` on top of base version `base_version`; `bytes` is
  // the number of bytes this thread won. `rebase` distinguishes update-time
  // rebases (true) from commit-time resolves (false); `version` is the commit
  // version being built (resolves) or targeted (rebases).
  virtual void OnMergeDecision(u32 tid, u32 page, u64 version, u64 base_version,
                               u64 bytes, bool rebase) {}
};

enum class Backend : u8 {
  kPthreads,
  kDThreads,
  kDwc,
  kConsequenceRR,
  kConsequenceIC,
};

std::string_view BackendName(Backend b);

struct RuntimeConfig {
  u32 nthreads = 8;

  sim::CostModel costs;
  conv::SegmentConfig segment;

  // Host worker pool for the simulation engine: simulated threads execute
  // their isolated local segments concurrently on this many host threads,
  // while shared operations retire serially in global (vtime, tid) order.
  // 1 = the serial reference engine. Results (checksums, traces, commit
  // orders, virtual times) are bit-identical for every value. The pthreads
  // baseline ignores this knob — its threads memcpy shared pages directly,
  // so it has no isolated local segments to parallelize.
  u32 host_workers = 1;

  // Stack bytes per simulated thread (SimConfig::stack_size). Serving-style
  // universes with hundreds of short-lived session threads (src/serve) shrink
  // this to keep per-universe memory proportional to the live-session window
  // rather than the total connection count.
  usize sim_stack_bytes = 256 * 1024;

  // Batched floor grants (DESIGN.md §14): on the host-parallel engine, grant
  // the shared-op floor with a lease up to the next competitor's key so runs
  // of same-thread shared ops skip re-arbitration. A pure host-scheduling
  // optimization — results are bit-identical on/off (the equivalence suite
  // toggles it); off mainly for A/B measurement.
  bool floor_lease = true;

  // Clock knobs (policy is forced per backend; overflow knobs apply to
  // Consequence only).
  bool adaptive_overflow = true;
  u64 fixed_overflow_period = 5000;
  bool fast_forward = true;

  // Consequence optimizations (§3). Each can be ablated for Fig 13.
  bool adaptive_coarsening = true;
  u32 static_coarsen_level = 0;   // used when adaptive_coarsening == false; 0 = no coarsening
  u64 max_coarsen_chunk = 32768;  // upper bound for the adaptive max-chunk length
  bool thread_reuse = true;
  bool user_space_reads = true;
  bool parallel_barrier_commit = true;

  // §2.7 ad-hoc synchronization support: force a commit+update after this many
  // chunk instructions (0 = disabled; the paper's evaluation disables it too).
  u64 chunk_limit = 0;

  // §4.1 ablation: use Kendo-style *polling* lock acquisition instead of the
  // paper's novel blocking mutexLock(). A GMIC thread that finds the lock held
  // bumps its own clock by `kendo_poll_increment` and retries — the design the
  // paper improves upon ("the choice of a sensible value to add to the clock
  // while polling requires program-specific tuning").
  bool kendo_polling_locks = false;
  u64 kendo_poll_increment = 2000;

  // §6 future work, implemented: asynchronous mutex commits. The token is
  // held only for phase one of the two-phase commit (version + merge-order
  // reservation); the page merges and installs of phase two proceed after the
  // token is released, overlapping other threads' coordination — the same
  // trick the deterministic barrier already plays (§4.2). TSO is preserved
  // because commits still install in reserved-version order and every update
  // targets a version reserved under the token.
  bool async_lock_commit = false;

  // Commit-time race analyzer (src/race, DESIGN.md §13). Deterministic
  // backends only; the pthreads baseline ignores it. With race.enabled off
  // (the default) no sink is attached and the commit paths are untouched.
  race::RaceConfig race;

  // Optional happens-before observer (not owned; must outlive the Run).
  SyncObserver* observer = nullptr;

  // Optional schedule-exploration arbiter overriding the deterministic token
  // grant policy (not owned; deterministic backends only). See clk::TokenArbiter.
  clk::TokenArbiter* token_arbiter = nullptr;
};

struct RunResult {
  Backend backend{};
  u32 nthreads = 0;
  u64 vtime = 0;          // virtual completion time of the program
  u64 checksum = 0;       // workload-computed output digest
  u64 trace_digest = 0;   // deterministic-schedule fingerprint
  u64 trace_events = 0;

  // Host wall-clock time of the Run call, in nanoseconds. The only
  // host-dependent field besides peak_mem_bytes (whose workspace-copy
  // component depends on host scheduling when host_workers > 1); both are
  // excluded from determinism and engine-equivalence comparisons.
  u64 host_wall_ns = 0;

  u64 peak_mem_bytes = 0;

  // Off-floor commit pipeline (DESIGN.md §12) observability. All three are
  // host/engine-dependent like host_wall_ns — the ns fields are wall-clock,
  // and the page count is 0 on the serial engine — so they are excluded from
  // determinism and engine-equivalence comparisons.
  u64 floor_held_commit_ns = 0;      // commit protocol wall time under the floor
  u64 offfloor_commit_ns = 0;        // commit byte work overlapped off the floor
  u64 offfloor_pages_installed = 0;  // pages published via the off-floor path

  // Floor-handoff observability (DESIGN.md §14): grant/lease/handoff counters
  // and per-domain floor occupancy. Host-engine scheduling facts (all zero on
  // the serial engine), excluded from determinism and engine-equivalence
  // comparisons like host_wall_ns.
  sim::EngineFloorStats floor;
  std::vector<sim::EngineDomainFloorStat> domain_floors;

  // Locality-aware slot scheduling observability (DESIGN.md §16): slot
  // affinity hits / hint grants / steals. Host-engine scheduling facts (all
  // zero on the serial engine), excluded from determinism and
  // engine-equivalence comparisons like host_wall_ns.
  sim::EngineSchedStats sched;

  // Active commit-kernel dispatch level ("scalar"/"sse2"/"avx2", DESIGN.md
  // §17). A host fact like host_wall_ns — the kernels change how bytes move,
  // never which — so it is excluded from determinism and engine-equivalence
  // comparisons.
  std::string simd_level;

  u64 pages_propagated = 0;  // TSO inter-thread page propagation (Fig 16)
  u64 commits = 0;
  u64 pages_committed = 0;
  u64 pages_merged = 0;
  u64 token_acquires = 0;
  u64 fast_forwards = 0;
  u64 overflows = 0;
  u64 cow_faults = 0;

  // Per-category virtual time, summed over threads and per thread (Fig 15).
  std::array<u64, sim::kNumTimeCats> cat_totals{};
  std::vector<std::array<u64, sim::kNumTimeCats>> cat_by_thread;

  // Race-analyzer output (empty unless RuntimeConfig::race.enabled). The
  // deduped record set is deterministic: byte-identical canonical form across
  // engines, worker counts, off-floor commit on/off and jitter seeds (record
  // vtimes are the one jitter-dependent field; see race::CanonicalLines).
  // Attaching the analyzer never perturbs vtime/checksum/trace_digest.
  std::vector<race::RaceRecord> races;
  u64 race_ww = 0;       // dynamic WW occurrences (unsuppressed)
  u64 race_rw = 0;       // dynamic RW occurrences (unsuppressed)
  u64 race_dropped = 0;  // distinct records dropped at RaceConfig::max_records
  u64 race_racy = 0;     // distinct records classified racy (DESIGN.md §18)
  u64 race_ordered = 0;  // distinct records demoted by happens-before
  u64 race_suppressed = 0;  // distinct records silenced by the suppression file
};

// A workload entry point: runs on the main logical thread, may spawn workers,
// and returns the program's output checksum.
using WorkloadFn = std::function<u64(ThreadApi&)>;

class Runtime {
 public:
  virtual ~Runtime() = default;

  // Executes `fn` to completion on a fresh deterministic simulation.
  virtual RunResult Run(const WorkloadFn& fn) = 0;
};

// Factory for all five backends.
std::unique_ptr<Runtime> MakeRuntime(Backend b, const RuntimeConfig& cfg);

}  // namespace csq::rt
