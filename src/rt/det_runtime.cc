#include "src/rt/det_runtime.h"

#include <cstdio>
#include <memory>
#include <mutex>

#include "src/conv/alloc.h"
#include "src/conv/workspace.h"
#include "src/simd/kernels.h"
#include "src/util/check.h"
#include "src/util/stable_vec.h"
#include "src/util/stats.h"

namespace csq::rt {

DetFlavor FlavorFor(Backend b) {
  DetFlavor f;
  switch (b) {
    case Backend::kDThreads:
      f.policy = clk::OrderPolicy::kRoundRobin;
      f.discard_update = true;
      f.single_global_lock = true;
      break;
    case Backend::kDwc:
      f.policy = clk::OrderPolicy::kRoundRobin;
      f.single_global_lock = true;
      break;
    case Backend::kConsequenceRR:
      f.policy = clk::OrderPolicy::kRoundRobin;
      f.allow_coarsening = true;
      f.allow_parallel_barrier = true;
      f.allow_thread_reuse = true;
      f.fast_forward = true;
      break;
    case Backend::kConsequenceIC:
      f.policy = clk::OrderPolicy::kInstructionCount;
      f.allow_coarsening = true;
      f.counter_read_costs = true;
      f.allow_parallel_barrier = true;
      f.allow_thread_reuse = true;
      f.adaptive_overflow = true;
      f.fast_forward = true;
      break;
    case Backend::kPthreads:
      CSQ_CHECK_MSG(false, "pthreads is not a deterministic flavor");
  }
  return f;
}

namespace {

using sim::TimeCat;
using sim::WaitChannel;

constexpr u64 kTraceLockAcq = 0x30;
constexpr u64 kTraceCvWait = 0x31;
constexpr u64 kTraceBarrierRel = 0x32;
constexpr u64 kTraceSpawn = 0x33;
constexpr u64 kTraceExit = 0x34;
constexpr u64 kTraceAtomic = 0x35;

// Coarsening max-chunk adaptation bounds (§3.1's multiplicative policy). The
// floor must sit above typical fine-grained chunk estimates or alternating
// coordinations would permanently disable coarsening for exactly the programs
// it exists for (reverse_index, water_nsquared).
constexpr u64 kInitialMaxChunk = 8192;
constexpr u64 kMinMaxChunk = 2048;

struct DetMutex {
  bool locked = false;
  u32 owner = sim::kInvalidThread;
  u64 acquire_count = 0;  // owner's logical clock at acquisition
  u64 cs_ewma = 0;        // per-lock critical-section estimate (§3.1)
  u64 last_commit_version = 0;  // version knowledge carried by this lock (§6 mode)
  WaitChannel waiters{{}, "mutex.waiters"};  // FIFO: queue order == wake order
};

struct DetCond {
  WaitChannel waiters{{}, "cond.waiters"};
};

struct DetBarrier {
  u32 parties = 0;
  u32 arrived = 0;  // phase-one arrivals in the current generation
  u32 reached = 0;  // internal-barrier arrivals
  u64 generation = 0;
  u64 max_count = 0;        // max participant clock (deterministic FF target)
  u64 gen_max_version = 0;  // accumulated commit/knowledge versions this generation
  u64 release_version = 0;  // version all parties update to
  u64 release_count = 0;
  WaitChannel ch{{}, "barrier"};
};

class DApi;

struct ThreadRec {
  std::unique_ptr<conv::Workspace> ws;
  std::unique_ptr<DApi> api;
  bool done = false;
  bool start_deferred = false;  // RR epoch semantics: runs at parent's next block
  WaitChannel start_ch{{}, "thread.start"};
  WaitChannel done_ch{{}, "thread.done"};

  // Chunk accounting (coarsening estimates + §2.7 chunk limit).
  u64 chunk_begin_count = 0;
  u64 last_commit_count = 0;
  u64 thread_chunk_ewma = 0;  // post-unlock chunk estimate (§3.1)
  u64 max_chunk = kInitialMaxChunk;
  bool coarsen_active = false;
  u64 coarsen_total = 0;
  u32 coarsen_ops = 0;
  // Lamport-style "version knowledge" (§6 async mode): the highest committed
  // version this thread has produced or synchronized with. Releases publish
  // it into the sync object; acquires fold the object's value back in.
  u64 version_knowledge = 0;
};

struct State {
  State(const RuntimeConfig& c, const DetFlavor& f)
      : cfg(c),
        fl(f),
        eng(MakeSimConfig(c)),
        seg(eng, c.segment),
        clock(eng, MakeClockConfig(c, f)),
        alloc(c.segment.size_bytes) {}

  static sim::SimConfig MakeSimConfig(const RuntimeConfig& c) {
    sim::SimConfig sc;
    sc.costs = c.costs;
    sc.stack_size = c.sim_stack_bytes;
    sc.host_workers = c.host_workers;
    sc.floor_lease = c.floor_lease;
    return sc;
  }

  static clk::ClockConfig MakeClockConfig(const RuntimeConfig& c, const DetFlavor& f) {
    clk::ClockConfig cc;
    cc.policy = f.policy;
    cc.adaptive_overflow = f.adaptive_overflow && c.adaptive_overflow;
    cc.fixed_overflow_period = c.fixed_overflow_period;
    cc.fast_forward = f.fast_forward && c.fast_forward;
    cc.arbiter = c.token_arbiter;
    if (SyncObserver* obs = c.observer) {
      cc.on_grant = [obs](u32 tid, u64 count, u64 seq) {
        obs->OnTokenGrant(tid, count, seq);
      };
      cc.on_release = [obs](u32 tid, u64 count, u64 seq) {
        obs->OnTokenRelease(tid, count, seq);
      };
    }
    return cc;
  }

  RuntimeConfig cfg;
  DetFlavor fl;
  sim::Engine eng;
  conv::Segment seg;
  clk::DetClock clock;
  conv::BumpAllocator alloc;
  // StableVec: creation is gate-serialized, but concurrently executing local
  // segments index into these (a thread touching its own record, a Lock
  // resolving its mutex id) while another thread appends the next element.
  StableVec<ThreadRec> threads;
  StableVec<DetMutex> mutexes;
  StableVec<DetCond> conds;
  StableVec<DetBarrier> barriers;
  u32 last_coord_tid = sim::kInvalidThread;  // §3.1 MIMD adaptation state
  u32 pool_available = 0;                    // §3.3 thread-reuse pool
  u64 lock_seq = 0;
  StableVec<std::vector<u32>> deferred;      // per-parent children awaiting release
  // Race-analyzer plumbing (set in Run when cfg.race.enabled). alloc_mu
  // shields BumpAllocator's tag list: the analyzer's site resolver reads it
  // from off-floor resolve threads while gate-held SharedAlloc appends.
  race::Analyzer* race_an = nullptr;
  std::mutex alloc_mu;
};

class DApi final : public ThreadApi {
 public:
  DApi(State& st, u32 tid) : st_(st), tid_(tid) {}

  u32 Tid() const override { return tid_; }
  u32 NumThreads() const override { return st_.cfg.nthreads; }
  u64 Now() const override { return st_.eng.Now(); }

  void Work(u64 units) override {
    // A coarsened chunk whose *actual* length overruns the max-chunk budget is
    // terminated mid-chunk (commit + token release), bounding how long other
    // threads can be blocked when the §3.1 length estimate was wrong. The
    // counter-overflow machinery gives the runtime exactly this interception
    // point in the real system.
    if (Rec().coarsen_active && st_.cfg.adaptive_coarsening) {
      const u64 so_far =
          Rec().coarsen_total + (st_.clock.Count(tid_) - Rec().chunk_begin_count);
      const u64 budget = Rec().max_chunk > so_far ? Rec().max_chunk - so_far : 0;
      if (units > budget) {
        st_.clock.AdvanceWork(tid_, budget);
        EnterLib();
        EndCoarsenCommitRelease();
        // The length estimate was wrong (the chunk overran the budget);
        // shrink the budget so the next decision is more conservative.
        Rec().max_chunk = std::max(Rec().max_chunk / 2, kMinMaxChunk);
        ExitLib();
        units -= budget;
      }
    }
    if (st_.cfg.chunk_limit == 0) {
      st_.clock.AdvanceWork(tid_, units);
      return;
    }
    // §2.7: bound chunk length so ad-hoc (spin-flag) synchronization makes
    // progress — every chunk_limit instructions force a commit+update.
    while (units > 0) {
      const u64 used = st_.clock.Count(tid_) - Rec().last_commit_count;
      if (used >= st_.cfg.chunk_limit) {
        ForcedCommit();
        continue;
      }
      const u64 step = std::min(units, st_.cfg.chunk_limit - used);
      st_.clock.AdvanceWork(tid_, step);
      units -= step;
    }
  }

  void LoadBytes(u64 addr, void* out, usize n) override {
    Ws().LoadBytes(addr, out, n);
    st_.clock.Tick(tid_, std::max<u64>(1, n / 8));
    ChunkLimitCheck();
  }

  void StoreBytes(u64 addr, const void* in, usize n) override {
    Ws().StoreBytes(addr, in, n);
    st_.clock.Tick(tid_, std::max<u64>(1, n / 8));
    ChunkLimitCheck();
  }

  // §2.7's proposed treatment of atomic instructions: token + op + commit.
  // Inside a coarsened chunk the token is already held, so the operation is
  // trivially atomic and the commit is deferred to the chunk's end.
  u64 AtomicRmw(u64 addr, RmwOp op, u64 operand) override {
    ReleaseDeferredChildren();
    EnterLib();
    const bool had_token = Rec().coarsen_active;
    if (!had_token) {
      st_.clock.WaitToken(tid_);
      if (Ws().DirtyPageCount() > 0) {
        Ws().Commit();  // x86 RMW drains the store buffer before executing
      }
      Ws().Update();
    }
    const u64 old = Ws().Load<u64>(addr);
    u64 next = old;
    switch (op) {
      case RmwOp::kAdd:
        next = old + operand;
        break;
      case RmwOp::kExchange:
        next = operand;
        break;
      case RmwOp::kMax:
        next = std::max(old, operand);
        break;
    }
    Ws().Store<u64>(addr, next);
    st_.eng.Trace(kTraceAtomic, tid_, addr, old);
    if (!had_token) {
      CommitUpdateGc();
      st_.clock.ReleaseToken(tid_);
    }
    ExitLib();
    return old;
  }

  // Full fence: drain the workspace (store buffer) through a token-ordered
  // commit and pull in every remotely committed write. Always synchronous —
  // even under async_lock_commit, a fence must not return before its stores
  // are globally visible and all prior commits are locally visible.
  void Fence() override {
    ReleaseDeferredChildren();
    EnterLib();
    if (Rec().coarsen_active) {
      EndCoarsenCommitRelease();
    } else {
      st_.clock.WaitToken(tid_);
      CommitUpdateGc();
      st_.clock.ReleaseToken(tid_);
    }
    ExitLib();
  }

  u64 SharedAlloc(usize n, usize align, std::string_view tag) override {
    st_.eng.GateShared();
    u64 addr;
    {
      std::lock_guard<std::mutex> lk(st_.alloc_mu);
      addr = st_.alloc.Alloc(n, align, tag);
    }
    st_.eng.EndShared();
    return addr;
  }

  // Sync-object creation must happen at deterministic points (before workers
  // are spawned, or inside a critical section) — the usual pthreads pattern.
  MutexId CreateMutex() override {
    st_.eng.GateShared();
    st_.mutexes.EmplaceBack();
    const auto id = static_cast<MutexId>(st_.mutexes.size() - 1);
    st_.eng.EndShared();
    return id;
  }

  CondId CreateCond() override {
    st_.eng.GateShared();
    st_.conds.EmplaceBack();
    const auto id = static_cast<CondId>(st_.conds.size() - 1);
    st_.eng.EndShared();
    return id;
  }

  BarrierId CreateBarrier(u32 parties) override {
    st_.eng.GateShared();
    st_.barriers.EmplaceBack().parties = parties;
    const auto id = static_cast<BarrierId>(st_.barriers.size() - 1);
    st_.eng.EndShared();
    return id;
  }

  // mutexLock(), Figure 7 — plus the coarsened fast path (§3.1).
  void Lock(MutexId m) override {
    const MutexId mid = MapLock(m);
    ReleaseDeferredChildren();
    EnterLib();
    ThreadRec& r = Rec();
    DetMutex& mu = st_.mutexes[mid];
    // The chunk that just ended updates the thread-local estimate.
    const u64 chunk = st_.clock.Count(tid_) - r.chunk_begin_count;
    Ewma(r.thread_chunk_ewma, chunk);
    if (r.coarsen_active) {
      r.coarsen_total += chunk;
      if (!mu.locked && CoarsenFits(mu.cs_ewma)) {
        AcquireLocked(mu, mid);
        if (st_.cfg.observer) {
          // Observer streams are floor-ordered (the recorder appends to one
          // global list): the coarsened path holds the token but not the
          // floor, so gate just for the emission.
          st_.eng.GateShared();
          st_.cfg.observer->OnAcquire(tid_, SyncObjId(SyncObjKind::kMutex, mid));
        }
        ++r.coarsen_ops;
        ExitLib();
        return;
      }
      EndCoarsenCommitRelease();
    }
    LockFig7Acquire(mu, mid);
    // Coarsening a lock operation: keep the token through the critical
    // section if the per-lock estimate fits.
    if (CoarseningOn() && StartFits(mu.cs_ewma)) {
      CommitUpdateGc();
      EmitAcquire(mid);
      StartCoarsen();
    } else {
      CommitUpdateGcReleaseToken(mu, /*acquire=*/true, [&] { EmitAcquire(mid); });
    }
    ExitLib();
  }

  // mutexUnlock(), Figure 9 — plus the coarsened fast path.
  void Unlock(MutexId m) override {
    const MutexId mid = MapLock(m);
    ReleaseDeferredChildren();
    EnterLib();
    ThreadRec& r = Rec();
    DetMutex& mu = st_.mutexes[mid];
    CSQ_CHECK_MSG(mu.locked && mu.owner == tid_, "unlock of a mutex not held");
    const u64 cs_len = st_.clock.Count(tid_) - mu.acquire_count;
    if (r.coarsen_active) {
      Ewma(mu.cs_ewma, cs_len);  // token held: deterministic shared write
      r.coarsen_total += cs_len;
      // The coarsened chunk's eventual commit covers this unlock; conservatively
      // carry knowledge through the lock at end-of-coarsen time instead.
      ReleaseLockWake(mu);
      if (st_.cfg.observer) {
        st_.cfg.observer->OnRelease(tid_, SyncObjId(SyncObjKind::kMutex, mid));
      }
      if (CoarsenFits(r.thread_chunk_ewma)) {
        ++r.coarsen_ops;
        ExitLib();
        return;
      }
      EndCoarsenCommitRelease();
      ExitLib();
      return;
    }
    st_.clock.WaitToken(tid_);
    NoteCoordination();
    Ewma(mu.cs_ewma, cs_len);
    ReleaseLockWake(mu);
    // Coarsening an unlock operation: keep the token through the next chunk
    // if the thread-local estimate fits.
    if (CoarseningOn() && StartFits(r.thread_chunk_ewma)) {
      CommitUpdateGc();
      mu.last_commit_version = std::max(mu.last_commit_version, r.version_knowledge);
      EmitRelease(mid);
      StartCoarsen();
    } else {
      CommitUpdateGcReleaseToken(mu, /*acquire=*/false, [&] { EmitRelease(mid); });
    }
    ExitLib();
  }

  void CondWait(CondId c, MutexId m) override {
    const MutexId mid = MapLock(m);
    ReleaseDeferredChildren();
    EnterLib();
    MaybeEndCoarsen();  // §3.1: coarsening stops at condition-variable ops
    DetMutex& mu = st_.mutexes[mid];
    DetCond& cv = st_.conds[c];
    CSQ_CHECK_MSG(mu.locked && mu.owner == tid_, "CondWait without holding the mutex");
    st_.clock.WaitToken(tid_);
    ReleaseLockWake(mu);
    CommitUpdateGc();
    // CondWait releases the mutex: like Unlock, it must publish its commit
    // into the lock's version knowledge, or an async-mode (§6) acquirer —
    // which updates only to the lock's K, not to global latest — could miss
    // the pre-wait stores (e.g. a waiter-count increment guarding a signal).
    mu.last_commit_version = std::max(mu.last_commit_version, Rec().version_knowledge);
    if (st_.cfg.observer) {
      st_.cfg.observer->OnRelease(tid_, SyncObjId(SyncObjKind::kMutex, mid));
      st_.cfg.observer->OnRelease(tid_, SyncObjId(SyncObjKind::kCond, c));
    }
    st_.eng.Trace(kTraceCvWait, tid_, c, st_.clock.Count(tid_));
    st_.clock.Depart(tid_);
    st_.clock.ReleaseToken(tid_);
    Ws().SetGcExempt(true);  // floor still held: released atomically by Wait
    st_.eng.Wait(cv.waiters, TimeCat::kDetermWait);
    // The signaler re-admitted us (ArriveAt) while holding the token.
    // Re-acquire the mutex through the ordinary deterministic path; the GC
    // exemption is cleared there, under the re-acquired gate.
    LockFig7Acquire(mu, mid);
    CommitUpdateGcReleaseToken(mu, /*acquire=*/true, [&] {
      EmitAcquire(mid);
      if (st_.cfg.observer) {
        st_.cfg.observer->OnAcquire(tid_, SyncObjId(SyncObjKind::kCond, c));
      }
    });
    ExitLib();
  }

  void CondSignal(CondId c) override {
    ReleaseDeferredChildren();
    EnterLib();
    MaybeEndCoarsen();
    DetCond& cv = st_.conds[c];
    st_.clock.WaitToken(tid_);
    CommitUpdateGc();  // release semantics: the waiter must see our state
    if (st_.cfg.observer) {
      st_.cfg.observer->OnRelease(tid_, SyncObjId(SyncObjKind::kCond, c));
    }
    if (!cv.waiters.Empty()) {
      WakeFirst(cv.waiters);
    }
    st_.clock.ReleaseToken(tid_);
    ExitLib();
  }

  void CondBroadcast(CondId c) override {
    ReleaseDeferredChildren();
    EnterLib();
    MaybeEndCoarsen();
    DetCond& cv = st_.conds[c];
    st_.clock.WaitToken(tid_);
    CommitUpdateGc();
    if (st_.cfg.observer) {
      st_.cfg.observer->OnRelease(tid_, SyncObjId(SyncObjKind::kCond, c));
    }
    while (!cv.waiters.Empty()) {
      WakeFirst(cv.waiters);
    }
    st_.clock.ReleaseToken(tid_);
    ExitLib();
  }

  // Deterministic barrier (§4.2): two-phase commit with the token held only
  // during phase one, a non-deterministic internal barrier, then a
  // deterministic update to the recorded release version.
  void BarrierWait(BarrierId bid) override {
    ReleaseDeferredChildren();
    EnterLib();
    MaybeEndCoarsen();
    DetBarrier& b = st_.barriers[bid];
    st_.clock.WaitToken(tid_);
    b.max_count = std::max(b.max_count, st_.clock.Count(tid_));
    // Trace the deterministic phase-one arrival order (post-release execution
    // order is intentionally nondeterministic, like the paper's internal
    // pthreads barrier).
    st_.eng.Trace(kTraceBarrierRel, tid_, bid, b.generation);
    ++b.arrived;
    const bool last = b.arrived == b.parties;
    const bool parallel = st_.fl.allow_parallel_barrier && st_.cfg.parallel_barrier_commit;
    if (parallel) {
      const conv::PreparedCommit pc = Ws().PrepareTwoPhase();  // phase one (serial)
      if (st_.cfg.observer) {
        st_.cfg.observer->OnCommit(tid_, pc.pages);
        st_.cfg.observer->OnRelease(tid_, SyncObjId(SyncObjKind::kBarrier, bid));
      }
      b.gen_max_version = std::max({b.gen_max_version, pc.version, Rec().version_knowledge});
      if (last) {
        b.release_version = b.gen_max_version;
        b.release_count = b.max_count;
        b.arrived = 0;
        b.gen_max_version = 0;
      }
      st_.clock.Depart(tid_);
      st_.clock.ReleaseToken(tid_);
      Ws().FinishTwoPhase(pc);  // phase two (parallel in virtual time)
    } else {
      const u64 v = Ws().Commit();  // both phases serialized under the token
      if (st_.cfg.observer) {
        st_.cfg.observer->OnCommit(tid_, Ws().LastCommitPages());
        st_.cfg.observer->OnRelease(tid_, SyncObjId(SyncObjKind::kBarrier, bid));
      }
      b.gen_max_version = std::max({b.gen_max_version, v, Rec().version_knowledge});
      if (last) {
        b.release_version = b.gen_max_version;
        b.release_count = b.max_count;
        b.arrived = 0;
        b.gen_max_version = 0;
      }
      st_.clock.Depart(tid_);
      st_.clock.ReleaseToken(tid_);
    }
    Rec().last_commit_count = st_.clock.Count(tid_);
    // Internal (non-deterministic, pthreads-style) barrier. The GC exemption
    // is set and cleared under the gate (other threads' GC watermark scans
    // read it gate-held).
    st_.eng.GateShared();
    Ws().SetGcExempt(true);
    ++b.reached;
    if (b.reached == b.parties) {
      b.reached = 0;
      ++b.generation;
      st_.eng.NotifyAll(b.ch);
    } else {
      const u64 gen = b.generation;
      while (gen == b.generation) {
        st_.eng.Wait(b.ch, TimeCat::kBarrierWait);
        st_.eng.GateShared();
      }
    }
    Ws().SetGcExempt(false);
    st_.clock.ArriveAt(tid_, b.release_count);
    Ws().UpdateTo(b.release_version);
    Rec().version_knowledge = std::max(Rec().version_knowledge, b.release_version);
    if (st_.cfg.observer) {
      st_.cfg.observer->OnAcquire(tid_, SyncObjId(SyncObjKind::kBarrier, bid));
    }
    st_.seg.Gc(st_.cfg.nthreads);
    ExitLib();
  }

  ThreadHandle SpawnThread(std::function<void(ThreadApi&)> fn) override {
    EnterLib();
    MaybeEndCoarsen();
    st_.clock.WaitToken(tid_);
    CommitUpdateGc();  // the child must observe everything we wrote
    const u32 child = static_cast<u32>(st_.threads.size());
    const bool reuse = st_.fl.allow_thread_reuse && st_.cfg.thread_reuse;
    if (reuse && st_.pool_available > 0) {
      --st_.pool_available;
      st_.eng.Charge(st_.eng.Costs().spawn_reuse_fixed, TimeCat::kLibrary);
    } else {
      // Forking a Conversion process copies every populated page-table entry
      // into the child (§3.3).
      st_.eng.Charge(st_.eng.Costs().spawn_fork_fixed +
                         st_.eng.Costs().spawn_fork_per_page * st_.seg.PopulatedPageCount(),
                     TimeCat::kLibrary);
    }
    st_.clock.RegisterThread(child, st_.clock.Count(tid_));
    ThreadRec& rec = st_.threads.EmplaceBack();
    rec.ws = std::make_unique<conv::Workspace>(st_.seg, child);
    rec.ws->SetDiscardOnUpdate(st_.fl.discard_update);
    if (st_.cfg.race.enabled && st_.cfg.race.track_reads) {
      rec.ws->SetTrackReads(true);
    }
    rec.api = std::make_unique<DApi>(st_, child);
    rec.chunk_begin_count = st_.clock.Count(tid_);
    rec.last_commit_count = rec.chunk_begin_count;
    rec.version_knowledge = Rec().version_knowledge;
    if (st_.fl.policy == clk::OrderPolicy::kRoundRobin) {
      // Round-robin (DThreads-style epoch) semantics: children join the token
      // rotation when the parent next reaches a blocking synchronization
      // point, so a spawn loop does not serialize against compute-only
      // workers. Consequence-IC's GMIC ordering never waits on threads that
      // are not requesting the token, so its children start eagerly.
      rec.start_deferred = true;
      while (st_.deferred.size() <= tid_) {
        st_.deferred.EmplaceBack();
      }
      st_.deferred[tid_].push_back(child);
      st_.clock.Depart(child);  // out of rotation until released
    }
    State* st = &st_;
    const u32 spawned = st_.eng.Spawn([st, child, fn = std::move(fn)] {
      // Check-then-park must be atomic with the parent's gated release: read
      // under the floor, and Wait parks atomically with the floor release, so
      // the child either sees the release already done or is parked before the
      // parent's NotifyAll can run.
      st->eng.GateShared();
      if (st->threads[child].start_deferred) {
        st->eng.Wait(st->threads[child].start_ch, TimeCat::kDetermWait);
        if (st->cfg.observer) {
          // Wait returns without the floor; re-gate so the start event lands
          // at the woken child's deterministic resume point (observer streams
          // are floor-ordered).
          st->eng.GateShared();
          st->cfg.observer->OnAcquire(child, SyncObjId(SyncObjKind::kThread, child));
          st->eng.EndShared();
        }
      } else {
        if (st->cfg.observer) {
          st->cfg.observer->OnAcquire(child, SyncObjId(SyncObjKind::kThread, child));
        }
        st->eng.EndShared();
      }
      fn(*st->threads[child].api);
      st->threads[child].api->ExitProtocol();
    });
    CSQ_CHECK(spawned == child);
    if (st_.cfg.observer) {
      st_.cfg.observer->OnRelease(tid_, SyncObjId(SyncObjKind::kThread, child));
    }
    st_.eng.Trace(kTraceSpawn, tid_, child, st_.clock.Count(tid_));
    st_.clock.ReleaseToken(tid_);
    ExitLib();
    return child;
  }

  void JoinThread(ThreadHandle h) override {
    ReleaseDeferredChildren();
    EnterLib();
    MaybeEndCoarsen();
    ThreadRec& target = st_.threads[h];
    for (;;) {
      st_.clock.WaitToken(tid_);
      Ws().SetGcExempt(false);  // gate-held (see LockFig7Acquire)
      Ws().Update();  // join is an acquire: see the child's final commit
      if (target.done) {
        break;
      }
      st_.clock.Depart(tid_);
      st_.clock.ReleaseToken(tid_);
      Ws().SetGcExempt(true);  // floor still held: released atomically by Wait
      st_.eng.Wait(target.done_ch, TimeCat::kDetermWait);
      // The exiting child re-admitted us under its token.
    }
    st_.eng.Charge(st_.eng.Costs().join_fixed, TimeCat::kLibrary);
    if (st_.cfg.observer) {
      st_.cfg.observer->OnAcquire(tid_, SyncObjId(SyncObjKind::kThread, h));
    }
    st_.clock.ReleaseToken(tid_);
    ExitLib();
  }

  // Deterministic thread teardown: commit final writes, wake joiners, enter
  // the reuse pool, leave GMIC consideration. Public so the spawn wrapper and
  // the runtime's main-thread epilogue can call it.
  void ExitProtocol() {
    ReleaseDeferredChildren();
    st_.clock.Pause(tid_);
    ThreadRec& rec = Rec();
    if (!rec.coarsen_active) {
      st_.clock.WaitToken(tid_);
    }
    rec.coarsen_active = false;
    Ws().Commit();
    // An empty commit elides its gate, and on the coarsened path WaitToken was
    // skipped too — so the floor may not be held here. The observer events
    // (floor-ordered stream), the done flag and the wake loop (a joiner parks
    // on done_ch holding only the floor) all need an explicit gate.
    st_.eng.GateShared();
    if (st_.race_an != nullptr) {
      // The final commit (possibly covering a coarsened chunk) has reserved:
      // re-join any releases the chunk deferred before the thread's own
      // exit-release edge below.
      st_.race_an->FlushDeferredReleases(tid_);
    }
    if (st_.cfg.race.enabled && st_.cfg.race.track_reads) {
      // Final read sweep (floor-held): reads since the thread's last sync op
      // are validated against everything committed so far. For synchronous
      // commits CommittedVersion() here equals the reserved version at this
      // token-held point, so the sweep target is deterministic.
      Ws().ValidateReads(st_.seg.CommittedVersion());
    }
    if (st_.cfg.observer) {
      st_.cfg.observer->OnCommit(tid_, Ws().LastCommitPages());
      st_.cfg.observer->OnRelease(tid_, SyncObjId(SyncObjKind::kThread, tid_));
    }
    rec.done = true;
    while (!rec.done_ch.Empty()) {
      WakeFirst(rec.done_ch);
    }
    if (st_.fl.allow_thread_reuse && st_.cfg.thread_reuse) {
      ++st_.pool_available;
    }
    st_.eng.Trace(kTraceExit, tid_, st_.clock.Count(tid_), 0);
    st_.clock.ReleaseToken(tid_);
    st_.clock.FinishThread(tid_);
    Ws().Discard();
  }

 private:
  ThreadRec& Rec() { return st_.threads[tid_]; }
  conv::Workspace& Ws() { return *Rec().ws; }

  MutexId MapLock(MutexId m) const {
    // DThreads and DWC turn every mutex into one global lock (§2.6).
    return st_.fl.single_global_lock ? 0 : m;
  }

  static void Ewma(u64& e, u64 x) { e = (e == 0) ? x : (3 * e + x) / 4; }

  // Releases children whose start was deferred by RR epoch semantics. Called
  // from every potentially blocking operation (a deterministic, logical
  // trigger — the parent's own next synchronization point).
  void ReleaseDeferredChildren() {
    // The un-gated early-out reads only this thread's own deferral list (the
    // outer spine is a StableVec; only tid_ ever writes deferred[tid_]).
    if (st_.deferred.size() <= tid_ || st_.deferred[tid_].empty()) {
      return;
    }
    st_.eng.GateShared();
    for (const u32 child : st_.deferred[tid_]) {
      ThreadRec& rec = st_.threads[child];
      rec.start_deferred = false;
      st_.clock.ArriveAt(child, st_.clock.Count(tid_));
      st_.eng.NotifyAll(rec.start_ch);
    }
    st_.deferred[tid_].clear();
    st_.eng.EndShared();
  }

  void EnterLib() {
    st_.clock.Pause(tid_);
    if (st_.fl.counter_read_costs) {
      // End-of-chunk counter read (§3.4): a syscall normally; a cheap
      // user-space read while executing a coarsened chunk.
      const bool user = st_.cfg.user_space_reads && Rec().coarsen_active;
      st_.eng.Charge(user ? st_.eng.Costs().counter_read_user
                          : st_.eng.Costs().counter_read_kernel,
                     TimeCat::kLibrary);
    }
  }

  void ExitLib() {
    st_.clock.ChunkBegin(tid_);
    Rec().chunk_begin_count = st_.clock.Count(tid_);
    st_.clock.Resume(tid_);
    // Every library operation funnels through here on its way back to local
    // execution; release the shared-state floor (held since the op's last
    // gated step) so other threads' shared operations can overlap the chunk.
    st_.eng.EndShared();
  }

  void ChunkLimitCheck() {
    if (st_.cfg.chunk_limit == 0 || st_.clock.Paused(tid_)) {
      return;
    }
    if (st_.clock.Count(tid_) - Rec().last_commit_count >= st_.cfg.chunk_limit) {
      ForcedCommit();
    }
  }

  void ForcedCommit() {
    ReleaseDeferredChildren();
    EnterLib();
    if (Rec().coarsen_active) {
      EndCoarsenCommitRelease();
    } else {
      st_.clock.WaitToken(tid_);
      CommitUpdateGc();
      st_.clock.ReleaseToken(tid_);
    }
    ExitLib();
  }

  void CommitUpdateGc() {
    const u64 target = Ws().CommitAndUpdate();
    ThreadRec& r = Rec();
    r.version_knowledge = std::max(r.version_knowledge, target);
    r.last_commit_count = st_.clock.Count(tid_);
    if (st_.cfg.observer) {
      st_.cfg.observer->OnCommit(tid_, Ws().LastCommitPages());
    }
    st_.seg.Gc(st_.cfg.nthreads);
  }

  // Commit + update around a mutex operation, then release the token. With
  // async_lock_commit (§6 future work), only phase one happens under the
  // token; the merge/install and the update to our own reserved version run
  // token-free, overlapped with other threads' coordination.
  // Commit around a mutex operation, then release the token.
  //
  // Asynchronous mode (§6 future work): only phase one runs under the token.
  // Visibility then follows scalar "version knowledge" K instead of
  // update-to-global-latest: a release publishes K into the lock; an acquire
  // updates to max(own K, lock's K, own fresh commit) — a deterministic
  // *prefix* of the global commit order, so TSO is preserved, but an acquirer
  // of an uncontended lock no longer waits for unrelated in-flight commits.
  void CommitUpdateGcReleaseToken(DetMutex& mu, bool acquire,
                                  const std::function<void()>& under_token) {
    if (!st_.cfg.async_lock_commit) {
      CommitUpdateGc();
      mu.last_commit_version = std::max(mu.last_commit_version, Rec().version_knowledge);
      if (under_token) {
        under_token();
      }
      st_.clock.ReleaseToken(tid_);
      return;
    }
    ThreadRec& r = Rec();
    const conv::PreparedCommit pc = Ws().PrepareTwoPhase();  // token held
    if (st_.cfg.observer) {
      st_.cfg.observer->OnCommit(tid_, pc.pages);
    }
    r.version_knowledge = std::max(r.version_knowledge, pc.version);
    u64 target = r.version_knowledge;
    if (acquire) {
      target = std::max(target, mu.last_commit_version);  // fold the lock's K
    } else {
      mu.last_commit_version = std::max(mu.last_commit_version, r.version_knowledge);
    }
    if (under_token) {
      under_token();  // observer edges stay deterministically ordered
    }
    st_.clock.ReleaseToken(tid_);
    Ws().FinishTwoPhase(pc);  // parallel in virtual time
    Ws().UpdateTo(target);    // deterministic prefix target
    r.version_knowledge = std::max(r.version_knowledge, target);
    r.last_commit_count = st_.clock.Count(tid_);
    st_.seg.Gc(st_.cfg.nthreads);
  }

  // ---- Coarsening (§3.1) ----------------------------------------------------

  bool CoarseningOn() const {
    return st_.fl.allow_coarsening &&
           (st_.cfg.adaptive_coarsening || st_.cfg.static_coarsen_level > 0);
  }

  bool CoarsenFits(u64 next_estimate) {
    if (st_.cfg.adaptive_coarsening) {
      return Rec().coarsen_total + next_estimate <= Rec().max_chunk;
    }
    return Rec().coarsen_ops < st_.cfg.static_coarsen_level;
  }

  bool StartFits(u64 next_estimate) {
    if (!CoarseningOn()) {
      return false;
    }
    if (st_.cfg.adaptive_coarsening) {
      return next_estimate <= Rec().max_chunk;
    }
    return st_.cfg.static_coarsen_level > 0;
  }

  void StartCoarsen() {
    ThreadRec& r = Rec();
    r.coarsen_active = true;
    r.coarsen_total = 0;
    r.coarsen_ops = 0;
  }

  // Ends a coarsened chunk: one commit covering everything, then the token is
  // finally released. Caller must hold the token (coarsen_active).
  void EndCoarsenCommitRelease() {
    CSQ_CHECK(Rec().coarsen_active);
    CommitUpdateGc();
    if (st_.race_an != nullptr) {
      // The chunk's covering commit now exists: re-join releases the chunk
      // emitted before it reserved, so their edges carry it (race::HbTracker).
      st_.race_an->FlushDeferredReleases(tid_);
    }
    st_.clock.ReleaseToken(tid_);
    Rec().coarsen_active = false;
  }

  void MaybeEndCoarsen() {
    if (Rec().coarsen_active) {
      EndCoarsenCommitRelease();
    }
  }

  // §3.1's multiplicative-increase/decrease adaptation of the max coarsened
  // chunk length: consecutive coordinations by the same thread double it,
  // alternation halves it. Called while holding the token.
  void NoteCoordination() {
    if (!st_.cfg.adaptive_coarsening) {
      return;
    }
    ThreadRec& r = Rec();
    if (st_.last_coord_tid == tid_) {
      r.max_chunk = std::min(r.max_chunk * 2, st_.cfg.max_coarsen_chunk);
    } else {
      r.max_chunk = std::max(r.max_chunk / 2, kMinMaxChunk);
    }
    st_.last_coord_tid = tid_;
  }

  // ---- Lock internals --------------------------------------------------------

  void AcquireLocked(DetMutex& mu, MutexId mid) {
    mu.locked = true;
    mu.owner = tid_;
    mu.acquire_count = st_.clock.Count(tid_);
    st_.eng.Trace(kTraceLockAcq, tid_, mid, st_.lock_seq++);
  }

  void EmitAcquire(MutexId mid) {
    if (st_.cfg.observer) {
      st_.cfg.observer->OnAcquire(tid_, SyncObjId(SyncObjKind::kMutex, mid));
    }
  }

  void EmitRelease(MutexId mid) {
    if (st_.cfg.observer) {
      st_.cfg.observer->OnRelease(tid_, SyncObjId(SyncObjKind::kMutex, mid));
    }
  }

  // The Figure-7 loop without the commit: returns holding the token with the
  // lock acquired. Callers commit (synchronously or asynchronously, §6) and
  // decide whether to keep the token. With kendo_polling_locks set, the
  // failure path is Kendo's original polling design instead of the paper's
  // blocking one: bump the clock past the GMIC, release the token, retry.
  void LockFig7Acquire(DetMutex& mu, MutexId mid) {
    for (;;) {
      st_.clock.WaitToken(tid_);
      // Clear any GC exemption (ours from the blocking path below, or the
      // caller's from a condvar wait) under the gate: the exempt flag is read
      // by other threads' gate-held GC watermark scans, so an un-gated clear
      // would make the reclaim amount a function of host timing.
      Ws().SetGcExempt(false);
      NoteCoordination();
      if (!mu.locked) {
        AcquireLocked(mu, mid);
        return;
      }
      if (st_.cfg.kendo_polling_locks) {
        st_.clock.ReleaseToken(tid_);
        st_.clock.ForceAdvance(tid_, st_.cfg.kendo_poll_increment);
        // Each poll costs a real retry through the deterministic order —
        // "many polling requests to check whether there is a new GMIC thread
        // to notify adds needless latency" (§4.1).
        st_.eng.Charge(st_.eng.Costs().token_acquire, TimeCat::kDetermWait);
        continue;
      }
      st_.clock.Depart(tid_);
      st_.clock.ReleaseToken(tid_);
      Ws().SetGcExempt(true);  // floor still held: released atomically by Wait
      st_.eng.Wait(mu.waiters, TimeCat::kDetermWait);
      // mutexUnlock re-admitted us (footnote 4) before waking us. The
      // exemption is cleared at the loop top, under the re-acquired gate.
    }
  }

  void ReleaseLockWake(DetMutex& mu) {
    mu.locked = false;
    mu.owner = sim::kInvalidThread;
    // Waiter lists are floor-protected: a blocking acquirer parks atomically
    // with its floor release, so a gate-held emptiness check can never miss a
    // waiter mid-park. The gate is already held on the token-ordered unlock
    // path but not on the coarsened fast path (token held, floor released at
    // the previous ExitLib).
    st_.eng.GateShared();
    if (!mu.waiters.Empty()) {
      WakeFirst(mu.waiters);
    }
  }

  // Deterministically wakes the first waiter of `ch`: re-admit it to GMIC
  // consideration (fast-forwarded to our clock) before the actual wake, while
  // we hold the token — the paper's footnote-4 discipline.
  void WakeFirst(WaitChannel& ch) {
    CSQ_CHECK(!ch.Empty());
    const u32 w = ch.waiters.front();
    st_.clock.ArriveAt(w, st_.clock.Count(tid_));
    st_.eng.NotifyOne(ch);
  }

  State& st_;
  u32 tid_;
};

// Interposes on the run's SyncObserver stream to feed the race analyzer's
// happens-before classifier, forwarding every event to the user's observer
// unchanged. Installed into st.cfg.observer AFTER State construction, so the
// token grant/release hooks (bound to the original observer in
// MakeClockConfig) bypass it: token grants are deliberately not
// happens-before edges (see src/race/hb.h).
class RaceSyncFanout final : public SyncObserver {
 public:
  RaceSyncFanout(State& st, race::Analyzer& an, SyncObserver* user)
      : st_(st), an_(an), user_(user) {}

  void OnAcquire(u32 tid, u64 object) override {
    an_.OnSyncAcquire(tid, object);
    if (user_ != nullptr) {
      user_->OnAcquire(tid, object);
    }
  }

  void OnRelease(u32 tid, u64 object) override {
    // A release emitted inside a coarsened chunk precedes its covering
    // commit; the analyzer re-joins it at the chunk-ending flush
    // (FlushDeferredReleases).
    an_.OnSyncRelease(tid, object, st_.threads[tid].coarsen_active);
    if (user_ != nullptr) {
      user_->OnRelease(tid, object);
    }
  }

  void OnCommit(u32 tid, const std::vector<u32>& pages) override {
    if (user_ != nullptr) {
      user_->OnCommit(tid, pages);
    }
  }

  void OnTokenGrant(u32 tid, u64 count, u64 seq) override {
    if (user_ != nullptr) {
      user_->OnTokenGrant(tid, count, seq);
    }
  }

  void OnTokenRelease(u32 tid, u64 count, u64 seq) override {
    if (user_ != nullptr) {
      user_->OnTokenRelease(tid, count, seq);
    }
  }

  void OnCommitVersion(u32 tid, u64 version, const std::vector<u32>& pages) override {
    if (user_ != nullptr) {
      user_->OnCommitVersion(tid, version, pages);
    }
  }

  void OnUpdate(u32 tid, u64 from, u64 to, u64 pages_refreshed) override {
    if (user_ != nullptr) {
      user_->OnUpdate(tid, from, to, pages_refreshed);
    }
  }

  void OnMergeDecision(u32 tid, u32 page, u64 version, u64 base_version, u64 bytes,
                       bool rebase) override {
    if (user_ != nullptr) {
      user_->OnMergeDecision(tid, page, version, base_version, bytes, rebase);
    }
  }

 private:
  State& st_;
  race::Analyzer& an_;
  SyncObserver* user_;
};

}  // namespace

DetRuntime::DetRuntime(Backend b, RuntimeConfig cfg)
    : backend_(b), cfg_(std::move(cfg)), flavor_(FlavorFor(b)) {
  if (flavor_.discard_update) {
    // DThreads' mprotect-based isolation: every fence re-protects the whole
    // working set, commits diff against twin pages in user space, and every
    // first touch after a fence takes a hard protection fault. Conversion's
    // kernel versioning (DWC and Consequence) avoids most of this — the
    // motivating result of the Conversion paper [23].
    cfg_.costs.commit_fixed *= 2;
    cfg_.costs.commit_per_page *= 3;
    cfg_.costs.page_fault *= 2;
    cfg_.costs.page_fetch *= 2;
    cfg_.costs.update_fixed *= 2;
  }
}

RunResult DetRuntime::Run(const WorkloadFn& fn) {
  WallTimer wall;
  State st(cfg_, flavor_);
  if (SyncObserver* obs = cfg_.observer) {
    // Canonical-trace plumbing for the TSO determinism oracle: commit
    // versions, updates and merge decisions flow from the Conversion layer
    // into the run's observer (token grants/releases flow via ClockConfig).
    st.seg.SetCommitObserver([obs](const conv::CommitRecord& rec) {
      obs->OnCommitVersion(rec.tid, rec.version, rec.pages);
    });
    conv::Segment::TraceHooks hooks;
    hooks.on_update = [obs](u32 tid, u64 from, u64 to, u64 pages_changed) {
      obs->OnUpdate(tid, from, to, pages_changed);
    };
    hooks.on_merge = [obs](u32 tid, u32 page, u64 version, u64 base_version, u64 bytes,
                           bool rebase) {
      obs->OnMergeDecision(tid, page, version, base_version, bytes, rebase);
    };
    st.seg.SetTraceHooks(std::move(hooks));
  }
  std::unique_ptr<race::Analyzer> analyzer;
  std::unique_ptr<RaceSyncFanout> race_fanout;
  if (cfg_.race.enabled) {
    analyzer = std::make_unique<race::Analyzer>(cfg_.race);
    analyzer->SetPageSize(cfg_.segment.page_size);
    // Sites resolve at emission time (off-floor resolve threads), so the
    // resolver must be wired before the run and guard the allocator's tag
    // list against concurrent gate-held SharedAlloc appends.
    analyzer->SetSiteResolver([&st](u64 offset) {
      std::lock_guard<std::mutex> lk(st.alloc_mu);
      return std::string(st.alloc.TagAt(offset));
    });
    if (!cfg_.race.suppressions_path.empty()) {
      std::string err;
      if (!analyzer->LoadSuppressions(cfg_.race.suppressions_path, &err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        CSQ_CHECK_MSG(false, "race suppression file failed to load");
      }
    }
    st.seg.SetRaceSink(analyzer.get());
    st.race_an = analyzer.get();
    // The fanout feeds lock/condvar/barrier/spawn-join edges to the
    // classifier; DApi reads st.cfg.observer dynamically, so swapping it here
    // reaches every emission site. GateShared/EndShared charge no virtual
    // time, so attaching it never perturbs vtime/checksum/trace_digest.
    race_fanout = std::make_unique<RaceSyncFanout>(st, *analyzer, cfg_.observer);
    st.cfg.observer = race_fanout.get();
  }
  st.clock.RegisterThread(0, 0);
  ThreadRec& main_rec = st.threads.EmplaceBack();
  main_rec.ws = std::make_unique<conv::Workspace>(st.seg, 0);
  main_rec.ws->SetDiscardOnUpdate(flavor_.discard_update);
  if (cfg_.race.enabled && cfg_.race.track_reads) {
    main_rec.ws->SetTrackReads(true);
  }
  main_rec.api = std::make_unique<DApi>(st, 0);
  u64 checksum = 0;
  const u32 main_tid = st.eng.Spawn([&] {
    checksum = fn(*st.threads[0].api);
    st.threads[0].api->ExitProtocol();
  });
  CSQ_CHECK(main_tid == 0);
  st.eng.Run();

  RunResult res;
  res.backend = backend_;
  res.nthreads = cfg_.nthreads;
  res.vtime = st.eng.CompletionVtime();
  res.checksum = checksum;
  res.trace_digest = st.eng.TraceDigest();
  res.trace_events = st.eng.TraceEvents();
  res.peak_mem_bytes = st.seg.Stats().peak_page_bytes;
  res.commits = st.seg.Stats().commits;
  res.pages_committed = st.seg.Stats().pages_committed;
  res.pages_merged = st.seg.Stats().pages_merged;
  res.floor_held_commit_ns = st.seg.Stats().floor_held_commit_ns;
  res.offfloor_commit_ns = st.seg.Stats().offfloor_commit_ns;
  res.offfloor_pages_installed = st.seg.Stats().offfloor_pages_installed;
  res.floor = st.eng.FloorStats();
  res.domain_floors = st.eng.DomainFloorStats();
  res.sched = st.eng.SchedStats();
  res.simd_level = simd::LevelName(simd::ActiveLevel());
  res.token_acquires = st.clock.Stats().token_acquires;
  res.fast_forwards = st.clock.Stats().fast_forwards;
  res.overflows = st.clock.Stats().overflows;
  for (usize i = 0; i < st.threads.size(); ++i) {
    const ThreadRec& t = st.threads[i];
    if (t.ws) {
      res.pages_propagated += t.ws->Stats().pages_propagated;
      res.cow_faults += t.ws->Stats().cow_faults;
    }
  }
  res.cat_by_thread.resize(st.eng.ThreadCount());
  for (u32 t = 0; t < st.eng.ThreadCount(); ++t) {
    for (usize c = 0; c < sim::kNumTimeCats; ++c) {
      const u64 v = st.eng.CatTotal(t, static_cast<TimeCat>(c));
      res.cat_by_thread[t][c] = v;
      res.cat_totals[c] += v;
    }
  }
  if (analyzer) {
    // Rebase/RW conflicts of threads that never committed again have no seal
    // to fire at; first-exit mode resolves them here, after the engine drains.
    analyzer->EndOfRunFlush();
    race::Report rep = analyzer->Finalize();
    u64 ww_records = 0;
    u64 rw_records = 0;
    for (const race::RaceRecord& r : rep.records) {
      (r.kind == race::AccessKind::kWriteWrite ? ww_records : rw_records) += 1;
    }
    st.seg.NoteRaceRecords(ww_records, rw_records);
    res.races = std::move(rep.records);
    res.race_ww = rep.ww;
    res.race_rw = rep.rw;
    res.race_dropped = rep.dropped;
    res.race_racy = rep.racy_records;
    res.race_ordered = rep.ordered_records;
    res.race_suppressed = rep.suppressed_records;
  }
  res.host_wall_ns = static_cast<u64>(wall.ElapsedNs());
  return res;
}

}  // namespace csq::rt
