// The deterministic runtime family.
//
// One parameterized implementation covers all four deterministic backends; the
// DetFlavor flags select which mechanisms are active:
//
//                     ordering   update-on-fence   locks        coarsening etc.
//   DThreads          RR         discard-all       one global   none
//   DWC               RR         incremental       one global   none
//   Consequence-RR    RR         incremental       per-object   all §3 opts
//   Consequence-IC    GMIC       incremental       per-object   all §3 opts
//
// The synchronization algorithms follow the paper exactly:
//   * mutexLock / mutexUnlock per Figures 7-9, including clockDepart() for
//     blocking waiters and the footnote-4 deterministic wake (the unlocker
//     re-admits the woken thread to GMIC consideration while it still holds
//     the token).
//   * condition variables via the same depart/commit/wake machinery.
//   * barriers via Conversion's two-phase commit: phase one (version + merge
//     order reservation) under the token, phase two (page merges + installs)
//     token-free and parallel in virtual time, then a non-deterministic
//     internal barrier and a deterministic update to the recorded release
//     version (§4.2).
//   * adaptive coarsening (§3.1): per-lock EWMA estimates for coarsening lock
//     operations, a thread-local EWMA for coarsening unlock operations, and a
//     multiplicative-increase/decrease max-chunk-length adaptation driven by
//     whether the same thread performed consecutive global coordinations.
//   * thread reuse pool (§3.3), user-space counter reads (§3.4), fast-forward
//     (§3.5), adaptive counter overflow (§3.2) and the §2.7 chunk-limit
//     mechanism for ad-hoc synchronization.
#pragma once

#include "src/rt/api.h"

namespace csq::rt {

struct DetFlavor {
  clk::OrderPolicy policy = clk::OrderPolicy::kInstructionCount;
  bool discard_update = false;      // DThreads mprotect-style fences
  bool single_global_lock = false;  // DThreads/DWC lock treatment
  bool allow_coarsening = false;
  bool counter_read_costs = false;  // IC ordering pays for counter reads
  bool allow_parallel_barrier = false;
  bool allow_thread_reuse = false;
  bool adaptive_overflow = false;
  bool fast_forward = false;
};

// Flavor presets per backend (Consequence presets still honour the per-
// optimization switches in RuntimeConfig, for the Fig 13/14 ablations).
DetFlavor FlavorFor(Backend b);

class DetRuntime : public Runtime {
 public:
  DetRuntime(Backend b, RuntimeConfig cfg);

  RunResult Run(const WorkloadFn& fn) override;

 private:
  Backend backend_;
  RuntimeConfig cfg_;
  DetFlavor flavor_;
};

}  // namespace csq::rt
