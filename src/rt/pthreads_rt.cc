#include "src/rt/pthreads_rt.h"

#include <cstring>
#include <deque>
#include <memory>

#include "src/conv/alloc.h"
#include "src/sim/engine.h"
#include "src/util/check.h"
#include "src/util/stats.h"

namespace csq::rt {
namespace {

using sim::Engine;
using sim::TimeCat;
using sim::WaitChannel;

constexpr u64 kTraceLock = 0x20;
constexpr u64 kTraceBarrier = 0x21;

struct PtMutex {
  bool locked = false;
  WaitChannel ch;
};

struct PtCond {
  WaitChannel ch;
};

struct PtBarrier {
  u32 parties = 0;
  u32 reached = 0;
  u64 generation = 0;
  WaitChannel ch;
};

struct PtThread {
  bool done = false;
  WaitChannel done_ch;
};

struct State {
  explicit State(const RuntimeConfig& cfg)
      : eng(sim::SimConfig{cfg.costs, cfg.sim_stack_bytes}),
        flat(cfg.segment.size_bytes, 0),
        alloc(cfg.segment.size_bytes) {}

  Engine eng;
  std::vector<u8> flat;
  conv::BumpAllocator alloc;
  std::deque<PtMutex> mutexes;
  std::deque<PtCond> conds;
  std::deque<PtBarrier> barriers;
  std::deque<PtThread> threads;
  std::deque<std::unique_ptr<ThreadApi>> apis;  // stable per-thread API handles
  u64 lock_seq = 0;
};

class PtApi final : public ThreadApi {
 public:
  PtApi(State& st, const RuntimeConfig& cfg, u32 tid) : st_(st), cfg_(cfg), tid_(tid) {}

  u32 Tid() const override { return tid_; }
  u32 NumThreads() const override { return cfg_.nthreads; }
  u64 Now() const override { return st_.eng.Now(); }

  void Work(u64 units) override {
    st_.eng.Charge(units * st_.eng.Costs().work_unit, TimeCat::kChunk);
  }

  // Direct, un-isolated shared memory: racy accesses observe whatever the
  // (jitter-dependent) interleaving produced.
  void LoadBytes(u64 addr, void* out, usize n) override {
    CSQ_CHECK(addr + n <= st_.flat.size());
    st_.eng.Charge(std::max<u64>(1, n / 8) * st_.eng.Costs().mem_op, TimeCat::kChunk);
    std::memcpy(out, st_.flat.data() + addr, n);
  }

  void StoreBytes(u64 addr, const void* in, usize n) override {
    CSQ_CHECK(addr + n <= st_.flat.size());
    st_.eng.Charge(std::max<u64>(1, n / 8) * st_.eng.Costs().mem_op, TimeCat::kChunk);
    std::memcpy(st_.flat.data() + addr, in, n);
  }

  u64 AtomicRmw(u64 addr, RmwOp op, u64 operand) override {
    st_.eng.GateShared();  // hardware atomics serialize in (virtual) time order
    st_.eng.Charge(st_.eng.Costs().pthread_lock_op, TimeCat::kLibrary);
    u64 old = 0;
    std::memcpy(&old, st_.flat.data() + addr, sizeof(old));
    u64 next = old;
    switch (op) {
      case RmwOp::kAdd:
        next = old + operand;
        break;
      case RmwOp::kExchange:
        next = operand;
        break;
      case RmwOp::kMax:
        next = std::max(old, operand);
        break;
    }
    std::memcpy(st_.flat.data() + addr, &next, sizeof(next));
    return old;
  }

  // Memory is shared directly, so a fence is just the hardware MFENCE: a
  // serialization point in (virtual) time plus a small charge.
  void Fence() override {
    st_.eng.GateShared();
    st_.eng.Charge(st_.eng.Costs().pthread_lock_op, TimeCat::kLibrary);
  }

  u64 SharedAlloc(usize n, usize align, std::string_view tag) override {
    st_.eng.GateShared();
    return st_.alloc.Alloc(n, align, tag);
  }

  MutexId CreateMutex() override {
    st_.eng.GateShared();
    st_.mutexes.emplace_back();
    return static_cast<MutexId>(st_.mutexes.size() - 1);
  }

  CondId CreateCond() override {
    st_.eng.GateShared();
    st_.conds.emplace_back();
    return static_cast<CondId>(st_.conds.size() - 1);
  }

  BarrierId CreateBarrier(u32 parties) override {
    st_.eng.GateShared();
    st_.barriers.emplace_back();
    st_.barriers.back().parties = parties;
    return static_cast<BarrierId>(st_.barriers.size() - 1);
  }

  void Lock(MutexId m) override {
    st_.eng.GateShared();
    st_.eng.Charge(st_.eng.Costs().pthread_lock_op, TimeCat::kLibrary);
    PtMutex& mu = st_.mutexes[m];
    while (mu.locked) {
      st_.eng.Wait(mu.ch, TimeCat::kLockWait);
      st_.eng.GateShared();
    }
    mu.locked = true;
    st_.eng.Trace(kTraceLock, tid_, m, st_.lock_seq++);
  }

  void Unlock(MutexId m) override {
    st_.eng.GateShared();
    st_.eng.Charge(st_.eng.Costs().pthread_lock_op, TimeCat::kLibrary);
    PtMutex& mu = st_.mutexes[m];
    CSQ_CHECK_MSG(mu.locked, "unlock of unlocked pthreads mutex");
    mu.locked = false;
    st_.eng.NotifyOne(mu.ch);
  }

  void CondWait(CondId c, MutexId m) override {
    st_.eng.GateShared();
    st_.eng.Charge(st_.eng.Costs().pthread_cv_op, TimeCat::kLibrary);
    PtMutex& mu = st_.mutexes[m];
    CSQ_CHECK(mu.locked);
    mu.locked = false;
    st_.eng.NotifyOne(mu.ch);
    st_.eng.Wait(st_.conds[c].ch, TimeCat::kLockWait);
    Lock(m);
  }

  void CondSignal(CondId c) override {
    st_.eng.GateShared();
    st_.eng.Charge(st_.eng.Costs().pthread_cv_op, TimeCat::kLibrary);
    st_.eng.NotifyOne(st_.conds[c].ch);
  }

  void CondBroadcast(CondId c) override {
    st_.eng.GateShared();
    st_.eng.Charge(st_.eng.Costs().pthread_cv_op, TimeCat::kLibrary);
    st_.eng.NotifyAll(st_.conds[c].ch);
  }

  void BarrierWait(BarrierId b) override {
    st_.eng.GateShared();
    st_.eng.Charge(st_.eng.Costs().pthread_barrier_op, TimeCat::kLibrary);
    PtBarrier& bar = st_.barriers[b];
    ++bar.reached;
    if (bar.reached == bar.parties) {
      bar.reached = 0;
      ++bar.generation;
      st_.eng.Trace(kTraceBarrier, tid_, b, bar.generation);
      st_.eng.NotifyAll(bar.ch);
      return;
    }
    const u64 gen = bar.generation;
    while (gen == bar.generation) {
      st_.eng.Wait(bar.ch, TimeCat::kBarrierWait);
      st_.eng.GateShared();
    }
  }

  ThreadHandle SpawnThread(std::function<void(ThreadApi&)> fn) override;
  void JoinThread(ThreadHandle h) override;

 private:
  State& st_;
  const RuntimeConfig& cfg_;
  u32 tid_;
};

ThreadHandle PtApi::SpawnThread(std::function<void(ThreadApi&)> fn) {
  st_.eng.GateShared();
  st_.eng.Charge(st_.eng.Costs().pthread_spawn, TimeCat::kLibrary);
  st_.threads.emplace_back();
  const u32 child = static_cast<u32>(st_.apis.size());
  st_.apis.push_back(std::make_unique<PtApi>(st_, cfg_, child));
  ThreadApi* api = st_.apis.back().get();
  State* st = &st_;
  const u32 spawned = st_.eng.Spawn([st, api, child, fn = std::move(fn)] {
    fn(*api);
    st->eng.GateShared();
    st->threads[child].done = true;
    st->eng.NotifyAll(st->threads[child].done_ch);
  });
  CSQ_CHECK(spawned == child);
  return child;
}

void PtApi::JoinThread(ThreadHandle h) {
  st_.eng.GateShared();
  st_.eng.Charge(st_.eng.Costs().pthread_join, TimeCat::kLibrary);
  while (!st_.threads[h].done) {
    st_.eng.Wait(st_.threads[h].done_ch, TimeCat::kLockWait);
    st_.eng.GateShared();
  }
}

}  // namespace

RunResult PthreadsRuntime::Run(const WorkloadFn& fn) {
  // RuntimeConfig::host_workers is deliberately ignored here: pthreads
  // threads memcpy shared pages directly (no isolated local segments), so the
  // baseline always runs on the serial reference engine.
  WallTimer wall;
  State st(cfg_);
  st.threads.emplace_back();  // main thread record
  st.apis.push_back(std::make_unique<PtApi>(st, cfg_, 0));
  u64 checksum = 0;
  ThreadApi* main_api = st.apis.front().get();
  const u32 main_tid = st.eng.Spawn([&, main_api] { checksum = fn(*main_api); });
  CSQ_CHECK(main_tid == 0);
  st.eng.Run();

  RunResult res;
  res.backend = Backend::kPthreads;
  res.nthreads = cfg_.nthreads;
  res.vtime = st.eng.CompletionVtime();
  res.checksum = checksum;
  res.trace_digest = st.eng.TraceDigest();
  res.trace_events = st.eng.TraceEvents();
  res.peak_mem_bytes = st.alloc.Used();
  res.cat_by_thread.resize(st.eng.ThreadCount());
  for (u32 t = 0; t < st.eng.ThreadCount(); ++t) {
    for (usize c = 0; c < sim::kNumTimeCats; ++c) {
      const u64 v = st.eng.CatTotal(t, static_cast<TimeCat>(c));
      res.cat_by_thread[t][c] = v;
      res.cat_totals[c] += v;
    }
  }
  res.host_wall_ns = static_cast<u64>(wall.ElapsedNs());
  return res;
}

}  // namespace csq::rt
