// Nondeterministic pthreads baseline.
//
// Threads share one flat memory array with no isolation; locks, condition
// variables and barriers are granted in virtual-time arrival order. Under
// cost-model jitter the arrival order changes, so racy programs produce
// different results across jitter seeds — the control for the determinism
// experiments, and the normalization denominator for every figure.
#pragma once

#include "src/rt/api.h"

namespace csq::rt {

class PthreadsRuntime : public Runtime {
 public:
  explicit PthreadsRuntime(RuntimeConfig cfg) : cfg_(std::move(cfg)) {}

  RunResult Run(const WorkloadFn& fn) override;

 private:
  RuntimeConfig cfg_;
};

}  // namespace csq::rt
