// A deterministic reader-writer lock built from the public ThreadApi.
//
// pthreads programs use pthread_rwlock_t; a DMT runtime must either intercept
// it or (as DThreads and Consequence do for anything beyond the core
// primitives) provide it as a library over the deterministic mutex/condvar.
// This is the classic writer-preference rwlock: shared state (reader count,
// writer flag, waiting-writer count) lives in the shared segment, so the
// whole construction is deterministic on every backend.
#pragma once

#include "src/rt/api.h"

namespace csq::rt {

class RwLock {
 public:
  explicit RwLock(ThreadApi& api)
      : state_(api.SharedAlloc(24)),
        m_(api.CreateMutex()),
        readers_cv_(api.CreateCond()),
        writers_cv_(api.CreateCond()) {}

  void ReadLock(ThreadApi& t) {
    t.Lock(m_);
    // Writer preference: readers yield to waiting writers.
    while (t.Load<u64>(Writer()) != 0 || t.Load<u64>(WaitingWriters()) != 0) {
      t.CondWait(readers_cv_, m_);
    }
    t.Store<u64>(Readers(), t.Load<u64>(Readers()) + 1);
    t.Unlock(m_);
  }

  void ReadUnlock(ThreadApi& t) {
    t.Lock(m_);
    const u64 r = t.Load<u64>(Readers());
    t.Store<u64>(Readers(), r - 1);
    if (r == 1 && t.Load<u64>(WaitingWriters()) != 0) {
      t.CondSignal(writers_cv_);
    }
    t.Unlock(m_);
  }

  void WriteLock(ThreadApi& t) {
    t.Lock(m_);
    t.Store<u64>(WaitingWriters(), t.Load<u64>(WaitingWriters()) + 1);
    while (t.Load<u64>(Writer()) != 0 || t.Load<u64>(Readers()) != 0) {
      t.CondWait(writers_cv_, m_);
    }
    t.Store<u64>(WaitingWriters(), t.Load<u64>(WaitingWriters()) - 1);
    t.Store<u64>(Writer(), 1);
    t.Unlock(m_);
  }

  void WriteUnlock(ThreadApi& t) {
    t.Lock(m_);
    t.Store<u64>(Writer(), 0);
    if (t.Load<u64>(WaitingWriters()) != 0) {
      t.CondSignal(writers_cv_);
    } else {
      t.CondBroadcast(readers_cv_);
    }
    t.Unlock(m_);
  }

 private:
  u64 Readers() const { return state_; }
  u64 Writer() const { return state_ + 8; }
  u64 WaitingWriters() const { return state_ + 16; }

  u64 state_;
  MutexId m_;
  CondId readers_cv_;
  CondId writers_cv_;
};

}  // namespace csq::rt
