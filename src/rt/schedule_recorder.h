// Schedule recording and diffing.
//
// Deterministic execution makes record/replay trivial — the schedule IS a
// function of the program — so the useful tool is the inverse: when two runs
// that should be identical are not (a runtime bug, an unintended
// nondeterminism source, a config drift), find the first point where their
// schedules diverge. ScheduleRecorder captures the full ordered stream of
// synchronization events (the same stream the LRC tracker consumes);
// FirstDivergence reports where two recordings part ways.
//
// This is also how this repository's own determinism bugs were found.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/rt/api.h"

namespace csq::rt {

struct SchedEvent {
  enum class Kind : u8 { kAcquire, kRelease, kCommit };
  Kind kind{};
  u32 tid = 0;
  u64 object = 0;       // sync object id, or page count for commits
  u64 first_page = 0;   // commits: first page index (0 if none)

  bool operator==(const SchedEvent&) const = default;

  std::string ToString() const {
    std::ostringstream oss;
    switch (kind) {
      case Kind::kAcquire:
        oss << "acquire";
        break;
      case Kind::kRelease:
        oss << "release";
        break;
      case Kind::kCommit:
        oss << "commit";
        break;
    }
    oss << " tid=" << tid;
    if (kind == Kind::kCommit) {
      oss << " pages=" << object << " first=" << first_page;
    } else {
      static constexpr const char* kKinds[] = {"mutex", "cond", "barrier", "thread"};
      const u64 ns = object >> 32;
      oss << " obj=" << (ns < 4 ? kKinds[ns] : "?") << ":" << (object & 0xffffffff);
    }
    return oss.str();
  }
};

class ScheduleRecorder : public SyncObserver {
 public:
  void OnAcquire(u32 tid, u64 object) override {
    events_.push_back({SchedEvent::Kind::kAcquire, tid, object, 0});
  }
  void OnRelease(u32 tid, u64 object) override {
    events_.push_back({SchedEvent::Kind::kRelease, tid, object, 0});
  }
  void OnCommit(u32 tid, const std::vector<u32>& pages) override {
    events_.push_back({SchedEvent::Kind::kCommit, tid, pages.size(),
                       pages.empty() ? 0 : pages.front()});
  }

  const std::vector<SchedEvent>& Events() const { return events_; }
  void Clear() { events_.clear(); }

 private:
  std::vector<SchedEvent> events_;
};

struct Divergence {
  usize index = 0;
  std::string left;   // "<end>" when one stream is a prefix of the other
  std::string right;
};

// First index at which two recorded schedules differ, or nullopt if equal.
inline std::optional<Divergence> FirstDivergence(const std::vector<SchedEvent>& a,
                                                 const std::vector<SchedEvent>& b) {
  const usize n = std::min(a.size(), b.size());
  for (usize i = 0; i < n; ++i) {
    if (!(a[i] == b[i])) {
      return Divergence{i, a[i].ToString(), b[i].ToString()};
    }
  }
  if (a.size() != b.size()) {
    return Divergence{n, n < a.size() ? a[n].ToString() : "<end>",
                      n < b.size() ? b[n].ToString() : "<end>"};
  }
  return std::nullopt;
}

}  // namespace csq::rt
