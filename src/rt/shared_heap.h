// A deterministic dynamic allocator for shared memory.
//
// Runtime-managed DMT systems need deterministic malloc/free for shared data
// (DThreads ships one; Conversion segments need one for programs that
// allocate after their threads start). This is a segregated free-list
// allocator whose metadata lives IN the shared segment itself and whose
// operations are ordinary ThreadApi loads/stores under a deterministic mutex
// — so allocation addresses are a deterministic function of the allocation
// sequence, on every backend.
//
// Layout (all offsets relative to the region this heap manages):
//   [0,            8*kBins)   free-list heads, one u64 per size class
//   [8*kBins,      +8)        bump pointer for never-freed space
//   [...,          end)       blocks: 8-byte header (size class) + payload
//
// Size classes are powers of two from 16 bytes to 64 KiB. Free blocks are
// chained through their payload's first word. No coalescing (classes are
// exact), which keeps every operation O(1) and — more importantly here —
// deterministic and cheap under isolation (every op touches at most two
// cache pages: the class head and the block header).
#pragma once

#include "src/rt/api.h"
#include "src/util/check.h"

namespace csq::rt {

class SharedHeap {
 public:
  static constexpr u32 kMinShift = 4;   // 16 B
  static constexpr u32 kMaxShift = 16;  // 64 KiB
  static constexpr u32 kBins = kMaxShift - kMinShift + 1;

  // Carves a heap out of `capacity` bytes of shared memory. Call from one
  // thread (typically main, before spawning) — creation itself allocates the
  // region and initializes metadata.
  SharedHeap(ThreadApi& api, usize capacity)
      : base_(api.SharedAlloc(capacity, 4096)),
        capacity_(capacity),
        lock_(api.CreateMutex()) {
    CSQ_CHECK_MSG(capacity >= 4096, "heap too small");
    api.Store<u64>(base_ + 8 * kBins, DataStart());  // bump pointer
  }

  // Allocates `n` bytes (rounded up to the size class); returns the payload
  // address. CHECK-fails when out of memory (deterministically!).
  u64 Malloc(ThreadApi& t, usize n) {
    const u32 cls = ClassFor(n);
    const u64 head = base_ + 8 * cls;
    t.Lock(lock_);
    u64 block = t.Load<u64>(head);
    if (block != 0) {
      // Pop the free list.
      t.Store<u64>(head, t.Load<u64>(block + 8));
    } else {
      // Carve fresh space.
      const u64 bump = t.Load<u64>(base_ + 8 * kBins);
      const u64 size = 8 + (1ULL << (cls + kMinShift));
      CSQ_CHECK_MSG(bump + size <= base_ + capacity_, "SharedHeap out of memory");
      block = bump;
      t.Store<u64>(base_ + 8 * kBins, bump + size);
      t.Store<u64>(block, cls);
    }
    t.Unlock(lock_);
    return block + 8;
  }

  // Returns `addr` (a Malloc result) to its size-class free list.
  void Free(ThreadApi& t, u64 addr) {
    const u64 block = addr - 8;
    t.Lock(lock_);
    const u64 cls = t.Load<u64>(block);
    CSQ_CHECK_MSG(cls < kBins, "SharedHeap::Free of a non-heap or corrupted address");
    const u64 head = base_ + 8 * cls;
    t.Store<u64>(block + 8, t.Load<u64>(head));
    t.Store<u64>(head, block);
    t.Unlock(lock_);
  }

  // Bytes of payload the given request actually occupies.
  static usize UsableSize(usize n) { return 1ULL << (ClassFor(n) + kMinShift); }

  u64 Base() const { return base_; }

 private:
  static u32 ClassFor(usize n) {
    u32 cls = 0;
    while ((1ULL << (cls + kMinShift)) < n) {
      ++cls;
    }
    CSQ_CHECK_MSG(cls < kBins, "allocation of " << n << " bytes exceeds the 64 KiB class cap");
    return cls;
  }

  u64 DataStart() const {
    // Metadata, rounded up to 16 bytes.
    return base_ + ((8 * (kBins + 1) + 15) & ~15ULL);
  }

  u64 base_;
  usize capacity_;
  MutexId lock_;
};

}  // namespace csq::rt
