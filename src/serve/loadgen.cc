#include "src/serve/loadgen.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "src/util/check.h"

namespace csq::serve {

ZipfSampler::ZipfSampler(u64 n, double s) {
  CSQ_CHECK_MSG(n > 0, "Zipf sampler over an empty domain");
  cdf_.resize(n);
  double acc = 0.0;
  for (u64 k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (double& c : cdf_) {
    c /= acc;
  }
}

u64 ZipfSampler::Sample(DetRng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<u64>(std::min<std::ptrdiff_t>(it - cdf_.begin(),
                                                   static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

namespace {

// One not-yet-drained connection in the active window.
struct LiveSession {
  u64 session = 0;
  u64 tenant = 0;
  u64 remaining = 0;
};

}  // namespace

std::vector<Request> GenerateLoad(const LoadSpec& spec) {
  CSQ_CHECK(spec.min_requests >= 1 && spec.max_requests >= spec.min_requests);
  CSQ_CHECK(spec.put_pct + spec.scan_pct <= 100);
  DetRng rng(spec.seed);
  const ZipfSampler tenant_zipf(spec.tenants, spec.tenant_zipf_s);
  const ZipfSampler key_zipf(spec.keys_per_tenant, spec.key_zipf_s);

  std::vector<Request> log;
  std::deque<LiveSession> live;
  u64 arrivals = 0;

  auto admit = [&] {
    // Session identity: a logical user id plus an arrival nonce, so a user
    // reconnecting later is a NEW session (fresh connection state) even
    // though it hits the same tenant data.
    const u64 user = rng.Below(spec.users);
    LiveSession s;
    s.session = (arrivals << 40) | user;
    s.tenant = tenant_zipf.Sample(rng);
    s.remaining = rng.Range(spec.min_requests, spec.max_requests);
    ++arrivals;
    live.push_back(s);
  };

  while (arrivals < spec.sessions || !live.empty()) {
    while (live.size() < spec.churn_window && arrivals < spec.sessions) {
      admit();
    }
    // Pick a deterministic "whichever connection speaks next" — uniform over
    // the live window, so hot tenants interleave with cold ones.
    const usize pick = static_cast<usize>(rng.Below(live.size()));
    LiveSession& s = live[pick];
    Request r;
    r.tenant = s.tenant;
    r.session = s.session;
    r.key = key_zipf.Sample(rng);
    const u64 roll = rng.Below(100);
    if (roll < spec.put_pct) {
      r.op = Op::kPut;
      r.value = rng.Next() | 1;  // nonzero payload: 0 means "absent"
    } else if (roll < spec.put_pct + spec.scan_pct) {
      r.op = Op::kScan;
      r.value = rng.Range(2, 16);  // span
      r.key = r.key < 8 ? 0 : r.key - 8;
    } else {
      r.op = Op::kGet;
    }
    log.push_back(r);
    if (--s.remaining == 0) {
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  return log;
}

}  // namespace csq::serve
