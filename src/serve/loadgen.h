// Deterministic Zipf-skewed request-log generator for the serving layer.
//
// Models a multi-tenant population: millions of logical users spread over a
// tenant set with Zipfian popularity (a few hot tenants take most of the
// traffic), sessions (connections) arriving and leaving through a bounded
// active window (connection churn), and a get/put/scan op mix with hot-key
// skew inside each tenant's keyspace. Everything is driven by DetRng from a
// single seed — the same spec always produces the byte-identical log, so the
// log itself can stand in for the durable request journal in record/replay
// tests.
#pragma once

#include <vector>

#include "src/serve/serve.h"
#include "src/util/rng.h"
#include "src/util/types.h"

namespace csq::serve {

struct LoadSpec {
  u64 tenants = 64;
  double tenant_zipf_s = 1.1;  // tenant popularity skew exponent
  u64 users = 1 << 20;         // logical user population (session identity space)
  u64 sessions = 256;          // connections over the run
  u64 min_requests = 4;        // per-session request count range
  u64 max_requests = 24;
  u64 keys_per_tenant = 512;
  double key_zipf_s = 0.9;  // hot-key skew inside a tenant
  u32 put_pct = 20;         // op mix (remainder after put+scan is gets)
  u32 scan_pct = 5;
  u64 churn_window = 32;  // sessions concurrently interleaving in the log
  u64 seed = 42;
};

// Zipf(s) sampler over {0..n-1} via a precomputed CDF + binary search.
class ZipfSampler {
 public:
  ZipfSampler(u64 n, double s);

  u64 Sample(DetRng& rng) const;

 private:
  std::vector<double> cdf_;
};

// The full interleaved request log: sessions are admitted in arrival order
// into a `churn_window`-sized active set and their requests are interleaved
// (deterministically) until each session drains and the next one is admitted.
std::vector<Request> GenerateLoad(const LoadSpec& spec);

}  // namespace csq::serve
