#include "src/serve/serve.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/rt/rw_lock.h"
#include "src/rt/shared_heap.h"
#include "src/util/check.h"
#include "src/util/hash.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace csq::serve {
namespace {

// ---- Routing hash ----------------------------------------------------------

u64 MixTenant(u64 tenant) {
  u64 s = tenant ^ 0x7e57ab1e5eed5ULL;
  return SplitMix64(s);
}

// ---- The shard KV store ----------------------------------------------------
//
// Bucket-chained map in the shard's shared memory, same construction as
// examples/kv_store.cpp but multi-tenant: entries are keyed by a packed
// (tenant, key) word so tenants share the store without sharing keys. Entry
// layout (heap-allocated): [tkey u64][value u64][next u64]. A single
// writer-preference RwLock covers the store — gets (the common case) run
// concurrently, puts serialize; either way the grant order is deterministic.

constexpr u32 kTenantBits = 24;
constexpr u32 kKeyBits = 40;

u64 PackKey(u64 tenant, u64 key) {
  CSQ_CHECK_MSG(tenant < (1ULL << kTenantBits), "tenant id exceeds " << kTenantBits << " bits");
  CSQ_CHECK_MSG(key < (1ULL << kKeyBits), "key exceeds " << kKeyBits << " bits");
  return (tenant << kKeyBits) | key;
}

struct KvStore {
  KvStore(rt::ThreadApi& api, rt::SharedHeap* h, u32 nbuckets)
      : heap(h),
        buckets(nbuckets),
        base(api.SharedAlloc(static_cast<usize>(nbuckets) * 8, 4096, "serve.buckets")),
        lock(api) {}

  u64 Head(u64 tkey) const {
    u64 s = tkey ^ 0x9e3779b97f4a7c15ULL;
    return base + 8 * (SplitMix64(s) % buckets);
  }

  // Returns the previous value (0 on fresh insert).
  u64 Put(rt::ThreadApi& t, u64 tenant, u64 key, u64 value) {
    const u64 tkey = PackKey(tenant, key);
    const u64 head = Head(tkey);
    u64 old = 0;
    lock.WriteLock(t);
    u64 e = t.Load<u64>(head);
    for (; e != 0; e = t.Load<u64>(e + 16)) {
      if (t.Load<u64>(e) == tkey) {
        old = t.Load<u64>(e + 8);
        t.Store<u64>(e + 8, value);
        break;
      }
    }
    if (e == 0) {
      const u64 fresh = heap->Malloc(t, 24);
      t.Store<u64>(fresh, tkey);
      t.Store<u64>(fresh + 8, value);
      t.Store<u64>(fresh + 16, t.Load<u64>(head));
      t.Store<u64>(head, fresh);
    }
    lock.WriteUnlock(t);
    return old;
  }

  u64 LookupLocked(rt::ThreadApi& t, u64 tenant, u64 key) const {
    const u64 tkey = PackKey(tenant, key);
    for (u64 e = t.Load<u64>(Head(tkey)); e != 0; e = t.Load<u64>(e + 16)) {
      if (t.Load<u64>(e) == tkey) {
        return t.Load<u64>(e + 8);
      }
    }
    return 0;
  }

  u64 Get(rt::ThreadApi& t, u64 tenant, u64 key) {
    lock.ReadLock(t);
    const u64 v = LookupLocked(t, tenant, key);
    lock.ReadUnlock(t);
    return v;
  }

  // Sums values over [key, key + span) under one read lock: a consistent
  // range read against concurrent puts.
  u64 Scan(rt::ThreadApi& t, u64 tenant, u64 key, u64 span) {
    lock.ReadLock(t);
    u64 sum = 0;
    for (u64 k = 0; k < span; ++k) {
      sum += LookupLocked(t, tenant, key + k);
    }
    lock.ReadUnlock(t);
    return sum;
  }

  rt::SharedHeap* heap;
  u64 buckets;
  u64 base;
  rt::RwLock lock;
};

// ---- Session grouping ------------------------------------------------------

struct Session {
  u64 id = 0;
  std::vector<u32> reqs;  // indices into the shard log, in log order
};

std::vector<Session> GroupSessions(const std::vector<Request>& log) {
  std::vector<Session> out;
  std::unordered_map<u64, usize> index;
  for (u32 i = 0; i < log.size(); ++i) {
    auto [it, fresh] = index.emplace(log[i].session, out.size());
    if (fresh) {
      out.push_back(Session{log[i].session, {}});
    }
    out[it->second].reqs.push_back(i);
  }
  return out;
}

// ---- The shard workload ----------------------------------------------------
//
// Runs inside the deterministic simulation. Host-side result slots are safe
// without host synchronization: each slot is written by exactly one simulated
// thread, vectors are pre-sized (no reallocation), and the engine's
// join/completion edges give the reader happens-before.

struct ShardUniverse {
  const ServeConfig* cfg = nullptr;
  const std::vector<Request>* log = nullptr;
  const std::vector<Session>* sessions = nullptr;
  ShardResult* out = nullptr;

  u64 SessionTag(u64 session_id) const {
    u64 s = session_id ^ 0x5e551011c0ffeeULL;
    return SplitMix64(s) | 1;  // never 0: freshly carved scratch reads as 0
  }

  void RunSession(rt::ThreadApi& t, KvStore* kv, rt::SharedHeap* heap, usize si) const {
    const Session& s = (*sessions)[si];
    out->session_tids[si] = t.Tid();
    // Connection-scoped scratch: allocated on arrival, freed on departure.
    // The tag probe catches any cross-session aliasing of LIVE scratch; the
    // recorded address pins the allocator's deterministic reuse order.
    const u64 scratch = heap->Malloc(t, 64);
    out->session_scratch[si] = scratch;
    const u64 tag = SessionTag(s.id);
    t.Store<u64>(scratch, tag);
    for (const u32 ri : s.reqs) {
      const Request& rq = (*log)[ri];
      t.Work(cfg->work_per_request);  // parse / dispatch
      const u64 start = t.Now();
      u64 resp = 0;
      switch (rq.op) {
        case Op::kGet:
          resp = kv->Get(t, rq.tenant, rq.key);
          break;
        case Op::kPut:
          resp = kv->Put(t, rq.tenant, rq.key, rq.value);
          break;
        case Op::kScan:
          resp = kv->Scan(t, rq.tenant, rq.key, std::clamp<u64>(rq.value, 1, 64));
          break;
      }
      out->responses[ri] = resp;
      out->latencies[ri] = t.Now() - start;
      if (t.Load<u64>(scratch) != tag) {
        out->session_leaks[si] = 1;
      }
    }
    heap->Free(t, scratch);
  }

  // The universe's main thread: the acceptor. Admits sessions in arrival
  // order through a bounded live window (joining the oldest when full — the
  // churn that cycles the runtime's thread-reuse pool), then digests the
  // final store state.
  u64 operator()(rt::ThreadApi& api) const {
    rt::SharedHeap heap(api, cfg->heap_bytes);
    KvStore kv(api, &heap, cfg->kv_buckets);
    std::vector<rt::ThreadHandle> live;  // FIFO window of unjoined sessions
    usize oldest = 0;
    for (usize si = 0; si < sessions->size(); ++si) {
      if (live.size() - oldest >= cfg->max_live_sessions) {
        api.JoinThread(live[oldest++]);
      }
      const ShardUniverse* u = this;
      KvStore* kvp = &kv;
      rt::SharedHeap* hp = &heap;
      live.push_back(api.SpawnThread(
          [u, kvp, hp, si](rt::ThreadApi& t) { u->RunSession(t, kvp, hp, si); }));
    }
    for (; oldest < live.size(); ++oldest) {
      api.JoinThread(live[oldest]);
    }

    // Final state digest: walk every bucket chain. Chain order is part of the
    // digested state — it is a deterministic function of the insert order.
    Fnv1a state;
    for (u64 b = 0; b < kv.buckets; ++b) {
      for (u64 e = api.Load<u64>(kv.base + 8 * b); e != 0; e = api.Load<u64>(e + 16)) {
        state.Mix(api.Load<u64>(e));
        state.Mix(api.Load<u64>(e + 8));
      }
    }
    out->state_digest = state.Digest();

    // The workload checksum folds state and responses so RunResult::checksum
    // alone pins the full serving surface.
    Fnv1a all;
    all.Mix(state.Digest());
    for (const u64 r : out->responses) {
      all.Mix(r);
    }
    return all.Digest();
  }
};

rt::RuntimeConfig BuildRuntimeConfig(const ServeConfig& cfg) {
  rt::RuntimeConfig rc;
  rc.nthreads = cfg.max_live_sessions + 1;
  rc.segment.size_bytes = cfg.segment_bytes;
  rc.sim_stack_bytes = cfg.stack_bytes;
  rc.host_workers = cfg.host_workers;
  rc.thread_reuse = cfg.thread_reuse;
  rc.costs.jitter_seed = cfg.jitter_seed;
  rc.costs.jitter_bp = cfg.jitter_bp;
  return rc;
}

std::string Hex(u64 v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

// ---- Routing ---------------------------------------------------------------

u32 ShardFor(u64 tenant, u32 shards) {
  CSQ_CHECK_MSG(shards > 0, "router needs at least one shard");
  return static_cast<u32>(MixTenant(tenant) % shards);
}

std::vector<std::vector<Request>> RouteLog(const std::vector<Request>& log, u32 shards) {
  std::vector<std::vector<Request>> out(shards);
  for (const Request& r : log) {
    out[ShardFor(r.tenant, shards)].push_back(r);
  }
  return out;
}

// ---- Shard -----------------------------------------------------------------

Shard::Shard(u32 id, ServeConfig cfg) : id_(id), cfg_(std::move(cfg)) {}

ShardResult Shard::Serve(const std::vector<Request>& log) const {
  ShardResult out;
  out.shard = id_;
  out.requests = log.size();
  out.responses.assign(log.size(), 0);
  out.latencies.assign(log.size(), 0);
  const std::vector<Session> sessions = GroupSessions(log);
  out.session_tids.assign(sessions.size(), 0);
  out.session_scratch.assign(sessions.size(), 0);
  out.session_leaks.assign(sessions.size(), 0);

  rt::RuntimeConfig rc = BuildRuntimeConfig(cfg_);
  tso::TraceRecorder recorder;
  if (cfg_.record_trace) {
    rc.observer = &recorder;
  }
  ShardUniverse universe;
  universe.cfg = &cfg_;
  universe.log = &log;
  universe.sessions = &sessions;
  universe.out = &out;
  out.run = rt::MakeRuntime(cfg_.backend, rc)->Run(universe);
  if (cfg_.record_trace) {
    out.trace = recorder.TakeTrace();
  }

  Fnv1a resp;
  for (const u64 r : out.responses) {
    resp.Mix(r);
  }
  out.response_digest = resp.Digest();
  return out;
}

// ---- Record / replay -------------------------------------------------------

std::vector<std::pair<u32, u64>> CommitOrder(const tso::TsoTrace& t) {
  std::vector<std::pair<u32, u64>> order;
  for (const auto& stream : t.per_thread) {
    for (const tso::TsoEvent& e : stream) {
      if (e.kind == tso::TsoEventKind::kCommit) {
        order.emplace_back(e.tid, e.a);
      }
    }
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  return order;
}

std::string EncodeRecording(const ShardResult& r) {
  std::ostringstream os;
  os << "shard " << r.shard << " requests " << r.requests << "\n";
  for (usize t = 0; t < r.trace.per_thread.size(); ++t) {
    os << "thread " << t << " (" << r.trace.per_thread[t].size() << " events)\n";
    for (const tso::TsoEvent& e : r.trace.per_thread[t]) {
      os << "  " << e.ToString() << "\n";
    }
  }
  os << "grants (" << r.trace.grants.size() << ")\n";
  for (const tso::TsoEvent& e : r.trace.grants) {
    os << "  " << e.ToString() << "\n";
  }
  os << "commit-order\n";
  for (const auto& [tid, version] : CommitOrder(r.trace)) {
    os << "  tid=" << tid << " version=" << version << "\n";
  }
  os << "responses\n";
  for (usize i = 0; i < r.responses.size(); ++i) {
    os << "  " << i << "=" << Hex(r.responses[i]) << "\n";
  }
  os << "session-scratch\n";
  for (usize i = 0; i < r.session_scratch.size(); ++i) {
    os << "  " << i << "=" << Hex(r.session_scratch[i]) << " tid=" << r.session_tids[i]
       << "\n";
  }
  os << "response-digest " << Hex(r.response_digest) << "\n";
  os << "state-digest " << Hex(r.state_digest) << "\n";
  return os.str();
}

ReplayDiff CompareRecordings(const ShardResult& recorded, const ShardResult& replayed) {
  const tso::TraceDiff td = tso::DiffTraces(recorded.trace, replayed.trace);
  if (td.diverged) {
    return {false, "trace: " + td.description};
  }
  const auto ca = CommitOrder(recorded.trace);
  const auto cb = CommitOrder(replayed.trace);
  for (usize i = 0; i < std::min(ca.size(), cb.size()); ++i) {
    if (ca[i] != cb[i]) {
      std::ostringstream os;
      os << "commit-order[" << i << "]: recorded tid=" << ca[i].first
         << " version=" << ca[i].second << ", replayed tid=" << cb[i].first
         << " version=" << cb[i].second;
      return {false, os.str()};
    }
  }
  if (ca.size() != cb.size()) {
    std::ostringstream os;
    os << "commit-order length: recorded " << ca.size() << ", replayed " << cb.size();
    return {false, os.str()};
  }
  if (recorded.responses.size() != replayed.responses.size()) {
    std::ostringstream os;
    os << "response count: recorded " << recorded.responses.size() << ", replayed "
       << replayed.responses.size();
    return {false, os.str()};
  }
  for (usize i = 0; i < recorded.responses.size(); ++i) {
    if (recorded.responses[i] != replayed.responses[i]) {
      std::ostringstream os;
      os << "response[" << i << "]: recorded " << Hex(recorded.responses[i]) << ", replayed "
         << Hex(replayed.responses[i]);
      return {false, os.str()};
    }
  }
  if (recorded.response_digest != replayed.response_digest) {
    return {false, "response digest mismatch with equal responses (digest bug)"};
  }
  if (recorded.state_digest != replayed.state_digest) {
    std::ostringstream os;
    os << "state digest: recorded " << Hex(recorded.state_digest) << ", replayed "
       << Hex(replayed.state_digest);
    return {false, os.str()};
  }
  return {true, {}};
}

// ---- ShardServer -----------------------------------------------------------

ShardServer::ShardServer(ServeConfig cfg) : cfg_(std::move(cfg)) {}

ServeResult ShardServer::Serve(const std::vector<Request>& log) const {
  ServeResult out;
  out.requests = log.size();
  std::vector<std::vector<Request>> queues = RouteLog(log, cfg_.shards);
  out.shards.resize(cfg_.shards);

  WallTimer wall;
  const u32 workers = std::max(1u, std::min(cfg_.serve_threads, cfg_.shards));
  // Affinity-first claiming (DESIGN.md §16): worker w drains its affine
  // stripe (shard % workers == w) in id order before stealing unclaimed
  // shards, so consecutive shards of a worker reuse its warm host state and
  // steals happen only once a worker's own stripe is exhausted. Claiming is
  // host scheduling only — each shard is still one deterministic universe
  // whose results are independent of which worker runs it.
  std::vector<std::atomic<bool>> claimed(cfg_.shards);
  for (auto& c : claimed) {
    c.store(false, std::memory_order_relaxed);
  }
  auto try_run = [&](u32 shard) {
    if (claimed[shard].exchange(true, std::memory_order_relaxed)) {
      return;
    }
    out.shards[shard] = Shard(shard, cfg_).Serve(queues[shard]);
  };
  auto drain = [&](u32 wid) {
    for (u32 shard = wid; shard < cfg_.shards; shard += workers) {
      try_run(shard);  // affine stripe first
    }
    for (u32 shard = 0; shard < cfg_.shards; ++shard) {
      try_run(shard);  // then steal whatever is left, in id order
    }
  };
  if (workers == 1) {
    drain(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (u32 w = 0; w < workers; ++w) {
      pool.emplace_back(drain, w);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  out.wall_ns = static_cast<u64>(wall.ElapsedNs());

  Fnv1a digest;
  for (const ShardResult& s : out.shards) {
    digest.Mix(static_cast<u64>(s.shard));
    digest.Mix(s.response_digest);
    digest.Mix(s.state_digest);
  }
  out.response_digest = digest.Digest();
  return out;
}

}  // namespace csq::serve
