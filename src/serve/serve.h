// Deterministic multi-tenant serving shards (DESIGN.md §15).
//
// The production-scale consumer of the whole stack: the runtime is sharded
// into independent deterministic universes — one `sim::Engine` + segment set
// per shard — and request traffic is pushed through them. A stateless router
// hashes every request's TENANT to a shard (all of a tenant's sessions land
// in the same universe, so its data never straddles shards), and host-side
// worker threads drain per-shard request queues by running each shard's
// request handlers as simulated threads over the public rt::ThreadApi:
// sessions (logical connections) arrive in log order, execute their KV
// get/put/scan requests against the shard's shared-memory store, and leave —
// churning through the runtime's §3.3 thread-reuse pool.
//
// Determinism is the product feature. Given a shard's request log, the
// shard's synchronization trace, response stream, commit order and final
// state digest are bit-identical across engines (serial/threaded), host
// worker counts and timing jitter. That buys, for free:
//
//   * record/replay — the durable request log plus the recorded canonical
//     trace IS the recovery story: re-executing the log after a crash
//     reproduces the universe byte-for-byte (CompareRecordings names the
//     first divergent event if it ever does not);
//   * SMR-style failover — two hosts feeding the same log to the same shard
//     config hold identical replicas with no state shipping.
//
// Per-request latency is probed with ThreadApi::Now() (virtual time, so it
// includes deterministic lock-wait/queueing delay inside the universe) and
// kept OUT of the recorded bytes: latency samples are jitter-dependent by
// design, responses and traces are not.
#pragma once

#include <string>
#include <vector>

#include "src/rt/api.h"
#include "src/tso/trace.h"
#include "src/util/types.h"

namespace csq::serve {

enum class Op : u8 {
  kGet,   // response: stored value (0 when absent)
  kPut,   // response: previous value (0 on fresh insert)
  kScan,  // response: sum of values over [key, key + value) — `value` is the span
};

// One request on one logical connection. `tenant` is the routing key (the
// deterministic-universe id); `session` is the connection id — requests with
// the same session id execute in log order on one simulated thread.
struct Request {
  u64 tenant = 0;
  u64 session = 0;
  Op op = Op::kGet;
  u64 key = 0;
  u64 value = 0;  // put payload, or scan span for kScan
};

struct ServeConfig {
  u32 shards = 4;
  // Host threads draining the shard queues in ShardServer::Serve. Purely a
  // host-throughput knob: shards are independent universes, so results are
  // bit-identical for every value.
  u32 serve_threads = 1;
  // Per-shard window of concurrently live sessions. The acceptor (the
  // universe's main thread) admits sessions in log order and joins the
  // oldest when the window is full — connection churn through the runtime's
  // thread-reuse pool is bounded by this.
  u32 max_live_sessions = 8;

  // Shard universe sizing.
  u32 kv_buckets = 256;
  usize heap_bytes = 2 << 20;
  usize segment_bytes = 16 << 20;
  usize stack_bytes = 128 * 1024;  // sessions are shallow; see sim_stack_bytes

  // Runtime selection inside each shard.
  rt::Backend backend = rt::Backend::kConsequenceIC;
  u32 host_workers = 1;  // engine workers per shard universe
  bool thread_reuse = true;
  u64 jitter_seed = 1;
  u32 jitter_bp = 1200;

  // Modeled per-request parse/dispatch cost (ThreadApi::Work units).
  u64 work_per_request = 300;

  // Record the canonical tso::TraceRecorder trace for each shard (the
  // record/replay artifact). Off for throughput-only bench sweeps.
  bool record_trace = true;
};

// ---- Routing ---------------------------------------------------------------

// Stateless router: tenant -> shard. All sessions of a tenant map to the same
// shard for any fixed shard count, so a tenant's universe is self-contained.
u32 ShardFor(u64 tenant, u32 shards);

// Partitions a request log into per-shard logs, preserving relative order.
std::vector<std::vector<Request>> RouteLog(const std::vector<Request>& log, u32 shards);

// ---- Shard execution -------------------------------------------------------

// Everything one shard produced from draining its log. The deterministic
// record/replay surface is `responses`, `trace`, the commit order derived
// from the trace, `response_digest` and `state_digest`; `latencies` (virtual
// time, jitter-dependent) and `run` host fields are observability only.
struct ShardResult {
  u32 shard = 0;
  usize requests = 0;

  std::vector<u64> responses;  // indexed by shard-log order
  std::vector<u64> latencies;  // vtime delta per request (incl. lock waits)

  // Per-session facts in arrival order: the simulated thread that served the
  // session, its scratch-buffer address (SharedHeap reuse order is part of
  // the determinism contract), and whether the cross-session leak probe
  // fired (another live session's bytes observed in this session's scratch).
  std::vector<u32> session_tids;
  std::vector<u64> session_scratch;
  std::vector<u8> session_leaks;

  u64 response_digest = 0;
  u64 state_digest = 0;  // final KV contents (== run.checksum contribution)

  rt::RunResult run;
  tso::TsoTrace trace;  // empty unless ServeConfig::record_trace
};

// One deterministic universe. Serve() runs the whole log to completion on a
// fresh simulation; calling it again with the same log IS replay.
class Shard {
 public:
  Shard(u32 id, ServeConfig cfg);

  ShardResult Serve(const std::vector<Request>& log) const;

 private:
  u32 id_;
  ServeConfig cfg_;
};

// ---- Record / replay -------------------------------------------------------

// Canonical byte encoding of a shard's deterministic surface: per-thread sync
// event streams, the global token-grant order, the version-ordered commit
// order, every response, and the digests. Two runs of the same shard config +
// log must produce byte-identical encodings; latency samples and host fields
// are deliberately excluded.
std::string EncodeRecording(const ShardResult& r);

// Global commit order of a shard trace: (tid, version) pairs sorted by the
// install-ordered commit version.
std::vector<std::pair<u32, u64>> CommitOrder(const tso::TsoTrace& t);

struct ReplayDiff {
  bool identical = true;
  std::string description;  // names the FIRST divergence when not identical
};

// Diffs a replayed shard against the recorded one: first divergent trace
// event (via tso::DiffTraces), first divergent commit-order entry, first
// divergent response index, then the digests.
ReplayDiff CompareRecordings(const ShardResult& recorded, const ShardResult& replayed);

// ---- The front end ---------------------------------------------------------

struct ServeResult {
  std::vector<ShardResult> shards;  // indexed by shard id
  usize requests = 0;
  u64 wall_ns = 0;          // host wall-clock of the whole drain
  u64 response_digest = 0;  // mixed over shards in shard order
};

// Router + host worker pool: routes the log, then `serve_threads` host
// threads drain the per-shard queues. One shard is owned by exactly one
// worker at a time; worker w claims its affine stripe (shard % workers == w)
// in id order first and steals other unclaimed shards only after its stripe
// is drained (DESIGN.md §16) — claiming affects host placement only, never
// shard results.
class ShardServer {
 public:
  explicit ShardServer(ServeConfig cfg);

  ServeResult Serve(const std::vector<Request>& log) const;

 private:
  ServeConfig cfg_;
};

}  // namespace csq::serve
