// Virtual-time cost model for the simulated multicore.
//
// The original Consequence evaluation ran on a 32-core Xeon; this reproduction
// runs the same runtime algorithms on a deterministic simulator whose clock is
// advanced by the charges below (in abstract "cycles"). Absolute values are a
// calibration, not a claim — what matters for reproducing the paper's figures
// is the *ratios*: a commit costs thousands of work units, a page fault costs
// hundreds, a token handoff is cheap, a fork is very expensive, etc.
//
// `jitter_bp` (basis points, 100 bp = 1%) models nondeterministic hardware
// timing: every charge is scaled by a random factor in [1-j, 1+j] drawn from a
// per-thread deterministic stream. Deterministic runtimes must produce
// bit-identical program results under any jitter seed; the pthreads baseline
// need not (and does not, for racy programs).
#pragma once

#include "src/util/rng.h"
#include "src/util/types.h"

namespace csq::sim {

struct CostModel {
  // Computation.
  u64 work_unit = 1;        // one unit of workload "work" (≈ one instruction)
  u64 mem_op = 1;           // one workspace load/store (local, isolated)

  // Conversion (versioned memory).
  u64 page_fault = 1000;    // first write to a clean page: trap + copy-on-write
  u64 page_fetch = 350;     // update() pulling one committed page into the snapshot
  u64 page_diff = 600;      // diffing one dirty page against its twin
  u64 page_merge = 1200;    // byte-granularity merge of one conflicting page
  u64 commit_fixed = 1200;  // fixed cost of a commit (version-log bookkeeping)
  u64 commit_per_page = 250;  // publishing one dirty page
  u64 update_fixed = 600;  // fixed cost of an update (version scan)
  u64 gc_per_page = 120;    // collector reclaiming one dead page version

  // Deterministic clock / token.
  u64 token_acquire = 120;
  u64 token_release = 60;
  u64 counter_read_kernel = 300;  // syscall to read the perf counter (§3.4)
  u64 counter_read_user = 25;     // user-space counter read (§3.4)
  u64 overflow_interrupt = 700;   // handling one counter-overflow interrupt (§3.2)
  u64 wake_latency = 400;         // kernel wakeup of a blocked thread

  // Thread lifecycle (§3.3).
  u64 spawn_fork_fixed = 9000;   // forking a Conversion process
  u64 spawn_fork_per_page = 120;  // copying one populated page-table entry
  u64 spawn_reuse_fixed = 1200;   // reusing a pooled thread
  u64 join_fixed = 500;

  // Nondeterministic pthreads baseline.
  u64 pthread_lock_op = 60;
  u64 pthread_barrier_op = 400;
  u64 pthread_cv_op = 80;
  u64 pthread_spawn = 3000;
  u64 pthread_join = 300;

  // Timing perturbation.
  u32 jitter_bp = 0;   // ± jitter in basis points (100 bp = 1%)
  u64 jitter_seed = 0;

  // Applies jitter to `cost` using the given per-thread stream.
  u64 Jitter(DetRng& rng, u64 cost) const {
    if (jitter_bp == 0 || cost == 0) {
      return cost;
    }
    const u64 span = 2ULL * jitter_bp + 1;
    const u64 factor = 10000ULL - jitter_bp + rng.Below(span);
    return cost * factor / 10000ULL;
  }
};

}  // namespace csq::sim
