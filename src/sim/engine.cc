#include "src/sim/engine.h"

#include <algorithm>

namespace csq::sim {

Engine::Engine(SimConfig cfg) : cfg_(cfg) {}

Engine::~Engine() = default;

ThreadId Engine::Spawn(std::function<void()> fn) {
  auto t = std::make_unique<SimThread>();
  t->id = static_cast<ThreadId>(threads_.size());
  t->state = SimThreadState::kRunnable;
  t->vtime = (current_ != kInvalidThread) ? threads_[current_]->vtime : 0;
  t->jitter.Seed(cfg_.costs.jitter_seed * 0x9e3779b97f4a7c15ULL + t->id + 1);
  t->fiber = std::make_unique<Fiber>(cfg_.stack_size);
  SimThread* raw = t.get();
  t->fiber->Prepare(std::move(fn), [this, raw] {
    raw->state = SimThreadState::kFinished;
    raw->finish_vtime = raw->vtime;
    raw->fiber->SwitchOutTo(&main_ctx_);
  });
  threads_.push_back(std::move(t));
  return raw->id;
}

void Engine::Run() {
  CSQ_CHECK(!running_);
  running_ = true;
  for (;;) {
    const ThreadId next = PickNext();
    if (next == kInvalidThread) {
      break;
    }
    current_ = next;
    cur_thread_ = threads_[next].get();
    threads_[next]->state = SimThreadState::kRunning;
    threads_[next]->fiber->SwitchInto(&main_ctx_);
    current_ = kInvalidThread;
    cur_thread_ = nullptr;
  }
  for (const auto& t : threads_) {
    CSQ_CHECK_MSG(t->state == SimThreadState::kFinished,
                  "simulation deadlock: thread " << t->id << " stuck in state "
                                                 << static_cast<int>(t->state) << " at vtime "
                                                 << t->vtime);
  }
  running_ = false;
}

bool Engine::IsMinRunnable(ThreadId me) const {
  const SimThread& m = *threads_[me];
  for (const auto& t : threads_) {
    if (t->id == me || t->state != SimThreadState::kRunnable) {
      continue;
    }
    if (t->vtime < m.vtime || (t->vtime == m.vtime && t->id < m.id)) {
      return false;
    }
  }
  return true;
}

ThreadId Engine::PickNext() const {
  ThreadId best = kInvalidThread;
  for (const auto& t : threads_) {
    if (t->state != SimThreadState::kRunnable) {
      continue;
    }
    if (best == kInvalidThread || t->vtime < threads_[best]->vtime ||
        (t->vtime == threads_[best]->vtime && t->id < best)) {
      best = t->id;
    }
  }
  return best;
}

void Engine::SwitchToScheduler() {
  Cur().fiber->SwitchOutTo(&main_ctx_);
}

void Engine::GateShared() {
  while (!IsMinRunnable(Self())) {
    YieldRunnable();
  }
}

void Engine::YieldRunnable() {
  SimThread& t = Cur();
  t.state = SimThreadState::kRunnable;
  SwitchToScheduler();
}

u64 Engine::Wait(WaitChannel& ch, TimeCat cat) {
  SimThread& t = Cur();
  ch.waiters.push_back(t.id);
  t.state = SimThreadState::kBlocked;
  t.wait_cat = cat;
  SwitchToScheduler();
  // Woken: the notifier already advanced our vtime and attributed the wait.
  return t.vtime;
}

usize Engine::NotifyOne(WaitChannel& ch) {
  if (ch.waiters.empty()) {
    return 0;
  }
  const ThreadId w = ch.waiters.front();
  ch.waiters.erase(ch.waiters.begin());
  SimThread& t = *threads_[w];
  CSQ_CHECK_MSG(t.state == SimThreadState::kBlocked, "notify of non-blocked thread " << w);
  const u64 wake_vt =
      std::max(t.vtime, Now() + cfg_.costs.Jitter(t.jitter, cfg_.costs.wake_latency));
  t.cat[static_cast<usize>(t.wait_cat)] += wake_vt - t.vtime;
  t.vtime = wake_vt;
  t.state = SimThreadState::kRunnable;
  return 1;
}

usize Engine::NotifyAll(WaitChannel& ch) {
  usize n = 0;
  while (NotifyOne(ch) != 0) {
    ++n;
  }
  return n;
}

u64 Engine::CatTotalAll(TimeCat cat) const {
  u64 sum = 0;
  for (const auto& t : threads_) {
    sum += t->cat[static_cast<usize>(cat)];
  }
  return sum;
}

u64 Engine::CompletionVtime() const {
  u64 max_vt = 0;
  for (const auto& t : threads_) {
    max_vt = std::max(max_vt, t->finish_vtime);
  }
  return max_vt;
}

}  // namespace csq::sim
