#include "src/sim/engine.h"

#include <algorithm>
#include <sstream>
#include <string>

namespace csq::sim {

namespace {

// Current simulated thread on this host thread (threaded substrate). The
// engine pointer disambiguates nested/parallel engines.
thread_local const void* tls_eng = nullptr;
thread_local void* tls_thread = nullptr;

const char* StateName(SimThreadState s) {
  switch (s) {
    case SimThreadState::kRunnable:
      return "runnable";
    case SimThreadState::kRunning:
      return "running";
    case SimThreadState::kBlocked:
      return "blocked";
    case SimThreadState::kFinished:
      return "finished";
  }
  return "?";
}

}  // namespace

Engine::Engine(SimConfig cfg) : cfg_(cfg) {
#ifdef CSQ_TSAN
  // TSan cannot follow ucontext stack switches; the threaded substrate with
  // one slot has identical semantics to the serial fiber scheduler.
  threaded_ = true;
#else
  threaded_ = cfg_.host_workers > 1 || cfg_.force_threaded;
#endif
  free_slots_ = std::max<u32>(1, cfg_.host_workers);
}

Engine::~Engine() {
  if (threaded_) {
    {
      std::lock_guard<std::mutex> lk(pmu_);
      shutdown_ = true;
      for (usize i = 0; i < threads_.size(); ++i) {
        threads_[i]->cv.notify_all();
      }
    }
    for (usize i = 0; i < threads_.size(); ++i) {
      if (threads_[i]->host.joinable()) {
        threads_[i]->host.join();
      }
    }
  }
}

Engine::SimThread* Engine::CurPtr() const {
  if (threaded_) {
    return tls_eng == this ? static_cast<SimThread*>(tls_thread) : nullptr;
  }
  return cur_thread_;
}

// ---------------------------------------------------------------------------
// Spawn
// ---------------------------------------------------------------------------

ThreadId Engine::Spawn(std::function<void()> fn) {
  if (threaded_) {
    std::lock_guard<std::mutex> lk(pmu_);
    auto t = std::make_unique<SimThread>();
    t->id = static_cast<ThreadId>(threads_.size());
    t->state = SimThreadState::kRunnable;
    const SimThread* cur = CurPtr();
    t->vtime.store(cur != nullptr ? cur->vtime.load(std::memory_order_relaxed) : 0,
                   std::memory_order_relaxed);
    t->jitter.Seed(cfg_.costs.jitter_seed * 0x9e3779b97f4a7c15ULL + t->id + 1);
    t->fn = std::move(fn);
    SimThread* raw = threads_.EmplaceBack(std::move(t)).get();
    LaunchHostThread(raw);
    return raw->id;
  }
  auto t = std::make_unique<SimThread>();
  t->id = static_cast<ThreadId>(threads_.size());
  t->state = SimThreadState::kRunnable;
  t->vtime.store(
      current_ != kInvalidThread ? threads_[current_]->vtime.load(std::memory_order_relaxed) : 0,
      std::memory_order_relaxed);
  t->jitter.Seed(cfg_.costs.jitter_seed * 0x9e3779b97f4a7c15ULL + t->id + 1);
  t->fiber = std::make_unique<Fiber>(cfg_.stack_size);
  SimThread* raw = t.get();
  t->fiber->Prepare(std::move(fn), [this, raw] {
    raw->state = SimThreadState::kFinished;
    raw->finish_vtime = raw->vtime.load(std::memory_order_relaxed);
    raw->fiber->SwitchOutTo(&main_ctx_);
  });
  threads_.EmplaceBack(std::move(t));
  return raw->id;
}

// ---------------------------------------------------------------------------
// Deadlock reporting (both substrates)
// ---------------------------------------------------------------------------

std::string Engine::BuildDeadlockReport() const {
  std::ostringstream oss;
  oss << "simulation deadlock: no runnable thread left. Non-finished threads:";
  for (usize i = 0; i < threads_.size(); ++i) {
    const SimThread& t = *threads_[i];
    if (t.state == SimThreadState::kFinished) {
      continue;
    }
    oss << "\n  thread " << t.id << ": state=" << StateName(t.state)
        << " vtime=" << t.vtime.load(std::memory_order_relaxed);
    if (t.state == SimThreadState::kBlocked) {
      oss << " parked_on="
          << (t.wait_ch != nullptr && t.wait_ch->label != nullptr ? t.wait_ch->label
                                                                  : "<unnamed channel>")
          << " wait_cat=" << TimeCatName(t.wait_cat);
    }
    if (t.want_gate) {
      oss << " (waiting for shared-state gate)";
    }
    if (t.has_floor) {
      oss << " (holds shared-state gate)";
    }
  }
  return oss.str();
}

void Engine::DieOfDeadlock() const {
  CSQ_CHECK_MSG(false, BuildDeadlockReport());
  __builtin_unreachable();
}

// ---------------------------------------------------------------------------
// Run
// ---------------------------------------------------------------------------

void Engine::Run() {
  if (threaded_) {
    RunThreaded();
  } else {
    RunSerial();
  }
}

void Engine::RunSerial() {
  CSQ_CHECK(!running_);
  running_ = true;
  for (;;) {
    const ThreadId next = PickNext();
    if (next == kInvalidThread) {
      break;
    }
    current_ = next;
    cur_thread_ = threads_[next].get();
    threads_[next]->state = SimThreadState::kRunning;
    threads_[next]->fiber->SwitchInto(&main_ctx_);
    current_ = kInvalidThread;
    cur_thread_ = nullptr;
  }
  for (usize i = 0; i < threads_.size(); ++i) {
    if (threads_[i]->state != SimThreadState::kFinished) {
      DieOfDeadlock();
    }
  }
  running_ = false;
}

void Engine::RunThreaded() {
  std::unique_lock<std::mutex> lk(pmu_);
  CSQ_CHECK(!running_);
  running_ = true;
  for (usize i = 0; i < threads_.size(); ++i) {
    threads_[i]->cv.notify_all();
  }
  run_cv_.wait(lk, [&] { return deadlocked_ || finished_count_ == threads_.size(); });
  const bool dead = deadlocked_;
  lk.unlock();
  if (dead) {
    DieOfDeadlock();
  }
  for (usize i = 0; i < threads_.size(); ++i) {
    if (threads_[i]->host.joinable()) {
      threads_[i]->host.join();
    }
  }
  running_ = false;
}

// ---------------------------------------------------------------------------
// Serial substrate
// ---------------------------------------------------------------------------

bool Engine::IsMinRunnable(ThreadId me) const {
  const SimThread& m = *threads_[me];
  const u64 mv = m.vtime.load(std::memory_order_relaxed);
  for (usize i = 0; i < threads_.size(); ++i) {
    const SimThread& t = *threads_[i];
    if (t.id == me || t.state != SimThreadState::kRunnable) {
      continue;
    }
    const u64 tv = t.vtime.load(std::memory_order_relaxed);
    if (tv < mv || (tv == mv && t.id < m.id)) {
      return false;
    }
  }
  return true;
}

ThreadId Engine::PickNext() const {
  ThreadId best = kInvalidThread;
  u64 best_v = 0;
  for (usize i = 0; i < threads_.size(); ++i) {
    const SimThread& t = *threads_[i];
    if (t.state != SimThreadState::kRunnable) {
      continue;
    }
    const u64 tv = t.vtime.load(std::memory_order_relaxed);
    if (best == kInvalidThread || tv < best_v || (tv == best_v && t.id < best)) {
      best = t.id;
      best_v = tv;
    }
  }
  return best;
}

void Engine::SwitchToScheduler() {
  Cur().fiber->SwitchOutTo(&main_ctx_);
}

void Engine::YieldRunnable() {
  if (threaded_) {
    // Host threads run concurrently; there is nothing to hand the core to.
    // Re-evaluating grants preserves the only observable effect a serial
    // yield can have (letting a lower-vtime thread take the gate).
    std::lock_guard<std::mutex> lk(pmu_);
    ReEvalGrantsLocked();
    return;
  }
  SimThread& t = Cur();
  t.state = SimThreadState::kRunnable;
  SwitchToScheduler();
}

// ---------------------------------------------------------------------------
// Threaded substrate
// ---------------------------------------------------------------------------

void Engine::LaunchHostThread(SimThread* t) {
  t->host = std::thread([this, t] { HostThreadBody(t); });
}

void Engine::HostThreadBody(SimThread* t) {
  {
    std::unique_lock<std::mutex> lk(pmu_);
    t->cv.wait(lk, [&] { return running_ || shutdown_; });
    if (shutdown_) {
      return;
    }
    t->started = true;
    AcquireSlotLocked(lk, *t);
    t->state = SimThreadState::kRunning;
  }
  tls_eng = this;
  tls_thread = t;
  t->fn();
  t->fn = nullptr;
  tls_eng = nullptr;
  tls_thread = nullptr;
  std::lock_guard<std::mutex> lk(pmu_);
  if (t->has_floor) {
    ReleaseFloorLocked(*t);
  } else {
    ReleaseSlotLocked();
  }
  t->state = SimThreadState::kFinished;
  t->finish_vtime = t->vtime.load(std::memory_order_relaxed);
  ++finished_count_;
  ParkEpilogueLocked();
}

void Engine::AcquireSlotLocked(std::unique_lock<std::mutex>& lk, SimThread& t) {
  slot_cv_.wait(lk, [&] { return free_slots_ > 0; });
  --free_slots_;
}

void Engine::ReleaseSlotLocked() {
  ++free_slots_;
  slot_cv_.notify_one();
}

void Engine::ReleaseFloorLocked(SimThread& t) {
  CSQ_DCHECK(t.has_floor && floor_held_);
  t.has_floor = false;
  floor_held_ = false;
}

void Engine::ParkEpilogueLocked() {
  ReEvalGrantsLocked();
  if (finished_count_ == threads_.size()) {
    run_cv_.notify_all();
    return;
  }
  for (usize i = 0; i < threads_.size(); ++i) {
    const SimThreadState s = threads_[i]->state;
    if (s != SimThreadState::kBlocked && s != SimThreadState::kFinished) {
      return;  // someone can still make progress
    }
  }
  deadlocked_ = true;
  run_cv_.notify_all();
}

void Engine::ReEvalGrantsLocked() {
  if (floor_held_) {
    return;  // release/park re-evaluates
  }
  // The grant rule mirrors the serial scheduler exactly: the floor goes to the
  // minimum-(vtime, tid) gate-waiter W, but only once no other active thread
  // could still reach a shared operation at a smaller key. An active thread U
  // mid-local-segment blocks W while key(U) < key(W); its clock only grows, so
  // we arm a gate trigger that fires the moment U's own AdvanceRaw crosses the
  // boundary. Relaxed vtime reads are stale-low at worst, which delays (never
  // reorders) a grant; U's own trigger/park path re-evaluates with its exact
  // clock.
  SimThread* w = nullptr;
  u64 wv = 0;
  for (usize i = 0; i < threads_.size(); ++i) {
    SimThread& u = *threads_[i];
    if (!u.want_gate) {
      continue;
    }
    const u64 uv = u.vtime.load(std::memory_order_relaxed);
    if (w == nullptr || uv < wv || (uv == wv && u.id < w->id)) {
      w = &u;
      wv = uv;
    }
  }
  if (w == nullptr) {
    return;
  }
  bool blocked = false;
  for (usize i = 0; i < threads_.size(); ++i) {
    SimThread& u = *threads_[i];
    if (&u == w || u.want_gate || u.state == SimThreadState::kBlocked ||
        u.state == SimThreadState::kFinished) {
      continue;
    }
    const u64 trigger = wv + (u.id < w->id ? 1 : 0);
    const u64 uv = u.vtime.load(std::memory_order_relaxed);
    if (uv < trigger) {
      blocked = true;
      u.gate_trigger.store(trigger, std::memory_order_relaxed);
    }
  }
  if (!blocked) {
    w->want_gate = false;
    w->has_floor.store(true, std::memory_order_release);
    floor_held_ = true;
    w->cv.notify_all();
  }
}

void Engine::GateTriggerSlow(SimThread& t) {
  std::lock_guard<std::mutex> lk(pmu_);
  t.gate_trigger.store(kNoTrigger, std::memory_order_relaxed);
  ReEvalGrantsLocked();
}

// ---------------------------------------------------------------------------
// Gate / EndShared
// ---------------------------------------------------------------------------

void Engine::GateShared() {
  SimThread& t = Cur();
  if (!threaded_) {
    while (!IsMinRunnable(t.id)) {
      YieldRunnable();
    }
    return;
  }
  std::unique_lock<std::mutex> lk(pmu_);
  if (t.has_floor) {
    // Consecutive shared operations: keep the floor while still the minimum
    // active thread (what the serial gate re-check does).
    const u64 mv = t.vtime.load(std::memory_order_relaxed);
    bool still_min = true;
    for (usize i = 0; i < threads_.size(); ++i) {
      const SimThread& u = *threads_[i];
      if (u.id == t.id || u.state == SimThreadState::kBlocked ||
          u.state == SimThreadState::kFinished) {
        continue;
      }
      const u64 uv = u.vtime.load(std::memory_order_relaxed);
      if (uv < mv || (uv == mv && u.id < t.id)) {
        still_min = false;
        break;
      }
    }
    if (still_min) {
      return;
    }
    ReleaseFloorLocked(t);
  } else {
    ReleaseSlotLocked();
  }
  t.want_gate = true;
  t.state = SimThreadState::kRunnable;
  ReEvalGrantsLocked();
  t.cv.wait(lk, [&] { return t.has_floor.load(std::memory_order_relaxed); });
  t.state = SimThreadState::kRunning;
}

void Engine::EndShared() {
  if (!threaded_) {
    return;
  }
  SimThread& t = Cur();
  std::unique_lock<std::mutex> lk(pmu_);
  if (!t.has_floor) {
    return;
  }
  ReleaseFloorLocked(t);
  ReEvalGrantsLocked();
  AcquireSlotLocked(lk, t);
}

bool Engine::BeginHostWait() {
  if (!threaded_) {
    return false;  // serial engine: one host thread, host waits cannot occur
  }
  SimThread* t = CurPtr();
  if (t == nullptr) {
    return false;  // outside the simulation (bench setup code)
  }
  std::lock_guard<std::mutex> lk(pmu_);
  if (t->has_floor) {
    return false;
  }
  ReleaseSlotLocked();
  return true;
}

void Engine::EndHostWait(bool lent_slot) {
  if (!lent_slot) {
    return;
  }
  SimThread& t = Cur();
  std::unique_lock<std::mutex> lk(pmu_);
  AcquireSlotLocked(lk, t);
}

// ---------------------------------------------------------------------------
// Wait / Notify
// ---------------------------------------------------------------------------

u64 Engine::Wait(WaitChannel& ch, TimeCat cat) {
  SimThread& t = Cur();
  if (!threaded_) {
    ch.waiters.push_back(t.id);
    t.state = SimThreadState::kBlocked;
    t.wait_cat = cat;
    t.wait_ch = &ch;
    SwitchToScheduler();
    // Woken: the notifier already advanced our vtime and attributed the wait.
    return t.vtime.load(std::memory_order_relaxed);
  }
  std::unique_lock<std::mutex> lk(pmu_);
  if (t.has_floor) {
    ReleaseFloorLocked(t);
  } else {
    ReleaseSlotLocked();
  }
  ch.waiters.push_back(t.id);
  t.state = SimThreadState::kBlocked;
  t.wait_cat = cat;
  t.wait_ch = &ch;
  ParkEpilogueLocked();
  t.cv.wait(lk, [&] { return t.woken; });
  t.woken = false;
  AcquireSlotLocked(lk, t);
  t.state = SimThreadState::kRunning;
  return t.vtime.load(std::memory_order_relaxed);
}

u64 Engine::WakeVtimeLocked(SimThread& waiter) {
  const u64 now = Cur().vtime.load(std::memory_order_relaxed);
  return std::max(waiter.vtime.load(std::memory_order_relaxed),
                  now + cfg_.costs.Jitter(waiter.jitter, cfg_.costs.wake_latency));
}

usize Engine::NotifyOne(WaitChannel& ch) {
  if (!threaded_) {
    if (ch.waiters.empty()) {
      return 0;
    }
    const ThreadId w = ch.waiters.front();
    ch.waiters.erase(ch.waiters.begin());
    SimThread& t = *threads_[w];
    CSQ_CHECK_MSG(t.state == SimThreadState::kBlocked, "notify of non-blocked thread " << w);
    const u64 wake_vt = WakeVtimeLocked(t);
    t.cat[static_cast<usize>(t.wait_cat)] += wake_vt - t.vtime.load(std::memory_order_relaxed);
    t.vtime.store(wake_vt, std::memory_order_relaxed);
    t.wait_ch = nullptr;
    t.state = SimThreadState::kRunnable;
    return 1;
  }
  std::lock_guard<std::mutex> lk(pmu_);
  return NotifyOneLocked(ch);
}

usize Engine::NotifyOneLocked(WaitChannel& ch) {
  if (ch.waiters.empty()) {
    return 0;
  }
  const ThreadId w = ch.waiters.front();
  ch.waiters.erase(ch.waiters.begin());
  SimThread& t = *threads_[w];
  CSQ_CHECK_MSG(t.state == SimThreadState::kBlocked, "notify of non-blocked thread " << w);
  const u64 wake_vt = WakeVtimeLocked(t);
  t.cat[static_cast<usize>(t.wait_cat)] += wake_vt - t.vtime.load(std::memory_order_relaxed);
  t.vtime.store(wake_vt, std::memory_order_relaxed);
  t.wait_ch = nullptr;
  t.state = SimThreadState::kRunnable;  // active again; runs once it has a slot
  t.woken = true;
  t.cv.notify_all();
  return 1;
}

usize Engine::NotifyAll(WaitChannel& ch) {
  if (!threaded_) {
    usize n = 0;
    while (NotifyOne(ch) != 0) {
      ++n;
    }
    return n;
  }
  std::lock_guard<std::mutex> lk(pmu_);
  usize n = 0;
  while (NotifyOneLocked(ch) != 0) {
    ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

u64 Engine::CatTotalAll(TimeCat cat) const {
  u64 sum = 0;
  for (usize i = 0; i < threads_.size(); ++i) {
    sum += threads_[i]->cat[static_cast<usize>(cat)];
  }
  return sum;
}

u64 Engine::CompletionVtime() const {
  u64 max_vt = 0;
  for (usize i = 0; i < threads_.size(); ++i) {
    max_vt = std::max(max_vt, threads_[i]->finish_vtime);
  }
  return max_vt;
}

}  // namespace csq::sim
