#include "src/sim/engine.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <string>

namespace csq::sim {

namespace {

// Current simulated thread on this host thread (threaded substrate). The
// engine pointer disambiguates nested/parallel engines.
thread_local const void* tls_eng = nullptr;
thread_local void* tls_thread = nullptr;

const char* StateName(SimThreadState s) {
  switch (s) {
    case SimThreadState::kRunnable:
      return "runnable";
    case SimThreadState::kRunning:
      return "running";
    case SimThreadState::kBlocked:
      return "blocked";
    case SimThreadState::kFinished:
      return "finished";
  }
  return "?";
}

u64 MonotonicNowNs() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now().time_since_epoch())
                              .count());
}

}  // namespace

Engine::Engine(SimConfig cfg) : cfg_(cfg) {
#ifdef CSQ_TSAN
  // TSan cannot follow ucontext stack switches; the threaded substrate with
  // one slot has identical semantics to the serial fiber scheduler.
  threaded_ = true;
#else
  threaded_ = cfg_.host_workers > 1 || cfg_.force_threaded;
#endif
  free_slots_ = std::max<u32>(1, cfg_.host_workers);
  slot_free_.assign(free_slots_, 1);
  sstats_.host_slots = threaded_ ? free_slots_ : 1;
  domains_.push_back(FloorDomain{});
  lease_on_ = threaded_ && cfg_.floor_lease;
  spin_handoff_ = threaded_ && std::thread::hardware_concurrency() > 1;
  // Minimum possible jittered wake latency (Jitter's smallest factor is
  // (10000 - jitter_bp) / 10000). >= 1 means every NotifyOne admission lands
  // strictly after its waker's vtime, which LeaseBoundLocked's tie-break
  // adjustment relies on.
  const u64 wake_floor =
      cfg_.costs.jitter_bp == 0
          ? cfg_.costs.wake_latency
          : cfg_.costs.wake_latency *
                (10000ULL - std::min<u64>(10000ULL, cfg_.costs.jitter_bp)) / 10000ULL;
  wake_floor_ge1_ = wake_floor >= 1;
}

Engine::~Engine() {
  if (threaded_) {
    {
      std::lock_guard<std::mutex> lk(pmu_);
      shutdown_ = true;
      for (usize i = 0; i < threads_.size(); ++i) {
        threads_[i]->cv.notify_all();
      }
    }
    for (usize i = 0; i < threads_.size(); ++i) {
      if (threads_[i]->host.joinable()) {
        threads_[i]->host.join();
      }
    }
  }
}

Engine::SimThread* Engine::CurPtr() const {
  if (threaded_) {
    return tls_eng == this ? static_cast<SimThread*>(tls_thread) : nullptr;
  }
  return cur_thread_;
}

// ---------------------------------------------------------------------------
// Floor domains
// ---------------------------------------------------------------------------

u32 Engine::CreateFloorDomain(const char* label) {
  CSQ_CHECK_MSG(!running_, "floor domains must be created before Run()");
  CSQ_CHECK_MSG(domains_.size() < kMaxFloorDomains,
                "at most " << kMaxFloorDomains << " floor domains (u64 affinity mask)");
  FloorDomain d;
  d.label = label != nullptr ? label : "domain";
  domains_.push_back(d);
  // Leases stay on under sharding (DESIGN.md §16): each domain's lease is
  // bounded by the min competitor key within that domain, and cross-domain
  // admissions (Spawn, NotifyOne under a foreign floor) clamp the affected
  // holders through lease_clamp.
  return static_cast<u32>(domains_.size() - 1);
}

void Engine::SetDomainAffinity(ThreadId t, u64 mask) {
  CSQ_CHECK_MSG(mask != 0, "a thread needs at least one floor domain");
  CSQ_CHECK_MSG(!running_, "domain affinity must be set before Run()");
  threads_[t]->domain_affinity = mask;
}

// ---------------------------------------------------------------------------
// Spawn
// ---------------------------------------------------------------------------

ThreadId Engine::Spawn(std::function<void()> fn) {
  if (threaded_) {
    std::lock_guard<std::mutex> lk(pmu_);
    auto t = std::make_unique<SimThread>();
    t->id = static_cast<ThreadId>(threads_.size());
    t->state = SimThreadState::kRunnable;
    SimThread* cur = CurPtr();
    t->vtime.store(cur != nullptr ? cur->vtime.load(std::memory_order_relaxed) : 0,
                   std::memory_order_relaxed);
    t->jitter.Seed(cfg_.costs.jitter_seed * 0x9e3779b97f4a7c15ULL + t->id + 1);
    t->fn = std::move(fn);
    SimThread* raw = threads_.EmplaceBack(std::move(t)).get();
    // The child is a new competitor at our own vtime (its id is larger, so
    // its key is ours + the tie-break): a live lease must not outlast it.
    if (lease_on_ && cur != nullptr && cur->has_floor.load(std::memory_order_relaxed)) {
      cur->lease_until =
          std::min(cur->lease_until, raw->vtime.load(std::memory_order_relaxed) + 1);
    }
    // Cross-domain clamp (DESIGN.md §16): other domains' floor holders may
    // hold leases whose bound was computed before the child existed.
    ClampForeignLeasesLocked(*raw, raw->vtime.load(std::memory_order_relaxed));
    LaunchHostThread(raw);
    return raw->id;
  }
  auto t = std::make_unique<SimThread>();
  t->id = static_cast<ThreadId>(threads_.size());
  t->state = SimThreadState::kRunnable;
  t->vtime.store(
      current_ != kInvalidThread ? threads_[current_]->vtime.load(std::memory_order_relaxed) : 0,
      std::memory_order_relaxed);
  t->jitter.Seed(cfg_.costs.jitter_seed * 0x9e3779b97f4a7c15ULL + t->id + 1);
  t->fiber = std::make_unique<Fiber>(cfg_.stack_size);
  SimThread* raw = t.get();
  t->fiber->Prepare(std::move(fn), [this, raw] {
    raw->state = SimThreadState::kFinished;
    raw->finish_vtime = raw->vtime.load(std::memory_order_relaxed);
    raw->fiber->SwitchOutTo(&main_ctx_);
  });
  threads_.EmplaceBack(std::move(t));
  return raw->id;
}

// ---------------------------------------------------------------------------
// Deadlock reporting (both substrates)
// ---------------------------------------------------------------------------

std::string Engine::BuildDeadlockReport() const {
  std::ostringstream oss;
  oss << "simulation deadlock: no runnable thread left. Non-finished threads:";
  for (usize i = 0; i < threads_.size(); ++i) {
    const SimThread& t = *threads_[i];
    if (t.state == SimThreadState::kFinished) {
      continue;
    }
    oss << "\n  thread " << t.id << ": state=" << StateName(t.state)
        << " vtime=" << t.vtime.load(std::memory_order_relaxed);
    if (t.state == SimThreadState::kBlocked) {
      oss << " parked_on="
          << (t.wait_ch != nullptr && t.wait_ch->label != nullptr ? t.wait_ch->label
                                                                  : "<unnamed channel>")
          << " wait_cat=" << TimeCatName(t.wait_cat);
    }
    if (t.want_dom != kInvalidFloorDomain) {
      oss << " (waiting for floor of domain " << t.want_dom << " '"
          << domains_[t.want_dom].label << "')";
    }
    if (t.has_floor.load(std::memory_order_relaxed) && t.floor_dom != kInvalidFloorDomain) {
      oss << " (holds floor of domain " << t.floor_dom << " '" << domains_[t.floor_dom].label
          << "'" << (t.lazy_floor.load(std::memory_order_relaxed) ? ", lazily retained" : "")
          << ")";
    }
  }
  return oss.str();
}

void Engine::DieOfDeadlock() const {
  CSQ_CHECK_MSG(false, BuildDeadlockReport());
  __builtin_unreachable();
}

// ---------------------------------------------------------------------------
// Run
// ---------------------------------------------------------------------------

void Engine::Run() {
  if (threaded_) {
    RunThreaded();
  } else {
    RunSerial();
  }
}

void Engine::RunSerial() {
  CSQ_CHECK(!running_);
  running_ = true;
  for (;;) {
    const ThreadId next = PickNext();
    if (next == kInvalidThread) {
      break;
    }
    current_ = next;
    cur_thread_ = threads_[next].get();
    threads_[next]->state = SimThreadState::kRunning;
    threads_[next]->fiber->SwitchInto(&main_ctx_);
    current_ = kInvalidThread;
    cur_thread_ = nullptr;
    if (threads_[next]->state == SimThreadState::kFinished) {
      // Eager stack reclamation: the fiber's on_exit switched back onto the
      // scheduler's context, so its stack is quiescent and will never be
      // resumed. Churn-heavy universes (the serving layer spawns one thread
      // per connection) would otherwise hold every dead session's stack until
      // the whole Run finishes.
      threads_[next]->fiber.reset();
    }
  }
  for (usize i = 0; i < threads_.size(); ++i) {
    if (threads_[i]->state != SimThreadState::kFinished) {
      DieOfDeadlock();
    }
  }
  running_ = false;
}

void Engine::RunThreaded() {
  std::unique_lock<std::mutex> lk(pmu_);
  CSQ_CHECK(!running_);
  running_ = true;
  for (usize i = 0; i < threads_.size(); ++i) {
    threads_[i]->cv.notify_all();
  }
  run_cv_.wait(lk, [&] { return deadlocked_ || finished_count_ == threads_.size(); });
  const bool dead = deadlocked_;
  lk.unlock();
  if (dead) {
    DieOfDeadlock();
  }
  for (usize i = 0; i < threads_.size(); ++i) {
    if (threads_[i]->host.joinable()) {
      threads_[i]->host.join();
    }
  }
  running_ = false;
}

// ---------------------------------------------------------------------------
// Serial substrate
// ---------------------------------------------------------------------------

bool Engine::IsMinRunnable(ThreadId me) const {
  const SimThread& m = *threads_[me];
  const u64 mv = m.vtime.load(std::memory_order_relaxed);
  for (usize i = 0; i < threads_.size(); ++i) {
    const SimThread& t = *threads_[i];
    if (t.id == me || t.state != SimThreadState::kRunnable) {
      continue;
    }
    const u64 tv = t.vtime.load(std::memory_order_relaxed);
    if (tv < mv || (tv == mv && t.id < m.id)) {
      return false;
    }
  }
  return true;
}

ThreadId Engine::PickNext() const {
  ThreadId best = kInvalidThread;
  u64 best_v = 0;
  for (usize i = 0; i < threads_.size(); ++i) {
    const SimThread& t = *threads_[i];
    if (t.state != SimThreadState::kRunnable) {
      continue;
    }
    const u64 tv = t.vtime.load(std::memory_order_relaxed);
    if (best == kInvalidThread || tv < best_v || (tv == best_v && t.id < best)) {
      best = t.id;
      best_v = tv;
    }
  }
  return best;
}

void Engine::SwitchToScheduler() {
  Cur().fiber->SwitchOutTo(&main_ctx_);
}

void Engine::YieldRunnable() {
  if (threaded_) {
    // Host threads run concurrently; there is nothing to hand the core to.
    // Re-evaluating grants preserves the only observable effect a serial
    // yield can have (letting a lower-vtime thread take the gate).
    std::lock_guard<std::mutex> lk(pmu_);
    ReEvalGrantsLocked();
    return;
  }
  SimThread& t = Cur();
  t.state = SimThreadState::kRunnable;
  SwitchToScheduler();
}

// ---------------------------------------------------------------------------
// Threaded substrate
// ---------------------------------------------------------------------------

void Engine::LaunchHostThread(SimThread* t) {
  t->host = std::thread([this, t] { HostThreadBody(t); });
}

void Engine::HostThreadBody(SimThread* t) {
  {
    std::unique_lock<std::mutex> lk(pmu_);
    t->cv.wait(lk, [&] { return running_ || shutdown_; });
    if (shutdown_) {
      return;
    }
    t->started = true;
    AcquireSlotLocked(lk, *t);
    t->state = SimThreadState::kRunning;
  }
  tls_eng = this;
  tls_thread = t;
  t->fn();
  t->fn = nullptr;
  tls_eng = nullptr;
  tls_thread = nullptr;
  std::lock_guard<std::mutex> lk(pmu_);
  if (t->has_floor.load(std::memory_order_relaxed)) {
    ReleaseFloorLocked(*t);
  } else {
    ReleaseSlotLocked(*t);
  }
  t->state = SimThreadState::kFinished;
  t->finish_vtime = t->vtime.load(std::memory_order_relaxed);
  ++finished_count_;
  ParkEpilogueLocked();
}

void Engine::AcquireSlotLocked(std::unique_lock<std::mutex>& lk, SimThread& t) {
  slot_cv_.wait(lk, [&] { return free_slots_ > 0; });
  // Locality-aware slot pick (DESIGN.md §16): prefer the thread's previous
  // slot (warm per-slot resources: conv buffer-pool partition), then the
  // wake-affinity hint seeded by the notifier on opted-in channels, then
  // deterministically steal the lowest-numbered free slot. Placement is pure
  // host scheduling — it never feeds simulated time or ordering.
  CSQ_DCHECK(t.cur_slot == kInvalidSlot);
  u32 slot = kInvalidSlot;
  ++sstats_.slot_acquires;
  if (t.last_slot != kInvalidSlot && slot_free_[t.last_slot] != 0) {
    slot = t.last_slot;
    ++sstats_.affinity_hits;
  } else if (t.wake_slot_hint != kInvalidSlot && t.wake_slot_hint != t.last_slot &&
             slot_free_[t.wake_slot_hint] != 0) {
    slot = t.wake_slot_hint;
    ++sstats_.hint_grants;
  } else {
    for (u32 s = 0; s < slot_free_.size(); ++s) {
      if (slot_free_[s] != 0) {
        slot = s;
        break;
      }
    }
    CSQ_DCHECK(slot != kInvalidSlot);
    if (t.last_slot != kInvalidSlot) {
      ++sstats_.steals;
    } else {
      ++sstats_.cold_starts;
    }
  }
  t.wake_slot_hint = kInvalidSlot;
  t.cur_slot = slot;
  t.last_slot = slot;
  slot_free_[slot] = 0;
  --free_slots_;
}

void Engine::ReleaseSlotLocked(SimThread& t) {
  CSQ_DCHECK(t.cur_slot != kInvalidSlot && slot_free_[t.cur_slot] == 0);
  slot_free_[t.cur_slot] = 1;
  t.cur_slot = kInvalidSlot;
  ++free_slots_;
  slot_cv_.notify_one();
}

void Engine::ReleaseFloorLocked(SimThread& t) {
  CSQ_DCHECK(t.has_floor.load(std::memory_order_relaxed) && t.floor_dom < domains_.size());
  FloorDomain& dom = domains_[t.floor_dom];
  CSQ_DCHECK(dom.held && dom.holder == t.id);
  t.has_floor.store(false, std::memory_order_relaxed);
  t.lazy_floor.store(false, std::memory_order_relaxed);
  t.lease_until = 0;
  t.lease_clamp.store(kNoTrigger, std::memory_order_relaxed);
  t.floor_dom = kInvalidFloorDomain;
  dom.held = false;
  dom.holder = kInvalidThread;
  dom.held_ns += MonotonicNowNs() - dom.held_since_ns;
}

void Engine::ParkEpilogueLocked() {
  ReEvalGrantsLocked();
  if (finished_count_ == threads_.size()) {
    run_cv_.notify_all();
    return;
  }
  for (usize i = 0; i < threads_.size(); ++i) {
    const SimThreadState s = threads_[i]->state;
    if (s != SimThreadState::kBlocked && s != SimThreadState::kFinished) {
      return;  // someone can still make progress
    }
  }
  deadlocked_ = true;
  run_cv_.notify_all();
}

void Engine::ArmTriggerLocked(SimThread& u, u64 trigger) {
  // MIN, not overwrite: with several domains, multiple grant evaluations may
  // block on the same thread and the earliest boundary must win. A stale low
  // trigger self-heals: GateTriggerSlow resets to kNoTrigger and re-arms.
  if (trigger < u.gate_trigger.load(std::memory_order_relaxed)) {
    u.gate_trigger.store(trigger, std::memory_order_relaxed);
  }
}

void Engine::GrantFloorLocked(u32 d, SimThread& w, u64 lease) {
  FloorDomain& dom = domains_[d];
  CSQ_DCHECK(!dom.held && w.want_dom == d);
  w.want_dom = kInvalidFloorDomain;
  CSQ_DCHECK(dom.waiters > 0);
  --dom.waiters;
  gate_waiters_.fetch_sub(1, std::memory_order_seq_cst);
  w.floor_dom = d;
  w.lease_until = lease_on_ ? lease : 0;
  // The lease was computed from every thread visible now, so any previously
  // folded admission clamp is already accounted for.
  w.lease_clamp.store(kNoTrigger, std::memory_order_relaxed);
  if (w.lease_hits_by_dom.size() <= d) {
    w.lease_hits_by_dom.resize(d + 1, 0);
  }
  w.lazy_floor.store(false, std::memory_order_relaxed);
  w.state = SimThreadState::kRunning;
  dom.held = true;
  dom.holder = w.id;
  ++dom.grants;
  dom.held_since_ns = MonotonicNowNs();
  ++fstats_.floor_grants;
  w.has_floor.store(true, std::memory_order_release);
  // Wakeup-free handoff: a waiter inside its spin window (or the granter
  // itself, on a synchronous grant) observes the has_floor store directly;
  // only a waiter that already parked on its condvar needs a notify.
  if (w.gate_parked) {
    ++fstats_.condvar_handoffs;
    w.cv.notify_one();
  } else {
    ++fstats_.wakeup_free_handoffs;
  }
}

void Engine::ReEvalGrantsLocked() {
  ++fstats_.gate_reevals;
  for (u32 d = 0; d < domains_.size(); ++d) {
    ReEvalDomainLocked(d);
  }
}

void Engine::ReEvalDomainLocked(u32 d) {
  FloorDomain& dom = domains_[d];
  if (dom.waiters == 0) {
    return;
  }
  if (dom.held) {
    // A lazily retained floor (EndShared under a live lease) starves the
    // domain's waiters without the holder being in a shared section. Revoke
    // by arming a zero trigger: the holder's own next AdvanceRaw releases
    // and re-arbitrates. Owner-only revocation keeps the handoff race-free —
    // the floor is never yanked out from under a thread mid-shared-op.
    SimThread& h = *threads_[dom.holder];
    if (h.lazy_floor.load(std::memory_order_seq_cst)) {
      ArmTriggerLocked(h, 0);
    }
    return;
  }
  // The grant rule mirrors the serial scheduler exactly, restricted to the
  // domain: the floor goes to the minimum-(vtime, tid) gate-waiter W of d,
  // but only once no other active thread with affinity to d could still
  // reach one of d's shared operations at a smaller key. An active thread U
  // mid-local-segment blocks W while key(U) < key(W); its clock only grows,
  // so we arm a gate trigger that fires the moment U's own AdvanceRaw
  // crosses the boundary. Relaxed vtime reads are stale-low at worst, which
  // delays (never reorders) a grant; U's own trigger/park path re-evaluates
  // with its exact clock.
  SimThread* w = nullptr;
  u64 wv = 0;
  for (usize i = 0; i < threads_.size(); ++i) {
    SimThread& u = *threads_[i];
    if (u.want_dom != d) {
      continue;
    }
    const u64 uv = u.vtime.load(std::memory_order_relaxed);
    if (w == nullptr || uv < wv || (uv == wv && u.id < w->id)) {
      w = &u;
      wv = uv;
    }
  }
  if (w == nullptr) {
    return;
  }
  bool blocked = false;
  u64 lease = kNoTrigger;
  for (usize i = 0; i < threads_.size(); ++i) {
    SimThread& u = *threads_[i];
    if (&u == w || u.state == SimThreadState::kBlocked || u.state == SimThreadState::kFinished ||
        (u.domain_affinity & (1ULL << d)) == 0) {
      continue;
    }
    const u64 uv = u.vtime.load(std::memory_order_relaxed);
    if (u.want_dom == d) {
      // A losing same-domain waiter is frozen at its key: it cannot overtake
      // the grant, but it bounds the winner's lease.
      lease = std::min(lease, LeaseBoundLocked(u, uv, *w, d));
      continue;
    }
    const u64 trigger = wv + (u.id < w->id ? 1 : 0);
    if (uv < trigger) {
      blocked = true;
      ArmTriggerLocked(u, trigger);
    } else {
      // U's key already exceeds W's and can only grow: it bounds the lease.
      lease = std::min(lease, LeaseBoundLocked(u, uv, *w, d));
    }
  }
  if (!blocked) {
    GrantFloorLocked(d, *w, lease);
  }
}

void Engine::GateTriggerSlow(SimThread& t) {
  std::unique_lock<std::mutex> lk(pmu_);
  t.gate_trigger.store(kNoTrigger, std::memory_order_relaxed);
  if (t.has_floor.load(std::memory_order_relaxed) &&
      t.lazy_floor.load(std::memory_order_relaxed)) {
    // Lazy-floor revocation (owner side): a waiter armed our zero trigger
    // while we held the floor across EndShared. We are mid-local-segment
    // (lazy_floor is cleared before every shared section), so releasing here
    // never interrupts a shared op. Trade the floor back for a plain slot.
    ReleaseFloorLocked(t);
    ++fstats_.lease_revocations;
    ReEvalGrantsLocked();
    AcquireSlotLocked(lk, t);
    return;
  }
  ReEvalGrantsLocked();
}

// ---------------------------------------------------------------------------
// Gate / EndShared
// ---------------------------------------------------------------------------

void Engine::GateSharedSlow(u32 domain) {
  SimThread& t = Cur();
  if (!threaded_) {
    // Serial reference: one scheduler already orders all domains; GateShared
    // on any domain is the global minimality wait (DESIGN.md §14's merge
    // rule makes sharding a pure parallelism change, never an ordering one).
    while (!IsMinRunnable(t.id)) {
      YieldRunnable();
    }
    return;
  }
  CSQ_DCHECK(domain < domains_.size());
  CSQ_DCHECK((t.domain_affinity & (1ULL << domain)) != 0);
  std::unique_lock<std::mutex> lk(pmu_);
  if (t.has_floor.load(std::memory_order_relaxed)) {
    CSQ_CHECK_MSG(t.floor_dom == domain,
                  "thread " << t.id << " holds the domain-" << t.floor_dom
                            << " floor while gating on domain " << domain
                            << " (nested cross-domain shared sections are unsupported)");
    t.lazy_floor.store(false, std::memory_order_relaxed);
    // Consecutive shared operations: keep the floor while still the minimum
    // active thread of the domain (what the serial gate re-check does), and
    // renew the lease up to the next competitor's key.
    const u64 mv = t.vtime.load(std::memory_order_relaxed);
    bool still_min = true;
    u64 lease = kNoTrigger;
    for (usize i = 0; i < threads_.size(); ++i) {
      const SimThread& u = *threads_[i];
      if (u.id == t.id || u.state == SimThreadState::kBlocked ||
          u.state == SimThreadState::kFinished ||
          (u.domain_affinity & (1ULL << domain)) == 0) {
        continue;
      }
      const u64 uv = u.vtime.load(std::memory_order_relaxed);
      if (uv < mv || (uv == mv && u.id < t.id)) {
        still_min = false;
        break;
      }
      lease = std::min(lease, LeaseBoundLocked(u, uv, t, domain));
    }
    if (still_min) {
      t.lease_until = lease_on_ ? lease : 0;
      // Fresh scan under pmu_: every admitted competitor is visible, so any
      // folded admission clamp is subsumed by the new bound.
      t.lease_clamp.store(kNoTrigger, std::memory_order_relaxed);
      return;
    }
    ReleaseFloorLocked(t);
  } else {
    ReleaseSlotLocked(t);
  }
  t.want_dom = domain;
  ++domains_[domain].waiters;
  gate_waiters_.fetch_add(1, std::memory_order_seq_cst);
  t.state = SimThreadState::kRunnable;
  ReEvalGrantsLocked();
  if (t.has_floor.load(std::memory_order_relaxed)) {
    return;  // granted synchronously; the granter restored our state
  }
  lk.unlock();
  if (spin_handoff_) {
    // Wakeup-free handoff, waiter side: poll the grant flag briefly before
    // paying the condvar round-trip. The granter publishes everything we
    // need before the release-store of has_floor.
    for (int spin = 0; spin < kHandoffSpins; ++spin) {
      if (t.has_floor.load(std::memory_order_acquire)) {
        return;
      }
      std::this_thread::yield();
    }
  }
  lk.lock();
  if (!t.has_floor.load(std::memory_order_relaxed)) {
    t.gate_parked = true;
    t.cv.wait(lk, [&] { return t.has_floor.load(std::memory_order_relaxed); });
    t.gate_parked = false;
  }
}

void Engine::EndSharedSlow() {
  SimThread& t = Cur();
  std::unique_lock<std::mutex> lk(pmu_);
  if (!t.has_floor.load(std::memory_order_relaxed)) {
    return;
  }
  ReleaseFloorLocked(t);
  ReEvalGrantsLocked();
  AcquireSlotLocked(lk, t);
}

bool Engine::BeginHostWait() {
  if (!threaded_) {
    return false;  // serial engine: one host thread, host waits cannot occur
  }
  SimThread* t = CurPtr();
  if (t == nullptr) {
    return false;  // outside the simulation (bench setup code)
  }
  std::lock_guard<std::mutex> lk(pmu_);
  if (t->has_floor.load(std::memory_order_relaxed)) {
    return false;
  }
  ReleaseSlotLocked(*t);
  return true;
}

void Engine::EndHostWait(bool lent_slot) {
  if (!lent_slot) {
    return;
  }
  SimThread& t = Cur();
  std::unique_lock<std::mutex> lk(pmu_);
  AcquireSlotLocked(lk, t);
}

// ---------------------------------------------------------------------------
// Wait / Notify
// ---------------------------------------------------------------------------

u64 Engine::Wait(WaitChannel& ch, TimeCat cat) {
  SimThread& t = Cur();
  if (!threaded_) {
    ch.waiters.push_back(t.id);
    t.state = SimThreadState::kBlocked;
    t.wait_cat = cat;
    t.wait_ch = &ch;
    SwitchToScheduler();
    // Woken: the notifier already advanced our vtime and attributed the wait.
    return t.vtime.load(std::memory_order_relaxed);
  }
  std::unique_lock<std::mutex> lk(pmu_);
  if (t.has_floor.load(std::memory_order_relaxed)) {
    ReleaseFloorLocked(t);
  } else {
    ReleaseSlotLocked(t);
  }
  ch.waiters.push_back(t.id);
  t.state = SimThreadState::kBlocked;
  t.wait_cat = cat;
  t.wait_ch = &ch;
  ParkEpilogueLocked();
  t.cv.wait(lk, [&] { return t.woken; });
  t.woken = false;
  AcquireSlotLocked(lk, t);
  t.state = SimThreadState::kRunning;
  return t.vtime.load(std::memory_order_relaxed);
}

u64 Engine::WakeVtimeLocked(SimThread& waiter) {
  const u64 now = Cur().vtime.load(std::memory_order_relaxed);
  return std::max(waiter.vtime.load(std::memory_order_relaxed),
                  now + cfg_.costs.Jitter(waiter.jitter, cfg_.costs.wake_latency));
}

usize Engine::NotifyOne(WaitChannel& ch) {
  if (!threaded_) {
    if (ch.waiters.empty()) {
      return 0;
    }
    const ThreadId w = ch.waiters.front();
    ch.waiters.erase(ch.waiters.begin());
    SimThread& t = *threads_[w];
    CSQ_CHECK_MSG(t.state == SimThreadState::kBlocked, "notify of non-blocked thread " << w);
    const u64 wake_vt = WakeVtimeLocked(t);
    t.cat[static_cast<usize>(t.wait_cat)] += wake_vt - t.vtime.load(std::memory_order_relaxed);
    t.vtime.store(wake_vt, std::memory_order_relaxed);
    t.wait_ch = nullptr;
    t.state = SimThreadState::kRunnable;
    return 1;
  }
  std::lock_guard<std::mutex> lk(pmu_);
  return NotifyOneLocked(ch);
}

usize Engine::NotifyOneLocked(WaitChannel& ch) {
  if (ch.waiters.empty()) {
    return 0;
  }
  const ThreadId w = ch.waiters.front();
  ch.waiters.erase(ch.waiters.begin());
  SimThread& t = *threads_[w];
  CSQ_CHECK_MSG(t.state == SimThreadState::kBlocked, "notify of non-blocked thread " << w);
  const u64 wake_vt = WakeVtimeLocked(t);
  t.cat[static_cast<usize>(t.wait_cat)] += wake_vt - t.vtime.load(std::memory_order_relaxed);
  t.vtime.store(wake_vt, std::memory_order_relaxed);
  t.wait_ch = nullptr;
  t.state = SimThreadState::kRunnable;  // active again; runs once it has a slot
  t.woken = true;
  // Locality hint (DESIGN.md §16): on opted-in handoff channels the woken
  // thread inherits the notifier's slot preference — the notifier typically
  // blocks right after (token passing), freeing exactly that slot.
  if (ch.affinity_hint) {
    const SimThread* me = CurPtr();
    if (me != nullptr) {
      t.wake_slot_hint = me->cur_slot != kInvalidSlot ? me->cur_slot : me->last_slot;
    }
  }
  t.cv.notify_one();
  // The woken thread re-enters competition at wake_vt: if we hold a lease,
  // it must not extend past the new competitor's key; other domains' leased
  // holders get the same bound through the cross-domain admission clamp.
  if (lease_on_) {
    SimThread* me = CurPtr();
    if (me != nullptr && me->has_floor.load(std::memory_order_relaxed)) {
      me->lease_until = std::min(me->lease_until, wake_vt + (t.id > me->id ? 1 : 0));
    }
    ClampForeignLeasesLocked(t, wake_vt);
  }
  return 1;
}

void Engine::ClampForeignLeasesLocked(const SimThread& admitted, u64 key_vtime) {
  if (!lease_on_) {
    return;
  }
  const SimThread* me = CurPtr();
  for (u32 d = 0; d < domains_.size(); ++d) {
    const FloorDomain& dom = domains_[d];
    if (!dom.held || (admitted.domain_affinity & (1ULL << d)) == 0) {
      continue;
    }
    SimThread& h = *threads_[dom.holder];
    if (&h == me || &h == &admitted) {
      continue;  // self-clamps on lease_until cover the admitter's own floor
    }
    const u64 b = key_vtime + (admitted.id > h.id ? 1 : 0);
    if (b < h.lease_clamp.load(std::memory_order_relaxed)) {
      h.lease_clamp.store(b, std::memory_order_relaxed);
    }
  }
}

usize Engine::NotifyAll(WaitChannel& ch) {
  if (!threaded_) {
    usize n = 0;
    while (NotifyOne(ch) != 0) {
      ++n;
    }
    return n;
  }
  std::lock_guard<std::mutex> lk(pmu_);
  usize n = 0;
  while (NotifyOneLocked(ch) != 0) {
    ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

u64 Engine::CatTotalAll(TimeCat cat) const {
  u64 sum = 0;
  for (usize i = 0; i < threads_.size(); ++i) {
    sum += threads_[i]->cat[static_cast<usize>(cat)];
  }
  return sum;
}

u64 Engine::CompletionVtime() const {
  u64 max_vt = 0;
  for (usize i = 0; i < threads_.size(); ++i) {
    max_vt = std::max(max_vt, threads_[i]->finish_vtime);
  }
  return max_vt;
}

EngineFloorStats Engine::FloorStats() const {
  EngineFloorStats s = fstats_;
  for (usize i = 0; i < threads_.size(); ++i) {
    for (const u64 hits : threads_[i]->lease_hits_by_dom) {
      s.lease_hits += hits;
    }
    s.lazy_retains += threads_[i]->lazy_retains;
  }
  return s;
}

std::vector<EngineDomainFloorStat> Engine::DomainFloorStats() const {
  std::vector<EngineDomainFloorStat> out;
  out.reserve(domains_.size());
  for (usize d = 0; d < domains_.size(); ++d) {
    EngineDomainFloorStat s;
    s.label = domains_[d].label;
    s.grants = domains_[d].grants;
    for (usize i = 0; i < threads_.size(); ++i) {
      const std::vector<u64>& hits = threads_[i]->lease_hits_by_dom;
      if (d < hits.size()) {
        s.lease_hits += hits[d];
      }
    }
    s.floor_held_ns = domains_[d].held_ns;
    out.push_back(std::move(s));
  }
  return out;
}

EngineSchedStats Engine::SchedStats() const {
  return sstats_;
}

}  // namespace csq::sim
