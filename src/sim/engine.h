// Deterministic discrete-event simulation engine.
//
// The engine runs N simulated threads and gives each a virtual-time clock. The
// single ordering rule that makes the whole simulation deterministic AND
// faithful to a real multicore is:
//
//   A simulated thread may touch shared simulation state only while it is the
//   minimum-(vtime, tid) *active* thread (GateShared()).
//
// Purely local computation (the vast majority of a workload: its own arithmetic
// plus loads/stores to its isolated Conversion workspace) never orders against
// other threads, so the simulation is fast; shared operations (token handoffs,
// commits, lock grants) execute in global virtual-time order, exactly as they
// would interleave on a real machine with one core per thread — the
// configuration the paper's 32-core testbed provides.
//
// Blocked threads are excluded from the gate: any operation that could wake
// them must itself be a shared operation, so it executes at a vtime >= every
// pending shared operation, and the woken thread resumes no earlier than its
// waker. This gives exact conservative discrete-event semantics without a
// lookahead horizon.
//
// Two host substrates implement those semantics (see DESIGN.md §11):
//
//   * serial (host_workers == 1, the default and the reference): all simulated
//     threads are ucontext fibers on one host thread; a cooperative scheduler
//     always resumes the minimum-(vtime, tid) runnable fiber.
//   * host-parallel (host_workers > 1): each simulated thread is a dedicated
//     host thread; local segments (everything between shared operations) run
//     concurrently, bounded by a pool of `host_workers` execution slots, while
//     "floors" — the exclusive right to execute shared operations, one per
//     floor *domain* — are granted in exactly the serial engine's (vtime, tid)
//     order. This is classic conservative PDES: isolation makes local segments
//     commute, so only shared operations need ordering, and the results
//     (checksums, trace digests, commit orders, per-category virtual times)
//     are bit-identical to the serial engine.
//
// Three mechanisms keep the floor off the critical path (DESIGN.md §14):
//
//   * batched grants — a floor grant carries a *lease* up to the next
//     competitor's key, so consecutive shared ops of the same thread skip
//     re-arbitration entirely while the lease is live; leases are computed
//     per floor domain and compose with sharding (DESIGN.md §16);
//   * sharded floor domains — layers may partition shared ops into
//     independently ordered domains (one per segment); threads touching
//     disjoint domains hold disjoint floors concurrently, and the
//     lexicographic (vtime, domain, tid) merge rule reconstructs the single
//     deterministic total order;
//   * wakeup-free handoff — grants land in a briefly spinning waiter through
//     an atomic flag, skipping the condvar round-trip, and wake notifications
//     are targeted per-thread instead of broadcast.
//
// Execution slots are *identified* (0..host_workers-1) and handed out with a
// locality preference (DESIGN.md §16): a thread re-acquiring a slot gets its
// previous slot when free, falling back to a wake-affinity hint seeded by the
// notifier on opted-in channels, and only then deterministically "steals" the
// lowest-numbered free slot. Layers key worker-local resources (the conv
// buffer-pool partitions) off the slot id, so a thread's consecutive chunks
// reuse warm per-slot state. Slot placement is pure host scheduling: it never
// feeds a simulated quantity, so results stay bit-identical under any policy.
//
// Under ThreadSanitizer the engine always uses the threaded substrate (TSan
// cannot follow ucontext stack switches); with host_workers == 1 that is a
// one-slot pool with semantics identical to the serial reference.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/cost_model.h"
#include "src/sim/fiber.h"
#include "src/sim/time_category.h"
#include "src/util/check.h"
#include "src/util/hash.h"
#include "src/util/rng.h"
#include "src/util/stable_vec.h"
#include "src/util/types.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CSQ_TSAN 1
#endif
#endif
#if !defined(CSQ_TSAN) && defined(__SANITIZE_THREAD__)
#define CSQ_TSAN 1
#endif

namespace csq::sim {

using ThreadId = u32;
inline constexpr ThreadId kInvalidThread = 0xffffffffu;
inline constexpr u32 kInvalidSlot = 0xffffffffu;

// Floor domains (DESIGN.md §14). Domain 0 always exists and is the global
// default; layers carve out additional domains with Engine::CreateFloorDomain
// and scope threads with SetDomainAffinity. Affinity is a u64 bitmask, hence
// the domain-count cap.
inline constexpr u32 kGlobalFloorDomain = 0;
inline constexpr u32 kInvalidFloorDomain = 0xffffffffu;
inline constexpr u32 kMaxFloorDomains = 64;

// A deterministic FIFO wait queue. Engine::Wait enqueues the calling thread;
// Engine::NotifyOne/NotifyAll dequeue and wake. The label names the channel in
// deadlock reports.
struct WaitChannel {
  std::vector<ThreadId> waiters;
  const char* label = nullptr;
  // Opt-in locality hint (DESIGN.md §16): a notify on this channel seeds the
  // woken thread's slot preference with the notifier's slot. Meant for
  // handoff-shaped channels (the clock's token channel) where the notifier
  // blocks right after waking its successor, so the successor inherits the
  // warm slot. Pure host placement — never affects simulated results.
  bool affinity_hint = false;

  bool Empty() const { return waiters.empty(); }
};

struct SimConfig {
  CostModel costs;
  usize stack_size = 256 * 1024;
  // Host execution slots for local segments. 1 = serial reference engine
  // (single-host-thread fibers); >1 = conservative host-parallel engine with
  // bit-identical simulated results.
  u32 host_workers = 1;
  // Tests only: use the threaded substrate even at host_workers == 1.
  bool force_threaded = false;
  // Batched floor grants (DESIGN.md §14, §16): grant the floor together with
  // a lease up to the next competitor's key so a run of same-thread shared
  // ops amortizes one grant arbitration instead of re-arbitrating per op. A
  // pure host-scheduling optimization — simulated results are bit-identical
  // with the lease on or off (the equivalence suite toggles it). Leases are
  // per floor domain: each domain's lease is bounded by the min competitor
  // key *within that domain*, and cross-domain admissions (Spawn, NotifyOne
  // from a foreign domain's floor) clamp the affected holders (§16's
  // cross-domain clamp rule), so leases compose with sharded domains.
  bool floor_lease = true;
};

enum class SimThreadState : u8 {
  kRunnable,
  kRunning,
  kBlocked,
  kFinished,
};

// Floor-handoff observability (DESIGN.md §14). All counters are host-engine
// scheduling facts — 0 on the serial substrate — and are excluded from
// determinism and engine-equivalence comparisons, like host_wall_ns.
struct EngineFloorStats {
  u64 floor_grants = 0;        // grants issued by ReEvalGrants arbitration
  u64 lease_hits = 0;          // GateShared satisfied by a live lease (no lock)
  u64 lazy_retains = 0;        // EndShared kept the floor under a live lease
  u64 lease_revocations = 0;   // lazily retained floors reclaimed by a waiter
  u64 wakeup_free_handoffs = 0;  // grants landing without a condvar wakeup
  u64 condvar_handoffs = 0;      // grants that had to notify a parked waiter
  u64 gate_reevals = 0;          // grant re-evaluation passes
};

// Per-domain floor occupancy, labelled for the harness table.
struct EngineDomainFloorStat {
  std::string label;
  u64 grants = 0;
  u64 lease_hits = 0;     // lock-free GateShared hits on this domain's lease
  u64 floor_held_ns = 0;  // host wall time this domain's floor was held
};

// Locality-aware slot scheduling observability (DESIGN.md §16). Host-engine
// scheduling facts like EngineFloorStats: all zero on the serial substrate
// and excluded from determinism / equivalence comparisons.
struct EngineSchedStats {
  u64 slot_acquires = 0;   // total slot handouts
  u64 affinity_hits = 0;   // thread got the same slot as its previous chunk
  u64 hint_grants = 0;     // affine slot busy; wake-affinity hint slot taken
  u64 steals = 0;          // affine slot busy, no usable hint: stole lowest free
  u64 cold_starts = 0;     // first acquire of a thread (no affinity yet)
  u32 host_slots = 0;      // identified execution slots (= max(1, host_workers))
};

class Engine {
 public:
  explicit Engine(SimConfig cfg = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // ---- Host-side API -------------------------------------------------------

  // Creates a simulated thread. May be called before Run() (initial threads,
  // vtime 0) or from inside a running simulated thread (vtime = spawner's
  // Now()); mid-run spawns must hold the shared-state gate.
  ThreadId Spawn(std::function<void()> fn);

  // Runs the simulation until every thread has finished. CHECK-fails on
  // deadlock (all remaining threads blocked), dumping every non-finished
  // thread with its state, vtime and the channel it is parked on.
  void Run();

  // ---- Floor domains (DESIGN.md §14) ---------------------------------------

  // Creates a new floor domain (before Run()). Returns its id, usable as the
  // argument of GateShared. On the serial substrate domains are a pure
  // annotation — one scheduler already orders everything — but ids are still
  // allocated so layer code is substrate-agnostic.
  u32 CreateFloorDomain(const char* label);

  // Restricts thread `t` to the given domain bitmask (bit d = may gate on
  // domain d). Defaults to all domains. A thread must never GateShared on a
  // domain outside its mask: the mask is what lets the grant rule ignore it
  // as a blocker for foreign domains. Call before Run().
  void SetDomainAffinity(ThreadId t, u64 mask);

  u32 FloorDomainCount() const { return static_cast<u32>(domains_.size()); }

  // ---- In-thread API -------------------------------------------------------

  ThreadId Self() const {
    SimThread* t = CurPtr();
    CSQ_CHECK_MSG(t != nullptr, "in-thread API called outside the simulation");
    return t->id;
  }

  // Current thread's virtual time.
  u64 Now() const { return Cur().vtime.load(std::memory_order_relaxed); }

  // Advances the current thread's clock by a pre-jittered amount. Inline:
  // this is the hottest call in the simulation (one per workspace access).
  // The vtime store is a plain move on x86; the gate-trigger check lets the
  // parallel engine re-evaluate floor grants the moment this thread's clock
  // passes a parked thread's gate time (never taken on the serial engine).
  void AdvanceRaw(u64 cycles, TimeCat cat) {
    SimThread& t = Cur();
    const u64 nv = t.vtime.load(std::memory_order_relaxed) + cycles;
    t.vtime.store(nv, std::memory_order_relaxed);
    t.cat[static_cast<usize>(cat)] += cycles;
    if (nv >= t.gate_trigger.load(std::memory_order_relaxed)) {
      GateTriggerSlow(t);
    }
  }

  // Applies cost-model jitter to `cost`, advances the clock, returns the
  // jittered amount.
  u64 Charge(u64 cost, TimeCat cat) {
    SimThread& t = Cur();
    const u64 jittered = cfg_.costs.Jitter(t.jitter, cost);
    AdvanceRaw(jittered, cat);
    return jittered;
  }

  // Blocks until the current thread is the minimum-(vtime, tid) active thread
  // of `domain` and acquires the exclusive right to touch that domain's
  // shared simulation state. All shared-state operations (in the engine and
  // in the layers above) must be performed under this gate, on the domain
  // that owns the state (engine-internal state — wait channels, Trace —
  // belongs to domain 0). The right is held across consecutive GateShared()
  // calls (each re-checks minimality) and released by EndShared() or by any
  // park (Wait / thread exit).
  //
  // Batched-grant fast path: while the floor lease is live (this thread's
  // vtime is below the next competitor's key at grant time), minimality
  // cannot have been lost, so the re-check — and its lock — is skipped.
  // `lease_clamp` is the cross-domain admission bound (DESIGN.md §16): an
  // admitter that injects a competitor below this domain's lease bound
  // tightens it from outside, and the fast path honours the tighter of the
  // two.
  void GateShared(u32 domain = kGlobalFloorDomain) {
    if (lease_on_) {
      SimThread& t = Cur();
      if (t.has_floor.load(std::memory_order_relaxed) && t.floor_dom == domain) {
        const u64 v = t.vtime.load(std::memory_order_relaxed);
        if (v < t.lease_until && v < t.lease_clamp.load(std::memory_order_relaxed)) {
          t.lazy_floor.store(false, std::memory_order_relaxed);
          ++t.lease_hits_by_dom[domain];
          return;
        }
      }
    }
    GateSharedSlow(domain);
  }

  // Declares the end of a shared section: the calling thread is returning to
  // purely local execution. A no-op on the serial engine; on the parallel
  // engine it releases the floor so the next minimum-(vtime, tid) thread can
  // run its shared operation concurrently with this thread's local segment.
  // Missing calls cost parallelism, never correctness.
  //
  // Lazy release under a live lease: this thread is still ahead of every
  // competitor, so handing the floor back just to re-win it at the next
  // shared op is pure churn. The floor is kept (flagged lazy) and doubles as
  // the execution permit; a later waiter revokes it by arming a zero gate
  // trigger. The seq_cst pairing with gate_waiters_ closes the store-buffer
  // race: either this thread sees the waiter (and releases properly), or the
  // waiter's re-evaluation sees lazy_floor and revokes.
  void EndShared() {
    if (!threaded_) {
      return;
    }
    SimThread& t = Cur();
    if (lease_on_ && t.has_floor.load(std::memory_order_relaxed)) {
      const u64 v = t.vtime.load(std::memory_order_relaxed);
      if (v < t.lease_until && v < t.lease_clamp.load(std::memory_order_relaxed)) {
        t.lazy_floor.store(true, std::memory_order_seq_cst);
        if (gate_waiters_.load(std::memory_order_seq_cst) == 0) {
          ++t.lazy_retains;
          return;
        }
        t.lazy_floor.store(false, std::memory_order_relaxed);
      }
    }
    EndSharedSlow();
  }

  // Cooperative yield (stays runnable). Rarely needed outside GateShared.
  void YieldRunnable();

  // Host-wait slot lending (off-floor commit pipeline). A thread about to
  // block on a HOST-side condition — e.g. a page revision whose off-floor
  // publish has not landed yet — returns its execution slot to the pool so a
  // bounded worker pool cannot deadlock on host-level waits; the simulated
  // clock is untouched (the wait is invisible to virtual time). Floor holders
  // keep the floor: they are mid-shared-op, and the conditions they may host-
  // wait on are resolved by threads that need only a slot, never the floor.
  // Returns true iff a slot was lent; pass the result to EndHostWait.
  bool BeginHostWait();
  void EndHostWait(bool lent_slot);

  // Blocks on `ch`; wait time is attributed to `cat`. Returns the vtime at
  // which the thread was woken.
  u64 Wait(WaitChannel& ch, TimeCat cat);

  // Wakes the first / all waiter(s) at max(waiter vtime, Now() + wake_latency).
  // Returns the number of threads woken. Callers must hold the gate.
  usize NotifyOne(WaitChannel& ch);
  usize NotifyAll(WaitChannel& ch);

  // ---- Introspection -------------------------------------------------------

  const CostModel& Costs() const { return cfg_.costs; }
  usize ThreadCount() const { return threads_.size(); }
  SimThreadState StateOf(ThreadId t) const { return threads_[t]->state; }
  u64 VtimeOf(ThreadId t) const {
    return threads_[t]->vtime.load(std::memory_order_relaxed);
  }
  u64 CatTotal(ThreadId t, TimeCat cat) const {
    return threads_[t]->cat[static_cast<usize>(cat)];
  }
  u64 CatTotalAll(TimeCat cat) const;

  // Virtual completion time of the whole program: max finish vtime.
  u64 CompletionVtime() const;

  // Floor-handoff statistics. Call after Run() (no synchronization: summing
  // the owner-written per-thread fast-path counters is only safe once the
  // host threads have been joined).
  EngineFloorStats FloorStats() const;
  std::vector<EngineDomainFloorStat> DomainFloorStats() const;

  // Locality-aware slot scheduling statistics. Call after Run().
  EngineSchedStats SchedStats() const;

  // Number of identified execution slots (1 on the serial substrate).
  u32 HostWorkerSlots() const {
    return threaded_ ? std::max<u32>(1, cfg_.host_workers) : 1;
  }

  // The calling thread's current (or, while floor-held and slotless, most
  // recent) execution slot — the partition key for worker-local resources
  // like the conv buffer-pool partitions. 0 outside the simulation and on
  // the serial substrate; always < HostWorkerSlots().
  u32 HostWorkerHint() const {
    if (!threaded_) {
      return 0;
    }
    const SimThread* t = CurPtr();
    if (t == nullptr) {
      return 0;
    }
    if (t->cur_slot != kInvalidSlot) {
      return t->cur_slot;
    }
    return t->last_slot != kInvalidSlot ? t->last_slot : 0;
  }

  // Deterministic schedule fingerprinting. Layers above mix every ordering
  // decision (sync op grants, commit order, ...) into this digest; determinism
  // tests assert it is identical across runs/jitter seeds, and the
  // engine-equivalence suite asserts it is identical across host_workers
  // settings. Callers hold the gate (all call sites are token-held, hence
  // domain 0 — sharded domains must not Trace, see DESIGN.md §14), which
  // serializes the mixes on the parallel engine.
  void Trace(u64 tag, u64 a, u64 b, u64 c) {
    trace_.Mix(tag);
    trace_.Mix(a);
    trace_.Mix(b);
    trace_.Mix(c);
    ++trace_events_;
  }
  u64 TraceDigest() const { return trace_.Digest(); }
  u64 TraceEvents() const { return trace_events_; }

  // True when this engine executes simulated threads on host threads
  // (host_workers > 1, force_threaded, or any build where fibers are
  // unavailable, e.g. ThreadSanitizer).
  bool Threaded() const { return threaded_; }

 private:
  static constexpr u64 kNoTrigger = ~0ULL;
  // Spin budget of the wakeup-free handoff path: how long a gate-waiter polls
  // its has_floor flag before parking on its condvar. Yield every iteration —
  // on an oversubscribed host that lets the (likely) current floor holder run.
  static constexpr int kHandoffSpins = 128;

  struct SimThread {
    ThreadId id = kInvalidThread;
    SimThreadState state = SimThreadState::kRunnable;
    // Owner-written (relaxed); read by the parallel grant rule from other
    // threads. A stale (low) read is conservative: it can only delay a floor
    // grant, and the gate trigger re-evaluates once the owner advances.
    std::atomic<u64> vtime{0};
    // When this thread's vtime reaches the trigger, it stops blocking the
    // minimum parked gate-waiter and must re-evaluate grants (parallel only).
    // Granters arm it to the MIN of its current value (several domains may
    // block on the same thread); 0 forces the next AdvanceRaw into the slow
    // path, which is how lazily retained floors are revoked.
    std::atomic<u64> gate_trigger{kNoTrigger};
    u64 finish_vtime = 0;
    TimeCat wait_cat = TimeCat::kChunk;
    const WaitChannel* wait_ch = nullptr;  // non-null while parked in Wait
    DetRng jitter;
    std::array<u64, kNumTimeCats> cat{};

    // Serial substrate.
    std::unique_ptr<Fiber> fiber;

    // Threaded substrate. Flags below are guarded by Engine::pmu_ unless
    // noted otherwise.
    std::function<void()> fn;
    std::thread host;
    std::condition_variable cv;
    bool started = false;     // host thread has been released into fn()
    // Holds the shared-operation right of floor_dom. Written under pmu_ by
    // the granter (release) and by the owner's release paths; atomic so the
    // owner's lock-free lease fast paths and the spinning-handoff poll can
    // read it — floor handoffs are the hot serial path of the commit
    // pipeline.
    std::atomic<bool> has_floor{false};
    // Batched-grant lease. `lease_until` is written by the granter under
    // pmu_ before the has_floor handoff (the release/acquire pair orders it)
    // and clamped by the owner when it wakes or spawns a competitor. All
    // writes happen under pmu_, so cross-thread hint reads under pmu_ are
    // race-free; the lock-free fast paths are owner-only reads.
    u64 lease_until = 0;
    // Cross-domain admission clamp (DESIGN.md §16): an admitter (Spawn,
    // NotifyOne) that injects a competitor into this holder's domain from
    // outside it min-folds the competitor's key here, under pmu_; the
    // owner's lease fast paths read it lock-free and honour the tighter
    // bound. Reset to kNoTrigger whenever a fresh lease is computed under
    // pmu_ (grant, renewal, release) — at that point every admitted
    // competitor is visible to the scan.
    std::atomic<u64> lease_clamp{~0ULL};
    // Floor retained across EndShared under a live lease. Owner-written
    // lock-free; read by revokers under pmu_ (see EndShared for the seq_cst
    // pairing with gate_waiters_).
    std::atomic<bool> lazy_floor{false};
    u32 floor_dom = kInvalidFloorDomain;  // domain of the held floor
    u32 want_dom = kInvalidFloorDomain;   // domain awaited in GateShared
    u64 domain_affinity = ~0ULL;  // domains this thread may gate on
    bool gate_parked = false;     // parked on cv awaiting the floor
    bool woken = false;           // Wait() wake handshake
    // Locality-aware slot scheduling (DESIGN.md §16). Guarded by pmu_.
    u32 cur_slot = kInvalidSlot;   // held execution slot (invalid while
                                   // floor-held, host-waiting or parked)
    u32 last_slot = kInvalidSlot;  // previous slot: the affinity preference
    u32 wake_slot_hint = kInvalidSlot;  // seeded by NotifyOne on hint channels
    // Owner-written fast-path counters; summed by FloorStats() /
    // DomainFloorStats() after Run(). lease_hits_by_dom is sized by the
    // granter (under pmu_, before the has_floor handoff) so the fast path
    // indexes it unconditionally.
    std::vector<u64> lease_hits_by_dom;
    u64 lazy_retains = 0;
  };

  // One floor per domain (threaded substrate). Guarded by pmu_.
  struct FloorDomain {
    const char* label = "global";
    bool held = false;
    ThreadId holder = kInvalidThread;
    u32 waiters = 0;  // threads in GateSharedSlow awaiting this domain
    u64 grants = 0;
    u64 held_since_ns = 0;
    u64 held_ns = 0;
  };

  // ---- Shared helpers ------------------------------------------------------
  SimThread* CurPtr() const;
  SimThread& Cur() const {
    SimThread* t = CurPtr();
    CSQ_CHECK_MSG(t != nullptr, "in-thread API called outside the simulation");
    return *t;
  }
  void GateSharedSlow(u32 domain);
  void EndSharedSlow();
  void GateTriggerSlow(SimThread& t);
  [[noreturn]] void DieOfDeadlock() const;
  std::string BuildDeadlockReport() const;

  // ---- Serial substrate ----------------------------------------------------
  void RunSerial();
  bool IsMinRunnable(ThreadId t) const;
  ThreadId PickNext() const;
  void SwitchToScheduler();

  // ---- Threaded substrate --------------------------------------------------
  void RunThreaded();
  void HostThreadBody(SimThread* t);
  void LaunchHostThread(SimThread* t);
  // Per-domain grant rule: grant domain d's floor to its minimum-(vtime, tid)
  // gate-waiter if no active thread with affinity to d and a smaller key can
  // still reach d's shared state first; otherwise arm gate triggers on the
  // blockers. Requires pmu_.
  void ReEvalGrantsLocked();
  void ReEvalDomainLocked(u32 d);
  void GrantFloorLocked(u32 d, SimThread& w, u64 lease);
  void ArmTriggerLocked(SimThread& u, u64 trigger);
  void AcquireSlotLocked(std::unique_lock<std::mutex>& lk, SimThread& t);
  void ReleaseSlotLocked(SimThread& t);
  void ReleaseFloorLocked(SimThread& t);
  void ParkEpilogueLocked();  // re-eval grants + deadlock/done detection
  // Per-domain lease bound contributed by competitor `u` against winner `w`
  // (DESIGN.md §16): u's key frozen-or-growing at `uv` bounds the lease at
  // uv, +1 when u's id loses the tie-break — unless u could admit a
  // competitor at its own vtime (wake_floor_ge1_ false), where the tie
  // adjustment is dropped for admission-capable (non-gate-waiting) threads.
  u64 LeaseBoundLocked(const SimThread& u, u64 uv, const SimThread& w, u32 d) const {
    const bool tie_adj = u.id > w.id && (wake_floor_ge1_ || u.want_dom == d);
    return uv + (tie_adj ? 1 : 0);
  }
  void ClampForeignLeasesLocked(const SimThread& admitted, u64 key_vtime);
  usize NotifyOneLocked(WaitChannel& ch);

  u64 WakeVtimeLocked(SimThread& waiter);

  SimConfig cfg_;
  bool threaded_ = false;
  // StableVec, not deque: the record for thread i must be readable (vtime
  // introspection, Cur() via TLS pointer) while a gate-held thread spawns
  // thread i+1 on the parallel engine.
  StableVec<std::unique_ptr<SimThread>> threads_;
  bool running_ = false;
  Fnv1a trace_;
  u64 trace_events_ = 0;

  // Serial substrate state.
  ThreadId current_ = kInvalidThread;
  SimThread* cur_thread_ = nullptr;  // threads_[current_].get(); single-load Cur()
  ucontext_t main_ctx_{};

  // Threaded substrate state. pmu_ protects all scheduling state (thread
  // states, flags, wait channels, slot count); every floor handoff passes
  // through it, so gate-held plain data (trace_, channel vectors, another
  // thread's cat[] at wake) is release/acquire-chained between holders.
  std::mutex pmu_;
  std::condition_variable run_cv_;    // Run() waits for completion/deadlock
  std::condition_variable slot_cv_;   // local-segment slot pool
  u32 free_slots_ = 0;
  std::vector<u8> slot_free_;         // per-slot availability (1 = free)
  EngineSchedStats sstats_;           // slot-locality counters (pmu_)
  std::vector<FloorDomain> domains_;  // [0] = global; created before Run()
  bool lease_on_ = false;       // threaded && floor_lease
  bool spin_handoff_ = false;   // multi-core host: spin before parking
  // True when the minimum possible jittered wake_latency is >= 1: a woken
  // competitor's vtime then strictly exceeds its waker's, which is what
  // makes the lease tie-break adjustment (+1 for larger-id competitors)
  // admission-safe. See LeaseBoundLocked and DESIGN.md §16.
  bool wake_floor_ge1_ = false;
  // Threads currently in GateSharedSlow between enqueue and grant, any
  // domain. Read lock-free by EndShared's lazy fast path (seq_cst, paired
  // with lazy_floor).
  std::atomic<u32> gate_waiters_{0};
  EngineFloorStats fstats_;     // slow-path counters (pmu_)
  bool deadlocked_ = false;
  bool shutdown_ = false;             // ~Engine with never-started threads
  usize finished_count_ = 0;
};

}  // namespace csq::sim
