// Deterministic discrete-event simulation engine.
//
// The engine runs N simulated threads (fibers) on one host thread and gives
// each a virtual-time clock. The single ordering rule that makes the whole
// simulation deterministic AND faithful to a real multicore is:
//
//   A simulated thread may touch shared simulation state only while it is the
//   minimum-(vtime, tid) *runnable* thread (GateShared()).
//
// Purely local computation (the vast majority of a workload: its own arithmetic
// plus loads/stores to its isolated Conversion workspace) never yields, so the
// simulation is fast; shared operations (token handoffs, commits, lock grants)
// execute in global virtual-time order, exactly as they would interleave on a
// real machine with one core per thread — the configuration the paper's 32-core
// testbed provides.
//
// Blocked threads are excluded from the gate: any operation that could wake
// them must itself be a shared operation, so it executes at a vtime >= every
// pending shared operation, and the woken thread resumes no earlier than its
// waker. This gives exact conservative discrete-event semantics without a
// lookahead horizon.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/sim/cost_model.h"
#include "src/sim/fiber.h"
#include "src/sim/time_category.h"
#include "src/util/check.h"
#include "src/util/hash.h"
#include "src/util/rng.h"
#include "src/util/types.h"

namespace csq::sim {

using ThreadId = u32;
inline constexpr ThreadId kInvalidThread = 0xffffffffu;

// A deterministic FIFO wait queue. Engine::Wait enqueues the calling thread;
// Engine::NotifyOne/NotifyAll dequeue and wake.
struct WaitChannel {
  std::vector<ThreadId> waiters;

  bool Empty() const { return waiters.empty(); }
};

struct SimConfig {
  CostModel costs;
  usize stack_size = 256 * 1024;
};

enum class SimThreadState : u8 {
  kRunnable,
  kRunning,
  kBlocked,
  kFinished,
};

class Engine {
 public:
  explicit Engine(SimConfig cfg = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // ---- Host-side API -------------------------------------------------------

  // Creates a simulated thread. May be called before Run() (initial threads,
  // vtime 0) or from inside a running fiber (vtime = spawner's Now()).
  ThreadId Spawn(std::function<void()> fn);

  // Runs the simulation until every thread has finished. CHECK-fails on
  // deadlock (all remaining threads blocked).
  void Run();

  // ---- In-fiber API --------------------------------------------------------

  ThreadId Self() const {
    CSQ_CHECK_MSG(current_ != kInvalidThread, "in-fiber API called outside a fiber");
    return current_;
  }

  // Current thread's virtual time.
  u64 Now() const { return threads_[Self()]->vtime; }

  // Advances the current thread's clock by a pre-jittered amount. Inline:
  // this is the hottest call in the simulation (one per workspace access).
  void AdvanceRaw(u64 cycles, TimeCat cat) {
    SimThread& t = Cur();
    t.vtime += cycles;
    t.cat[static_cast<usize>(cat)] += cycles;
  }

  // Applies cost-model jitter to `cost`, advances the clock, returns the
  // jittered amount.
  u64 Charge(u64 cost, TimeCat cat) {
    SimThread& t = Cur();
    const u64 jittered = cfg_.costs.Jitter(t.jitter, cost);
    AdvanceRaw(jittered, cat);
    return jittered;
  }

  // Blocks until the current thread is the minimum-(vtime, tid) runnable
  // thread. All shared-state operations (in the engine and in the layers above)
  // must be performed under this gate.
  void GateShared();

  // Cooperative yield (stays runnable). Rarely needed outside GateShared.
  void YieldRunnable();

  // Blocks on `ch`; wait time is attributed to `cat`. Returns the vtime at
  // which the thread was woken.
  u64 Wait(WaitChannel& ch, TimeCat cat);

  // Wakes the first / all waiter(s) at max(waiter vtime, Now() + wake_latency).
  // Returns the number of threads woken.
  usize NotifyOne(WaitChannel& ch);
  usize NotifyAll(WaitChannel& ch);

  // ---- Introspection -------------------------------------------------------

  const CostModel& Costs() const { return cfg_.costs; }
  usize ThreadCount() const { return threads_.size(); }
  SimThreadState StateOf(ThreadId t) const { return threads_[t]->state; }
  u64 VtimeOf(ThreadId t) const { return threads_[t]->vtime; }
  u64 CatTotal(ThreadId t, TimeCat cat) const {
    return threads_[t]->cat[static_cast<usize>(cat)];
  }
  u64 CatTotalAll(TimeCat cat) const;

  // Virtual completion time of the whole program: max finish vtime.
  u64 CompletionVtime() const;

  // Deterministic schedule fingerprinting. Layers above mix every ordering
  // decision (sync op grants, commit order, ...) into this digest; determinism
  // tests assert it is identical across runs/jitter seeds.
  void Trace(u64 tag, u64 a, u64 b, u64 c) {
    trace_.Mix(tag);
    trace_.Mix(a);
    trace_.Mix(b);
    trace_.Mix(c);
    ++trace_events_;
  }
  u64 TraceDigest() const { return trace_.Digest(); }
  u64 TraceEvents() const { return trace_events_; }

 private:
  struct SimThread {
    ThreadId id = kInvalidThread;
    SimThreadState state = SimThreadState::kRunnable;
    u64 vtime = 0;
    u64 finish_vtime = 0;
    TimeCat wait_cat = TimeCat::kChunk;
    DetRng jitter;
    std::array<u64, kNumTimeCats> cat{};
    std::unique_ptr<Fiber> fiber;
  };

  bool IsMinRunnable(ThreadId t) const;
  ThreadId PickNext() const;
  void SwitchToScheduler();
  SimThread& Cur() {
    CSQ_CHECK_MSG(cur_thread_ != nullptr, "in-fiber API called outside a fiber");
    return *cur_thread_;
  }

  SimConfig cfg_;
  std::deque<std::unique_ptr<SimThread>> threads_;
  ThreadId current_ = kInvalidThread;
  SimThread* cur_thread_ = nullptr;  // threads_[current_].get(); single-load Cur()
  bool running_ = false;
  ucontext_t main_ctx_{};
  Fnv1a trace_;
  u64 trace_events_ = 0;
};

}  // namespace csq::sim
