#include "src/sim/fiber.h"

#include "src/util/check.h"

namespace csq::sim {

Fiber::Fiber(usize stack_size) : stack_(stack_size) {}

Fiber::~Fiber() = default;

void Fiber::Prepare(Fn fn, Fn on_exit) {
  fn_ = std::move(fn);
  on_exit_ = std::move(on_exit);
  CSQ_CHECK(getcontext(&ctx_) == 0);
  ctx_.uc_stack.ss_sp = stack_.data();
  ctx_.uc_stack.ss_size = stack_.size();
  ctx_.uc_link = nullptr;  // fibers never fall off the end; on_exit_ switches away
  const auto ptr = reinterpret_cast<uintptr_t>(this);
  const auto hi = static_cast<unsigned>(ptr >> 32);
  const auto lo = static_cast<unsigned>(ptr & 0xffffffffu);
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::Trampoline), 2, hi, lo);
}

void Fiber::SwitchInto(ucontext_t* from) {
  CSQ_CHECK(swapcontext(from, &ctx_) == 0);
}

void Fiber::SwitchOutTo(ucontext_t* to) {
  CSQ_CHECK(swapcontext(&ctx_, to) == 0);
}

void Fiber::Trampoline(unsigned hi, unsigned lo) {
  const uintptr_t ptr = (static_cast<uintptr_t>(hi) << 32) | static_cast<uintptr_t>(lo);
  reinterpret_cast<Fiber*>(ptr)->Body();
}

void Fiber::Body() {
  fn_();
  on_exit_();
  CSQ_CHECK_MSG(false, "fiber on_exit returned");
}

}  // namespace csq::sim
