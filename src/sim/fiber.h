// Cooperative fibers on top of ucontext.
//
// The simulation engine runs every simulated thread's code on one host thread,
// switching between fibers explicitly. ucontext is deprecated-but-stable on
// glibc and is by far the simplest way to get real C++ code (the workloads)
// running on swappable stacks without compiler plugins.
#pragma once

#include <ucontext.h>

#include <functional>
#include <vector>

#include "src/util/types.h"

namespace csq::sim {

class Fiber {
 public:
  using Fn = std::function<void()>;

  explicit Fiber(usize stack_size);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // Prepares the fiber to run `fn` on its next SwitchInto. `on_exit` is invoked
  // on the fiber's stack after `fn` returns and must switch away (it may not
  // return).
  void Prepare(Fn fn, Fn on_exit);

  // Saves the current context into `from` and resumes this fiber.
  void SwitchInto(ucontext_t* from);

  // Saves this fiber's context and resumes `to`. Must be called on this fiber.
  void SwitchOutTo(ucontext_t* to);

 private:
  static void Trampoline(unsigned hi, unsigned lo);
  void Body();

  Fn fn_;
  Fn on_exit_;
  std::vector<u8> stack_;
  ucontext_t ctx_;
};

}  // namespace csq::sim
