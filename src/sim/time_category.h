// Virtual-time attribution categories.
//
// Every cycle of simulated time a thread spends is attributed to one of these
// buckets; the Figure-15 harness prints the resulting breakdown (the paper's
// "chunks / determ wait / barrier wait / conversion / page faults / library"
// stacked bars).
#pragma once

#include <array>
#include <string_view>

#include "src/util/types.h"

namespace csq::sim {

enum class TimeCat : u8 {
  kChunk = 0,     // useful local work (the program's own instructions)
  kDetermWait,    // waiting for the deterministic token / GMIC
  kBarrierWait,   // waiting at a barrier (det or not)
  kLockWait,      // waiting for a lock (pthreads baseline; det lock waits are determ)
  kCommit,        // Conversion commit + update work
  kFault,         // copy-on-write page faults
  kLibrary,       // fixed runtime-library overhead (clock reads, token ops, ...)
  kGc,            // version garbage collection
  kCount,
};

inline constexpr usize kNumTimeCats = static_cast<usize>(TimeCat::kCount);

inline constexpr std::array<std::string_view, kNumTimeCats> kTimeCatNames = {
    "chunk", "determ_wait", "barrier_wait", "lock_wait", "commit", "fault", "library", "gc",
};

inline std::string_view TimeCatName(TimeCat c) {
  return kTimeCatNames[static_cast<usize>(c)];
}

}  // namespace csq::sim
