#include "src/simd/kernels.h"

#include <bit>
#include <cstdlib>
#include <cstdio>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define CSQ_SIMD_X86 1
#include <immintrin.h>
#endif

namespace csq::simd {

namespace {

// ---- Shared bit machinery ---------------------------------------------------

inline u64 LoadWord(const u8* p) {
  u64 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreWord(u8* p, u64 v) { std::memcpy(p, &v, sizeof(v)); }

// High bit of each byte of `d` set iff that byte is nonzero. Exact per byte:
// the add is masked to 7 bits so no carry crosses byte lanes.
inline u64 NonzeroByteHighBits(u64 d) {
  u64 m = (d & 0x7f7f7f7f7f7f7f7fULL) + 0x7f7f7f7f7f7f7f7fULL;
  m |= d;
  return m & 0x8080808080808080ULL;
}

// Expands a NonzeroByteHighBits mask (0x80 per differing byte) to 0xFF per
// differing byte. Per-byte exact: 0x80 - 0x01 = 0x7F has no borrow across
// lanes, and zero bytes stay zero.
inline u64 ExpandHighBitsToBytes(u64 m) { return m | (m - (m >> 7)); }

// Iterates the maximal runs of set bits of a u64-block bitmap. Plain bit
// logic (countr_zero to find a run's start, countr_one to measure it) kept
// out of the vector kernels so each target-attributed function holds only
// its own intrinsics.
class RunCursor {
 public:
  RunCursor(const u64* bits, usize nblocks) : bits_(bits), nblocks_(nblocks) {
    cur_ = nblocks_ > 0 ? bits_[0] : 0;
  }

  // Next maximal run of set bits: *w0 = first bit index, *len = run length.
  bool Next(usize* w0, usize* len) {
    while (cur_ == 0) {
      if (++block_ >= nblocks_) {
        return false;
      }
      cur_ = bits_[block_];
    }
    const unsigned tz = static_cast<unsigned>(std::countr_zero(cur_));
    const unsigned ones = static_cast<unsigned>(std::countr_one(cur_ >> tz));
    *w0 = block_ * 64 + tz;
    *len = ones;
    // Clear the consumed bits (tz + ones <= 64 by construction).
    if (tz + ones >= 64) {
      cur_ = 0;
    } else {
      cur_ &= ~(((1ULL << ones) - 1) << tz);
    }
    // A run touching the block's top bit may continue into later blocks.
    bool at_end = (tz + ones == 64);
    while (at_end && block_ + 1 < nblocks_) {
      const u64 nb = bits_[block_ + 1];
      const unsigned o2 = static_cast<unsigned>(std::countr_one(nb));
      if (o2 == 0) {
        break;
      }
      ++block_;
      cur_ = o2 == 64 ? 0 : (nb & ~((1ULL << o2) - 1));
      *len += o2;
      at_end = (o2 == 64);
    }
    return true;
  }

 private:
  const u64* bits_;
  usize nblocks_;
  usize block_ = 0;
  u64 cur_ = 0;
};

// Per-byte reference loop over [off, end): applies mine where it differs from
// twin and counts exactly. Shared tail path of every merge kernel (the final
// short word and sub-vector leftovers).
inline void MergeTailBytes(u8* base, const u8* mine, const u8* twin, usize off, usize end,
                           DiffMergeCounts* c) {
  while (off < end) {
    const usize word_end = end < (off | 7) + 1 ? end : (off | 7) + 1;
    bool word_hit = false;
    for (usize i = off; i < word_end; ++i) {
      if (mine[i] != twin[i]) {
        base[i] = mine[i];
        ++c->bytes;
        word_hit = true;
      }
    }
    c->words += word_hit ? 1 : 0;
    off = word_end;
  }
}

// Sets `count` bits of `bits` starting at bit index `w` (ORs; count <= 32).
inline void OrBitsAt(u64* out, usize w, u64 bits, unsigned count) {
  const usize b = w >> 6;
  const unsigned sh = w & 63;
  out[b] |= bits << sh;
  if (sh != 0 && sh + count > 64) {
    out[b + 1] |= bits >> (64 - sh);
  }
}

// Diffs the single (possibly short) word at byte offset `off`; returns true
// if any byte differs.
inline bool DiffOneWord(const u8* mine, const u8* twin, usize n, usize off) {
  const usize span = n - off < 8 ? n - off : 8;
  if (span == 8) {
    return LoadWord(mine + off) != LoadWord(twin + off);
  }
  return std::memcmp(mine + off, twin + off, span) != 0;
}

// ---- Scalar kernels (the pinned baseline) -----------------------------------

usize ScalarDiffWords(const u8* mine, const u8* twin, usize n, const u64* mask, u64* out) {
  const usize words = (n + 7) / 8;
  const usize blocks = BitmapBlocks(n);
  std::memset(out, 0, blocks * sizeof(u64));
  if (mask == nullptr) {
    for (usize w = 0; w < words; ++w) {
      if (DiffOneWord(mine, twin, n, w * 8)) {
        out[w >> 6] |= 1ULL << (w & 63);
      }
    }
  } else {
    RunCursor rc(mask, blocks);
    usize w0 = 0;
    usize len = 0;
    while (rc.Next(&w0, &len)) {
      const usize w_end = w0 + len < words ? w0 + len : words;
      for (usize w = w0; w < w_end; ++w) {
        if (DiffOneWord(mine, twin, n, w * 8)) {
          out[w >> 6] |= 1ULL << (w & 63);
        }
      }
    }
  }
  usize count = 0;
  for (usize b = 0; b < blocks; ++b) {
    count += static_cast<usize>(std::popcount(out[b]));
  }
  return count;
}

DiffMergeCounts ScalarMergeRuns(u8* base, const u8* mine, const u8* twin, usize n,
                                const u64* bits) {
  DiffMergeCounts c;
  RunCursor rc(bits, BitmapBlocks(n));
  usize w0 = 0;
  usize len = 0;
  while (rc.Next(&w0, &len)) {
    usize off = w0 * 8;
    if (off >= n) {
      break;
    }
    usize end = off + len * 8;
    end = end < n ? end : n;
    for (; off + 8 <= end; off += 8) {
      const u64 x = LoadWord(mine + off);
      const u64 t = LoadWord(twin + off);
      const u64 d = x ^ t;
      if (d == 0) {
        continue;
      }
      const u64 hb = NonzeroByteHighBits(d);
      const u64 bytemask = ExpandHighBitsToBytes(hb);
      StoreWord(base + off, (LoadWord(base + off) & ~bytemask) | (x & bytemask));
      c.bytes += static_cast<usize>(std::popcount(hb));
      ++c.words;
    }
    MergeTailBytes(base, mine, twin, off, end, &c);
  }
  return c;
}

void ScalarCopyBytes(u8* dst, const u8* src, usize n) { std::memcpy(dst, src, n); }

bool ScalarBytesEqual(const u8* a, const u8* b, usize n) { return std::memcmp(a, b, n) == 0; }

constexpr PageKernels kScalarKernels = {Level::kScalar, &ScalarDiffWords, &ScalarMergeRuns,
                                        &ScalarCopyBytes, &ScalarBytesEqual};

#if defined(CSQ_SIMD_X86)

// ---- SSE2 kernels (16 bytes / 2 words per step) -----------------------------

// Collapses a 16-bit per-byte diff mask to one bit per 8-byte word (2 bits).
inline u64 WordBits16(u32 diff16) {
  return static_cast<u64>((diff16 & 0xffu) != 0) | (static_cast<u64>((diff16 >> 8) != 0) << 1);
}

__attribute__((target("sse2"))) usize Sse2DiffRange(const u8* mine, const u8* twin, usize n,
                                                    usize w0, usize wlen, u64* out) {
  // Diffs words [w0, w0+wlen) of [0, n), ORing word bits into `out`.
  // Returns nothing the caller can't recount; kept void-like (always 0).
  usize off = w0 * 8;
  const usize words = (n + 7) / 8;
  const usize w_end = w0 + wlen < words ? w0 + wlen : words;
  usize end = w_end * 8;
  end = end < n ? end : n;
  usize w = w0;
  for (; off + 16 <= end; off += 16, w += 2) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(mine + off));
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(twin + off));
    const u32 eq = static_cast<u32>(_mm_movemask_epi8(_mm_cmpeq_epi8(a, b)));
    const u32 diff = ~eq & 0xffffu;
    if (diff != 0) {
      OrBitsAt(out, w, WordBits16(diff), 2);
    }
  }
  for (; w < w_end; ++w, off += 8) {
    if (DiffOneWord(mine, twin, n, w * 8)) {
      out[w >> 6] |= 1ULL << (w & 63);
    }
  }
  return 0;
}

__attribute__((target("sse2"))) usize Sse2DiffWords(const u8* mine, const u8* twin, usize n,
                                                    const u64* mask, u64* out) {
  const usize words = (n + 7) / 8;
  const usize blocks = BitmapBlocks(n);
  std::memset(out, 0, blocks * sizeof(u64));
  if (mask == nullptr) {
    Sse2DiffRange(mine, twin, n, 0, words, out);
  } else {
    RunCursor rc(mask, blocks);
    usize w0 = 0;
    usize len = 0;
    while (rc.Next(&w0, &len)) {
      Sse2DiffRange(mine, twin, n, w0, len, out);
    }
  }
  usize count = 0;
  for (usize b = 0; b < blocks; ++b) {
    count += static_cast<usize>(std::popcount(out[b]));
  }
  return count;
}

__attribute__((target("sse2"))) DiffMergeCounts Sse2MergeRuns(u8* base, const u8* mine,
                                                              const u8* twin, usize n,
                                                              const u64* bits) {
  DiffMergeCounts c;
  RunCursor rc(bits, BitmapBlocks(n));
  usize w0 = 0;
  usize len = 0;
  while (rc.Next(&w0, &len)) {
    usize off = w0 * 8;
    if (off >= n) {
      break;
    }
    usize end = off + len * 8;
    end = end < n ? end : n;
    for (; off + 16 <= end; off += 16) {
      const __m128i m = _mm_loadu_si128(reinterpret_cast<const __m128i*>(mine + off));
      const __m128i t = _mm_loadu_si128(reinterpret_cast<const __m128i*>(twin + off));
      const __m128i eq = _mm_cmpeq_epi8(m, t);
      const u32 eqm = static_cast<u32>(_mm_movemask_epi8(eq));
      const u32 diff = ~eqm & 0xffffu;
      if (diff == 0) {
        continue;
      }
      // Masked vector store: keep base where mine == twin, take mine where
      // it differs (last-writer-wins blend). SSE2 has no blendv; and/andnot
      // compose the same select.
      const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(base + off));
      const __m128i blended = _mm_or_si128(_mm_and_si128(eq, b), _mm_andnot_si128(eq, m));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(base + off), blended);
      c.bytes += static_cast<usize>(std::popcount(diff));
      c.words += ((diff & 0xffu) != 0 ? 1 : 0) + ((diff >> 8) != 0 ? 1 : 0);
    }
    MergeTailBytes(base, mine, twin, off, end, &c);
  }
  return c;
}

__attribute__((target("sse2"))) void Sse2CopyBytes(u8* dst, const u8* src, usize n) {
  usize i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 16));
    const __m128i c = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 32));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 48));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), a);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16), b);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 32), c);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 48), d);
  }
  if (i < n) {
    std::memcpy(dst + i, src + i, n - i);
  }
}

__attribute__((target("sse2"))) bool Sse2BytesEqual(const u8* a, const u8* b, usize n) {
  usize i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i y = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    if (_mm_movemask_epi8(_mm_cmpeq_epi8(x, y)) != 0xffff) {
      return false;
    }
  }
  return i == n || std::memcmp(a + i, b + i, n - i) == 0;
}

constexpr PageKernels kSse2Kernels = {Level::kSse2, &Sse2DiffWords, &Sse2MergeRuns,
                                      &Sse2CopyBytes, &Sse2BytesEqual};

// ---- AVX2 kernels (32 bytes / 4 words per step) -----------------------------

inline u64 WordBits32(u32 diff32) {
  return static_cast<u64>((diff32 & 0xffu) != 0) |
         (static_cast<u64>(((diff32 >> 8) & 0xffu) != 0) << 1) |
         (static_cast<u64>(((diff32 >> 16) & 0xffu) != 0) << 2) |
         (static_cast<u64>((diff32 >> 24) != 0) << 3);
}

__attribute__((target("avx2"))) usize Avx2DiffRange(const u8* mine, const u8* twin, usize n,
                                                    usize w0, usize wlen, u64* out) {
  usize off = w0 * 8;
  const usize words = (n + 7) / 8;
  const usize w_end = w0 + wlen < words ? w0 + wlen : words;
  usize end = w_end * 8;
  end = end < n ? end : n;
  usize w = w0;
  for (; off + 32 <= end; off += 32, w += 4) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mine + off));
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(twin + off));
    const u32 eq = static_cast<u32>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(a, b)));
    const u32 diff = ~eq;
    if (diff != 0) {
      OrBitsAt(out, w, WordBits32(diff), 4);
    }
  }
  for (; w < w_end; ++w, off += 8) {
    if (DiffOneWord(mine, twin, n, w * 8)) {
      out[w >> 6] |= 1ULL << (w & 63);
    }
  }
  return 0;
}

__attribute__((target("avx2"))) usize Avx2DiffWords(const u8* mine, const u8* twin, usize n,
                                                    const u64* mask, u64* out) {
  const usize words = (n + 7) / 8;
  const usize blocks = BitmapBlocks(n);
  std::memset(out, 0, blocks * sizeof(u64));
  if (mask == nullptr) {
    Avx2DiffRange(mine, twin, n, 0, words, out);
  } else {
    RunCursor rc(mask, blocks);
    usize w0 = 0;
    usize len = 0;
    while (rc.Next(&w0, &len)) {
      Avx2DiffRange(mine, twin, n, w0, len, out);
    }
  }
  usize count = 0;
  for (usize b = 0; b < blocks; ++b) {
    count += static_cast<usize>(std::popcount(out[b]));
  }
  return count;
}

__attribute__((target("avx2"))) DiffMergeCounts Avx2MergeRuns(u8* base, const u8* mine,
                                                              const u8* twin, usize n,
                                                              const u64* bits) {
  DiffMergeCounts c;
  RunCursor rc(bits, BitmapBlocks(n));
  usize w0 = 0;
  usize len = 0;
  while (rc.Next(&w0, &len)) {
    usize off = w0 * 8;
    if (off >= n) {
      break;
    }
    usize end = off + len * 8;
    end = end < n ? end : n;
    for (; off + 32 <= end; off += 32) {
      const __m256i m = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mine + off));
      const __m256i t = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(twin + off));
      const __m256i eq = _mm256_cmpeq_epi8(m, t);
      const u32 eqm = static_cast<u32>(_mm256_movemask_epi8(eq));
      const u32 diff = ~eqm;
      if (diff == 0) {
        continue;
      }
      const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + off));
      // vpblendvb selects b where eq's byte high bit is set, m elsewhere —
      // one masked vector store per 32 bytes of run.
      const __m256i blended = _mm256_blendv_epi8(m, b, eq);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(base + off), blended);
      c.bytes += static_cast<usize>(std::popcount(diff));
      c.words += static_cast<usize>(std::popcount(WordBits32(diff)));
    }
    for (; off + 16 <= end; off += 16) {
      const __m128i m = _mm_loadu_si128(reinterpret_cast<const __m128i*>(mine + off));
      const __m128i t = _mm_loadu_si128(reinterpret_cast<const __m128i*>(twin + off));
      const __m128i eq = _mm_cmpeq_epi8(m, t);
      const u32 diff = ~static_cast<u32>(_mm_movemask_epi8(eq)) & 0xffffu;
      if (diff == 0) {
        continue;
      }
      const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(base + off));
      const __m128i blended = _mm_or_si128(_mm_and_si128(eq, b), _mm_andnot_si128(eq, m));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(base + off), blended);
      c.bytes += static_cast<usize>(std::popcount(diff));
      c.words += ((diff & 0xffu) != 0 ? 1 : 0) + ((diff >> 8) != 0 ? 1 : 0);
    }
    MergeTailBytes(base, mine, twin, off, end, &c);
  }
  return c;
}

__attribute__((target("avx2"))) void Avx2CopyBytes(u8* dst, const u8* src, usize n) {
  usize i = 0;
  for (; i + 128 <= n; i += 128) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    const __m256i c = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 64));
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 96));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), a);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), b);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 64), c);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 96), d);
  }
  if (i < n) {
    std::memcpy(dst + i, src + i, n - i);
  }
}

__attribute__((target("avx2"))) bool Avx2BytesEqual(const u8* a, const u8* b, usize n) {
  usize i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i y = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (static_cast<u32>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(x, y))) != 0xffffffffu) {
      return false;
    }
  }
  return i == n || std::memcmp(a + i, b + i, n - i) == 0;
}

constexpr PageKernels kAvx2Kernels = {Level::kAvx2, &Avx2DiffWords, &Avx2MergeRuns,
                                      &Avx2CopyBytes, &Avx2BytesEqual};

#endif  // CSQ_SIMD_X86

// ---- Dispatch ---------------------------------------------------------------

// CSQ_SIMD override, clamped to what the host can execute. Unknown values
// warn once and fall back to autodetect rather than silently running scalar.
Level ResolveLevel() {
  Level l = DetectedLevel();
  const char* env = std::getenv("CSQ_SIMD");
  if (env != nullptr && env[0] != '\0') {
    Level want = Level::kScalar;
    if (ParseLevel(env, &want)) {
      l = want < l ? want : l;
    } else {
      std::fprintf(stderr, "simd: unknown CSQ_SIMD value '%s' (want scalar|sse2|avx2); using %s\n",
                   env, LevelName(l));
    }
  }
  return l;
}

// Test-only override installed by ScopedLevelForTest (single-threaded use).
const PageKernels* g_test_override = nullptr;

}  // namespace

bool ParseLevel(const char* s, Level* out) {
  if (s == nullptr) {
    return false;
  }
  if (std::strcmp(s, "scalar") == 0) {
    *out = Level::kScalar;
    return true;
  }
  if (std::strcmp(s, "sse2") == 0) {
    *out = Level::kSse2;
    return true;
  }
  if (std::strcmp(s, "avx2") == 0) {
    *out = Level::kAvx2;
    return true;
  }
  return false;
}

Level DetectedLevel() {
#if defined(CSQ_SIMD_X86)
  static const Level detected = [] {
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx2")) {
      return Level::kAvx2;
    }
    if (__builtin_cpu_supports("sse2")) {
      return Level::kSse2;
    }
    return Level::kScalar;
  }();
  return detected;
#else
  return Level::kScalar;
#endif
}

const PageKernels& KernelsFor(Level level) {
  const Level detected = DetectedLevel();
  const Level l = level < detected ? level : detected;
#if defined(CSQ_SIMD_X86)
  switch (l) {
    case Level::kAvx2:
      return kAvx2Kernels;
    case Level::kSse2:
      return kSse2Kernels;
    case Level::kScalar:
      break;
  }
#else
  (void)l;
#endif
  return kScalarKernels;
}

const PageKernels& Kernels() {
  if (g_test_override != nullptr) {
    return *g_test_override;
  }
  // Resolved exactly once (thread-safe static init); CSQ_SIMD is never
  // re-read, so the dispatch level is a startup constant.
  static const PageKernels& resolved = KernelsFor(ResolveLevel());
  return resolved;
}

Level ActiveLevel() { return Kernels().level; }

ScopedLevelForTest::ScopedLevelForTest(Level l) : saved_(g_test_override) {
  g_test_override = &KernelsFor(l);
}

ScopedLevelForTest::~ScopedLevelForTest() { g_test_override = saved_; }

}  // namespace csq::simd
