// Vectorized commit kernels: the byte-moving primitives of the Conversion
// commit step (twin diff, run-coalesced merge, page copy, page compare),
// behind one runtime-dispatched table (DESIGN.md §17).
//
// The commit step — diff the private workspace against its twin and merge the
// changed bytes into the shared base — is the off-floor WORK phase's dominant
// cost. These kernels move those bytes at vector width (16 bytes under SSE2,
// 32 under AVX2) instead of a scalar per-word loop, without changing WHICH
// bytes move: every kernel is a pure byte function with an exact scalar
// semantics (pinned by tests/simd_kernels_test.cc against the reference
// conv::MergeInto oracle), so simulated virtual time, checksums, traces and
// race reports are bit-identical at every dispatch level.
//
// Dispatch: the level is resolved once, on first use, from CPU feature
// detection (best of scalar < SSE2 < AVX2 the host supports), overridable for
// testing via CSQ_SIMD=scalar|sse2|avx2 — an override above the host's
// support is clamped down, never trusted. Non-x86 builds compile the scalar
// table only and every level aliases it.
//
// Layering: src/simd depends only on src/util. conv sits on top of it; the
// kernels know nothing about pages, segments or the engine — they never
// charge, wait or notify, which is what makes them legal in the off-floor
// publish path.
#pragma once

#include "src/util/types.h"

namespace csq::simd {

// Dispatch levels, in strength order. Numeric order is meaningful: a level
// is usable iff it is <= DetectedLevel().
enum class Level : u8 {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

inline constexpr const char* LevelName(Level l) {
  switch (l) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
  }
  return "?";
}

// Parses a CSQ_SIMD value. Returns true and sets *out on success; unknown
// strings (and null) return false and leave *out untouched.
bool ParseLevel(const char* s, Level* out);

// Best level this host's CPU can execute (scalar on non-x86 builds).
Level DetectedLevel();

// The level the dispatch table was resolved to: min(DetectedLevel, CSQ_SIMD
// override if set and parseable). Resolved once, on first call.
Level ActiveLevel();

// Exact counts of a diff/merge pass — mirrors conv::MergeResult without
// depending on conv (conv depends on simd, not the reverse).
struct DiffMergeCounts {
  usize bytes = 0;  // bytes where mine[i] != twin[i] (applied by merge)
  usize words = 0;  // 8-byte words containing at least one such byte
};

// One dispatch level's kernel table. All pointers are non-null at every
// level. `n` is the buffer length in bytes; buffers may overlap only where a
// parameter aliases itself (dst==src is not supported). Word w covers bytes
// [8w, min(8w+8, n)) — the final word may be short.
struct PageKernels {
  Level level;

  // (a) Twin diff. For every 8-byte word w of [0, n) whose bit is set in
  // `mask` (mask == nullptr means "all words"), sets bit w of `out` iff
  // mine/twin differ somewhere in that word; every other bit of `out`
  // (including bits of words not in the mask and bits beyond the last word)
  // is cleared. `mask` and `out` are u64 little-endian bitmap blocks, bit
  // (w & 63) of block (w >> 6), covering ceil(ceil(n/8)/64) blocks. Returns
  // the number of set bits written to `out`.
  usize (*diff_words)(const u8* mine, const u8* twin, usize n, const u64* mask, u64* out);

  // (b) Run-coalesced merge. Walks `bits` (same bitmap layout) for maximal
  // runs of set words and, for every byte of those words where mine differs
  // from twin, stores mine's byte into base (last-writer-wins blend). Bytes
  // inside a set word where mine equals twin are left untouched — base may
  // hold other committers' bytes there. Returns exact counts: bytes applied
  // and words that contained at least one applied byte (a set word with no
  // differing byte counts zero, so passing an un-diffed dirty bitmap still
  // yields the reference counts).
  DiffMergeCounts (*merge_runs)(u8* base, const u8* mine, const u8* twin, usize n,
                                const u64* bits);

  // (c) Bulk byte copy (the pooled page-buffer copy in the publish path).
  // dst and src must not overlap.
  void (*copy_bytes)(u8* dst, const u8* src, usize n);

  // Whole-buffer equality (conv::PagesDiffer).
  bool (*bytes_equal)(const u8* a, const u8* b, usize n);
};

// The active dispatch table (resolved once with ActiveLevel()).
const PageKernels& Kernels();

// A specific level's table, for tests and per-kernel benchmarking. Asking
// for a level above DetectedLevel() returns the detected level's table
// instead of handing back instructions the host cannot execute.
const PageKernels& KernelsFor(Level level);

// Number of u64 bitmap blocks covering a buffer of `n_bytes` bytes at 8-byte
// word granularity (what diff_words writes and merge_runs reads).
inline constexpr usize BitmapBlocks(usize n_bytes) {
  const usize words = (n_bytes + 7) / 8;
  return (words + 63) / 64;
}

// TEST ONLY. Forces Kernels()/ActiveLevel() to a specific level for the
// current scope so a single process can sweep every dispatch level (the
// CSQ_SIMD override is read once at startup and cannot be re-read). Clamped
// to DetectedLevel() like the env override. Not thread-safe: construct only
// from single-threaded test/bench setup code.
class ScopedLevelForTest {
 public:
  explicit ScopedLevelForTest(Level l);
  ~ScopedLevelForTest();

  ScopedLevelForTest(const ScopedLevelForTest&) = delete;
  ScopedLevelForTest& operator=(const ScopedLevelForTest&) = delete;

 private:
  const PageKernels* saved_;
};

}  // namespace csq::simd
