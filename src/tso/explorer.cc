#include "src/tso/explorer.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "src/tso/runner.h"
#include "src/util/check.h"

namespace csq::tso {

namespace {

// Replays a forced prefix of grant decisions, then follows the default
// policy: defer until no participating thread is still executing (the
// waiting set is then maximal — every thread that could ever be granted at
// this decision is in it), grant the lowest waiting tid, and record the
// candidate set for the DFS driver to branch on.
class ReplayArbiter final : public clk::TokenArbiter {
 public:
  struct Decision {
    u32 chosen = 0;
    std::vector<u32> candidates;  // waiting set at grant time (prefix: empty)
  };

  explicit ReplayArbiter(std::vector<u32> prefix) : prefix_(std::move(prefix)) {}

  u32 Pick(const std::vector<u32>& waiting, u32 busy) override {
    const usize i = decisions_.size();  // index of the decision being made
    if (i < prefix_.size()) {
      const u32 want = prefix_[i];
      if (std::find(waiting.begin(), waiting.end(), want) != waiting.end()) {
        return want;
      }
      // The forced thread has not arrived yet; it must still be executing.
      CSQ_CHECK_MSG(busy > 0, "replay divergence: forced tid " << want
                                  << " can no longer arrive at decision " << i);
      return kNoPick;
    }
    if (busy > 0) {
      return kNoPick;  // quiescence: wait for the maximal candidate set
    }
    pending_candidates_ = waiting;
    return waiting.front();
  }

  void OnGrant(u32 tid) override {
    Decision d;
    d.chosen = tid;
    if (decisions_.size() >= prefix_.size()) {
      d.candidates = pending_candidates_;
    }
    decisions_.push_back(std::move(d));
  }

  const std::vector<Decision>& Decisions() const { return decisions_; }

 private:
  std::vector<u32> prefix_;
  std::vector<u32> pending_candidates_;
  std::vector<Decision> decisions_;
};

// Observer recording, per grant (== decision index), the pages actually
// committed under it, plus every commit's (version, tid, pages) for the
// last-writer-wins check.
class ExploreRecorder final : public rt::SyncObserver {
 public:
  struct CommitInfo {
    u64 version = 0;
    u32 tid = 0;
    std::vector<u32> pages;
  };

  void OnAcquire(u32, u64) override {}
  void OnRelease(u32, u64) override {}
  void OnCommit(u32, const std::vector<u32>&) override {}

  void OnTokenGrant(u32 tid, u64, u64 seq) override {
    if (open_grant_.size() <= tid) {
      open_grant_.resize(tid + 1, 0);
    }
    open_grant_[tid] = seq;
  }

  void OnCommitVersion(u32 tid, u64 version, const std::vector<u32>& pages) override {
    // A version is attributed to the grant its phase one ran under: even when
    // phase two drains token-free (async commits, barriers), the thread takes
    // no further grant before finishing it.
    const u64 seq = tid < open_grant_.size() ? open_grant_[tid] : 0;
    grant_pages_[seq].insert(grant_pages_[seq].end(), pages.begin(), pages.end());
    commits_.push_back({version, tid, pages});
  }

  const std::vector<u32>& PagesOfGrant(u64 seq) const {
    static const std::vector<u32> kEmpty;
    auto it = grant_pages_.find(seq);
    return it == grant_pages_.end() ? kEmpty : it->second;
  }

  const std::vector<CommitInfo>& Commits() const { return commits_; }

 private:
  std::vector<u64> open_grant_;
  std::map<u64, std::vector<u32>> grant_pages_;
  std::vector<CommitInfo> commits_;
};

// Static per-litmus-thread page footprints (runtime tid = litmus thread + 1).
struct Footprints {
  std::vector<std::vector<u32>> reads;   // pages read, per litmus thread
  std::vector<std::vector<u32>> writes;  // pages written, per litmus thread
  std::vector<bool> locks;

  static Footprints Of(const Litmus& lit, u32 page_size) {
    Footprints f;
    const u32 n = static_cast<u32>(lit.threads.size());
    f.reads.resize(n);
    f.writes.resize(n);
    f.locks.resize(n);
    for (u32 t = 0; t < n; ++t) {
      for (u32 v : lit.ReadSet(t)) {
        f.reads[t].push_back(VarPage(lit, v, page_size));
      }
      for (u32 v : lit.WriteSet(t)) {
        f.writes[t].push_back(VarPage(lit, v, page_size));
      }
      f.locks[t] = lit.UsesLocks(t);
    }
    return f;
  }
};

bool Intersects(const std::vector<u32>& a, const std::vector<u32>& b) {
  for (u32 x : a) {
    if (std::find(b.begin(), b.end(), x) != b.end()) {
      return true;
    }
  }
  return false;
}

// True when granting `alt` instead of `chosen` at this decision provably
// commutes, so the alternative branch cannot reach a new outcome. Both tids
// are runtime tids; tid 0 (the main thread: spawn/join/final reads) is never
// pruned, nor are lock users (lock acquisition has control dependence).
bool IndependentGrants(const Footprints& f, u32 chosen, u32 alt,
                       const std::vector<u32>& chosen_committed) {
  if (chosen == 0 || alt == 0) {
    return false;
  }
  const u32 tc = chosen - 1;
  const u32 ta = alt - 1;
  if (tc >= f.locks.size() || ta >= f.locks.size() || f.locks[tc] || f.locks[ta]) {
    return false;
  }
  // Pages this grant actually committed vs. everything the alternative thread
  // might read or write; plus the static write/read cross-dependences (the
  // alternative's commit vs. the chosen thread's later reads).
  if (Intersects(chosen_committed, f.reads[ta]) || Intersects(chosen_committed, f.writes[ta])) {
    return false;
  }
  if (Intersects(f.writes[ta], f.reads[tc]) || Intersects(f.writes[ta], f.writes[tc])) {
    return false;
  }
  return true;
}

// Commit-order last-writer-wins check: from the run's recorded commits, the
// final value of each variable must equal the last program-order store of the
// thread owning the highest commit version that covers the variable's page
// (among threads that statically store the variable), or 0 if nobody did.
//
// Attribution is unambiguous only when each thread dirties a given page
// within one commit epoch (no fence/rmw/lock op between two stores to the
// same page); litmuses violating that are skipped.
bool LwwCheckable(const Litmus& lit, u32 page_size) {
  for (const LitmusThread& th : lit.threads) {
    std::map<u32, u32> page_epoch;  // page -> epoch of its stores
    u32 epoch = 0;
    for (const LOp& op : th.ops) {
      if (op.kind == LOpKind::kRmwAdd) {
        return false;  // RMW-written values are data-dependent, not static
      }
      switch (op.kind) {
        case LOpKind::kFence:
        case LOpKind::kLock:
        case LOpKind::kUnlock:
          ++epoch;
          break;
        case LOpKind::kStore: {
          const u32 p = VarPage(lit, op.var, page_size);
          auto [it, fresh] = page_epoch.emplace(p, epoch);
          if (!fresh && it->second != epoch) {
            return false;
          }
          break;
        }
        default:
          break;
      }
    }
  }
  return true;
}

void CheckLww(const Litmus& lit, u32 page_size, const ExploreRecorder& rec,
              const Outcome& out, std::vector<std::string>* violations) {
  for (u32 v = 0; v < lit.nvars; ++v) {
    const u32 page = VarPage(lit, v, page_size);
    // Highest-version commit covering the page by a thread that stores v.
    u64 best_version = 0;
    i64 winner = -1;  // litmus thread index
    for (const ExploreRecorder::CommitInfo& c : rec.Commits()) {
      if (c.tid == 0 || c.version <= best_version) {
        continue;
      }
      const u32 t = c.tid - 1;
      if (std::find(c.pages.begin(), c.pages.end(), page) == c.pages.end()) {
        continue;
      }
      if (lit.WriteSet(t).count(v) == 0) {
        continue;  // committed a same-page neighbor, not v itself
      }
      best_version = c.version;
      winner = t;
    }
    u64 expected = 0;
    if (winner >= 0) {
      for (const LOp& op : lit.threads[static_cast<usize>(winner)].ops) {
        if (op.kind == LOpKind::kStore && op.var == v) {
          expected = op.value;
        }
      }
    }
    if (out.mem[v] != expected) {
      std::ostringstream os;
      os << lit.name << ": v" << v << " = " << out.mem[v]
         << " but commit-order last writer predicts " << expected << " (winner thread "
         << winner << ", version " << best_version << ")";
      violations->push_back(os.str());
    }
  }
}

}  // namespace

ExploreResult Explore(rt::Backend b, const Litmus& lit, rt::RuntimeConfig cfg,
                      const ExploreOptions& opt) {
  CSQ_CHECK_MSG(b != rt::Backend::kPthreads, "explorer drives deterministic backends only");
  CSQ_CHECK_MSG(cfg.observer == nullptr && cfg.token_arbiter == nullptr,
                "explorer installs its own observer and arbiter");
  cfg.costs.jitter_seed = opt.jitter_seed;
  cfg.costs.jitter_bp = opt.jitter_bp;
  const u32 page_size = cfg.segment.page_size;
  const Footprints fp = Footprints::Of(lit, page_size);
  const bool lww = LwwCheckable(lit, page_size);

  ExploreResult result;
  std::vector<std::vector<u32>> todo;
  todo.push_back({});
  while (!todo.empty()) {
    if (result.runs >= opt.max_runs) {
      result.complete = false;
      break;
    }
    std::vector<u32> prefix = std::move(todo.back());
    todo.pop_back();

    ReplayArbiter arbiter(prefix);
    ExploreRecorder recorder;
    rt::RuntimeConfig c = cfg;
    c.token_arbiter = &arbiter;
    c.observer = &recorder;
    const Outcome out = RunLitmus(b, lit, c);
    ++result.runs;
    result.outcomes.insert(out);
    if (lww) {
      CheckLww(lit, page_size, recorder, out, &result.lww_violations);
    }

    // Branch on every untried candidate at decisions beyond the prefix
    // (deepest-last so the DFS stack explores deepest-first).
    const auto& decisions = arbiter.Decisions();
    const usize limit = std::min<usize>(decisions.size(), opt.max_decision_depth);
    if (decisions.size() > opt.max_decision_depth) {
      result.complete = false;  // alternatives past the depth bound are unexplored
    }
    for (usize i = prefix.size(); i < limit; ++i) {
      const ReplayArbiter::Decision& d = decisions[i];
      for (u32 cand : d.candidates) {
        if (cand == d.chosen) {
          continue;
        }
        if (opt.prune_independent &&
            IndependentGrants(fp, d.chosen, cand, recorder.PagesOfGrant(i))) {
          ++result.pruned_branches;
          continue;
        }
        std::vector<u32> forced;
        forced.reserve(i + 1);
        for (usize k = 0; k < i; ++k) {
          forced.push_back(decisions[k].chosen);
        }
        forced.push_back(cand);
        todo.push_back(std::move(forced));
      }
    }
  }
  return result;
}

}  // namespace csq::tso
