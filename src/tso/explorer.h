// Exhaustive token-schedule exploration for litmus programs.
//
// The deterministic runtimes serialize every sync operation through the
// global token; the token-acquisition order IS the commit/update order and
// hence the only degree of freedom in the memory semantics. The explorer
// replaces the deterministic grant policy with a replaying TokenArbiter
// (clk::TokenArbiter) and drives the runtime through EVERY reachable grant
// sequence by stateless replay:
//
//   * each run forces a prefix of grant decisions, then follows a fixed
//     default policy (grant the lowest waiting tid once no participating
//     thread is still running — deferring until quiescence maximizes the
//     recorded candidate sets, so no alternative is missed);
//   * after the run, every decision index at which another candidate was
//     waiting spawns a new prefix to explore (DFS, deepest-first);
//   * DPOR-style pruning skips an alternative when swapping it with the
//     chosen grant provably commutes: the two threads' memory footprints are
//     disjoint (actual committed pages vs. static read/write page sets) and
//     they share no sync objects.
//
// Every terminal outcome is collected; the caller asserts the observed set is
// contained in the reference TSO model's allowed set (and that racy merges
// resolved last-writer-wins in the recorded commit order).
#pragma once

#include "src/clock/det_clock.h"
#include "src/rt/api.h"
#include "src/tso/litmus.h"
#include "src/tso/trace.h"

namespace csq::tso {

struct ExploreOptions {
  // Hard cap on runs (simulator executions). Exploration stops — with
  // complete=false — if the DFS frontier is not exhausted by then.
  u64 max_runs = 4000;
  // Decision depth up to which alternatives fork new branches; deeper
  // decisions follow the default policy only. Litmus schedules are short
  // (tens of grants), so the default never truncates the catalog shapes.
  u32 max_decision_depth = 64;
  // Enable the commutativity pruning (off = plain exhaustive DFS; the litmus
  // tests cross-check that pruning never loses an outcome).
  bool prune_independent = true;
  // Jitter applied to every exploration run (exercises the determinism claim
  // while exploring; any fixed seed gives a deterministic exploration).
  u64 jitter_seed = 0;
  u32 jitter_bp = 0;
};

struct ExploreResult {
  OutcomeSet outcomes;
  u64 runs = 0;
  u64 pruned_branches = 0;
  bool complete = true;  // false if max_runs or depth truncated the DFS
  // Violations of byte-level last-writer-wins in commit order (empty = ok);
  // each entry describes one run's final memory vs. the trace's prediction.
  std::vector<std::string> lww_violations;
};

ExploreResult Explore(rt::Backend b, const Litmus& lit, rt::RuntimeConfig cfg,
                      const ExploreOptions& opt = {});

}  // namespace csq::tso
