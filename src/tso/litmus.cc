#include "src/tso/litmus.h"

#include <sstream>

#include "src/util/check.h"

namespace csq::tso {

std::set<u32> Litmus::ReadSet(u32 t) const {
  std::set<u32> out;
  for (const LOp& op : threads[t].ops) {
    if (op.kind == LOpKind::kLoad || op.kind == LOpKind::kRmwAdd) {
      out.insert(op.var);
    }
  }
  return out;
}

std::set<u32> Litmus::WriteSet(u32 t) const {
  std::set<u32> out;
  for (const LOp& op : threads[t].ops) {
    if (op.kind == LOpKind::kStore || op.kind == LOpKind::kRmwAdd) {
      out.insert(op.var);
    }
  }
  return out;
}

bool Litmus::UsesLocks(u32 t) const {
  for (const LOp& op : threads[t].ops) {
    if (op.kind == LOpKind::kLock || op.kind == LOpKind::kUnlock) {
      return true;
    }
  }
  return false;
}

std::string Outcome::ToString() const {
  std::ostringstream os;
  os << "regs[";
  for (usize i = 0; i < regs.size(); ++i) {
    os << (i ? " " : "") << "r" << i << "=" << regs[i];
  }
  os << "] mem[";
  for (usize i = 0; i < mem.size(); ++i) {
    os << (i ? " " : "") << "v" << i << "=" << mem[i];
  }
  os << "]";
  return os.str();
}

std::string ToString(const OutcomeSet& s) {
  std::ostringstream os;
  for (const Outcome& o : s) {
    os << "  " << o.ToString() << "\n";
  }
  return os.str();
}

namespace {

// Variables are conventionally x=0, y=1, z=2.
constexpr u32 X = 0;
constexpr u32 Y = 1;

std::vector<LitmusShape> BuildCatalog() {
  std::vector<LitmusShape> out;

  // SB (store buffering): the TSO-defining shape. Both threads may read the
  // initial value — this ALLOWED outcome must be reachable, or the system is
  // stronger than TSO (sequentially consistent) and the paper's store-buffer
  // claim (workspace == store buffer) would be vacuous.
  {
    LitmusShape s;
    s.litmus.name = "SB";
    s.litmus.nvars = 2;
    s.litmus.nregs = 2;
    s.litmus.threads = {{{St(X, 1), Ld(Y, 0)}}, {{St(Y, 1), Ld(X, 1)}}};
    s.marked_desc = "r0=0 r1=0 (both loads old: allowed under TSO, forbidden under SC)";
    s.marked = [](const Outcome& o) { return o.regs[0] == 0 && o.regs[1] == 0; };
    s.forbidden = false;
    out.push_back(std::move(s));
  }

  // SB+fences: fencing between store and load restores SC for this shape.
  {
    LitmusShape s;
    s.litmus.name = "SB+fences";
    s.litmus.nvars = 2;
    s.litmus.nregs = 2;
    s.litmus.threads = {{{St(X, 1), Fence(), Ld(Y, 0)}},
                        {{St(Y, 1), Fence(), Ld(X, 1)}}};
    s.marked_desc = "r0=0 r1=0 (forbidden: both fences drained before either load)";
    s.marked = [](const Outcome& o) { return o.regs[0] == 0 && o.regs[1] == 0; };
    out.push_back(std::move(s));
  }

  // SB+rmws: atomic RMWs are fencing on x86 — same guarantee as SB+fences.
  {
    LitmusShape s;
    s.litmus.name = "SB+rmws";
    s.litmus.nvars = 2;
    s.litmus.nregs = 2;
    s.litmus.threads = {{{St(X, 1), RmwAdd(Y, 0, 0)}}, {{St(Y, 1), RmwAdd(X, 0, 1)}}};
    s.marked_desc = "r0=0 r1=0 (forbidden: RMWs fence like MFENCE)";
    s.marked = [](const Outcome& o) { return o.regs[0] == 0 && o.regs[1] == 0; };
    out.push_back(std::move(s));
  }

  // MP+fences (message passing): y is the flag for x. Seeing the flag but not
  // the payload is forbidden. The reader fences between its loads so its
  // second load observes at least the state its first load did.
  {
    LitmusShape s;
    s.litmus.name = "MP+fences";
    s.litmus.nvars = 2;
    s.litmus.nregs = 2;
    s.litmus.threads = {{{St(X, 1), Fence(), St(Y, 1)}},
                        {{Fence(), Ld(Y, 0), Fence(), Ld(X, 1)}}};
    s.marked_desc = "r0=1 r1=0 (forbidden: flag seen without payload)";
    s.marked = [](const Outcome& o) { return o.regs[0] == 1 && o.regs[1] == 0; };
    out.push_back(std::move(s));
  }

  // LB (load buffering): loads reading the other thread's later store require
  // load-store reordering, which TSO never performs.
  {
    LitmusShape s;
    s.litmus.name = "LB";
    s.litmus.nvars = 2;
    s.litmus.nregs = 2;
    s.litmus.threads = {{{Ld(Y, 0), St(X, 1)}}, {{Ld(X, 1), St(Y, 1)}}};
    s.marked_desc = "r0=1 r1=1 (forbidden: loads cannot see po-later stores)";
    s.marked = [](const Outcome& o) { return o.regs[0] == 1 && o.regs[1] == 1; };
    out.push_back(std::move(s));
  }

  // IRIW+fences (independent reads of independent writes): fenced readers must
  // agree on the order of two independent writers — TSO is multi-copy atomic.
  {
    LitmusShape s;
    s.litmus.name = "IRIW+fences";
    s.litmus.nvars = 2;
    s.litmus.nregs = 4;
    s.litmus.threads = {{{St(X, 1)}},
                        {{St(Y, 1)}},
                        {{Ld(X, 0), Fence(), Ld(Y, 1)}},
                        {{Ld(Y, 2), Fence(), Ld(X, 3)}}};
    s.marked_desc = "r0=1 r1=0 r2=1 r3=0 (forbidden: readers disagree on write order)";
    s.marked = [](const Outcome& o) {
      return o.regs[0] == 1 && o.regs[1] == 0 && o.regs[2] == 1 && o.regs[3] == 0;
    };
    out.push_back(std::move(s));
  }

  // 2+2W: both variables keeping the FIRST thread-program-order store of one
  // thread and the second of the other needs a memory-order cycle.
  {
    LitmusShape s;
    s.litmus.name = "2+2W";
    s.litmus.nvars = 2;
    s.litmus.nregs = 0;
    s.litmus.threads = {{{St(X, 1), St(Y, 2)}}, {{St(Y, 1), St(X, 2)}}};
    s.marked_desc = "x=1 y=1 (forbidden: store order cycle)";
    s.marked = [](const Outcome& o) { return o.mem[0] == 1 && o.mem[1] == 1; };
    out.push_back(std::move(s));
  }

  // R: writer vs. fenced writer-reader.
  {
    LitmusShape s;
    s.litmus.name = "R";
    s.litmus.nvars = 2;
    s.litmus.nregs = 1;
    s.litmus.threads = {{{St(X, 1), St(Y, 1)}}, {{St(Y, 2), Fence(), Ld(X, 0)}}};
    s.marked_desc = "r0=0 y=2 (forbidden: y=2 final puts T0 wholly before the fence)";
    s.marked = [](const Outcome& o) { return o.regs[0] == 0 && o.mem[1] == 2; };
    out.push_back(std::move(s));
  }

  // S: store-load coherence against a cross-thread write.
  {
    LitmusShape s;
    s.litmus.name = "S";
    s.litmus.nvars = 2;
    s.litmus.nregs = 1;
    s.litmus.threads = {{{St(X, 2), St(Y, 1)}}, {{Ld(Y, 0), St(X, 1)}}};
    s.marked_desc = "r0=1 x=2 (forbidden: T1 saw y=1 so its x=1 is after x=2)";
    s.marked = [](const Outcome& o) { return o.regs[0] == 1 && o.mem[0] == 2; };
    out.push_back(std::move(s));
  }

  // Lock-MP: a lock-protected message pass. The reader sees either nothing or
  // the complete payload+flag — the shape the async_lock_commit mode must keep
  // working (commits drain asynchronously but visibility follows the lock).
  {
    LitmusShape s;
    s.litmus.name = "LockMP";
    s.litmus.nvars = 2;
    s.litmus.nregs = 2;
    s.litmus.nmutexes = 1;
    s.litmus.threads = {
        {{St(X, 7), LockOp(0), St(Y, 1), UnlockOp(0)}},
        {{LockOp(0), Ld(Y, 0), UnlockOp(0), Ld(X, 1)}}};
    s.marked_desc = "r0=1 r1!=7 (forbidden: lock release publishes all prior stores)";
    s.marked = [](const Outcome& o) { return o.regs[0] == 1 && o.regs[1] != 7; };
    out.push_back(std::move(s));
  }

  // 2W-samepage: a plain write-write race on one variable, with a second
  // variable sharing the page so racy commits must byte-merge rather than
  // whole-page overwrite. The final value of the raced variable must be the
  // commit-order last writer (checked against the recorded trace by the
  // explorer); the unraced variable must survive the merge untouched.
  {
    LitmusShape s;
    s.litmus.name = "2W-samepage";
    s.litmus.nvars = 2;
    s.litmus.nregs = 0;
    s.litmus.vars_same_page = true;
    s.litmus.threads = {{{St(X, 1), St(Y, 5)}}, {{St(X, 2)}}};
    s.marked_desc = "y!=5 (forbidden: byte-merge must keep the unraced neighbor)";
    s.marked = [](const Outcome& o) { return o.mem[1] != 5; };
    out.push_back(std::move(s));
  }

  return out;
}

}  // namespace

const std::vector<LitmusShape>& Catalog() {
  static const std::vector<LitmusShape>* kCatalog =
      new std::vector<LitmusShape>(BuildCatalog());
  return *kCatalog;
}

const LitmusShape& ShapeByName(const std::string& name) {
  for (const LitmusShape& s : Catalog()) {
    if (s.litmus.name == name) {
      return s;
    }
  }
  CSQ_CHECK_MSG(false, "unknown litmus shape: " << name);
  __builtin_unreachable();
}

}  // namespace csq::tso
