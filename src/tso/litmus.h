// Litmus DSL for TSO conformance testing.
//
// A Litmus is a tiny multithreaded program over a handful of u64 variables:
// each thread is a straight-line list of stores, loads (into named registers),
// fences, atomic RMWs and lock/unlock pairs. The catalog below covers the
// classic x86-TSO shapes (SB, MP, LB, IRIW, 2+2W, R, S and fence variants, cf.
// "x86-TSO" / "Time, Fences and the Ordering of Events in TSO") plus two
// shapes specific to this system: a lock-based message pass (exercising the
// async_lock_commit path) and a same-page write race (exercising byte-level
// last-writer-wins merging).
//
// Each catalog entry names ONE distinguished outcome — the shape's classic
// "interesting" outcome — and says whether TSO forbids it. Forbidden outcomes
// are asserted unreachable under exhaustive schedule exploration; allowed
// witnesses (e.g. SB's r0=r1=0) demonstrate the implementation really is TSO
// and not something stronger.
#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "src/util/types.h"

namespace csq::tso {

enum class LOpKind : u8 {
  kStore,   // var <- value
  kLoad,    // reg <- var
  kFence,   // full barrier (drain store buffer, pull in remote stores)
  kRmwAdd,  // reg <- var; var <- var + value (atomic; implies fence on x86)
  kLock,    // acquire mutex
  kUnlock,  // release mutex
  kWork,    // value units of pure computation (perturbs relative timing)
};

struct LOp {
  LOpKind kind{};
  u32 var = 0;    // kStore / kLoad / kRmwAdd
  u64 value = 0;  // store value / rmw operand / work units
  u32 reg = 0;    // kLoad / kRmwAdd destination (global register index)
  u32 mutex = 0;  // kLock / kUnlock
};

inline LOp St(u32 var, u64 value) { return {LOpKind::kStore, var, value, 0, 0}; }
inline LOp Ld(u32 var, u32 reg) { return {LOpKind::kLoad, var, 0, reg, 0}; }
inline LOp Fence() { return {LOpKind::kFence, 0, 0, 0, 0}; }
inline LOp RmwAdd(u32 var, u64 operand, u32 reg) {
  return {LOpKind::kRmwAdd, var, operand, reg, 0};
}
inline LOp LockOp(u32 mutex) { return {LOpKind::kLock, 0, 0, 0, mutex}; }
inline LOp UnlockOp(u32 mutex) { return {LOpKind::kUnlock, 0, 0, 0, mutex}; }
inline LOp WorkOp(u64 units) { return {LOpKind::kWork, 0, units, 0, 0}; }

struct LitmusThread {
  std::vector<LOp> ops;
};

struct Litmus {
  std::string name;
  u32 nvars = 0;
  u32 nregs = 0;     // registers are numbered globally across threads
  u32 nmutexes = 0;
  // Default placement puts each variable on its own page (commits to distinct
  // variables touch distinct pages). When set, all variables share one page at
  // 8-byte offsets, forcing byte-level merges of racy commits.
  bool vars_same_page = false;
  std::vector<LitmusThread> threads;

  // Static footprint (page-independent): variables read / written by thread t.
  std::set<u32> ReadSet(u32 t) const;
  std::set<u32> WriteSet(u32 t) const;
  bool UsesLocks(u32 t) const;
};

// A terminal state: every register's final value plus final memory.
struct Outcome {
  std::vector<u64> regs;
  std::vector<u64> mem;

  bool operator==(const Outcome& o) const { return regs == o.regs && mem == o.mem; }
  bool operator<(const Outcome& o) const {
    return regs != o.regs ? regs < o.regs : mem < o.mem;
  }
  std::string ToString() const;
};

using OutcomeSet = std::set<Outcome>;

std::string ToString(const OutcomeSet& s);

// One conformance scenario: a litmus plus its classic distinguished outcome.
struct LitmusShape {
  Litmus litmus;
  std::string marked_desc;  // human-readable description of the marked outcome
  std::function<bool(const Outcome&)> marked;  // identifies the marked outcome
  bool forbidden = true;  // TSO forbids the marked outcome (else: required witness)
};

// The conformance catalog (>= 8 classic TSO shapes + system-specific ones).
const std::vector<LitmusShape>& Catalog();

// Catalog entry by name (dies if absent).
const LitmusShape& ShapeByName(const std::string& name);

}  // namespace csq::tso
