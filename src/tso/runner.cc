#include "src/tso/runner.h"

#include <vector>

#include "src/util/check.h"
#include "src/util/hash.h"

namespace csq::tso {

u64 VarAddr(const Litmus& lit, u32 var, u32 page_size) {
  if (lit.vars_same_page) {
    return static_cast<u64>(page_size) + var * 8ULL;
  }
  return static_cast<u64>(var + 1) * page_size;
}

u32 VarPage(const Litmus& lit, u32 var, u32 page_size) {
  return static_cast<u32>(VarAddr(lit, var, page_size) / page_size);
}

namespace {

void ExecThread(rt::ThreadApi& api, const Litmus& lit, u32 t,
                const std::vector<rt::MutexId>& mutexes, u32 page_size,
                std::vector<u64>& regs) {
  for (const LOp& op : lit.threads[t].ops) {
    switch (op.kind) {
      case LOpKind::kStore:
        api.Store<u64>(VarAddr(lit, op.var, page_size), op.value);
        break;
      case LOpKind::kLoad:
        regs[op.reg] = api.Load<u64>(VarAddr(lit, op.var, page_size));
        break;
      case LOpKind::kFence:
        api.Fence();
        break;
      case LOpKind::kRmwAdd:
        regs[op.reg] = api.AtomicRmw(VarAddr(lit, op.var, page_size), rt::RmwOp::kAdd, op.value);
        break;
      case LOpKind::kLock:
        api.Lock(mutexes[op.mutex]);
        break;
      case LOpKind::kUnlock:
        api.Unlock(mutexes[op.mutex]);
        break;
      case LOpKind::kWork:
        api.Work(op.value);
        break;
    }
  }
}

}  // namespace

Outcome RunLitmus(rt::Backend b, const Litmus& lit, rt::RuntimeConfig cfg,
                  rt::RunResult* result) {
  const u32 nthreads = static_cast<u32>(lit.threads.size());
  cfg.nthreads = nthreads;
  const u32 page_size = cfg.segment.page_size;
  CSQ_CHECK(VarAddr(lit, lit.nvars ? lit.nvars - 1 : 0, page_size) + 8 <=
            cfg.segment.size_bytes);

  Outcome out;
  out.regs.assign(lit.nregs, 0);
  out.mem.assign(lit.nvars, 0);

  auto runtime = rt::MakeRuntime(b, cfg);
  const rt::RunResult res = runtime->Run([&](rt::ThreadApi& main) -> u64 {
    std::vector<rt::MutexId> mutexes;
    for (u32 m = 0; m < lit.nmutexes; ++m) {
      mutexes.push_back(main.CreateMutex());
    }
    std::vector<rt::ThreadHandle> hs;
    hs.reserve(nthreads);
    for (u32 t = 0; t < nthreads; ++t) {
      hs.push_back(main.SpawnThread([&lit, &mutexes, &out, t, page_size](rt::ThreadApi& api) {
        ExecThread(api, lit, t, mutexes, page_size, out.regs);
      }));
    }
    for (rt::ThreadHandle h : hs) {
      main.JoinThread(h);  // join is an acquire: main sees every final commit
    }
    for (u32 v = 0; v < lit.nvars; ++v) {
      out.mem[v] = main.Load<u64>(VarAddr(lit, v, page_size));
    }
    Fnv1a digest;
    for (u64 r : out.regs) {
      digest.Mix(r);
    }
    for (u64 m : out.mem) {
      digest.Mix(m);
    }
    return digest.Digest();
  });
  if (result != nullptr) {
    *result = res;
  }
  return out;
}

}  // namespace csq::tso
