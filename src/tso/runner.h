// Executes a Litmus program on any backend through the public rt::ThreadApi.
//
// Variable placement: by default variable v lives at page (v+1) of the
// segment (commits to distinct variables touch distinct pages); with
// Litmus::vars_same_page all variables pack into page 1 at 8-byte offsets
// (racy commits must byte-merge). Registers live host-side: litmus threads
// write into a plain vector — safe because the simulation is single-threaded
// on the host — and final memory is read by the main thread after joining
// all workers.
#pragma once

#include "src/rt/api.h"
#include "src/tso/litmus.h"

namespace csq::tso {

// Address of variable `var` under `lit`'s placement for the given page size.
u64 VarAddr(const Litmus& lit, u32 var, u32 page_size);

// Page index of variable `var`.
u32 VarPage(const Litmus& lit, u32 var, u32 page_size);

// Runs `lit` once on backend `b`. `cfg` carries backend knobs (jitter, async
// lock mode, observer, token arbiter, ...); nthreads is set from the litmus.
// The returned outcome also folds into RunResult::checksum, so checksum
// comparisons across runs compare outcomes.
Outcome RunLitmus(rt::Backend b, const Litmus& lit, rt::RuntimeConfig cfg,
                  rt::RunResult* result = nullptr);

}  // namespace csq::tso
