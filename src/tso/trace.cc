#include "src/tso/trace.h"

#include <algorithm>
#include <sstream>

#include "src/util/check.h"

namespace csq::tso {

namespace {

const char* KindName(TsoEventKind k) {
  switch (k) {
    case TsoEventKind::kTokenGrant:
      return "token-grant";
    case TsoEventKind::kTokenRelease:
      return "token-release";
    case TsoEventKind::kAcquire:
      return "acquire";
    case TsoEventKind::kSyncRelease:
      return "release";
    case TsoEventKind::kCommit:
      return "commit";
    case TsoEventKind::kUpdate:
      return "update";
    case TsoEventKind::kMerge:
      return "merge";
  }
  return "?";
}

}  // namespace

std::string TsoEvent::ToString() const {
  std::ostringstream os;
  os << KindName(kind) << " tid=" << tid;
  switch (kind) {
    case TsoEventKind::kTokenGrant:
    case TsoEventKind::kTokenRelease:
      os << " count=" << a << " seq=" << b;
      break;
    case TsoEventKind::kAcquire:
    case TsoEventKind::kSyncRelease:
      os << " obj=0x" << std::hex << a << std::dec;
      break;
    case TsoEventKind::kCommit:
      os << " version=" << a << " pages=[";
      for (usize i = 0; i < pages.size(); ++i) {
        os << (i ? " " : "") << pages[i];
      }
      os << "]";
      break;
    case TsoEventKind::kUpdate:
      os << " from=" << a << " to=" << b << " changed=" << c;
      break;
    case TsoEventKind::kMerge:
      os << " page=" << (pages.empty() ? 0 : pages[0]) << " version=" << a
         << " base=" << b << " bytes=" << c << (flag ? " rebase" : " resolve");
      break;
  }
  return os.str();
}

u64 TsoTrace::EventCount() const {
  u64 n = grants.size();
  for (const auto& s : per_thread) {
    n += s.size();
  }
  return n;
}

std::vector<TsoEvent>& TraceRecorder::Stream(u32 tid) {
  if (trace_.per_thread.size() <= tid) {
    trace_.per_thread.resize(tid + 1);
  }
  return trace_.per_thread[tid];
}

void TraceRecorder::OnAcquire(u32 tid, u64 object) {
  TsoEvent e;
  e.kind = TsoEventKind::kAcquire;
  e.tid = tid;
  e.a = object;
  Stream(tid).push_back(std::move(e));
}

void TraceRecorder::OnRelease(u32 tid, u64 object) {
  TsoEvent e;
  e.kind = TsoEventKind::kSyncRelease;
  e.tid = tid;
  e.a = object;
  Stream(tid).push_back(std::move(e));
}

void TraceRecorder::OnCommit(u32 tid, const std::vector<u32>& pages) {
  // Page sets of commits are covered by OnCommitVersion (which also carries
  // the version); the legacy OnCommit edge adds nothing to the canonical
  // trace, so it is deliberately not recorded.
  (void)tid;
  (void)pages;
}

void TraceRecorder::OnTokenGrant(u32 tid, u64 count, u64 seq) {
  TsoEvent e;
  e.kind = TsoEventKind::kTokenGrant;
  e.tid = tid;
  e.a = count;
  e.b = seq;
  Stream(tid).push_back(e);
  trace_.grants.push_back(std::move(e));
}

void TraceRecorder::OnTokenRelease(u32 tid, u64 count, u64 seq) {
  TsoEvent e;
  e.kind = TsoEventKind::kTokenRelease;
  e.tid = tid;
  e.a = count;
  e.b = seq;
  Stream(tid).push_back(e);
  trace_.grants.push_back(std::move(e));
}

void TraceRecorder::OnCommitVersion(u32 tid, u64 version, const std::vector<u32>& pages) {
  TsoEvent e;
  e.kind = TsoEventKind::kCommit;
  e.tid = tid;
  e.a = version;
  e.pages = pages;
  Stream(tid).push_back(std::move(e));
}

void TraceRecorder::OnUpdate(u32 tid, u64 from, u64 to, u64 pages_refreshed) {
  TsoEvent e;
  e.kind = TsoEventKind::kUpdate;
  e.tid = tid;
  e.a = from;
  e.b = to;
  e.c = pages_refreshed;
  Stream(tid).push_back(std::move(e));
}

void TraceRecorder::OnMergeDecision(u32 tid, u32 page, u64 version, u64 base_version,
                                    u64 bytes, bool rebase) {
  TsoEvent e;
  e.kind = TsoEventKind::kMerge;
  e.tid = tid;
  e.a = version;
  e.b = base_version;
  e.c = bytes;
  e.flag = rebase;
  e.pages = {page};
  Stream(tid).push_back(std::move(e));
}

namespace {

TraceDiff DiffStreams(const std::string& where, const std::vector<TsoEvent>& expect,
                      const std::vector<TsoEvent>& got) {
  const usize n = std::min(expect.size(), got.size());
  for (usize i = 0; i < n; ++i) {
    if (!(expect[i] == got[i])) {
      TraceDiff d;
      d.diverged = true;
      std::ostringstream os;
      os << where << " event " << i << " diverges:\n  expected: " << expect[i].ToString()
         << "\n  got:      " << got[i].ToString();
      d.description = os.str();
      return d;
    }
  }
  if (expect.size() != got.size()) {
    TraceDiff d;
    d.diverged = true;
    std::ostringstream os;
    os << where << " length mismatch: expected " << expect.size() << " events, got "
       << got.size();
    if (expect.size() > n) {
      os << "\n  first missing: " << expect[n].ToString();
    } else {
      os << "\n  first extra:   " << got[n].ToString();
    }
    d.description = os.str();
    return d;
  }
  return {};
}

}  // namespace

TraceDiff DiffTraces(const TsoTrace& expect, const TsoTrace& got) {
  // The global grant order is the deterministic total order — check it first
  // so divergences there are reported as such, not as per-thread fallout.
  TraceDiff d = DiffStreams("token-grant sequence", expect.grants, got.grants);
  if (d.diverged) {
    return d;
  }
  const usize n = std::max(expect.per_thread.size(), got.per_thread.size());
  static const std::vector<TsoEvent> kEmpty;
  for (usize t = 0; t < n; ++t) {
    const auto& e = t < expect.per_thread.size() ? expect.per_thread[t] : kEmpty;
    const auto& g = t < got.per_thread.size() ? got.per_thread[t] : kEmpty;
    std::ostringstream os;
    os << "thread " << t << " stream";
    d = DiffStreams(os.str(), e, g);
    if (d.diverged) {
      return d;
    }
  }
  return {};
}

OracleResult CheckDeterminism(rt::Backend b, const Litmus& lit, rt::RuntimeConfig cfg,
                              const OracleOptions& opt) {
  CSQ_CHECK_MSG(cfg.observer == nullptr, "oracle installs its own observer");
  OracleResult result;
  TsoTrace reference;
  Outcome ref_outcome;
  for (u32 run = 0; run < opt.runs; ++run) {
    TraceRecorder rec;
    rt::RuntimeConfig c = cfg;
    c.observer = &rec;
    c.costs.jitter_bp = opt.jitter_bp;
    c.costs.jitter_seed = opt.first_seed + run;
    const Outcome out = RunLitmus(b, lit, c);
    if (run == 0) {
      reference = rec.TakeTrace();
      ref_outcome = out;
      result.outcome = out;
      continue;
    }
    if (!(out == ref_outcome)) {
      result.ok = false;
      std::ostringstream os;
      os << lit.name << " on " << rt::BackendName(b) << ": outcome diverged at jitter seed "
         << (opt.first_seed + run) << "\n  expected: " << ref_outcome.ToString()
         << "\n  got:      " << out.ToString();
      result.failure = os.str();
      return result;
    }
    const TraceDiff d = DiffTraces(reference, rec.Trace());
    if (d.diverged) {
      result.ok = false;
      std::ostringstream os;
      os << lit.name << " on " << rt::BackendName(b) << ": trace diverged at jitter seed "
         << (opt.first_seed + run) << "\n" << d.description;
      result.failure = os.str();
      return result;
    }
  }
  return result;
}

}  // namespace csq::tso
