// Canonical execution traces and the cross-run determinism oracle.
//
// A deterministic backend must produce the same *events*, not just the same
// checksum, on every jittered run. The oracle records a canonical trace via
// the SyncObserver hooks (token grants/releases, sync-object acquire/release
// edges, commit versions with page sets, snapshot updates, byte-merge
// decisions) and diffs traces across runs, reporting the FIRST divergent
// event — a far better failure message than a checksum mismatch.
//
// Trace layout: per-thread event streams plus the global token-grant
// sequence. Per-thread streams are program-ordered and jitter-invariant even
// for token-free phase-two work (async commits, barrier installs); a single
// global stream over those events would NOT be jitter-invariant, because the
// host-level interleaving of different threads' token-free events moves with
// virtual-time jitter. The global grant sequence is the deterministic total
// order the paper's token defines, so it is recorded globally.
#pragma once

#include <string>
#include <vector>

#include "src/rt/api.h"
#include "src/tso/litmus.h"
#include "src/tso/runner.h"

namespace csq::tso {

enum class TsoEventKind : u8 {
  kTokenGrant,    // a=count, b=seq
  kTokenRelease,  // a=count, b=seq
  kAcquire,       // a=object id
  kSyncRelease,   // a=object id
  kCommit,        // a=version, pages=install-ordered page set
  kUpdate,        // a=from, b=to, c=pages changed
  kMerge,         // a=version, b=base version, c=bytes, page=pages[0], rebase in flag
};

struct TsoEvent {
  TsoEventKind kind{};
  u32 tid = 0;
  u64 a = 0;
  u64 b = 0;
  u64 c = 0;
  bool flag = false;
  std::vector<u32> pages;

  bool operator==(const TsoEvent& o) const {
    return kind == o.kind && tid == o.tid && a == o.a && b == o.b && c == o.c &&
           flag == o.flag && pages == o.pages;
  }
  std::string ToString() const;
};

struct TsoTrace {
  std::vector<std::vector<TsoEvent>> per_thread;
  std::vector<TsoEvent> grants;  // global grant/release order

  u64 EventCount() const;
};

// SyncObserver implementation building a TsoTrace. Install via
// RuntimeConfig::observer before the run.
class TraceRecorder final : public rt::SyncObserver {
 public:
  const TsoTrace& Trace() const { return trace_; }
  TsoTrace TakeTrace() { return std::move(trace_); }

  void OnAcquire(u32 tid, u64 object) override;
  void OnRelease(u32 tid, u64 object) override;
  void OnCommit(u32 tid, const std::vector<u32>& pages) override;
  void OnTokenGrant(u32 tid, u64 count, u64 seq) override;
  void OnTokenRelease(u32 tid, u64 count, u64 seq) override;
  void OnCommitVersion(u32 tid, u64 version, const std::vector<u32>& pages) override;
  void OnUpdate(u32 tid, u64 from, u64 to, u64 pages_refreshed) override;
  void OnMergeDecision(u32 tid, u32 page, u64 version, u64 base_version, u64 bytes,
                       bool rebase) override;

 private:
  std::vector<TsoEvent>& Stream(u32 tid);
  TsoTrace trace_;
};

// First divergence between two traces (empty description when identical).
struct TraceDiff {
  bool diverged = false;
  std::string description;
};

TraceDiff DiffTraces(const TsoTrace& expect, const TsoTrace& got);

// ---- The oracle ------------------------------------------------------------

struct OracleOptions {
  u32 runs = 20;        // jittered runs per shape
  u32 jitter_bp = 1200; // +-12% timing perturbation
  u64 first_seed = 1;   // seeds first_seed .. first_seed+runs-1
};

struct OracleResult {
  bool ok = true;
  // On failure: which seed diverged and the first divergent event.
  std::string failure;
  Outcome outcome;  // the reference (seed 0 == first run) outcome
};

// Runs `lit` on backend `b` `opt.runs` times under different jitter seeds,
// recording a canonical trace each time; fails on the first divergent event
// (or outcome mismatch). `cfg` must not carry an observer (the oracle installs
// its own recorder).
OracleResult CheckDeterminism(rt::Backend b, const Litmus& lit, rt::RuntimeConfig cfg,
                              const OracleOptions& opt = {});

}  // namespace csq::tso
