#include "src/tso/tso_model.h"

#include <deque>
#include <string>
#include <unordered_set>

#include "src/util/check.h"

namespace csq::tso {

namespace {

// One abstract-machine configuration. Everything is small and value-typed so
// states can be serialized for memoization.
struct MachState {
  std::vector<u32> pc;                          // per thread: next op index
  std::vector<std::deque<std::pair<u32, u64>>>  // per thread: FIFO (var, value)
      buf;
  std::vector<u64> mem;
  std::vector<u64> regs;
  std::vector<u32> lock_owner;  // per mutex: owner+1, 0 = free

  std::string Key() const {
    std::string k;
    k.reserve(64);
    auto put = [&k](u64 v) {
      k.append(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    for (u32 v : pc) put(v);
    for (const auto& b : buf) {
      put(b.size());
      for (const auto& [var, val] : b) {
        put(var);
        put(val);
      }
    }
    for (u64 v : mem) put(v);
    for (u64 v : regs) put(v);
    for (u32 v : lock_owner) put(v);
    return k;
  }
};

class Enumerator {
 public:
  Enumerator(const Litmus& lit, bool sc) : lit_(lit), sc_(sc) {}

  OutcomeSet Run() {
    MachState s;
    const u32 n = static_cast<u32>(lit_.threads.size());
    s.pc.assign(n, 0);
    s.buf.resize(n);
    s.mem.assign(lit_.nvars, 0);
    s.regs.assign(lit_.nregs, 0);
    s.lock_owner.assign(lit_.nmutexes, 0);
    Dfs(s);
    return std::move(outcomes_);
  }

 private:
  // Buffered value a load of `var` by `t` forwards, if any (newest first).
  static bool Forward(const MachState& s, u32 t, u32 var, u64* out) {
    for (auto it = s.buf[t].rbegin(); it != s.buf[t].rend(); ++it) {
      if (it->first == var) {
        *out = it->second;
        return true;
      }
    }
    return false;
  }

  void Dfs(const MachState& s) {
    if (!seen_.insert(s.Key()).second) {
      return;
    }
    const u32 n = static_cast<u32>(lit_.threads.size());
    bool terminal = true;
    for (u32 t = 0; t < n; ++t) {
      // Transition 1: drain the oldest buffered store of t to memory.
      if (!s.buf[t].empty()) {
        terminal = false;
        MachState next = s;
        const auto [var, val] = next.buf[t].front();
        next.buf[t].pop_front();
        next.mem[var] = val;
        Dfs(next);
      }
      // Transition 2: t executes its next instruction.
      if (s.pc[t] >= lit_.threads[t].ops.size()) {
        continue;
      }
      const LOp& op = lit_.threads[t].ops[s.pc[t]];
      const bool drained = s.buf[t].empty();
      switch (op.kind) {
        case LOpKind::kStore: {
          terminal = false;
          MachState next = s;
          ++next.pc[t];
          if (sc_) {
            next.mem[op.var] = op.value;  // SC: stores hit memory immediately
          } else {
            next.buf[t].push_back({op.var, op.value});
          }
          Dfs(next);
          break;
        }
        case LOpKind::kLoad: {
          terminal = false;
          MachState next = s;
          ++next.pc[t];
          u64 v;
          if (sc_ || !Forward(s, t, op.var, &v)) {
            v = s.mem[op.var];  // no buffered store of var: read memory
          }
          next.regs[op.reg] = v;
          Dfs(next);
          break;
        }
        case LOpKind::kFence: {
          if (!drained) {
            break;  // fence blocks until the buffer drains
          }
          terminal = false;
          MachState next = s;
          ++next.pc[t];
          Dfs(next);
          break;
        }
        case LOpKind::kRmwAdd: {
          if (!drained) {
            break;  // locked instructions flush the buffer first
          }
          terminal = false;
          MachState next = s;
          ++next.pc[t];
          next.regs[op.reg] = s.mem[op.var];
          next.mem[op.var] = s.mem[op.var] + op.value;  // atomic: bypasses the buffer
          Dfs(next);
          break;
        }
        case LOpKind::kLock: {
          if (!drained || s.lock_owner[op.mutex] != 0) {
            break;  // acquisition is an RMW on a free lock word
          }
          terminal = false;
          MachState next = s;
          ++next.pc[t];
          next.lock_owner[op.mutex] = t + 1;
          Dfs(next);
          break;
        }
        case LOpKind::kUnlock: {
          if (!drained) {
            break;  // x86 release: preceding stores visible before the release
          }
          CSQ_CHECK_MSG(s.lock_owner[op.mutex] == t + 1, "model: unlock of unowned mutex");
          terminal = false;
          MachState next = s;
          ++next.pc[t];
          next.lock_owner[op.mutex] = 0;
          Dfs(next);
          break;
        }
        case LOpKind::kWork: {
          terminal = false;
          MachState next = s;
          ++next.pc[t];
          Dfs(next);
          break;
        }
      }
    }
    if (terminal) {
      // No transition fired: buffers are empty (drains are transitions) and —
      // for deadlock-free litmuses — every program counter is at its end.
      for (u32 t = 0; t < n; ++t) {
        CSQ_CHECK_MSG(s.pc[t] >= lit_.threads[t].ops.size(), "model: litmus deadlocks");
      }
      outcomes_.insert(Outcome{s.regs, s.mem});
    }
  }

  const Litmus& lit_;
  const bool sc_;
  OutcomeSet outcomes_;
  std::unordered_set<std::string> seen_;
};

}  // namespace

OutcomeSet AllowedOutcomes(const Litmus& lit) { return Enumerator(lit, /*sc=*/false).Run(); }

OutcomeSet ScOutcomes(const Litmus& lit) { return Enumerator(lit, /*sc=*/true).Run(); }

}  // namespace csq::tso
