// Reference x86-TSO operational model (Owens/Sarkar/Sewell style).
//
// Exhaustively enumerates every terminal state of a Litmus under the abstract
// TSO machine: per-thread FIFO store buffers with store-to-load forwarding,
// nondeterministic buffer drains, fences/RMWs/lock-ops requiring a drained
// buffer, and a single coherent shared memory.
//
// The model is intentionally MORE permissive than the implementation under
// test (a real schedule explorer observes a subset of the interleavings the
// abstract machine allows). Conformance is therefore one-directional:
//
//     outcomes observed on any deterministic backend  ⊆  AllowedOutcomes()
//
// plus spot assertions that specific classic witnesses (e.g. SB's r0=r1=0)
// are in the allowed set and specific forbidden outcomes are not.
#pragma once

#include "src/tso/litmus.h"

namespace csq::tso {

// Every outcome the abstract TSO machine can reach for `lit` (memoized DFS
// over all interleavings; litmus programs are small enough for this to be
// exact). Lock acquisition is modeled as an atomic RMW: requires a drained
// buffer and a free mutex.
OutcomeSet AllowedOutcomes(const Litmus& lit);

// Sequentially consistent subset (no store buffers): used to sanity-check the
// model itself — SC outcomes must always be contained in the TSO set, and for
// SB the containment must be strict.
OutcomeSet ScOutcomes(const Litmus& lit);

}  // namespace csq::tso
