// Always-on assertion macros.
//
// CSQ_CHECK(cond)        — aborts with file:line and the failed expression.
// CSQ_CHECK_MSG(cond, m) — same, with an extra streamed message.
// CSQ_DCHECK(cond)       — compiled out in NDEBUG builds.
//
// A deterministic-execution runtime cannot tolerate "impossible" states silently:
// every broken invariant is a potential nondeterminism bug, so checks stay on in
// release builds (they are off the hot paths).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace csq {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const std::string& msg) {
  std::fprintf(stderr, "CSQ_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg.empty() ? "" : " — ", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace csq

#define CSQ_CHECK(cond)                                        \
  do {                                                         \
    if (!(cond)) {                                             \
      ::csq::CheckFailed(__FILE__, __LINE__, #cond, "");       \
    }                                                          \
  } while (0)

#define CSQ_CHECK_MSG(cond, msg)                               \
  do {                                                         \
    if (!(cond)) {                                             \
      std::ostringstream csq_check_oss_;                       \
      csq_check_oss_ << msg;                                   \
      ::csq::CheckFailed(__FILE__, __LINE__, #cond,            \
                         csq_check_oss_.str());                \
    }                                                          \
  } while (0)

#ifdef NDEBUG
#define CSQ_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define CSQ_DCHECK(cond) CSQ_CHECK(cond)
#endif
