// Incremental FNV-1a hashing.
//
// Used for two purposes:
//   1. workload result checksums (the "program output" whose bit-identity across
//      runs is the determinism property under test), and
//   2. sync-op trace hashes (the internal schedule fingerprint).
#pragma once

#include <cstring>
#include <string_view>

#include "src/util/types.h"

namespace csq {

class Fnv1a {
 public:
  static constexpr u64 kOffset = 0xcbf29ce484222325ULL;
  static constexpr u64 kPrime = 0x100000001b3ULL;

  Fnv1a() = default;

  void MixBytes(const void* data, usize n) {
    const auto* p = static_cast<const u8*>(data);
    for (usize i = 0; i < n; ++i) {
      h_ = (h_ ^ p[i]) * kPrime;
    }
  }

  void Mix(u64 v) { MixBytes(&v, sizeof(v)); }
  void Mix(double v) { MixBytes(&v, sizeof(v)); }
  void Mix(std::string_view s) { MixBytes(s.data(), s.size()); }

  u64 Digest() const { return h_; }

 private:
  u64 h_ = kOffset;
};

inline u64 HashBytes(const void* data, usize n) {
  Fnv1a h;
  h.MixBytes(data, n);
  return h.Digest();
}

// Mixes two hashes into one (order-sensitive).
inline u64 HashCombine(u64 a, u64 b) {
  Fnv1a h;
  h.Mix(a);
  h.Mix(b);
  return h.Digest();
}

}  // namespace csq
