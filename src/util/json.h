// Minimal JSON string escaping, shared by the bench report emitter
// (bench/report.h) and the race-report writer (src/race/report.h).
//
// Escapes everything RFC 8259 requires: quote, backslash, and ALL control
// characters below 0x20 (named escapes for \b \f \n \r \t, \u00XX for the
// rest). Bytes >= 0x20 pass through untouched, so UTF-8 payloads survive.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace csq::util {

// Returns `s` quoted and escaped as a JSON string literal.
inline std::string JsonQuote(std::string_view s) {
  std::string out = "\"";
  for (char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace csq::util
