// Deterministic pseudo-random number generators.
//
// Everything in this repository that needs randomness — workload input
// generation, cost-model jitter, canneal's annealing moves — must be
// reproducible from a seed, so std::random_device and the global C rand()
// are banned. DetRng is splitmix64-seeded xoshiro256**, which is fast,
// high-quality, and has a trivially portable implementation.
#pragma once

#include "src/util/types.h"

namespace csq {

// splitmix64: used to expand a single u64 seed into xoshiro state.
inline u64 SplitMix64(u64& state) {
  u64 z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class DetRng {
 public:
  explicit DetRng(u64 seed = 0x5eed) { Seed(seed); }

  void Seed(u64 seed) {
    u64 sm = seed;
    for (auto& w : s_) {
      w = SplitMix64(sm);
    }
  }

  // Uniform u64.
  u64 Next() {
    const u64 result = Rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound == 0 returns 0.
  u64 Below(u64 bound) {
    if (bound == 0) {
      return 0;
    }
    // Multiply-shift reduction; bias is negligible for our bounds (<2^32).
    return static_cast<u64>((static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  u64 Range(u64 lo, u64 hi) { return lo + Below(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

 private:
  static u64 Rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

  u64 s_[4];
};

}  // namespace csq
