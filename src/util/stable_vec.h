// Append-only container with stable addresses and lock-free indexed reads.
//
// The deterministic runtimes keep per-object state (thread records, mutexes,
// condvars, logical clocks) in growable sequences. Creation is always a shared
// operation — serialized by the engine's shared-state gate — but *reads* of an
// already-created element happen from purely local code (a thread ticking its
// own clock, a TLB refill), which under the host-parallel engine runs
// concurrently with another thread creating the next element. std::deque keeps
// element addresses stable but its internal index block is not safe to read
// during a concurrent push_back; StableVec is.
//
// Concurrency contract:
//   * EmplaceBack callers must be externally serialized (hold the shared-state
//     gate). This is NOT a concurrent-writer container.
//   * operator[] / size() are safe from any thread concurrently with
//     EmplaceBack. size() is monotonic; an index observed < size() refers to a
//     fully constructed element (release/acquire on size_).
//   * Element contents carry their own synchronization discipline (most fields
//     are owner-thread-only or gate-held; see call sites).
//
// Storage is a fixed spine of lazily allocated blocks: element addresses never
// move, no block is ever reallocated, and an indexed read is two loads.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <new>
#include <utility>

#include "src/util/check.h"
#include "src/util/types.h"

namespace csq {

template <typename T>
class StableVec {
 public:
  static constexpr usize kBlockSize = 64;
  static constexpr usize kMaxBlocks = 1024;  // 65536 elements; plenty for 32-thread sweeps

  StableVec() = default;

  ~StableVec() {
    const usize n = size_.load(std::memory_order_acquire);
    for (usize i = n; i-- > 0;) {
      Slot(i)->~T();
    }
    for (auto& b : blocks_) {
      delete[] reinterpret_cast<Storage*>(b.load(std::memory_order_relaxed));
    }
  }

  StableVec(const StableVec&) = delete;
  StableVec& operator=(const StableVec&) = delete;

  // Writer-side (gate-serialized). Returns a reference that stays valid for
  // the container's lifetime.
  template <typename... Args>
  T& EmplaceBack(Args&&... args) {
    const usize i = size_.load(std::memory_order_relaxed);
    CSQ_CHECK_MSG(i < kBlockSize * kMaxBlocks, "StableVec capacity exceeded");
    const usize bi = i / kBlockSize;
    if (blocks_[bi].load(std::memory_order_relaxed) == nullptr) {
      auto* fresh = new Storage[kBlockSize];
      blocks_[bi].store(fresh, std::memory_order_release);
    }
    T* slot = Slot(i);
    new (slot) T(std::forward<Args>(args)...);
    size_.store(i + 1, std::memory_order_release);
    return *slot;
  }

  T& operator[](usize i) { return *Slot(i); }
  const T& operator[](usize i) const { return *Slot(i); }

  T& back() { return (*this)[size() - 1]; }

  usize size() const { return size_.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }

 private:
  struct alignas(alignof(T)) Storage {
    unsigned char bytes[sizeof(T)];
  };

  T* Slot(usize i) const {
    Storage* b = blocks_[i / kBlockSize].load(std::memory_order_acquire);
    return std::launder(reinterpret_cast<T*>(b[i % kBlockSize].bytes));
  }

  std::array<std::atomic<Storage*>, kMaxBlocks> blocks_{};
  std::atomic<usize> size_{0};
};

}  // namespace csq
