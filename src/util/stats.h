// Small statistics accumulators used by the benchmark harness.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include "src/util/check.h"
#include "src/util/types.h"

namespace csq {

// Hit fraction of a hit/miss counter pair (e.g. the workspace
// page-translation cache); 0 when there were no lookups.
inline double HitRate(u64 hits, u64 misses) {
  const u64 total = hits + misses;
  return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
}

// Wall-clock stopwatch for host-time microbenchmarks (bench/micro_*). This
// measures real elapsed time, not simulated virtual time — the substrate's
// virtual-time metrics must never depend on it.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void Reset() { start_ = std::chrono::steady_clock::now(); }

  double ElapsedNs() const {
    return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Nearest-rank percentile of a sample set (p in [0, 100]); sorts a copy so
// callers can keep their samples in arrival order. 0 on an empty set. Used by
// the serving bench for per-request latency p50/p95/p99.
inline u64 Percentile(std::vector<u64> xs, double p) {
  if (xs.empty()) {
    return 0;
  }
  std::sort(xs.begin(), xs.end());
  const double rank = (p / 100.0) * static_cast<double>(xs.size());
  usize idx = rank <= 1.0 ? 0 : static_cast<usize>(std::ceil(rank)) - 1;
  idx = std::min(idx, xs.size() - 1);
  return xs[idx];
}

// Running min/max/mean/stddev over double samples.
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    if (n_ == 1) {
      min_ = max_ = x;
      mean_ = x;
      m2_ = 0.0;
      return;
    }
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  u64 Count() const { return n_; }
  double Min() const { return n_ ? min_ : 0.0; }
  double Max() const { return n_ ? max_ : 0.0; }
  double Mean() const { return n_ ? mean_ : 0.0; }
  double Variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double Stddev() const { return std::sqrt(Variance()); }
  // Mean absolute deviation from the mean requires the samples; see SampleSet.

 private:
  u64 n_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Keeps all samples; supports percentiles and mean deviation (the dispersion
// metric the paper reports: "mean deviation was within 20%").
class SampleSet {
 public:
  void Add(double x) { xs_.push_back(x); }

  usize Count() const { return xs_.size(); }

  double Mean() const {
    if (xs_.empty()) {
      return 0.0;
    }
    double s = 0.0;
    for (double x : xs_) {
      s += x;
    }
    return s / static_cast<double>(xs_.size());
  }

  double Min() const {
    CSQ_CHECK(!xs_.empty());
    return *std::min_element(xs_.begin(), xs_.end());
  }

  double Max() const {
    CSQ_CHECK(!xs_.empty());
    return *std::max_element(xs_.begin(), xs_.end());
  }

  // Mean absolute deviation from the mean, as a fraction of the mean.
  double MeanDeviationFrac() const {
    if (xs_.empty()) {
      return 0.0;
    }
    const double m = Mean();
    if (m == 0.0) {
      return 0.0;
    }
    double s = 0.0;
    for (double x : xs_) {
      s += std::abs(x - m);
    }
    return (s / static_cast<double>(xs_.size())) / m;
  }

  double Percentile(double p) const {
    CSQ_CHECK(!xs_.empty());
    std::vector<double> sorted = xs_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const usize lo = static_cast<usize>(rank);
    const usize hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  const std::vector<double>& Samples() const { return xs_; }

 private:
  std::vector<double> xs_;
};

}  // namespace csq
