// Plain-text table printer for the figure-reproduction harnesses.
//
// The bench binaries print the same rows/series the paper's figures plot;
// TablePrinter keeps the output aligned and machine-greppable
// (columns separated by two spaces, one header row, '-' rule).
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/util/check.h"
#include "src/util/types.h"

namespace csq {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
    widths_.resize(headers_.size());
    for (usize i = 0; i < headers_.size(); ++i) {
      widths_[i] = headers_[i].size();
    }
  }

  void AddRow(std::vector<std::string> cells) {
    CSQ_CHECK_MSG(cells.size() == headers_.size(),
                  "row has " << cells.size() << " cells, expected " << headers_.size());
    for (usize i = 0; i < cells.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size());
    }
    rows_.push_back(std::move(cells));
  }

  void Print(std::ostream& os) const {
    PrintRow(os, headers_);
    usize total = 0;
    for (usize w : widths_) {
      total += w + 2;
    }
    os << std::string(total, '-') << "\n";
    for (const auto& row : rows_) {
      PrintRow(os, row);
    }
  }

  static std::string Fmt(double v, int precision = 2) {
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
  }

  static std::string Fmt(u64 v) { return std::to_string(v); }

 private:
  void PrintRow(std::ostream& os, const std::vector<std::string>& row) const {
    for (usize i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths_[i]) + 2) << row[i];
    }
    os << "\n";
  }

  std::vector<std::string> headers_;
  std::vector<usize> widths_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace csq
