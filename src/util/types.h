// Basic integer aliases used throughout the Consequence reproduction.
#pragma once

#include <cstddef>
#include <cstdint>

namespace csq {

using u8 = uint8_t;
using u16 = uint16_t;
using u32 = uint32_t;
using u64 = uint64_t;
using i8 = int8_t;
using i16 = int16_t;
using i32 = int32_t;
using i64 = int64_t;
using usize = size_t;

}  // namespace csq
