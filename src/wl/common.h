// Shared helpers for the benchmark workloads.
//
// Each workload reimplements one program from the paper's evaluation at a
// small scale, against the backend-neutral ThreadApi. The *algorithm* is real
// (real histograms, real LU factorization, real k-means iterations, ...), and
// more importantly the *interaction pattern* — sync-op rate, critical-section
// length, pages written per chunk, barrier frequency — matches the original
// benchmark's, because that is what the paper's evaluation measures.
//
// Conventions:
//   * Shared data lives in the segment and is accessed via api.Load/Store.
//   * Thread-private data lives in ordinary C++ locals (a real benchmark's
//     stack/private heap), accompanied by api.Work() to account for the
//     instructions it represents.
//   * All inputs are generated from fixed DetRng seeds — runs are reproducible
//     by construction.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/rt/api.h"
#include "src/util/hash.h"
#include "src/util/rng.h"

namespace csq::wl {

struct WlParams {
  u32 workers = 4;
  // Input-size multiplier (1 = bench default; tests may use smaller inputs by
  // passing 1 with small worker counts — sizes already modest).
  u32 scale = 1;
};

// Spawns `workers` threads running body(worker_api, worker_index), then joins.
inline void ParallelFor(rt::ThreadApi& api, u32 workers,
                        const std::function<void(rt::ThreadApi&, u32)>& body) {
  std::vector<rt::ThreadHandle> hs;
  hs.reserve(workers);
  for (u32 w = 0; w < workers; ++w) {
    hs.push_back(api.SpawnThread([w, &body](rt::ThreadApi& t) { body(t, w); }));
  }
  for (rt::ThreadHandle h : hs) {
    api.JoinThread(h);
  }
}

// [begin, end) stripe of `n` items for worker `w` of `workers`.
struct Stripe {
  u64 begin;
  u64 end;
};

inline Stripe StripeOf(u64 n, u32 workers, u32 w) {
  const u64 per = n / workers;
  const u64 rem = n % workers;
  const u64 begin = static_cast<u64>(w) * per + std::min<u64>(w, rem);
  return Stripe{begin, begin + per + (w < rem ? 1 : 0)};
}

// Hashes a shared u64 array into a checksum.
inline u64 HashSharedU64(rt::ThreadApi& api, u64 addr, u64 count) {
  Fnv1a h;
  for (u64 i = 0; i < count; ++i) {
    h.Mix(api.Load<u64>(addr + 8 * i));
  }
  return h.Digest();
}

inline u64 HashSharedF64(rt::ThreadApi& api, u64 addr, u64 count) {
  Fnv1a h;
  for (u64 i = 0; i < count; ++i) {
    // Quantize to tolerate benign summation-order differences in racy code.
    h.Mix(static_cast<u64>(static_cast<i64>(api.Load<double>(addr + 8 * i) * 1024.0)));
  }
  return h.Digest();
}

// Fills a shared region with deterministic pseudo-random u64s.
inline void FillSharedU64(rt::ThreadApi& api, u64 addr, u64 count, u64 seed, u64 modulo = 0) {
  DetRng rng(seed);
  for (u64 i = 0; i < count; ++i) {
    const u64 v = modulo ? rng.Below(modulo) : rng.Next();
    api.Store<u64>(addr + 8 * i, v);
  }
}

}  // namespace csq::wl
