// PARSEC suite workloads.
//
//   canneal — simulated-annealing placement: barrier-synchronized temperature
//     steps; workers swap random element positions in a large shared array
//     (intentionally racy, like the original's lock-free swaps), producing
//     heavy page sharing and byte-granularity merges.
//   dedup — a pipelined deduplicating compressor: bounded queues between
//     stages (mutex+condvar) plus a striped-lock hash table of chunk digests.
//   ferret — a four-stage similarity-search pipeline whose first stage is a
//     fast producer issuing many short lock operations (the paper's ferret_1),
//     while later stages alternate long compute chunks with condvar waits.
#include "src/wl/workloads.h"

#include <algorithm>
#include <vector>

namespace csq::wl {

u64 Canneal(rt::ThreadApi& api, const WlParams& p) {
  const u64 nelem = 8192 * p.scale;  // element positions, 16 pages
  const u32 steps = 6;
  const u64 swaps_per_step = 384;
  const u64 pos = api.SharedAlloc(nelem * 8, 4096, "canneal.pos");
  FillSharedU64(api, pos, nelem, 0xca41, 1 << 20);
  const u64 accepted = api.SharedAlloc(8, 8, "canneal.accepted");
  const rt::MutexId merge = api.CreateMutex();
  const rt::BarrierId bar = api.CreateBarrier(p.workers);
  ParallelFor(api, p.workers, [&](rt::ThreadApi& t, u32 w) {
    DetRng rng(0xca41u ^ (w * 0x9e37u));
    u64 local_accept = 0;
    for (u32 step = 0; step < steps; ++step) {
      const u64 temp = 1000 >> step;  // cooling schedule
      for (u64 sw = 0; sw < swaps_per_step; ++sw) {
        const u64 i = rng.Below(nelem);
        const u64 j = rng.Below(nelem);
        const u64 vi = t.Load<u64>(pos + 8 * i);
        const u64 vj = t.Load<u64>(pos + 8 * j);
        // Routing-cost delta in the original; a deterministic surrogate here.
        const u64 cost_before = (vi ^ i) % 4096 + (vj ^ j) % 4096;
        const u64 cost_after = (vj ^ i) % 4096 + (vi ^ j) % 4096;
        t.Work(700);  // netlist cost evaluation
        if (cost_after < cost_before + temp) {
          // Racy swap, like the original's lock-free pointer exchange: under
          // the deterministic backends the byte-merge makes it reproducible.
          t.Store<u64>(pos + 8 * i, vj);
          t.Store<u64>(pos + 8 * j, vi);
          ++local_accept;
        }
      }
      t.BarrierWait(bar);  // temperature step boundary
    }
    t.Lock(merge);
    t.Store<u64>(accepted, t.Load<u64>(accepted) + local_accept);
    t.Unlock(merge);
  });
  Fnv1a h;
  h.Mix(api.Load<u64>(accepted));
  h.Mix(HashSharedU64(api, pos, std::min<u64>(nelem, 512)));
  return h.Digest();
}

namespace {

// A bounded MPMC queue in shared memory, built from the public API the way a
// pthreads program would build one.
class SharedQueue {
 public:
  SharedQueue(rt::ThreadApi& api, u64 capacity)
      : cap_(capacity),
        buf_(api.SharedAlloc(capacity * 8)),
        head_(api.SharedAlloc(8)),
        tail_(api.SharedAlloc(8)),
        closed_(api.SharedAlloc(8)),
        wait_empty_(api.SharedAlloc(8)),
        wait_full_(api.SharedAlloc(8)),
        m_(api.CreateMutex()),
        not_empty_(api.CreateCond()),
        not_full_(api.CreateCond()) {}

  void Push(rt::ThreadApi& t, u64 v) {
    t.Lock(m_);
    while (t.Load<u64>(tail_) - t.Load<u64>(head_) == cap_) {
      t.Store<u64>(wait_full_, t.Load<u64>(wait_full_) + 1);
      t.CondWait(not_full_, m_);
      t.Store<u64>(wait_full_, t.Load<u64>(wait_full_) - 1);
    }
    const u64 pos = t.Load<u64>(tail_);
    t.Store<u64>(buf_ + 8 * (pos % cap_), v);
    t.Store<u64>(tail_, pos + 1);
    if (t.Load<u64>(wait_empty_) != 0) {
      t.CondSignal(not_empty_);  // signal only when a consumer can be waiting
    }
    t.Unlock(m_);
  }

  // Returns false when the queue is closed and drained.
  bool Pop(rt::ThreadApi& t, u64* out) {
    t.Lock(m_);
    while (t.Load<u64>(tail_) == t.Load<u64>(head_) && t.Load<u64>(closed_) == 0) {
      t.Store<u64>(wait_empty_, t.Load<u64>(wait_empty_) + 1);
      t.CondWait(not_empty_, m_);
      t.Store<u64>(wait_empty_, t.Load<u64>(wait_empty_) - 1);
    }
    if (t.Load<u64>(tail_) == t.Load<u64>(head_)) {
      t.Unlock(m_);
      return false;
    }
    const u64 pos = t.Load<u64>(head_);
    *out = t.Load<u64>(buf_ + 8 * (pos % cap_));
    t.Store<u64>(head_, pos + 1);
    if (t.Load<u64>(wait_full_) != 0) {
      t.CondSignal(not_full_);  // signal only when a producer can be waiting
    }
    t.Unlock(m_);
    return true;
  }

  void Close(rt::ThreadApi& t) {
    t.Lock(m_);
    t.Store<u64>(closed_, 1);
    t.CondBroadcast(not_empty_);
    t.Unlock(m_);
  }

 private:
  u64 cap_;
  u64 buf_;
  u64 head_;
  u64 tail_;
  u64 closed_;
  u64 wait_empty_;
  u64 wait_full_;
  rt::MutexId m_;
  rt::CondId not_empty_;
  rt::CondId not_full_;
};

}  // namespace

u64 Dedup(rt::ThreadApi& api, const WlParams& p) {
  // Stage split: 1 chunker, (w-2) hashers, 1 "writer"; minimum 3 threads.
  const u32 hashers = p.workers > 2 ? p.workers - 2 : 1;
  const u64 nchunks = 1024 * p.scale;
  const u64 nbuckets = 128;
  const u64 table = api.SharedAlloc(nbuckets * 8);   // first-seen digest per bucket count
  const u64 uniq = api.SharedAlloc(8);
  const u64 outsum = api.SharedAlloc(8);
  std::vector<rt::MutexId> bucket_locks;
  for (u64 b = 0; b < nbuckets; ++b) {
    bucket_locks.push_back(api.CreateMutex());
  }
  const rt::MutexId out_lock = api.CreateMutex();
  SharedQueue q1(api, 32);  // chunker -> hashers
  SharedQueue q2(api, 32);  // hashers -> writer

  std::vector<rt::ThreadHandle> hs;
  // Chunker.
  hs.push_back(api.SpawnThread([&, nchunks](rt::ThreadApi& t) {
    DetRng rng(0xdedu);
    for (u64 i = 0; i < nchunks; ++i) {
      t.Work(25000);  // content-defined chunking
      q1.Push(t, rng.Below(1 << 12));  // chunk digest (collisions intended)
    }
    q1.Close(t);
  }));
  // Hashers: dedup against the shared table (striped locks), forward unique.
  for (u32 hsh = 0; hsh < hashers; ++hsh) {
    hs.push_back(api.SpawnThread([&](rt::ThreadApi& t) {
      u64 digest = 0;
      while (q1.Pop(t, &digest)) {
        t.Work(50000);  // SHA of the chunk
        const u64 b = digest % nbuckets;
        bool fresh = false;
        t.Lock(bucket_locks[b]);
        const u64 seen_mask_addr = table + 8 * b;
        const u64 mask = t.Load<u64>(seen_mask_addr);
        const u64 bit = 1ULL << (digest / nbuckets % 64);
        if ((mask & bit) == 0) {
          t.Store<u64>(seen_mask_addr, mask | bit);
          fresh = true;
        }
        t.Unlock(bucket_locks[b]);
        if (fresh) {
          t.Work(120000);  // compress the unique chunk
          q2.Push(t, digest);
        }
      }
      // Each hasher signals completion by pushing a sentinel.
      q2.Push(t, ~0ULL);
    }));
  }
  // Writer: consumes until all hashers' sentinels arrive.
  hs.push_back(api.SpawnThread([&, hashers](rt::ThreadApi& t) {
    u32 sentinels = 0;
    u64 v = 0;
    u64 count = 0, sum = 0;
    while (sentinels < hashers && q2.Pop(t, &v)) {
      if (v == ~0ULL) {
        ++sentinels;
        continue;
      }
      ++count;
      sum += v;
      t.Work(15000);  // write out
    }
    t.Lock(out_lock);
    t.Store<u64>(uniq, t.Load<u64>(uniq) + count);
    t.Store<u64>(outsum, t.Load<u64>(outsum) + sum);
    t.Unlock(out_lock);
  }));
  for (auto h : hs) {
    api.JoinThread(h);
  }
  Fnv1a h;
  h.Mix(api.Load<u64>(uniq));
  h.Mix(api.Load<u64>(outsum));
  return h.Digest();
}

u64 Ferret(rt::ThreadApi& api, const WlParams& p) {
  // Stage split: 1 loader (ferret_1), remaining workers split between
  // extract/query and rank.
  const u32 extractors = p.workers > 2 ? (p.workers - 2) : 1;
  const u64 nimages = 512 * p.scale;
  const u64 dbsize = 4096;
  const u64 db = api.SharedAlloc(dbsize * 8);
  FillSharedU64(api, db, dbsize, 0xfe22e7, 1 << 16);
  const u64 ranks = api.SharedAlloc(16 * 8);
  const rt::MutexId rank_lock = api.CreateMutex();
  SharedQueue q_load(api, 16);  // loader -> extractors (short, hot queue)
  SharedQueue q_rank(api, 16);  // extractors -> ranker

  std::vector<rt::ThreadHandle> hs;
  // Stage 1 (ferret_1): fast producer — many short lock ops, tiny chunks.
  hs.push_back(api.SpawnThread([&, nimages](rt::ThreadApi& t) {
    DetRng rng(0xfe22);
    for (u64 i = 0; i < nimages; ++i) {
      t.Work(900);  // read one image descriptor (short chunk)
      q_load.Push(t, rng.Below(1 << 16));
    }
    q_load.Close(t);
  }));
  // Stage 2+3: feature extraction + index query — long chunks.
  for (u32 e = 0; e < extractors; ++e) {
    hs.push_back(api.SpawnThread([&](rt::ThreadApi& t) {
      u64 img = 0;
      while (q_load.Pop(t, &img)) {
        t.Work(30000);  // feature extraction
        // Query: scan a slice of the shared database.
        u64 best = ~0ULL;
        u64 best_idx = 0;
        const u64 start = img % (dbsize - 256);
        for (u64 d = start; d < start + 256; ++d) {
          const u64 cand = t.Load<u64>(db + 8 * d);
          const u64 dist = (cand > img) ? cand - img : img - cand;
          if (dist < best) {
            best = dist;
            best_idx = d;
          }
        }
        q_rank.Push(t, best_idx);
      }
      q_rank.Push(t, ~0ULL);  // sentinel
    }));
  }
  // Stage 4: rank aggregation.
  hs.push_back(api.SpawnThread([&, extractors](rt::ThreadApi& t) {
    u32 sentinels = 0;
    u64 v = 0;
    while (sentinels < extractors && q_rank.Pop(t, &v)) {
      if (v == ~0ULL) {
        ++sentinels;
        continue;
      }
      t.Work(3500);
      t.Lock(rank_lock);
      const u64 slot = ranks + 8 * (v % 16);
      t.Store<u64>(slot, t.Load<u64>(slot) + 1);
      t.Unlock(rank_lock);
    }
  }));
  for (auto h : hs) {
    api.JoinThread(h);
  }
  return HashSharedU64(api, ranks, 16);
}

}  // namespace csq::wl
