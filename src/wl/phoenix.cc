// Phoenix suite workloads (map-reduce style shared-memory kernels).
//
// Pattern summary (what matters for the paper's evaluation):
//   histogram / linear_regression / string_match / matrix_multiply — almost
//     embarrassingly parallel: long chunks, one merge lock at the end.
//   word_count — local counting + striped-lock reduction.
//   kmeans — iterative: reduction locks + barriers every iteration.
//   pca — two barrier-separated phases writing disjoint shared rows.
//   reverse_index — many very short critical sections on per-bucket locks
//     (the fine-grained-locking stress test; Fig 14's coarsening study).
#include "src/wl/workloads.h"

#include <algorithm>
#include <vector>

namespace csq::wl {

namespace {
// All reductions use integer (fixed-point) arithmetic so results are exactly
// order-independent; workloads are then bit-comparable across backends.
constexpr u64 kFx = 1024;  // fixed-point scale
}  // namespace

u64 Histogram(rt::ThreadApi& api, const WlParams& p) {
  const u64 n_words = 6144 * p.scale;  // 8 pixels per word
  const u64 input = api.SharedAlloc(n_words * 8);
  FillSharedU64(api, input, n_words, /*seed=*/0x1157);
  const u64 hist = api.SharedAlloc(256 * 8);
  const rt::MutexId merge = api.CreateMutex();

  ParallelFor(api, p.workers, [&](rt::ThreadApi& t, u32 w) {
    const Stripe s = StripeOf(n_words, p.workers, w);
    std::vector<u64> local(256, 0);
    for (u64 i = s.begin; i < s.end; ++i) {
      const u64 v = t.Load<u64>(input + 8 * i);
      for (int b = 0; b < 8; ++b) {
        ++local[(v >> (8 * b)) & 0xff];
      }
      t.Work(400);
    }
    t.Lock(merge);
    for (u32 b = 0; b < 256; ++b) {
      if (local[b] != 0) {
        t.Store<u64>(hist + 8 * b, t.Load<u64>(hist + 8 * b) + local[b]);
      }
    }
    t.Unlock(merge);
  });
  return HashSharedU64(api, hist, 256);
}

u64 LinearRegression(rt::ThreadApi& api, const WlParams& p) {
  // Small and fast by design — the paper notes its runtimes are under 500 ms
  // and dominated by fixed overheads.
  const u64 n = 4096 * p.scale;
  const u64 pts = api.SharedAlloc(n * 16);  // (x, y) pairs
  {
    DetRng rng(0x11e6);
    for (u64 i = 0; i < n; ++i) {
      const u64 x = rng.Below(1000);
      const u64 y = 3 * x + 17 + rng.Below(25);
      api.Store<u64>(pts + 16 * i, x);
      api.Store<u64>(pts + 16 * i + 8, y);
    }
  }
  const u64 sums = api.SharedAlloc(4 * 8);  // SX, SY, SXX, SXY
  const rt::MutexId merge = api.CreateMutex();
  ParallelFor(api, p.workers, [&](rt::ThreadApi& t, u32 w) {
    const Stripe s = StripeOf(n, p.workers, w);
    u64 sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (u64 i = s.begin; i < s.end; ++i) {
      const u64 x = t.Load<u64>(pts + 16 * i);
      const u64 y = t.Load<u64>(pts + 16 * i + 8);
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
      t.Work(150);
    }
    t.Lock(merge);
    t.Store<u64>(sums + 0, t.Load<u64>(sums + 0) + sx);
    t.Store<u64>(sums + 8, t.Load<u64>(sums + 8) + sy);
    t.Store<u64>(sums + 16, t.Load<u64>(sums + 16) + sxx);
    t.Store<u64>(sums + 24, t.Load<u64>(sums + 24) + sxy);
    t.Unlock(merge);
  });
  // Slope/intercept in fixed point.
  const u64 sx = api.Load<u64>(sums), sy = api.Load<u64>(sums + 8);
  const u64 sxx = api.Load<u64>(sums + 16), sxy = api.Load<u64>(sums + 24);
  const i64 num = static_cast<i64>(n * sxy - sx * sy);
  const i64 den = static_cast<i64>(n * sxx - sx * sx);
  const i64 slope_fx = den == 0 ? 0 : num * static_cast<i64>(kFx) / den;
  Fnv1a h;
  h.Mix(static_cast<u64>(slope_fx));
  h.Mix(sx + sy);
  return h.Digest();
}

u64 StringMatch(rt::ThreadApi& api, const WlParams& p) {
  const u64 n = 10240 * p.scale;
  const u64 words = api.SharedAlloc(n * 8);
  FillSharedU64(api, words, n, 0x57a7, /*modulo=*/1 << 14);
  const u64 keys[4] = {101, 2048, 9999, 12345};
  const u64 found = api.SharedAlloc(4 * 8);
  const rt::MutexId merge = api.CreateMutex();
  ParallelFor(api, p.workers, [&](rt::ThreadApi& t, u32 w) {
    const Stripe s = StripeOf(n, p.workers, w);
    u64 local[4] = {0, 0, 0, 0};
    for (u64 i = s.begin; i < s.end; ++i) {
      const u64 v = t.Load<u64>(words + 8 * i);
      for (int k = 0; k < 4; ++k) {
        // "Encrypt" then compare, like the original benchmark.
        if (((v * 2654435761u) ^ v) % (1 << 14) == ((keys[k] * 2654435761u) ^ keys[k]) % (1 << 14)) {
          ++local[k];
        }
      }
      t.Work(520);
    }
    t.Lock(merge);
    for (int k = 0; k < 4; ++k) {
      t.Store<u64>(found + 8 * k, t.Load<u64>(found + 8 * k) + local[k]);
    }
    t.Unlock(merge);
  });
  return HashSharedU64(api, found, 4);
}

u64 MatrixMultiply(rt::ThreadApi& api, const WlParams& p) {
  const u64 n = 56;  // n^3 multiply; inputs in fixed point
  const u64 a = api.SharedAlloc(n * n * 8);
  const u64 b = api.SharedAlloc(n * n * 8);
  const u64 c = api.SharedAlloc(n * n * 8, 4096);
  FillSharedU64(api, a, n * n, 0xa0, 100);
  FillSharedU64(api, b, n * n, 0xb0, 100);
  ParallelFor(api, p.workers, [&](rt::ThreadApi& t, u32 w) {
    const Stripe s = StripeOf(n, p.workers, w);  // stripe of C rows
    for (u64 i = s.begin; i < s.end; ++i) {
      for (u64 j = 0; j < n; ++j) {
        u64 acc = 0;
        for (u64 k = 0; k < n; ++k) {
          acc += t.Load<u64>(a + 8 * (i * n + k)) * t.Load<u64>(b + 8 * (k * n + j));
        }
        t.Store<u64>(c + 8 * (i * n + j), acc);
        t.Work(12 * n);
      }
    }
  });
  return HashSharedU64(api, c, n * n);
}

u64 WordCount(rt::ThreadApi& api, const WlParams& p) {
  const u64 n = 8192 * p.scale;
  const u64 vocab = 1500;
  const u64 words = api.SharedAlloc(n * 8);
  FillSharedU64(api, words, n, 0x3c0de, vocab);
  const u64 table = api.SharedAlloc(vocab * 8);
  constexpr u32 kStripes = 16;
  std::vector<rt::MutexId> locks;
  for (u32 i = 0; i < kStripes; ++i) {
    locks.push_back(api.CreateMutex());
  }
  ParallelFor(api, p.workers, [&](rt::ThreadApi& t, u32 w) {
    const Stripe s = StripeOf(n, p.workers, w);
    std::vector<u32> local(vocab, 0);
    for (u64 i = s.begin; i < s.end; ++i) {
      ++local[t.Load<u64>(words + 8 * i)];
      t.Work(400);
    }
    // Merge stripe by stripe: one short critical section per lock stripe.
    for (u32 stripe = 0; stripe < kStripes; ++stripe) {
      t.Lock(locks[stripe]);
      for (u64 v = stripe; v < vocab; v += kStripes) {
        if (local[v] != 0) {
          t.Store<u64>(table + 8 * v, t.Load<u64>(table + 8 * v) + local[v]);
        }
      }
      t.Unlock(locks[stripe]);
    }
  });
  return HashSharedU64(api, table, vocab);
}

u64 Kmeans(rt::ThreadApi& api, const WlParams& p) {
  // Phoenix-style fork-join: every k-means iteration spawns a fresh wave of
  // workers and joins them (this is what makes the §3.3 thread-reuse pool
  // matter), with a reduction lock for the per-cluster sums.
  const u64 npts = 3072 * p.scale;
  const u32 dims = 4;
  const u32 k = 8;
  const u32 iters = 6;
  const u64 pts = api.SharedAlloc(npts * dims * 8);
  FillSharedU64(api, pts, npts * dims, 0x1313, 1000 * kFx);
  const u64 means = api.SharedAlloc(k * dims * 8);
  const u64 sums = api.SharedAlloc(k * (dims + 1) * 8);  // per-cluster sums + count
  for (u32 c = 0; c < k; ++c) {
    for (u32 d = 0; d < dims; ++d) {
      api.Store<u64>(means + 8 * (c * dims + d), api.Load<u64>(pts + 8 * (c * 37 * dims + d)));
    }
  }
  const rt::MutexId merge = api.CreateMutex();
  for (u32 it = 0; it < iters; ++it) {
    ParallelFor(api, p.workers, [&](rt::ThreadApi& t, u32 w) {
      const Stripe s = StripeOf(npts, p.workers, w);
      // Assignment phase: read means, accumulate locally.
      std::vector<u64> lsum(k * (dims + 1), 0);
      u64 lmeans[8 * 4];
      for (u32 c = 0; c < k; ++c) {
        for (u32 d = 0; d < dims; ++d) {
          lmeans[c * dims + d] = t.Load<u64>(means + 8 * (c * dims + d));
        }
      }
      for (u64 i = s.begin; i < s.end; ++i) {
        u64 pt[4];
        for (u32 d = 0; d < dims; ++d) {
          pt[d] = t.Load<u64>(pts + 8 * (i * dims + d));
        }
        u64 best = 0;
        u64 best_d = ~0ULL;
        for (u32 c = 0; c < k; ++c) {
          u64 dist = 0;
          for (u32 d = 0; d < dims; ++d) {
            const i64 diff = static_cast<i64>(pt[d]) - static_cast<i64>(lmeans[c * dims + d]);
            dist += static_cast<u64>(diff * diff);
          }
          if (dist < best_d) {
            best_d = dist;
            best = c;
          }
        }
        for (u32 d = 0; d < dims; ++d) {
          lsum[best * (dims + 1) + d] += pt[d];
        }
        ++lsum[best * (dims + 1) + dims];
        t.Work(420);
      }
      t.Lock(merge);
      for (u32 i = 0; i < k * (dims + 1); ++i) {
        if (lsum[i] != 0) {
          t.Store<u64>(sums + 8 * i, t.Load<u64>(sums + 8 * i) + lsum[i]);
        }
      }
      t.Unlock(merge);
    });
    // Main recomputes means and clears sums for the next wave.
    for (u32 c = 0; c < k; ++c) {
      const u64 cnt = api.Load<u64>(sums + 8 * (c * (dims + 1) + dims));
      for (u32 d = 0; d < dims; ++d) {
        const u64 sum = api.Load<u64>(sums + 8 * (c * (dims + 1) + d));
        if (cnt != 0) {
          api.Store<u64>(means + 8 * (c * dims + d), sum / cnt);
        }
        api.Store<u64>(sums + 8 * (c * (dims + 1) + d), 0);
      }
      api.Store<u64>(sums + 8 * (c * (dims + 1) + dims), 0);
    }
  }
  return HashSharedU64(api, means, k * dims);
}

u64 Pca(rt::ThreadApi& api, const WlParams& p) {
  const u64 rows = 24;
  const u64 cols = 384 * p.scale;
  const u64 mat = api.SharedAlloc(rows * cols * 8);
  FillSharedU64(api, mat, rows * cols, 0x9ca, 1000);
  const u64 row_mean = api.SharedAlloc(rows * 8, 4096);
  const u64 cov = api.SharedAlloc(rows * rows * 8, 4096);
  const rt::BarrierId bar = api.CreateBarrier(p.workers);
  ParallelFor(api, p.workers, [&](rt::ThreadApi& t, u32 w) {
    // Phase 1: row means (disjoint writes).
    const Stripe rs = StripeOf(rows, p.workers, w);
    for (u64 r = rs.begin; r < rs.end; ++r) {
      u64 acc = 0;
      for (u64 c = 0; c < cols; ++c) {
        acc += t.Load<u64>(mat + 8 * (r * cols + c));
      }
      t.Store<u64>(row_mean + 8 * r, acc / cols);
      t.Work(10 * cols);
    }
    t.BarrierWait(bar);
    // Phase 2: covariance upper triangle, striped by row i.
    for (u64 i = rs.begin; i < rs.end; ++i) {
      const i64 mi = static_cast<i64>(t.Load<u64>(row_mean + 8 * i));
      for (u64 j = i; j < rows; ++j) {
        const i64 mj = static_cast<i64>(t.Load<u64>(row_mean + 8 * j));
        i64 acc = 0;
        for (u64 c = 0; c < cols; ++c) {
          const i64 vi = static_cast<i64>(t.Load<u64>(mat + 8 * (i * cols + c))) - mi;
          const i64 vj = static_cast<i64>(t.Load<u64>(mat + 8 * (j * cols + c))) - mj;
          acc += vi * vj;
        }
        t.Store<u64>(cov + 8 * (i * rows + j), static_cast<u64>(acc));
        t.Work(16 * cols);
      }
    }
  });
  return HashSharedU64(api, cov, rows * rows);
}

u64 ReverseIndex(rt::ThreadApi& api, const WlParams& p) {
  // The fine-grained-locking stress test: parse a document (a long local
  // chunk), then insert each of its links with one short critical section on
  // that link's bucket lock — thousands of brief lock operations.
  const u64 ndocs = 1536 * p.scale;
  const u64 links_per_doc = 3;
  const u64 nlinks = ndocs * links_per_doc;
  const u64 nbuckets = 256;
  const u64 cap = 128;  // slots per bucket
  const u64 links = api.SharedAlloc(nlinks * 8);
  FillSharedU64(api, links, nlinks, 0x1e71, nbuckets);
  const u64 counts = api.SharedAlloc(nbuckets * 8);
  const u64 slots = api.SharedAlloc(nbuckets * cap * 8);
  std::vector<rt::MutexId> locks;
  for (u64 b = 0; b < nbuckets; ++b) {
    locks.push_back(api.CreateMutex());
  }
  ParallelFor(api, p.workers, [&](rt::ThreadApi& t, u32 w) {
    const Stripe s = StripeOf(ndocs, p.workers, w);
    for (u64 doc = s.begin; doc < s.end; ++doc) {
      t.Work(15000);  // parse the document
      for (u64 l = 0; l < links_per_doc; ++l) {
        const u64 b = t.Load<u64>(links + 8 * (doc * links_per_doc + l));
        t.Work(400);  // extract the link
        t.Lock(locks[b]);
        const u64 cnt = t.Load<u64>(counts + 8 * b);
        if (cnt < cap) {
          t.Store<u64>(slots + 8 * (b * cap + cnt), doc);
          t.Store<u64>(counts + 8 * b, cnt + 1);
        }
        t.Unlock(locks[b]);
      }
    }
  });
  // Index contents depend on append order (schedule); hash the schedule-
  // independent part (bucket sizes and content sums).
  Fnv1a h;
  for (u64 b = 0; b < nbuckets; ++b) {
    const u64 cnt = api.Load<u64>(counts + 8 * b);
    u64 sum = 0;
    for (u64 i = 0; i < cnt; ++i) {
      sum += api.Load<u64>(slots + 8 * (b * cap + i));
    }
    h.Mix(cnt);
    h.Mix(sum);
  }
  return h.Digest();
}

}  // namespace csq::wl
