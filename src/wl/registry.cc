#include "src/wl/workloads.h"

namespace csq::wl {

const std::vector<WorkloadInfo>& AllWorkloads() {
  // Order follows the paper's Figure 10. Flags:
  //   racy  — output is schedule-dependent (canneal's lock-free swaps) or
  //           append-order-dependent; deterministic per backend+config, but
  //           not comparable across backends.
  //   hard  — the challenging programs used for the Fig 13 ablations.
  //   fig16 — >= 10K page updates; included in the LRC study.
  static const std::vector<WorkloadInfo> kAll = {
      {"histogram", "phoenix", &Histogram, false, false, false},
      {"kmeans", "phoenix", &Kmeans, false, true, true},
      {"linear_regression", "phoenix", &LinearRegression, false, false, false},
      {"matrix_multiply", "phoenix", &MatrixMultiply, false, false, false},
      {"pca", "phoenix", &Pca, false, false, false},
      {"string_match", "phoenix", &StringMatch, false, false, false},
      {"word_count", "phoenix", &WordCount, false, false, true},
      {"reverse_index", "phoenix", &ReverseIndex, false, true, true},
      {"canneal", "parsec", &Canneal, true, true, true},
      {"dedup", "parsec", &Dedup, false, true, true},
      {"ferret", "parsec", &Ferret, false, true, true},
      {"barnes", "splash2", &Barnes, false, false, false},
      {"fft", "splash2", &Fft, false, false, true},
      {"lu_cb", "splash2", &LuCb, false, true, true},
      {"lu_ncb", "splash2", &LuNcb, false, true, true},
      {"ocean_cp", "splash2", &OceanCp, false, true, true},
      {"radix", "splash2", &Radix, false, false, true},
      {"water_nsquared", "splash2", &WaterNsquared, false, false, true},
      {"water_spatial", "splash2", &WaterSpatial, false, false, true},
  };
  return kAll;
}

const WorkloadInfo* FindWorkload(std::string_view name) {
  for (const WorkloadInfo& w : AllWorkloads()) {
    if (w.name == name) {
      return &w;
    }
  }
  return nullptr;
}

}  // namespace csq::wl
