// SPLASH-2 suite workloads.
//
//   barnes          — n-body force phases separated by barriers + a global
//                     energy reduction lock.
//   fft             — an integer NTT (number-theoretic FFT): log(n) barrier-
//                     separated butterfly stages with large-stride sharing.
//   lu_cb / lu_ncb  — blocked LU factorization; _cb stores blocks contiguously
//                     (page-disjoint ownership), _ncb uses a row-major layout
//                     whose blocks interleave across pages, producing the page
//                     conflicts and memory churn of Fig 12.
//   ocean_cp        — red-black grid relaxation: two barriers per iteration
//                     (the archetypal barrier-heavy program).
//   radix           — parallel radix sort: histogram / prefix / permute rounds
//                     with scattered writes.
//   water_nsquared  — per-molecule locks, thousands of very short critical
//                     sections (the fine-grained-locking pathology of §5/§6).
//   water_spatial   — the spatial-cell variant: fewer, coarser lock sections.
#include "src/wl/workloads.h"

#include <algorithm>
#include <vector>

namespace csq::wl {

u64 Barnes(rt::ThreadApi& api, const WlParams& p) {
  const u64 n = 320;
  const u32 steps = 2;
  const u64 pos = api.SharedAlloc(n * 8, 4096);
  const u64 vel = api.SharedAlloc(n * 8, 4096);
  const u64 energy = api.SharedAlloc(8);
  FillSharedU64(api, pos, n, 0xba22e5, 1 << 16);
  const rt::MutexId elock = api.CreateMutex();
  const rt::BarrierId bar = api.CreateBarrier(p.workers);
  ParallelFor(api, p.workers, [&](rt::ThreadApi& t, u32 w) {
    const Stripe s = StripeOf(n, p.workers, w);
    for (u32 step = 0; step < steps; ++step) {
      // Force phase: read everyone, accumulate locally.
      std::vector<i64> force(s.end - s.begin, 0);
      u64 local_energy = 0;
      for (u64 i = s.begin; i < s.end; ++i) {
        const i64 xi = static_cast<i64>(t.Load<u64>(pos + 8 * i));
        for (u64 j = 0; j < n; ++j) {
          if (j == i) {
            continue;
          }
          const i64 xj = static_cast<i64>(t.Load<u64>(pos + 8 * j));
          const i64 d = xj - xi;
          const i64 d2 = d * d + 64;
          force[i - s.begin] += d * 65536 / d2;
          local_energy += static_cast<u64>(65536LL * 65536LL / d2);
        }
        t.Work(24 * n);
      }
      t.BarrierWait(bar);
      // Update phase: disjoint stripes.
      for (u64 i = s.begin; i < s.end; ++i) {
        const i64 v = static_cast<i64>(t.Load<u64>(vel + 8 * i)) + force[i - s.begin];
        t.Store<u64>(vel + 8 * i, static_cast<u64>(v));
        t.Store<u64>(pos + 8 * i, t.Load<u64>(pos + 8 * i) + static_cast<u64>(v / 256));
        t.Work(120);
      }
      t.Lock(elock);
      t.Store<u64>(energy, t.Load<u64>(energy) + local_energy);
      t.Unlock(elock);
      t.BarrierWait(bar);
    }
  });
  Fnv1a h;
  h.Mix(api.Load<u64>(energy));
  h.Mix(HashSharedU64(api, pos, n));
  return h.Digest();
}

u64 Fft(rt::ThreadApi& api, const WlParams& p) {
  // Number-theoretic transform mod 998244353 (exact integer FFT).
  constexpr u64 kMod = 998244353;
  constexpr u64 kRoot = 3;
  const u64 n = 2048;
  const u64 data = api.SharedAlloc(n * 8, 4096);
  FillSharedU64(api, data, n, 0xff7, kMod);
  const rt::BarrierId bar = api.CreateBarrier(p.workers);

  const auto pow_mod = [](u64 b, u64 e) {
    u64 r = 1;
    b %= kMod;
    while (e) {
      if (e & 1) {
        r = r * b % kMod;
      }
      b = b * b % kMod;
      e >>= 1;
    }
    return r;
  };

  ParallelFor(api, p.workers, [&](rt::ThreadApi& t, u32 w) {
    // Bit-reversal permutation: each worker swaps pairs in its stripe
    // (i < rev(i) to avoid double swaps); writes land all over the array.
    const Stripe s = StripeOf(n, p.workers, w);
    u32 log_n = 0;
    while ((1u << log_n) < n) {
      ++log_n;
    }
    for (u64 i = s.begin; i < s.end; ++i) {
      u64 r = 0;
      for (u32 b = 0; b < log_n; ++b) {
        r |= ((i >> b) & 1) << (log_n - 1 - b);
      }
      if (i < r) {
        const u64 vi = t.Load<u64>(data + 8 * i);
        const u64 vr = t.Load<u64>(data + 8 * r);
        t.Store<u64>(data + 8 * i, vr);
        t.Store<u64>(data + 8 * r, vi);
      }
      t.Work(60);
    }
    t.BarrierWait(bar);
    // Butterfly stages with growing stride.
    for (u64 len = 2; len <= n; len <<= 1) {
      const u64 wlen = pow_mod(kRoot, (kMod - 1) / len);
      const u64 nblocks = n / len;
      const Stripe bs = StripeOf(nblocks, p.workers, w);
      for (u64 blk = bs.begin; blk < bs.end; ++blk) {
        const u64 base = blk * len;
        u64 tw = 1;
        for (u64 k = 0; k < len / 2; ++k) {
          const u64 a = t.Load<u64>(data + 8 * (base + k));
          const u64 b = t.Load<u64>(data + 8 * (base + k + len / 2)) * tw % kMod;
          t.Store<u64>(data + 8 * (base + k), (a + b) % kMod);
          t.Store<u64>(data + 8 * (base + k + len / 2), (a + kMod - b) % kMod);
          tw = tw * wlen % kMod;
          t.Work(70);
        }
      }
      t.BarrierWait(bar);
    }
  });
  return HashSharedU64(api, data, n);
}

namespace {

// Shared blocked LU on fixed-point integers; `contiguous` selects the block
// layout (lu_cb) vs. row-major (lu_ncb). The algorithm is identical — only
// the page-sharing pattern differs.
u64 LuCommon(rt::ThreadApi& api, const WlParams& p, bool contiguous) {
  const u64 nb = 6;              // blocks per side
  const u64 bs = 12;             // block size
  const u64 n = nb * bs;         // 72x72 matrix
  const u64 mat = api.SharedAlloc(n * n * 8, 4096);
  {
    DetRng rng(0x10cb);
    for (u64 i = 0; i < n; ++i) {
      for (u64 j = 0; j < n; ++j) {
        const u64 v = (i == j) ? 4096 * n : rng.Below(2048);
        // Layout: contiguous stores block (bi,bj) as a dense bs*bs run.
        u64 idx;
        if (contiguous) {
          const u64 bi = i / bs, bj = j / bs;
          idx = ((bi * nb + bj) * bs + (i % bs)) * bs + (j % bs);
        } else {
          idx = i * n + j;
        }
        api.Store<u64>(mat + 8 * idx, v);
      }
    }
  }
  const auto at = [=](u64 i, u64 j) {
    if (contiguous) {
      const u64 bi = i / bs, bj = j / bs;
      return mat + 8 * (((bi * nb + bj) * bs + (i % bs)) * bs + (j % bs));
    }
    return mat + 8 * (i * n + j);
  };
  const rt::BarrierId bar = api.CreateBarrier(p.workers);
  ParallelFor(api, p.workers, [&](rt::ThreadApi& t, u32 w) {
    const auto owner = [&](u64 bi, u64 bj) { return (bi * nb + bj) % p.workers == w; };
    for (u64 k = 0; k < nb; ++k) {
      // Factor the diagonal block (owner only).
      if (owner(k, k)) {
        for (u64 i = k * bs; i < (k + 1) * bs; ++i) {
          const i64 piv = static_cast<i64>(t.Load<u64>(at(i, i))) | 1;
          for (u64 r = i + 1; r < (k + 1) * bs; ++r) {
            const i64 f = static_cast<i64>(t.Load<u64>(at(r, i))) * 1024 / piv;
            for (u64 c = i; c < (k + 1) * bs; ++c) {
              const i64 v = static_cast<i64>(t.Load<u64>(at(r, c))) -
                            f * static_cast<i64>(t.Load<u64>(at(i, c))) / 1024;
              t.Store<u64>(at(r, c), static_cast<u64>(v));
            }
            t.Work(14 * bs);
          }
        }
      }
      t.BarrierWait(bar);
      // Panel updates (row k and column k of blocks).
      for (u64 b = k + 1; b < nb; ++b) {
        if (owner(k, b)) {
          for (u64 i = k * bs; i < (k + 1) * bs; ++i) {
            for (u64 j = b * bs; j < (b + 1) * bs; ++j) {
              const u64 v = t.Load<u64>(at(i, j));
              t.Store<u64>(at(i, j), v - v / 16);
            }
          }
          t.Work(4 * bs * bs);
        }
        if (owner(b, k)) {
          for (u64 i = b * bs; i < (b + 1) * bs; ++i) {
            for (u64 j = k * bs; j < (k + 1) * bs; ++j) {
              const u64 v = t.Load<u64>(at(i, j));
              t.Store<u64>(at(i, j), v - v / 16);
            }
          }
          t.Work(4 * bs * bs);
        }
      }
      t.BarrierWait(bar);
      // Trailing submatrix update.
      for (u64 bi = k + 1; bi < nb; ++bi) {
        for (u64 bj = k + 1; bj < nb; ++bj) {
          if (!owner(bi, bj)) {
            continue;
          }
          for (u64 i = bi * bs; i < (bi + 1) * bs; ++i) {
            for (u64 j = bj * bs; j < (bj + 1) * bs; ++j) {
              u64 acc = 0;
              for (u64 x = 0; x < 4; ++x) {  // rank-4 surrogate of the GEMM
                acc += t.Load<u64>(at(i, k * bs + x)) * t.Load<u64>(at(k * bs + x, j)) / 4096;
              }
              t.Store<u64>(at(i, j), t.Load<u64>(at(i, j)) - acc % 4096);
            }
          }
          t.Work(16 * bs * bs);
        }
      }
      t.BarrierWait(bar);
    }
  });
  return HashSharedU64(api, mat, n * n);
}

}  // namespace

u64 LuCb(rt::ThreadApi& api, const WlParams& p) { return LuCommon(api, p, /*contiguous=*/true); }

u64 LuNcb(rt::ThreadApi& api, const WlParams& p) { return LuCommon(api, p, /*contiguous=*/false); }

u64 OceanCp(rt::ThreadApi& api, const WlParams& p) {
  const u64 dim = 64;
  const u32 iters = 10;  // 2 barriers per iteration: barrier-heavy
  const u64 grid = api.SharedAlloc(dim * dim * 8, 4096);
  FillSharedU64(api, grid, dim * dim, 0x0cea, 1 << 12);
  const rt::BarrierId bar = api.CreateBarrier(p.workers);
  ParallelFor(api, p.workers, [&](rt::ThreadApi& t, u32 w) {
    const Stripe rows = StripeOf(dim - 2, p.workers, w);  // interior rows
    const auto relax = [&](u64 parity) {
      for (u64 r = rows.begin + 1; r < rows.end + 1; ++r) {
        for (u64 c = 1 + ((r + parity) % 2); c < dim - 1; c += 2) {
          const u64 up = t.Load<u64>(grid + 8 * ((r - 1) * dim + c));
          const u64 dn = t.Load<u64>(grid + 8 * ((r + 1) * dim + c));
          const u64 lf = t.Load<u64>(grid + 8 * (r * dim + c - 1));
          const u64 rt_ = t.Load<u64>(grid + 8 * (r * dim + c + 1));
          t.Store<u64>(grid + 8 * (r * dim + c), (up + dn + lf + rt_) / 4);
        }
        t.Work(40 * dim);
      }
    };
    for (u32 it = 0; it < iters; ++it) {
      relax(0);  // red
      t.BarrierWait(bar);
      relax(1);  // black
      t.BarrierWait(bar);
    }
  });
  return HashSharedU64(api, grid, dim * dim);
}

u64 Radix(rt::ThreadApi& api, const WlParams& p) {
  const u64 n = 8192 * p.scale;
  const u64 kRadix = 256;
  const u32 passes = 3;  // 24-bit keys
  const u64 src = api.SharedAlloc(n * 8, 4096);
  const u64 dst = api.SharedAlloc(n * 8, 4096);
  const u64 hist = api.SharedAlloc(p.workers * kRadix * 8, 4096);  // per-worker rows
  const u64 offs = api.SharedAlloc(p.workers * kRadix * 8, 4096);
  FillSharedU64(api, src, n, 0x2ad1f, 1 << 24);
  const rt::BarrierId bar = api.CreateBarrier(p.workers);
  ParallelFor(api, p.workers, [&](rt::ThreadApi& t, u32 w) {
    u64 from = src;
    u64 to = dst;
    const Stripe s = StripeOf(n, p.workers, w);
    for (u32 pass = 0; pass < passes; ++pass) {
      const u32 shift = 8 * pass;
      // Local histogram into this worker's shared row (disjoint pages).
      std::vector<u64> local(kRadix, 0);
      for (u64 i = s.begin; i < s.end; ++i) {
        ++local[(t.Load<u64>(from + 8 * i) >> shift) & 0xff];
        t.Work(35);
      }
      for (u64 d = 0; d < kRadix; ++d) {
        t.Store<u64>(hist + 8 * (w * kRadix + d), local[d]);
      }
      t.BarrierWait(bar);
      // Worker 0 computes global offsets (serial prefix sum).
      if (w == 0) {
        u64 running = 0;
        for (u64 d = 0; d < kRadix; ++d) {
          for (u32 ww = 0; ww < p.workers; ++ww) {
            t.Store<u64>(offs + 8 * (ww * kRadix + d), running);
            running += t.Load<u64>(hist + 8 * (ww * kRadix + d));
          }
        }
      }
      t.BarrierWait(bar);
      // Permute: scattered writes into the destination array.
      std::vector<u64> cursor(kRadix);
      for (u64 d = 0; d < kRadix; ++d) {
        cursor[d] = t.Load<u64>(offs + 8 * (w * kRadix + d));
      }
      for (u64 i = s.begin; i < s.end; ++i) {
        const u64 v = t.Load<u64>(from + 8 * i);
        const u64 d = (v >> shift) & 0xff;
        t.Store<u64>(to + 8 * cursor[d], v);
        ++cursor[d];
        t.Work(45);
      }
      t.BarrierWait(bar);
      std::swap(from, to);
    }
  });
  const u64 result = (passes % 2 == 1) ? dst : src;
  return HashSharedU64(api, result, std::min<u64>(n, 1024));
}

namespace {

u64 WaterCommon(rt::ThreadApi& api, const WlParams& p, bool spatial) {
  const u64 n = 128;       // molecules
  const u64 cutoff = 16;   // interaction range (by index distance)
  const u32 steps = 2;
  const u64 pos = api.SharedAlloc(n * 8, 4096);
  const u64 force = api.SharedAlloc(n * 8, 4096);
  FillSharedU64(api, pos, n, 0x3a7e2, 1 << 12);
  const rt::BarrierId bar = api.CreateBarrier(p.workers);
  const u64 ncells = 16;
  std::vector<rt::MutexId> locks;
  const u64 nlocks = spatial ? ncells : n;
  for (u64 i = 0; i < nlocks; ++i) {
    locks.push_back(api.CreateMutex());
  }
  ParallelFor(api, p.workers, [&](rt::ThreadApi& t, u32 w) {
    const Stripe s = StripeOf(n, p.workers, w);
    for (u32 step = 0; step < steps; ++step) {
      if (!spatial) {
        // water_nsquared: one very short critical section per molecule pair.
        for (u64 i = s.begin; i < s.end; ++i) {
          const i64 xi = static_cast<i64>(t.Load<u64>(pos + 8 * i));
          for (u64 j = i + 1; j < std::min(n, i + cutoff); ++j) {
            const i64 xj = static_cast<i64>(t.Load<u64>(pos + 8 * j));
            const i64 f = (xj - xi) / 16;
            t.Work(650);  // potential evaluation
            t.Lock(locks[i]);
            t.Store<u64>(force + 8 * i, t.Load<u64>(force + 8 * i) + static_cast<u64>(f));
            t.Unlock(locks[i]);
            t.Lock(locks[j]);
            t.Store<u64>(force + 8 * j, t.Load<u64>(force + 8 * j) - static_cast<u64>(f));
            t.Unlock(locks[j]);
          }
        }
      } else {
        // water_spatial: accumulate per cell, one coarser section per cell.
        const u64 per_cell = n / ncells;
        for (u64 cell = w; cell < ncells; cell += p.workers) {
          std::vector<i64> acc(per_cell, 0);
          const u64 base = cell * per_cell;
          for (u64 i = base; i < base + per_cell; ++i) {
            const i64 xi = static_cast<i64>(t.Load<u64>(pos + 8 * i));
            for (u64 j = i + 1; j < std::min(n, i + cutoff); ++j) {
              const i64 xj = static_cast<i64>(t.Load<u64>(pos + 8 * j));
              acc[i - base] += (xj - xi) / 16;
              t.Work(650);
            }
          }
          t.Lock(locks[cell]);
          for (u64 i = 0; i < per_cell; ++i) {
            const u64 a = force + 8 * (base + i);
            t.Store<u64>(a, t.Load<u64>(a) + static_cast<u64>(acc[i]));
          }
          t.Unlock(locks[cell]);
        }
      }
      t.BarrierWait(bar);
      // Position update on own stripe.
      for (u64 i = s.begin; i < s.end; ++i) {
        const i64 f = static_cast<i64>(t.Load<u64>(force + 8 * i));
        t.Store<u64>(pos + 8 * i, t.Load<u64>(pos + 8 * i) + static_cast<u64>(f / 64));
        t.Store<u64>(force + 8 * i, 0);
        t.Work(80);
      }
      t.BarrierWait(bar);
    }
  });
  return HashSharedU64(api, pos, n);
}

}  // namespace

u64 WaterNsquared(rt::ThreadApi& api, const WlParams& p) {
  return WaterCommon(api, p, /*spatial=*/false);
}

u64 WaterSpatial(rt::ThreadApi& api, const WlParams& p) {
  return WaterCommon(api, p, /*spatial=*/true);
}

}  // namespace csq::wl
