// The 19 benchmark workloads from the paper's evaluation (§5), plus the
// registry the harness and tests iterate over.
//
//   Phoenix:   histogram, kmeans, linear_regression, matrix_multiply, pca,
//              string_match, word_count, reverse_index
//   PARSEC:    canneal, dedup, ferret
//   SPLASH-2:  barnes, fft, lu_cb, lu_ncb, ocean_cp, radix, water_nsquared,
//              water_spatial
#pragma once

#include <string_view>
#include <vector>

#include "src/wl/common.h"

namespace csq::wl {

// Phoenix.
u64 Histogram(rt::ThreadApi& api, const WlParams& p);
u64 Kmeans(rt::ThreadApi& api, const WlParams& p);
u64 LinearRegression(rt::ThreadApi& api, const WlParams& p);
u64 MatrixMultiply(rt::ThreadApi& api, const WlParams& p);
u64 Pca(rt::ThreadApi& api, const WlParams& p);
u64 StringMatch(rt::ThreadApi& api, const WlParams& p);
u64 WordCount(rt::ThreadApi& api, const WlParams& p);
u64 ReverseIndex(rt::ThreadApi& api, const WlParams& p);

// PARSEC.
u64 Canneal(rt::ThreadApi& api, const WlParams& p);
u64 Dedup(rt::ThreadApi& api, const WlParams& p);
u64 Ferret(rt::ThreadApi& api, const WlParams& p);

// SPLASH-2.
u64 Barnes(rt::ThreadApi& api, const WlParams& p);
u64 Fft(rt::ThreadApi& api, const WlParams& p);
u64 LuCb(rt::ThreadApi& api, const WlParams& p);
u64 LuNcb(rt::ThreadApi& api, const WlParams& p);
u64 OceanCp(rt::ThreadApi& api, const WlParams& p);
u64 Radix(rt::ThreadApi& api, const WlParams& p);
u64 WaterNsquared(rt::ThreadApi& api, const WlParams& p);
u64 WaterSpatial(rt::ThreadApi& api, const WlParams& p);

struct WorkloadInfo {
  std::string_view name;
  std::string_view suite;  // "phoenix" | "parsec" | "splash2"
  u64 (*fn)(rt::ThreadApi&, const WlParams&);
  bool racy;   // intentionally racy: results deterministic per backend/config,
               // but may differ across backends (byte-merge semantics)
  bool hard;   // one of the "most challenging" programs (Fig 13's ablations)
  bool fig16;  // >= 10K page updates: included in the Fig 16 study
};

// All 19 workloads, in the paper's figure order.
const std::vector<WorkloadInfo>& AllWorkloads();

// nullptr if not found.
const WorkloadInfo* FindWorkload(std::string_view name);

// Adapts a workload to the runtime's WorkloadFn.
inline rt::WorkloadFn Bind(const WorkloadInfo& w, WlParams p) {
  return [fn = w.fn, p](rt::ThreadApi& api) { return fn(api, p); };
}

}  // namespace csq::wl
