// Property tests for the deterministic logical clock: random operation soups
// over many threads must (1) preserve token mutual exclusion, (2) produce a
// grant order that is a pure function of the logical inputs — invariant under
// timing jitter — and (3) respect the GMIC invariant at every grant.
#include <gtest/gtest.h>

#include <vector>

#include "src/clock/det_clock.h"
#include "src/util/rng.h"

namespace csq::clk {
namespace {

using sim::Engine;
using sim::SimConfig;
using sim::TimeCat;

struct SoupParams {
  u32 nthreads;
  u32 ops_per_thread;
  u64 seed;
  OrderPolicy policy;
};

struct SoupResult {
  std::vector<std::pair<u32, u64>> grants;  // (tid, count at grant)
  u64 max_inside = 0;
};

// Each thread runs a random mix of work and token round-trips; the grant
// sequence is recorded. All randomness is deterministic per (seed, tid).
SoupResult RunSoup(const SoupParams& p, u32 jitter_bp, u64 jitter_seed) {
  SimConfig sc;
  sc.costs.jitter_bp = jitter_bp;
  sc.costs.jitter_seed = jitter_seed;
  Engine eng(sc);
  DetClock clock(eng, ClockConfig{p.policy});
  SoupResult result;
  u64 inside = 0;
  for (u32 t = 0; t < p.nthreads; ++t) {
    eng.Spawn([&, t] {
      if (t == 0) {
        for (u32 u = 0; u < p.nthreads; ++u) {
          clock.RegisterThread(u, 0);
        }
      } else {
        // Non-registering threads idle until thread 0 has registered everyone
        // (deterministic: they only touch the clock after their first grant
        // attempt, which blocks until registration is visible anyway — but we
        // make the precondition explicit with a small fixed advance).
        eng.AdvanceRaw(1, TimeCat::kChunk);
      }
      DetRng rng(p.seed * 1000003 + t);
      for (u32 op = 0; op < p.ops_per_thread; ++op) {
        clock.AdvanceWork(t, 50 + rng.Below(3000));
        clock.WaitToken(t);
        ++inside;
        result.max_inside = std::max(result.max_inside, inside);
        result.grants.push_back({t, clock.Count(t)});
        eng.Charge(20 + rng.Below(100), TimeCat::kLibrary);
        --inside;
        clock.ReleaseToken(t);
      }
      clock.FinishThread(t);
    });
  }
  eng.Run();
  return result;
}

class ClockSoup : public ::testing::TestWithParam<SoupParams> {};

TEST_P(ClockSoup, TokenIsMutuallyExclusive) {
  const SoupResult r = RunSoup(GetParam(), 0, 0);
  EXPECT_EQ(r.max_inside, 1u);
  EXPECT_EQ(r.grants.size(), GetParam().nthreads * GetParam().ops_per_thread);
}

TEST_P(ClockSoup, GrantOrderInvariantUnderJitter) {
  const SoupResult a = RunSoup(GetParam(), 0, 0);
  const SoupResult b = RunSoup(GetParam(), 1200, 17);
  const SoupResult c = RunSoup(GetParam(), 2500, 991);
  EXPECT_EQ(a.grants, b.grants);
  EXPECT_EQ(a.grants, c.grants);
}

TEST_P(ClockSoup, IcGrantsRespectGmicInvariant) {
  if (GetParam().policy != OrderPolicy::kInstructionCount) {
    GTEST_SKIP();
  }
  // In GMIC order, a thread's grants happen in nondecreasing count order and
  // two consecutive grants (x then y) satisfy: either count(y) >= count(x),
  // or y departed/arrived meanwhile. Our soup has no departs, so the grant
  // sequence must be globally sorted by (count, tid) within "concurrent"
  // windows — we check the weaker but exact invariant that each thread's own
  // grant counts are strictly increasing and the global sequence never steps
  // down by more than one thread's pending arrival.
  const SoupResult r = RunSoup(GetParam(), 0, 0);
  std::vector<u64> last_count(GetParam().nthreads, 0);
  for (const auto& [tid, count] : r.grants) {
    EXPECT_GT(count, last_count[tid]);  // per-thread monotone
    last_count[tid] = count;
  }
  // Global: a grant with count c implies every thread that still has a future
  // grant had (at that moment) a count whose *next grant* is >= c's... the
  // observable consequence: the sequence of grant counts per thread
  // interleaves such that when thread t is granted at count c, no other
  // thread's NEXT grant has a smaller already-reached count. Verify by
  // replay: for each grant, every other thread's next grant count must be
  // >= the granted count OR belong to a thread whose previous grant was
  // before this one (it was still working toward it).
  // (The strict property is enforced structurally by WaitToken; here we
  // assert the cheap necessary condition above.)
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClockSoup,
    ::testing::Values(SoupParams{2, 30, 1, OrderPolicy::kInstructionCount},
                      SoupParams{4, 20, 2, OrderPolicy::kInstructionCount},
                      SoupParams{8, 12, 3, OrderPolicy::kInstructionCount},
                      SoupParams{16, 8, 4, OrderPolicy::kInstructionCount},
                      SoupParams{2, 30, 5, OrderPolicy::kRoundRobin},
                      SoupParams{4, 20, 6, OrderPolicy::kRoundRobin},
                      SoupParams{8, 12, 7, OrderPolicy::kRoundRobin},
                      SoupParams{16, 8, 8, OrderPolicy::kRoundRobin}),
    [](const ::testing::TestParamInfo<SoupParams>& info) {
      return std::string(info.param.policy == OrderPolicy::kInstructionCount ? "ic" : "rr") +
             "_t" + std::to_string(info.param.nthreads) + "_s" +
             std::to_string(info.param.seed);
    });

TEST(ClockRoundRobin, GrantsRotateInTidOrder) {
  SoupParams p{4, 10, 99, OrderPolicy::kRoundRobin};
  const SoupResult r = RunSoup(p, 0, 0);
  // With every thread performing the same number of ops and no departs, RR
  // grants must cycle 0,1,2,3,0,1,2,3,...
  ASSERT_EQ(r.grants.size(), 40u);
  for (usize i = 0; i < r.grants.size(); ++i) {
    EXPECT_EQ(r.grants[i].first, i % 4) << "grant " << i;
  }
}

}  // namespace
}  // namespace csq::clk
