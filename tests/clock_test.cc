// Unit tests for the deterministic logical clock / token manager: GMIC
// ordering, round-robin ordering, depart/arrive, fast-forward, pause,
// adaptive overflow behaviour.
#include <gtest/gtest.h>

#include <vector>

#include "src/clock/det_clock.h"

namespace csq::clk {
namespace {

using sim::Engine;
using sim::TimeCat;

TEST(DetClock, GmicOrderFollowsInstructionCounts) {
  Engine eng;
  ClockConfig cfg;
  DetClock clk(eng, cfg);
  std::vector<int> grant_order;
  // Thread 0 does a lot of work before its sync op; thread 1 does little.
  // Under GMIC ordering, thread 1 must get the token first.
  eng.Spawn([&] {
    clk.RegisterThread(0, 0);
    clk.RegisterThread(1, 0);
    clk.AdvanceWork(0, 100000);
    clk.WaitToken(0);
    grant_order.push_back(0);
    clk.ReleaseToken(0);
  });
  eng.Spawn([&] {
    clk.AdvanceWork(1, 50);
    clk.WaitToken(1);
    grant_order.push_back(1);
    clk.ReleaseToken(1);
    clk.AdvanceWork(1, 1000000);  // run past thread 0 so it can proceed
  });
  eng.Run();
  ASSERT_EQ(grant_order.size(), 2u);
  EXPECT_EQ(grant_order[0], 1);
  EXPECT_EQ(grant_order[1], 0);
}

TEST(DetClock, GmicTieBreaksByTid) {
  Engine eng;
  DetClock clk(eng, ClockConfig{});
  std::vector<int> order;
  eng.Spawn([&] {
    clk.RegisterThread(0, 0);
    clk.RegisterThread(1, 0);
    clk.RegisterThread(2, 0);
    clk.AdvanceWork(0, 100);
    clk.WaitToken(0);
    order.push_back(0);
    clk.ReleaseToken(0);
    clk.AdvanceWork(0, 10000);
    clk.FinishThread(0);
  });
  eng.Spawn([&] {
    clk.AdvanceWork(1, 100);
    clk.WaitToken(1);
    order.push_back(1);
    clk.ReleaseToken(1);
    clk.AdvanceWork(1, 10000);
    clk.FinishThread(1);
  });
  eng.Spawn([&] {
    clk.AdvanceWork(2, 100);
    clk.WaitToken(2);
    order.push_back(2);
    clk.ReleaseToken(2);
    clk.FinishThread(2);
  });
  eng.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(DetClock, RoundRobinIgnoresCounts) {
  Engine eng;
  ClockConfig cfg;
  cfg.policy = OrderPolicy::kRoundRobin;
  DetClock clk(eng, cfg);
  std::vector<int> order;
  // Thread 1 arrives with a tiny count, but RR still grants tid 0 first.
  eng.Spawn([&] {
    clk.RegisterThread(0, 0);
    clk.RegisterThread(1, 0);
    clk.AdvanceWork(0, 100000);
    clk.WaitToken(0);
    order.push_back(0);
    clk.ReleaseToken(0);
    clk.FinishThread(0);
  });
  eng.Spawn([&] {
    clk.AdvanceWork(1, 10);
    clk.WaitToken(1);
    order.push_back(1);
    clk.ReleaseToken(1);
    clk.FinishThread(1);
  });
  eng.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(DetClock, RoundRobinSkipsDepartedThreads) {
  Engine eng;
  ClockConfig cfg;
  cfg.policy = OrderPolicy::kRoundRobin;
  DetClock clk(eng, cfg);
  std::vector<int> order;
  sim::WaitChannel parked;
  eng.Spawn([&] {
    clk.RegisterThread(0, 0);
    clk.RegisterThread(1, 0);
    // Thread 0 departs (as if blocked on a lock) without taking its turn.
    clk.Depart(0);
    eng.Wait(parked, TimeCat::kDetermWait);
    clk.Arrive(0);
    clk.WaitToken(0);
    order.push_back(0);
    clk.ReleaseToken(0);
    clk.FinishThread(0);
  });
  eng.Spawn([&] {
    clk.AdvanceWork(1, 100);
    clk.WaitToken(1);  // must not deadlock on departed thread 0's turn
    order.push_back(1);
    clk.ReleaseToken(1);
    eng.GateShared();
    eng.NotifyOne(parked);
    clk.FinishThread(1);
  });
  eng.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

TEST(DetClock, DepartedThreadDoesNotBlockGmic) {
  Engine eng;
  DetClock clk(eng, ClockConfig{});
  std::vector<int> order;
  sim::WaitChannel parked;
  eng.Spawn([&] {
    clk.RegisterThread(0, 0);
    clk.RegisterThread(1, 0);
    // Count 0 — would be the GMIC forever, but departs.
    clk.Depart(0);
    eng.Wait(parked, TimeCat::kDetermWait);
    clk.Arrive(0);
    clk.WaitToken(0);
    order.push_back(0);
    clk.ReleaseToken(0);
    clk.FinishThread(0);
  });
  eng.Spawn([&] {
    clk.AdvanceWork(1, 5000);
    clk.WaitToken(1);
    order.push_back(1);
    clk.ReleaseToken(1);
    eng.GateShared();
    eng.NotifyOne(parked);
    clk.AdvanceWork(1, 100000);
    clk.FinishThread(1);
  });
  eng.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

TEST(DetClock, FastForwardLiftsWokenThreadClock) {
  Engine eng;
  ClockConfig cfg;
  cfg.fast_forward = true;
  DetClock clk(eng, cfg);
  u64 count_after_arrive = 0;
  sim::WaitChannel parked;
  eng.Spawn([&] {
    clk.RegisterThread(0, 0);
    clk.RegisterThread(1, 0);
    clk.Depart(0);
    eng.Wait(parked, TimeCat::kDetermWait);
    clk.Arrive(0);
    count_after_arrive = clk.Count(0);
    clk.FinishThread(0);
  });
  eng.Spawn([&] {
    clk.AdvanceWork(1, 42000);
    clk.WaitToken(1);
    clk.ReleaseToken(1);  // releases at count 42000
    eng.GateShared();
    eng.NotifyOne(parked);
    clk.FinishThread(1);
  });
  eng.Run();
  EXPECT_EQ(count_after_arrive, 42000u);
  EXPECT_EQ(clk.Stats().fast_forwards, 1u);
}

TEST(DetClock, NoFastForwardWhenDisabled) {
  Engine eng;
  ClockConfig cfg;
  cfg.fast_forward = false;
  DetClock clk(eng, cfg);
  u64 count_after_arrive = 99;
  sim::WaitChannel parked;
  eng.Spawn([&] {
    clk.RegisterThread(0, 0);
    clk.RegisterThread(1, 0);
    clk.Depart(0);
    eng.Wait(parked, TimeCat::kDetermWait);
    clk.Arrive(0);
    count_after_arrive = clk.Count(0);
    clk.FinishThread(0);
  });
  eng.Spawn([&] {
    clk.AdvanceWork(1, 42000);
    clk.WaitToken(1);
    clk.ReleaseToken(1);
    eng.GateShared();
    eng.NotifyOne(parked);
    clk.FinishThread(1);
  });
  eng.Run();
  EXPECT_EQ(count_after_arrive, 0u);
  EXPECT_EQ(clk.Stats().fast_forwards, 0u);
}

TEST(DetClock, PausedTicksAreNotCounted) {
  Engine eng;
  DetClock clk(eng, ClockConfig{});
  eng.Spawn([&] {
    clk.RegisterThread(0, 0);
    clk.Tick(0, 100);
    clk.Pause(0);
    clk.Tick(0, 999999);  // library-internal work — ignored
    clk.Resume(0);
    clk.Tick(0, 50);
  });
  eng.Run();
  EXPECT_EQ(clk.Count(0), 150u);
}

TEST(DetClock, TokenIsMutuallyExclusive) {
  Engine eng;
  DetClock clk(eng, ClockConfig{});
  int inside = 0;
  int max_inside = 0;
  eng.Spawn([&] {
    clk.RegisterThread(0, 0);
    clk.RegisterThread(1, 0);
  });
  for (u32 tid : {0u, 1u}) {
    eng.Spawn([&, tid] {
      // Ensure registration (thread from the first Spawn) happened.
      eng.AdvanceRaw(10 + tid, TimeCat::kChunk);
      for (int i = 0; i < 5; ++i) {
        clk.AdvanceWork(tid, 100 * (tid + 1));
        clk.WaitToken(tid);
        ++inside;
        max_inside = std::max(max_inside, inside);
        eng.Charge(50, TimeCat::kLibrary);
        --inside;
        clk.ReleaseToken(tid);
      }
      clk.FinishThread(tid);
    });
  }
  eng.Run();
  EXPECT_EQ(max_inside, 1);
  EXPECT_EQ(clk.Stats().token_acquires, 10u);
}

TEST(DetClock, AdaptiveOverflowPublishesForWaiters) {
  // A waiter with a low count must eventually observe a long-running thread's
  // clock passing its own, via overflow publication.
  Engine eng;
  ClockConfig cfg;
  cfg.adaptive_overflow = true;
  DetClock clk(eng, cfg);
  std::vector<int> order;
  eng.Spawn([&] {
    clk.RegisterThread(0, 0);
    clk.RegisterThread(1, 0);
    // Long chunk, no sync ops: publications must unblock thread 1.
    clk.AdvanceWork(0, 1000000);
    clk.WaitToken(0);
    order.push_back(0);
    clk.ReleaseToken(0);
    clk.FinishThread(0);
  });
  eng.Spawn([&] {
    clk.AdvanceWork(1, 500000);
    clk.WaitToken(1);  // GMIC at 500000 < thread 0's eventual 1000000
    order.push_back(1);
    clk.ReleaseToken(1);
    clk.FinishThread(1);
  });
  eng.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
  EXPECT_GT(clk.Stats().overflows, 0u);
}

TEST(DetClock, FixedOverflowAlsoCorrectJustSlower) {
  auto run = [](bool adaptive) {
    Engine eng;
    ClockConfig cfg;
    cfg.adaptive_overflow = adaptive;
    cfg.fixed_overflow_period = 5000;
    DetClock clk(eng, cfg);
    std::vector<int> order;
    eng.Spawn([&] {
      clk.RegisterThread(0, 0);
      clk.RegisterThread(1, 0);
      clk.AdvanceWork(0, 2000000);
      clk.WaitToken(0);
      order.push_back(0);
      clk.ReleaseToken(0);
      clk.FinishThread(0);
    });
    eng.Spawn([&] {
      clk.AdvanceWork(1, 100);
      clk.WaitToken(1);
      order.push_back(1);
      clk.ReleaseToken(1);
      clk.FinishThread(1);
    });
    eng.Run();
    return std::pair(order, clk.Stats().overflows);
  };
  auto [adaptive_order, adaptive_ovf] = run(true);
  auto [fixed_order, fixed_ovf] = run(false);
  EXPECT_EQ(adaptive_order, fixed_order);       // same deterministic order
  EXPECT_LT(adaptive_ovf, fixed_ovf);           // far fewer interrupts
}

TEST(DetClock, GrantSequenceIsInTraceDigest) {
  auto digest = [](u64 work0) {
    Engine eng;
    DetClock clk(eng, ClockConfig{});
    eng.Spawn([&] {
      clk.RegisterThread(0, 0);
      clk.RegisterThread(1, 0);
      clk.AdvanceWork(0, work0);
      clk.WaitToken(0);
      clk.ReleaseToken(0);
      clk.FinishThread(0);
    });
    eng.Spawn([&] {
      clk.AdvanceWork(1, 500);
      clk.WaitToken(1);
      clk.ReleaseToken(1);
      clk.AdvanceWork(1, 10000000);
      clk.FinishThread(1);
    });
    eng.Run();
    return eng.TraceDigest();
  };
  EXPECT_EQ(digest(100), digest(100));  // identical schedule, identical digest
  EXPECT_NE(digest(100), digest(900));  // different counts change the trace
}

}  // namespace
}  // namespace csq::clk
