// Property-based tests for the Conversion substrate.
//
// The central property: a single-owner-per-byte parallel history (each byte
// written by at most one thread between synchronization points, with commits
// and updates at deterministic points) must produce exactly the same final
// memory as a flat reference memory replayed in commit order. Sweeps run over
// thread counts, page sizes and operation mixes (parameterized gtest).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "src/conv/segment.h"
#include "src/util/hash.h"
#include "src/conv/workspace.h"
#include "src/util/rng.h"

namespace csq::conv {
namespace {

using sim::Engine;
using sim::TimeCat;

struct PropParams {
  u32 nthreads;
  u32 page_size;
  u32 rounds;
  u64 seed;
};

class ConvProperty : public ::testing::TestWithParam<PropParams> {};

// Each thread owns a byte-disjoint region; every round it writes a random
// subset of its region, then all commit (round-robin order), then all update.
// The reference model applies the same writes to a flat array. Final states
// must agree byte for byte.
TEST_P(ConvProperty, DisjointWritesMatchFlatReference) {
  const PropParams p = GetParam();
  Engine eng;
  SegmentConfig cfg;
  cfg.page_size = p.page_size;
  cfg.size_bytes = 64 * p.page_size;
  Segment seg(eng, cfg);
  std::vector<u8> reference(cfg.size_bytes, 0);

  eng.Spawn([&] {
    std::vector<std::unique_ptr<Workspace>> ws;
    for (u32 t = 0; t < p.nthreads; ++t) {
      ws.push_back(std::make_unique<Workspace>(seg, t));
    }
    DetRng rng(p.seed);
    const u64 region = cfg.size_bytes / p.nthreads;
    for (u32 round = 0; round < p.rounds; ++round) {
      for (u32 t = 0; t < p.nthreads; ++t) {
        const u64 base = t * region;
        const u32 writes = 1 + static_cast<u32>(rng.Below(12));
        for (u32 k = 0; k < writes; ++k) {
          const u64 addr = base + rng.Below(region - 8);
          const u64 val = rng.Next();
          ws[t]->Store<u64>(addr, val);
          std::memcpy(reference.data() + addr, &val, 8);
        }
      }
      for (u32 t = 0; t < p.nthreads; ++t) {
        ws[t]->Commit();
      }
      for (u32 t = 0; t < p.nthreads; ++t) {
        ws[t]->Update();
      }
      // Spot-check visibility mid-run from a random thread.
      const u32 reader = static_cast<u32>(rng.Below(p.nthreads));
      const u64 probe = rng.Below(cfg.size_bytes - 8);
      u64 got = 0;
      ws[reader]->LoadBytes(probe, &got, 8);
      u64 want = 0;
      std::memcpy(&want, reference.data() + probe, 8);
      ASSERT_EQ(got, want) << "round " << round << " probe " << probe;
    }
    // Full final comparison through a fresh workspace.
    Workspace verify(seg, p.nthreads);
    std::vector<u8> got(cfg.size_bytes);
    verify.LoadBytes(0, got.data(), got.size());
    ASSERT_EQ(got, reference);
  });
  eng.Run();
}

// Overlapping writers: last committer wins per byte. The reference model
// replays each round's writes in commit order.
TEST_P(ConvProperty, OverlappingWritesFollowCommitOrder) {
  const PropParams p = GetParam();
  Engine eng;
  SegmentConfig cfg;
  cfg.page_size = p.page_size;
  cfg.size_bytes = 16 * p.page_size;  // small: force page conflicts
  Segment seg(eng, cfg);
  std::vector<u8> reference(cfg.size_bytes, 0);

  eng.Spawn([&] {
    std::vector<std::unique_ptr<Workspace>> ws;
    for (u32 t = 0; t < p.nthreads; ++t) {
      ws.push_back(std::make_unique<Workspace>(seg, t));
    }
    DetRng rng(p.seed ^ 0xabcdef);
    for (u32 round = 0; round < p.rounds; ++round) {
      // Everyone updates first so each round starts from common state.
      for (u32 t = 0; t < p.nthreads; ++t) {
        ws[t]->Update();
      }
      // Each thread buffers random writes anywhere (may overlap).
      std::vector<std::vector<std::pair<u64, u8>>> writes(p.nthreads);
      for (u32 t = 0; t < p.nthreads; ++t) {
        const u32 n = 1 + static_cast<u32>(rng.Below(20));
        for (u32 k = 0; k < n; ++k) {
          const u64 addr = rng.Below(cfg.size_bytes);
          u8 val = static_cast<u8>(rng.Next());
          // Byte-granularity diffs cannot express "wrote the same value"
          // (the paper's merge has the same blind spot), so write something
          // that differs from the thread's current view.
          if (val == ws[t]->Load<u8>(addr)) {
            val = static_cast<u8>(val ^ 1);
          }
          ws[t]->Store<u8>(addr, val);
          writes[t].push_back({addr, val});
        }
      }
      // Commit in round-robin order; reference applies in the same order.
      // A thread's own buffered writes override remote bytes (store-buffer),
      // and later commits override earlier ones byte-wise.
      for (u32 t = 0; t < p.nthreads; ++t) {
        ws[t]->Commit();
        for (const auto& [addr, val] : writes[t]) {
          reference[addr] = val;
        }
      }
    }
    Workspace verify(seg, p.nthreads);
    std::vector<u8> got(cfg.size_bytes);
    verify.LoadBytes(0, got.data(), got.size());
    ASSERT_EQ(got, reference);
  });
  eng.Run();
}

// GC never changes observable state, under any budget.
TEST_P(ConvProperty, GcPreservesObservableState) {
  const PropParams p = GetParam();
  for (u32 budget : {0u, 1u, 4u, 1000000u}) {
    Engine eng;
    SegmentConfig cfg;
    cfg.page_size = p.page_size;
    cfg.size_bytes = 32 * p.page_size;
    cfg.gc_budget_per_call = budget;
    Segment seg(eng, cfg);
    u64 digest = 0;
    eng.Spawn([&] {
      Workspace a(seg, 0);
      Workspace b(seg, 1);
      DetRng rng(p.seed);  // identical write sequence for every budget
      for (u32 round = 0; round < p.rounds; ++round) {
        a.Store<u64>(rng.Below(cfg.size_bytes - 8) & ~7ULL, rng.Next());
        a.CommitAndUpdate();
        b.Update();
        seg.Gc();
      }
      Fnv1a h;
      for (u64 addr = 0; addr + 8 <= cfg.size_bytes; addr += 8) {
        h.Mix(b.Load<u64>(addr));
      }
      digest = h.Digest();
    });
    eng.Run();
    static std::map<std::pair<u64, u32>, u64> seen;  // (seed,pagesize) -> digest
    const auto key = std::make_pair(p.seed, p.page_size);
    if (seen.count(key)) {
      EXPECT_EQ(seen[key], digest) << "budget " << budget;
    } else {
      seen[key] = digest;
    }
  }
}

// The word-granularity merge fast path must be byte-identical to the
// reference byte loop whenever its precondition holds (every byte where mine
// differs from twin lies in a marked word). Random page sizes (including
// non-multiples of 8, exercising the short tail word), random contents, and
// marked-but-unchanged words (stores that rewrote the twin's value) all have
// to produce the same merged bytes and the same applied-byte count.
TEST(MergeWords, MatchesReferenceByteLoop) {
  DetRng rng(0xfeedface);
  const usize kSizes[] = {8, 24, 64, 100, 129, 513, 1000, 4096};
  for (usize sz : kSizes) {
    for (u32 iter = 0; iter < 300; ++iter) {
      PageBuf twin(sz), base(sz);
      for (usize i = 0; i < sz; ++i) {
        twin[i] = static_cast<u8>(rng.Next());
        base[i] = static_cast<u8>(rng.Next());
      }
      PageBuf mine = twin;
      DirtyWords dirty;
      dirty.Reset(sz);
      const u32 stores = static_cast<u32>(rng.Below(9));  // 0 => empty bitmap
      for (u32 s = 0; s < stores; ++s) {
        const usize off = rng.Below(sz);
        const usize len = 1 + rng.Below(std::min<usize>(16, sz - off));
        dirty.MarkRange(off, len);
        switch (rng.Below(3)) {
          case 0:  // genuinely new bytes
            for (usize i = off; i < off + len; ++i) {
              mine[i] = static_cast<u8>(rng.Next());
            }
            break;
          case 1:  // store of the value already there: marked, no diff
            break;
          default:  // mixed: flip only the first byte of the range
            mine[off] = static_cast<u8>(~mine[off]);
            break;
        }
      }
      PageBuf base_ref = base;
      PageBuf base_fast = base;
      const usize applied_ref = MergeInto(base_ref, mine, twin);
      const MergeResult mr = MergeIntoWords(base_fast, mine, twin, dirty);
      ASSERT_EQ(base_ref, base_fast) << "size " << sz << " iter " << iter;
      ASSERT_EQ(applied_ref, mr.bytes) << "size " << sz << " iter " << iter;
      // mr.words must equal the number of words containing a differing byte.
      usize want_words = 0;
      for (usize w = 0; w * kMergeWordBytes < sz; ++w) {
        const usize off = w * kMergeWordBytes;
        const usize span = std::min(kMergeWordBytes, sz - off);
        if (std::memcmp(mine.data() + off, twin.data() + off, span) != 0) {
          ++want_words;
        }
      }
      ASSERT_EQ(want_words, mr.words) << "size " << sz << " iter " << iter;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvProperty,
    ::testing::Values(PropParams{2, 256, 20, 1}, PropParams{2, 4096, 12, 2},
                      PropParams{4, 256, 16, 3}, PropParams{4, 1024, 16, 4},
                      PropParams{8, 512, 10, 5}, PropParams{8, 4096, 8, 6},
                      PropParams{3, 128, 24, 7}, PropParams{16, 1024, 6, 8}),
    [](const ::testing::TestParamInfo<PropParams>& info) {
      return "t" + std::to_string(info.param.nthreads) + "_ps" +
             std::to_string(info.param.page_size) + "_s" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace csq::conv
