// Unit tests for the Conversion substrate: isolation, copy-on-write, commit /
// update semantics, byte-granularity last-writer-wins merging, two-phase
// commit ordering, garbage collection, and memory accounting.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/conv/alloc.h"
#include "src/conv/segment.h"
#include "src/conv/workspace.h"

namespace csq::conv {
namespace {

using sim::Engine;
using sim::TimeCat;

// Runs `fn` as the sole simulated thread.
void RunSim(Engine& eng, std::function<void()> fn) {
  eng.Spawn(std::move(fn));
  eng.Run();
}

SegmentConfig SmallSeg() {
  SegmentConfig cfg;
  cfg.size_bytes = 1 << 20;  // 256 pages of 4 KiB
  return cfg;
}

TEST(Workspace, LoadOfUnwrittenMemoryIsZero) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  RunSim(eng, [&] {
    Workspace ws(seg, 0);
    EXPECT_EQ(ws.Load<u64>(0), 0u);
    EXPECT_EQ(ws.Load<u32>(4096 * 7 + 12), 0u);
  });
}

TEST(Workspace, StoreThenLoadRoundTrips) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  RunSim(eng, [&] {
    Workspace ws(seg, 0);
    ws.Store<u64>(128, 0xdeadbeefcafef00dULL);
    ws.Store<u32>(4100, 77);
    EXPECT_EQ(ws.Load<u64>(128), 0xdeadbeefcafef00dULL);
    EXPECT_EQ(ws.Load<u32>(4100), 77u);
  });
}

TEST(Workspace, CrossPageAccessWorks) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  RunSim(eng, [&] {
    Workspace ws(seg, 0);
    const u64 addr = 4096 - 4;  // straddles pages 0 and 1
    ws.Store<u64>(addr, 0x1122334455667788ULL);
    EXPECT_EQ(ws.Load<u64>(addr), 0x1122334455667788ULL);
    EXPECT_EQ(ws.DirtyPageCount(), 2u);
  });
}

TEST(Workspace, UncommittedStoresAreInvisibleToOthers) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    a.Store<u64>(0, 42);
    EXPECT_EQ(b.Load<u64>(0), 0u);  // isolation: no commit yet
    b.Update();
    EXPECT_EQ(b.Load<u64>(0), 0u);  // still nothing committed
  });
}

TEST(Workspace, CommitThenUpdatePropagates) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    a.Store<u64>(0, 42);
    a.Commit();
    EXPECT_EQ(b.Load<u64>(0), 0u);  // b's snapshot predates the commit
    b.Update();
    EXPECT_EQ(b.Load<u64>(0), 42u);
  });
}

TEST(Workspace, SnapshotIsolationUntilUpdate) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    b.Load<u64>(8);  // cache page 0 at snapshot 0
    a.Store<u64>(8, 7);
    a.Commit();
    a.Store<u64>(8, 9);
    a.Commit();
    EXPECT_EQ(b.Load<u64>(8), 0u);
    b.Update();
    EXPECT_EQ(b.Load<u64>(8), 9u);  // jumps to latest, not intermediate
  });
}

TEST(Workspace, PendingStoresSurviveUpdateRebase) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    b.Store<u64>(16, 100);  // pending (uncommitted) store on page 0
    a.Store<u64>(24, 200);  // same page, different bytes
    a.Commit();
    b.Update();
    EXPECT_EQ(b.Load<u64>(16), 100u);  // my store buffer survives
    EXPECT_EQ(b.Load<u64>(24), 200u);  // remote committed bytes visible
  });
}

TEST(Workspace, ByteMergeLastWriterWins) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    // Both threads write disjoint bytes of the same page, then overlapping.
    a.Store<u8>(0, 0xaa);
    b.Store<u8>(1, 0xbb);
    a.Store<u8>(2, 0x11);
    b.Store<u8>(2, 0x22);
    a.Commit();
    b.Commit();  // b commits second: b's bytes win where both wrote
    Workspace c(seg, 2);
    EXPECT_EQ(c.Load<u8>(0), 0xaa);
    EXPECT_EQ(c.Load<u8>(1), 0xbb);
    EXPECT_EQ(c.Load<u8>(2), 0x22);
    EXPECT_GE(seg.Stats().pages_merged, 1u);
  });
}

TEST(Workspace, MergePreservesUntouchedBytes) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    a.Store<u64>(40, 999);
    a.Commit();
    Workspace b(seg, 1);
    Workspace c(seg, 2);
    b.Update();
    c.Update();
    b.Store<u64>(48, 1);
    c.Store<u64>(56, 2);
    b.Commit();
    c.Commit();
    Workspace d(seg, 3);
    EXPECT_EQ(d.Load<u64>(40), 999u);
    EXPECT_EQ(d.Load<u64>(48), 1u);
    EXPECT_EQ(d.Load<u64>(56), 2u);
  });
}

TEST(Workspace, CommitVersionsAreMonotone) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    a.Store<u64>(0, 1);
    const u64 v1 = a.Commit();
    a.Store<u64>(0, 2);
    const u64 v2 = a.Commit();
    EXPECT_LT(v1, v2);
    EXPECT_EQ(seg.CommittedVersion(), v2);
  });
}

TEST(Workspace, CowFaultChargedOncePerPage) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  RunSim(eng, [&] {
    Workspace ws(seg, 0);
    ws.Store<u64>(0, 1);
    ws.Store<u64>(8, 2);
    ws.Store<u64>(16, 3);
    EXPECT_EQ(ws.Stats().cow_faults, 1u);
    ws.Store<u64>(4096, 4);
    EXPECT_EQ(ws.Stats().cow_faults, 2u);
  });
  EXPECT_GT(eng.CatTotal(0, TimeCat::kFault), 0u);
}

TEST(Workspace, UpdateCountsPropagatedPages) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    b.Load<u64>(0);         // cache page 0
    b.Load<u64>(3 * 4096);  // cache page 3
    a.Store<u64>(0, 5);
    a.Store<u64>(3 * 4096, 6);
    a.Store<u64>(9 * 4096, 7);  // page b has never seen
    a.Commit();
    b.Update();
    // Conversion updates the whole mapping: all 3 changed pages propagate.
    EXPECT_EQ(b.Stats().pages_propagated, 3u);
    // A second update with nothing new propagates nothing.
    b.Update();
    EXPECT_EQ(b.Stats().pages_propagated, 3u);
    EXPECT_EQ(b.Load<u64>(9 * 4096), 7u);
  });
}

TEST(Segment, CommitObserverSeesOrderedRecords) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  std::vector<CommitRecord> recs;
  seg.SetCommitObserver([&](const CommitRecord& r) { recs.push_back(r); });
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    a.Store<u64>(0, 1);
    a.Commit();
    a.Store<u64>(4096, 2);
    a.Store<u64>(8192, 3);
    a.Commit();
  });
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].version, 1u);
  EXPECT_EQ(recs[0].pages.size(), 1u);
  EXPECT_EQ(recs[1].version, 2u);
  EXPECT_EQ(recs[1].pages.size(), 2u);
  EXPECT_EQ(recs[1].tid, 0u);
}

TEST(Segment, GcReclaimsOldVersions) {
  Engine eng;
  SegmentConfig cfg = SmallSeg();
  cfg.multithreaded_gc = true;  // unlimited budget
  Segment seg(eng, cfg);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    for (int i = 0; i < 10; ++i) {
      a.Store<u64>(0, static_cast<u64>(i));
      a.CommitAndUpdate();
    }
    const u64 before = seg.Stats().live_page_bytes;
    seg.Gc();
    const u64 after = seg.Stats().live_page_bytes;
    EXPECT_LT(after, before);
    // Reads still see the latest data.
    EXPECT_EQ(a.Load<u64>(0), 9u);
    Workspace b(seg, 1);
    EXPECT_EQ(b.Load<u64>(0), 9u);
  });
}

TEST(Segment, GcRespectsOldSnapshots) {
  Engine eng;
  SegmentConfig cfg = SmallSeg();
  cfg.multithreaded_gc = true;
  Segment seg(eng, cfg);
  RunSim(eng, [&] {
    Workspace old(seg, 0);  // snapshot 0, never updates
    Workspace w(seg, 1);
    w.Store<u64>(0, 1);
    w.CommitAndUpdate();
    w.Store<u64>(0, 2);
    w.CommitAndUpdate();
    seg.Gc();
    // The old workspace must still read its snapshot (zero).
    EXPECT_EQ(old.Load<u64>(0), 0u);
  });
}

TEST(Segment, BudgetedGcLagsBehind) {
  Engine eng;
  SegmentConfig cfg = SmallSeg();
  cfg.gc_budget_per_call = 2;
  Segment seg(eng, cfg);
  RunSim(eng, [&] {
    Workspace w(seg, 0);
    for (int i = 0; i < 20; ++i) {
      w.Store<u64>(static_cast<u64>(i % 4) * 4096, static_cast<u64>(i));
      w.CommitAndUpdate();
    }
    const usize reclaimed = seg.Gc();
    EXPECT_LE(reclaimed, 2u);  // the budget caps per-call reclamation
  });
}

TEST(Segment, PeakMemoryTracksLocalCopiesAndVersions) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  const u64 base = seg.Stats().cur_total_page_bytes;  // zero page
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    a.Store<u64>(0, 1);  // 1 local copy
    EXPECT_EQ(seg.Stats().cur_total_page_bytes, base + 4096);
    a.Commit();  // local copy published as a revision; local freed
    EXPECT_EQ(seg.Stats().cur_total_page_bytes, base + 4096);
    a.Store<u64>(0, 2);  // new local copy
    EXPECT_EQ(seg.Stats().cur_total_page_bytes, base + 2 * 4096);
    a.Commit();
    EXPECT_GE(seg.Stats().peak_page_bytes, base + 3 * 4096);
  });
}

TEST(Segment, TwoPhaseCommitInstallsInVersionOrder) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  // Two threads prepare in one order but finish in the opposite order; the
  // final page contents must respect version order (the later version wins).
  eng.Spawn([&] {
    Workspace a(seg, 0);
    a.Store<u64>(0, 111);
    const PreparedCommit pc = a.PrepareTwoPhase();  // reserves version 1
    eng.AdvanceRaw(100000, TimeCat::kChunk);        // slow phase 2
    a.FinishTwoPhase(pc);
  });
  eng.Spawn([&] {
    Workspace b(seg, 1);
    eng.AdvanceRaw(1000, TimeCat::kChunk);  // prepare after a, finish first
    b.Store<u64>(0, 222);
    const PreparedCommit pc = b.PrepareTwoPhase();  // reserves version 2
    b.FinishTwoPhase(pc);
  });
  eng.Run();
  // Inspect the final committed state directly: version 2 (thread b) wins.
  const PageRef page0 = seg.Fetch(0, seg.CommittedVersion());
  ASSERT_NE(page0, nullptr);
  u64 val = 0;
  std::copy_n(page0->data(), sizeof(val), reinterpret_cast<u8*>(&val));
  EXPECT_EQ(val, 222u);
  EXPECT_EQ(seg.CommittedVersion(), 2u);
}

TEST(Workspace, EmptyCommitCreatesNoVersion) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    a.Load<u64>(0);  // read-only "critical section"
    const u64 v = a.Commit();
    EXPECT_EQ(v, 0u);                       // elided
    EXPECT_EQ(seg.CommittedVersion(), 0u);  // no version-log churn
    a.Store<u64>(0, 1);
    EXPECT_GT(a.Commit(), 0u);
  });
}

TEST(Segment, DisjointPageCommitsInstallIndependently) {
  // Two prepared commits touching disjoint pages finish in opposite order of
  // their version numbers; per-page installation must not deadlock and both
  // results must be visible afterwards.
  Engine eng;
  Segment seg(eng, SmallSeg());
  eng.Spawn([&] {
    Workspace a(seg, 0);
    a.Store<u64>(0, 111);                           // page 0
    const PreparedCommit pc = a.PrepareTwoPhase();  // version 1
    eng.AdvanceRaw(50000, TimeCat::kChunk);         // slow finisher
    a.FinishTwoPhase(pc);
  });
  eng.Spawn([&] {
    Workspace b(seg, 1);
    eng.AdvanceRaw(100, TimeCat::kChunk);
    b.Store<u64>(8 * 4096, 222);                    // page 8 (disjoint)
    const PreparedCommit pc = b.PrepareTwoPhase();  // version 2
    b.FinishTwoPhase(pc);                           // finishes first
    // Version 2's pages are installed even though version 1 is in flight;
    // the contiguous committed prefix is still 0.
    EXPECT_EQ(seg.LatestVersionOf(8 * 4096 / 4096), 2u);
    EXPECT_EQ(seg.CommittedVersion(), 0u);
  });
  eng.Run();
  EXPECT_EQ(seg.CommittedVersion(), 2u);
  EXPECT_EQ(seg.LatestVersionOf(0), 1u);
}

TEST(Segment, SamePageCommitsMergeInVersionOrder) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  eng.Spawn([&] {
    Workspace a(seg, 0);
    a.Store<u64>(0, 111);
    const PreparedCommit pc = a.PrepareTwoPhase();  // version 1, page 0
    eng.AdvanceRaw(50000, TimeCat::kChunk);
    a.FinishTwoPhase(pc);
  });
  eng.Spawn([&] {
    Workspace b(seg, 1);
    eng.AdvanceRaw(100, TimeCat::kChunk);
    b.Store<u64>(8, 222);                           // same page, other word
    const PreparedCommit pc = b.PrepareTwoPhase();  // version 2, page 0
    b.FinishTwoPhase(pc);  // must WAIT for version 1's page-0 install
  });
  eng.Run();
  // Both writes must survive (version 2 merged onto version 1).
  const PageRef final_page = seg.Fetch(0, seg.CommittedVersion());
  u64 w0 = 0, w1 = 0;
  std::copy_n(final_page->data(), 8, reinterpret_cast<u8*>(&w0));
  std::copy_n(final_page->data() + 8, 8, reinterpret_cast<u8*>(&w1));
  EXPECT_EQ(w0, 111u);
  EXPECT_EQ(w1, 222u);
}

// The fast-path substrate exposes its effectiveness through counters: page
// touches resolved by the translation cache, words applied by the bitmap
// merge, and page buffers served from the segment pool. This pins a
// deterministic scenario where all of them must fire.
TEST(Workspace, FastPathCountersFire) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    // Repeated stores to one page: first touch misses the TLB, the rest hit.
    for (u64 i = 0; i < 64; ++i) {
      a.Store<u64>(i * 8, i + 1);
    }
    EXPECT_GT(a.Stats().tlb_hits, 0u);
    EXPECT_GT(a.Stats().tlb_misses, 0u);
    // Conflicting commits to the same page: the later committer word-merges.
    b.Store<u64>(8 * 100, 777);  // same page 0, different word
    a.Commit();
    b.Commit();
    EXPECT_GT(b.Stats().words_merged, 0u);
    // a's local copy went back to the segment pool at commit; rewriting the
    // page after an update must take its buffer from the pool.
    a.Update();
    a.Store<u64>(0, 42);
    EXPECT_GT(a.Stats().pool_reuses, 0u);
  });
}

// ---- Off-floor commit pipeline (DESIGN.md §12) -----------------------------
//
// The same mixed workload — same-page merges, disjoint-page commits, updates
// and multithreaded GC — must produce bit-identical simulated results on the
// serial reference engine and on the threaded engine with the off-floor
// pipeline active. The host_workers == 1 force_threaded case is the tightest
// configuration: a single execution slot means an off-floor work phase can
// only make progress if publish waiters lend their slot back (the TSan CI
// configuration exercises the same path).
struct OffFloorResult {
  u64 committed_version = 0;
  std::vector<u64> final_vtimes;
  std::vector<std::vector<u8>> final_pages;  // bytes per touched page; empty = never written
  u64 commits = 0;
  u64 pages_committed = 0;
  u64 pages_merged = 0;
  u64 bytes_merged = 0;
  u64 gc_reclaimed_pages = 0;
  u64 live_page_bytes = 0;
  u64 offfloor_pages_installed = 0;
  bool threaded = false;  // which substrate the engine actually used
};

OffFloorResult RunOffFloorScenario(u32 host_workers, bool force_threaded, bool offfloor) {
  sim::SimConfig sc;
  sc.host_workers = host_workers;
  sc.force_threaded = force_threaded;
  Engine eng(sc);
  SegmentConfig cfg = SmallSeg();
  cfg.multithreaded_gc = true;  // unlimited budget: GC defers erases off-floor
  cfg.offfloor_commit = offfloor;
  Segment seg(eng, cfg);

  constexpr u32 kThreads = 3;
  constexpr u32 kRounds = 6;
  OffFloorResult r;
  r.final_vtimes.resize(kThreads);
  // Construct workspaces outside the simulation: (un)registration feeds the
  // floor-held GC watermark scan and must not race it (conv-layer contract).
  std::vector<std::unique_ptr<Workspace>> wss;
  for (u32 t = 0; t < kThreads; ++t) {
    wss.push_back(std::make_unique<Workspace>(seg, t));
  }
  for (u32 t = 0; t < kThreads; ++t) {
    eng.Spawn([&, t] {
      Workspace& w = *wss[t];
      for (u32 round = 0; round < kRounds; ++round) {
        // Stagger virtual time so commits interleave differently per round.
        eng.AdvanceRaw(1000 * (t + 1) + 777 * round, TimeCat::kChunk);
        // Shared page 0: every thread writes its own word (commit-time merge).
        w.Store<u64>(8 * t, (round + 1) * 100 + t);
        // Private page (disjoint commits install independently).
        w.Store<u64>(4096 * (1 + t), round * 10 + t);
        w.CommitAndUpdate();
        // Every thread GCs once at a distinct round: later calls exercise the
        // drain of a previous off-floor eraser (WaitGcQuiesced).
        if (round == 2 + t) seg.Gc(kThreads);
      }
      r.final_vtimes[t] = eng.Now();
    });
  }
  eng.Run();
  wss.clear();

  r.committed_version = seg.CommittedVersion();
  for (u32 page = 0; page < 1 + kThreads; ++page) {
    const PageRef rev = seg.Fetch(page, seg.CommittedVersion());
    if (rev == nullptr) {
      r.final_pages.emplace_back();
    } else {
      r.final_pages.emplace_back(rev->data(), rev->data() + seg.PageSize());
    }
  }
  r.commits = seg.Stats().commits;
  r.pages_committed = seg.Stats().pages_committed;
  r.pages_merged = seg.Stats().pages_merged;
  r.bytes_merged = seg.Stats().bytes_merged;
  r.gc_reclaimed_pages = seg.Stats().gc_reclaimed_pages;
  r.live_page_bytes = seg.Stats().live_page_bytes;
  r.offfloor_pages_installed = seg.Stats().offfloor_pages_installed;
  r.threaded = eng.Threaded();
  return r;
}

void ExpectOffFloorResultsEqual(const OffFloorResult& ref, const OffFloorResult& got) {
  EXPECT_EQ(ref.committed_version, got.committed_version);
  EXPECT_EQ(ref.final_vtimes, got.final_vtimes);
  EXPECT_EQ(ref.final_pages, got.final_pages);
  EXPECT_EQ(ref.commits, got.commits);
  EXPECT_EQ(ref.pages_committed, got.pages_committed);
  EXPECT_EQ(ref.pages_merged, got.pages_merged);
  EXPECT_EQ(ref.bytes_merged, got.bytes_merged);
  EXPECT_EQ(ref.gc_reclaimed_pages, got.gc_reclaimed_pages);
  EXPECT_EQ(ref.live_page_bytes, got.live_page_bytes);
}

TEST(OffFloorCommit, MatchesSerialReference) {
  const OffFloorResult serial = RunOffFloorScenario(1, /*force_threaded=*/false, true);
  EXPECT_GT(serial.pages_merged, 0u);           // the scenario really merges
  EXPECT_GT(serial.gc_reclaimed_pages, 0u);     // and really collects
  if (serial.threaded) {
    // CSQ_TSAN builds force the threaded substrate even at one worker, so
    // the pipeline legitimately engages on the "serial" run too.
    EXPECT_EQ(serial.offfloor_pages_installed, serial.pages_committed);
  } else {
    EXPECT_EQ(serial.offfloor_pages_installed, 0u);  // serial engine: pipeline off
  }

  // One-slot threaded engine: off-floor publishes can only complete because
  // publish waiters lend their slot (Engine::BeginHostWait).
  const OffFloorResult one_slot = RunOffFloorScenario(1, /*force_threaded=*/true, true);
  ExpectOffFloorResultsEqual(serial, one_slot);
  EXPECT_EQ(one_slot.offfloor_pages_installed, one_slot.pages_committed);

  const OffFloorResult parallel = RunOffFloorScenario(4, /*force_threaded=*/true, true);
  ExpectOffFloorResultsEqual(serial, parallel);
  EXPECT_EQ(parallel.offfloor_pages_installed, parallel.pages_committed);
}

TEST(OffFloorCommit, DisabledPipelineMatchesSerialReference) {
  const OffFloorResult serial = RunOffFloorScenario(1, /*force_threaded=*/false, false);
  const OffFloorResult parallel = RunOffFloorScenario(4, /*force_threaded=*/true, false);
  ExpectOffFloorResultsEqual(serial, parallel);
  // offfloor_commit = false keeps the threaded engine on the reference path.
  EXPECT_EQ(parallel.offfloor_pages_installed, 0u);
}

TEST(BumpAllocator, AlignsAndAdvances) {
  BumpAllocator ba(1 << 20);
  const u64 a = ba.Alloc(10, 8);
  const u64 b = ba.Alloc(1, 64);
  const u64 c = ba.Alloc(8, 8);
  EXPECT_EQ(a % 8, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GT(b, a);
  EXPECT_GT(c, b);
  EXPECT_EQ(ba.Used(), c + 8);
}

TEST(BumpAllocatorDeath, OverflowChecks) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  BumpAllocator ba(100);
  EXPECT_DEATH(ba.Alloc(200), "out of space");
}

}  // namespace
}  // namespace csq::conv
