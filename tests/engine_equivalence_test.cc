// Serial/parallel engine equivalence: the host-parallel engine
// (RuntimeConfig::host_workers > 1) must produce results bit-identical to the
// serial reference engine for every deterministic flavor, every worker count
// and every jitter seed — same checksums, virtual times, schedule traces,
// commit orders and per-category time breakdowns. Only host_wall_ns and
// peak_mem_bytes (whose workspace-copy component depends on host scheduling)
// may differ.
//
// On failure, the ScheduleRecorder-based cases report the first diverging
// synchronization event instead of just a mismatched digest.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/rt/api.h"
#include "src/rt/schedule_recorder.h"
#include "src/tso/explorer.h"
#include "src/tso/litmus.h"
#include "src/tso/runner.h"
#include "src/tso/tso_model.h"
#include "src/wl/workloads.h"

namespace csq::rt {
namespace {

constexpr Backend kDetBackends[] = {
    Backend::kDThreads,
    Backend::kDwc,
    Backend::kConsequenceRR,
    Backend::kConsequenceIC,
};

// Workload mix: lock-heavy fine-grained (reverse_index), a condvar pipeline
// (ferret), and a barrier-heavy program (ocean_cp) — together they exercise
// every blocking path in the runtime.
constexpr const char* kWorkloads[] = {"reverse_index", "ferret", "ocean_cp"};

RuntimeConfig BaseCfg(u32 host_workers, u64 jitter_seed = 0) {
  RuntimeConfig cfg;
  cfg.nthreads = 4;
  cfg.segment.size_bytes = 8 << 20;
  cfg.host_workers = host_workers;
  if (jitter_seed != 0) {
    cfg.costs.jitter_bp = 900;
    cfg.costs.jitter_seed = jitter_seed;
  }
  return cfg;
}

// Every deterministic RunResult field. host_wall_ns and peak_mem_bytes are
// deliberately absent (host-dependent; see api.h).
void ExpectResultsIdentical(const RunResult& serial, const RunResult& par,
                            const std::string& label) {
  EXPECT_EQ(serial.checksum, par.checksum) << label;
  EXPECT_EQ(serial.vtime, par.vtime) << label;
  EXPECT_EQ(serial.trace_digest, par.trace_digest) << label;
  EXPECT_EQ(serial.trace_events, par.trace_events) << label;
  EXPECT_EQ(serial.commits, par.commits) << label;
  EXPECT_EQ(serial.pages_committed, par.pages_committed) << label;
  EXPECT_EQ(serial.pages_merged, par.pages_merged) << label;
  EXPECT_EQ(serial.pages_propagated, par.pages_propagated) << label;
  EXPECT_EQ(serial.token_acquires, par.token_acquires) << label;
  EXPECT_EQ(serial.fast_forwards, par.fast_forwards) << label;
  EXPECT_EQ(serial.overflows, par.overflows) << label;
  EXPECT_EQ(serial.cow_faults, par.cow_faults) << label;
  EXPECT_EQ(serial.cat_totals, par.cat_totals) << label;
  EXPECT_EQ(serial.cat_by_thread, par.cat_by_thread) << label;
}

std::string DivergenceMessage(const std::vector<SchedEvent>& serial,
                              const std::vector<SchedEvent>& par) {
  const auto div = FirstDivergence(serial, par);
  if (!div) {
    return "schedules identical";
  }
  std::ostringstream oss;
  oss << "first divergence at event " << div->index << ": serial={" << div->left
      << "} parallel={" << div->right << "}";
  return oss.str();
}

TEST(EngineEquivalence, AllFlavorsAllWorkerCountsBitIdentical) {
  for (const char* name : kWorkloads) {
    const wl::WorkloadInfo* w = wl::FindWorkload(name);
    ASSERT_NE(w, nullptr) << name;
    wl::WlParams p;
    p.workers = 4;
    for (Backend be : kDetBackends) {
      const RunResult serial = MakeRuntime(be, BaseCfg(1))->Run(wl::Bind(*w, p));
      for (u32 workers : {2u, 4u, 8u}) {
        const RunResult par = MakeRuntime(be, BaseCfg(workers))->Run(wl::Bind(*w, p));
        std::ostringstream label;
        label << name << " " << BackendName(be) << " host_workers=" << workers;
        ExpectResultsIdentical(serial, par, label.str());
      }
    }
  }
}

TEST(EngineEquivalence, JitterSeedsPreserveEquivalence) {
  // Per-seed equivalence: each jittered universe must be reproduced exactly by
  // the parallel engine (the jitter streams are per-thread and deterministic,
  // so host scheduling must not leak into them).
  const wl::WorkloadInfo* w = wl::FindWorkload("reverse_index");
  wl::WlParams p;
  p.workers = 4;
  for (u64 seed : {7ULL, 13ULL, 99ULL}) {
    const RunResult serial =
        MakeRuntime(Backend::kConsequenceIC, BaseCfg(1, seed))->Run(wl::Bind(*w, p));
    for (u32 workers : {2u, 4u}) {
      const RunResult par =
          MakeRuntime(Backend::kConsequenceIC, BaseCfg(workers, seed))->Run(wl::Bind(*w, p));
      std::ostringstream label;
      label << "seed=" << seed << " host_workers=" << workers;
      ExpectResultsIdentical(serial, par, label.str());
    }
  }
}

TEST(EngineEquivalence, SyncEventStreamsIdenticalWithFirstDivergenceReport) {
  // The full ordered acquire/release/commit stream — not just the digest —
  // must match, and a regression names the first diverging event.
  const wl::WorkloadInfo* w = wl::FindWorkload("ferret");
  wl::WlParams p;
  p.workers = 4;
  for (Backend be : {Backend::kConsequenceIC, Backend::kConsequenceRR}) {
    ScheduleRecorder serial_rec;
    RuntimeConfig scfg = BaseCfg(1);
    scfg.observer = &serial_rec;
    MakeRuntime(be, scfg)->Run(wl::Bind(*w, p));

    ScheduleRecorder par_rec;
    RuntimeConfig pcfg = BaseCfg(4);
    pcfg.observer = &par_rec;
    MakeRuntime(be, pcfg)->Run(wl::Bind(*w, p));

    EXPECT_EQ(serial_rec.Events().size(), par_rec.Events().size()) << BackendName(be);
    EXPECT_FALSE(FirstDivergence(serial_rec.Events(), par_rec.Events()).has_value())
        << BackendName(be) << ": "
        << DivergenceMessage(serial_rec.Events(), par_rec.Events());
  }
}

TEST(EngineEquivalence, AsyncLockCommitModeStaysEquivalent) {
  // §6 async commits overlap phase-two installs with other threads'
  // coordination — the most concurrency-sensitive configuration the runtime
  // has, so it gets its own equivalence check.
  const wl::WorkloadInfo* w = wl::FindWorkload("ferret");
  wl::WlParams p;
  p.workers = 4;
  RuntimeConfig scfg = BaseCfg(1);
  scfg.async_lock_commit = true;
  const RunResult serial = MakeRuntime(Backend::kConsequenceIC, scfg)->Run(wl::Bind(*w, p));
  for (u32 workers : {2u, 8u}) {
    RuntimeConfig pcfg = BaseCfg(workers);
    pcfg.async_lock_commit = true;
    const RunResult par = MakeRuntime(Backend::kConsequenceIC, pcfg)->Run(wl::Bind(*w, p));
    std::ostringstream label;
    label << "async host_workers=" << workers;
    ExpectResultsIdentical(serial, par, label.str());
  }
}

TEST(EngineEquivalence, TsoLitmusOutcomesIdenticalOnParallelEngine) {
  // The TSO conformance harness must see the same single outcome per litmus
  // run regardless of the engine: forbidden shapes stay forbidden because the
  // parallel engine retires shared operations in the same global order.
  for (const char* name : {"SB", "MP+fences", "LockMP", "2W-samepage"}) {
    const tso::LitmusShape& shape = tso::ShapeByName(name);
    for (Backend be : {Backend::kConsequenceIC, Backend::kDwc}) {
      RuntimeConfig scfg;
      scfg.segment.size_bytes = 1 << 20;
      scfg.host_workers = 1;
      RunResult sres;
      const tso::Outcome serial = tso::RunLitmus(be, shape.litmus, scfg, &sres);
      RuntimeConfig pcfg = scfg;
      pcfg.host_workers = 4;
      RunResult pres;
      const tso::Outcome par = tso::RunLitmus(be, shape.litmus, pcfg, &pres);
      EXPECT_TRUE(serial == par) << name << " " << BackendName(be) << "\nserial: "
                                 << serial.ToString() << "\nparallel: " << par.ToString();
      EXPECT_EQ(sres.trace_digest, pres.trace_digest) << name << " " << BackendName(be);
      if (shape.forbidden) {
        EXPECT_FALSE(shape.marked(par)) << name << " reached a TSO-forbidden outcome "
                                        << "on the parallel engine";
      }
    }
  }
}

TEST(EngineEquivalence, ExplorerSchedulesReproduceOnParallelEngine) {
  // Schedule exploration drives the token arbiter through non-default grant
  // orders; every explored universe must also be engine-independent. A couple
  // of shapes with small schedule spaces keep this cheap.
  for (const char* name : {"SB", "MP+fences"}) {
    const tso::LitmusShape& shape = tso::ShapeByName(name);
    tso::ExploreOptions opt;
    opt.max_runs = 200;
    RuntimeConfig scfg;
    scfg.segment.size_bytes = 1 << 20;
    scfg.host_workers = 1;
    const tso::ExploreResult serial =
        tso::Explore(Backend::kConsequenceIC, shape.litmus, scfg, opt);
    RuntimeConfig pcfg = scfg;
    pcfg.host_workers = 4;
    const tso::ExploreResult par =
        tso::Explore(Backend::kConsequenceIC, shape.litmus, pcfg, opt);
    EXPECT_EQ(serial.runs, par.runs) << name;
    EXPECT_TRUE(par.lww_violations.empty()) << name;
    EXPECT_TRUE(serial.outcomes == par.outcomes)
        << name << "\nserial: " << ToString(serial.outcomes)
        << "\nparallel: " << ToString(par.outcomes);
  }
}

}  // namespace
}  // namespace csq::rt
