// Serial/parallel engine equivalence: the host-parallel engine
// (RuntimeConfig::host_workers > 1) must produce results bit-identical to the
// serial reference engine for every deterministic flavor, every worker count
// and every jitter seed — same checksums, virtual times, schedule traces,
// commit orders and per-category time breakdowns. Only host_wall_ns and
// peak_mem_bytes (whose workspace-copy component depends on host scheduling)
// may differ.
//
// On failure, the ScheduleRecorder-based cases report the first diverging
// synchronization event instead of just a mismatched digest.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "src/conv/segment.h"
#include "src/conv/workspace.h"
#include "src/race/race.h"
#include "src/race/report.h"
#include "src/rt/api.h"
#include "src/rt/schedule_recorder.h"
#include "src/tso/explorer.h"
#include "src/tso/litmus.h"
#include "src/tso/runner.h"
#include "src/tso/trace.h"
#include "src/tso/tso_model.h"
#include "src/wl/workloads.h"

namespace csq::rt {
namespace {

constexpr Backend kDetBackends[] = {
    Backend::kDThreads,
    Backend::kDwc,
    Backend::kConsequenceRR,
    Backend::kConsequenceIC,
};

// Workload mix: lock-heavy fine-grained (reverse_index), a condvar pipeline
// (ferret), and a barrier-heavy program (ocean_cp) — together they exercise
// every blocking path in the runtime.
constexpr const char* kWorkloads[] = {"reverse_index", "ferret", "ocean_cp"};

RuntimeConfig BaseCfg(u32 host_workers, u64 jitter_seed = 0) {
  RuntimeConfig cfg;
  cfg.nthreads = 4;
  cfg.segment.size_bytes = 8 << 20;
  cfg.host_workers = host_workers;
  if (jitter_seed != 0) {
    cfg.costs.jitter_bp = 900;
    cfg.costs.jitter_seed = jitter_seed;
  }
  return cfg;
}

// Every deterministic RunResult field. host_wall_ns and peak_mem_bytes are
// deliberately absent (host-dependent; see api.h).
void ExpectResultsIdentical(const RunResult& serial, const RunResult& par,
                            const std::string& label) {
  EXPECT_EQ(serial.checksum, par.checksum) << label;
  EXPECT_EQ(serial.vtime, par.vtime) << label;
  EXPECT_EQ(serial.trace_digest, par.trace_digest) << label;
  EXPECT_EQ(serial.trace_events, par.trace_events) << label;
  EXPECT_EQ(serial.commits, par.commits) << label;
  EXPECT_EQ(serial.pages_committed, par.pages_committed) << label;
  EXPECT_EQ(serial.pages_merged, par.pages_merged) << label;
  EXPECT_EQ(serial.pages_propagated, par.pages_propagated) << label;
  EXPECT_EQ(serial.token_acquires, par.token_acquires) << label;
  EXPECT_EQ(serial.fast_forwards, par.fast_forwards) << label;
  EXPECT_EQ(serial.overflows, par.overflows) << label;
  EXPECT_EQ(serial.cow_faults, par.cow_faults) << label;
  EXPECT_EQ(serial.cat_totals, par.cat_totals) << label;
  EXPECT_EQ(serial.cat_by_thread, par.cat_by_thread) << label;
}

std::string DivergenceMessage(const std::vector<SchedEvent>& serial,
                              const std::vector<SchedEvent>& par) {
  const auto div = FirstDivergence(serial, par);
  if (!div) {
    return "schedules identical";
  }
  std::ostringstream oss;
  oss << "first divergence at event " << div->index << ": serial={" << div->left
      << "} parallel={" << div->right << "}";
  return oss.str();
}

TEST(EngineEquivalence, AllFlavorsAllWorkerCountsBitIdentical) {
  for (const char* name : kWorkloads) {
    const wl::WorkloadInfo* w = wl::FindWorkload(name);
    ASSERT_NE(w, nullptr) << name;
    wl::WlParams p;
    p.workers = 4;
    for (Backend be : kDetBackends) {
      const RunResult serial = MakeRuntime(be, BaseCfg(1))->Run(wl::Bind(*w, p));
      for (u32 workers : {2u, 4u, 8u}) {
        const RunResult par = MakeRuntime(be, BaseCfg(workers))->Run(wl::Bind(*w, p));
        std::ostringstream label;
        label << name << " " << BackendName(be) << " host_workers=" << workers;
        ExpectResultsIdentical(serial, par, label.str());
      }
    }
  }
}

TEST(EngineEquivalence, JitterSeedsPreserveEquivalence) {
  // Per-seed equivalence: each jittered universe must be reproduced exactly by
  // the parallel engine (the jitter streams are per-thread and deterministic,
  // so host scheduling must not leak into them).
  const wl::WorkloadInfo* w = wl::FindWorkload("reverse_index");
  wl::WlParams p;
  p.workers = 4;
  for (u64 seed : {7ULL, 13ULL, 99ULL}) {
    const RunResult serial =
        MakeRuntime(Backend::kConsequenceIC, BaseCfg(1, seed))->Run(wl::Bind(*w, p));
    for (u32 workers : {2u, 4u}) {
      const RunResult par =
          MakeRuntime(Backend::kConsequenceIC, BaseCfg(workers, seed))->Run(wl::Bind(*w, p));
      std::ostringstream label;
      label << "seed=" << seed << " host_workers=" << workers;
      ExpectResultsIdentical(serial, par, label.str());
    }
  }
}

TEST(EngineEquivalence, SyncEventStreamsIdenticalWithFirstDivergenceReport) {
  // The full ordered acquire/release/commit stream — not just the digest —
  // must match, and a regression names the first diverging event.
  const wl::WorkloadInfo* w = wl::FindWorkload("ferret");
  wl::WlParams p;
  p.workers = 4;
  for (Backend be : {Backend::kConsequenceIC, Backend::kConsequenceRR}) {
    ScheduleRecorder serial_rec;
    RuntimeConfig scfg = BaseCfg(1);
    scfg.observer = &serial_rec;
    MakeRuntime(be, scfg)->Run(wl::Bind(*w, p));

    ScheduleRecorder par_rec;
    RuntimeConfig pcfg = BaseCfg(4);
    pcfg.observer = &par_rec;
    MakeRuntime(be, pcfg)->Run(wl::Bind(*w, p));

    EXPECT_EQ(serial_rec.Events().size(), par_rec.Events().size()) << BackendName(be);
    EXPECT_FALSE(FirstDivergence(serial_rec.Events(), par_rec.Events()).has_value())
        << BackendName(be) << ": "
        << DivergenceMessage(serial_rec.Events(), par_rec.Events());
  }
}

TEST(EngineEquivalence, AsyncLockCommitModeStaysEquivalent) {
  // §6 async commits overlap phase-two installs with other threads'
  // coordination — the most concurrency-sensitive configuration the runtime
  // has, so it gets its own equivalence check.
  const wl::WorkloadInfo* w = wl::FindWorkload("ferret");
  wl::WlParams p;
  p.workers = 4;
  RuntimeConfig scfg = BaseCfg(1);
  scfg.async_lock_commit = true;
  const RunResult serial = MakeRuntime(Backend::kConsequenceIC, scfg)->Run(wl::Bind(*w, p));
  for (u32 workers : {2u, 8u}) {
    RuntimeConfig pcfg = BaseCfg(workers);
    pcfg.async_lock_commit = true;
    const RunResult par = MakeRuntime(Backend::kConsequenceIC, pcfg)->Run(wl::Bind(*w, p));
    std::ostringstream label;
    label << "async host_workers=" << workers;
    ExpectResultsIdentical(serial, par, label.str());
  }
}

TEST(EngineEquivalence, OffFloorCommitToggleBitIdentical) {
  // The off-floor commit pipeline (DESIGN.md §12) defaults on for the threaded
  // engine, so every case above already runs with it. This pins the toggle
  // itself: with the pipeline explicitly enabled AND explicitly disabled, every
  // flavor × worker count × jitter seed must reproduce the serial reference —
  // the pipeline moves host work off the floor without touching any simulated
  // result.
  const wl::WorkloadInfo* w = wl::FindWorkload("ocean_cp");  // barrier-heavy:
  ASSERT_NE(w, nullptr);                                     // overlapped arrivals
  wl::WlParams p;
  p.workers = 4;
  for (Backend be : kDetBackends) {
    for (u64 seed : {0ULL, 13ULL}) {
      const RunResult serial = MakeRuntime(be, BaseCfg(1, seed))->Run(wl::Bind(*w, p));
      for (u32 workers : {2u, 4u}) {
        for (bool offfloor : {true, false}) {
          RuntimeConfig cfg = BaseCfg(workers, seed);
          cfg.segment.offfloor_commit = offfloor;
          const RunResult par = MakeRuntime(be, cfg)->Run(wl::Bind(*w, p));
          std::ostringstream label;
          label << "ocean_cp " << BackendName(be) << " seed=" << seed
                << " host_workers=" << workers << " offfloor=" << offfloor;
          ExpectResultsIdentical(serial, par, label.str());
          if (offfloor) {
            // The pipeline really engaged: every committed page was published
            // off the floor.
            EXPECT_EQ(par.offfloor_pages_installed, par.pages_committed) << label.str();
          } else {
            EXPECT_EQ(par.offfloor_pages_installed, 0u) << label.str();
          }
        }
      }
    }
  }
}

TEST(EngineEquivalence, OffFloorCommitOrdersMatchSerialTrace) {
  // Full canonical-trace comparison with the pipeline active: commit versions
  // with their install-ordered page sets, merge decisions and snapshot updates
  // — not just digests — must match the serial reference event-for-event, and
  // a regression names the first divergent event.
  wl::WlParams p;
  p.workers = 4;
  for (const char* name : {"ferret", "ocean_cp"}) {
    const wl::WorkloadInfo* w = wl::FindWorkload(name);
    ASSERT_NE(w, nullptr) << name;
    for (Backend be : {Backend::kConsequenceIC, Backend::kDwc}) {
      for (u64 seed : {0ULL, 7ULL}) {
        tso::TraceRecorder serial_rec;
        RuntimeConfig scfg = BaseCfg(1, seed);
        scfg.observer = &serial_rec;
        MakeRuntime(be, scfg)->Run(wl::Bind(*w, p));

        for (u32 workers : {2u, 4u}) {
          tso::TraceRecorder par_rec;
          RuntimeConfig pcfg = BaseCfg(workers, seed);
          pcfg.segment.offfloor_commit = true;
          pcfg.observer = &par_rec;
          MakeRuntime(be, pcfg)->Run(wl::Bind(*w, p));

          const tso::TraceDiff diff = tso::DiffTraces(serial_rec.Trace(), par_rec.Trace());
          EXPECT_FALSE(diff.diverged)
              << name << " " << BackendName(be) << " seed=" << seed
              << " host_workers=" << workers << ": " << diff.description;
        }
      }
    }
  }
}

TEST(EngineEquivalence, OffFloorCommitMoreThreadsThanWorkers) {
  // Regression: with more simulated threads than host workers, commit
  // pipelines overlap deeply enough that one committer's work phase can read
  // a page whose owner is still ordering its later pages. An earlier pipeline
  // shape that deferred all byte work past the whole order loop deadlocked
  // here (lu_ncb, 8 threads, any worker count): the host-blocked reader's
  // frozen virtual time withheld the floor from the very committer whose
  // publish it was waiting on. The per-page work staging (DESIGN.md §12)
  // keeps publish dependencies acyclic; this pins that at 8 threads, which
  // the nthreads=4 cases above never reach.
  const wl::WorkloadInfo* w = wl::FindWorkload("lu_ncb");
  ASSERT_NE(w, nullptr);
  wl::WlParams p;
  p.workers = 8;
  RuntimeConfig scfg = BaseCfg(1);
  scfg.nthreads = 8;
  const RunResult serial = MakeRuntime(Backend::kConsequenceIC, scfg)->Run(wl::Bind(*w, p));
  for (u32 workers : {2u, 4u}) {
    RuntimeConfig pcfg = BaseCfg(workers);
    pcfg.nthreads = 8;
    pcfg.segment.offfloor_commit = true;
    const RunResult par = MakeRuntime(Backend::kConsequenceIC, pcfg)->Run(wl::Bind(*w, p));
    std::ostringstream label;
    label << "lu_ncb nthreads=8 host_workers=" << workers;
    ExpectResultsIdentical(serial, par, label.str());
    EXPECT_EQ(par.offfloor_pages_installed, par.pages_committed) << label.str();
  }
}

TEST(EngineEquivalence, TsoLitmusOutcomesIdenticalOnParallelEngine) {
  // The TSO conformance harness must see the same single outcome per litmus
  // run regardless of the engine: forbidden shapes stay forbidden because the
  // parallel engine retires shared operations in the same global order.
  for (const char* name : {"SB", "MP+fences", "LockMP", "2W-samepage"}) {
    const tso::LitmusShape& shape = tso::ShapeByName(name);
    for (Backend be : {Backend::kConsequenceIC, Backend::kDwc}) {
      RuntimeConfig scfg;
      scfg.segment.size_bytes = 1 << 20;
      scfg.host_workers = 1;
      RunResult sres;
      const tso::Outcome serial = tso::RunLitmus(be, shape.litmus, scfg, &sres);
      RuntimeConfig pcfg = scfg;
      pcfg.host_workers = 4;
      RunResult pres;
      const tso::Outcome par = tso::RunLitmus(be, shape.litmus, pcfg, &pres);
      EXPECT_TRUE(serial == par) << name << " " << BackendName(be) << "\nserial: "
                                 << serial.ToString() << "\nparallel: " << par.ToString();
      EXPECT_EQ(sres.trace_digest, pres.trace_digest) << name << " " << BackendName(be);
      if (shape.forbidden) {
        EXPECT_FALSE(shape.marked(par)) << name << " reached a TSO-forbidden outcome "
                                        << "on the parallel engine";
      }
    }
  }
}

TEST(EngineEquivalence, ExplorerSchedulesReproduceOnParallelEngine) {
  // Schedule exploration drives the token arbiter through non-default grant
  // orders; every explored universe must also be engine-independent. A couple
  // of shapes with small schedule spaces keep this cheap.
  for (const char* name : {"SB", "MP+fences"}) {
    const tso::LitmusShape& shape = tso::ShapeByName(name);
    tso::ExploreOptions opt;
    opt.max_runs = 200;
    RuntimeConfig scfg;
    scfg.segment.size_bytes = 1 << 20;
    scfg.host_workers = 1;
    const tso::ExploreResult serial =
        tso::Explore(Backend::kConsequenceIC, shape.litmus, scfg, opt);
    RuntimeConfig pcfg = scfg;
    pcfg.host_workers = 4;
    const tso::ExploreResult par =
        tso::Explore(Backend::kConsequenceIC, shape.litmus, pcfg, opt);
    EXPECT_EQ(serial.runs, par.runs) << name;
    EXPECT_TRUE(par.lww_violations.empty()) << name;
    EXPECT_TRUE(serial.outcomes == par.outcomes)
        << name << "\nserial: " << ToString(serial.outcomes)
        << "\nparallel: " << ToString(par.outcomes);
  }
}

TEST(EngineEquivalence, BatchedGrantLeaseToggleBitIdentical) {
  // The batched-grant lease (DESIGN.md §14) lets a floor holder re-enter
  // shared sections without touching the scheduler mutex while its virtual
  // time stays below the granted lease. Pure wall-clock machinery: with the
  // lease explicitly enabled AND explicitly disabled, every flavor × worker
  // count × jitter seed × off-floor toggle must reproduce the serial
  // reference bit-for-bit.
  const wl::WorkloadInfo* w = wl::FindWorkload("reverse_index");  // lock-heavy:
  ASSERT_NE(w, nullptr);                                          // floor churn
  wl::WlParams p;
  p.workers = 4;
  for (Backend be : {Backend::kConsequenceIC, Backend::kDThreads}) {
    for (u64 seed : {0ULL, 13ULL}) {
      const RunResult serial = MakeRuntime(be, BaseCfg(1, seed))->Run(wl::Bind(*w, p));
      for (u32 workers : {2u, 4u}) {
        for (bool lease : {true, false}) {
          for (bool offfloor : {true, false}) {
            RuntimeConfig cfg = BaseCfg(workers, seed);
            cfg.floor_lease = lease;
            cfg.segment.offfloor_commit = offfloor;
            const RunResult par = MakeRuntime(be, cfg)->Run(wl::Bind(*w, p));
            std::ostringstream label;
            label << "reverse_index " << BackendName(be) << " seed=" << seed
                  << " host_workers=" << workers << " lease=" << lease
                  << " offfloor=" << offfloor;
            ExpectResultsIdentical(serial, par, label.str());
            if (!lease) {
              // Lease disabled really means disabled: no fast-path hits.
              EXPECT_EQ(par.floor.lease_hits + par.floor.lazy_retains, 0u) << label.str();
            }
          }
        }
      }
    }
  }
}

// --- Sharded floor domains (DESIGN.md §14): conv-layer matrix ------------
//
// Two independent segments, two simulated threads each. In the sharded
// variant each segment gets its own floor domain and each thread's affinity
// is restricted to its segment's domain; in the unsharded variant everything
// competes for the global floor. Observer streams (recorded floor-held, so
// per-segment recording is race-free even when both domain floors are held
// concurrently) must be bit-identical per segment, and the canonical merged
// stream — sorted by the deterministic (vtime, domain, tid) rule — must be
// identical across serial reference, worker counts, and the sharding toggle.

struct CommitEvt {
  u64 vtime;
  u32 seg;
  u32 tid;
  u64 version;
  bool operator==(const CommitEvt& o) const {
    return vtime == o.vtime && seg == o.seg && tid == o.tid && version == o.version;
  }
};

std::string EvtString(const std::vector<CommitEvt>& evts) {
  std::ostringstream oss;
  for (const CommitEvt& e : evts) {
    oss << "(v=" << e.vtime << " seg=" << e.seg << " tid=" << e.tid << " ver=" << e.version
        << ")";
  }
  return oss.str();
}

struct ConvRun {
  std::vector<std::vector<CommitEvt>> per_seg;  // observer stream per segment
  std::vector<u64> final_vtimes;                // per simulated thread
  sim::EngineFloorStats floor;
  std::vector<sim::EngineDomainFloorStat> domain_floors;
  std::vector<std::string> races;  // CanonicalLines per segment
};

// Engine/segment knobs the equivalence matrix toggles on top of the topology
// arguments. All of them are required to be invisible in simulated results
// (lease, offfloor) or to change results identically on every substrate
// (jitter seed — each seeded universe gets its own serial reference).
struct ConvOpts {
  bool lease = true;       // SimConfig::floor_lease
  bool offfloor = true;    // SegmentConfig::offfloor_commit
  u32 jitter_bp = 0;       // CostModel::jitter_bp
  u64 jitter_seed = 0;     // CostModel::jitter_seed
};

ConvRun RunTwoSegmentConv(u32 host_workers, bool threaded, bool sharded, bool overlap_words,
                          const ConvOpts& opts = {}) {
  constexpr u32 kSegs = 2;
  constexpr u32 kPerSeg = 2;
  constexpr u32 kThreads = kSegs * kPerSeg;
  constexpr u32 kReps = 8;
  constexpr u32 kPages = 3;  // pages touched per commit

  sim::SimConfig sc;
  sc.host_workers = host_workers;
  sc.force_threaded = threaded;
  sc.floor_lease = opts.lease;
  sc.costs.jitter_bp = opts.jitter_bp;
  sc.costs.jitter_seed = opts.jitter_seed;
  sim::Engine eng(sc);

  std::vector<u32> dom(kSegs, sim::kGlobalFloorDomain);
  if (sharded) {
    dom[0] = eng.CreateFloorDomain("segA");
    dom[1] = eng.CreateFloorDomain("segB");
  }

  ConvRun out;
  out.per_seg.resize(kSegs);
  out.final_vtimes.resize(kThreads);
  std::vector<std::unique_ptr<conv::Segment>> segs;
  std::vector<std::unique_ptr<race::Analyzer>> analyzers;
  for (u32 s = 0; s < kSegs; ++s) {
    conv::SegmentConfig cfg;
    cfg.size_bytes = 1 << 20;
    cfg.floor_domain = dom[s];
    cfg.offfloor_commit = opts.offfloor;
    segs.push_back(std::make_unique<conv::Segment>(eng, cfg));
    conv::Segment& seg = *segs.back();
    seg.SetCommitObserver([&eng, &out, s](const conv::CommitRecord& rec) {
      out.per_seg[s].push_back(CommitEvt{eng.Now(), s, rec.tid, rec.version});
    });
    analyzers.push_back(std::make_unique<race::Analyzer>());
    analyzers.back()->SetPageSize(seg.PageSize());
    seg.SetRaceSink(analyzers.back().get());
  }

  std::vector<std::unique_ptr<conv::Workspace>> wss;
  for (u32 t = 0; t < kThreads; ++t) {
    wss.push_back(std::make_unique<conv::Workspace>(*segs[t / kPerSeg], t));
  }
  for (u32 t = 0; t < kThreads; ++t) {
    const u32 s = t / kPerSeg;
    const u32 lane = t % kPerSeg;
    eng.Spawn([&, t, s, lane] {
      conv::Workspace& w = *wss[t];
      const u32 page_size = segs[s]->PageSize();
      for (u32 rep = 0; rep < kReps; ++rep) {
        for (u32 p = 0; p < kPages; ++p) {
          // overlap_words: both lanes hammer the same words -> WW races.
          // Otherwise lanes write disjoint pages (clean streams).
          const u64 page = overlap_words ? p : lane * kPages + p;
          const u64 off = overlap_words ? 0 : lane * 8u;
          w.Store<u64>(page * page_size + off,
                       (static_cast<u64>(t) << 48) | (static_cast<u64>(rep) << 16) | p);
        }
        w.CommitAndUpdate();
        eng.EndShared();
      }
      out.final_vtimes[t] = eng.Now();
    });
    if (sharded) {
      eng.SetDomainAffinity(t, 1ULL << dom[s]);
    }
  }
  eng.Run();
  out.floor = eng.FloorStats();
  out.domain_floors = eng.DomainFloorStats();
  for (u32 s = 0; s < kSegs; ++s) {
    out.races.push_back(race::CanonicalLines(analyzers[s]->Finalize().records));
  }
  wss.clear();
  return out;
}

// The deterministic merge rule for cross-domain observer streams.
std::vector<CommitEvt> MergeByVtimeDomainTid(const ConvRun& r) {
  std::vector<CommitEvt> merged;
  for (const auto& stream : r.per_seg) {
    merged.insert(merged.end(), stream.begin(), stream.end());
  }
  std::sort(merged.begin(), merged.end(), [](const CommitEvt& a, const CommitEvt& b) {
    return std::tie(a.vtime, a.seg, a.tid) < std::tie(b.vtime, b.seg, b.tid);
  });
  return merged;
}

TEST(EngineEquivalence, ShardedDomainsMergeRuleBitIdentical) {
  // Serial unsharded run is the reference universe.
  const ConvRun ref = RunTwoSegmentConv(1, /*threaded=*/false, /*sharded=*/false,
                                        /*overlap_words=*/false);
  ASSERT_EQ(ref.per_seg[0].size(), 16u);  // 2 threads x 8 reps
  ASSERT_EQ(ref.per_seg[1].size(), 16u);
  const std::vector<CommitEvt> ref_merged = MergeByVtimeDomainTid(ref);

  struct Variant {
    u32 workers;
    bool threaded;
    bool sharded;
  };
  const Variant variants[] = {
      {1, false, true},   // serial engine: domains are pure annotation
      {1, true, false}, {1, true, true},
      {2, true, false}, {2, true, true},
      {4, true, false}, {4, true, true},
  };
  for (const Variant& v : variants) {
    const ConvRun run = RunTwoSegmentConv(v.workers, v.threaded, v.sharded,
                                          /*overlap_words=*/false);
    std::ostringstream label;
    label << "workers=" << v.workers << " threaded=" << v.threaded
          << " sharded=" << v.sharded;
    for (u32 s = 0; s < 2; ++s) {
      EXPECT_EQ(run.per_seg[s], ref.per_seg[s])
          << label.str() << " seg=" << s << "\nref: " << EvtString(ref.per_seg[s])
          << "\ngot: " << EvtString(run.per_seg[s]);
    }
    EXPECT_EQ(MergeByVtimeDomainTid(run), ref_merged) << label.str();
    EXPECT_EQ(run.final_vtimes, ref.final_vtimes) << label.str();
    if (v.sharded && v.threaded) {
      // The sharded grant rule really ran: both domains granted floors.
      ASSERT_EQ(run.domain_floors.size(), 3u) << label.str();
      EXPECT_GT(run.domain_floors[1].grants, 0u) << label.str();  // segA
      EXPECT_GT(run.domain_floors[2].grants, 0u) << label.str();  // segB
    }
  }
}

TEST(EngineEquivalence, LeaseComposesWithShardedDomains) {
  // §16's per-domain lease rule: floor leases stay enabled under sharded
  // domains, with cross-domain admissions clamped. This matrix pins, for
  // every (jitter universe × offfloor) pair, that serial / threaded × worker
  // counts × lease-on/off × sharded all produce byte-identical observer
  // streams, merged cross-domain stream, and final per-thread vtimes — and
  // that when sharded + threaded + lease the per-domain lease machinery
  // actually engaged (lease_hits > 0 in both sharded domains).
  struct JitterCfg {
    u32 bp;
    u64 seed;
  };
  const JitterCfg jitters[] = {{0, 0}, {500, 1}, {500, 99}};
  for (const JitterCfg& j : jitters) {
    for (bool offfloor : {false, true}) {
      ConvOpts ref_opts;
      ref_opts.offfloor = offfloor;
      ref_opts.jitter_bp = j.bp;
      ref_opts.jitter_seed = j.seed;
      // Serial unsharded run defines this jitter universe's reference.
      const ConvRun ref = RunTwoSegmentConv(1, /*threaded=*/false, /*sharded=*/false,
                                            /*overlap_words=*/false, ref_opts);
      const std::vector<CommitEvt> ref_merged = MergeByVtimeDomainTid(ref);
      for (u32 workers : {1u, 2u, 4u}) {
        for (bool lease : {false, true}) {
          ConvOpts opts = ref_opts;
          opts.lease = lease;
          const ConvRun run = RunTwoSegmentConv(workers, /*threaded=*/true,
                                                /*sharded=*/true,
                                                /*overlap_words=*/false, opts);
          std::ostringstream label;
          label << "workers=" << workers << " lease=" << lease << " offfloor=" << offfloor
                << " jitter_bp=" << j.bp << " seed=" << j.seed;
          for (u32 s = 0; s < 2; ++s) {
            EXPECT_EQ(run.per_seg[s], ref.per_seg[s])
                << label.str() << " seg=" << s << "\nref: " << EvtString(ref.per_seg[s])
                << "\ngot: " << EvtString(run.per_seg[s]);
          }
          EXPECT_EQ(MergeByVtimeDomainTid(run), ref_merged) << label.str();
          EXPECT_EQ(run.final_vtimes, ref.final_vtimes) << label.str();
          ASSERT_EQ(run.domain_floors.size(), 3u) << label.str();
          EXPECT_GT(run.domain_floors[1].grants, 0u) << label.str();  // segA
          EXPECT_GT(run.domain_floors[2].grants, 0u) << label.str();  // segB
          if (lease) {
            // Per-domain leases engaged inside each sharded domain.
            EXPECT_GT(run.domain_floors[1].lease_hits, 0u) << label.str();
            EXPECT_GT(run.domain_floors[2].lease_hits, 0u) << label.str();
          } else {
            // Lease off: the fast path must never fire.
            EXPECT_EQ(run.floor.lease_hits + run.floor.lazy_retains, 0u) << label.str();
            EXPECT_EQ(run.domain_floors[1].lease_hits, 0u) << label.str();
            EXPECT_EQ(run.domain_floors[2].lease_hits, 0u) << label.str();
          }
        }
      }
    }
  }
}

TEST(EngineEquivalence, RaceAnalyzerIdenticalAcrossShardedFloors) {
  // Overlapping same-word writes inside each segment produce WW race records;
  // the analyzer's canonical report must be byte-identical whether the two
  // segments share the global floor or run on sharded domains, at every
  // worker count.
  const ConvRun ref = RunTwoSegmentConv(1, /*threaded=*/false, /*sharded=*/false,
                                        /*overlap_words=*/true);
  for (const std::string& lines : ref.races) {
    EXPECT_FALSE(lines.empty()) << "workload produced no races; test is vacuous";
  }
  struct Variant {
    u32 workers;
    bool sharded;
  };
  for (const Variant& v :
       {Variant{1, true}, Variant{2, false}, Variant{2, true}, Variant{4, false},
        Variant{4, true}}) {
    const ConvRun run = RunTwoSegmentConv(v.workers, /*threaded=*/true, v.sharded,
                                          /*overlap_words=*/true);
    std::ostringstream label;
    label << "workers=" << v.workers << " sharded=" << v.sharded;
    for (u32 s = 0; s < 2; ++s) {
      EXPECT_EQ(run.races[s], ref.races[s]) << label.str() << " seg=" << s;
    }
    for (u32 s = 0; s < 2; ++s) {
      EXPECT_EQ(run.per_seg[s], ref.per_seg[s]) << label.str() << " seg=" << s;
    }
  }
}

}  // namespace
}  // namespace csq::rt
