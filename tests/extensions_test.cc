// Tests for the extension features: Kendo-style polling locks (§4.1
// ablation), the deterministic shared heap, and schedule recording/diffing.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/rt/api.h"
#include "src/rt/schedule_recorder.h"
#include "src/rt/shared_heap.h"
#include "src/util/rng.h"

namespace csq::rt {
namespace {

RuntimeConfig Cfg(u32 n) {
  RuntimeConfig cfg;
  cfg.nthreads = n;
  cfg.segment.size_bytes = 4 << 20;
  return cfg;
}

// ---- Kendo polling locks ------------------------------------------------------

TEST(PollingLocks, MutualExclusionAndCorrectness) {
  RuntimeConfig cfg = Cfg(4);
  cfg.kendo_polling_locks = true;
  const RunResult r = MakeRuntime(Backend::kConsequenceIC, cfg)->Run([](ThreadApi& api) {
    const MutexId m = api.CreateMutex();
    const u64 c = api.SharedAlloc(8);
    std::vector<ThreadHandle> hs;
    for (u32 w = 0; w < 4; ++w) {
      hs.push_back(api.SpawnThread([=](ThreadApi& t) {
        for (int i = 0; i < 25; ++i) {
          t.Work(300);
          t.Lock(m);
          t.Store<u64>(c, t.Load<u64>(c) + 1);
          t.Unlock(m);
        }
      }));
    }
    for (auto h : hs) {
      api.JoinThread(h);
    }
    return api.Load<u64>(c);
  });
  EXPECT_EQ(r.checksum, 100u);
}

TEST(PollingLocks, DeterministicAcrossJitterSeeds) {
  const WorkloadFn fn = [](ThreadApi& api) {
    const MutexId m = api.CreateMutex();
    const u64 log = api.SharedAlloc(8 * 64);
    const u64 len = api.SharedAlloc(8);
    std::vector<ThreadHandle> hs;
    for (u32 w = 0; w < 3; ++w) {
      hs.push_back(api.SpawnThread([=](ThreadApi& t) {
        for (int i = 0; i < 10; ++i) {
          t.Work(111 * (t.Tid() + 1));
          t.Lock(m);
          const u64 n = t.Load<u64>(len);
          t.Store<u64>(log + 8 * n, t.Tid());
          t.Store<u64>(len, n + 1);
          t.Unlock(m);
        }
      }));
    }
    for (auto h : hs) {
      api.JoinThread(h);
    }
    u64 d = 0;
    for (u64 i = 0; i < api.Load<u64>(len); ++i) {
      d = d * 31 + api.Load<u64>(log + 8 * i);
    }
    return d;
  };
  u64 ref = 0;
  for (u64 seed : {0ULL, 9ULL, 42ULL}) {
    RuntimeConfig cfg = Cfg(3);
    cfg.kendo_polling_locks = true;
    cfg.costs.jitter_bp = 1000;
    cfg.costs.jitter_seed = seed;
    const u64 sum = MakeRuntime(Backend::kConsequenceIC, cfg)->Run(fn).checksum;
    if (seed == 0) {
      ref = sum;
    } else {
      EXPECT_EQ(sum, ref) << "seed " << seed;
    }
  }
}

TEST(PollingLocks, BlockingBeatsMistunedPollingUnderContention) {
  const WorkloadFn fn = [](ThreadApi& api) {
    const MutexId m = api.CreateMutex();
    std::vector<ThreadHandle> hs;
    for (u32 w = 0; w < 4; ++w) {
      hs.push_back(api.SpawnThread([=](ThreadApi& t) {
        for (int i = 0; i < 15; ++i) {
          t.Lock(m);
          t.Work(6000);  // long critical section
          t.Unlock(m);
          t.Work(200);
        }
      }));
    }
    for (auto h : hs) {
      api.JoinThread(h);
    }
    return u64{1};
  };
  RuntimeConfig blocking = Cfg(4);
  blocking.adaptive_coarsening = false;
  RuntimeConfig polling = blocking;
  polling.kendo_polling_locks = true;
  polling.kendo_poll_increment = 50;  // mistuned: far below the CS length
  const u64 vt_block = MakeRuntime(Backend::kConsequenceIC, blocking)->Run(fn).vtime;
  const u64 vt_poll = MakeRuntime(Backend::kConsequenceIC, polling)->Run(fn).vtime;
  EXPECT_LT(vt_block, vt_poll);
}

// ---- SharedHeap -----------------------------------------------------------------

TEST(SharedHeap, AllocationsAreDisjointAndUsable) {
  MakeRuntime(Backend::kConsequenceIC, Cfg(1))->Run([](ThreadApi& api) {
    SharedHeap heap(api, 1 << 20);
    std::vector<u64> ptrs;
    for (usize n : {1u, 8u, 16u, 17u, 100u, 4096u, 65536u}) {
      const u64 p = heap.Malloc(api, n);
      // Write the whole usable size; no overlap with other blocks.
      for (usize i = 0; i + 8 <= SharedHeap::UsableSize(n); i += 8) {
        api.Store<u64>(p + i, 0x5a5a5a5a00ULL + i);
      }
      ptrs.push_back(p);
    }
    // All payloads intact after every block was filled.
    for (usize k = 0; k < ptrs.size(); ++k) {
      EXPECT_EQ(api.Load<u64>(ptrs[k]), 0x5a5a5a5a00ULL);
    }
    return u64{0};
  });
}

TEST(SharedHeap, FreeRecyclesSameClass) {
  MakeRuntime(Backend::kConsequenceIC, Cfg(1))->Run([](ThreadApi& api) {
    SharedHeap heap(api, 1 << 20);
    const u64 a = heap.Malloc(api, 100);
    heap.Free(api, a);
    const u64 b = heap.Malloc(api, 100);  // same class: must reuse
    EXPECT_EQ(a, b);
    const u64 c = heap.Malloc(api, 100);  // list empty: fresh block
    EXPECT_NE(b, c);
    return u64{0};
  });
}

TEST(SharedHeap, UsableSizeClasses) {
  EXPECT_EQ(SharedHeap::UsableSize(1), 16u);
  EXPECT_EQ(SharedHeap::UsableSize(16), 16u);
  EXPECT_EQ(SharedHeap::UsableSize(17), 32u);
  EXPECT_EQ(SharedHeap::UsableSize(4096), 4096u);
  EXPECT_EQ(SharedHeap::UsableSize(4097), 8192u);
}

TEST(SharedHeap, ConcurrentAllocFreeIsDeterministicAcrossBackends) {
  const WorkloadFn fn = [](ThreadApi& api) {
    SharedHeap heap(api, 2 << 20);
    const u64 sum_addr = api.SharedAlloc(8);
    std::vector<ThreadHandle> hs;
    for (u32 w = 0; w < 4; ++w) {
      hs.push_back(api.SpawnThread([&heap, sum_addr](ThreadApi& t) {
        DetRng rng(t.Tid());
        std::vector<u64> mine;
        u64 acc = 0;
        for (int i = 0; i < 30; ++i) {
          t.Work(150);
          if (!mine.empty() && rng.Below(3) == 0) {
            heap.Free(t, mine.back());
            mine.pop_back();
          } else {
            const u64 p = heap.Malloc(t, 8 + rng.Below(200));
            t.Store<u64>(p, t.Tid() * 1000 + static_cast<u64>(i));
            acc += t.Load<u64>(p);
            mine.push_back(p);
          }
        }
        t.Lock(0);  // heap's mutex is id 0 (first created)
        t.Store<u64>(sum_addr, t.Load<u64>(sum_addr) + acc);
        t.Unlock(0);
      }));
    }
    for (auto h : hs) {
      api.JoinThread(h);
    }
    return api.Load<u64>(sum_addr);
  };
  // Per-backend determinism (addresses differ across backends' schedules, but
  // the commutative digest must match pthreads since the program is race-free).
  std::set<u64> per_backend;
  for (Backend b : {Backend::kPthreads, Backend::kDThreads, Backend::kDwc,
                    Backend::kConsequenceRR, Backend::kConsequenceIC}) {
    const u64 a = MakeRuntime(b, Cfg(4))->Run(fn).checksum;
    const u64 c = MakeRuntime(b, Cfg(4))->Run(fn).checksum;
    EXPECT_EQ(a, c) << BackendName(b);
    per_backend.insert(a);
  }
  EXPECT_EQ(per_backend.size(), 1u) << "commutative digest should agree across backends";
}

// ---- ScheduleRecorder -------------------------------------------------------------

TEST(ScheduleRecorder, IdenticalRunsProduceIdenticalSchedules) {
  const WorkloadFn fn = [](ThreadApi& api) {
    const MutexId m = api.CreateMutex();
    const BarrierId b = api.CreateBarrier(2);
    std::vector<ThreadHandle> hs;
    for (u32 w = 0; w < 2; ++w) {
      hs.push_back(api.SpawnThread([=](ThreadApi& t) {
        for (int i = 0; i < 5; ++i) {
          t.Work(100 * (t.Tid() + 1));
          t.Lock(m);
          t.Unlock(m);
          t.BarrierWait(b);
        }
      }));
    }
    for (auto h : hs) {
      api.JoinThread(h);
    }
    return u64{0};
  };
  ScheduleRecorder rec1, rec2;
  RuntimeConfig cfg = Cfg(2);
  cfg.observer = &rec1;
  MakeRuntime(Backend::kConsequenceIC, cfg)->Run(fn);
  cfg.observer = &rec2;
  cfg.costs.jitter_bp = 1500;
  cfg.costs.jitter_seed = 77;
  MakeRuntime(Backend::kConsequenceIC, cfg)->Run(fn);
  EXPECT_GT(rec1.Events().size(), 20u);
  EXPECT_EQ(FirstDivergence(rec1.Events(), rec2.Events()), std::nullopt);
}

TEST(ScheduleRecorder, DivergenceIsLocatedAndDescribed) {
  std::vector<SchedEvent> a = {
      {SchedEvent::Kind::kAcquire, 1, SyncObjId(SyncObjKind::kMutex, 0), 0},
      {SchedEvent::Kind::kRelease, 1, SyncObjId(SyncObjKind::kMutex, 0), 0},
      {SchedEvent::Kind::kAcquire, 2, SyncObjId(SyncObjKind::kMutex, 0), 0},
  };
  std::vector<SchedEvent> b = a;
  b[2].tid = 3;  // a different thread won the lock
  const auto div = FirstDivergence(a, b);
  ASSERT_TRUE(div.has_value());
  EXPECT_EQ(div->index, 2u);
  EXPECT_NE(div->left.find("tid=2"), std::string::npos);
  EXPECT_NE(div->right.find("tid=3"), std::string::npos);
  EXPECT_NE(div->left.find("mutex:0"), std::string::npos);

  // Prefix case.
  b = a;
  b.pop_back();
  const auto tail = FirstDivergence(a, b);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->index, 2u);
  EXPECT_EQ(tail->right, "<end>");

  EXPECT_EQ(FirstDivergence(a, a), std::nullopt);
}

TEST(ScheduleRecorder, PthreadsSchedulesDivergeUnderJitter) {
  // The recorder + differ catch real nondeterminism: record the pthreads
  // backend under two jitter seeds — the lock-grant order differs and the
  // differ pinpoints where. (pthreads emits no observer events, so we record
  // Consequence with two *different* workloads as a proxy of a detectable
  // difference instead.)
  const auto make_fn = [](u64 skew) -> WorkloadFn {
    return [skew](ThreadApi& api) {
      const MutexId m = api.CreateMutex();
      std::vector<ThreadHandle> hs;
      for (u32 w = 0; w < 2; ++w) {
        hs.push_back(api.SpawnThread([=](ThreadApi& t) {
          t.Work(t.Tid() == 1 ? 100 + skew : 100);
          t.Lock(m);
          t.Unlock(m);
        }));
      }
      for (auto h : hs) {
        api.JoinThread(h);
      }
      return u64{0};
    };
  };
  ScheduleRecorder rec1, rec2;
  RuntimeConfig cfg = Cfg(2);
  cfg.observer = &rec1;
  MakeRuntime(Backend::kConsequenceIC, cfg)->Run(make_fn(0));
  cfg.observer = &rec2;
  MakeRuntime(Backend::kConsequenceIC, cfg)->Run(make_fn(100000));
  const auto div = FirstDivergence(rec1.Events(), rec2.Events());
  ASSERT_TRUE(div.has_value());  // different programs -> different schedules
}

}  // namespace
}  // namespace csq::rt
