// Randomized cross-backend semantic fuzzing.
//
// A seeded generator builds valid-by-construction multithreaded programs
// (disjoint-region stores, commutative lock-protected reductions, balanced
// barrier rounds, nested spawn/join) and runs each on all five backends:
//
//   * race-free programs must produce identical checksums on EVERY backend
//     (pthreads included) — the memory model implementations agree;
//   * every deterministic backend must be jitter-invariant on every program,
//     including the racy variants (arbitrary overlapping stores).
//
// Each seed generates a different program shape; the sweep runs 12 seeds x
// both variants by default, and CSQ_FUZZ_SEEDS=N promotes it to a long
// N-seed campaign (nightly CI runs 96). This is the repository's strongest
// integration check: any divergence in commit/merge/update/lock semantics
// between the runtimes surfaces here as a checksum mismatch — and a failing
// program is greedily shrunk to a minimal op list before being reported.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/rt/api.h"
#include "src/util/hash.h"
#include "src/util/rng.h"

namespace csq::rt {
namespace {

struct FuzzParams {
  u64 seed;
  bool racy;
};

// One generated worker op.
struct Op {
  enum class Kind : u8 { kWork, kStore, kLockedAdd, kLockedXor, kRacyStore };
  Kind kind{};
  u64 a = 0;  // work units / address / cell index
  u64 b = 0;  // value
  u32 lock = 0;
};

struct Program {
  u32 workers = 0;
  u32 rounds = 0;
  u32 nlocks = 0;
  u32 ncells = 0;                            // lock-protected shared cells
  std::vector<std::vector<std::vector<Op>>>  // [worker][round] -> ops
      ops;
};

Program Generate(u64 seed, bool racy) {
  DetRng rng(seed * 7919 + (racy ? 1 : 0));
  Program p;
  p.workers = 2 + static_cast<u32>(rng.Below(5));  // 2..6
  p.rounds = 1 + static_cast<u32>(rng.Below(4));   // 1..4 barrier rounds
  p.nlocks = 1 + static_cast<u32>(rng.Below(4));
  p.ncells = 4 + static_cast<u32>(rng.Below(8));
  p.ops.resize(p.workers);
  for (u32 w = 0; w < p.workers; ++w) {
    p.ops[w].resize(p.rounds);
    for (u32 r = 0; r < p.rounds; ++r) {
      const u32 n = 3 + static_cast<u32>(rng.Below(10));
      for (u32 i = 0; i < n; ++i) {
        Op op;
        switch (rng.Below(racy ? 5 : 4)) {
          case 0:
            op.kind = Op::Kind::kWork;
            op.a = 50 + rng.Below(3000);
            break;
          case 1:
            op.kind = Op::Kind::kStore;  // disjoint region write
            op.a = rng.Below(120);       // offset within the worker's region
            op.b = rng.Next();
            break;
          case 2:
          case 3:
            // Each cell has a fixed reduction operator (add XOR xor — mixing
            // the two on one cell would make the result order-dependent even
            // in a race-free program) and a fixed owning lock.
            op.a = rng.Below(p.ncells);
            op.kind = (op.a % 2 == 0) ? Op::Kind::kLockedAdd : Op::Kind::kLockedXor;
            op.b = (op.a % 2 == 0) ? rng.Below(1 << 20) : rng.Next();
            op.lock = static_cast<u32>(op.a % p.nlocks);
            break;
          default:
            op.kind = Op::Kind::kRacyStore;  // anywhere in the shared scratch
            op.a = rng.Below(512);
            op.b = rng.Next();
            break;
        }
        p.ops[w][r].push_back(op);
      }
    }
  }
  return p;
}

// Materializes the generated program against the ThreadApi.
u64 RunProgram(ThreadApi& api, const Program& p) {
  const u64 regions = api.SharedAlloc(p.workers * 1024, 4096);  // disjoint per-worker
  const u64 cells = api.SharedAlloc(p.ncells * 8, 4096);
  const u64 scratch = api.SharedAlloc(512 * 8, 4096);  // racy target
  std::vector<MutexId> locks;
  for (u32 l = 0; l < p.nlocks; ++l) {
    locks.push_back(api.CreateMutex());
  }
  const BarrierId bar = api.CreateBarrier(p.workers);
  std::vector<ThreadHandle> hs;
  for (u32 w = 0; w < p.workers; ++w) {
    hs.push_back(api.SpawnThread([&, w](ThreadApi& t) {
      for (u32 r = 0; r < p.rounds; ++r) {
        for (const Op& op : p.ops[w][r]) {
          switch (op.kind) {
            case Op::Kind::kWork:
              t.Work(op.a);
              break;
            case Op::Kind::kStore:
              t.Store<u64>(regions + w * 1024 + op.a * 8, op.b);
              break;
            case Op::Kind::kLockedAdd:
              t.Lock(locks[op.lock]);
              t.Store<u64>(cells + op.a * 8, t.Load<u64>(cells + op.a * 8) + op.b);
              t.Unlock(locks[op.lock]);
              break;
            case Op::Kind::kLockedXor:
              t.Lock(locks[op.lock]);
              t.Store<u64>(cells + op.a * 8, t.Load<u64>(cells + op.a * 8) ^ op.b);
              t.Unlock(locks[op.lock]);
              break;
            case Op::Kind::kRacyStore:
              t.Store<u64>(scratch + op.a * 8, op.b);
              break;
          }
        }
        t.BarrierWait(bar);
      }
    }));
  }
  for (ThreadHandle h : hs) {
    api.JoinThread(h);
  }
  Fnv1a digest;
  for (u64 i = 0; i < p.workers * 128; ++i) {
    digest.Mix(api.Load<u64>(regions + 8 * i));
  }
  for (u64 i = 0; i < p.ncells; ++i) {
    digest.Mix(api.Load<u64>(cells + 8 * i));
  }
  for (u64 i = 0; i < 512; ++i) {
    digest.Mix(api.Load<u64>(scratch + 8 * i));
  }
  return digest.Digest();
}

RunResult RunOn(Backend b, const Program& p, u64 jitter_seed = 0, u32 jitter_bp = 0) {
  RuntimeConfig cfg;
  cfg.nthreads = p.workers;
  cfg.segment.size_bytes = 4 << 20;
  cfg.costs.jitter_seed = jitter_seed;
  cfg.costs.jitter_bp = jitter_bp;
  return MakeRuntime(b, cfg)->Run([&p](ThreadApi& api) { return RunProgram(api, p); });
}

// Runs every cross-backend check on `p`, returning the first failure (or
// nullopt). Factored out of the test body so the shrinker can re-evaluate
// mutated programs.
std::optional<std::string> CheckProgram(const Program& p, bool racy) {
  // The locked cells use only commutative ops (add/xor), so even different
  // lock-grant orders yield identical final cell values; race-free programs
  // must therefore agree across all five backends.
  const u64 pthreads = RunOn(Backend::kPthreads, p).checksum;
  for (Backend b : {Backend::kDThreads, Backend::kDwc, Backend::kConsequenceRR,
                    Backend::kConsequenceIC}) {
    const u64 base = RunOn(b, p).checksum;
    if (!racy && base != pthreads) {
      std::ostringstream os;
      os << BackendName(b) << " disagrees with pthreads (" << base << " vs " << pthreads
         << ")";
      return os.str();
    }
    // Jitter invariance for every generated program, racy or not.
    for (u64 jseed : {31, 77}) {
      const u64 jittered = RunOn(b, p, jseed, 1200).checksum;
      if (jittered != base) {
        std::ostringstream os;
        os << BackendName(b) << " not jitter-invariant at jitter seed " << jseed << " ("
           << jittered << " vs " << base << ")";
        return os.str();
      }
    }
  }
  return std::nullopt;
}

const char* OpName(Op::Kind k) {
  switch (k) {
    case Op::Kind::kWork:
      return "work";
    case Op::Kind::kStore:
      return "store";
    case Op::Kind::kLockedAdd:
      return "locked-add";
    case Op::Kind::kLockedXor:
      return "locked-xor";
    case Op::Kind::kRacyStore:
      return "racy-store";
  }
  return "?";
}

std::string Describe(const Program& p) {
  std::ostringstream os;
  os << "workers=" << p.workers << " rounds=" << p.rounds << " nlocks=" << p.nlocks
     << " ncells=" << p.ncells << "\n";
  for (u32 w = 0; w < p.workers; ++w) {
    for (u32 r = 0; r < p.rounds; ++r) {
      os << "  w" << w << " r" << r << ":";
      for (const Op& op : p.ops[w][r]) {
        os << " " << OpName(op.kind) << "(a=" << op.a << ",b=" << op.b;
        if (op.kind == Op::Kind::kLockedAdd || op.kind == Op::Kind::kLockedXor) {
          os << ",lock=" << op.lock;
        }
        os << ")";
      }
      os << "\n";
    }
  }
  return os.str();
}

u64 OpCount(const Program& p) {
  u64 n = 0;
  for (const auto& w : p.ops) {
    for (const auto& r : w) {
      n += r.size();
    }
  }
  return n;
}

// Greedy shrink: repeatedly try structural reductions (drop a worker, drop a
// round, drop a single op), keeping any mutation under which the failure
// persists, until a fixpoint or the evaluation budget runs out. Returns the
// minimal failing program.
Program Shrink(Program p, bool racy, u32 budget = 400) {
  auto still_fails = [&](const Program& cand) {
    if (budget == 0) {
      return false;
    }
    --budget;
    return CheckProgram(cand, racy).has_value();
  };
  bool progress = true;
  while (progress && budget > 0) {
    progress = false;
    for (u32 w = 0; p.workers > 1 && w < p.workers; ++w) {
      Program cand = p;
      cand.ops.erase(cand.ops.begin() + w);
      --cand.workers;
      if (still_fails(cand)) {
        p = std::move(cand);
        progress = true;
        break;
      }
    }
    for (u32 r = 0; p.rounds > 1 && r < p.rounds; ++r) {
      Program cand = p;
      for (auto& ops : cand.ops) {
        ops.erase(ops.begin() + r);
      }
      --cand.rounds;
      if (still_fails(cand)) {
        p = std::move(cand);
        progress = true;
        break;
      }
    }
    for (u32 w = 0; w < p.workers && !progress; ++w) {
      for (u32 r = 0; r < p.rounds && !progress; ++r) {
        for (usize i = 0; i < p.ops[w][r].size(); ++i) {
          Program cand = p;
          cand.ops[w][r].erase(cand.ops[w][r].begin() + static_cast<i64>(i));
          if (still_fails(cand)) {
            p = std::move(cand);
            progress = true;
            break;
          }
        }
      }
    }
  }
  return p;
}

class FuzzSweep : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(FuzzSweep, RaceFreeProgramsAgreeEverywhereRacyOnesAreStillDeterministic) {
  const FuzzParams fp = GetParam();
  const Program p = Generate(fp.seed, fp.racy);
  const std::optional<std::string> failure = CheckProgram(p, fp.racy);
  if (!failure) {
    return;
  }
  const Program min = Shrink(p, fp.racy);
  const std::optional<std::string> min_failure = CheckProgram(min, fp.racy);
  ADD_FAILURE() << "seed " << fp.seed << (fp.racy ? " (racy)" : " (clean)") << ": " << *failure
                << "\nshrunk from " << OpCount(p) << " to " << OpCount(min)
                << " ops; minimal failing program ("
                << (min_failure ? *min_failure : *failure) << "):\n" << Describe(min);
}

// Sweep size: 12 seeds by default; CSQ_FUZZ_SEEDS=N promotes the sweep to a
// long fuzzing campaign (both variants per seed).
std::vector<FuzzParams> MakeSweep() {
  u64 nseeds = 12;
  if (const char* env = std::getenv("CSQ_FUZZ_SEEDS")) {
    const long v = std::atol(env);
    if (v > 0) {
      nseeds = static_cast<u64>(v);
    }
  }
  std::vector<FuzzParams> out;
  for (u64 seed = 1; seed <= nseeds; ++seed) {
    out.push_back({seed, false});
    out.push_back({seed, true});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::ValuesIn(MakeSweep()),
                         [](const ::testing::TestParamInfo<FuzzParams>& info) {
                           return std::string(info.param.racy ? "racy" : "clean") + "_s" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace csq::rt
