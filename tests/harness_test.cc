// Tests for the experiment harness plus qualitative "paper claims" guards:
// the orderings the reproduction must preserve (who beats whom, where) are
// asserted here so a regression in the runtime or calibration shows up as a
// test failure, not just as a changed bench table.
#include <gtest/gtest.h>

#include <cstdlib>

#include "src/harness/harness.h"
#include "src/lrc/lrc_model.h"

namespace csq::harness {
namespace {

TEST(Harness, ThreadCountsHonourQuickEnv) {
  setenv("CSQ_QUICK", "1", 1);
  EXPECT_EQ(ThreadCounts(), (std::vector<u32>{2, 4, 8}));
  unsetenv("CSQ_QUICK");
  EXPECT_EQ(ThreadCounts(), (std::vector<u32>{2, 4, 8, 16, 32}));
}

TEST(Harness, BestOverThreadsPicksMinimum) {
  const wl::WorkloadInfo* w = wl::FindWorkload("histogram");
  ASSERT_NE(w, nullptr);
  const BestResult best = BestOverThreads(*w, rt::Backend::kPthreads, {2, 4});
  const rt::RunResult at2 = RunOne(*w, rt::Backend::kPthreads, 2);
  const rt::RunResult at4 = RunOne(*w, rt::Backend::kPthreads, 4);
  EXPECT_EQ(best.vtime, std::min(at2.vtime, at4.vtime));
  EXPECT_TRUE(best.at_threads == 2 || best.at_threads == 4);
}

TEST(Harness, SlowdownAndGeoMean) {
  EXPECT_DOUBLE_EQ(Slowdown(300, 100), 3.0);
  EXPECT_NEAR(GeoMean({2.0, 8.0}), 4.0, 1e-9);
  EXPECT_NEAR(GeoMean({1.0, 1.0, 1.0}), 1.0, 1e-9);
}

// ---- Paper-claim guards (qualitative shapes that must not regress) ----------

TEST(PaperClaims, ConsequenceBeatsDThreadsAndDwcOnHardBenchmarks) {
  for (const char* name : {"ferret", "water_nsquared", "reverse_index"}) {
    const wl::WorkloadInfo* w = wl::FindWorkload(name);
    const u64 dt = RunOne(*w, rt::Backend::kDThreads, 8).vtime;
    const u64 dwc = RunOne(*w, rt::Backend::kDwc, 8).vtime;
    const u64 ic = RunOne(*w, rt::Backend::kConsequenceIC, 8).vtime;
    EXPECT_LT(ic, dwc) << name;
    EXPECT_LT(dwc, dt) << name;
  }
}

TEST(PaperClaims, AsyncCommitsBeatSyncCommits) {
  // DWC (Conversion's asynchronous incremental commits) must beat DThreads
  // (synchronous discard-everything fences) on barrier-heavy programs.
  for (const char* name : {"ocean_cp", "lu_ncb", "canneal"}) {
    const wl::WorkloadInfo* w = wl::FindWorkload(name);
    EXPECT_LT(RunOne(*w, rt::Backend::kDwc, 8).vtime,
              RunOne(*w, rt::Backend::kDThreads, 8).vtime)
        << name;
  }
}

TEST(PaperClaims, EmbarrassinglyParallelProgramsStayCheap) {
  // §5: "many of the benchmarks are embarrassingly parallel and offer little
  // insight" — Consequence must keep them under ~2.5x of pthreads.
  for (const char* name : {"histogram", "string_match", "matrix_multiply", "pca"}) {
    const wl::WorkloadInfo* w = wl::FindWorkload(name);
    const u64 pt = RunOne(*w, rt::Backend::kPthreads, 8).vtime;
    const u64 ic = RunOne(*w, rt::Backend::kConsequenceIC, 8).vtime;
    EXPECT_LT(Slowdown(ic, pt), 2.5) << name;
  }
}

TEST(PaperClaims, ParallelBarrierHelpsBarrierHeavyPrograms) {
  const wl::WorkloadInfo* w = wl::FindWorkload("canneal");
  rt::RuntimeConfig serial = DefaultConfig(8);
  serial.parallel_barrier_commit = false;
  const u64 with = RunOne(*w, rt::Backend::kConsequenceIC, 8).vtime;
  const u64 without = RunOne(*w, rt::Backend::kConsequenceIC, 8, &serial).vtime;
  EXPECT_LT(with, without);
}

TEST(PaperClaims, CoarseningRescuesFineGrainedLocking) {
  // §6/water_nsquared: fine-grained locks with short chunks are the worst case
  // for per-op global coordination; coarsening must recover a large factor.
  const wl::WorkloadInfo* w = wl::FindWorkload("water_nsquared");
  rt::RuntimeConfig off = DefaultConfig(8);
  off.adaptive_coarsening = false;
  off.static_coarsen_level = 0;
  const u64 with = RunOne(*w, rt::Backend::kConsequenceIC, 8).vtime;
  const u64 without = RunOne(*w, rt::Backend::kConsequenceIC, 8, &off).vtime;
  EXPECT_GT(static_cast<double>(without) / static_cast<double>(with), 3.0);
}

TEST(PaperClaims, IcOrderingBeatsRoundRobinUnderMismatchedSyncRates) {
  // Figure 1's scenario, asserted quantitatively. Chunks are sized well above
  // the per-lock commit/library overhead and the §3.2 publication period so
  // the sync-rate mismatch (and not fixed per-op costs or publication lag)
  // dominates the comparison — the regime the paper's figure depicts.
  const rt::WorkloadFn fn = [](rt::ThreadApi& api) {
    const rt::MutexId ma = api.CreateMutex();
    const rt::MutexId mb = api.CreateMutex();
    std::vector<rt::ThreadHandle> hs;
    hs.push_back(api.SpawnThread([=](rt::ThreadApi& t) {
      for (int i = 0; i < 60; ++i) {
        t.Work(5000);
        t.Lock(ma);
        t.Unlock(ma);
      }
    }));
    hs.push_back(api.SpawnThread([=](rt::ThreadApi& t) {
      for (int i = 0; i < 6; ++i) {
        t.Work(50000);
        t.Lock(mb);
        t.Unlock(mb);
      }
    }));
    for (auto h : hs) {
      api.JoinThread(h);
    }
    return u64{1};
  };
  rt::RuntimeConfig cfg = DefaultConfig(2);
  const u64 rr = rt::MakeRuntime(rt::Backend::kConsequenceRR, cfg)->Run(fn).vtime;
  const u64 ic = rt::MakeRuntime(rt::Backend::kConsequenceIC, cfg)->Run(fn).vtime;
  EXPECT_LT(ic, rr);
}

TEST(PaperClaims, LrcSavesLittleOnBarrierHeavySharing) {
  // §5.3 / Fig 16: barriers propagate globally under any consistency model.
  lrc::LrcModel model;
  rt::RuntimeConfig cfg = DefaultConfig(8);
  cfg.observer = &model;
  const wl::WorkloadInfo* w = wl::FindWorkload("ocean_cp");
  const rt::RunResult r = RunOne(*w, rt::Backend::kConsequenceIC, 8, &cfg);
  ASSERT_GT(r.pages_propagated, 0u);
  const double ratio = static_cast<double>(model.PagesPropagated()) /
                       static_cast<double>(r.pages_propagated);
  EXPECT_GT(ratio, 0.75);  // little to gain from LRC here
}

}  // namespace
}  // namespace csq::harness
