// Tests for the LRC what-if model: happens-before visibility, deduplication,
// point-to-point vs global propagation, and integration with the runtime.
#include <gtest/gtest.h>

#include "src/lrc/lrc_model.h"
#include "src/rt/api.h"

namespace csq::lrc {
namespace {

using rt::SyncObjId;
using rt::SyncObjKind;

u64 Mx(u64 id) { return SyncObjId(SyncObjKind::kMutex, id); }

TEST(LrcModel, PagesFlowAlongHappensBefore) {
  LrcModel m;
  m.OnCommit(0, {1, 2, 3});
  m.OnRelease(0, Mx(0));
  m.OnAcquire(1, Mx(0));
  EXPECT_EQ(m.PagesPropagated(), 3u);
}

TEST(LrcModel, NoFlowWithoutRelease) {
  LrcModel m;
  m.OnCommit(0, {1, 2});
  m.OnAcquire(1, Mx(0));  // lock was never released by anyone
  EXPECT_EQ(m.PagesPropagated(), 0u);
}

TEST(LrcModel, PointToPointDoesNotLeakToOtherLocks) {
  // Thread 0 releases through lock A only; an acquire of lock B sees nothing.
  LrcModel m;
  m.OnCommit(0, {5});
  m.OnRelease(0, Mx(0));
  m.OnAcquire(1, Mx(1));
  EXPECT_EQ(m.PagesPropagated(), 0u);
  m.OnAcquire(1, Mx(0));
  EXPECT_EQ(m.PagesPropagated(), 1u);
}

TEST(LrcModel, AlreadySeenCommitsAreNotRecounted) {
  LrcModel m;
  m.OnCommit(0, {7, 8});
  m.OnRelease(0, Mx(0));
  m.OnAcquire(1, Mx(0));
  EXPECT_EQ(m.PagesPropagated(), 2u);
  m.OnAcquire(1, Mx(0));  // nothing new happened-before
  EXPECT_EQ(m.PagesPropagated(), 2u);
}

TEST(LrcModel, DuplicatePagesInOneAcquireCountOnce) {
  LrcModel m;
  m.OnCommit(0, {4});
  m.OnCommit(0, {4});  // same page committed twice
  m.OnRelease(0, Mx(0));
  m.OnAcquire(1, Mx(0));
  EXPECT_EQ(m.PagesPropagated(), 1u);  // one copy ships
}

TEST(LrcModel, TransitiveVisibilityThroughIntermediateThread) {
  LrcModel m;
  m.OnCommit(0, {9});
  m.OnRelease(0, Mx(0));
  m.OnAcquire(1, Mx(0));  // 1 sees page 9 (count 1)
  m.OnRelease(1, Mx(1));
  m.OnAcquire(2, Mx(1));  // 2 sees page 9 transitively (count 2)
  EXPECT_EQ(m.PagesPropagated(), 2u);
}

TEST(LrcModel, SelfAcquireCountsNothing) {
  LrcModel m;
  m.OnCommit(0, {1});
  m.OnRelease(0, Mx(0));
  m.OnAcquire(0, Mx(0));  // own writes never propagate to oneself
  EXPECT_EQ(m.PagesPropagated(), 0u);
}

// Integration: run a real workload under Consequence-IC with the model
// attached; LRC propagation must be <= TSO propagation when sharing is global
// (every thread acquires every lock), and both must be deterministic.
TEST(LrcModel, IntegratesWithConsequenceRuns) {
  auto run = [](u64 seed) {
    LrcModel model;
    rt::RuntimeConfig cfg;
    cfg.nthreads = 4;
    cfg.segment.size_bytes = 1 << 20;
    cfg.adaptive_coarsening = false;  // per-op commits => steady TSO propagation
    cfg.observer = &model;
    cfg.costs.jitter_bp = 300;
    cfg.costs.jitter_seed = seed;
    auto runtime = rt::MakeRuntime(rt::Backend::kConsequenceIC, cfg);
    const rt::RunResult r = runtime->Run([](rt::ThreadApi& api) {
      const u64 data = api.SharedAlloc(64 * 4096, 4096);
      const rt::MutexId m = api.CreateMutex();
      std::vector<rt::ThreadHandle> hs;
      for (u32 w = 0; w < 4; ++w) {
        hs.push_back(api.SpawnThread([=](rt::ThreadApi& t) {
          for (int i = 0; i < 10; ++i) {
            t.Lock(m);
            // Touch a few shared pages under the lock.
            for (u32 p = 0; p < 6; ++p) {
              const u64 a = data + 4096 * ((t.Tid() + p + static_cast<u32>(i)) % 24);
              t.Store<u64>(a, t.Load<u64>(a) + 1);
            }
            t.Unlock(m);
            t.Work(2000);
          }
        }));
      }
      for (auto h : hs) {
        api.JoinThread(h);
      }
      return u64{1};
    });
    return std::tuple(model.PagesPropagated(), r.pages_propagated, model.Acquires());
  };
  const auto [lrc0, tso0, acq0] = run(0);
  const auto [lrc1, tso1, acq1] = run(42);
  EXPECT_EQ(lrc0, lrc1);  // deterministic across jitter seeds
  EXPECT_EQ(tso0, tso1);
  EXPECT_GT(acq0, 0u);
  EXPECT_GT(lrc0, 0u);
  EXPECT_GT(tso0, 0u);
  // All sharing funnels through one lock here, so LRC cannot ship more than a
  // small factor around TSO; sanity-bound the ratio.
  EXPECT_LT(static_cast<double>(lrc0), 3.0 * static_cast<double>(tso0) + 100.0);
}

}  // namespace
}  // namespace csq::lrc
