// Deterministic race analyzer (src/race, DESIGN.md §13).
//
// Two layers of coverage:
//   * conv-level golden tests: Engine + Segment + workspaces driven from one
//     simulated thread with an Analyzer attached directly — fully
//     deterministic down to version numbers, so the expected RaceRecord sets
//     are asserted exactly (byte-precise WW, word-granular RW, and the
//     no-report cases: same word different bytes, false sharing).
//   * rt-level identity tests: a racy workload on the full runtime, pinning
//     that the canonical report is byte-identical across serial vs
//     host-parallel engines, worker counts, off-floor commit on/off and
//     jitter seeds — and that attaching the analyzer never perturbs vtime,
//     checksum or the canonical TSO trace.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "src/conv/segment.h"
#include "src/conv/workspace.h"
#include "src/race/race.h"
#include "src/race/report.h"
#include "src/race/suppress.h"
#include "src/rt/api.h"
#include "src/tso/trace.h"
#include "src/tso/tso_model.h"

namespace csq::race {
namespace {

using conv::Segment;
using conv::SegmentConfig;
using conv::Workspace;
using sim::Engine;

// ---- conv-level golden catalog ---------------------------------------------

void RunSim(Engine& eng, std::function<void()> fn) {
  eng.Spawn(std::move(fn));
  eng.Run();
}

SegmentConfig SmallSeg() {
  SegmentConfig cfg;
  cfg.size_bytes = 1 << 20;
  return cfg;
}

// A value whose every byte differs from zero, so an 8-byte store produces an
// 8-byte write span against the zero twin.
constexpr u64 kAllBytes1 = 0x0101010101010101ULL;
constexpr u64 kAllBytes2 = 0x0202020202020202ULL;

TEST(RaceAnalyzerConv, WriteWriteSameBytesOneExactRecord) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  Analyzer an;
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  const u64 addr = 3 * 4096 + 64;  // page 3, offset 64
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    a.Store<u64>(addr, kAllBytes1);
    b.Store<u64>(addr, kAllBytes2);
    a.Commit();  // version 1
    b.Commit();  // version 2, window (0, 1] -> conflict with version 1
  });
  const Report rep = an.Finalize();
  ASSERT_EQ(rep.records.size(), 1u);
  const RaceRecord& r = rep.records[0];
  EXPECT_EQ(r.kind, AccessKind::kWriteWrite);
  EXPECT_FALSE(r.rebase);
  EXPECT_EQ(r.page, 3u);
  EXPECT_EQ(r.offset, addr);
  EXPECT_EQ(r.len, 8u);
  EXPECT_EQ(r.tid_a, 0u);
  EXPECT_EQ(r.tid_b, 1u);
  EXPECT_EQ(r.version_a, 1u);
  EXPECT_EQ(r.version_b, 2u);
  EXPECT_EQ(r.count, 1u);
  EXPECT_FALSE(r.hb_ordered);  // no sync edges: racy
  EXPECT_EQ(r.site, "<untagged>");  // no resolver: canonical bucket
  EXPECT_EQ(rep.ww, 1u);
  EXPECT_EQ(rep.rw, 0u);
  EXPECT_EQ(rep.racy_records, 1u);
  EXPECT_EQ(rep.ordered_records, 0u);
  EXPECT_EQ(seg.Stats().race_ww_records, 0u);  // runtime fills this, not conv
}

TEST(RaceAnalyzerConv, SameWordDifferentBytesNoReport) {
  // Byte-exact detection: two stores into the SAME 8-byte merge word but
  // disjoint bytes are not a race — the LWW merge preserves both.
  Engine eng;
  Segment seg(eng, SmallSeg());
  Analyzer an;
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    a.Store<u8>(100, 7);  // word 12, byte 100
    b.Store<u8>(101, 9);  // word 12, byte 101
    a.Commit();
    b.Commit();
  });
  const Report rep = an.Finalize();
  EXPECT_TRUE(rep.records.empty());
  EXPECT_EQ(rep.ww, 0u);
}

TEST(RaceAnalyzerConv, FalseSharingSamePageNoReport) {
  // Page-level conflict (both commits touch page 0, second one byte-merges)
  // but no byte overlap: not a race.
  Engine eng;
  Segment seg(eng, SmallSeg());
  Analyzer an;
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    a.Store<u64>(0, kAllBytes1);
    b.Store<u64>(512, kAllBytes2);
    a.Commit();
    b.Commit();
  });
  EXPECT_EQ(seg.Stats().pages_merged, 1u);  // the merge DID happen...
  const Report rep = an.Finalize();
  EXPECT_TRUE(rep.records.empty());  // ...but it resolved no racing bytes
}

TEST(RaceAnalyzerConv, ReadWriteRaceWordGranular) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  Analyzer an;
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    b.SetTrackReads(true);
    (void)b.Load<u64>(128);        // read against snapshot 0
    a.Store<u64>(128, kAllBytes1);
    a.Commit();                    // version 1, concurrent with b's read
    b.Update();                    // validates reads over (0, 1]
  });
  const Report rep = an.Finalize();
  ASSERT_EQ(rep.records.size(), 1u);
  const RaceRecord& r = rep.records[0];
  EXPECT_EQ(r.kind, AccessKind::kReadWrite);
  EXPECT_EQ(r.page, 0u);
  EXPECT_EQ(r.offset, 128u);
  EXPECT_EQ(r.len, 8u);
  EXPECT_EQ(r.tid_a, 0u);  // the writer
  EXPECT_EQ(r.tid_b, 1u);  // the reader
  EXPECT_EQ(r.version_a, 1u);
  EXPECT_FALSE(r.hb_ordered);
  EXPECT_EQ(rep.rw, 1u);
  EXPECT_EQ(rep.ww, 0u);
}

TEST(RaceAnalyzerConv, ReadClearedAtUpdateNoDuplicate) {
  // Interval semantics: an update is a sync point — reads validated up to the
  // target are no longer concurrent with later commits.
  Engine eng;
  Segment seg(eng, SmallSeg());
  Analyzer an;
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    b.SetTrackReads(true);
    (void)b.Load<u64>(128);
    a.Store<u64>(128, kAllBytes1);
    a.Commit();
    b.Update();  // reports the RW race, clears the read bitmap
    a.Store<u64>(128, kAllBytes2);
    a.Commit();
    b.Update();  // no re-read since last update: nothing new to report
  });
  const Report rep = an.Finalize();
  ASSERT_EQ(rep.records.size(), 1u);
  EXPECT_EQ(rep.rw, 1u);
}

TEST(RaceAnalyzerConv, RebaseWriteWriteCaughtAtUpdate) {
  // Update-time rebase: b holds an uncommitted store that overlaps a commit
  // it is updating past — a WW race caught before b even commits.
  Engine eng;
  Segment seg(eng, SmallSeg());
  Analyzer an;
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    b.Store<u64>(64, kAllBytes2);  // pending, uncommitted
    a.Store<u64>(64, kAllBytes1);
    a.Commit();  // version 1
    b.Update();  // rebases b's page onto version 1
  });
  const Report rep = an.Finalize();
  ASSERT_EQ(rep.records.size(), 1u);
  const RaceRecord& r = rep.records[0];
  EXPECT_EQ(r.kind, AccessKind::kWriteWrite);
  EXPECT_TRUE(r.rebase);
  EXPECT_EQ(r.offset, 64u);
  EXPECT_EQ(r.len, 8u);
  EXPECT_EQ(r.tid_a, 0u);
  EXPECT_EQ(r.tid_b, 1u);
  EXPECT_EQ(r.version_a, 1u);
  EXPECT_EQ(r.version_b, 0u);  // b's write is not a committed version yet
  EXPECT_FALSE(r.hb_ordered);
}

TEST(RaceAnalyzerConv, DuplicateOccurrencesFoldIntoOneRecord) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  Analyzer an;
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    for (int i = 0; i < 3; ++i) {
      // Repeated-byte values: every byte of each round's store differs from
      // the twin (adding i instead would leave bytes equal to the previous
      // round's merge result, shrinking the write spans to a partial word).
      a.Store<u64>(64, (0x10u + static_cast<u64>(i)) * kAllBytes1);
      b.Store<u64>(64, (0x20u + static_cast<u64>(i)) * kAllBytes1);
      a.Commit();
      b.Commit();
      a.Update();
      b.Update();
    }
  });
  const Report rep = an.Finalize();
  // All occurrences share (WW, page 0, off 64, len 8, tids 0->1): one record.
  // (The reverse direction 1->0 never occurs: a commits first each round, so
  // only b's window ever contains the other thread's version.)
  ASSERT_EQ(rep.records.size(), 1u);
  EXPECT_EQ(rep.records[0].count, 3u);
  EXPECT_EQ(rep.records[0].version_a, 1u);  // min over folds
  EXPECT_EQ(rep.records[0].version_b, 2u);
  EXPECT_EQ(rep.ww, 3u);
}

TEST(RaceAnalyzerConv, MaxRecordsCapCountsDrops) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  RaceConfig cfg;
  cfg.enabled = true;
  cfg.max_records = 1;
  Analyzer an(cfg);
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    a.Store<u64>(0, kAllBytes1);
    a.Store<u64>(256, kAllBytes1);
    b.Store<u64>(0, kAllBytes2);
    b.Store<u64>(256, kAllBytes2);
    a.Commit();
    b.Commit();  // two distinct overlapping ranges, cap keeps one
  });
  const Report rep = an.Finalize();
  EXPECT_EQ(rep.records.size(), 1u);
  EXPECT_EQ(rep.dropped, 1u);
  EXPECT_EQ(rep.ww, 2u);  // dynamic totals still count everything
}

// ---- rt-level identity -----------------------------------------------------

// A deliberately racy kernel: every worker read-modify-writes the same shared
// word (unsynchronized) plus one private word, with a fence per iteration so
// commit windows from different workers interleave.
rt::WorkloadFn RacyKernel(u32 workers) {
  return [workers](rt::ThreadApi& api) -> u64 {
    const u64 shared = api.SharedAlloc(4096, 4096, "racy.shared");
    const u64 slots = api.SharedAlloc(4096, 4096, "racy.slots");
    std::vector<rt::ThreadHandle> hs;
    for (u32 t = 0; t < workers; ++t) {
      hs.push_back(api.SpawnThread([shared, slots, t](rt::ThreadApi& a) {
        for (u32 i = 0; i < 8; ++i) {
          const u64 v = a.Load<u64>(shared);                    // racy read
          a.Store<u64>(shared, v + (t + 1) * kAllBytes1);       // racy write
          a.Store<u64>(slots + 64 * t, v + i);                  // private word
          a.Work(200 + 37 * t);
          a.Fence();
        }
      }));
    }
    for (rt::ThreadHandle h : hs) {
      api.JoinThread(h);
    }
    return api.Load<u64>(shared);
  };
}

rt::RuntimeConfig RacyCfg(u32 host_workers, u64 jitter_seed, bool offfloor,
                          bool track_reads) {
  rt::RuntimeConfig cfg;
  cfg.nthreads = 3;
  cfg.segment.size_bytes = 1 << 20;
  cfg.host_workers = host_workers;
  cfg.segment.offfloor_commit = offfloor;
  cfg.race.enabled = true;
  cfg.race.track_reads = track_reads;
  if (jitter_seed != 0) {
    cfg.costs.jitter_bp = 900;
    cfg.costs.jitter_seed = jitter_seed;
  }
  return cfg;
}

TEST(RaceAnalyzerRt, CanonicalReportIdenticalAcrossEnginesWorkersOffFloorAndJitter) {
  const rt::RunResult ref =
      rt::MakeRuntime(rt::Backend::kConsequenceIC, RacyCfg(1, 0, true, true))
          ->Run(RacyKernel(3));
  ASSERT_FALSE(ref.races.empty());
  EXPECT_GT(ref.race_ww, 0u);
  const std::string canon = CanonicalLines(ref.races);
  EXPECT_NE(canon.find("WW"), std::string::npos);
  for (u32 workers : {1u, 2u, 4u}) {
    for (bool offfloor : {true, false}) {
      for (u64 seed : {0ULL, 7ULL, 99ULL}) {
        const rt::RunResult r =
            rt::MakeRuntime(rt::Backend::kConsequenceIC, RacyCfg(workers, seed, offfloor, true))
                ->Run(RacyKernel(3));
        std::ostringstream label;
        label << "host_workers=" << workers << " offfloor=" << offfloor << " seed=" << seed;
        EXPECT_EQ(CanonicalLines(r.races), canon) << label.str();
        EXPECT_EQ(r.race_ww, ref.race_ww) << label.str();
        EXPECT_EQ(r.race_rw, ref.race_rw) << label.str();
        EXPECT_EQ(r.race_racy, ref.race_racy) << label.str();
        EXPECT_EQ(r.race_ordered, ref.race_ordered) << label.str();
        EXPECT_EQ(r.race_dropped, 0u) << label.str();
      }
    }
  }
}

TEST(RaceAnalyzerRt, AnalyzerNeverPerturbsSimulatedResults) {
  // The analyzer observes but never charges: vtime, checksum and the schedule
  // digest must be bit-identical analyzer-off vs analyzer-on vs
  // analyzer-on+track_reads, on both engines.
  for (u32 workers : {1u, 4u}) {
    rt::RuntimeConfig off = RacyCfg(workers, 0, true, false);
    off.race.enabled = false;
    const rt::RunResult base =
        rt::MakeRuntime(rt::Backend::kConsequenceIC, off)->Run(RacyKernel(3));
    for (bool reads : {false, true}) {
      const rt::RunResult on =
          rt::MakeRuntime(rt::Backend::kConsequenceIC, RacyCfg(workers, 0, true, reads))
              ->Run(RacyKernel(3));
      std::ostringstream label;
      label << "host_workers=" << workers << " track_reads=" << reads;
      EXPECT_EQ(base.vtime, on.vtime) << label.str();
      EXPECT_EQ(base.checksum, on.checksum) << label.str();
      EXPECT_EQ(base.trace_digest, on.trace_digest) << label.str();
      EXPECT_EQ(base.trace_events, on.trace_events) << label.str();
      EXPECT_EQ(base.commits, on.commits) << label.str();
      EXPECT_EQ(base.cat_totals, on.cat_totals) << label.str();
    }
  }
}

TEST(RaceAnalyzerRt, CanonicalTsoTraceIdenticalWithAnalyzerOn) {
  // Cross-check with the TSO determinism oracle: the full canonical trace —
  // token grants, commit versions, updates, merge decisions — must match
  // serial vs host-parallel with the analyzer attached.
  tso::TraceRecorder serial_rec;
  rt::RuntimeConfig scfg = RacyCfg(1, 0, true, true);
  scfg.observer = &serial_rec;
  rt::MakeRuntime(rt::Backend::kConsequenceIC, scfg)->Run(RacyKernel(3));
  for (u32 workers : {2u, 4u}) {
    tso::TraceRecorder par_rec;
    rt::RuntimeConfig pcfg = RacyCfg(workers, 0, true, true);
    pcfg.observer = &par_rec;
    rt::MakeRuntime(rt::Backend::kConsequenceIC, pcfg)->Run(RacyKernel(3));
    const tso::TraceDiff diff = tso::DiffTraces(serial_rec.Trace(), par_rec.Trace());
    EXPECT_FALSE(diff.diverged) << "host_workers=" << workers << ": " << diff.description;
  }
}

TEST(RaceAnalyzerRt, AllocationSiteTagsResolveInRecords) {
  const rt::RunResult r =
      rt::MakeRuntime(rt::Backend::kConsequenceIC, RacyCfg(1, 0, true, true))
          ->Run(RacyKernel(3));
  ASSERT_FALSE(r.races.empty());
  for (const RaceRecord& rec : r.races) {
    EXPECT_EQ(rec.site, "racy.shared") << "offset=" << rec.offset;
  }
  EXPECT_GT(r.race_ww, 0u);
}

TEST(RaceAnalyzerRt, QuietWorkloadReportsNothing) {
  // Disjoint pages per worker: analyzer on, zero records.
  auto quiet = [](rt::ThreadApi& api) -> u64 {
    const u64 base = api.SharedAlloc(4 * 4096, 4096, "quiet.slots");
    std::vector<rt::ThreadHandle> hs;
    for (u32 t = 0; t < 3; ++t) {
      hs.push_back(api.SpawnThread([base, t](rt::ThreadApi& a) {
        for (u32 i = 0; i < 4; ++i) {
          a.Store<u64>(base + 4096 * t, i);
          a.Fence();
        }
      }));
    }
    for (rt::ThreadHandle h : hs) {
      api.JoinThread(h);
    }
    return api.Load<u64>(base);
  };
  const rt::RunResult r =
      rt::MakeRuntime(rt::Backend::kConsequenceIC, RacyCfg(1, 0, true, true))->Run(quiet);
  EXPECT_TRUE(r.races.empty());
  EXPECT_EQ(r.race_ww, 0u);
  EXPECT_EQ(r.race_rw, 0u);
}

// ---- happens-before classification (hand-fed sync edges) -------------------
//
// These drive the classifier's edge stream directly (the runtime's fanout
// calls the same OnSyncAcquire/OnSyncRelease), so the demotion rules are
// pinned byte-exactly: a conflict whose accesses are separated by a
// release->acquire chain is `ordered`; remove the chain and the *same*
// conflict is `racy`.

constexpr u64 kLockObj = 0x51;

TEST(RaceAnalyzerHb, LockOrderedConflictDemotedToOrdered) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  Analyzer an;
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    a.Store<u64>(64, kAllBytes1);
    a.Commit();                                         // version 1 (tid 0)
    an.OnSyncRelease(0, kLockObj, /*deferred=*/false);  // release carries v1
    an.OnSyncAcquire(1, kLockObj);                      // b's clock now covers v1
    b.Store<u64>(64, kAllBytes2);
    b.Commit();  // window (0,1] still contains v1: a conflict...
  });
  const Report rep = an.Finalize();
  ASSERT_EQ(rep.records.size(), 1u);
  EXPECT_TRUE(rep.records[0].hb_ordered);  // ...but it is lock-ordered
  EXPECT_EQ(rep.racy_records, 0u);
  EXPECT_EQ(rep.ordered_records, 1u);
  EXPECT_EQ(rep.ww, 1u);  // dynamic occurrences count either way
  EXPECT_NE(CanonicalLines(rep.records).find(" class=ordered "), std::string::npos);
}

TEST(RaceAnalyzerHb, RemovingTheLockFlipsTheSameConflictToRacy) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  Analyzer an;
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    a.Store<u64>(64, kAllBytes1);
    a.Commit();
    // No release/acquire pair: identical accesses, no ordering chain.
    b.Store<u64>(64, kAllBytes2);
    b.Commit();
  });
  const Report rep = an.Finalize();
  ASSERT_EQ(rep.records.size(), 1u);
  EXPECT_FALSE(rep.records[0].hb_ordered);
  EXPECT_EQ(rep.racy_records, 1u);
  EXPECT_EQ(rep.ordered_records, 0u);
  EXPECT_NE(CanonicalLines(rep.records).find(" class=racy "), std::string::npos);
}

TEST(RaceAnalyzerHb, ReleaseBeforeReserveDoesNotOrder) {
  // The edge must carry the version: a release emitted before a's commit
  // reserves cannot order that commit before b (DRD soundness: the object
  // clock is a snapshot of the releasing thread at release time).
  Engine eng;
  Segment seg(eng, SmallSeg());
  Analyzer an;
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    a.Store<u64>(64, kAllBytes1);
    an.OnSyncRelease(0, kLockObj, /*deferred=*/false);  // predates version 1
    a.Commit();
    an.OnSyncAcquire(1, kLockObj);
    b.Store<u64>(64, kAllBytes2);
    b.Commit();
  });
  const Report rep = an.Finalize();
  ASSERT_EQ(rep.records.size(), 1u);
  EXPECT_FALSE(rep.records[0].hb_ordered);
}

TEST(RaceAnalyzerHb, DeferredReleaseFlushCarriesTheCoveringCommit) {
  // Coarsened chunks emit the release before the chunk's covering commit
  // reserves; FlushDeferredReleases re-joins so the edge carries it (sound
  // because the releasing thread held the token for the whole chunk).
  Engine eng;
  Segment seg(eng, SmallSeg());
  Analyzer an;
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    a.Store<u64>(64, kAllBytes1);
    an.OnSyncRelease(0, kLockObj, /*deferred=*/true);  // inside a coarsened chunk
    a.Commit();                                        // the covering commit
    an.FlushDeferredReleases(0);                       // edge now carries v1
    an.OnSyncAcquire(1, kLockObj);
    b.Store<u64>(64, kAllBytes2);
    b.Commit();
  });
  const Report rep = an.Finalize();
  ASSERT_EQ(rep.records.size(), 1u);
  EXPECT_TRUE(rep.records[0].hb_ordered);
  EXPECT_EQ(rep.ordered_records, 1u);
}

TEST(RaceAnalyzerHb, ReadWriteConflictDemotedByLockEdge) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  Analyzer an;
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    b.SetTrackReads(true);
    (void)b.Load<u64>(128);  // read against snapshot 0
    a.Store<u64>(128, kAllBytes1);
    a.Commit();  // version 1
    an.OnSyncRelease(0, kLockObj, /*deferred=*/false);
    an.OnSyncAcquire(1, kLockObj);
    b.Update();  // validation point: v1 is ordered before b's current point
  });
  const Report rep = an.Finalize();
  ASSERT_EQ(rep.records.size(), 1u);
  EXPECT_EQ(rep.records[0].kind, AccessKind::kReadWrite);
  EXPECT_TRUE(rep.records[0].hb_ordered);
  EXPECT_EQ(rep.ordered_records, 1u);
}

TEST(RaceAnalyzerHb, RebaseConflictDemotedByLockEdge) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  Analyzer an;
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    b.Store<u64>(64, kAllBytes2);  // pending, uncommitted
    a.Store<u64>(64, kAllBytes1);
    a.Commit();  // version 1
    an.OnSyncRelease(0, kLockObj, /*deferred=*/false);
    an.OnSyncAcquire(1, kLockObj);
    b.Update();  // rebases b's page onto version 1
  });
  const Report rep = an.Finalize();
  ASSERT_EQ(rep.records.size(), 1u);
  EXPECT_TRUE(rep.records[0].rebase);
  EXPECT_TRUE(rep.records[0].hb_ordered);
}

TEST(RaceAnalyzerHb, OrderedAndRacyOccurrencesSplitIntoSeparateRecords) {
  // The classification is part of the dedupe key: the same byte range racing
  // in round 1 and lock-ordered in round 2 yields two records, racy first in
  // the canonical sort.
  Engine eng;
  Segment seg(eng, SmallSeg());
  Analyzer an;
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    a.Store<u64>(64, 0x11 * kAllBytes1);  // round 1: no edges
    b.Store<u64>(64, 0x21 * kAllBytes1);
    a.Commit();
    b.Commit();
    a.Update();
    b.Update();
    a.Store<u64>(64, 0x12 * kAllBytes1);  // round 2: release->acquire chain
    a.Commit();
    an.OnSyncRelease(0, kLockObj, /*deferred=*/false);
    an.OnSyncAcquire(1, kLockObj);
    b.Store<u64>(64, 0x22 * kAllBytes1);
    b.Commit();
  });
  const Report rep = an.Finalize();
  ASSERT_EQ(rep.records.size(), 2u);
  EXPECT_FALSE(rep.records[0].hb_ordered);  // racy sorts before ordered
  EXPECT_TRUE(rep.records[1].hb_ordered);
  EXPECT_EQ(rep.records[0].offset, rep.records[1].offset);
  EXPECT_EQ(rep.racy_records, 1u);
  EXPECT_EQ(rep.ordered_records, 1u);
  EXPECT_EQ(rep.ww, 2u);
}

// ---- suppressions ----------------------------------------------------------

// One WW conflict on a fresh segment; `an` must be wired by the caller.
Report RunWwScenario(Analyzer& an) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    a.Store<u64>(3 * 4096 + 64, kAllBytes1);
    b.Store<u64>(3 * 4096 + 64, kAllBytes2);
    a.Commit();
    b.Commit();
  });
  return an.Finalize();
}

TEST(RaceSuppress, GeneratedSuppressionsRoundTripSilenceEverything) {
  Analyzer plain;
  const Report before = RunWwScenario(plain);
  ASSERT_EQ(before.records.size(), 1u);
  const std::string text = GenSuppressions(before.records);
  EXPECT_NE(text.find("race:WW"), std::string::npos) << text;
  EXPECT_NE(text.find("site:<untagged>"), std::string::npos) << text;
  EXPECT_NE(text.find("class:racy"), std::string::npos) << text;

  Analyzer suppressed;
  std::string err;
  ASSERT_TRUE(suppressed.ParseSuppressions(text, &err)) << err;
  const Report after = RunWwScenario(suppressed);
  EXPECT_TRUE(after.records.empty());
  EXPECT_EQ(after.suppressed_records, 1u);
  EXPECT_EQ(after.suppressed_occurrences, 1u);
  EXPECT_EQ(after.ww, 0u);  // dynamic totals count unsuppressed only
  EXPECT_EQ(after.racy_records, 0u);
}

TEST(RaceSuppress, LoadFromFileAndMissingFileFails) {
  const std::string path = ::testing::TempDir() + "/csq_race_all.supp";
  {
    std::ofstream out(path);
    out << "# suppress everything\n{\n  all\n}\n";
  }
  Analyzer an;
  std::string err;
  ASSERT_TRUE(an.LoadSuppressions(path, &err)) << err;
  const Report rep = RunWwScenario(an);
  EXPECT_TRUE(rep.records.empty());
  EXPECT_EQ(rep.suppressed_records, 1u);
  std::remove(path.c_str());

  Analyzer missing;
  err.clear();
  EXPECT_FALSE(missing.LoadSuppressions(path + ".nope", &err));
  EXPECT_FALSE(err.empty());
}

TEST(RaceSuppress, ParseRejectsUnknownKeysAndBadValues) {
  // A typo'd suppression that silently matched nothing would un-suppress a CI
  // gate: malformed blocks are hard errors, with the offending line number.
  SuppressionSet s;
  std::string err;
  EXPECT_FALSE(s.Parse("{\n  name\n  stack:foo\n}\n", &err));
  EXPECT_NE(err.find("3"), std::string::npos) << err;
  err.clear();
  EXPECT_FALSE(s.Parse("{\n  name\n  race:XX\n}\n", &err));
  err.clear();
  EXPECT_FALSE(s.Parse("{\n  name\n  class:maybe\n}\n", &err));
  err.clear();
  EXPECT_FALSE(s.Parse("{\n  name\n  tids:1->x\n}\n", &err));
  err.clear();
  EXPECT_FALSE(s.Parse("{\n", &err));  // unterminated block
  EXPECT_EQ(s.Size(), 0u);
  EXPECT_TRUE(s.Parse("# just a comment\n", &err)) << err;
}

TEST(RaceSuppress, MatchingSemantics) {
  RaceRecord ww;
  ww.kind = AccessKind::kWriteWrite;
  ww.tid_a = 1;
  ww.tid_b = 2;
  ww.site = "canneal.pos";
  RaceRecord reb = ww;
  reb.rebase = true;
  RaceRecord rw = ww;
  rw.kind = AccessKind::kReadWrite;
  RaceRecord ordered = ww;
  ordered.hb_ordered = true;
  RaceRecord untagged = ww;
  untagged.site.clear();

  auto parse = [](std::string_view text) {
    SuppressionSet s;
    std::string err;
    EXPECT_TRUE(s.Parse(text, &err)) << err;
    return s;
  };
  const SuppressionSet bare_ww = parse("{\n n\n race:WW\n}\n");
  EXPECT_TRUE(bare_ww.Matches(ww));
  EXPECT_TRUE(bare_ww.Matches(reb));  // bare kind matches rebase records too
  EXPECT_FALSE(bare_ww.Matches(rw));
  const SuppressionSet only_rebase = parse("{\n n\n race:WW/rebase\n}\n");
  EXPECT_FALSE(only_rebase.Matches(ww));
  EXPECT_TRUE(only_rebase.Matches(reb));
  const SuppressionSet site_glob = parse("{\n n\n site:canneal.*\n}\n");
  EXPECT_TRUE(site_glob.Matches(ww));
  EXPECT_FALSE(site_glob.Matches(untagged));
  const SuppressionSet untag = parse("{\n n\n site:<untagged>\n}\n");
  EXPECT_TRUE(untag.Matches(untagged));  // empty site matches as the bucket
  EXPECT_FALSE(untag.Matches(ww));
  const SuppressionSet tids = parse("{\n n\n tids:1->*\n}\n");
  EXPECT_TRUE(tids.Matches(ww));
  const SuppressionSet wrong_tids = parse("{\n n\n tids:*->3\n}\n");
  EXPECT_FALSE(wrong_tids.Matches(ww));
  const SuppressionSet racy_only = parse("{\n n\n class:racy\n}\n");
  EXPECT_TRUE(racy_only.Matches(ww));
  EXPECT_FALSE(racy_only.Matches(ordered));
}

TEST(RaceSuppress, GlobMatchSemantics) {
  EXPECT_TRUE(SuppressionSet::GlobMatch("*", ""));
  EXPECT_TRUE(SuppressionSet::GlobMatch("*", "anything"));
  EXPECT_TRUE(SuppressionSet::GlobMatch("a*c", "abc"));
  EXPECT_TRUE(SuppressionSet::GlobMatch("a*c", "ac"));
  EXPECT_TRUE(SuppressionSet::GlobMatch("a*b*c", "aXbYc"));
  EXPECT_FALSE(SuppressionSet::GlobMatch("a*c", "abd"));
  EXPECT_TRUE(SuppressionSet::GlobMatch("a?c", "abc"));
  EXPECT_FALSE(SuppressionSet::GlobMatch("a?c", "ac"));
  EXPECT_TRUE(SuppressionSet::GlobMatch("*.pos", "canneal.pos"));
  EXPECT_FALSE(SuppressionSet::GlobMatch("", "x"));
  EXPECT_TRUE(SuppressionSet::GlobMatch("", ""));
}

// ---- first-exit mode -------------------------------------------------------

TEST(RaceFirstExit, HandlerFiresOnceAtTheSealingCommit) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  RaceConfig cfg;
  cfg.enabled = true;
  cfg.first_exit = true;
  std::vector<std::string> fired;
  cfg.first_exit_handler = [&](const RaceRecord& r) { fired.push_back(CanonicalLine(r)); };
  Analyzer an(cfg);
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    // Two distinct conflicting ranges sealed by the same commit: the handler
    // still fires exactly once, with the canonically-first record.
    a.Store<u64>(0, kAllBytes1);
    a.Store<u64>(256, kAllBytes1);
    b.Store<u64>(0, kAllBytes2);
    b.Store<u64>(256, kAllBytes2);
    a.Commit();
    EXPECT_TRUE(fired.empty());  // no conflict sealed yet
    b.Commit();
  });
  an.EndOfRunFlush();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_NE(fired[0].find("WW page=0 off=0 len=8"), std::string::npos) << fired[0];
  EXPECT_NE(fired[0].find(" class=racy "), std::string::npos) << fired[0];
}

TEST(RaceFirstExit, RebaseConflictFiresAtEndOfRunFlush) {
  // A rebase conflict of a thread that never commits again has no sealing
  // version; the end-of-run flush must still surface it.
  Engine eng;
  Segment seg(eng, SmallSeg());
  RaceConfig cfg;
  cfg.enabled = true;
  cfg.first_exit = true;
  std::vector<std::string> fired;
  cfg.first_exit_handler = [&](const RaceRecord& r) { fired.push_back(CanonicalLine(r)); };
  Analyzer an(cfg);
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    b.Store<u64>(64, kAllBytes2);  // pending, never committed
    a.Store<u64>(64, kAllBytes1);
    a.Commit();
    b.Update();  // rebase conflict; b exits without committing
  });
  EXPECT_TRUE(fired.empty());
  an.EndOfRunFlush();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_NE(fired[0].find("WW/rebase"), std::string::npos) << fired[0];
}

TEST(RaceFirstExit, OrderedAndSuppressedConflictsNeverFire) {
  for (const bool use_suppression : {false, true}) {
    Engine eng;
    Segment seg(eng, SmallSeg());
    RaceConfig cfg;
    cfg.enabled = true;
    cfg.first_exit = true;
    std::vector<std::string> fired;
    cfg.first_exit_handler = [&](const RaceRecord& r) { fired.push_back(CanonicalLine(r)); };
    Analyzer an(cfg);
    if (use_suppression) {
      std::string err;
      ASSERT_TRUE(an.ParseSuppressions("{\n  all\n}\n", &err)) << err;
    }
    an.SetPageSize(seg.PageSize());
    seg.SetRaceSink(&an);
    RunSim(eng, [&] {
      Workspace a(seg, 0);
      Workspace b(seg, 1);
      a.Store<u64>(64, kAllBytes1);
      a.Commit();
      if (!use_suppression) {
        // Lock-ordered: demoted records must not trip the CI gate.
        an.OnSyncRelease(0, kLockObj, /*deferred=*/false);
        an.OnSyncAcquire(1, kLockObj);
      }
      b.Store<u64>(64, kAllBytes2);
      b.Commit();
    });
    an.EndOfRunFlush();
    EXPECT_TRUE(fired.empty()) << "use_suppression=" << use_suppression;
    const Report rep = an.Finalize();
    if (use_suppression) {
      EXPECT_EQ(rep.suppressed_records, 1u);
    } else {
      EXPECT_EQ(rep.ordered_records, 1u);
    }
  }
}

TEST(RaceAnalyzerRt, FirstExitRecordIdenticalAcrossEnginesWorkersOffFloorAndJitter) {
  auto run = [](u32 workers, u64 seed, bool offfloor) {
    rt::RuntimeConfig cfg = RacyCfg(workers, seed, offfloor, true);
    cfg.race.first_exit = true;
    std::vector<std::string> fired;
    cfg.race.first_exit_handler = [&fired](const RaceRecord& r) {
      fired.push_back(CanonicalLine(r));
    };
    rt::MakeRuntime(rt::Backend::kConsequenceIC, cfg)->Run(RacyKernel(3));
    EXPECT_EQ(fired.size(), 1u);  // latched: exactly one record per run
    return fired.empty() ? std::string() : fired[0];
  };
  const std::string ref = run(1, 0, true);
  ASSERT_FALSE(ref.empty());
  EXPECT_NE(ref.find(" class=racy "), std::string::npos) << ref;
  EXPECT_NE(ref.find("site=racy."), std::string::npos) << ref;
  for (u32 workers : {1u, 2u, 4u}) {
    for (bool offfloor : {true, false}) {
      for (u64 seed : {0ULL, 7ULL}) {
        EXPECT_EQ(run(workers, seed, offfloor), ref)
            << "host_workers=" << workers << " offfloor=" << offfloor << " seed=" << seed;
      }
    }
  }
}

TEST(RaceAnalyzerRt, FirstExitSuppressionFileDisarmsTheGate) {
  const std::string path = ::testing::TempDir() + "/csq_race_rt_all.supp";
  {
    std::ofstream out(path);
    out << "{\n  all\n}\n";
  }
  rt::RuntimeConfig cfg = RacyCfg(1, 0, true, true);
  cfg.race.first_exit = true;
  cfg.race.suppressions_path = path;
  std::vector<std::string> fired;
  cfg.race.first_exit_handler = [&fired](const RaceRecord& r) {
    fired.push_back(CanonicalLine(r));
  };
  const rt::RunResult r =
      rt::MakeRuntime(rt::Backend::kConsequenceIC, cfg)->Run(RacyKernel(3));
  std::remove(path.c_str());
  EXPECT_TRUE(fired.empty());
  EXPECT_TRUE(r.races.empty());
  EXPECT_GT(r.race_suppressed, 0u);
  EXPECT_EQ(r.race_ww, 0u);  // suppressed occurrences leave the totals
}

TEST(RaceAnalyzerRt, FirstExitCleanWorkloadNeverFires) {
  rt::RuntimeConfig cfg = RacyCfg(1, 0, true, true);
  cfg.race.first_exit = true;
  bool fired = false;
  cfg.race.first_exit_handler = [&fired](const RaceRecord&) { fired = true; };
  auto quiet = [](rt::ThreadApi& api) -> u64 {
    const u64 base = api.SharedAlloc(4 * 4096, 4096, "quiet.slots");
    std::vector<rt::ThreadHandle> hs;
    for (u32 t = 0; t < 3; ++t) {
      hs.push_back(api.SpawnThread([base, t](rt::ThreadApi& a) {
        for (u32 i = 0; i < 4; ++i) {
          a.Store<u64>(base + 4096 * t, i);
          a.Fence();
        }
      }));
    }
    for (rt::ThreadHandle h : hs) {
      api.JoinThread(h);
    }
    return api.Load<u64>(base);
  };
  const rt::RunResult r = rt::MakeRuntime(rt::Backend::kConsequenceIC, cfg)->Run(quiet);
  EXPECT_FALSE(fired);
  EXPECT_TRUE(r.races.empty());
}

// ---- runtime sync edges: the async condvar demotion class ------------------
//
// In synchronous commit mode every commit updates to global latest, so a
// conflict window only ever contains HB-concurrent versions — ordered records
// cannot arise (DESIGN.md §18). Asynchronous lock commit (§6) breaks that
// coupling: visibility follows scalar version knowledge K, so a commit window
// can contain a version the thread is HB-after via a condvar edge that does
// not carry K. This kernel builds exactly that shape.
rt::WorkloadFn CondOrderedKernel() {
  return [](rt::ThreadApi& api) -> u64 {
    const u64 flag = api.SharedAlloc(8, 4096, "ord.flag");
    const u64 data = api.SharedAlloc(64, 4096, "ord.data");
    const rt::MutexId m = api.CreateMutex();
    const rt::CondId cv = api.CreateCond();
    std::vector<rt::ThreadHandle> hs;
    // Producer: publish the flag under the lock, then write `data` and commit
    // it only at CondSignal — after its last mutex op, so the data version
    // never enters the mutex's K and the waking consumer stays behind it.
    hs.push_back(api.SpawnThread([flag, data, m, cv](rt::ThreadApi& t) {
      t.Work(50000);  // let the consumer reach CondWait first
      t.Lock(m);
      t.Store<u64>(flag, 1);
      t.Unlock(m);
      t.Store<u64>(data, kAllBytes1);
      t.CondSignal(cv);  // commits `data`, then releases the cond edge
    }));
    // Consumer: wake via the condvar (joining the producer's clock incl. the
    // data version), then overwrite the same bytes. Its window still contains
    // the producer's data version — a conflict — but the cond edge orders it.
    hs.push_back(api.SpawnThread([flag, data, m, cv](rt::ThreadApi& t) {
      t.Lock(m);
      while (t.Load<u64>(flag) == 0) {
        t.CondWait(cv, m);
      }
      t.Unlock(m);
      t.Store<u64>(data, kAllBytes2);
      t.Fence();
    }));
    for (rt::ThreadHandle h : hs) {
      api.JoinThread(h);
    }
    return api.Load<u64>(data);
  };
}

rt::RuntimeConfig CondOrderedCfg(u32 host_workers, u64 jitter_seed, bool offfloor,
                                 bool async_lock_commit) {
  rt::RuntimeConfig cfg;
  cfg.nthreads = 3;
  cfg.segment.size_bytes = 1 << 20;
  cfg.host_workers = host_workers;
  cfg.segment.offfloor_commit = offfloor;
  cfg.async_lock_commit = async_lock_commit;
  cfg.adaptive_coarsening = false;  // keep the edge stream surgical
  cfg.race.enabled = true;
  if (jitter_seed != 0) {
    cfg.costs.jitter_bp = 900;
    cfg.costs.jitter_seed = jitter_seed;
  }
  return cfg;
}

TEST(RaceAnalyzerRt, AsyncCondEdgeDemotesTheConflictToOrdered) {
  const rt::RunResult ref =
      rt::MakeRuntime(rt::Backend::kConsequenceIC, CondOrderedCfg(1, 0, true, true))
          ->Run(CondOrderedKernel());
  ASSERT_EQ(ref.races.size(), 1u);
  EXPECT_TRUE(ref.races[0].hb_ordered);
  EXPECT_EQ(ref.races[0].site, "ord.data");
  EXPECT_EQ(ref.races[0].len, 8u);
  EXPECT_EQ(ref.race_ordered, 1u);
  EXPECT_EQ(ref.race_racy, 0u);  // the demotion is what keeps CI green
  const std::string canon = CanonicalLines(ref.races);
  EXPECT_NE(canon.find(" class=ordered "), std::string::npos) << canon;
  for (u32 workers : {1u, 2u, 4u}) {
    for (bool offfloor : {true, false}) {
      for (u64 seed : {0ULL, 7ULL}) {
        const rt::RunResult r =
            rt::MakeRuntime(rt::Backend::kConsequenceIC,
                            CondOrderedCfg(workers, seed, offfloor, true))
                ->Run(CondOrderedKernel());
        EXPECT_EQ(CanonicalLines(r.races), canon)
            << "host_workers=" << workers << " offfloor=" << offfloor << " seed=" << seed;
      }
    }
  }
}

TEST(RaceAnalyzerRt, SyncModeWindowContainsOnlyConcurrentVersions) {
  // The same kernel in synchronous mode: the consumer's wake-up update moves
  // it past the producer's data version, so no conflict window survives at
  // all — the structural reason ordered records need async mode.
  const rt::RunResult r =
      rt::MakeRuntime(rt::Backend::kConsequenceIC, CondOrderedCfg(1, 0, true, false))
          ->Run(CondOrderedKernel());
  EXPECT_TRUE(r.races.empty());
  EXPECT_EQ(r.race_ordered, 0u);
  EXPECT_EQ(r.race_racy, 0u);
}

}  // namespace
}  // namespace csq::race
