// Deterministic race analyzer (src/race, DESIGN.md §13).
//
// Two layers of coverage:
//   * conv-level golden tests: Engine + Segment + workspaces driven from one
//     simulated thread with an Analyzer attached directly — fully
//     deterministic down to version numbers, so the expected RaceRecord sets
//     are asserted exactly (byte-precise WW, word-granular RW, and the
//     no-report cases: same word different bytes, false sharing).
//   * rt-level identity tests: a racy workload on the full runtime, pinning
//     that the canonical report is byte-identical across serial vs
//     host-parallel engines, worker counts, off-floor commit on/off and
//     jitter seeds — and that attaching the analyzer never perturbs vtime,
//     checksum or the canonical TSO trace.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/conv/segment.h"
#include "src/conv/workspace.h"
#include "src/race/race.h"
#include "src/race/report.h"
#include "src/rt/api.h"
#include "src/tso/trace.h"
#include "src/tso/tso_model.h"

namespace csq::race {
namespace {

using conv::Segment;
using conv::SegmentConfig;
using conv::Workspace;
using sim::Engine;

// ---- conv-level golden catalog ---------------------------------------------

void RunSim(Engine& eng, std::function<void()> fn) {
  eng.Spawn(std::move(fn));
  eng.Run();
}

SegmentConfig SmallSeg() {
  SegmentConfig cfg;
  cfg.size_bytes = 1 << 20;
  return cfg;
}

// A value whose every byte differs from zero, so an 8-byte store produces an
// 8-byte write span against the zero twin.
constexpr u64 kAllBytes1 = 0x0101010101010101ULL;
constexpr u64 kAllBytes2 = 0x0202020202020202ULL;

TEST(RaceAnalyzerConv, WriteWriteSameBytesOneExactRecord) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  Analyzer an;
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  const u64 addr = 3 * 4096 + 64;  // page 3, offset 64
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    a.Store<u64>(addr, kAllBytes1);
    b.Store<u64>(addr, kAllBytes2);
    a.Commit();  // version 1
    b.Commit();  // version 2, window (0, 1] -> conflict with version 1
  });
  const Report rep = an.Finalize();
  ASSERT_EQ(rep.records.size(), 1u);
  const RaceRecord& r = rep.records[0];
  EXPECT_EQ(r.kind, AccessKind::kWriteWrite);
  EXPECT_FALSE(r.rebase);
  EXPECT_EQ(r.page, 3u);
  EXPECT_EQ(r.offset, addr);
  EXPECT_EQ(r.len, 8u);
  EXPECT_EQ(r.tid_a, 0u);
  EXPECT_EQ(r.tid_b, 1u);
  EXPECT_EQ(r.version_a, 1u);
  EXPECT_EQ(r.version_b, 2u);
  EXPECT_EQ(r.count, 1u);
  EXPECT_EQ(rep.ww, 1u);
  EXPECT_EQ(rep.rw, 0u);
  EXPECT_EQ(seg.Stats().race_ww_records, 0u);  // runtime fills this, not conv
}

TEST(RaceAnalyzerConv, SameWordDifferentBytesNoReport) {
  // Byte-exact detection: two stores into the SAME 8-byte merge word but
  // disjoint bytes are not a race — the LWW merge preserves both.
  Engine eng;
  Segment seg(eng, SmallSeg());
  Analyzer an;
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    a.Store<u8>(100, 7);  // word 12, byte 100
    b.Store<u8>(101, 9);  // word 12, byte 101
    a.Commit();
    b.Commit();
  });
  const Report rep = an.Finalize();
  EXPECT_TRUE(rep.records.empty());
  EXPECT_EQ(rep.ww, 0u);
}

TEST(RaceAnalyzerConv, FalseSharingSamePageNoReport) {
  // Page-level conflict (both commits touch page 0, second one byte-merges)
  // but no byte overlap: not a race.
  Engine eng;
  Segment seg(eng, SmallSeg());
  Analyzer an;
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    a.Store<u64>(0, kAllBytes1);
    b.Store<u64>(512, kAllBytes2);
    a.Commit();
    b.Commit();
  });
  EXPECT_EQ(seg.Stats().pages_merged, 1u);  // the merge DID happen...
  const Report rep = an.Finalize();
  EXPECT_TRUE(rep.records.empty());  // ...but it resolved no racing bytes
}

TEST(RaceAnalyzerConv, ReadWriteRaceWordGranular) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  Analyzer an;
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    b.SetTrackReads(true);
    (void)b.Load<u64>(128);        // read against snapshot 0
    a.Store<u64>(128, kAllBytes1);
    a.Commit();                    // version 1, concurrent with b's read
    b.Update();                    // validates reads over (0, 1]
  });
  const Report rep = an.Finalize();
  ASSERT_EQ(rep.records.size(), 1u);
  const RaceRecord& r = rep.records[0];
  EXPECT_EQ(r.kind, AccessKind::kReadWrite);
  EXPECT_EQ(r.page, 0u);
  EXPECT_EQ(r.offset, 128u);
  EXPECT_EQ(r.len, 8u);
  EXPECT_EQ(r.tid_a, 0u);  // the writer
  EXPECT_EQ(r.tid_b, 1u);  // the reader
  EXPECT_EQ(r.version_a, 1u);
  EXPECT_EQ(rep.rw, 1u);
  EXPECT_EQ(rep.ww, 0u);
}

TEST(RaceAnalyzerConv, ReadClearedAtUpdateNoDuplicate) {
  // Interval semantics: an update is a sync point — reads validated up to the
  // target are no longer concurrent with later commits.
  Engine eng;
  Segment seg(eng, SmallSeg());
  Analyzer an;
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    b.SetTrackReads(true);
    (void)b.Load<u64>(128);
    a.Store<u64>(128, kAllBytes1);
    a.Commit();
    b.Update();  // reports the RW race, clears the read bitmap
    a.Store<u64>(128, kAllBytes2);
    a.Commit();
    b.Update();  // no re-read since last update: nothing new to report
  });
  const Report rep = an.Finalize();
  ASSERT_EQ(rep.records.size(), 1u);
  EXPECT_EQ(rep.rw, 1u);
}

TEST(RaceAnalyzerConv, RebaseWriteWriteCaughtAtUpdate) {
  // Update-time rebase: b holds an uncommitted store that overlaps a commit
  // it is updating past — a WW race caught before b even commits.
  Engine eng;
  Segment seg(eng, SmallSeg());
  Analyzer an;
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    b.Store<u64>(64, kAllBytes2);  // pending, uncommitted
    a.Store<u64>(64, kAllBytes1);
    a.Commit();  // version 1
    b.Update();  // rebases b's page onto version 1
  });
  const Report rep = an.Finalize();
  ASSERT_EQ(rep.records.size(), 1u);
  const RaceRecord& r = rep.records[0];
  EXPECT_EQ(r.kind, AccessKind::kWriteWrite);
  EXPECT_TRUE(r.rebase);
  EXPECT_EQ(r.offset, 64u);
  EXPECT_EQ(r.len, 8u);
  EXPECT_EQ(r.tid_a, 0u);
  EXPECT_EQ(r.tid_b, 1u);
  EXPECT_EQ(r.version_a, 1u);
  EXPECT_EQ(r.version_b, 0u);  // b's write is not a committed version yet
}

TEST(RaceAnalyzerConv, DuplicateOccurrencesFoldIntoOneRecord) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  Analyzer an;
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    for (int i = 0; i < 3; ++i) {
      // Repeated-byte values: every byte of each round's store differs from
      // the twin (adding i instead would leave bytes equal to the previous
      // round's merge result, shrinking the write spans to a partial word).
      a.Store<u64>(64, (0x10u + static_cast<u64>(i)) * kAllBytes1);
      b.Store<u64>(64, (0x20u + static_cast<u64>(i)) * kAllBytes1);
      a.Commit();
      b.Commit();
      a.Update();
      b.Update();
    }
  });
  const Report rep = an.Finalize();
  // All occurrences share (WW, page 0, off 64, len 8, tids 0->1): one record.
  // (The reverse direction 1->0 never occurs: a commits first each round, so
  // only b's window ever contains the other thread's version.)
  ASSERT_EQ(rep.records.size(), 1u);
  EXPECT_EQ(rep.records[0].count, 3u);
  EXPECT_EQ(rep.records[0].version_a, 1u);  // min over folds
  EXPECT_EQ(rep.records[0].version_b, 2u);
  EXPECT_EQ(rep.ww, 3u);
}

TEST(RaceAnalyzerConv, MaxRecordsCapCountsDrops) {
  Engine eng;
  Segment seg(eng, SmallSeg());
  RaceConfig cfg;
  cfg.enabled = true;
  cfg.max_records = 1;
  Analyzer an(cfg);
  an.SetPageSize(seg.PageSize());
  seg.SetRaceSink(&an);
  RunSim(eng, [&] {
    Workspace a(seg, 0);
    Workspace b(seg, 1);
    a.Store<u64>(0, kAllBytes1);
    a.Store<u64>(256, kAllBytes1);
    b.Store<u64>(0, kAllBytes2);
    b.Store<u64>(256, kAllBytes2);
    a.Commit();
    b.Commit();  // two distinct overlapping ranges, cap keeps one
  });
  const Report rep = an.Finalize();
  EXPECT_EQ(rep.records.size(), 1u);
  EXPECT_EQ(rep.dropped, 1u);
  EXPECT_EQ(rep.ww, 2u);  // dynamic totals still count everything
}

// ---- rt-level identity -----------------------------------------------------

// A deliberately racy kernel: every worker read-modify-writes the same shared
// word (unsynchronized) plus one private word, with a fence per iteration so
// commit windows from different workers interleave.
rt::WorkloadFn RacyKernel(u32 workers) {
  return [workers](rt::ThreadApi& api) -> u64 {
    const u64 shared = api.SharedAlloc(4096, 4096, "racy.shared");
    const u64 slots = api.SharedAlloc(4096, 4096, "racy.slots");
    std::vector<rt::ThreadHandle> hs;
    for (u32 t = 0; t < workers; ++t) {
      hs.push_back(api.SpawnThread([shared, slots, t](rt::ThreadApi& a) {
        for (u32 i = 0; i < 8; ++i) {
          const u64 v = a.Load<u64>(shared);                    // racy read
          a.Store<u64>(shared, v + (t + 1) * kAllBytes1);       // racy write
          a.Store<u64>(slots + 64 * t, v + i);                  // private word
          a.Work(200 + 37 * t);
          a.Fence();
        }
      }));
    }
    for (rt::ThreadHandle h : hs) {
      api.JoinThread(h);
    }
    return api.Load<u64>(shared);
  };
}

rt::RuntimeConfig RacyCfg(u32 host_workers, u64 jitter_seed, bool offfloor,
                          bool track_reads) {
  rt::RuntimeConfig cfg;
  cfg.nthreads = 3;
  cfg.segment.size_bytes = 1 << 20;
  cfg.host_workers = host_workers;
  cfg.segment.offfloor_commit = offfloor;
  cfg.race.enabled = true;
  cfg.race.track_reads = track_reads;
  if (jitter_seed != 0) {
    cfg.costs.jitter_bp = 900;
    cfg.costs.jitter_seed = jitter_seed;
  }
  return cfg;
}

TEST(RaceAnalyzerRt, CanonicalReportIdenticalAcrossEnginesWorkersOffFloorAndJitter) {
  const rt::RunResult ref =
      rt::MakeRuntime(rt::Backend::kConsequenceIC, RacyCfg(1, 0, true, true))
          ->Run(RacyKernel(3));
  ASSERT_FALSE(ref.races.empty());
  EXPECT_GT(ref.race_ww, 0u);
  const std::string canon = CanonicalLines(ref.races);
  EXPECT_NE(canon.find("WW"), std::string::npos);
  for (u32 workers : {1u, 2u, 4u}) {
    for (bool offfloor : {true, false}) {
      for (u64 seed : {0ULL, 7ULL, 99ULL}) {
        const rt::RunResult r =
            rt::MakeRuntime(rt::Backend::kConsequenceIC, RacyCfg(workers, seed, offfloor, true))
                ->Run(RacyKernel(3));
        std::ostringstream label;
        label << "host_workers=" << workers << " offfloor=" << offfloor << " seed=" << seed;
        EXPECT_EQ(CanonicalLines(r.races), canon) << label.str();
        EXPECT_EQ(r.race_ww, ref.race_ww) << label.str();
        EXPECT_EQ(r.race_rw, ref.race_rw) << label.str();
        EXPECT_EQ(r.race_dropped, 0u) << label.str();
      }
    }
  }
}

TEST(RaceAnalyzerRt, AnalyzerNeverPerturbsSimulatedResults) {
  // The analyzer observes but never charges: vtime, checksum and the schedule
  // digest must be bit-identical analyzer-off vs analyzer-on vs
  // analyzer-on+track_reads, on both engines.
  for (u32 workers : {1u, 4u}) {
    rt::RuntimeConfig off = RacyCfg(workers, 0, true, false);
    off.race.enabled = false;
    const rt::RunResult base =
        rt::MakeRuntime(rt::Backend::kConsequenceIC, off)->Run(RacyKernel(3));
    for (bool reads : {false, true}) {
      const rt::RunResult on =
          rt::MakeRuntime(rt::Backend::kConsequenceIC, RacyCfg(workers, 0, true, reads))
              ->Run(RacyKernel(3));
      std::ostringstream label;
      label << "host_workers=" << workers << " track_reads=" << reads;
      EXPECT_EQ(base.vtime, on.vtime) << label.str();
      EXPECT_EQ(base.checksum, on.checksum) << label.str();
      EXPECT_EQ(base.trace_digest, on.trace_digest) << label.str();
      EXPECT_EQ(base.trace_events, on.trace_events) << label.str();
      EXPECT_EQ(base.commits, on.commits) << label.str();
      EXPECT_EQ(base.cat_totals, on.cat_totals) << label.str();
    }
  }
}

TEST(RaceAnalyzerRt, CanonicalTsoTraceIdenticalWithAnalyzerOn) {
  // Cross-check with the TSO determinism oracle: the full canonical trace —
  // token grants, commit versions, updates, merge decisions — must match
  // serial vs host-parallel with the analyzer attached.
  tso::TraceRecorder serial_rec;
  rt::RuntimeConfig scfg = RacyCfg(1, 0, true, true);
  scfg.observer = &serial_rec;
  rt::MakeRuntime(rt::Backend::kConsequenceIC, scfg)->Run(RacyKernel(3));
  for (u32 workers : {2u, 4u}) {
    tso::TraceRecorder par_rec;
    rt::RuntimeConfig pcfg = RacyCfg(workers, 0, true, true);
    pcfg.observer = &par_rec;
    rt::MakeRuntime(rt::Backend::kConsequenceIC, pcfg)->Run(RacyKernel(3));
    const tso::TraceDiff diff = tso::DiffTraces(serial_rec.Trace(), par_rec.Trace());
    EXPECT_FALSE(diff.diverged) << "host_workers=" << workers << ": " << diff.description;
  }
}

TEST(RaceAnalyzerRt, AllocationSiteTagsResolveInRecords) {
  const rt::RunResult r =
      rt::MakeRuntime(rt::Backend::kConsequenceIC, RacyCfg(1, 0, true, true))
          ->Run(RacyKernel(3));
  ASSERT_FALSE(r.races.empty());
  for (const RaceRecord& rec : r.races) {
    EXPECT_EQ(rec.site, "racy.shared") << "offset=" << rec.offset;
  }
  EXPECT_GT(r.race_ww, 0u);
}

TEST(RaceAnalyzerRt, QuietWorkloadReportsNothing) {
  // Disjoint pages per worker: analyzer on, zero records.
  auto quiet = [](rt::ThreadApi& api) -> u64 {
    const u64 base = api.SharedAlloc(4 * 4096, 4096, "quiet.slots");
    std::vector<rt::ThreadHandle> hs;
    for (u32 t = 0; t < 3; ++t) {
      hs.push_back(api.SpawnThread([base, t](rt::ThreadApi& a) {
        for (u32 i = 0; i < 4; ++i) {
          a.Store<u64>(base + 4096 * t, i);
          a.Fence();
        }
      }));
    }
    for (rt::ThreadHandle h : hs) {
      api.JoinThread(h);
    }
    return api.Load<u64>(base);
  };
  const rt::RunResult r =
      rt::MakeRuntime(rt::Backend::kConsequenceIC, RacyCfg(1, 0, true, true))->Run(quiet);
  EXPECT_TRUE(r.races.empty());
  EXPECT_EQ(r.race_ww, 0u);
  EXPECT_EQ(r.race_rw, 0u);
}

}  // namespace
}  // namespace csq::race
