// JSON report emitters: util::JsonQuote escaping (the RFC 8259 control-char
// fix shared by bench/report.h and src/race/report.h), the bench JsonObj
// round-trip, and the race-report renderers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/report.h"
#include "src/race/race.h"
#include "src/race/report.h"
#include "src/util/json.h"

namespace csq {
namespace {

TEST(JsonQuote, PassesPlainStringsThrough) {
  EXPECT_EQ(util::JsonQuote("hello"), "\"hello\"");
  EXPECT_EQ(util::JsonQuote(""), "\"\"");
  EXPECT_EQ(util::JsonQuote("a b/c.d-e_f"), "\"a b/c.d-e_f\"");
}

TEST(JsonQuote, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(util::JsonQuote("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(util::JsonQuote("a\\b"), "\"a\\\\b\"");
}

TEST(JsonQuote, EscapesNamedControlCharacters) {
  EXPECT_EQ(util::JsonQuote("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(util::JsonQuote("a\tb"), "\"a\\tb\"");
  EXPECT_EQ(util::JsonQuote("a\rb"), "\"a\\rb\"");
  EXPECT_EQ(util::JsonQuote("a\bb"), "\"a\\bb\"");
  EXPECT_EQ(util::JsonQuote("a\fb"), "\"a\\fb\"");
}

TEST(JsonQuote, EscapesRemainingControlCharactersAsUnicode) {
  // The bug the shared escaper fixes: bench/report.h's old local escaper let
  // \x00..\x1f (minus \n and \t) through raw, producing invalid JSON.
  // Note the split literals: "\x01b" would parse as the single byte 0x1b.
  EXPECT_EQ(util::JsonQuote(std::string("a\x01" "b", 3)), "\"a\\u0001b\"");
  EXPECT_EQ(util::JsonQuote(std::string("a\x1b" "[0m", 5)), "\"a\\u001b[0m\"");
  EXPECT_EQ(util::JsonQuote(std::string("\0", 1)), "\"\\u0000\"");
}

TEST(JsonQuote, LeavesHighBytesAlone) {
  // UTF-8 payloads survive: bytes >= 0x20 pass through untouched.
  const std::string utf8 = "caf\xc3\xa9";
  EXPECT_EQ(util::JsonQuote(utf8), "\"" + utf8 + "\"");
}

TEST(BenchReport, JsonStrUsesSharedEscaper) {
  EXPECT_EQ(bench::JsonStr("a\rb"), "\"a\\rb\"");
  EXPECT_EQ(bench::JsonStr(std::string("x\x02", 2)), "\"x\\u0002\"");
}

TEST(BenchReport, JsonObjRendersOrderedFields) {
  bench::JsonObj obj;
  obj.Str("name", "wl\nx").Int("n", 42).Bool("ok", true).Num("ratio", 1.5, 2);
  EXPECT_EQ(obj.Render(), "{\"name\":\"wl\\nx\",\"n\":42,\"ok\":true,\"ratio\":1.50}");
}

race::Report SampleReport() {
  race::Report rep;
  race::RaceRecord r;
  r.kind = race::AccessKind::kWriteWrite;
  r.page = 3;
  r.offset = 3 * 4096 + 64;
  r.len = 8;
  r.tid_a = 1;
  r.tid_b = 2;
  r.version_a = 4;
  r.version_b = 5;
  r.vtime_a = 1000;
  r.vtime_b = 2000;
  r.winner_hash = 0xabcdef;
  r.count = 2;
  r.site = "wl \"tag\"";
  rep.records.push_back(r);
  rep.ww = 2;
  return rep;
}

TEST(RaceReport, CanonicalLinesExcludeVtimesByDefault) {
  const race::Report rep = SampleReport();
  const std::string canon = race::CanonicalLines(rep.records);
  EXPECT_NE(canon.find("WW page=3 off=12352 len=8 tids=1->2 versions=4->5"), std::string::npos)
      << canon;
  EXPECT_EQ(canon.find("vtimes"), std::string::npos);
  const std::string with = race::CanonicalLines(rep.records, /*include_vtimes=*/true);
  EXPECT_NE(with.find("vtimes=1000->2000"), std::string::npos) << with;
}

TEST(RaceReport, JsonIsEscapedAndRoundTrips) {
  const race::Report rep = SampleReport();
  const std::string json = race::ReportJson("unit", rep);
  // The site tag's embedded quotes must be escaped.
  EXPECT_NE(json.find("\"wl \\\"tag\\\"\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ww\":2"), std::string::npos);
  EXPECT_NE(json.find("\"offset\":12352"), std::string::npos);
  EXPECT_NE(json.find("\"vtime_a\":1000"), std::string::npos);

  ASSERT_TRUE(race::WriteRaceReport("unit", rep));
  std::ifstream in("RACE_unit.json");
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), json + "\n");
  std::remove("RACE_unit.json");
}

TEST(RaceReport, TableRendersEveryRecord) {
  const race::Report rep = SampleReport();
  std::ostringstream os;
  race::RenderTable(os, rep.records);
  const std::string out = os.str();
  EXPECT_NE(out.find("WW"), std::string::npos);
  EXPECT_NE(out.find("12352"), std::string::npos);
  EXPECT_NE(out.find("racy"), std::string::npos);  // the class column

  std::ostringstream empty;
  race::RenderTable(empty, {});
  EXPECT_EQ(empty.str(), "no races detected\n");
}

TEST(RaceReport, CanonicalLineCarriesTheClassification) {
  race::RaceRecord r = SampleReport().records[0];
  const std::string racy = race::CanonicalLine(r);
  // The class sits between versions and winner, so pre-classifier substring
  // pins on "... versions=A->B" keep matching.
  EXPECT_NE(racy.find("versions=4->5 class=racy winner="), std::string::npos) << racy;
  r.hb_ordered = true;
  const std::string ordered = race::CanonicalLine(r);
  EXPECT_NE(ordered.find(" class=ordered "), std::string::npos) << ordered;
}

TEST(RaceReport, UntaggedSiteRendersAsCanonicalBucket) {
  race::RaceRecord r = SampleReport().records[0];
  r.site.clear();
  EXPECT_NE(race::CanonicalLine(r).find("site=<untagged>"), std::string::npos);
  std::ostringstream os;
  race::RenderTable(os, {r});
  EXPECT_NE(os.str().find("<untagged>"), std::string::npos);
}

TEST(RaceReport, HeatmapAggregatesPerSiteAndReconciles) {
  race::RaceRecord a = SampleReport().records[0];  // site "wl \"tag\"", count 2, len 8
  race::RaceRecord b = a;
  b.offset += 64;
  b.len = 4;
  b.count = 3;
  b.hb_ordered = true;
  race::RaceRecord c = a;
  c.site.clear();  // lands in <untagged>
  c.count = 1;
  const std::vector<race::SiteHeat> heat = race::BuildHeatmap({a, b, c});
  ASSERT_EQ(heat.size(), 2u);
  // std::map order: "<untagged>" sorts before "wl ...".
  EXPECT_EQ(heat[0].site, "<untagged>");
  EXPECT_EQ(heat[0].records, 1u);
  EXPECT_EQ(heat[0].racy, 1u);
  EXPECT_EQ(heat[0].occurrences, 1u);
  EXPECT_EQ(heat[1].site, "wl \"tag\"");
  EXPECT_EQ(heat[1].records, 2u);
  EXPECT_EQ(heat[1].racy, 1u);
  EXPECT_EQ(heat[1].ordered, 1u);
  EXPECT_EQ(heat[1].occurrences, 5u);
  EXPECT_EQ(heat[1].bytes, 12u);
  // Totals reconcile with the record set.
  u64 recs = 0;
  u64 occ = 0;
  for (const race::SiteHeat& h : heat) {
    recs += h.records;
    occ += h.occurrences;
  }
  EXPECT_EQ(recs, 3u);
  EXPECT_EQ(occ, 6u);

  std::ostringstream os;
  race::RenderHeatmap(os, heat);
  EXPECT_NE(os.str().find("<untagged>"), std::string::npos);
  std::ostringstream empty;
  race::RenderHeatmap(empty, {});
  EXPECT_EQ(empty.str(), "");
}

TEST(RaceReport, JsonCarriesClassTotalsAndHeatmap) {
  race::Report rep = SampleReport();
  rep.racy_records = 1;
  rep.suppressed_records = 4;
  rep.suppressed_occurrences = 9;
  const std::string json = race::ReportJson("unit", rep);
  EXPECT_NE(json.find("\"class\":\"racy\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"racy_records\":1"), std::string::npos);
  EXPECT_NE(json.find("\"ordered_records\":0"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed_records\":4"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed_occurrences\":9"), std::string::npos);
  EXPECT_NE(json.find("\"heatmap\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":8"), std::string::npos);
}

}  // namespace
}  // namespace csq
