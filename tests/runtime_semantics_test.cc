// Deeper runtime-semantics tests: condition-variable edge cases, barrier
// generations, coarsening sweeps, RMW operations, observer event ordering,
// per-backend behavioral details (global-lock mapping, discard-on-update),
// and parameterized determinism matrices.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/rt/api.h"

namespace csq::rt {
namespace {

RuntimeConfig Cfg(u32 n) {
  RuntimeConfig cfg;
  cfg.nthreads = n;
  cfg.segment.size_bytes = 2 << 20;
  return cfg;
}

RunResult RunOn(Backend b, const RuntimeConfig& cfg, const WorkloadFn& fn) {
  return MakeRuntime(b, cfg)->Run(fn);
}

const std::vector<Backend> kDetBackends = {Backend::kDThreads, Backend::kDwc,
                                           Backend::kConsequenceRR, Backend::kConsequenceIC};

// ---- Condition variables ------------------------------------------------------

TEST(CondVar, BroadcastWakesAllWaiters) {
  for (Backend b : kDetBackends) {
    const RunResult r = RunOn(b, Cfg(4), [](ThreadApi& api) {
      const u64 go = api.SharedAlloc(8);
      const u64 done = api.SharedAlloc(8);
      const MutexId m = api.CreateMutex();
      const CondId cv = api.CreateCond();
      std::vector<ThreadHandle> hs;
      for (int w = 0; w < 3; ++w) {
        hs.push_back(api.SpawnThread([=](ThreadApi& t) {
          t.Lock(m);
          while (t.Load<u64>(go) == 0) {
            t.CondWait(cv, m);
          }
          t.Store<u64>(done, t.Load<u64>(done) + 1);
          t.Unlock(m);
        }));
      }
      api.Work(20000);  // let all three block
      api.Lock(m);
      api.Store<u64>(go, 1);
      api.CondBroadcast(cv);
      api.Unlock(m);
      for (auto h : hs) {
        api.JoinThread(h);
      }
      return api.Load<u64>(done);
    });
    EXPECT_EQ(r.checksum, 3u) << BackendName(b);
  }
}

TEST(CondVar, SignalBeforeAnyWaiterIsLostButPredicateSaves) {
  // Classic mesa semantics: signals do not persist; the predicate loop must
  // re-check. This program is correct regardless of signal/wait interleaving.
  for (Backend b : kDetBackends) {
    const RunResult r = RunOn(b, Cfg(2), [](ThreadApi& api) {
      const u64 ready = api.SharedAlloc(8);
      const MutexId m = api.CreateMutex();
      const CondId cv = api.CreateCond();
      const ThreadHandle prod = api.SpawnThread([=](ThreadApi& t) {
        t.Lock(m);
        t.Store<u64>(ready, 7);
        t.CondSignal(cv);  // may fire before the consumer ever waits
        t.Unlock(m);
      });
      const ThreadHandle cons = api.SpawnThread([=](ThreadApi& t) {
        t.Work(30000);  // arrive late on purpose
        t.Lock(m);
        while (t.Load<u64>(ready) == 0) {
          t.CondWait(cv, m);
        }
        const u64 v = t.Load<u64>(ready);
        t.Unlock(m);
        t.Store<u64>(ready, v + 1);
        // publish via exit commit
      });
      api.JoinThread(prod);
      api.JoinThread(cons);
      return api.Load<u64>(ready);
    });
    EXPECT_EQ(r.checksum, 8u) << BackendName(b);
  }
}

// ---- Barriers -------------------------------------------------------------------

TEST(Barrier, SurvivesManyGenerations) {
  for (Backend b : kDetBackends) {
    const u32 gens = 25;
    const RunResult r = RunOn(b, Cfg(4), [&](ThreadApi& api) {
      const u64 acc = api.SharedAlloc(8 * 4, 4096);
      const BarrierId bar = api.CreateBarrier(4);
      std::vector<ThreadHandle> hs;
      for (u32 w = 0; w < 4; ++w) {
        hs.push_back(api.SpawnThread([=](ThreadApi& t) {
          for (u32 g = 0; g < gens; ++g) {
            // Everyone reads the previous generation's sum, adds to own slot.
            u64 sum = 0;
            for (u32 i = 0; i < 4; ++i) {
              sum += t.Load<u64>(acc + 8 * i);
            }
            t.BarrierWait(bar);
            t.Store<u64>(acc + 8 * w, sum / 4 + w + 1);
            t.BarrierWait(bar);
          }
        }));
      }
      for (auto h : hs) {
        api.JoinThread(h);
      }
      u64 d = 0;
      for (u32 i = 0; i < 4; ++i) {
        d = d * 1315423911u + api.Load<u64>(acc + 8 * i);
      }
      return d;
    });
    const RunResult again = RunOn(b, Cfg(4), [&](ThreadApi& api) {
      // identical body, fresh run
      const u64 acc = api.SharedAlloc(8 * 4, 4096);
      const BarrierId bar = api.CreateBarrier(4);
      std::vector<ThreadHandle> hs;
      for (u32 w = 0; w < 4; ++w) {
        hs.push_back(api.SpawnThread([=](ThreadApi& t) {
          for (u32 g = 0; g < gens; ++g) {
            u64 sum = 0;
            for (u32 i = 0; i < 4; ++i) {
              sum += t.Load<u64>(acc + 8 * i);
            }
            t.BarrierWait(bar);
            t.Store<u64>(acc + 8 * w, sum / 4 + w + 1);
            t.BarrierWait(bar);
          }
        }));
      }
      for (auto h : hs) {
        api.JoinThread(h);
      }
      u64 d = 0;
      for (u32 i = 0; i < 4; ++i) {
        d = d * 1315423911u + api.Load<u64>(acc + 8 * i);
      }
      return d;
    });
    EXPECT_EQ(r.checksum, again.checksum) << BackendName(b);
    EXPECT_NE(r.checksum, 0u);
  }
}

TEST(Barrier, TwoIndependentBarriersDoNotInterfere) {
  const RunResult r = RunOn(Backend::kConsequenceIC, Cfg(4), [](ThreadApi& api) {
    const u64 a = api.SharedAlloc(8);
    const u64 c = api.SharedAlloc(8);
    const BarrierId b1 = api.CreateBarrier(2);
    const BarrierId b2 = api.CreateBarrier(2);
    std::vector<ThreadHandle> hs;
    for (u32 w = 0; w < 2; ++w) {
      hs.push_back(api.SpawnThread([=](ThreadApi& t) {
        for (int i = 0; i < 10; ++i) {
          t.BarrierWait(b1);
          if (t.Tid() == 1) {
            t.Store<u64>(a, t.Load<u64>(a) + 1);
          }
          t.BarrierWait(b1);
        }
      }));
    }
    for (u32 w = 0; w < 2; ++w) {
      hs.push_back(api.SpawnThread([=](ThreadApi& t) {
        for (int i = 0; i < 10; ++i) {
          t.BarrierWait(b2);
          if (t.Tid() == 3) {
            t.Store<u64>(c, t.Load<u64>(c) + 2);
          }
          t.BarrierWait(b2);
        }
      }));
    }
    for (auto h : hs) {
      api.JoinThread(h);
    }
    return api.Load<u64>(a) * 1000 + api.Load<u64>(c);
  });
  EXPECT_EQ(r.checksum, 10u * 1000 + 20u);
}

// ---- Atomic RMW ------------------------------------------------------------------

class RmwTest : public ::testing::TestWithParam<Backend> {};

TEST_P(RmwTest, AddExchangeMaxSemantics) {
  const Backend b = GetParam();
  const RunResult r = RunOn(b, Cfg(2), [](ThreadApi& api) {
    const u64 a = api.SharedAlloc(8);
    EXPECT_EQ(api.AtomicRmw(a, RmwOp::kAdd, 5), 0u);
    EXPECT_EQ(api.AtomicRmw(a, RmwOp::kAdd, 3), 5u);
    EXPECT_EQ(api.AtomicRmw(a, RmwOp::kExchange, 100), 8u);
    EXPECT_EQ(api.AtomicRmw(a, RmwOp::kMax, 50), 100u);   // no change
    EXPECT_EQ(api.AtomicRmw(a, RmwOp::kMax, 200), 100u);  // raises
    return api.Load<u64>(a);
  });
  EXPECT_EQ(r.checksum, 200u) << BackendName(b);
}

TEST_P(RmwTest, ConcurrentMaxConverges) {
  const Backend b = GetParam();
  const RunResult r = RunOn(b, Cfg(4), [](ThreadApi& api) {
    const u64 a = api.SharedAlloc(8);
    std::vector<ThreadHandle> hs;
    for (u32 w = 0; w < 4; ++w) {
      hs.push_back(api.SpawnThread([=](ThreadApi& t) {
        for (int i = 0; i < 10; ++i) {
          t.Work(100);
          t.AtomicRmw(a, RmwOp::kMax, t.Tid() * 100 + static_cast<u64>(i));
        }
      }));
    }
    for (auto h : hs) {
      api.JoinThread(h);
    }
    return api.Load<u64>(a);
  });
  EXPECT_EQ(r.checksum, 409u) << BackendName(b);  // tid 4 * 100 + 9
}

INSTANTIATE_TEST_SUITE_P(AllDet, RmwTest,
                         ::testing::Values(Backend::kPthreads, Backend::kDThreads, Backend::kDwc,
                                           Backend::kConsequenceRR, Backend::kConsequenceIC),
                         [](const ::testing::TestParamInfo<Backend>& i) {
                           std::string n(BackendName(i.param));
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

// ---- Coarsening sweep -------------------------------------------------------------

class CoarsenLevelTest : public ::testing::TestWithParam<u32> {};

TEST_P(CoarsenLevelTest, EveryStaticLevelIsCorrectAndDeterministic) {
  RuntimeConfig cfg = Cfg(4);
  cfg.adaptive_coarsening = false;
  cfg.static_coarsen_level = GetParam();
  const WorkloadFn fn = [](ThreadApi& api) {
    const u64 c = api.SharedAlloc(8);
    const MutexId m = api.CreateMutex();
    std::vector<ThreadHandle> hs;
    for (u32 w = 0; w < 4; ++w) {
      hs.push_back(api.SpawnThread([=](ThreadApi& t) {
        for (int i = 0; i < 30; ++i) {
          t.Work(150);
          t.Lock(m);
          t.Store<u64>(c, t.Load<u64>(c) + 1);
          t.Unlock(m);
        }
      }));
    }
    for (auto h : hs) {
      api.JoinThread(h);
    }
    return api.Load<u64>(c);
  };
  const RunResult a = RunOn(Backend::kConsequenceIC, cfg, fn);
  cfg.costs.jitter_bp = 900;
  cfg.costs.jitter_seed = 123;
  const RunResult b = RunOn(Backend::kConsequenceIC, cfg, fn);
  EXPECT_EQ(a.checksum, 120u);
  EXPECT_EQ(b.checksum, 120u);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
}

INSTANTIATE_TEST_SUITE_P(Levels, CoarsenLevelTest, ::testing::Values(0u, 1u, 2u, 3u, 5u, 8u, 16u, 64u));

// ---- Observer event stream ---------------------------------------------------------

class RecordingObserver : public SyncObserver {
 public:
  struct Ev {
    char kind;  // 'A', 'R', 'C'
    u32 tid;
    u64 obj;
  };
  void OnAcquire(u32 tid, u64 object) override { evs.push_back({'A', tid, object}); }
  void OnRelease(u32 tid, u64 object) override { evs.push_back({'R', tid, object}); }
  void OnCommit(u32 tid, const std::vector<u32>& pages) override {
    evs.push_back({'C', tid, pages.size()});
  }
  std::vector<Ev> evs;
};

TEST(Observer, LockPairsAreWellNested) {
  RecordingObserver obs;
  RuntimeConfig cfg = Cfg(2);
  cfg.observer = &obs;
  cfg.adaptive_coarsening = false;
  RunOn(Backend::kConsequenceIC, cfg, [](ThreadApi& api) {
    const MutexId m = api.CreateMutex();
    const u64 x = api.SharedAlloc(8);
    api.Lock(m);
    api.Store<u64>(x, 1);
    api.Unlock(m);
    api.Lock(m);
    api.Unlock(m);
    return u64{0};
  });
  // Per mutex object: acquires and releases alternate A,R,A,R.
  const u64 mobj = SyncObjId(SyncObjKind::kMutex, 0);
  std::string pattern;
  for (const auto& e : obs.evs) {
    if ((e.kind == 'A' || e.kind == 'R') && e.obj == mobj) {
      pattern += e.kind;
    }
  }
  EXPECT_EQ(pattern, "ARAR");
}

TEST(Observer, CommitPrecedesItsRelease) {
  RecordingObserver obs;
  RuntimeConfig cfg = Cfg(2);
  cfg.observer = &obs;
  cfg.adaptive_coarsening = false;
  RunOn(Backend::kConsequenceIC, cfg, [](ThreadApi& api) {
    const MutexId m = api.CreateMutex();
    const u64 x = api.SharedAlloc(8);
    api.Lock(m);
    api.Store<u64>(x, 42);  // dirty page committed at unlock
    api.Unlock(m);
    return u64{0};
  });
  const u64 mobj = SyncObjId(SyncObjKind::kMutex, 0);
  i32 last_commit = -1;
  i32 release_at = -1;
  for (usize i = 0; i < obs.evs.size(); ++i) {
    if (obs.evs[i].kind == 'C' && obs.evs[i].obj > 0) {
      last_commit = static_cast<i32>(i);
    }
    if (obs.evs[i].kind == 'R' && obs.evs[i].obj == mobj) {
      release_at = static_cast<i32>(i);
    }
  }
  ASSERT_GE(release_at, 0);
  ASSERT_GE(last_commit, 0);
  EXPECT_LT(last_commit, release_at);
}

// ---- Backend-specific semantics ----------------------------------------------------

TEST(DThreadsSemantics, DistinctMutexesShareOneGlobalLock) {
  // Under DThreads/DWC, two critical sections under *different* mutexes still
  // exclude each other. We detect overlap via a guard variable.
  for (Backend b : {Backend::kDThreads, Backend::kDwc}) {
    const RunResult r = RunOn(b, Cfg(2), [](ThreadApi& api) {
      const u64 inside = api.SharedAlloc(8);
      const u64 overlap = api.SharedAlloc(8);
      const MutexId m1 = api.CreateMutex();
      const MutexId m2 = api.CreateMutex();
      std::vector<ThreadHandle> hs;
      for (u32 w = 0; w < 2; ++w) {
        hs.push_back(api.SpawnThread([=](ThreadApi& t) {
          const MutexId m = (t.Tid() == 1) ? m1 : m2;
          for (int i = 0; i < 10; ++i) {
            t.Lock(m);
            // Inside a critical section the other thread can never commit an
            // "inside=1" state if exclusion is global: we'd see it at our
            // next update (which happened at Lock).
            if (t.Load<u64>(inside) != 0) {
              t.Store<u64>(overlap, 1);
            }
            t.Store<u64>(inside, 1);
            t.Work(300);
            t.Store<u64>(inside, 0);
            t.Unlock(m);
            t.Work(100);
          }
        }));
      }
      for (auto h : hs) {
        api.JoinThread(h);
      }
      return api.Load<u64>(overlap);
    });
    EXPECT_EQ(r.checksum, 0u) << BackendName(b) << " global lock must serialize";
  }
}

TEST(ConsequenceSemantics, DistinctMutexesOverlapUnderConsequence) {
  // Under Consequence, critical sections under *different* locks execute
  // concurrently (Fig 5): only the lock/unlock coordination serializes. We
  // detect the concurrency through virtual completion time: long critical
  // sections under two distinct locks must finish much faster than the same
  // program forced through one lock.
  const auto body = [](bool distinct) {
    return [distinct](ThreadApi& api) {
      const MutexId m1 = api.CreateMutex();
      const MutexId m2 = api.CreateMutex();
      std::vector<ThreadHandle> hs;
      for (u32 w = 0; w < 2; ++w) {
        hs.push_back(api.SpawnThread([=](ThreadApi& t) {
          const MutexId m = (distinct && t.Tid() == 2) ? m2 : m1;
          for (int i = 0; i < 15; ++i) {
            t.Lock(m);
            t.Work(20000);  // long critical section
            t.Unlock(m);
            t.Work(100);
          }
        }));
      }
      for (auto h : hs) {
        api.JoinThread(h);
      }
      return u64{1};
    };
  };
  RuntimeConfig cfg = Cfg(2);
  cfg.adaptive_coarsening = false;  // isolate the Fig 5 effect from coarsening
  const u64 vt_distinct = RunOn(Backend::kConsequenceIC, cfg, body(true)).vtime;
  const u64 vt_single = RunOn(Backend::kConsequenceIC, cfg, body(false)).vtime;
  EXPECT_LT(static_cast<double>(vt_distinct), 0.7 * static_cast<double>(vt_single));
}

// ---- Determinism across thread counts -----------------------------------------------

class ThreadCountDeterminism : public ::testing::TestWithParam<u32> {};

TEST_P(ThreadCountDeterminism, TraceStableAcrossJitterAtEveryThreadCount) {
  const u32 n = GetParam();
  const WorkloadFn fn = [n](ThreadApi& api) {
    const u64 c = api.SharedAlloc(8);
    const MutexId m = api.CreateMutex();
    const BarrierId bar = api.CreateBarrier(n);
    std::vector<ThreadHandle> hs;
    for (u32 w = 0; w < n; ++w) {
      hs.push_back(api.SpawnThread([=](ThreadApi& t) {
        for (int i = 0; i < 6; ++i) {
          t.Work(100 * (t.Tid() + 1));
          t.Lock(m);
          t.Store<u64>(c, t.Load<u64>(c) * 3 + t.Tid());
          t.Unlock(m);
          t.BarrierWait(bar);
        }
      }));
    }
    for (auto h : hs) {
      api.JoinThread(h);
    }
    return api.Load<u64>(c);
  };
  u64 ref_trace = 0;
  u64 ref_sum = 0;
  for (u64 seed : {0ULL, 5ULL, 50ULL}) {
    RuntimeConfig cfg = Cfg(n);
    cfg.costs.jitter_bp = 700;
    cfg.costs.jitter_seed = seed;
    const RunResult r = RunOn(Backend::kConsequenceIC, cfg, fn);
    if (seed == 0) {
      ref_trace = r.trace_digest;
      ref_sum = r.checksum;
    } else {
      EXPECT_EQ(r.trace_digest, ref_trace) << n << " threads, seed " << seed;
      EXPECT_EQ(r.checksum, ref_sum);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, ThreadCountDeterminism,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u, 24u, 32u));

}  // namespace
}  // namespace csq::rt
