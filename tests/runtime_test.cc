// Integration tests for the runtime family: pthreads, DThreads, DWC,
// Consequence-RR, Consequence-IC. Exercises mutexes, condition variables,
// barriers, spawn/join, atomics — and the central determinism property:
// identical program output and schedule fingerprint across timing-jitter
// seeds for every deterministic backend, for race-free AND racy programs.
#include <gtest/gtest.h>

#include <vector>

#include "src/rt/api.h"

namespace csq::rt {
namespace {

const std::vector<Backend> kDetBackends = {Backend::kDThreads, Backend::kDwc,
                                           Backend::kConsequenceRR, Backend::kConsequenceIC};
const std::vector<Backend> kAllBackends = {Backend::kPthreads, Backend::kDThreads, Backend::kDwc,
                                           Backend::kConsequenceRR, Backend::kConsequenceIC};

RuntimeConfig SmallCfg(u32 nthreads = 4) {
  RuntimeConfig cfg;
  cfg.nthreads = nthreads;
  cfg.segment.size_bytes = 1 << 20;
  return cfg;
}

// ---- Workloads used by the tests --------------------------------------------

// N workers each add their (tid+1) value `iters` times to a shared counter
// under a mutex. Race-free; final value is schedule-independent.
u64 LockedCounter(ThreadApi& api, u32 workers, u32 iters) {
  const u64 counter = api.SharedAlloc(8);
  const MutexId m = api.CreateMutex();
  std::vector<ThreadHandle> hs;
  for (u32 w = 0; w < workers; ++w) {
    hs.push_back(api.SpawnThread([=, &hs](ThreadApi& t) {
      for (u32 i = 0; i < iters; ++i) {
        t.Work(200);
        t.Lock(m);
        t.Store<u64>(counter, t.Load<u64>(counter) + (t.Tid() + 1));
        t.Unlock(m);
      }
    }));
  }
  for (ThreadHandle h : hs) {
    api.JoinThread(h);
  }
  return api.Load<u64>(counter);
}

// Racy increments — the classic lost-update race. Deterministic backends must
// produce a seed-independent (if surprising) result; pthreads need not.
u64 RacyCounter(ThreadApi& api, u32 workers, u32 iters) {
  const u64 counter = api.SharedAlloc(8);
  std::vector<ThreadHandle> hs;
  for (u32 w = 0; w < workers; ++w) {
    hs.push_back(api.SpawnThread([=](ThreadApi& t) {
      for (u32 i = 0; i < iters; ++i) {
        t.Work(50 + 13 * t.Tid());
        t.Store<u64>(counter, t.Load<u64>(counter) + 1);  // no lock!
      }
    }));
  }
  for (ThreadHandle h : hs) {
    api.JoinThread(h);
  }
  return api.Load<u64>(counter);
}

// Barrier-phased vector doubling: every phase must see the previous phase's
// writes from all threads.
u64 BarrierPhases(ThreadApi& api, u32 workers, u32 phases) {
  const u32 n = workers * 16;
  const u64 vec = api.SharedAlloc(n * 8);
  for (u32 i = 0; i < n; ++i) {
    api.Store<u64>(vec + 8 * i, i + 1);
  }
  const BarrierId b = api.CreateBarrier(workers);
  std::vector<ThreadHandle> hs;
  for (u32 w = 0; w < workers; ++w) {
    hs.push_back(api.SpawnThread([=](ThreadApi& t) {
      const u32 me = t.Tid() - 1;  // worker index (main is tid 0)
      for (u32 p = 0; p < phases; ++p) {
        // Read a neighbour's stripe (cross-thread dependence), write my own.
        const u32 src = ((me + 1) % workers) * 16;
        u64 acc = 0;
        for (u32 i = 0; i < 16; ++i) {
          acc += t.Load<u64>(vec + 8 * (src + i));
        }
        t.BarrierWait(b);
        for (u32 i = 0; i < 16; ++i) {
          const u64 a = vec + 8 * (me * 16 + i);
          t.Store<u64>(a, t.Load<u64>(a) * 2 + acc % 7);
        }
        t.BarrierWait(b);
      }
    }));
  }
  for (ThreadHandle h : hs) {
    api.JoinThread(h);
  }
  u64 digest = 1469598103934665603ULL;
  for (u32 i = 0; i < n; ++i) {
    digest = (digest ^ api.Load<u64>(vec + 8 * i)) * 1099511628211ULL;
  }
  return digest;
}

// Producer/consumer over a bounded queue with condition variables.
u64 ProducerConsumer(ThreadApi& api, u32 items) {
  const u64 buf = api.SharedAlloc(8 * 8);   // 8-slot ring
  const u64 head = api.SharedAlloc(8);
  const u64 tail = api.SharedAlloc(8);
  const u64 sum = api.SharedAlloc(8);
  const MutexId m = api.CreateMutex();
  const CondId not_empty = api.CreateCond();
  const CondId not_full = api.CreateCond();
  const ThreadHandle prod = api.SpawnThread([=](ThreadApi& t) {
    for (u32 i = 1; i <= items; ++i) {
      t.Work(100);
      t.Lock(m);
      while (t.Load<u64>(tail) - t.Load<u64>(head) == 8) {
        t.CondWait(not_full, m);
      }
      const u64 pos = t.Load<u64>(tail);
      t.Store<u64>(buf + 8 * (pos % 8), i);
      t.Store<u64>(tail, pos + 1);
      t.CondSignal(not_empty);
      t.Unlock(m);
    }
  });
  const ThreadHandle cons = api.SpawnThread([=](ThreadApi& t) {
    for (u32 i = 0; i < items; ++i) {
      t.Lock(m);
      while (t.Load<u64>(tail) == t.Load<u64>(head)) {
        t.CondWait(not_empty, m);
      }
      const u64 pos = t.Load<u64>(head);
      const u64 v = t.Load<u64>(buf + 8 * (pos % 8));
      t.Store<u64>(head, pos + 1);
      t.Store<u64>(sum, t.Load<u64>(sum) + v * v);
      t.CondSignal(not_full);
      t.Unlock(m);
      t.Work(150);
    }
  });
  api.JoinThread(prod);
  api.JoinThread(cons);
  return api.Load<u64>(sum);
}

RunResult RunOn(Backend b, const RuntimeConfig& cfg, const WorkloadFn& fn) {
  return MakeRuntime(b, cfg)->Run(fn);
}

// ---- Correctness across all backends ----------------------------------------

TEST(Runtime, LockedCounterCorrectOnAllBackends) {
  const u32 workers = 4;
  const u32 iters = 25;
  u64 expected = 0;
  for (u32 w = 0; w < workers; ++w) {
    expected += static_cast<u64>(w + 1 + 1) * iters;  // worker tids are 1..workers
  }
  for (Backend b : kAllBackends) {
    const RunResult r = RunOn(b, SmallCfg(workers), [&](ThreadApi& api) {
      return LockedCounter(api, workers, iters);
    });
    EXPECT_EQ(r.checksum, expected) << BackendName(b);
    EXPECT_GT(r.vtime, 0u) << BackendName(b);
  }
}

TEST(Runtime, BarrierPhasesAgreeAcrossBackends) {
  std::vector<u64> sums;
  for (Backend b : kAllBackends) {
    const RunResult r = RunOn(b, SmallCfg(4), [&](ThreadApi& api) {
      return BarrierPhases(api, 4, 5);
    });
    sums.push_back(r.checksum);
  }
  for (usize i = 1; i < sums.size(); ++i) {
    EXPECT_EQ(sums[i], sums[0]) << BackendName(kAllBackends[i]);
  }
}

TEST(Runtime, ProducerConsumerAgreesAcrossBackends) {
  u64 expected = 0;
  for (u64 i = 1; i <= 40; ++i) {
    expected += i * i;
  }
  for (Backend b : kAllBackends) {
    const RunResult r = RunOn(b, SmallCfg(2), [&](ThreadApi& api) {
      return ProducerConsumer(api, 40);
    });
    EXPECT_EQ(r.checksum, expected) << BackendName(b);
  }
}

TEST(Runtime, AtomicRmwIsAtomicOnDetBackends) {
  for (Backend b : kDetBackends) {
    const RunResult r = RunOn(b, SmallCfg(4), [&](ThreadApi& api) {
      const u64 a = api.SharedAlloc(8);
      std::vector<ThreadHandle> hs;
      for (u32 w = 0; w < 4; ++w) {
        hs.push_back(api.SpawnThread([=](ThreadApi& t) {
          for (int i = 0; i < 20; ++i) {
            t.Work(30);
            t.AtomicRmw(a, RmwOp::kAdd, 1);
          }
        }));
      }
      for (ThreadHandle h : hs) {
        api.JoinThread(h);
      }
      return api.Load<u64>(a);
    });
    EXPECT_EQ(r.checksum, 80u) << BackendName(b);
  }
}

// ---- The determinism property -----------------------------------------------

// For each deterministic backend, run the same (racy!) program under several
// timing-jitter seeds: program output AND schedule fingerprint must be
// bit-identical. This is the paper's core claim.
TEST(Runtime, DetBackendsAreJitterInvariantEvenForRacyPrograms) {
  for (Backend b : kDetBackends) {
    u64 ref_checksum = 0;
    u64 ref_trace = 0;
    for (u64 seed : {0ULL, 1ULL, 2ULL, 12345ULL}) {
      RuntimeConfig cfg = SmallCfg(4);
      cfg.costs.jitter_bp = 800;  // ±8% timing noise
      cfg.costs.jitter_seed = seed;
      const RunResult r = RunOn(b, cfg, [&](ThreadApi& api) {
        return RacyCounter(api, 4, 30) ^ (BarrierPhases(api, 4, 3) << 1);
      });
      if (seed == 0) {
        ref_checksum = r.checksum;
        ref_trace = r.trace_digest;
      } else {
        EXPECT_EQ(r.checksum, ref_checksum) << BackendName(b) << " seed " << seed;
        EXPECT_EQ(r.trace_digest, ref_trace) << BackendName(b) << " seed " << seed;
      }
    }
  }
}

// Workers append their tid to a shared log under a mutex; the checksum is
// order-sensitive, so it fingerprints the lock-acquisition schedule.
u64 OrderLog(ThreadApi& api, u32 workers, u32 iters) {
  const u64 log_len = api.SharedAlloc(8);
  const u64 log = api.SharedAlloc(8 * workers * iters);
  const MutexId m = api.CreateMutex();
  std::vector<ThreadHandle> hs;
  for (u32 w = 0; w < workers; ++w) {
    hs.push_back(api.SpawnThread([=](ThreadApi& t) {
      for (u32 i = 0; i < iters; ++i) {
        t.Work(100 + 37 * t.Tid() + 11 * i);
        t.Lock(m);
        const u64 len = t.Load<u64>(log_len);
        t.Store<u64>(log + 8 * len, t.Tid());
        t.Store<u64>(log_len, len + 1);
        t.Unlock(m);
      }
    }));
  }
  for (ThreadHandle h : hs) {
    api.JoinThread(h);
  }
  u64 digest = 1469598103934665603ULL;
  const u64 n = api.Load<u64>(log_len);
  for (u64 i = 0; i < n; ++i) {
    digest = (digest ^ api.Load<u64>(log + 8 * i)) * 1099511628211ULL;
  }
  return digest;
}

TEST(Runtime, PthreadsIsNotJitterInvariantForOrderDependentPrograms) {
  // The control: under pthreads, lock-acquisition order follows (jittered)
  // timing, so an order-sensitive program produces different outputs across
  // seeds. The same program is seed-invariant on every deterministic backend
  // (next test).
  std::vector<u64> checksums;
  for (u64 seed : {0ULL, 1ULL, 2ULL, 3ULL, 4ULL}) {
    RuntimeConfig cfg = SmallCfg(4);
    cfg.costs.jitter_bp = 2000;  // ±20%
    cfg.costs.jitter_seed = seed;
    const RunResult r = RunOn(Backend::kPthreads, cfg, [&](ThreadApi& api) {
      return OrderLog(api, 4, 20);
    });
    checksums.push_back(r.checksum);
  }
  bool any_diff = false;
  for (usize i = 1; i < checksums.size(); ++i) {
    any_diff |= checksums[i] != checksums[0];
  }
  EXPECT_TRUE(any_diff);
}

TEST(Runtime, DetBackendsAreJitterInvariantForOrderDependentPrograms) {
  for (Backend b : kDetBackends) {
    u64 ref = 0;
    for (u64 seed : {0ULL, 7ULL, 99ULL}) {
      RuntimeConfig cfg = SmallCfg(4);
      cfg.costs.jitter_bp = 2000;
      cfg.costs.jitter_seed = seed;
      const RunResult r = RunOn(b, cfg, [&](ThreadApi& api) {
        return OrderLog(api, 4, 20);
      });
      if (seed == 0) {
        ref = r.checksum;
      } else {
        EXPECT_EQ(r.checksum, ref) << BackendName(b) << " seed " << seed;
      }
    }
  }
}

TEST(Runtime, RepeatedRunsAreBitIdentical) {
  for (Backend b : kDetBackends) {
    const auto run = [&] {
      return RunOn(b, SmallCfg(3), [&](ThreadApi& api) {
        return LockedCounter(api, 3, 20) + ProducerConsumer(api, 10);
      });
    };
    const RunResult a = run();
    const RunResult c = run();
    EXPECT_EQ(a.checksum, c.checksum) << BackendName(b);
    EXPECT_EQ(a.trace_digest, c.trace_digest) << BackendName(b);
    EXPECT_EQ(a.vtime, c.vtime) << BackendName(b);
  }
}

// ---- Optimization configurations preserve correctness ------------------------

TEST(Runtime, CoarseningTogglesPreserveResults) {
  const WorkloadFn wl = [](ThreadApi& api) { return LockedCounter(api, 4, 40); };
  RuntimeConfig on = SmallCfg(4);
  on.adaptive_coarsening = true;
  RuntimeConfig off = SmallCfg(4);
  off.adaptive_coarsening = false;
  off.static_coarsen_level = 0;
  RuntimeConfig stat = SmallCfg(4);
  stat.adaptive_coarsening = false;
  stat.static_coarsen_level = 4;
  const u64 a = RunOn(Backend::kConsequenceIC, on, wl).checksum;
  const u64 b = RunOn(Backend::kConsequenceIC, off, wl).checksum;
  const u64 c = RunOn(Backend::kConsequenceIC, stat, wl).checksum;
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

TEST(Runtime, AllOptimizationTogglesPreserveResults) {
  const WorkloadFn wl = [](ThreadApi& api) {
    return BarrierPhases(api, 4, 4) ^ LockedCounter(api, 4, 10);
  };
  const u64 ref = RunOn(Backend::kConsequenceIC, SmallCfg(4), wl).checksum;
  for (int knob = 0; knob < 5; ++knob) {
    RuntimeConfig cfg = SmallCfg(4);
    switch (knob) {
      case 0:
        cfg.adaptive_coarsening = false;
        break;
      case 1:
        cfg.adaptive_overflow = false;
        break;
      case 2:
        cfg.thread_reuse = false;
        break;
      case 3:
        cfg.user_space_reads = false;
        break;
      case 4:
        cfg.parallel_barrier_commit = false;
        break;
    }
    EXPECT_EQ(RunOn(Backend::kConsequenceIC, cfg, wl).checksum, ref) << "knob " << knob;
  }
}

// ---- §2.7 ad-hoc synchronization ----------------------------------------------

TEST(Runtime, ChunkLimitEnablesSpinFlagSync) {
  // Thread A spins on a flag set by thread B. Without a chunk limit, A would
  // never refresh its isolated view; with one, it commits+updates and sees it.
  RuntimeConfig cfg = SmallCfg(2);
  cfg.chunk_limit = 20000;
  const RunResult r = RunOn(Backend::kConsequenceIC, cfg, [&](ThreadApi& api) {
    const u64 flag = api.SharedAlloc(8);
    const u64 data = api.SharedAlloc(8);
    const ThreadHandle setter = api.SpawnThread([=](ThreadApi& t) {
      t.Work(50000);
      t.Store<u64>(data, 777);
      t.Store<u64>(flag, 1);
      // Publish via an ad-hoc "release": only the chunk limit forces it out.
      t.Work(100000);
    });
    const ThreadHandle spinner = api.SpawnThread([=](ThreadApi& t) {
      while (t.Load<u64>(flag) == 0) {
        t.Work(500);  // chunk limit forces periodic commit+update
      }
      t.Store<u64>(data, t.Load<u64>(data) + 1);
    });
    api.JoinThread(setter);
    api.JoinThread(spinner);
    return api.Load<u64>(data);
  });
  EXPECT_EQ(r.checksum, 778u);
}

// ---- Stats plumbing -----------------------------------------------------------

TEST(Runtime, StatsArePopulated) {
  const RunResult r = RunOn(Backend::kConsequenceIC, SmallCfg(4), [&](ThreadApi& api) {
    return LockedCounter(api, 4, 20) + BarrierPhases(api, 4, 2);
  });
  EXPECT_GT(r.commits, 0u);
  EXPECT_GT(r.token_acquires, 0u);
  EXPECT_GT(r.peak_mem_bytes, 0u);
  EXPECT_GT(r.cow_faults, 0u);
  EXPECT_GT(r.cat_totals[static_cast<usize>(sim::TimeCat::kChunk)], 0u);
  EXPECT_GT(r.cat_totals[static_cast<usize>(sim::TimeCat::kCommit)], 0u);
  EXPECT_GE(r.cat_by_thread.size(), 5u);
}

TEST(Runtime, ThreadReusePoolReducesSpawnCost) {
  // Sequential fork-join waves: with reuse, later spawns hit the pool.
  const WorkloadFn wl = [](ThreadApi& api) {
    u64 acc = 0;
    for (int wave = 0; wave < 6; ++wave) {
      std::vector<ThreadHandle> hs;
      for (int w = 0; w < 3; ++w) {
        hs.push_back(api.SpawnThread([&acc](ThreadApi& t) { t.Work(2000); }));
      }
      for (ThreadHandle h : hs) {
        api.JoinThread(h);
      }
      acc += hs.size();
    }
    return acc;
  };
  RuntimeConfig with = SmallCfg(3);
  with.thread_reuse = true;
  RuntimeConfig without = SmallCfg(3);
  without.thread_reuse = false;
  const RunResult a = RunOn(Backend::kConsequenceIC, with, wl);
  const RunResult b = RunOn(Backend::kConsequenceIC, without, wl);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_LT(a.vtime, b.vtime);  // reuse must be cheaper
}

}  // namespace
}  // namespace csq::rt
