// Tests for the deterministic reader-writer lock and for the §6 asynchronous
// mutex-commit mode (TSO + determinism preserved, checksums identical to the
// synchronous mode).
#include <gtest/gtest.h>

#include <vector>

#include "src/rt/api.h"
#include "src/rt/rw_lock.h"
#include "src/util/hash.h"
#include "src/wl/workloads.h"

namespace csq::rt {
namespace {

RuntimeConfig Cfg(u32 n) {
  RuntimeConfig cfg;
  cfg.nthreads = n;
  cfg.segment.size_bytes = 8 << 20;
  return cfg;
}

// ---- RwLock -------------------------------------------------------------------

// Readers observe a consistent snapshot (writer updates two fields that must
// always agree); the final count of writes matches.
u64 RwProgram(ThreadApi& api, u32 readers, u32 writers, u32 iters) {
  RwLock rw(api);
  const u64 a = api.SharedAlloc(8);
  const u64 b = api.SharedAlloc(8);
  const u64 torn = api.SharedAlloc(8);
  const u64 reads_done = api.SharedAlloc(8);
  std::vector<ThreadHandle> hs;
  for (u32 w = 0; w < writers; ++w) {
    hs.push_back(api.SpawnThread([&, iters](ThreadApi& t) {
      for (u32 i = 0; i < iters; ++i) {
        t.Work(300);
        rw.WriteLock(t);
        const u64 v = t.Load<u64>(a);
        t.Store<u64>(a, v + 1);
        t.Work(100);  // window where a != b without exclusion
        t.Store<u64>(b, v + 1);
        rw.WriteUnlock(t);
      }
    }));
  }
  for (u32 r = 0; r < readers; ++r) {
    hs.push_back(api.SpawnThread([&, iters](ThreadApi& t) {
      for (u32 i = 0; i < iters; ++i) {
        t.Work(150);
        rw.ReadLock(t);
        if (t.Load<u64>(a) != t.Load<u64>(b)) {
          t.Store<u64>(torn, 1);  // must never happen
        }
        rw.ReadUnlock(t);
      }
      // Count completed reader loops through a deterministic RMW.
      t.AtomicRmw(reads_done, RmwOp::kAdd, iters);
    }));
  }
  for (auto h : hs) {
    api.JoinThread(h);
  }
  Fnv1a hash;
  hash.Mix(api.Load<u64>(a));
  hash.Mix(api.Load<u64>(torn));
  hash.Mix(api.Load<u64>(reads_done));
  return hash.Digest();
}

TEST(RwLock, NoTornReadsAndAllWritesLand) {
  for (Backend be : {Backend::kPthreads, Backend::kDThreads, Backend::kDwc,
                     Backend::kConsequenceRR, Backend::kConsequenceIC}) {
    const RunResult r = MakeRuntime(be, Cfg(6))->Run([](ThreadApi& api) {
      RwLock rw(api);
      const u64 a = api.SharedAlloc(8);
      const u64 b = api.SharedAlloc(8);
      const u64 torn = api.SharedAlloc(8);
      std::vector<ThreadHandle> hs;
      for (u32 w = 0; w < 2; ++w) {
        hs.push_back(api.SpawnThread([&](ThreadApi& t) {
          for (int i = 0; i < 12; ++i) {
            rw.WriteLock(t);
            const u64 v = t.Load<u64>(a);
            t.Store<u64>(a, v + 1);
            t.Work(80);
            t.Store<u64>(b, v + 1);
            rw.WriteUnlock(t);
            t.Work(200);
          }
        }));
      }
      for (u32 rd = 0; rd < 4; ++rd) {
        hs.push_back(api.SpawnThread([&](ThreadApi& t) {
          for (int i = 0; i < 12; ++i) {
            rw.ReadLock(t);
            if (t.Load<u64>(a) != t.Load<u64>(b)) {
              t.Store<u64>(torn, 1);
            }
            rw.ReadUnlock(t);
            t.Work(120);
          }
        }));
      }
      for (auto h : hs) {
        api.JoinThread(h);
      }
      return api.Load<u64>(torn) * 1000 + api.Load<u64>(a);
    });
    EXPECT_EQ(r.checksum, 24u) << BackendName(be);  // torn=0, a = 2*12
  }
}

TEST(RwLock, DeterministicAcrossJitter) {
  u64 ref = 0;
  for (u64 seed : {0ULL, 11ULL, 77ULL}) {
    RuntimeConfig cfg = Cfg(6);
    cfg.costs.jitter_bp = 900;
    cfg.costs.jitter_seed = seed;
    const RunResult r = MakeRuntime(Backend::kConsequenceIC, cfg)->Run([](ThreadApi& api) {
      return RwProgram(api, 3, 2, 10);
    });
    if (seed == 0) {
      ref = r.checksum;
    } else {
      EXPECT_EQ(r.checksum, ref) << "seed " << seed;
    }
  }
}

TEST(RwLock, ReadersRunConcurrently) {
  // 4 readers holding long read sections must overlap: completion time well
  // under the serialized sum.
  const WorkloadFn fn = [](ThreadApi& api) {
    RwLock rw(api);
    std::vector<ThreadHandle> hs;
    for (u32 r = 0; r < 4; ++r) {
      hs.push_back(api.SpawnThread([&](ThreadApi& t) {
        rw.ReadLock(t);
        t.Work(50000);
        rw.ReadUnlock(t);
      }));
    }
    for (auto h : hs) {
      api.JoinThread(h);
    }
    return u64{1};
  };
  RuntimeConfig cfg = Cfg(4);
  cfg.adaptive_coarsening = false;  // isolate rwlock concurrency from coarsening
  const u64 vt = MakeRuntime(Backend::kConsequenceIC, cfg)->Run(fn).vtime;
  // 4 x 50000 fully serialized would exceed 220k. The measured time includes
  // §3.2 publication-lag windows (the adaptive overflow period doubles inside
  // the long chunk, so an unlocker waits for the next publication; clock
  // publications land in global (vtime, tid) order, so a waiter observes a
  // publication no earlier than the instant it was made) — faithful Kendo
  // behavior, not a serialization.
  EXPECT_LT(vt, 200000u);
}

// ---- Async mutex commits (§6 mode) ----------------------------------------------

TEST(AsyncLockCommit, ChecksumsMatchSyncModeOnAllWorkloads) {
  for (const wl::WorkloadInfo& w : wl::AllWorkloads()) {
    wl::WlParams p;
    p.workers = 4;
    RuntimeConfig sync_cfg = Cfg(4);
    RuntimeConfig async_cfg = Cfg(4);
    async_cfg.async_lock_commit = true;
    const u64 s = MakeRuntime(Backend::kConsequenceIC, sync_cfg)->Run(wl::Bind(w, p)).checksum;
    const u64 a = MakeRuntime(Backend::kConsequenceIC, async_cfg)->Run(wl::Bind(w, p)).checksum;
    if (!w.racy) {
      EXPECT_EQ(s, a) << w.name;
    }
  }
}

TEST(AsyncLockCommit, DeterministicAcrossJitter) {
  const wl::WorkloadInfo* w = wl::FindWorkload("reverse_index");
  wl::WlParams p;
  p.workers = 4;
  u64 ref_checksum = 0;
  u64 ref_trace = 0;
  for (u64 seed : {0ULL, 21ULL, 84ULL}) {
    RuntimeConfig cfg = Cfg(4);
    cfg.async_lock_commit = true;
    cfg.costs.jitter_bp = 800;
    cfg.costs.jitter_seed = seed;
    const RunResult r = MakeRuntime(Backend::kConsequenceIC, cfg)->Run(wl::Bind(*w, p));
    if (seed == 0) {
      ref_checksum = r.checksum;
      ref_trace = r.trace_digest;
    } else {
      EXPECT_EQ(r.checksum, ref_checksum) << seed;
      EXPECT_EQ(r.trace_digest, ref_trace) << seed;
    }
  }
}

TEST(AsyncLockCommit, RacyProgramStillJitterInvariant) {
  // Even with commits finishing token-free, racy outcomes must be functions of
  // the program alone (installs are version-ordered per page).
  const wl::WorkloadInfo* w = wl::FindWorkload("canneal");
  wl::WlParams p;
  p.workers = 4;
  u64 ref = 0;
  for (u64 seed : {0ULL, 5ULL}) {
    RuntimeConfig cfg = Cfg(4);
    cfg.async_lock_commit = true;
    cfg.costs.jitter_bp = 1500;
    cfg.costs.jitter_seed = seed;
    const u64 sum = MakeRuntime(Backend::kConsequenceIC, cfg)->Run(wl::Bind(*w, p)).checksum;
    if (seed == 0) {
      ref = sum;
    } else {
      EXPECT_EQ(sum, ref);
    }
  }
}

}  // namespace
}  // namespace csq::rt
