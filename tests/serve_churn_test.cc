// Connection-churn stress (DESIGN.md §15, runtime §3.3): many short-lived
// sessions arriving and leaving through a small live window, cycling the
// runtime's thread-reuse pool and the shard heap's deterministic free lists.
//
// Contracts pinned here:
//   * no cross-session state leak — a session never observes another
//     session's bytes in its connection scratch, under any engine;
//   * every connection is a FRESH simulated thread (the reuse pool recycles
//     spawn cost, never thread identity);
//   * scratch-buffer reuse order is deterministic: the exact address sequence
//     is bit-identical across engines, worker counts and jitter seeds, and
//     the address set is bounded by the live-session window (LIFO recycling);
//   * thread reuse is a pure cost optimization: it must make the universe
//     cheaper (lower virtual completion time) without breaking determinism.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "serve_test_util.h"
#include "src/serve/loadgen.h"
#include "src/serve/serve.h"

namespace csq::serve {
namespace {

LoadSpec ChurnLoad() {
  LoadSpec spec = SmallLoad(1234);
  spec.sessions = 120;    // lots of connections...
  spec.churn_window = 6;  // ...through a narrow arrival window
  spec.min_requests = 2;
  spec.max_requests = 6;  // short-lived: churn dominates
  return spec;
}

ServeConfig ChurnConfig() {
  ServeConfig cfg = SmallConfig();
  cfg.shards = 2;
  cfg.max_live_sessions = 4;  // tiny live window: maximal pool cycling
  return cfg;
}

TEST(ServeChurn, NoLeaksAndFreshTidsUnderHeavyChurn) {
  const std::vector<Request> log = GenerateLoad(ChurnLoad());
  for (u32 hw : {1u, 4u}) {
    ServeConfig cfg = ChurnConfig();
    cfg.host_workers = hw;
    const ServeResult r = ShardServer(cfg).Serve(log);
    usize sessions_seen = 0;
    for (const ShardResult& s : r.shards) {
      sessions_seen += s.session_tids.size();
      std::set<u32> tids;
      for (usize i = 0; i < s.session_tids.size(); ++i) {
        EXPECT_EQ(s.session_leaks[i], 0)
            << "hw=" << hw << " shard=" << s.shard << " session#" << i
            << ": foreign bytes in connection scratch";
        EXPECT_NE(s.session_tids[i], 0u) << "session ran on the acceptor thread?";
        EXPECT_TRUE(tids.insert(s.session_tids[i]).second)
            << "hw=" << hw << " shard=" << s.shard << " session#" << i
            << ": tid recycled — reuse pool must never recycle thread identity";
      }
    }
    EXPECT_GT(sessions_seen, 100u) << "churn load collapsed; spec too small";
  }
}

TEST(ServeChurn, ScratchReuseIsBoundedAndDeterministic) {
  const std::vector<Request> log = GenerateLoad(ChurnLoad());
  const ServeConfig base = ChurnConfig();
  const ServeResult baseline = ShardServer(base).Serve(log);

  for (const ShardResult& s : baseline.shards) {
    std::set<u64> distinct(s.session_scratch.begin(), s.session_scratch.end());
    // LIFO free lists: a departing session's scratch is the next arrival's
    // scratch. The address set is bounded by the live window...
    EXPECT_LE(distinct.size(), static_cast<usize>(base.max_live_sessions))
        << "shard " << s.shard;
    // ...and with 50+ sessions over a 4-wide window, reuse must actually
    // happen (every address serves many sessions).
    EXPECT_LT(distinct.size(), s.session_scratch.size() / 4) << "shard " << s.shard;
  }

  // The exact reuse SEQUENCE (which address serves which session) is part of
  // the deterministic surface: identical across engines, worker counts and
  // jitter seeds.
  struct Variant {
    const char* label;
    u32 host_workers;
    u64 jitter_seed;
  };
  for (const Variant& v : {Variant{"threaded-3w", 3, 1}, Variant{"jitter-17", 1, 17},
                           Variant{"threaded+jitter", 2, 31}}) {
    ServeConfig cfg = base;
    cfg.host_workers = v.host_workers;
    cfg.jitter_seed = v.jitter_seed;
    const ServeResult got = ShardServer(cfg).Serve(log);
    for (u32 s = 0; s < base.shards; ++s) {
      EXPECT_EQ(baseline.shards[s].session_scratch, got.shards[s].session_scratch)
          << "variant=" << v.label << " shard=" << s << ": scratch reuse order diverged";
      EXPECT_EQ(baseline.shards[s].session_tids, got.shards[s].session_tids)
          << "variant=" << v.label << " shard=" << s << ": session->thread assignment diverged";
    }
  }
}

// Thread reuse is a cost-model optimization (§3.3): turning it off must not
// change the shard's self-consistency, and turning it on must make the
// churn-heavy universe complete in less virtual time (reused spawns skip the
// fork page-copy charge).
TEST(ServeChurn, ThreadReuseIsAPureCostOptimization) {
  const std::vector<Request> log = GenerateLoad(ChurnLoad());

  ServeConfig on = ChurnConfig();
  on.thread_reuse = true;
  ServeConfig off = ChurnConfig();
  off.thread_reuse = false;

  const ServeResult r_on = ShardServer(on).Serve(log);
  const ServeResult r_off = ShardServer(off).Serve(log);

  // Each flavor is self-consistent: a second run reproduces the bytes.
  const ServeResult r_on2 = ShardServer(on).Serve(log);
  const ServeResult r_off2 = ShardServer(off).Serve(log);
  EXPECT_EQ(EncodeAll(r_on), EncodeAll(r_on2))
      << FirstByteDivergence(EncodeAll(r_on), EncodeAll(r_on2));
  EXPECT_EQ(EncodeAll(r_off), EncodeAll(r_off2))
      << FirstByteDivergence(EncodeAll(r_off), EncodeAll(r_off2));

  u64 vtime_on = 0;
  u64 vtime_off = 0;
  for (u32 s = 0; s < on.shards; ++s) {
    vtime_on += r_on.shards[s].run.vtime;
    vtime_off += r_off.shards[s].run.vtime;
  }
  EXPECT_LT(vtime_on, vtime_off)
      << "120 churned connections should be cheaper with the reuse pool on";
}

// Sessions of the same tenant landing in different arrival slots still see
// each other's writes (the store outlives every connection): a put by an
// early session is visible to a late session's get. This is the "state
// persists across churn, scratch does not" boundary.
TEST(ServeChurn, StoreOutlivesConnectionsScratchDoesNot) {
  // Hand-built log: tenant 5, two sessions separated by enough filler
  // sessions to cycle the window several times.
  std::vector<Request> log;
  log.push_back({5, 1, Op::kPut, 7, 0xC0DE});
  for (u64 f = 0; f < 40; ++f) {
    log.push_back({6, 100 + f, Op::kPut, f % 8, f + 1});
    log.push_back({6, 100 + f, Op::kGet, f % 8, 0});
  }
  log.push_back({5, 999, Op::kGet, 7, 0});

  ServeConfig cfg = ChurnConfig();
  cfg.shards = 1;  // force everyone into one universe
  const ServeResult r = ShardServer(cfg).Serve(log);
  const ShardResult& s = r.shards[0];
  ASSERT_EQ(s.responses.size(), log.size());
  EXPECT_EQ(s.responses.back(), 0xC0DEu)
      << "a late session must observe an early (departed) session's committed put";
  for (usize i = 0; i < s.session_leaks.size(); ++i) {
    EXPECT_EQ(s.session_leaks[i], 0) << "session#" << i;
  }
}

}  // namespace
}  // namespace csq::serve
