// Serving-layer determinism contract (DESIGN.md §15): the same request log
// produces bit-identical per-shard recordings — synchronization traces,
// commit orders, responses, state digests — across
//
//   * engines: serial reference (host_workers=1) vs host-parallel,
//   * engine worker counts,
//   * front-end host worker counts (serve_threads),
//   * timing-jitter seeds (traces and responses are jitter-INvariant;
//     latency samples are jitter-dependent and excluded from the bytes),
//   * both deterministic Consequence backends,
//
// for every shard count. Shard isolation rides the same machinery: touching
// tenant A's universe must leave every other shard's recording byte-identical.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve_test_util.h"
#include "src/serve/loadgen.h"
#include "src/serve/serve.h"

namespace csq::serve {
namespace {

TEST(ServeRouting, TenantNeverStraddlesShards) {
  for (u32 shards : {1u, 2u, 3u, 8u}) {
    for (u64 tenant = 0; tenant < 64; ++tenant) {
      const u32 s = ShardFor(tenant, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, ShardFor(tenant, shards)) << "router must be stateless";
    }
  }
  const std::vector<Request> log = GenerateLoad(SmallLoad());
  const auto queues = RouteLog(log, 3);
  usize total = 0;
  for (u32 s = 0; s < 3; ++s) {
    total += queues[s].size();
    for (const Request& r : queues[s]) {
      EXPECT_EQ(ShardFor(r.tenant, 3), s);
    }
  }
  EXPECT_EQ(total, log.size());
}

TEST(ServeLoadgen, SameSeedSameLog) {
  const std::vector<Request> a = GenerateLoad(SmallLoad(7));
  const std::vector<Request> b = GenerateLoad(SmallLoad(7));
  ASSERT_EQ(a.size(), b.size());
  for (usize i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tenant, b[i].tenant) << i;
    EXPECT_EQ(a[i].session, b[i].session) << i;
    EXPECT_EQ(static_cast<int>(a[i].op), static_cast<int>(b[i].op)) << i;
    EXPECT_EQ(a[i].key, b[i].key) << i;
    EXPECT_EQ(a[i].value, b[i].value) << i;
  }
  const std::vector<Request> c = GenerateLoad(SmallLoad(8));
  bool same = a.size() == c.size();
  for (usize i = 0; same && i < a.size(); ++i) {
    same = a[i].tenant == c[i].tenant && a[i].session == c[i].session && a[i].key == c[i].key;
  }
  EXPECT_FALSE(same) << "different seeds produced an identical log";
}

// The core matrix. For each shard count, a serial-reference baseline is
// recorded once; every engine/worker/jitter/backend variant must reproduce
// its bytes exactly.
TEST(ServeDeterminism, BitIdenticalAcrossEnginesWorkersJitter) {
  const std::vector<Request> log = GenerateLoad(SmallLoad());
  for (u32 shards : {1u, 3u}) {
    ServeConfig base = SmallConfig();
    base.shards = shards;
    const ServeResult baseline = ShardServer(base).Serve(log);
    const std::string want = EncodeAll(baseline);
    ASSERT_FALSE(want.empty());

    struct Variant {
      const char* label;
      u32 host_workers;
      u32 serve_threads;
      u64 jitter_seed;
      rt::Backend backend;
    };
    const Variant variants[] = {
        {"threaded-2w", 2, 1, 1, rt::Backend::kConsequenceIC},
        {"threaded-4w", 4, 1, 1, rt::Backend::kConsequenceIC},
        {"front-end-3-hosts", 1, 3, 1, rt::Backend::kConsequenceIC},
        {"threaded+front-end", 3, 2, 1, rt::Backend::kConsequenceIC},
        {"jitter-seed-7", 1, 1, 7, rt::Backend::kConsequenceIC},
        {"jitter-seed-99+threaded", 2, 2, 99, rt::Backend::kConsequenceIC},
    };
    for (const Variant& v : variants) {
      ServeConfig cfg = base;
      cfg.host_workers = v.host_workers;
      cfg.serve_threads = v.serve_threads;
      cfg.jitter_seed = v.jitter_seed;
      cfg.backend = v.backend;
      const ServeResult got = ShardServer(cfg).Serve(log);
      const std::string enc = EncodeAll(got);
      EXPECT_EQ(want, enc) << "shards=" << shards << " variant=" << v.label << ": "
                           << FirstByteDivergence(want, enc);
      EXPECT_EQ(baseline.response_digest, got.response_digest)
          << "shards=" << shards << " variant=" << v.label;
    }

    // The RR backend is a different deterministic ordering policy: it must be
    // SELF-consistent (serial == threaded) but is allowed to produce a
    // different schedule than IC.
    ServeConfig rr = base;
    rr.backend = rt::Backend::kConsequenceRR;
    const std::string rr_serial = EncodeAll(ShardServer(rr).Serve(log));
    rr.host_workers = 3;
    const std::string rr_par = EncodeAll(ShardServer(rr).Serve(log));
    EXPECT_EQ(rr_serial, rr_par) << "shards=" << shards << " backend=rr: "
                                 << FirstByteDivergence(rr_serial, rr_par);
  }
}

// Latency samples are the one jitter-DEPENDENT observable: perturbing timing
// must not leak into the recorded bytes (asserted above), and the probe must
// actually measure something (lock waits + work are nonzero).
TEST(ServeDeterminism, LatenciesPresentButExcludedFromRecording) {
  const std::vector<Request> log = GenerateLoad(SmallLoad());
  ServeConfig cfg = SmallConfig();
  const ServeResult r = ShardServer(cfg).Serve(log);
  usize nonzero = 0;
  for (const ShardResult& s : r.shards) {
    ASSERT_EQ(s.latencies.size(), s.requests);
    for (const u64 l : s.latencies) {
      nonzero += l > 0 ? 1 : 0;
    }
    const std::string enc = EncodeRecording(s);
    EXPECT_EQ(enc.find("latency"), std::string::npos);
  }
  EXPECT_GT(nonzero, 0u) << "virtual-time latency probe measured nothing";
}

// Shard isolation: append one extra put for a tenant owned by shard `hot`.
// Every OTHER shard's recording must stay byte-identical — a tenant's
// universe is self-contained, so foreign traffic cannot perturb it.
TEST(ServeDeterminism, ShardIsolation) {
  const ServeConfig cfg = SmallConfig();
  const std::vector<Request> log = GenerateLoad(SmallLoad());
  const ServeResult before = ShardServer(cfg).Serve(log);

  // Find a tenant that actually appears in the log (a hot one: the first).
  ASSERT_FALSE(log.empty());
  const u64 tenant = log.front().tenant;
  const u32 hot = ShardFor(tenant, cfg.shards);

  std::vector<Request> mutated = log;
  Request extra;
  extra.tenant = tenant;
  extra.session = 0xABCDE;  // a fresh session id
  extra.op = Op::kPut;
  extra.key = 1;
  extra.value = 0xFEEDFACE;
  mutated.push_back(extra);
  const ServeResult after = ShardServer(cfg).Serve(mutated);

  ASSERT_EQ(before.shards.size(), after.shards.size());
  bool hot_changed = false;
  for (u32 s = 0; s < cfg.shards; ++s) {
    const std::string a = EncodeRecording(before.shards[s]);
    const std::string b = EncodeRecording(after.shards[s]);
    if (s == hot) {
      hot_changed = a != b;
      continue;
    }
    EXPECT_EQ(a, b) << "shard " << s << " perturbed by tenant " << tenant << " (owned by shard "
                    << hot << "): " << FirstByteDivergence(a, b);
  }
  EXPECT_TRUE(hot_changed) << "the mutated tenant's own shard must observe the extra put";
}

// No session ever observes another session's bytes in its scratch, on any
// engine (the leak probe is part of every run).
TEST(ServeDeterminism, NoCrossSessionLeaks) {
  const std::vector<Request> log = GenerateLoad(SmallLoad());
  for (u32 hw : {1u, 4u}) {
    ServeConfig cfg = SmallConfig();
    cfg.host_workers = hw;
    const ServeResult r = ShardServer(cfg).Serve(log);
    for (const ShardResult& s : r.shards) {
      for (usize i = 0; i < s.session_leaks.size(); ++i) {
        EXPECT_EQ(s.session_leaks[i], 0)
            << "host_workers=" << hw << " shard=" << s.shard << " session#" << i;
      }
    }
  }
}

}  // namespace
}  // namespace csq::serve
