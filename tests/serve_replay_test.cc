// Record/replay contract (DESIGN.md §15): a shard's durable request log plus
// its recorded canonical trace IS the recovery story. These tests record every
// shard under live multi-shard traffic, simulate a crash (discard the shard,
// keep only the log + recording), replay, and assert the replayed universe is
// byte-identical: same per-thread sync-event streams, same global grant order,
// same version-ordered commit order, same responses, same final state digest.
// On any mismatch the suite names the FIRST divergent event, not just a
// digest.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve_test_util.h"
#include "src/serve/loadgen.h"
#include "src/serve/serve.h"

namespace csq::serve {
namespace {

TEST(ServeReplay, ShardReplaysByteIdenticalAfterCrash) {
  const ServeConfig cfg = SmallConfig();
  const std::vector<Request> log = GenerateLoad(SmallLoad());

  // Live traffic: the full front end drains all shards and records each.
  const ServeResult live = ShardServer(cfg).Serve(log);
  const auto queues = RouteLog(log, cfg.shards);

  // Crash + recover, shard by shard: all that survives is the durable
  // request log and the recording. Re-executing the log on a fresh shard
  // must rebuild the identical universe.
  for (u32 s = 0; s < cfg.shards; ++s) {
    const ShardResult& recorded = live.shards[s];
    const ShardResult replayed = Shard(s, cfg).Serve(queues[s]);

    const ReplayDiff d = CompareRecordings(recorded, replayed);
    EXPECT_TRUE(d.identical) << "shard " << s << ": " << d.description;

    const std::string a = EncodeRecording(recorded);
    const std::string b = EncodeRecording(replayed);
    EXPECT_EQ(a, b) << "shard " << s << ": " << FirstByteDivergence(a, b);

    // The trace really recorded something: sessions synchronize through the
    // store lock and the heap, so commits and grants must be present.
    EXPECT_GT(recorded.trace.EventCount(), 0u) << "shard " << s;
    EXPECT_FALSE(CommitOrder(recorded.trace).empty()) << "shard " << s;
  }
}

// Recovery onto a DIFFERENT host shape: the replaying host may have a
// different engine worker count and timing jitter than the recorder. The
// bytes must not care.
TEST(ServeReplay, ReplayOnDifferentHostShape) {
  ServeConfig rec_cfg = SmallConfig();
  rec_cfg.host_workers = 1;
  const std::vector<Request> log = GenerateLoad(SmallLoad());
  const ServeResult live = ShardServer(rec_cfg).Serve(log);
  const auto queues = RouteLog(log, rec_cfg.shards);

  ServeConfig rep_cfg = rec_cfg;
  rep_cfg.host_workers = 4;  // recovered onto a bigger box
  rep_cfg.jitter_seed = 123;
  for (u32 s = 0; s < rec_cfg.shards; ++s) {
    const ShardResult replayed = Shard(s, rep_cfg).Serve(queues[s]);
    const ReplayDiff d = CompareRecordings(live.shards[s], replayed);
    EXPECT_TRUE(d.identical) << "shard " << s << ": " << d.description;
  }
}

// Commit order is version-ordered and consistent with the trace.
TEST(ServeReplay, CommitOrderIsVersionOrdered) {
  const ServeConfig cfg = SmallConfig();
  const std::vector<Request> log = GenerateLoad(SmallLoad());
  const ServeResult live = ShardServer(cfg).Serve(log);
  for (const ShardResult& s : live.shards) {
    const auto order = CommitOrder(s.trace);
    for (usize i = 1; i < order.size(); ++i) {
      EXPECT_LT(order[i - 1].second, order[i].second)
          << "shard " << s.shard << ": commit versions must be strictly increasing";
    }
  }
}

// Negative control: replaying a TAMPERED log must be detected, and the diff
// must name a concrete first divergence (a trace event, commit-order entry or
// response index — never an empty description).
TEST(ServeReplay, TamperedLogIsDetectedWithNamedDivergence) {
  const ServeConfig cfg = SmallConfig();
  const std::vector<Request> log = GenerateLoad(SmallLoad());
  const ServeResult live = ShardServer(cfg).Serve(log);
  const auto queues = RouteLog(log, cfg.shards);

  // Pick the busiest shard and flip one put's payload deep in its log.
  u32 victim = 0;
  for (u32 s = 1; s < cfg.shards; ++s) {
    if (queues[s].size() > queues[victim].size()) {
      victim = s;
    }
  }
  std::vector<Request> tampered = queues[victim];
  bool flipped = false;
  for (usize i = tampered.size() / 2; i < tampered.size(); ++i) {
    if (tampered[i].op == Op::kPut) {
      tampered[i].value ^= 0xDEAD;
      flipped = true;
      break;
    }
  }
  ASSERT_TRUE(flipped) << "load spec produced no puts in the back half; grow put_pct";

  const ShardResult replayed = Shard(victim, cfg).Serve(tampered);
  const ReplayDiff d = CompareRecordings(live.shards[victim], replayed);
  EXPECT_FALSE(d.identical) << "a tampered log must not replay clean";
  EXPECT_FALSE(d.description.empty()) << "divergence must be named";
}

// The recording encoder itself is stable: encoding the same result twice is
// byte-identical, and encodings of different shards differ.
TEST(ServeReplay, EncodingIsStable) {
  const ServeConfig cfg = SmallConfig();
  const std::vector<Request> log = GenerateLoad(SmallLoad());
  const ServeResult live = ShardServer(cfg).Serve(log);
  ASSERT_GE(live.shards.size(), 2u);
  EXPECT_EQ(EncodeRecording(live.shards[0]), EncodeRecording(live.shards[0]));
  EXPECT_NE(EncodeRecording(live.shards[0]), EncodeRecording(live.shards[1]));
}

}  // namespace
}  // namespace csq::serve
