// Shared fixtures for the serving-layer test suites: one small-but-busy load
// spec and a shard config sized so the suites run in seconds while still
// exercising multi-tenant routing, session concurrency and connection churn.
#pragma once

#include <string>
#include <vector>

#include "src/serve/loadgen.h"
#include "src/serve/serve.h"

namespace csq::serve {

inline LoadSpec SmallLoad(u64 seed = 42) {
  LoadSpec spec;
  spec.tenants = 16;
  spec.users = 1 << 20;
  spec.sessions = 48;
  spec.min_requests = 3;
  spec.max_requests = 14;
  spec.keys_per_tenant = 64;
  spec.put_pct = 30;  // write-heavy so commit order is interesting
  spec.scan_pct = 10;
  spec.churn_window = 10;
  spec.seed = seed;
  return spec;
}

inline ServeConfig SmallConfig() {
  ServeConfig cfg;
  cfg.shards = 3;
  cfg.serve_threads = 1;
  cfg.max_live_sessions = 6;
  cfg.kv_buckets = 64;
  cfg.heap_bytes = 1 << 20;
  cfg.segment_bytes = 8 << 20;
  cfg.work_per_request = 120;
  return cfg;
}

// Canonical bytes of a whole serve result: every shard's recording
// concatenated in shard order.
inline std::string EncodeAll(const ServeResult& r) {
  std::string out;
  for (const ShardResult& s : r.shards) {
    out += EncodeRecording(s);
  }
  return out;
}

// First index where two recordings differ, with surrounding context — so a
// byte-inequality failure names the divergent line instead of dumping both
// blobs.
inline std::string FirstByteDivergence(const std::string& a, const std::string& b) {
  if (a == b) {
    return "identical";
  }
  usize i = 0;
  while (i < a.size() && i < b.size() && a[i] == b[i]) {
    ++i;
  }
  const auto line_around = [](const std::string& s, usize pos) {
    usize lo = s.rfind('\n', pos == 0 ? 0 : pos - 1);
    lo = lo == std::string::npos ? 0 : lo + 1;
    usize hi = s.find('\n', pos);
    hi = hi == std::string::npos ? s.size() : hi;
    return s.substr(lo, hi - lo);
  };
  return "first divergence at byte " + std::to_string(i) + ": expected line \"" +
         line_around(a, i) + "\" vs got line \"" + line_around(b, i) + "\"";
}

}  // namespace csq::serve
