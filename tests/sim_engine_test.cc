// Unit tests for the deterministic discrete-event engine: scheduling order,
// gating, wait/notify semantics, virtual-time accounting, jitter determinism.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/engine.h"

namespace csq::sim {
namespace {

TEST(Engine, SingleThreadRunsToCompletion) {
  Engine eng;
  bool ran = false;
  eng.Spawn([&] {
    eng.Charge(100, TimeCat::kChunk);
    ran = true;
  });
  eng.Run();
  EXPECT_TRUE(ran);
  EXPECT_GE(eng.CompletionVtime(), 100u);
}

TEST(Engine, AdvanceAccumulatesPerCategory) {
  Engine eng;
  eng.Spawn([&] {
    eng.AdvanceRaw(50, TimeCat::kChunk);
    eng.AdvanceRaw(30, TimeCat::kCommit);
    eng.AdvanceRaw(20, TimeCat::kChunk);
  });
  eng.Run();
  EXPECT_EQ(eng.CatTotal(0, TimeCat::kChunk), 70u);
  EXPECT_EQ(eng.CatTotal(0, TimeCat::kCommit), 30u);
  EXPECT_EQ(eng.CompletionVtime(), 100u);
}

TEST(Engine, SharedOpsExecuteInVtimeOrder) {
  Engine eng;
  std::vector<int> order;
  // Thread 0 does a big local chunk then a shared op at vt 1000.
  eng.Spawn([&] {
    eng.AdvanceRaw(1000, TimeCat::kChunk);
    eng.GateShared();
    order.push_back(0);
  });
  // Thread 1's shared op is at vt 10 — must happen first despite later spawn.
  eng.Spawn([&] {
    eng.AdvanceRaw(10, TimeCat::kChunk);
    eng.GateShared();
    order.push_back(1);
  });
  eng.Run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 0);
}

TEST(Engine, TiesBreakByThreadId) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    eng.Spawn([&, i] {
      eng.AdvanceRaw(100, TimeCat::kChunk);  // identical vtime for everyone
      eng.GateShared();
      order.push_back(i);
      // Push this thread past the others so the next-lowest id can proceed.
      eng.AdvanceRaw(1, TimeCat::kChunk);
    });
  }
  eng.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Engine, WaitNotifyWakesInFifoOrderWithVtimePropagation) {
  Engine eng;
  WaitChannel ch;
  std::vector<u64> wake_times;
  for (int i = 0; i < 3; ++i) {
    eng.Spawn([&, i] {
      eng.AdvanceRaw(static_cast<u64>(10 * (i + 1)), TimeCat::kChunk);
      eng.GateShared();
      wake_times.push_back(eng.Wait(ch, TimeCat::kDetermWait));
    });
  }
  eng.Spawn([&] {
    eng.AdvanceRaw(100000, TimeCat::kChunk);
    eng.GateShared();
    eng.NotifyAll(ch);
  });
  eng.Run();
  ASSERT_EQ(wake_times.size(), 3u);
  const u64 lat = CostModel{}.wake_latency;
  for (u64 t : wake_times) {
    EXPECT_EQ(t, 100000 + lat);  // wake vtime dominated by the notifier
  }
  // Waiting time was attributed to the determ_wait category.
  EXPECT_GT(eng.CatTotal(0, TimeCat::kDetermWait), 0u);
}

TEST(Engine, NotifyOneWakesExactlyOne) {
  Engine eng;
  WaitChannel ch;
  int woken = 0;
  eng.Spawn([&] {
    eng.GateShared();
    eng.Wait(ch, TimeCat::kDetermWait);
    ++woken;
    eng.GateShared();
    eng.NotifyOne(ch);  // chain-wake the second waiter
  });
  eng.Spawn([&] {
    eng.AdvanceRaw(1, TimeCat::kChunk);
    eng.GateShared();
    eng.Wait(ch, TimeCat::kDetermWait);
    ++woken;
  });
  eng.Spawn([&] {
    eng.AdvanceRaw(500, TimeCat::kChunk);
    eng.GateShared();
    EXPECT_EQ(eng.NotifyOne(ch), 1u);
  });
  eng.Run();
  EXPECT_EQ(woken, 2);
}

TEST(Engine, SpawnFromFiberInheritsVtime) {
  Engine eng;
  u64 child_start_vt = 0;
  eng.Spawn([&] {
    eng.AdvanceRaw(777, TimeCat::kChunk);
    eng.GateShared();
    eng.Spawn([&] { child_start_vt = eng.Now(); });
  });
  eng.Run();
  EXPECT_EQ(child_start_vt, 777u);
}

TEST(Engine, CompletionVtimeIsMaxOverThreads) {
  Engine eng;
  eng.Spawn([&] { eng.AdvanceRaw(10, TimeCat::kChunk); });
  eng.Spawn([&] { eng.AdvanceRaw(99, TimeCat::kChunk); });
  eng.Run();
  EXPECT_EQ(eng.CompletionVtime(), 99u);
}

TEST(Engine, JitterIsDeterministicPerSeed) {
  auto run = [](u64 seed) {
    SimConfig cfg;
    cfg.costs.jitter_bp = 500;  // ±5%
    cfg.costs.jitter_seed = seed;
    Engine eng(cfg);
    u64 total = 0;
    eng.Spawn([&] {
      for (int i = 0; i < 100; ++i) {
        total += eng.Charge(1000, TimeCat::kChunk);
      }
    });
    eng.Run();
    return total;
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));
  // ±5% of 100 * 1000.
  EXPECT_NEAR(static_cast<double>(run(3)), 100000.0, 5000.0);
}

TEST(Engine, NoJitterChargesExactCost) {
  Engine eng;
  eng.Spawn([&] { EXPECT_EQ(eng.Charge(123, TimeCat::kChunk), 123u); });
  eng.Run();
}

TEST(Engine, TraceDigestIsOrderSensitive) {
  Engine a;
  a.Spawn([&] {
    a.Trace(1, 2, 3, 4);
    a.Trace(5, 6, 7, 8);
  });
  a.Run();
  Engine b;
  b.Spawn([&] {
    b.Trace(5, 6, 7, 8);
    b.Trace(1, 2, 3, 4);
  });
  b.Run();
  EXPECT_NE(a.TraceDigest(), b.TraceDigest());
  EXPECT_EQ(a.TraceEvents(), 2u);
}

TEST(Engine, ManyThreadsInterleaveDeterministically) {
  auto run = [] {
    Engine eng;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i) {
      eng.Spawn([&, i] {
        for (int k = 0; k < 8; ++k) {
          eng.AdvanceRaw(static_cast<u64>((i * 37 + k * 11) % 50 + 1), TimeCat::kChunk);
          eng.GateShared();
          order.push_back(i);
        }
      });
    }
    eng.Run();
    return order;
  };
  EXPECT_EQ(run(), run());
}

TEST(EngineDeath, DeadlockIsDetected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Engine eng;
        WaitChannel ch;
        eng.Spawn([&] {
          eng.GateShared();
          eng.Wait(ch, TimeCat::kDetermWait);  // nobody will ever notify
        });
        eng.Run();
      },
      "deadlock");
}

}  // namespace
}  // namespace csq::sim
