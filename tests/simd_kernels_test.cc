// Pins every simd dispatch level to the scalar MergeInto reference oracle.
//
// The kernels are only legal in the commit path because they are pure byte
// functions: for any (base, mine, twin, dirty-mask) input, every level must
// produce byte-identical merged pages and identical {bytes, words} counts.
// These tests sweep random page sizes (including non-multiples of the 8-byte
// word and of the vector widths), unaligned buffer offsets, and
// all-dirty/all-clean/sparse/clustered bitmaps across every level the host
// can execute — plus the level-independent dispatch plumbing (ParseLevel,
// clamping, ScopedLevelForTest) and the O(1) DirtyWords set-word count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "src/conv/page.h"
#include "src/simd/kernels.h"
#include "src/util/rng.h"

namespace csq::simd {
namespace {

using conv::DirtyWords;
using conv::kMergeWordBytes;
using conv::MergeInto;
using conv::MergeIntoWords;
using conv::MergeResult;
using conv::PageBuf;

std::vector<Level> UsableLevels() {
  std::vector<Level> ls = {Level::kScalar};
  if (DetectedLevel() >= Level::kSse2) {
    ls.push_back(Level::kSse2);
  }
  if (DetectedLevel() >= Level::kAvx2) {
    ls.push_back(Level::kAvx2);
  }
  return ls;
}

// Reference diff/merge on raw buffers: applies mine where it differs from
// twin, restricted to words marked in `mask`, counting exactly like
// MergeResult. Mirrors MergeInto but honors the word mask, so it is usable
// as the oracle for merge_runs called with an arbitrary (un-diffed) bitmap.
DiffMergeCounts ReferenceMerge(u8* base, const u8* mine, const u8* twin, usize n,
                               const u64* mask) {
  DiffMergeCounts c;
  const usize words = (n + 7) / 8;
  for (usize w = 0; w < words; ++w) {
    if (mask != nullptr && ((mask[w >> 6] >> (w & 63)) & 1) == 0) {
      continue;
    }
    const usize end = std::min(n, w * 8 + 8);
    bool hit = false;
    for (usize i = w * 8; i < end; ++i) {
      if (mine[i] != twin[i]) {
        base[i] = mine[i];
        ++c.bytes;
        hit = true;
      }
    }
    c.words += hit ? 1 : 0;
  }
  return c;
}

// One randomized scenario: buffers of `n` bytes at byte offset `align` into
// their backing stores (so vector loads hit genuinely unaligned addresses),
// `mode` selects the dirty-bitmap shape and the mine-vs-twin diff density.
struct Scenario {
  usize n;
  usize align;
  int mode;  // 0 all-clean, 1 all-dirty, 2 sparse, 3 clustered runs
  u64 seed;
};

void FillScenario(const Scenario& sc, DetRng& rng, std::vector<u8>* mine_store,
                  std::vector<u8>* twin_store, std::vector<u8>* base_store,
                  std::vector<u64>* mask) {
  const usize total = sc.n + sc.align;
  mine_store->assign(total, 0);
  twin_store->assign(total, 0);
  base_store->assign(total, 0);
  for (usize i = 0; i < total; ++i) {
    const u8 v = static_cast<u8>(rng.Next());
    (*twin_store)[i] = v;
    (*mine_store)[i] = v;
    (*base_store)[i] = static_cast<u8>(rng.Next());
  }
  u8* mine = mine_store->data() + sc.align;
  const usize words = (sc.n + 7) / 8;
  mask->assign(BitmapBlocks(sc.n), 0);
  auto mark = [&](usize w) { (*mask)[w >> 6] |= 1ULL << (w & 63); };
  switch (sc.mode) {
    case 0:
      // All-clean: full mask, zero diffs — merge must touch nothing.
      for (usize w = 0; w < words; ++w) {
        mark(w);
      }
      break;
    case 1:
      // All-dirty: full mask, every word differs somewhere.
      for (usize w = 0; w < words; ++w) {
        mark(w);
        const usize off = w * 8 + rng.Below(std::min<usize>(8, sc.n - w * 8));
        mine[off] ^= static_cast<u8>(1 + rng.Below(255));
      }
      break;
    case 2:
      // Sparse: a few isolated dirty words, some marked words left clean
      // (merge must not count or touch them).
      for (usize k = 0; k < words / 8 + 1; ++k) {
        const usize w = rng.Below(words);
        mark(w);
        if (rng.Below(2) == 0) {
          const usize off = w * 8 + rng.Below(std::min<usize>(8, sc.n - w * 8));
          mine[off] ^= static_cast<u8>(1 + rng.Below(255));
        }
      }
      break;
    default: {
      // Clustered: maximal runs spanning u64-block boundaries, dense diffs
      // inside each run so the vector blend path does real work.
      usize w = rng.Below(std::max<usize>(1, words / 4));
      while (w < words) {
        const usize len = 1 + rng.Below(130);  // runs longer than one block
        for (usize j = w; j < std::min(words, w + len); ++j) {
          mark(j);
          const usize end = std::min(sc.n, j * 8 + 8);
          for (usize i = j * 8; i < end; ++i) {
            if (rng.Below(3) != 0) {
              mine[i] ^= static_cast<u8>(1 + rng.Below(255));
            }
          }
        }
        w += len + 1 + rng.Below(40);
      }
      break;
    }
  }
}

class KernelLevels : public ::testing::TestWithParam<Scenario> {};

// diff_words and merge_runs at every usable level produce exactly the
// reference bytes and counts, for masked and unmasked (nullptr) diffs.
TEST_P(KernelLevels, DiffAndMergeMatchReferenceAtEveryLevel) {
  const Scenario sc = GetParam();
  DetRng rng(sc.seed);
  std::vector<u8> mine_s;
  std::vector<u8> twin_s;
  std::vector<u8> base_s;
  std::vector<u64> mask;
  FillScenario(sc, rng, &mine_s, &twin_s, &base_s, &mask);
  const u8* mine = mine_s.data() + sc.align;
  const u8* twin = twin_s.data() + sc.align;
  const u8* base0 = base_s.data() + sc.align;
  const usize n = sc.n;
  const usize blocks = BitmapBlocks(n);

  // Reference: diff bits by per-word scan, merge by byte loop.
  std::vector<u64> ref_bits(blocks, 0);
  usize ref_set = 0;
  const usize words = (n + 7) / 8;
  for (usize w = 0; w < words; ++w) {
    if (((mask[w >> 6] >> (w & 63)) & 1) == 0) {
      continue;
    }
    const usize end = std::min(n, w * 8 + 8);
    if (std::memcmp(mine + w * 8, twin + w * 8, end - w * 8) != 0) {
      ref_bits[w >> 6] |= 1ULL << (w & 63);
      ++ref_set;
    }
  }
  std::vector<u8> ref_base(base0, base0 + n);
  const DiffMergeCounts ref_counts =
      ReferenceMerge(ref_base.data(), mine, twin, n, mask.data());

  for (Level l : UsableLevels()) {
    const PageKernels& k = KernelsFor(l);
    ASSERT_EQ(k.level, l);

    // (a) masked diff
    std::vector<u64> got_bits(blocks, 0xffffffffffffffffULL);  // must be fully overwritten
    EXPECT_EQ(k.diff_words(mine, twin, n, mask.data(), got_bits.data()), ref_set)
        << LevelName(l);
    EXPECT_EQ(got_bits, ref_bits) << LevelName(l);

    // unmasked diff == diff with an all-ones mask
    std::vector<u64> full_mask(blocks, 0);
    for (usize w = 0; w < words; ++w) {
      full_mask[w >> 6] |= 1ULL << (w & 63);
    }
    std::vector<u64> bits_null(blocks, 0);
    std::vector<u64> bits_full(blocks, 0);
    const usize c_null = k.diff_words(mine, twin, n, nullptr, bits_null.data());
    const usize c_full = k.diff_words(mine, twin, n, full_mask.data(), bits_full.data());
    EXPECT_EQ(c_null, c_full) << LevelName(l);
    EXPECT_EQ(bits_null, bits_full) << LevelName(l);

    // (b) merge over the raw (un-diffed) mask must still blend byte-exactly
    // and count only words that actually differ.
    std::vector<u8> got_base(base0, base0 + n);
    const DiffMergeCounts got = k.merge_runs(got_base.data(), mine, twin, n, mask.data());
    EXPECT_EQ(got.bytes, ref_counts.bytes) << LevelName(l);
    EXPECT_EQ(got.words, ref_counts.words) << LevelName(l);
    EXPECT_EQ(got_base, ref_base) << LevelName(l);

    // merge over the diffed bits: same result (diff loses no differing word).
    std::vector<u8> base2(base0, base0 + n);
    const DiffMergeCounts got2 = k.merge_runs(base2.data(), mine, twin, n, ref_bits.data());
    EXPECT_EQ(got2.bytes, ref_counts.bytes) << LevelName(l);
    EXPECT_EQ(got2.words, ref_counts.words) << LevelName(l);
    EXPECT_EQ(base2, ref_base) << LevelName(l);

    // (c) copy + equality
    std::vector<u8> dst(n, 0);
    k.copy_bytes(dst.data(), mine, n);
    EXPECT_EQ(0, std::memcmp(dst.data(), mine, n)) << LevelName(l);
    EXPECT_EQ(k.bytes_equal(mine, twin, n), std::memcmp(mine, twin, n) == 0) << LevelName(l);
    EXPECT_TRUE(k.bytes_equal(mine, mine, n)) << LevelName(l);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelLevels,
    ::testing::Values(
        // page-size edges: sub-word, sub-vector, word-but-not-vector multiples
        Scenario{1, 0, 1, 1}, Scenario{7, 1, 1, 2}, Scenario{8, 3, 1, 3},
        Scenario{15, 0, 1, 4}, Scenario{16, 5, 1, 5}, Scenario{31, 2, 1, 6},
        Scenario{33, 7, 1, 7}, Scenario{63, 1, 1, 8}, Scenario{65, 3, 1, 9},
        // typical pages, every bitmap shape, aligned and unaligned
        Scenario{4096, 0, 0, 10}, Scenario{4096, 1, 1, 11}, Scenario{4096, 3, 2, 12},
        Scenario{4096, 7, 3, 13}, Scenario{4096, 9, 3, 14},
        // short trailing word + >512-word pages (multi-block bitmaps)
        Scenario{4093, 5, 3, 15}, Scenario{8191, 11, 3, 16}, Scenario{8200, 13, 2, 17},
        // exactly one bitmap block boundary (512 words = 4096B handled above;
        // 520 words crosses into block 2)
        Scenario{4160, 2, 3, 18}));

// Randomized fuzz sweep: many random (size, align, mode, seed) draws beyond
// the curated list, checked through the full conv-facing MergeIntoWords path
// against the MergeInto oracle at every level via ScopedLevelForTest.
TEST(KernelFuzz, MergeIntoWordsMatchesMergeIntoOracleAtEveryLevel) {
  DetRng rng(0xC0FFEE);
  for (int iter = 0; iter < 200; ++iter) {
    const usize n = 1 + rng.Below(6000);
    PageBuf twin(n);
    PageBuf mine(n);
    PageBuf base(n);
    for (usize i = 0; i < n; ++i) {
      twin[i] = static_cast<u8>(rng.Next());
      mine[i] = twin[i];
      base[i] = static_cast<u8>(rng.Next());
    }
    DirtyWords dirty;
    dirty.Reset(n);
    const usize writes = rng.Below(40);
    for (usize wr = 0; wr < writes; ++wr) {
      const usize off = rng.Below(n);
      const usize len = 1 + rng.Below(std::min<usize>(n - off, 200));
      dirty.MarkRange(off, len);
      // Half the marked ranges actually change bytes; the rest store back
      // identical values (dirty word, clean diff).
      if (rng.Below(2) == 0) {
        for (usize i = off; i < off + len; ++i) {
          if (rng.Below(2) == 0) {
            mine[i] ^= static_cast<u8>(1 + rng.Below(255));
          }
        }
      }
    }

    // Oracle: reference byte merge (precondition holds — every diff byte was
    // marked), plus reference counts from the masked byte loop.
    PageBuf want_base = base;
    const usize want_bytes = MergeInto(want_base, mine, twin);
    std::vector<u64> mask(dirty.BlockCount());
    std::memcpy(mask.data(), dirty.BitsData(), mask.size() * sizeof(u64));
    PageBuf scratch = base;
    const DiffMergeCounts want =
        ReferenceMerge(scratch.data(), mine.data(), twin.data(), n, mask.data());
    ASSERT_EQ(want.bytes, want_bytes);

    for (Level l : UsableLevels()) {
      ScopedLevelForTest scoped(l);
      ASSERT_EQ(ActiveLevel(), l);
      PageBuf got_base = base;
      const MergeResult r = MergeIntoWords(got_base, mine, twin, dirty);
      EXPECT_EQ(r.bytes, want.bytes) << LevelName(l) << " n=" << n << " iter=" << iter;
      EXPECT_EQ(r.words, want.words) << LevelName(l) << " n=" << n << " iter=" << iter;
      EXPECT_EQ(got_base, want_base) << LevelName(l) << " n=" << n << " iter=" << iter;
    }
  }
}

TEST(Dispatch, ParseLevelAcceptsExactlyTheDocumentedNames) {
  Level l = Level::kAvx2;
  EXPECT_TRUE(ParseLevel("scalar", &l));
  EXPECT_EQ(l, Level::kScalar);
  EXPECT_TRUE(ParseLevel("sse2", &l));
  EXPECT_EQ(l, Level::kSse2);
  EXPECT_TRUE(ParseLevel("avx2", &l));
  EXPECT_EQ(l, Level::kAvx2);
  l = Level::kSse2;
  EXPECT_FALSE(ParseLevel("", &l));
  EXPECT_FALSE(ParseLevel("AVX2", &l));
  EXPECT_FALSE(ParseLevel("sse4", &l));
  EXPECT_FALSE(ParseLevel(nullptr, &l));
  EXPECT_EQ(l, Level::kSse2);  // failures leave *out untouched
}

TEST(Dispatch, KernelsForClampsAboveDetectedLevel) {
  for (Level req : {Level::kScalar, Level::kSse2, Level::kAvx2}) {
    const PageKernels& k = KernelsFor(req);
    EXPECT_EQ(k.level, std::min(req, DetectedLevel()));
    EXPECT_NE(k.diff_words, nullptr);
    EXPECT_NE(k.merge_runs, nullptr);
    EXPECT_NE(k.copy_bytes, nullptr);
    EXPECT_NE(k.bytes_equal, nullptr);
  }
}

TEST(Dispatch, ScopedLevelForTestRestoresOnExit) {
  const Level before = ActiveLevel();
  {
    ScopedLevelForTest scoped(Level::kScalar);
    EXPECT_EQ(ActiveLevel(), Level::kScalar);
    {
      ScopedLevelForTest nested(DetectedLevel());
      EXPECT_EQ(ActiveLevel(), DetectedLevel());
    }
    EXPECT_EQ(ActiveLevel(), Level::kScalar);
  }
  EXPECT_EQ(ActiveLevel(), before);
}

TEST(DirtyWordsCount, SetWordCountTracksMarksClearsAndResets) {
  DirtyWords d;
  d.Reset(4096);
  EXPECT_TRUE(d.Empty());
  EXPECT_EQ(d.SetWordCount(), 0u);
  d.MarkRange(0, 8);
  EXPECT_EQ(d.SetWordCount(), 1u);
  d.MarkRange(0, 8);  // re-marking the same word must not double-count
  EXPECT_EQ(d.SetWordCount(), 1u);
  d.MarkRange(4, 8);  // spans words 0 and 1; word 0 already set
  EXPECT_EQ(d.SetWordCount(), 2u);
  d.MarkRange(504, 16);  // words 63-64: crosses the u64 block boundary
  EXPECT_EQ(d.SetWordCount(), 4u);
  EXPECT_FALSE(d.Empty());
  d.Clear();
  EXPECT_TRUE(d.Empty());
  EXPECT_EQ(d.SetWordCount(), 0u);
  d.MarkRange(0, 4096);
  EXPECT_EQ(d.SetWordCount(), 512u);
  d.Reset(16);
  EXPECT_TRUE(d.Empty());
  EXPECT_EQ(d.SetWordCount(), 0u);

  // Count agrees with a ForEachSetWord scan under random marking.
  DetRng rng(77);
  DirtyWords r;
  r.Reset(4099);
  for (int i = 0; i < 300; ++i) {
    const usize off = rng.Below(4099);
    r.MarkRange(off, 1 + rng.Below(4099 - off));
    usize scan = 0;
    r.ForEachSetWord([&](usize) { ++scan; });
    ASSERT_EQ(scan, r.SetWordCount());
  }
}

TEST(DirtyWordsRuns, ForEachSetRunCoalescesExactlyTheSetWords) {
  DetRng rng(99);
  for (int iter = 0; iter < 100; ++iter) {
    const usize n = 1 + rng.Below(9000);
    DirtyWords d;
    d.Reset(n);
    for (usize k = 0; k < rng.Below(12); ++k) {
      const usize off = rng.Below(n);
      d.MarkRange(off, 1 + rng.Below(n - off));
    }
    std::vector<usize> from_words;
    d.ForEachSetWord([&](usize w) { from_words.push_back(w); });
    std::vector<usize> from_runs;
    usize prev_end = 0;
    bool first = true;
    d.ForEachSetRun([&](usize w0, usize len) {
      ASSERT_GT(len, 0u);
      // Runs are maximal and ascending: a gap before every run but the first.
      if (!first) {
        ASSERT_GT(w0, prev_end);
      }
      first = false;
      prev_end = w0 + len;
      for (usize w = w0; w < w0 + len; ++w) {
        from_runs.push_back(w);
      }
    });
    ASSERT_EQ(from_words, from_runs);
  }
}

}  // namespace
}  // namespace csq::simd
