// TSO conformance: every catalog shape, on every deterministic backend, under
// exhaustive token-schedule exploration, must stay inside the reference TSO
// model's allowed outcome set; forbidden classic outcomes must be unreachable
// and required witnesses (SB's r0=r1=0) must actually show up.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/tso/explorer.h"
#include "src/tso/litmus.h"
#include "src/tso/runner.h"
#include "src/tso/trace.h"
#include "src/tso/tso_model.h"

namespace csq::tso {
namespace {

constexpr rt::Backend kDetBackends[] = {
    rt::Backend::kDThreads,
    rt::Backend::kDwc,
    rt::Backend::kConsequenceRR,
    rt::Backend::kConsequenceIC,
};

rt::RuntimeConfig BaseCfg() {
  rt::RuntimeConfig cfg;
  cfg.segment.size_bytes = 1 << 20;
  return cfg;
}

bool Marked(const LitmusShape& shape, const OutcomeSet& s) {
  return std::any_of(s.begin(), s.end(),
                     [&](const Outcome& o) { return shape.marked(o); });
}

TEST(TsoCatalog, HasTheClassicShapes) {
  ASSERT_GE(Catalog().size(), 8u);
  for (const char* name : {"SB", "SB+fences", "SB+rmws", "MP+fences", "LB", "IRIW+fences",
                           "2+2W", "R", "S", "LockMP", "2W-samepage"}) {
    EXPECT_NO_FATAL_FAILURE(ShapeByName(name)) << name;
  }
}

// The reference model itself: SC outcomes are always a subset of TSO outcomes,
// forbidden marked outcomes are absent from the allowed set, and allowed
// witnesses are present. For SB the TSO set must be STRICTLY larger than SC
// (the relaxed witness is exactly what store buffering adds).
TEST(TsoModel, ScContainedInTsoAndMarksClassified) {
  for (const LitmusShape& shape : Catalog()) {
    SCOPED_TRACE(shape.litmus.name);
    const OutcomeSet tso = AllowedOutcomes(shape.litmus);
    const OutcomeSet sc = ScOutcomes(shape.litmus);
    ASSERT_FALSE(tso.empty());
    for (const Outcome& o : sc) {
      EXPECT_TRUE(tso.count(o)) << "SC outcome outside TSO set: " << o.ToString();
    }
    if (shape.forbidden) {
      EXPECT_FALSE(Marked(shape, tso))
          << "model allows the forbidden outcome: " << shape.marked_desc;
    } else {
      EXPECT_TRUE(Marked(shape, tso))
          << "model misses the required witness: " << shape.marked_desc;
    }
  }
  const LitmusShape& sb = ShapeByName("SB");
  EXPECT_FALSE(Marked(sb, ScOutcomes(sb.litmus)))
      << "SB's relaxed witness must not be SC-reachable";
}

class TsoConformanceTest
    : public ::testing::TestWithParam<std::tuple<usize, usize>> {};

TEST_P(TsoConformanceTest, ExhaustiveExplorationStaysWithinTso) {
  const LitmusShape& shape = Catalog()[std::get<0>(GetParam())];
  const rt::Backend b = kDetBackends[std::get<1>(GetParam())];
  ExploreOptions opt;
  opt.max_runs = 40000;  // IRIW on cons-ic needs ~30k; every other shape ≪ 10k
  const ExploreResult r = Explore(b, shape.litmus, BaseCfg(), opt);
  EXPECT_TRUE(r.complete) << "exploration truncated after " << r.runs << " runs";
  EXPECT_GT(r.runs, 1u) << "explorer found nothing to branch on";

  const OutcomeSet allowed = AllowedOutcomes(shape.litmus);
  for (const Outcome& o : r.outcomes) {
    EXPECT_TRUE(allowed.count(o))
        << rt::BackendName(b) << " reached a TSO-forbidden outcome: " << o.ToString();
  }
  if (shape.forbidden) {
    EXPECT_FALSE(Marked(shape, r.outcomes))
        << rt::BackendName(b) << " reached: " << shape.marked_desc;
  } else {
    EXPECT_TRUE(Marked(shape, r.outcomes))
        << rt::BackendName(b) << " never produced the witness (" << shape.marked_desc
        << ") in " << r.runs << " runs; observed " << ToString(r.outcomes);
  }
  for (const std::string& v : r.lww_violations) {
    ADD_FAILURE() << "last-writer-wins violation: " << v;
  }
}

std::string ConformanceName(const ::testing::TestParamInfo<std::tuple<usize, usize>>& info) {
  std::string n = Catalog()[std::get<0>(info.param)].litmus.name + "_" +
                  std::string(rt::BackendName(kDetBackends[std::get<1>(info.param)]));
  for (char& c : n) {
    if (!isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(
    AllShapesAllBackends, TsoConformanceTest,
    ::testing::Combine(::testing::Range<usize>(0, Catalog().size()),
                       ::testing::Range<usize>(0, std::size(kDetBackends))),
    ConformanceName);

// DPOR-style pruning must be outcome-preserving: pruned and unpruned
// exploration reach exactly the same outcome set (pruning only skips branches
// that provably commute).
TEST(TsoExplorer, PruningLosesNoOutcomes) {
  for (const char* name : {"SB", "2+2W", "S", "2W-samepage"}) {
    SCOPED_TRACE(name);
    const LitmusShape& shape = ShapeByName(name);
    ExploreOptions pruned;
    pruned.max_runs = 20000;
    ExploreOptions full = pruned;
    full.prune_independent = false;
    const ExploreResult rp = Explore(rt::Backend::kConsequenceIC, shape.litmus, BaseCfg(), pruned);
    const ExploreResult rf = Explore(rt::Backend::kConsequenceIC, shape.litmus, BaseCfg(), full);
    ASSERT_TRUE(rp.complete);
    ASSERT_TRUE(rf.complete);
    EXPECT_EQ(rp.outcomes, rf.outcomes)
        << "pruned " << ToString(rp.outcomes) << " vs full " << ToString(rf.outcomes);
    EXPECT_LE(rp.runs, rf.runs);
  }
}

// Exploration under jitter: the token order fully determines the outcome, so
// a jittered exploration must reach exactly the same outcome set.
TEST(TsoExplorer, JitterDoesNotChangeReachableOutcomes) {
  const LitmusShape& shape = ShapeByName("SB");
  ExploreOptions plain;
  ExploreOptions jittered;
  jittered.jitter_seed = 99;
  jittered.jitter_bp = 1500;
  const ExploreResult a = Explore(rt::Backend::kConsequenceIC, shape.litmus, BaseCfg(), plain);
  const ExploreResult b = Explore(rt::Backend::kConsequenceIC, shape.litmus, BaseCfg(), jittered);
  ASSERT_TRUE(a.complete);
  ASSERT_TRUE(b.complete);
  EXPECT_EQ(a.outcomes, b.outcomes);
}

// Regression for the async lock-commit path (paper §5: commit work moved off
// the token's critical path): the message-passing and store-buffering shapes
// must keep exactly the same conformance guarantees with it enabled.
class TsoAsyncLockCommitTest : public ::testing::TestWithParam<usize> {};

TEST_P(TsoAsyncLockCommitTest, ShapesStayConformant) {
  const rt::Backend b = kDetBackends[GetParam()];
  for (const char* name : {"SB", "SB+fences", "MP+fences", "LockMP"}) {
    SCOPED_TRACE(name);
    const LitmusShape& shape = ShapeByName(name);
    rt::RuntimeConfig cfg = BaseCfg();
    cfg.async_lock_commit = true;
    ExploreOptions opt;
    opt.max_runs = 20000;
    const ExploreResult r = Explore(b, shape.litmus, cfg, opt);
    ASSERT_TRUE(r.complete);
    const OutcomeSet allowed = AllowedOutcomes(shape.litmus);
    for (const Outcome& o : r.outcomes) {
      EXPECT_TRUE(allowed.count(o)) << "async_lock_commit outcome: " << o.ToString();
    }
    if (shape.forbidden) {
      EXPECT_FALSE(Marked(shape, r.outcomes)) << shape.marked_desc;
    } else {
      EXPECT_TRUE(Marked(shape, r.outcomes)) << shape.marked_desc;
    }
    EXPECT_TRUE(r.lww_violations.empty());

    OracleOptions oopt;
    oopt.runs = 8;
    const OracleResult orr = CheckDeterminism(b, shape.litmus, cfg, oopt);
    EXPECT_TRUE(orr.ok) << orr.failure;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDetBackends, TsoAsyncLockCommitTest,
                         ::testing::Range<usize>(0, std::size(kDetBackends)),
                         [](const ::testing::TestParamInfo<usize>& info) {
                           std::string n(rt::BackendName(kDetBackends[info.param]));
                           for (char& c : n) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return n;
                         });

// The nondeterministic pthreads baseline runs each litmus once (the simulator
// gives it one legal schedule); whatever it produces must still be TSO.
TEST(TsoPthreadsBaseline, SingleScheduleIsTsoAllowed) {
  for (const LitmusShape& shape : Catalog()) {
    SCOPED_TRACE(shape.litmus.name);
    const Outcome o = RunLitmus(rt::Backend::kPthreads, shape.litmus, BaseCfg());
    EXPECT_TRUE(AllowedOutcomes(shape.litmus).count(o)) << o.ToString();
  }
}

}  // namespace
}  // namespace csq::tso
