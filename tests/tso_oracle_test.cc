// Cross-run determinism oracle: canonical traces must be identical across
// jittered runs on every deterministic backend, and when determinism IS broken
// (via the test-only vtime-dependent commit-order bug) the oracle must point
// at the first divergent commit event — even though every checksum still
// matches.
#include <gtest/gtest.h>

#include "src/rt/api.h"
#include "src/tso/litmus.h"
#include "src/tso/runner.h"
#include "src/tso/trace.h"

namespace csq::tso {
namespace {

constexpr rt::Backend kDetBackends[] = {
    rt::Backend::kDThreads,
    rt::Backend::kDwc,
    rt::Backend::kConsequenceRR,
    rt::Backend::kConsequenceIC,
};

rt::RuntimeConfig BaseCfg() {
  rt::RuntimeConfig cfg;
  cfg.segment.size_bytes = 1 << 20;
  return cfg;
}

// A litmus whose threads commit MULTIPLE dirty pages at once (two distinct
// variables, then a fence) with jitter-sensitive timing: the shape the
// injected commit-order bug needs to show up.
Litmus MultiPageCommit() {
  Litmus lit;
  lit.name = "MultiPageCommit";
  lit.nvars = 4;
  lit.nregs = 2;
  lit.threads.resize(2);
  lit.threads[0].ops = {WorkOp(7), St(0, 1), St(1, 2), Fence(), Ld(2, 0)};
  lit.threads[1].ops = {WorkOp(13), St(2, 3), St(3, 4), Fence(), Ld(0, 1)};
  return lit;
}

// ISSUE acceptance bar: 20 jittered runs per shape per backend, identical
// canonical traces and outcomes each time.
TEST(TsoOracle, TwentyJitteredRunsPerShapePerBackend) {
  for (rt::Backend b : kDetBackends) {
    for (const LitmusShape& shape : Catalog()) {
      SCOPED_TRACE(std::string(rt::BackendName(b)) + "/" + shape.litmus.name);
      const OracleResult r = CheckDeterminism(b, shape.litmus, BaseCfg());
      EXPECT_TRUE(r.ok) << r.failure;
    }
  }
}

// Traces are not trivially empty: the recorder actually sees token grants,
// commits, and (for fence shapes) updates.
TEST(TsoOracle, RecordedTracesHaveSubstance) {
  TraceRecorder rec;
  rt::RuntimeConfig cfg = BaseCfg();
  cfg.observer = &rec;
  RunLitmus(rt::Backend::kConsequenceIC, ShapeByName("MP+fences").litmus, cfg);
  const TsoTrace& t = rec.Trace();
  EXPECT_GE(t.grants.size(), 4u);
  bool saw_commit = false;
  bool saw_update = false;
  for (const auto& stream : t.per_thread) {
    for (const TsoEvent& e : stream) {
      saw_commit |= e.kind == TsoEventKind::kCommit && !e.pages.empty();
      saw_update |= e.kind == TsoEventKind::kUpdate;
    }
  }
  EXPECT_TRUE(saw_commit);
  EXPECT_TRUE(saw_update);
}

TEST(TsoOracle, DiffReportsFirstDivergentEvent) {
  TsoTrace a;
  TsoTrace b;
  TsoEvent g;
  g.kind = TsoEventKind::kTokenGrant;
  g.tid = 1;
  g.a = 10;
  g.b = 0;
  a.grants.push_back(g);
  b.grants.push_back(g);
  TsoEvent ca;
  ca.kind = TsoEventKind::kCommit;
  ca.tid = 1;
  ca.a = 3;
  ca.pages = {1, 2};
  TsoEvent cb = ca;
  cb.pages = {2, 1};  // same pages, different install order
  a.per_thread = {{}, {ca}};
  b.per_thread = {{}, {cb}};
  const TraceDiff d = DiffTraces(a, b);
  ASSERT_TRUE(d.diverged);
  EXPECT_NE(d.description.find("thread 1"), std::string::npos) << d.description;
  EXPECT_NE(d.description.find("commit"), std::string::npos) << d.description;
  EXPECT_NE(d.description.find("pages=[1 2]"), std::string::npos) << d.description;
  EXPECT_NE(d.description.find("pages=[2 1]"), std::string::npos) << d.description;

  EXPECT_FALSE(DiffTraces(a, a).diverged);
}

// With the test-only nondeterminism bug armed, jittered runs install the same
// commit's pages in different orders. Checksums cannot see that (the final
// bytes are identical) — the oracle must, and must name the commit event.
TEST(TsoOracle, InjectedCommitOrderBugIsPinpointed) {
  const Litmus lit = MultiPageCommit();
  rt::RuntimeConfig cfg = BaseCfg();
  cfg.segment.test_vtime_dependent_commit_order = true;

  // Sanity: the very same config is deterministic when jitter is off.
  {
    rt::RuntimeConfig c = cfg;
    OracleOptions no_jitter;
    no_jitter.runs = 4;
    no_jitter.jitter_bp = 0;
    const OracleResult r = CheckDeterminism(rt::Backend::kConsequenceIC, lit, c, no_jitter);
    EXPECT_TRUE(r.ok) << r.failure;
  }

  // Jittered runs: collect traces and checksums manually so we can assert the
  // checksum stays blind while the trace diverges.
  std::vector<TsoTrace> traces;
  std::vector<u64> checksums;
  for (u64 seed = 1; seed <= 12; ++seed) {
    TraceRecorder rec;
    rt::RuntimeConfig c = cfg;
    c.observer = &rec;
    c.costs.jitter_bp = 1200;
    c.costs.jitter_seed = seed;
    rt::RunResult res;
    RunLitmus(rt::Backend::kConsequenceIC, lit, c, &res);
    traces.push_back(rec.TakeTrace());
    checksums.push_back(res.checksum);
  }
  for (u64 cs : checksums) {
    EXPECT_EQ(cs, checksums[0]) << "the injected bug must stay checksum-invariant";
  }
  bool diverged = false;
  for (usize i = 1; i < traces.size() && !diverged; ++i) {
    const TraceDiff d = DiffTraces(traces[0], traces[i]);
    if (d.diverged) {
      diverged = true;
      EXPECT_NE(d.description.find("commit"), std::string::npos)
          << "first divergent event is not a commit:\n" << d.description;
    }
  }
  EXPECT_TRUE(diverged) << "vtime-dependent commit order never fired across 12 seeds";

  // And the oracle proper reports it as a failure naming the commit.
  OracleOptions opt;
  const OracleResult r = CheckDeterminism(rt::Backend::kConsequenceIC, lit, cfg, opt);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.failure.find("commit"), std::string::npos) << r.failure;
  EXPECT_NE(r.failure.find("MultiPageCommit"), std::string::npos) << r.failure;
}

// The same multi-page litmus with the bug DISARMED passes the full oracle on
// every backend — the bug flag, not the litmus, is what breaks determinism.
TEST(TsoOracle, MultiPageCommitDeterministicWithoutBug) {
  const Litmus lit = MultiPageCommit();
  for (rt::Backend b : kDetBackends) {
    SCOPED_TRACE(rt::BackendName(b));
    const OracleResult r = CheckDeterminism(b, lit, BaseCfg());
    EXPECT_TRUE(r.ok) << r.failure;
  }
}

}  // namespace
}  // namespace csq::tso
