// Unit tests for src/util: RNG determinism and distribution sanity, hashing,
// stats accumulators, table formatting.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "src/util/hash.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace csq {
namespace {

TEST(DetRng, SameSeedSameStream) {
  DetRng a(42);
  DetRng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(DetRng, DifferentSeedsDiverge) {
  DetRng a(1);
  DetRng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (a.Next() == b.Next()) ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(DetRng, BelowRespectsBound) {
  DetRng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
  EXPECT_EQ(rng.Below(0), 0u);
  EXPECT_EQ(rng.Below(1), 0u);
}

TEST(DetRng, RangeInclusive) {
  DetRng rng(9);
  std::set<u64> seen;
  for (int i = 0; i < 1000; ++i) {
    const u64 v = rng.Range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all of 5..8 hit
}

TEST(DetRng, NextDoubleInUnitInterval) {
  DetRng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(DetRng, RoughlyUniform) {
  DetRng rng(11);
  int buckets[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++buckets[rng.Below(10)];
  }
  for (int b : buckets) {
    EXPECT_NEAR(b, n / 10, n / 100);
  }
}

TEST(Fnv1a, OrderSensitive) {
  Fnv1a a;
  a.Mix(u64{1});
  a.Mix(u64{2});
  Fnv1a b;
  b.Mix(u64{2});
  b.Mix(u64{1});
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(Fnv1a, MatchesBytewise) {
  const char data[] = "consequence";
  Fnv1a a;
  a.MixBytes(data, sizeof(data));
  EXPECT_EQ(a.Digest(), HashBytes(data, sizeof(data)));
}

TEST(Fnv1a, EmptyIsOffset) {
  Fnv1a h;
  EXPECT_EQ(h.Digest(), Fnv1a::kOffset);
}

TEST(HashCombine, NotCommutative) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(RunningStats, Basics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.Count(), 4u);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 4.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.5);
  EXPECT_NEAR(s.Stddev(), 1.29099, 1e-4);
}

TEST(SampleSet, MeanDeviationAndPercentiles) {
  SampleSet s;
  for (double x : {10.0, 10.0, 10.0, 10.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.MeanDeviationFrac(), 0.0);
  SampleSet t;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    t.Add(x);
  }
  EXPECT_DOUBLE_EQ(t.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(t.Percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(t.Percentile(50), 3.0);
  EXPECT_NEAR(t.MeanDeviationFrac(), 0.4, 1e-9);
}

TEST(TablePrinter, AlignsAndPrints) {
  TablePrinter tp({"bench", "value"});
  tp.AddRow({"histogram", TablePrinter::Fmt(1.25)});
  tp.AddRow({"lu_ncb", TablePrinter::Fmt(u64{42})});
  std::ostringstream oss;
  tp.Print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("histogram"), std::string::npos);
  EXPECT_NE(out.find("1.25"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

}  // namespace
}  // namespace csq
