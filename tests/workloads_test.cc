// Workload-suite tests, parameterized over all 19 benchmarks:
//   * per-backend determinism (bit-identical repeat runs),
//   * cross-backend result agreement for race-free workloads,
//   * jitter invariance under Consequence-IC,
//   * scaling sanity (more threads => vtime does not explode unboundedly).
#include <gtest/gtest.h>

#include <string>

#include "src/wl/workloads.h"

namespace csq::wl {
namespace {

rt::RuntimeConfig Cfg(u32 workers, u64 jitter_seed = 0, u32 jitter_bp = 0) {
  rt::RuntimeConfig cfg;
  cfg.nthreads = workers;
  cfg.segment.size_bytes = 8 << 20;
  cfg.costs.jitter_bp = jitter_bp;
  cfg.costs.jitter_seed = jitter_seed;
  return cfg;
}

rt::RunResult RunWl(const WorkloadInfo& w, rt::Backend b, const rt::RuntimeConfig& cfg,
                    u32 workers) {
  WlParams p;
  p.workers = workers;
  return rt::MakeRuntime(b, cfg)->Run(Bind(w, p));
}

class AllWorkloadsTest : public ::testing::TestWithParam<const WorkloadInfo*> {};

TEST_P(AllWorkloadsTest, RepeatRunsAreBitIdenticalOnConsequenceIC) {
  const WorkloadInfo& w = *GetParam();
  const rt::RunResult a = RunWl(w, rt::Backend::kConsequenceIC, Cfg(4), 4);
  const rt::RunResult b = RunWl(w, rt::Backend::kConsequenceIC, Cfg(4), 4);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.vtime, b.vtime);
}

TEST_P(AllWorkloadsTest, JitterInvariantOnConsequenceIC) {
  const WorkloadInfo& w = *GetParam();
  const rt::RunResult a = RunWl(w, rt::Backend::kConsequenceIC, Cfg(4, 1, 500), 4);
  const rt::RunResult b = RunWl(w, rt::Backend::kConsequenceIC, Cfg(4, 999, 500), 4);
  EXPECT_EQ(a.checksum, b.checksum) << w.name;
  EXPECT_EQ(a.trace_digest, b.trace_digest) << w.name;
}

TEST_P(AllWorkloadsTest, RaceFreeWorkloadsAgreeAcrossBackends) {
  const WorkloadInfo& w = *GetParam();
  if (w.racy) {
    GTEST_SKIP() << w.name << " is intentionally racy";
  }
  const u64 pt = RunWl(w, rt::Backend::kPthreads, Cfg(4), 4).checksum;
  for (rt::Backend b : {rt::Backend::kDThreads, rt::Backend::kDwc, rt::Backend::kConsequenceRR,
                        rt::Backend::kConsequenceIC}) {
    EXPECT_EQ(RunWl(w, b, Cfg(4), 4).checksum, pt)
        << w.name << " on " << rt::BackendName(b);
  }
}

TEST_P(AllWorkloadsTest, WorksWithTwoAndEightWorkers) {
  const WorkloadInfo& w = *GetParam();
  const rt::RunResult two = RunWl(w, rt::Backend::kConsequenceIC, Cfg(2), 2);
  const rt::RunResult eight = RunWl(w, rt::Backend::kConsequenceIC, Cfg(8), 8);
  EXPECT_GT(two.vtime, 0u);
  EXPECT_GT(eight.vtime, 0u);
  if (!w.racy) {
    // Worker count may legally change results only via partitioning of racy
    // programs; race-free ones must agree when the algorithm is partition-
    // independent. (All of ours are: reductions are commutative-exact.)
    EXPECT_EQ(two.checksum, eight.checksum) << w.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, AllWorkloadsTest,
    ::testing::ValuesIn([] {
      std::vector<const WorkloadInfo*> ptrs;
      for (const auto& w : AllWorkloads()) {
        ptrs.push_back(&w);
      }
      return ptrs;
    }()),
    [](const ::testing::TestParamInfo<const WorkloadInfo*>& info) {
      return std::string(info.param->name);
    });

TEST(WorkloadRegistry, Has19NamedWorkloads) {
  EXPECT_EQ(AllWorkloads().size(), 19u);
  EXPECT_NE(FindWorkload("ferret"), nullptr);
  EXPECT_NE(FindWorkload("water_nsquared"), nullptr);
  EXPECT_EQ(FindWorkload("nope"), nullptr);
  u32 phoenix = 0, parsec = 0, splash = 0;
  for (const auto& w : AllWorkloads()) {
    phoenix += w.suite == "phoenix";
    parsec += w.suite == "parsec";
    splash += w.suite == "splash2";
  }
  EXPECT_EQ(phoenix, 8u);
  EXPECT_EQ(parsec, 3u);
  EXPECT_EQ(splash, 8u);
}

TEST(WorkloadRegistry, RacyWorkloadsAreStillPerBackendDeterministic) {
  for (const auto& w : AllWorkloads()) {
    if (!w.racy) {
      continue;
    }
    for (rt::Backend b : {rt::Backend::kDThreads, rt::Backend::kConsequenceIC}) {
      const u64 a = RunWl(w, b, Cfg(4, 3, 400), 4).checksum;
      const u64 c = RunWl(w, b, Cfg(4, 77, 400), 4).checksum;
      EXPECT_EQ(a, c) << w.name << " on " << rt::BackendName(b);
    }
  }
}

}  // namespace
}  // namespace csq::wl
