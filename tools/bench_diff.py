#!/usr/bin/env python3
"""Compare freshly emitted BENCH_*.json reports against committed baselines.

Usage:
    bench_diff.py --fresh <dir-with-fresh-jsons> [--baseline bench/baselines]
                  [--max-regression 0.10]

For each report the tool checks two things:

1.  Correctness flags — always enforced, on every host:
      * fig10_overall:  parallel_matches_serial must be true
      * micro_commit:   vtimes_identical must be true
      * micro_pagepath: simd_counts_identical must be true (every simd
        dispatch level reports the same diff/merge byte+word counts)

2.  Parallel-vs-serial wall-clock ratios — enforced only when BOTH the fresh
    report and the baseline were produced on multi-core hosts
    (single_core_caveat == false).  Wall-clock speedups measured on a
    single-core box are noise, not signal (DESIGN.md §14), so any comparison
    involving one is reported as SKIPPED rather than failed.

      * fig10_overall:  "speedup" (serial wall / parallel wall)
      * micro_commit:   "best_speedup_4plus_committers_large_footprint"
      * micro_pagepath: "diff_speedup_vs_scalar" / "merge_speedup_vs_scalar"
        (§17 vector kernels vs the pinned scalar baseline)
      * race_analyzer:  "ww_efficiency" / "ww_rw_efficiency" — §18 analyzer
        overhead as higher-is-better ratios (analyzer-off wall / analyzer-on
        wall), so a commit-path slowdown introduced by the race detector
        regresses the gated metric.  Correctness key "identity_ok" pins the
        classified report byte-identical across engines/workers/off-floor.
      * fig10_overall / micro_commit: "affinity_hit_rate" — the §16 slot
        scheduler's locality rate (affinity hits / slot acquires).  A drop
        means simulated threads stopped landing on their last host worker,
        i.e. warm per-slot state (page-TLB, dirty bitmaps, pooled buffers)
        is being thrown away.  Gated like the wall-clock ratios: multi-core
        hosts only, because a single-core run's scheduler interleaving is
        not representative.

    A fresh ratio more than --max-regression (default 10%) below the
    baseline ratio is a regression.

Exit status is the number of regressions + correctness failures, so CI can
gate directly on it.  Missing fresh reports are failures (the bench did not
run); missing baselines are skips (first PR that adds a bench has nothing to
compare against yet).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

# (report basename, perf ratio key, correctness key expected true)
CHECKS = [
    ("BENCH_fig10_overall.json", "speedup", "parallel_matches_serial"),
    (
        "BENCH_micro_commit.json",
        "best_speedup_4plus_committers_large_footprint",
        "vtimes_identical",
    ),
    ("BENCH_serve_shards.json", "multi_shard_scaling", "digest_stable"),
    ("BENCH_fig10_overall.json", "affinity_hit_rate", "parallel_matches_serial"),
    ("BENCH_micro_commit.json", "affinity_hit_rate", "sharded_leases_engaged"),
    # §17 commit kernels: counts must match across every dispatch level on
    # every host; the vector-vs-scalar throughput ratios are wall-clock and
    # follow the usual single-core skip.
    ("BENCH_micro_pagepath.json", "diff_speedup_vs_scalar", "simd_counts_identical"),
    ("BENCH_micro_pagepath.json", "merge_speedup_vs_scalar", "simd_counts_identical"),
    # §18 race analyzer: the identity flag is the determinism gate; the
    # efficiency ratios keep detector overhead from creeping into the commit
    # path (wall-clock, so the single-core skip applies as usual).
    ("BENCH_race_analyzer.json", "ww_efficiency", "identity_ok"),
    ("BENCH_race_analyzer.json", "ww_rw_efficiency", "identity_ok"),
]


def load(path: str):
    """Returns the parsed dict, None when the file does not exist, or the
    sentinel "invalid" (with a clean FAIL line already printed) for anything
    unparseable — a malformed report must produce a countable failure, never
    an uncaught stack trace."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except FileNotFoundError:
        return None
    except OSError as e:
        # NotADirectoryError / IsADirectoryError / PermissionError: a report
        # path component is wrong or unreadable. Treat like a broken report.
        print(f"FAIL  {path}: unreadable ({e})")
        return "invalid"
    except json.JSONDecodeError as e:
        print(f"FAIL  {path}: invalid JSON ({e})")
        return "invalid"
    if not isinstance(doc, dict):
        print(f"FAIL  {path}: top-level JSON is {type(doc).__name__}, expected an object")
        return "invalid"
    return doc


def check_one(name: str, perf_key: str, ok_key: str, args) -> int:
    """Runs one registry entry; returns its failure count."""
    fresh_path = os.path.join(args.fresh, name)
    base_path = os.path.join(args.baseline, name)
    failures = 0
    fresh = load(fresh_path)
    if fresh is None:
        print(f"FAIL  {name}: fresh report missing at {fresh_path} (bench did not run?)")
        return 1
    if fresh == "invalid":
        return 1

    # Correctness gate: unconditional.
    if fresh.get(ok_key) is not True:
        print(f"FAIL  {name}: {ok_key}={fresh.get(ok_key)!r} (must be true)")
        failures += 1
    else:
        print(f"ok    {name}: {ok_key}=true")

    base = load(base_path)
    if base is None:
        # A bench's first PR lands the bench before any baseline exists: that
        # is a clean, loudly-announced skip, never a crash or a failure.
        print(
            f"warn  {name}: no committed baseline at {base_path} — skipping perf gate "
            "(first run? commit the fresh report under bench/baselines/)"
        )
        return failures
    if base == "invalid":
        return failures + 1

    # Perf gate: only meaningful multi-core vs multi-core.
    fresh_caveat = fresh.get("single_core_caveat", True)
    base_caveat = base.get("single_core_caveat", True)
    if fresh_caveat or base_caveat:
        who = []
        if fresh_caveat:
            who.append(f"fresh host_cores={fresh.get('host_cores', '?')}")
        if base_caveat:
            who.append(f"baseline host_cores={base.get('host_cores', '?')}")
        print(f"skip  {name}: {perf_key} comparison ({'; '.join(who)}: single-core wall-clock is noise)")
        return failures

    fresh_v = fresh.get(perf_key)
    base_v = base.get(perf_key)
    if not isinstance(fresh_v, (int, float)) or isinstance(fresh_v, bool) or \
            not isinstance(base_v, (int, float)) or isinstance(base_v, bool):
        print(f"FAIL  {name}: {perf_key} missing or non-numeric (fresh={fresh_v!r}, baseline={base_v!r})")
        return failures + 1
    floor = base_v * (1.0 - args.max_regression)
    if fresh_v < floor:
        print(
            f"FAIL  {name}: {perf_key} regressed {fresh_v:.3f} < {floor:.3f} "
            f"(baseline {base_v:.3f}, tolerance {args.max_regression:.0%})"
        )
        failures += 1
    else:
        print(f"ok    {name}: {perf_key} {fresh_v:.3f} vs baseline {base_v:.3f} (floor {floor:.3f})")
    return failures


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fresh", required=True, help="directory with freshly emitted BENCH_*.json")
    ap.add_argument("--baseline", default="bench/baselines", help="directory with committed baselines")
    ap.add_argument(
        "--max-regression",
        type=float,
        default=0.10,
        help="fail when a fresh ratio drops more than this fraction below baseline",
    )
    args = ap.parse_args()

    failures = 0
    for name, perf_key, ok_key in CHECKS:
        try:
            failures += check_one(name, perf_key, ok_key, args)
        except Exception as e:  # noqa: BLE001 — one broken report must not kill the gate
            print(f"FAIL  {name}: internal error while checking ({type(e).__name__}: {e})")
            failures += 1
    print(f"bench_diff: {failures} failure(s)")
    return failures


if __name__ == "__main__":
    sys.exit(main())
