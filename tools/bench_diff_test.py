#!/usr/bin/env python3
"""Pins tools/bench_diff.py's failure-handling contract (run from ctest).

The gate script must never die with a stack trace on degenerate input — every
degenerate report shape maps to a clean per-check line and a countable exit
status:

  * missing fresh report            -> FAIL (the bench did not run)
  * missing committed baseline      -> warn + skip (a bench's first PR)
  * unparseable / non-object JSON   -> FAIL, no traceback
  * baseline path is a directory    -> FAIL, no traceback
  * correctness key false           -> FAIL
  * perf regression beyond floor    -> FAIL (multi-core vs multi-core only)
  * single-core host on either side -> skip
"""

import importlib.util
import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
spec = importlib.util.spec_from_file_location("bench_diff", os.path.join(TOOLS_DIR, "bench_diff.py"))
bench_diff = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_diff)


class Args:
    def __init__(self, fresh, baseline, max_regression=0.10):
        self.fresh = fresh
        self.baseline = baseline
        self.max_regression = max_regression


def write(path, doc):
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        if isinstance(doc, str):
            f.write(doc)
        else:
            json.dump(doc, f)


def run_check(fresh_dir, base_dir, name="BENCH_x.json", perf="ratio", ok="ok_flag", tol=0.10):
    out = io.StringIO()
    with redirect_stdout(out):
        failures = bench_diff.check_one(name, perf, ok, Args(fresh_dir, base_dir, tol))
    return failures, out.getvalue()


GOOD = {"ok_flag": True, "ratio": 2.0, "single_core_caveat": False, "host_cores": 8}


class BenchDiffTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.fresh = os.path.join(self.tmp.name, "fresh")
        self.base = os.path.join(self.tmp.name, "base")
        os.makedirs(self.fresh)
        os.makedirs(self.base)

    def tearDown(self):
        self.tmp.cleanup()

    def test_missing_fresh_report_fails(self):
        failures, out = run_check(self.fresh, self.base)
        self.assertEqual(failures, 1)
        self.assertIn("fresh report missing", out)

    def test_missing_baseline_is_clean_warn_skip(self):
        write(os.path.join(self.fresh, "BENCH_x.json"), GOOD)
        failures, out = run_check(self.fresh, self.base)
        self.assertEqual(failures, 0)
        self.assertIn("warn", out)
        self.assertIn("no committed baseline", out)
        self.assertIn("commit the fresh report", out)

    def test_invalid_json_fails_without_traceback(self):
        write(os.path.join(self.fresh, "BENCH_x.json"), "{not json!")
        failures, out = run_check(self.fresh, self.base)
        self.assertEqual(failures, 1)
        self.assertIn("invalid JSON", out)

    def test_non_object_top_level_fails_cleanly(self):
        write(os.path.join(self.fresh, "BENCH_x.json"), [1, 2, 3])
        failures, out = run_check(self.fresh, self.base)
        self.assertEqual(failures, 1)
        self.assertIn("expected an object", out)

    def test_baseline_path_is_a_directory_fails_cleanly(self):
        write(os.path.join(self.fresh, "BENCH_x.json"), GOOD)
        os.makedirs(os.path.join(self.base, "BENCH_x.json"))  # a DIRECTORY
        failures, out = run_check(self.fresh, self.base)
        self.assertEqual(failures, 1, out)
        self.assertIn("unreadable", out)

    def test_fresh_dir_component_not_a_directory(self):
        # --fresh pointing THROUGH a file: NotADirectoryError path.
        write(os.path.join(self.fresh, "plainfile"), GOOD)
        failures, out = run_check(os.path.join(self.fresh, "plainfile"), self.base)
        self.assertEqual(failures, 1, out)
        self.assertIn("FAIL", out)

    def test_correctness_flag_false_fails(self):
        write(os.path.join(self.fresh, "BENCH_x.json"), dict(GOOD, ok_flag=False))
        write(os.path.join(self.base, "BENCH_x.json"), GOOD)
        failures, out = run_check(self.fresh, self.base)
        self.assertEqual(failures, 1)
        self.assertIn("must be true", out)

    def test_regression_beyond_floor_fails(self):
        write(os.path.join(self.fresh, "BENCH_x.json"), dict(GOOD, ratio=1.0))
        write(os.path.join(self.base, "BENCH_x.json"), dict(GOOD, ratio=2.0))
        failures, out = run_check(self.fresh, self.base)
        self.assertEqual(failures, 1)
        self.assertIn("regressed", out)

    def test_within_tolerance_passes(self):
        write(os.path.join(self.fresh, "BENCH_x.json"), dict(GOOD, ratio=1.85))
        write(os.path.join(self.base, "BENCH_x.json"), dict(GOOD, ratio=2.0))
        failures, out = run_check(self.fresh, self.base)
        self.assertEqual(failures, 0, out)

    def test_single_core_side_skips_perf_gate(self):
        write(os.path.join(self.fresh, "BENCH_x.json"),
              dict(GOOD, ratio=0.1, single_core_caveat=True, host_cores=1))
        write(os.path.join(self.base, "BENCH_x.json"), GOOD)
        failures, out = run_check(self.fresh, self.base)
        self.assertEqual(failures, 0)
        self.assertIn("single-core wall-clock is noise", out)

    def test_boolean_perf_value_is_non_numeric(self):
        write(os.path.join(self.fresh, "BENCH_x.json"), dict(GOOD, ratio=True))
        write(os.path.join(self.base, "BENCH_x.json"), GOOD)
        failures, out = run_check(self.fresh, self.base)
        self.assertEqual(failures, 1)
        self.assertIn("non-numeric", out)

    def test_serve_shards_registered(self):
        self.assertIn(
            ("BENCH_serve_shards.json", "multi_shard_scaling", "digest_stable"),
            bench_diff.CHECKS,
        )

    def test_affinity_hit_rate_registered(self):
        # §16 locality gate: the slot scheduler's affinity-hit rate is a
        # first-class perf ratio on both reporting benches.  The correctness
        # key rides along — fig10 re-asserts bit-identity, micro_commit
        # asserts the two-segment sharded config actually engaged per-domain
        # leases (lease_hits > 0 in every sharded domain).
        self.assertIn(
            ("BENCH_fig10_overall.json", "affinity_hit_rate", "parallel_matches_serial"),
            bench_diff.CHECKS,
        )
        self.assertIn(
            ("BENCH_micro_commit.json", "affinity_hit_rate", "sharded_leases_engaged"),
            bench_diff.CHECKS,
        )

    def test_simd_kernel_gate_registered(self):
        # §17 commit kernels: every dispatch level must report identical
        # diff/merge counts (simd_counts_identical, enforced on every host);
        # the vector-vs-scalar throughput ratios are wall-clock and follow
        # the usual single-core skip.
        self.assertIn(
            ("BENCH_micro_pagepath.json", "diff_speedup_vs_scalar", "simd_counts_identical"),
            bench_diff.CHECKS,
        )
        self.assertIn(
            ("BENCH_micro_pagepath.json", "merge_speedup_vs_scalar", "simd_counts_identical"),
            bench_diff.CHECKS,
        )

    def test_race_analyzer_gate_registered(self):
        # §18 race analyzer: identity_ok is the determinism gate (classified
        # report byte-identical across engines/workers/off-floor); the
        # efficiency ratios (analyzer-off wall / analyzer-on wall,
        # higher-is-better) keep detector overhead off the commit path.
        self.assertIn(
            ("BENCH_race_analyzer.json", "ww_efficiency", "identity_ok"),
            bench_diff.CHECKS,
        )
        self.assertIn(
            ("BENCH_race_analyzer.json", "ww_rw_efficiency", "identity_ok"),
            bench_diff.CHECKS,
        )

    def test_main_survives_degenerate_registry_inputs(self):
        # End-to-end: main() over the real registry with an empty fresh dir
        # exits with one countable failure per check and no traceback.
        argv = sys.argv
        sys.argv = ["bench_diff.py", "--fresh", self.fresh, "--baseline", self.base]
        try:
            out = io.StringIO()
            with redirect_stdout(out):
                rc = bench_diff.main()
        finally:
            sys.argv = argv
        self.assertEqual(rc, len(bench_diff.CHECKS))
        self.assertIn("failure(s)", out.getvalue())


if __name__ == "__main__":
    unittest.main()
