#!/usr/bin/env python3
"""Floor-discipline lint: observer/trace emissions must be floor-held.

Background (PR 3 bug class): observer streams — SyncObserver events, the
segment's TraceHooks, the clock's grant/release callbacks — are defined to be
floor-ordered: every emission must happen while the emitting thread holds the
simulation floor (the shared gate). Engine Wait() parks floor-less, so any
emission that follows a Wait or an explicit EndShared without an intervening
re-gate races with other threads' emissions on the host-parallel engine.
Three such sites were fixed by hand in PR 3; this tool keeps the class from
coming back.

Sharded-floor discipline (DESIGN.md §14): floor domains split the floor, so
holding a *sharded* domain's floor (GateShared with a non-global domain
argument — `cfg_.floor_domain`, `FloorDomain()`, a created domain id) no
longer serializes against domain-0 code. Global streams — `Engine::Trace`
and the clock's grant/release callbacks — are domain-0 ordered by contract,
so emitting them under a sharded floor races with every other domain's
emissions. Per-segment streams (the segment's own observer/TraceHooks) are
domain-ordered and stay legal under their segment's floor.

Heuristic (line-based, per function body):
  * Track a floor state through each function: ACQUIRE patterns (GateShared,
    WaitToken, WaitInstalled) set HELD — or HELD_SHARDED when GateShared's
    argument names a possibly non-global domain; RELEASE patterns
    (EndShared, engine Wait(), ReleaseToken) set RELEASED.
  * An emission while the state is RELEASED is a violation; a *global*
    emission (engine Trace, clock grant/release callbacks) while the state
    is HELD_SHARDED is a violation. An emission with no preceding event in
    the function is fine — helper functions are called floor-held by
    convention, and flagging them would drown the signal.
  * Lambdas reset the state to unknown (their bodies run elsewhere).

Suppression: a `// lint-floor: <reason>` comment on the emission line or the
line directly above it suppresses that emission. Use it only with a reason
that explains why the floor is actually held (or why the domain is global).

Exit status: number of violations (0 = clean). Run from anywhere; scans the
explicit SCAN_ROOTS list under the src/ tree next to this script's repository
root. The list is closed-world: a src/ subdirectory that is not listed fails
the lint outright, so new subsystems (src/serve was the near-miss) cannot
silently escape floor-discipline coverage.
"""

import re
import sys
from pathlib import Path

EMISSION = re.compile(
    r"(->\s*On(Acquire|Release|Commit|CommitVersion|Update|MergeDecision|TokenGrant|TokenRelease)\s*\()"
    r"|(\bobserver_\s*\()"
    r"|(Hooks\(\)\.on_(update|merge)\s*\()"
    r"|(\bcfg_\.on_(grant|release)\s*\()"
)
# Domain-0-ordered streams: never legal under a sharded domain's floor.
GLOBAL_EMISSION = re.compile(
    r"\beng_?\s*(\.|->)\s*Trace\s*\(|\.eng\.Trace\s*\(|\bcfg_\.on_(grant|release)\s*\("
)
ACQUIRE = re.compile(r"\b(GateShared|WaitToken|WaitInstalled)\s*\(([^)]*)\)")
RELEASE = re.compile(r"\b(EndShared|ReleaseToken)\s*\(|\beng_?\s*(\.|->)\s*Wait\s*\(|\.eng\.Wait\s*\(")
SUPPRESS = re.compile(r"//\s*lint-floor:")
LAMBDA_OPEN = re.compile(r"\[[^\]]*\]\s*(\([^)]*\))?\s*(->\s*[\w:<>]+\s*)?\{")

# GateShared arguments that still name the global floor domain.
GLOBAL_DOMAIN_ARGS = {"", "0", "kGlobalFloorDomain", "sim::kGlobalFloorDomain"}

HELD, HELD_SHARDED, RELEASED, UNKNOWN = "held", "held-sharded", "released", "unknown"


def strip_comment(line: str) -> str:
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def acquire_state(match: re.Match) -> str:
    """HELD for the global floor, HELD_SHARDED for a (possibly) sharded one."""
    if match.group(1) != "GateShared":
        return HELD  # token/install waits are domain-0 machinery
    arg = match.group(2).strip()
    # Declarations/definitions ("u32 domain = kGlobalFloorDomain") and
    # explicit global-domain gates keep the global state.
    if arg in GLOBAL_DOMAIN_ARGS or "kGlobalFloorDomain" in arg:
        return HELD
    return HELD_SHARDED


def scan_file(path: Path):
    violations = []
    lines = path.read_text().splitlines()
    # Floor state per brace depth. Function bodies start at depth >= 1; a
    # lambda introduces a fresh UNKNOWN state for its own depth.
    state_stack = [UNKNOWN]
    depth = 0
    for lineno, raw in enumerate(lines, 1):
        code = strip_comment(raw)
        opens_lambda = bool(LAMBDA_OPEN.search(code))
        emission = EMISSION.search(code)
        global_emission = GLOBAL_EMISSION.search(code)
        suppressed = SUPPRESS.search(raw) or (lineno >= 2 and SUPPRESS.search(lines[lineno - 2]))
        state = state_stack[-1]
        if emission and state == RELEASED and not suppressed:
            violations.append((path, lineno, "emission while floor released", raw.strip()))
        if global_emission and state == HELD_SHARDED and not suppressed:
            violations.append(
                (path, lineno, "global (domain-0) emission under sharded floor", raw.strip())
            )
        # Events update the innermost state AFTER the emission check so that
        # `GateShared(); observer->...` on one line counts as held, while
        # `observer->...; EndShared();` still checks the pre-release state.
        # (Acquire first: re-gate lines acquire before any same-line emission.)
        acq = ACQUIRE.search(code)
        if acq:
            new_state = acquire_state(acq)
            state_stack[-1] = new_state
            # Re-check a released-state emission on the same line: held now.
            # (A global emission on a sharded re-gate line stays a violation.)
            if (
                emission
                and violations
                and violations[-1][1] == lineno
                and violations[-1][2] == "emission while floor released"
            ):
                violations.pop()
                if global_emission and new_state == HELD_SHARDED and not suppressed:
                    violations.append(
                        (path, lineno, "global (domain-0) emission under sharded floor",
                         raw.strip())
                    )
        elif RELEASE.search(code):
            state_stack[-1] = RELEASED
        for ch in code:
            if ch == "{":
                depth += 1
                # A lambda body starts with a clean slate; plain blocks
                # inherit the enclosing state.
                state_stack.append(UNKNOWN if opens_lambda else state_stack[-1])
                opens_lambda = False
            elif ch == "}":
                if depth > 0:
                    depth -= 1
                    # Inner state is discarded, NOT propagated outward: an `if`
                    # branch ending in ReleaseToken must not poison its `else`
                    # branch or the code after the conditional. The cost is
                    # missing a release buried in a conditional block — the
                    # PR 3 bug class (Wait + emission at the same depth) is
                    # still caught.
                    state_stack.pop()
        if not state_stack:
            state_stack = [UNKNOWN]
    return violations


# Every src/ subsystem the lint covers, by name. Deliberately exhaustive
# rather than a rglob over src/: main() fails when an unlisted subdirectory
# appears, forcing the author of a new subsystem to either add it here or
# consciously argue it emits no observer/trace streams (there is no such
# subsystem today — everything that touches the engine is listed).
SCAN_ROOTS = [
    "clock",
    "conv",
    "harness",
    "lrc",
    "race",
    "rt",
    "serve",
    "sim",
    "simd",
    "tso",
    "util",
    "wl",
]


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    src = root / "src"
    if not src.is_dir():
        print(f"lint_floor: no src/ under {root}", file=sys.stderr)
        return 1
    unlisted = sorted(
        d.name for d in src.iterdir() if d.is_dir() and d.name not in SCAN_ROOTS
    )
    if unlisted:
        print(
            f"lint_floor: src/ subdirectories not in SCAN_ROOTS: {', '.join(unlisted)} — "
            "add them to tools/lint_floor.py so floor-discipline coverage stays complete",
            file=sys.stderr,
        )
        return 1
    violations = []
    for sub in SCAN_ROOTS:
        d = src / sub
        if not d.is_dir():
            continue
        violations.extend(v for path in sorted(d.rglob("*.cc")) + sorted(d.rglob("*.h"))
                          for v in scan_file(path))
    # Top-level src/ files (there are none today, but keep honest if one appears).
    for path in sorted(src.glob("*.cc")) + sorted(src.glob("*.h")):
        violations.extend(scan_file(path))
    for path, lineno, why, text in violations:
        print(f"{path.relative_to(root)}:{lineno}: {why}: {text}")
    if violations:
        print(
            f"lint_floor: {len(violations)} violation(s). Re-gate with GateShared() before "
            "emitting (global streams need the *global* floor, not a sharded domain), or "
            "suppress with '// lint-floor: <why this is safe>'.",
            file=sys.stderr,
        )
    else:
        print("lint_floor: clean")
    return len(violations)


if __name__ == "__main__":
    sys.exit(main())
