#!/usr/bin/env bash
# Rebuild the bench binaries and re-emit every committed perf baseline in one
# step, so bench/baselines/*.json can never drift out of sync with the bench
# code that produces them.
#
# Usage:  tools/refresh_baselines.sh [build-dir]
#
#   * configures + builds <build-dir> (default: build/) with CMake;
#   * runs each baseline-producing bench in a scratch directory (the benches
#     write BENCH_<name>.json into their CWD);
#   * self-checks the fresh reports against the *old* committed baselines via
#     tools/bench_diff.py — a regression prints loudly but does not block the
#     refresh (you are looking at the diff precisely because numbers moved);
#   * copies the fresh reports into bench/baselines/.
#
# Honours CSQ_QUICK=1 for a smoke-sized refresh (do NOT commit quick-mode
# baselines: they carry "quick": true and measure a smaller sweep). Honours
# CSQ_HOST_WORKERS for benches that read it.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
baseline_dir="$repo_root/bench/baselines"

# The benches whose reports are committed as baselines (must stay in sync
# with tools/bench_diff.py's CHECKS registry).
benches=(fig10_overall micro_commit serve_shards micro_pagepath race_analyzer)

echo "== refresh_baselines: configure + build (${build_dir})"
cmake -B "$build_dir" -S "$repo_root" >/dev/null
cmake --build "$build_dir" -j "$(nproc)" --target "${benches[@]}"

scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT

for b in "${benches[@]}"; do
  echo "== refresh_baselines: running $b"
  (cd "$scratch" && "$build_dir/bench/$b" > "$b.log" 2>&1) || {
    echo "refresh_baselines: $b FAILED; log follows" >&2
    cat "$scratch/$b.log" >&2
    exit 1
  }
  if [[ ! -f "$scratch/BENCH_$b.json" ]]; then
    echo "refresh_baselines: $b did not emit BENCH_$b.json" >&2
    exit 1
  fi
done

echo "== refresh_baselines: diff against old baselines (informational)"
python3 "$repo_root/tools/bench_diff.py" --fresh "$scratch" --baseline "$baseline_dir" || true

mkdir -p "$baseline_dir"
for b in "${benches[@]}"; do
  cp "$scratch/BENCH_$b.json" "$baseline_dir/BENCH_$b.json"
  echo "== refresh_baselines: updated $baseline_dir/BENCH_$b.json"
done

if [[ "${CSQ_QUICK:-}" == "1" ]]; then
  echo "refresh_baselines: WARNING — CSQ_QUICK=1 baselines are smoke-sized; do not commit." >&2
fi
echo "refresh_baselines: done"
